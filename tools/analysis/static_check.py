#!/usr/bin/env python3
"""Structural static checker for the turbobp engine.

Four rules the compiler (even Clang's thread-safety analysis) cannot check,
applied over lock-scope nesting reconstructed from the source text:

  latch-order     A latch may only be acquired when its LatchClass rank is
                  strictly greater than every rank already held (no
                  same-class nesting). Ranks come from the machine-readable
                  LATCH ORDER SPEC table in src/debug/latch_order_checker.h
                  -- the single source of truth shared with DESIGN.md §7 and
                  the runtime checker.
  io-under-latch  No blocking device call (StorageDevice/DiskManager entry
                  points, WAL flushes, SSD frame I/O) while holding a latch
                  whose class the spec marks `forbidden` for device I/O
                  (kBufferPool, kBufferFrame, kWal since group commit, ...
                  -- the PR-5 invariant). Classes marked `allowed`
                  (kSsdPartition, ...) cover I/O by design, not flagged.
  ioresult        Every call to an IoResult- or Status-returning I/O
                  function must consume its result: assigned, returned,
                  compared, wrapped (TURBOBP_CHECK_OK), or explicitly
                  discarded with a (void) cast. Bare-expression statements
                  are violations. Statement scanning covers lambda bodies
                  and #define macro bodies.
  crash-point     Every function in the durability layers (src/buffer,
                  src/core, src/wal, src/engine, src/io) that performs a
                  durable write (device Write*, WriteFrame, WritePage[s])
                  must contain a TURBOBP_CRASH_POINT, so new durability
                  edges cannot dodge the crash-torture matrix.
  async-io        No AsyncIoEngine entry point (Submit/TrySubmit/Reap/
                  Drain on an engine-like receiver) while holding a
                  kBufferPool, kBufferFrame, kSsdPartition or kSsdScrub
                  latch: completion callbacks re-enter the frame state
                  machine and take those latches on a fresh stack, so an
                  engine call under one deadlocks (DESIGN.md §12
                  completion-context rules), and the scrub cursor latch is
                  a declared leaf (below). Mirrors the TURBOBP_EXCLUDES
                  contracts on the engine API for builds without Clang TSA.

The latch-order rule additionally enforces leaf discipline: latches the
spec note declares leaves (kSsdScrub, the scrubber's patrol cursor) may
never have *any* tracked latch acquired under them, regardless of rank —
the scrubber holds its cursor latch only for the copy/advance arithmetic
and must release it before touching a partition or the device.

Sanctioned exceptions carry a `// check: allow(<rule>[: reason])` directive
on the offending line or the line above it.

The frontend is deliberately structural (its own lexer + scope tracker, no
LLVM dependency): it strips comments/strings, blanks preprocessor lines
(macro bodies are statement-scanned separately), splits statements at
top-level semicolons, classifies brace scopes (namespace / class / function
/ lambda / control), tracks TrackedLockGuard / std::lock_guard /
std::unique_lock / ShardLock acquisitions plus .unlock()/.lock() toggles,
and resolves lock expressions to LatchClasses via the TrackedMutex member
table scraped from the headers plus lightweight local type inference
(parameters, reference/pointer declarations, range-for over known
containers, the member scope of the enclosing `Type::Function`).

Exit status: 0 clean, 1 violations, 2 internal/config error.
"""

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SPEC_HEADER = os.path.join("src", "debug", "latch_order_checker.h")

RULES = ("latch-order", "io-under-latch", "ioresult", "crash-point",
         "async-io")

# Directories whose functions fall under the crash-point rule (durable-write
# layers). Device models (src/storage), the fault injector (a decorator, not
# a durability edge) and the sim are exempt.
CRASH_POINT_DIRS = ("src/buffer", "src/core", "src/wal", "src/engine",
                    "src/io")

# Method names that are blocking device I/O wherever they appear.
IO_CALL_ANY_RECV = {
    "ReadPage", "ReadPages", "WritePage", "WritePages",
    "WriteFrame", "ReadFrame", "ReadFrameVerified",
    "FlushTo", "CommitForce",
}
# Read/Write count as device I/O only through a device-like receiver
# (StorageDevice pointers); plain Read/Write on other objects are not I/O.
DEVICE_RECV = re.compile(r"^(?:\w*device\w*|base_|data_|disk_?|ssd_device_)$")

# Durable-write calls for the crash-point rule (write side only).
DURABLE_WRITE_ANY_RECV = {"WritePage", "WritePages", "WriteFrame"}

# AsyncIoEngine entry points (async-io rule): only through an engine-like
# receiver, so unrelated Submit/Drain methods on other objects are not
# flagged. Completion callbacks take pool shard/frame and SSD partition
# latches, so calling into the engine while holding one deadlocks; the
# scrub cursor latch is a declared leaf, so an engine call under it is a
# discipline breach even though no callback takes it.
ENGINE_CALLS = {"Submit", "TrySubmit", "Reap", "Drain"}
ENGINE_RECV = re.compile(r"^\w*engine\w*$")
ENGINE_FORBIDDEN = {"kBufferPool", "kBufferFrame", "kSsdPartition",
                    "kSsdScrub"}

# Leaf latches (latch-order rule): nothing — whatever its rank — may be
# acquired while one of these is held. The scrubber's patrol-cursor latch
# guards only the cursor copy/advance arithmetic; holding it across a
# partition acquisition (or any other latch) would serialize patrol against
# foreground reads and invert the independence DESIGN.md §13 promises.
LEAF_LATCHES = {"kSsdScrub"}

# Functions whose IoResult/Status return must be consumed.
RESULT_FNS_ANY_RECV = {
    "ReadPage", "ReadPages", "WritePage", "WritePages",
    "WriteFrame", "ReadFrame", "ReadFrameVerified",
}
RESULT_FNS_DEVICE_RECV = {"Read", "Write"}

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "try", "return"}

LOCK_DECL = re.compile(
    r"(?:^|[;{}\s])"
    r"(TrackedLockGuard|ShardLock|std::lock_guard(?:<[^;]*>)?|"
    r"std::unique_lock(?:<[^;]*>)?|std::scoped_lock(?:<[^;]*>)?)\s+"
    r"(\w+)\s*(?:\(|\{|=)\s*([^;]*)")
CALL_RE = re.compile(r"(?:([A-Za-z_]\w*)\s*(?:->|\.)\s*)?([A-Za-z_]\w*)\s*\(")


@dataclass
class LatchSpec:
    rank: int
    owner: str
    io_allowed: bool


@dataclass
class HeldLock:
    var: str            # guard variable name ('' for parameter-implied)
    latch: str          # LatchClass name, e.g. 'kBufferPool'
    line: int
    active: bool = True
    depth: int = 0      # scope-stack depth it dies at


@dataclass
class Scope:
    kind: str                      # namespace/class/function/lambda/control
    name: str = ""
    qualifier: str = ""            # for function scopes: Type in Type::Fn
    locks: list = field(default_factory=list)
    var_types: dict = field(default_factory=dict)
    # crash-point bookkeeping (function/lambda scopes)
    start_line: int = 0
    durable_write_line: int = 0
    has_crash_point: bool = False
    paren_depth_at_open: int = 0


class Violation:
    def __init__(self, path, line, rule, msg):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_code(text):
    """Blanks comments, string/char literals and preprocessor lines while
    preserving byte positions/newlines. Returns (stripped, allow_map,
    macro_bodies) where allow_map maps line -> set of allowed rules and
    macro_bodies is a list of (line, body_text) for #define directives."""
    out = list(text)
    allow_map = {}
    n = len(text)
    i = 0
    line = 1
    state = "code"
    comment_start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start = i
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start = i
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
        elif state == "line_comment":
            if c == "\n":
                _scan_allow(text[comment_start:i], line, allow_map)
                state = "code"
            else:
                out[i] = " "
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                _scan_allow(text[comment_start:i], line, allow_map)
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in ("string", "char"):
            if c == "\\":
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if (state == "string" and c == '"') or (
                    state == "char" and c == "'"):
                state = "code"
            elif c != "\n":
                out[i] = " "
        if c == "\n":
            line += 1
        i += 1
    stripped = "".join(out)

    # Blank preprocessor directives (joined over \-continuations) so macro
    # braces never corrupt scope tracking; keep their bodies for the
    # statement-level ioresult scan.
    macro_bodies = []
    lines = stripped.split("\n")
    j = 0
    while j < len(lines):
        if lines[j].lstrip().startswith("#"):
            start = j
            body = [lines[j]]
            while lines[j].rstrip().endswith("\\") and j + 1 < len(lines):
                j += 1
                body.append(lines[j])
            for k in range(start, j + 1):
                lines[k] = ""
            joined = " ".join(x.rstrip("\\") for x in body)
            if re.match(r"\s*#\s*define\b", joined):
                macro_bodies.append((start + 1, joined))
        j += 1
    return "\n".join(lines), allow_map, macro_bodies


def _scan_allow(comment, line, allow_map):
    for m in re.finditer(r"check:\s*allow\(\s*([\w-]+)", comment):
        allow_map.setdefault(line, set()).add(m.group(1))
        allow_map.setdefault(line + 1, set()).add(m.group(1))


def parse_latch_spec(header_text):
    """Parses the LATCH ORDER SPEC table and cross-checks it against the
    LatchClass enum in the same header (one source of truth, verified)."""
    m = re.search(r"BEGIN LATCH ORDER SPEC(.*?)END LATCH ORDER SPEC",
                  header_text, re.S)
    if not m:
        raise RuntimeError("LATCH ORDER SPEC table not found in " +
                           SPEC_HEADER)
    spec = {}
    for row in m.group(1).splitlines():
        rm = re.match(
            r"\s*//\s*(\d+)\s+(k\w+)\s+(.+?)\s+(forbidden|allowed)\s*$", row)
        if rm:
            spec[rm.group(2)] = LatchSpec(rank=int(rm.group(1)),
                                          owner=rm.group(3),
                                          io_allowed=rm.group(4) == "allowed")
    enum = dict(re.findall(r"(k\w+)\s*=\s*(\d+)\s*,", header_text))
    for name, val in enum.items():
        if name not in spec:
            raise RuntimeError(f"enum value {name} missing from spec table")
        if spec[name].rank != int(val):
            raise RuntimeError(
                f"spec rank for {name} ({spec[name].rank}) disagrees with "
                f"enum value ({val}) -- the table is the source of truth, "
                f"fix one of them")
    for name in spec:
        if name not in enum:
            raise RuntimeError(f"spec row {name} has no enum value")
    return spec


def build_latch_tables(header_paths):
    """Scans headers for TrackedMutex members: returns
    (by_type_member, by_member, container_elem) where
      by_type_member[(Type, member)] -> LatchClass name
      by_member[member] -> set of LatchClass names (ambiguity detection)
      container_elem[member] -> element Type for vector members."""
    by_type_member = {}
    by_member = {}
    container_elem = {}
    vec_re = re.compile(
        r"std::vector<\s*(?:std::unique_ptr<\s*(\w+)\s*>|(\w+))\s*>\s+"
        r"(\w+)\s*;")
    for path in header_paths:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text, _, _ = strip_code(raw)
        # Type aliases for tracked mutexes (e.g. `using ShardMutex = ...`).
        aliases = dict(re.findall(
            r"using\s+(\w+)\s*=\s*TrackedMutex<LatchClass::(k\w+)>\s*;",
            text))
        mutex_types = "|".join(
            ["TrackedMutex<LatchClass::(?:k\\w+)>"] + sorted(aliases))
        decl_re = re.compile(
            r"(?:mutable\s+)?(" + mutex_types + r")\s+(\w+)\s*;")
        # Line-based scan tracking the innermost class/struct per depth.
        depth = 0
        names = {}
        for ln in text.split("\n"):
            tm = re.search(r"\b(?:class|struct)\s+(?:TURBOBP_\w+"
                           r'(?:\("[^"]*"\))?\s+)?(\w+)\s*(?::[^;{]*)?\{', ln)
            if tm:
                names[depth] = tm.group(1)
            for dm in decl_re.finditer(ln):
                mutex_ty, member = dm.group(1), dm.group(2)
                am = re.search(r"LatchClass::(k\w+)", mutex_ty)
                latch = am.group(1) if am else aliases[mutex_ty]
                owner = names.get(depth - 1) or names.get(depth) or ""
                by_type_member[(owner, member)] = latch
                by_member.setdefault(member, set()).add(latch)
            for vm in vec_re.finditer(ln):
                elem = vm.group(1) or vm.group(2)
                container_elem[vm.group(3)] = elem
            depth += ln.count("{") - ln.count("}")
    return by_type_member, by_member, container_elem


class FileChecker:
    def __init__(self, path, spec, by_type_member, by_member, container_elem,
                 rules, crash_rule_applies):
        self.path = path
        self.spec = spec
        self.by_type_member = by_type_member
        self.by_member = by_member
        self.container_elem = container_elem
        self.rules = rules
        self.crash_rule_applies = crash_rule_applies
        self.violations = []

    # ---------------------------------------------------------------- util
    def _allowed(self, line, rule):
        return rule in self.allow_map.get(line, ())

    def _report(self, line, rule, msg):
        if rule in self.rules and not self._allowed(line, rule):
            self.violations.append(Violation(self.path, line, rule, msg))

    def _fn_scopes(self):
        return [s for s in self.stack if s.kind in ("function", "lambda")]

    def _var_type(self, var):
        for s in reversed(self.stack):
            if var in s.var_types:
                return s.var_types[var]
        return None

    def _enclosing_qualifier(self):
        for s in reversed(self.stack):
            if s.kind in ("function", "lambda") and s.qualifier:
                return s.qualifier
            if s.kind == "class" and s.name:
                # Inline method bodies inside a class definition.
                return s.name
        return ""

    # ------------------------------------------------------ lock resolution
    def resolve_lock_expr(self, expr):
        """Maps a lock-constructor argument to a LatchClass name or None."""
        expr = expr.strip().rstrip(");")
        if "LockShard" in expr:
            return "kBufferPool"
        m = re.match(r"(?:\*)?(\w+)\s*(?:->|\.)\s*(\w+)$", expr)
        if m:
            var, member = m.group(1), m.group(2)
            vt = self._var_type(var)
            if vt and (vt, member) in self.by_type_member:
                return self.by_type_member[(vt, member)]
            classes = self.by_member.get(member, set())
            if len(classes) == 1:
                return next(iter(classes))
            return None
        m = re.match(r"(\w+)$", expr)
        if m:
            member = m.group(1)
            qual = self._enclosing_qualifier()
            if (qual, member) in self.by_type_member:
                return self.by_type_member[(qual, member)]
            classes = self.by_member.get(member, set())
            if len(classes) == 1:
                return next(iter(classes))
        return None

    def held_locks(self):
        held = []
        for s in self.stack:
            held.extend(l for l in s.locks if l.active)
        return held

    def acquire(self, latch, var, line):
        for h in self.held_locks():
            if h.latch in LEAF_LATCHES:
                self._report(
                    line, "latch-order",
                    f"acquiring {latch} while holding the leaf latch "
                    f"{h.latch} (line {h.line}): the spec declares "
                    f"{h.latch} a leaf — release it before taking any "
                    f"other latch")
                continue
            hr, nr = self.spec[h.latch].rank, self.spec[latch].rank
            if hr == nr:
                self._report(
                    line, "latch-order",
                    f"acquiring {latch} while already holding {h.latch} "
                    f"(line {h.line}): same-class nesting is forbidden")
            elif hr > nr:
                self._report(
                    line, "latch-order",
                    f"acquiring {latch} (rank {nr}) while holding {h.latch} "
                    f"(rank {hr}, line {h.line}): latch ranks must be "
                    f"strictly increasing")
        self.stack[-1].locks.append(
            HeldLock(var=var, latch=latch, line=line))

    # ------------------------------------------------------------ statements
    def handle_statement(self, stmt, line):
        if not self._fn_scopes():
            return
        stmt = stmt.strip()
        if not stmt:
            return

        # Local type inference: `Type& var = ...` / `Type* var = ...` plus
        # bare declarations like `Partition* seed_part;`.
        for dm in re.finditer(
                r"(?:const\s+)?([A-Za-z_][\w:]*)\s*[&*]+\s*(\w+)\s*=", stmt):
            ty = dm.group(1).split("::")[-1]
            if ty not in ("auto",):
                self.stack[-1].var_types[dm.group(2)] = ty
        bm = re.match(
            r"(?:const\s+)?([A-Za-z_][\w:]*)\s*[&*]+\s*(\w+)$", stmt)
        if bm and bm.group(1) != "auto":
            self.stack[-1].var_types[bm.group(2)] = \
                bm.group(1).split("::")[-1]
        # `auto& sh = *pool.shards_[i]`: element type of a known container.
        am = re.match(
            r"(?:const\s+)?auto\s*[&*]+\s*(\w+)\s*=\s*\*?\s*"
            r"(?:\w+(?:\.|->))*(\w+)\s*\[.*\]$", stmt)
        if am:
            elem = self._var_type("$elem$" + am.group(2)) or \
                self.container_elem.get(am.group(2))
            if elem:
                self.stack[-1].var_types[am.group(1)] = elem
        else:
            # `auto& sh = *shard`: propagate a known var's type over deref.
            pm = re.match(
                r"(?:const\s+)?auto\s*[&*]+\s*(\w+)\s*=\s*\*\s*(\w+)$", stmt)
            if pm:
                src = self._var_type(pm.group(2))
                if src:
                    self.stack[-1].var_types[pm.group(1)] = src
        # Local containers whose element (or pair-first) type matters for
        # range-for inference: `std::vector<std::pair<Partition*, ...>> g;`.
        cm = re.search(
            r"std::vector<\s*(?:std::pair<\s*)?(?:std::unique_ptr<\s*)?"
            r"([A-Za-z_]\w*)\s*[*>,]", stmt)
        if cm:
            nm = re.search(r">\s+(\w+)\s*(?:;|=|$)", stmt)
            if nm:
                self.stack[-1].var_types["$elem$" + nm.group(1)] = \
                    cm.group(1)

        # Lock declarations.
        lm = LOCK_DECL.search(stmt)
        if lm:
            guard, var, arg = lm.group(1), lm.group(2), lm.group(3)
            arg = arg.split(",")[0]
            latch = self.resolve_lock_expr(arg)
            if latch is None and "LockShard" in stmt:
                latch = "kBufferPool"
            if latch is not None:
                self.acquire(latch, var, line)
            elif guard in ("TrackedLockGuard", "ShardLock"):
                self._report(
                    line, "latch-order",
                    f"cannot resolve the latch class of {guard} argument "
                    f"'{arg.strip()}' -- add a typed local or a "
                    f"`// check: allow(latch-order: ...)` directive")
            # std::lock_guard / unique_lock on unresolved (plain std::mutex)
            # expressions are outside the tracked hierarchy: ignored.
            return

        # unlock()/lock() toggles on held guard variables.
        tm = re.match(r"(\w+)\.(unlock|lock)\(\)$", stmt)
        if tm:
            var, op = tm.group(1), tm.group(2)
            for s in reversed(self.stack):
                for l in reversed(s.locks):
                    if l.var == var:
                        if op == "unlock":
                            l.active = False
                        else:
                            if not l.active:
                                l.active = True
                                # Re-taking: order-check against other held.
                                others = [h for h in self.held_locks()
                                          if h is not l]
                                for h in others:
                                    if (self.spec[h.latch].rank >=
                                            self.spec[l.latch].rank):
                                        self._report(
                                            line, "latch-order",
                                            f"re-acquiring {l.latch} while "
                                            f"holding {h.latch}")
                        return
            return

        self.scan_calls(stmt, line)

    def scan_calls(self, stmt, line):
        held_forbidden = [h for h in self.held_locks()
                          if not self.spec[h.latch].io_allowed]
        fn_scope = self._fn_scopes()[-1] if self._fn_scopes() else None

        if "TURBOBP_CRASH_POINT" in stmt and fn_scope is not None:
            fn_scope.has_crash_point = True

        for cm in CALL_RE.finditer(stmt):
            recv, fn = cm.group(1), cm.group(2)
            if fn in ENGINE_CALLS and recv and ENGINE_RECV.match(recv):
                held_engine_forbidden = [
                    h for h in self.held_locks()
                    if h.latch in ENGINE_FORBIDDEN]
                if held_engine_forbidden:
                    h = held_engine_forbidden[0]
                    self._report(
                        line, "async-io",
                        f"AsyncIoEngine::{fn}() while holding {h.latch} "
                        f"(acquired line {h.line}); engine completion "
                        f"callbacks take that latch class on a fresh stack "
                        f"-- release it before entering the engine")
            is_io = fn in IO_CALL_ANY_RECV or (
                fn in ("Read", "Write") and recv and DEVICE_RECV.match(recv))
            if not is_io:
                continue
            if held_forbidden:
                h = held_forbidden[0]
                self._report(
                    line, "io-under-latch",
                    f"device I/O call {fn}() while holding {h.latch} "
                    f"(acquired line {h.line}); the spec marks {h.latch} "
                    f"device-io=forbidden -- release the latch first")
            durable = fn in DURABLE_WRITE_ANY_RECV or (
                fn == "Write" and recv and DEVICE_RECV.match(recv))
            if durable and fn_scope is not None and \
                    not fn_scope.durable_write_line:
                fn_scope.durable_write_line = line

        self.check_dropped_result(stmt, line)

    def check_dropped_result(self, stmt, line):
        # A violation is a *bare* expression statement whose outermost
        # expression is a result-returning I/O call.
        m = re.match(
            r"^(?:(\w+(?:\[[^\]]*\])?)\s*(?:->|\.)\s*)?([A-Za-z_]\w*)\s*\(",
            stmt)
        if not m:
            return
        recv, fn = m.group(1), m.group(2)
        hit = fn in RESULT_FNS_ANY_RECV or (
            fn in RESULT_FNS_DEVICE_RECV and recv and DEVICE_RECV.match(recv))
        if not hit:
            return
        # Consumed if the call is not the entire statement (assignment,
        # return, wrap) -- those never re-match at position 0 -- so only a
        # full-statement match lands here. Verify the match really spans the
        # statement (no trailing operators like `.status`, `== x`, `? :`).
        close = self._matching_paren(stmt, m.end() - 1)
        if close is None or stmt[close + 1:].strip() not in ("", ";"):
            return
        self._report(
            line, "ioresult",
            f"result of {fn}() is dropped; assign it, wrap it "
            f"(TURBOBP_CHECK_OK) or discard explicitly with (void)")

    @staticmethod
    def _matching_paren(s, open_idx):
        depth = 0
        for i in range(open_idx, len(s)):
            if s[i] == "(":
                depth += 1
            elif s[i] == ")":
                depth -= 1
                if depth == 0:
                    return i
        return None

    # ----------------------------------------------------------- scope walk
    def classify_open(self, head, line):
        h = head.strip()
        if not h:
            return Scope(kind="block")
        if re.search(r"\bnamespace\b", h):
            return Scope(kind="namespace")
        cm = re.search(
            r"\b(?:class|struct|union)\s+(?:TURBOBP_\w+\s*(?:\([^()]*\))?"
            r"\s+)?(\w+)\s*(?:final\s*)?(?::[^;{()]*)?$", h)
        if cm:
            return Scope(kind="class", name=cm.group(1))
        lam = re.search(r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*"
                        r"(?:mutable\b\s*)?(?:->\s*[\w:<>&*\s]+)?$", h)
        if lam:
            sc = Scope(kind="lambda", start_line=line,
                       qualifier=self._enclosing_qualifier())
            return sc
        ctl = re.search(r"\b(if|for|while|switch|catch)\s*\(", h)
        last_tok = re.findall(r"[\w)]+", h)
        if h in ("else", "do", "try") or (
                last_tok and last_tok[-1] in ("else", "do", "try")):
            return Scope(kind="control")
        if ctl:
            # Control scope; harvest range-for element types. Handles plain
            # vars and structured bindings (`auto& [part, rec] : group`, the
            # first binding gets the element/pair-first type).
            sc = Scope(kind="control")
            fm = re.search(r"for\s*\(\s*(?:const\s+)?auto\s*[&*]?\s*"
                           r"(?:\[\s*(\w+)[^\]]*\]|(\w+))\s*:\s*"
                           r"(?:\w+(?:\.|->))*(\w+)", h)
            if fm:
                var, cont = fm.group(1) or fm.group(2), fm.group(3)
                elem = self._var_type("$elem$" + cont) or \
                    self.container_elem.get(cont)
                if elem:
                    sc.var_types[var] = elem
            else:
                fm2 = re.search(r"for\s*\(\s*(?:const\s+)?([A-Za-z_][\w:]*)"
                                r"\s*[&*]\s*(\w+)\s*:", h)
                if fm2:
                    sc.var_types[fm2.group(2)] = \
                        fm2.group(1).split("::")[-1]
            return sc
        # Function definition? Needs a parameter list and must not be an
        # initializer (`= {`) or a bare expression.
        if "(" in h and not h.endswith(("=", ",", "(")):
            nm = None
            for fm in re.finditer(r"([\w~]+)\s*\(", h):
                kw = fm.group(1)
                if kw not in CONTROL_KEYWORDS and not kw.startswith(
                        "TURBOBP_"):
                    nm = fm
                    break
            if nm:
                full = h[:nm.end() - 1].strip()
                qual = ""
                qm = re.search(r"(\w+)\s*::\s*[\w~]+$", full)
                if qm:
                    qual = qm.group(1)
                sc = Scope(kind="function", name=nm.group(1), qualifier=qual,
                           start_line=line)
                # Parameters that are pre-held locks (ShardLock& lock).
                pm = re.search(r"ShardLock\s*&\s*(\w+)", h)
                if pm:
                    sc.locks.append(HeldLock(var=pm.group(1),
                                             latch="kBufferPool", line=line))
                # Parameter type inference: `Type& var` / `Type* var`.
                params = h[nm.end():]
                for tm in re.finditer(
                        r"(?:const\s+)?([A-Za-z_][\w:]*)\s*[&*]+\s*(\w+)",
                        params):
                    sc.var_types[tm.group(2)] = tm.group(1).split("::")[-1]
                return sc
        return Scope(kind="block")

    def close_scope(self):
        sc = self.stack.pop()
        if sc.kind in ("function", "lambda") and self.crash_rule_applies:
            if sc.durable_write_line and not sc.has_crash_point:
                self._report(
                    sc.durable_write_line, "crash-point",
                    f"function '{sc.name or '<lambda>'}' performs a durable "
                    f"write but contains no TURBOBP_CRASH_POINT -- new "
                    f"durability edges must be coverable by the crash-"
                    f"torture matrix")
        elif sc.kind in ("function", "lambda") and sc.durable_write_line and \
                sc.has_crash_point is False and self.stack:
            # Outside crash-point dirs: attribute nothing, but let an
            # enclosing function know nothing (no propagation needed).
            pass

    def run(self, raw_text):
        text, self.allow_map, macro_bodies = strip_code(raw_text)
        self.stack = []
        line = 1
        chunk_start = 0
        chunk_line = 1
        paren = 0
        i = 0
        n = len(text)
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
            elif c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            elif c == ";" and paren == 0:
                self.handle_statement(text[chunk_start:i], chunk_line)
                chunk_start = i + 1
                chunk_line = line
            elif c == "{":
                head = text[chunk_start:i]
                sc = self.classify_open(head, chunk_line)
                sc.paren_depth_at_open = paren
                paren = 0
                self.stack.append(sc)
                chunk_start = i + 1
                chunk_line = line
            elif c == "}":
                self.handle_statement(text[chunk_start:i], chunk_line)
                if self.stack:
                    paren = self.stack[-1].paren_depth_at_open
                    self.close_scope()
                chunk_start = i + 1
                chunk_line = line
            i += 1

        # Macro bodies: statement-level ioresult scan only.
        for mline, body in macro_bodies:
            body = re.sub(r"^\s*#\s*define\s+\w+(\([^)]*\))?", "", body)
            self.stack = [Scope(kind="function", name="<macro>",
                                start_line=mline)]
            for stmt in body.split(";"):
                self.check_dropped_result(stmt.strip(), mline)
            self.stack = []
        return self.violations


def default_file_set():
    files = []
    for root, dirs, names in os.walk(os.path.join(REPO_ROOT, "src")):
        dirs.sort()
        for nm in sorted(names):
            if nm.endswith((".h", ".cc")):
                files.append(os.path.join(root, nm))
    return files


def header_file_set():
    files = []
    for root, dirs, names in os.walk(os.path.join(REPO_ROOT, "src")):
        dirs.sort()
        for nm in sorted(names):
            if nm.endswith(".h"):
                files.append(os.path.join(root, nm))
    return files


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to check (default: all of src/)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset to enforce")
    ap.add_argument("--list-latches", action="store_true",
                    help="dump the parsed latch spec and mutex tables")
    args = ap.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for r in rules:
        if r not in RULES:
            print(f"unknown rule '{r}' (known: {', '.join(RULES)})",
                  file=sys.stderr)
            return 2

    spec_path = os.path.join(REPO_ROOT, SPEC_HEADER)
    try:
        with open(spec_path, encoding="utf-8") as f:
            spec = parse_latch_spec(f.read())
    except (OSError, RuntimeError) as e:
        print(f"static_check: {e}", file=sys.stderr)
        return 2

    by_type_member, by_member, container_elem = \
        build_latch_tables(header_file_set())

    if args.list_latches:
        for name, s in sorted(spec.items(), key=lambda kv: kv[1].rank):
            print(f"{s.rank}  {name:<14} {s.owner:<32} "
                  f"{'allowed' if s.io_allowed else 'forbidden'}")
        for (ty, member), latch in sorted(by_type_member.items()):
            print(f"  {ty}::{member} -> {latch}")
        return 0

    explicit = bool(args.files)
    files = [os.path.abspath(f) for f in args.files] or default_file_set()

    all_violations = []
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        crash_applies = explicit or any(
            rel.startswith(d + os.sep) or rel.startswith(d + "/")
            for d in CRASH_POINT_DIRS)
        try:
            with open(path, encoding="utf-8") as f:
                raw = f.read()
        except OSError as e:
            print(f"static_check: {e}", file=sys.stderr)
            return 2
        checker = FileChecker(rel, spec, by_type_member, by_member,
                              container_elem, rules, crash_applies)
        all_violations.extend(checker.run(raw))

    for v in sorted(all_violations, key=lambda v: (v.path, v.line)):
        print(v)
    if all_violations:
        print(f"static_check: {len(all_violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
