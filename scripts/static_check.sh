#!/usr/bin/env bash
# Structural static checks for the turbobp tree.
#
# Drives tools/analysis/static_check.py (pure Python, no LLVM dev-libs) in
# two passes:
#   1. the real tree (src/) must be clean, and
#   2. the negative harness (tests/static/compile_fail/) must be flagged --
#      each fixture seeds one violation class, and a checker that stops
#      rejecting it is itself a regression.
#
# The Clang thread-safety half of the discipline is a separate build
# (cmake -DTURBOBP_THREAD_SAFETY=ON with clang++); see README "Static
# analysis". Exit status: 0 clean, non-zero on any violation or harness
# regression.

set -u
cd "$(dirname "$0")/.."

PYTHON=${PYTHON:-python3}
fail=0

echo "== static_check: src/ =="
if "$PYTHON" tools/analysis/static_check.py; then
  echo "ok: src/ is clean"
else
  fail=1
fi

echo "== static_check: negative harness =="
cases=(
  "io_under_latch:io-under-latch"
  "latch_order_inversion:latch-order"
  "dropped_ioresult:ioresult"
  "missing_crash_point:crash-point"
  "submit_under_latch:async-io"
)
for spec in "${cases[@]}"; do
  name=${spec%%:*}
  rule=${spec##*:}
  if "$PYTHON" tools/analysis/static_check.py --rules="$rule" \
      "tests/static/compile_fail/$name.cc" >/dev/null 2>&1; then
    echo "FAIL: seeded violation $name.cc was NOT flagged by rule $rule"
    fail=1
  else
    echo "ok: $name.cc flagged by $rule"
  fi
done

exit $fail
