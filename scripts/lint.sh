#!/usr/bin/env bash
# turbobp lint: custom style/safety checks plus clang-tidy (when installed).
#
# Run from the repository root, or via `cmake --build build --target lint`.
# Exits non-zero if any check fails. Individual lines may opt out of a rule
# with an explicit annotation, e.g.  // lint: allow(raw-new) — the point is
# that every exception is visible and greppable.

set -u
cd "$(dirname "$0")/.."

FAILED=0
fail() {
  echo "lint: $1" >&2
  FAILED=1
}

SRC_FILES=$(find src tests bench examples -name '*.cc' -o -name '*.h' | sort)
HDR_FILES=$(find src -name '*.h' | sort)

# --- no raw new/delete outside arenas ---------------------------------------
# Ownership lives in containers and smart pointers; the only allowed raw
# allocations are explicitly annotated (factory for a private constructor,
# self-owning simulator event objects).
while IFS= read -r line; do
  [ -z "$line" ] && continue
  fail "raw new/delete (annotate with 'lint: allow(raw-new)' if intended): $line"
done < <(grep -nE '(^|[^_[:alnum:]])(new|delete)([[:space:]]+[[:alnum:]_:]|[[:space:]]*\[)' \
           $SRC_FILES \
         | grep -vE '//.*(new|delete)' \
         | grep -v 'lint: allow(raw-new)' \
         | grep -vE 'delete\]|= delete')

# --- no ignored Status -------------------------------------------------------
# The compiler enforces this through the [[nodiscard]] attribute on Status;
# lint only guards the attribute itself against accidental removal.
if ! grep -q 'class \[\[nodiscard\]\] Status' src/common/status.h; then
  fail "Status must stay [[nodiscard]] (src/common/status.h)"
fi

# --- include guards ----------------------------------------------------------
# Every header under src/ uses TURBOBP_<PATH>_H_ derived from its path.
for hdr in $HDR_FILES; do
  rel="${hdr#src/}"
  want="TURBOBP_$(echo "$rel" | tr 'a-z/.' 'A-Z__')_"
  if ! grep -q "#ifndef ${want}\$" "$hdr" || ! grep -q "#define ${want}\$" "$hdr"; then
    fail "$hdr: include guard must be ${want}"
  fi
done

# --- style -------------------------------------------------------------------
while IFS= read -r line; do
  [ -z "$line" ] && continue
  fail "using-directive pollutes the global namespace: $line"
done < <(grep -n 'using namespace' $SRC_FILES)

while IFS= read -r line; do
  [ -z "$line" ] && continue
  fail "literal tab character: $line"
done < <(grep -nP '\t' $SRC_FILES)

for f in $SRC_FILES; do
  case "$f" in
    src/*)
      if grep -q '^namespace turbobp {' "$f" &&
         ! grep -q '}  // namespace turbobp' "$f"; then
        fail "$f: missing '}  // namespace turbobp' closing comment"
      fi
      ;;
  esac
done

# --- clang-tidy (warning-count ratchet) --------------------------------------
# Static analysis over the library sources when clang-tidy and a compile
# database are available (CI installs clang-tidy; local builds may not).
# The finding count is ratcheted against scripts/lint_baseline.txt: more
# findings than the baseline is a regression and fails; fewer is a prompt
# to lower the baseline in the same commit.
BUILD_DIR="${TURBOBP_BUILD_DIR:-build}"
BASELINE_FILE=scripts/lint_baseline.txt
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    TIDY_LOG=$(mktemp)
    clang-tidy --quiet -p "$BUILD_DIR" $(find src -name '*.cc' | sort) \
      >"$TIDY_LOG" 2>/dev/null
    count=$(grep -cE '(warning|error):' "$TIDY_LOG" || true)
    baseline=$(grep -E '^[0-9]+$' "$BASELINE_FILE" || echo 0)
    if [ "$count" -gt "$baseline" ]; then
      grep -E '(warning|error):' "$TIDY_LOG" >&2
      fail "clang-tidy: $count finding(s) exceeds the ratchet baseline of $baseline ($BASELINE_FILE)"
    elif [ "$count" -lt "$baseline" ]; then
      echo "lint: note: clang-tidy findings ($count) below baseline ($baseline); lower $BASELINE_FILE to lock in the improvement" >&2
    fi
    rm -f "$TIDY_LOG"
  else
    echo "lint: note: $BUILD_DIR/compile_commands.json missing; skipping clang-tidy" >&2
  fi
else
  echo "lint: note: clang-tidy not installed; skipping static analysis" >&2
fi

if [ "$FAILED" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
