#!/usr/bin/env bash
# turbobp crash torture: the full deterministic crash matrix.
#
#   {noSSD, CW, DW, LC, TAC} x every TURBOBP_CRASH_POINT x every hit
#   x {clean log tail, torn log tail} x N seeds,
#
# each scenario recovered and held to the shadow oracle (exact durable
# contents, clean InvariantAuditor, convergent + idempotent redo). The
# default ctest suite runs the quick one-seed subset of the same matrix;
# this script is the long-form CI job and the local repro tool.
#
# Usage: scripts/crash_torture.sh [build-dir] [seeds...]
#   scripts/crash_torture.sh                 # build/ with seeds 1..5
#   scripts/crash_torture.sh build 7 11 13   # existing build dir, 3 seeds
#
# On failure, every violated scenario prints as a single line of the form
#   [design=LC seed=3 point=ckpt/after-ssd-flush hit=2 torn=1] <what broke>
# which RunScenario() replays in isolation for debugging.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift $(($# > 0 ? 1 : 0))
SEEDS="${*:-1 2 3 4 5}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
    -DTURBOBP_CRASH_POINTS=ON -DTURBOBP_AUDIT=ON
fi
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target fault_crash_matrix_test wal_recovery_idempotence_test \
  wal_log_manager_test fault_checkpoint_flush_failure_test \
  fault_restart_matrix_test core_ssd_metadata_journal_test

echo "crash torture: full sweep (cold + warm-restart), seeds: ${SEEDS}"
TURBOBP_TORTURE_FULL=1 TURBOBP_TORTURE_SEEDS="${SEEDS}" \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"$(nproc)" \
  -R 'crash_matrix|recovery_idempotence|log_manager|checkpoint_flush_failure|restart_matrix|ssd_metadata_journal'

echo "crash torture: all scenarios recovered clean"
