file(REMOVE_RECURSE
  "CMakeFiles/storage_mem_device_test.dir/storage/mem_device_test.cc.o"
  "CMakeFiles/storage_mem_device_test.dir/storage/mem_device_test.cc.o.d"
  "storage_mem_device_test"
  "storage_mem_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_mem_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
