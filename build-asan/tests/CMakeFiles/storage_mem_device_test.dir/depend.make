# Empty dependencies file for storage_mem_device_test.
# This may be replaced when dependencies are built.
