# Empty compiler generated dependencies file for storage_read_ahead_test.
# This may be replaced when dependencies are built.
