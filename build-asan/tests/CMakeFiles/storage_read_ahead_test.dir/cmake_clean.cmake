file(REMOVE_RECURSE
  "CMakeFiles/storage_read_ahead_test.dir/storage/read_ahead_test.cc.o"
  "CMakeFiles/storage_read_ahead_test.dir/storage/read_ahead_test.cc.o.d"
  "storage_read_ahead_test"
  "storage_read_ahead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_read_ahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
