file(REMOVE_RECURSE
  "CMakeFiles/core_lazy_cleaning_test.dir/core/lazy_cleaning_test.cc.o"
  "CMakeFiles/core_lazy_cleaning_test.dir/core/lazy_cleaning_test.cc.o.d"
  "core_lazy_cleaning_test"
  "core_lazy_cleaning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lazy_cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
