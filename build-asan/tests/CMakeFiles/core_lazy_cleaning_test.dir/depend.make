# Empty dependencies file for core_lazy_cleaning_test.
# This may be replaced when dependencies are built.
