# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_lazy_cleaning_test.
