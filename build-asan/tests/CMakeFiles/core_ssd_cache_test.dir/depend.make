# Empty dependencies file for core_ssd_cache_test.
# This may be replaced when dependencies are built.
