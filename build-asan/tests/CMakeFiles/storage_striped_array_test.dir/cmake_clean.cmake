file(REMOVE_RECURSE
  "CMakeFiles/storage_striped_array_test.dir/storage/striped_array_test.cc.o"
  "CMakeFiles/storage_striped_array_test.dir/storage/striped_array_test.cc.o.d"
  "storage_striped_array_test"
  "storage_striped_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_striped_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
