# Empty dependencies file for storage_striped_array_test.
# This may be replaced when dependencies are built.
