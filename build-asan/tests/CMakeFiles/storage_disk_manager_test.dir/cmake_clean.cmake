file(REMOVE_RECURSE
  "CMakeFiles/storage_disk_manager_test.dir/storage/disk_manager_test.cc.o"
  "CMakeFiles/storage_disk_manager_test.dir/storage/disk_manager_test.cc.o.d"
  "storage_disk_manager_test"
  "storage_disk_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_disk_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
