# Empty compiler generated dependencies file for storage_sim_device_test.
# This may be replaced when dependencies are built.
