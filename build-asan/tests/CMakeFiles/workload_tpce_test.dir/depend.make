# Empty dependencies file for workload_tpce_test.
# This may be replaced when dependencies are built.
