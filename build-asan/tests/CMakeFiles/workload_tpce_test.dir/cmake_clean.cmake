file(REMOVE_RECURSE
  "CMakeFiles/workload_tpce_test.dir/workload/tpce_test.cc.o"
  "CMakeFiles/workload_tpce_test.dir/workload/tpce_test.cc.o.d"
  "workload_tpce_test"
  "workload_tpce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
