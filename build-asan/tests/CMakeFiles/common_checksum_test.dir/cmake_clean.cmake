file(REMOVE_RECURSE
  "CMakeFiles/common_checksum_test.dir/common/checksum_test.cc.o"
  "CMakeFiles/common_checksum_test.dir/common/checksum_test.cc.o.d"
  "common_checksum_test"
  "common_checksum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
