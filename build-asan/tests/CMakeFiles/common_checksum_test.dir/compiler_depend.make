# Empty compiler generated dependencies file for common_checksum_test.
# This may be replaced when dependencies are built.
