file(REMOVE_RECURSE
  "CMakeFiles/wal_checkpoint_recovery_test.dir/wal/checkpoint_recovery_test.cc.o"
  "CMakeFiles/wal_checkpoint_recovery_test.dir/wal/checkpoint_recovery_test.cc.o.d"
  "wal_checkpoint_recovery_test"
  "wal_checkpoint_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_checkpoint_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
