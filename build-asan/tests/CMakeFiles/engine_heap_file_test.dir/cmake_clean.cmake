file(REMOVE_RECURSE
  "CMakeFiles/engine_heap_file_test.dir/engine/heap_file_test.cc.o"
  "CMakeFiles/engine_heap_file_test.dir/engine/heap_file_test.cc.o.d"
  "engine_heap_file_test"
  "engine_heap_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_heap_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
