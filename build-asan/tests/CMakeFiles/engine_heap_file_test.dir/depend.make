# Empty dependencies file for engine_heap_file_test.
# This may be replaced when dependencies are built.
