# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for engine_heap_file_test.
