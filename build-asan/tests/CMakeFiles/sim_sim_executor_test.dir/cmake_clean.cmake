file(REMOVE_RECURSE
  "CMakeFiles/sim_sim_executor_test.dir/sim/sim_executor_test.cc.o"
  "CMakeFiles/sim_sim_executor_test.dir/sim/sim_executor_test.cc.o.d"
  "sim_sim_executor_test"
  "sim_sim_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sim_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
