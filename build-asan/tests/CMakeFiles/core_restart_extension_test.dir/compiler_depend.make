# Empty compiler generated dependencies file for core_restart_extension_test.
# This may be replaced when dependencies are built.
