file(REMOVE_RECURSE
  "CMakeFiles/core_restart_extension_test.dir/core/restart_extension_test.cc.o"
  "CMakeFiles/core_restart_extension_test.dir/core/restart_extension_test.cc.o.d"
  "core_restart_extension_test"
  "core_restart_extension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_restart_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
