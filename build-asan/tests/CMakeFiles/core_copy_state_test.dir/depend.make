# Empty dependencies file for core_copy_state_test.
# This may be replaced when dependencies are built.
