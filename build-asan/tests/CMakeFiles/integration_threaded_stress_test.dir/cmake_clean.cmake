file(REMOVE_RECURSE
  "CMakeFiles/integration_threaded_stress_test.dir/integration/threaded_stress_test.cc.o"
  "CMakeFiles/integration_threaded_stress_test.dir/integration/threaded_stress_test.cc.o.d"
  "integration_threaded_stress_test"
  "integration_threaded_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_threaded_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
