# Empty compiler generated dependencies file for integration_threaded_stress_test.
# This may be replaced when dependencies are built.
