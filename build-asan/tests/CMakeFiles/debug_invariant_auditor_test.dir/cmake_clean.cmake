file(REMOVE_RECURSE
  "CMakeFiles/debug_invariant_auditor_test.dir/debug/invariant_auditor_test.cc.o"
  "CMakeFiles/debug_invariant_auditor_test.dir/debug/invariant_auditor_test.cc.o.d"
  "debug_invariant_auditor_test"
  "debug_invariant_auditor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_invariant_auditor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
