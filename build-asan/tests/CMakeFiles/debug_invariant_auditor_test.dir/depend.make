# Empty dependencies file for debug_invariant_auditor_test.
# This may be replaced when dependencies are built.
