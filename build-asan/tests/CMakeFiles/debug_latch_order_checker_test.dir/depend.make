# Empty dependencies file for debug_latch_order_checker_test.
# This may be replaced when dependencies are built.
