file(REMOVE_RECURSE
  "CMakeFiles/debug_latch_order_checker_test.dir/debug/latch_order_checker_test.cc.o"
  "CMakeFiles/debug_latch_order_checker_test.dir/debug/latch_order_checker_test.cc.o.d"
  "debug_latch_order_checker_test"
  "debug_latch_order_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_latch_order_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
