# Empty compiler generated dependencies file for sim_device_model_test.
# This may be replaced when dependencies are built.
