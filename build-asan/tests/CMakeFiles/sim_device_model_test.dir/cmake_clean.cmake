file(REMOVE_RECURSE
  "CMakeFiles/sim_device_model_test.dir/sim/device_model_test.cc.o"
  "CMakeFiles/sim_device_model_test.dir/sim/device_model_test.cc.o.d"
  "sim_device_model_test"
  "sim_device_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_device_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
