file(REMOVE_RECURSE
  "CMakeFiles/wal_checkpoint_manager_test.dir/wal/checkpoint_manager_test.cc.o"
  "CMakeFiles/wal_checkpoint_manager_test.dir/wal/checkpoint_manager_test.cc.o.d"
  "wal_checkpoint_manager_test"
  "wal_checkpoint_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_checkpoint_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
