# Empty compiler generated dependencies file for wal_checkpoint_manager_test.
# This may be replaced when dependencies are built.
