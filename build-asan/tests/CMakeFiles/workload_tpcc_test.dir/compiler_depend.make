# Empty compiler generated dependencies file for workload_tpcc_test.
# This may be replaced when dependencies are built.
