file(REMOVE_RECURSE
  "CMakeFiles/workload_tpcc_test.dir/workload/tpcc_test.cc.o"
  "CMakeFiles/workload_tpcc_test.dir/workload/tpcc_test.cc.o.d"
  "workload_tpcc_test"
  "workload_tpcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
