# Empty dependencies file for integration_design_behavior_test.
# This may be replaced when dependencies are built.
