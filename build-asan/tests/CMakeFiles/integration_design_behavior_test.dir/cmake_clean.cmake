file(REMOVE_RECURSE
  "CMakeFiles/integration_design_behavior_test.dir/integration/design_behavior_test.cc.o"
  "CMakeFiles/integration_design_behavior_test.dir/integration/design_behavior_test.cc.o.d"
  "integration_design_behavior_test"
  "integration_design_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_design_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
