file(REMOVE_RECURSE
  "CMakeFiles/workload_ring_bounds_test.dir/workload/ring_bounds_test.cc.o"
  "CMakeFiles/workload_ring_bounds_test.dir/workload/ring_bounds_test.cc.o.d"
  "workload_ring_bounds_test"
  "workload_ring_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_ring_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
