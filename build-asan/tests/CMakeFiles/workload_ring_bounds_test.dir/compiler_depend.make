# Empty compiler generated dependencies file for workload_ring_bounds_test.
# This may be replaced when dependencies are built.
