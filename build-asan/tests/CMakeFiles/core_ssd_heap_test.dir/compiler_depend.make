# Empty compiler generated dependencies file for core_ssd_heap_test.
# This may be replaced when dependencies are built.
