file(REMOVE_RECURSE
  "CMakeFiles/core_ssd_heap_test.dir/core/ssd_heap_test.cc.o"
  "CMakeFiles/core_ssd_heap_test.dir/core/ssd_heap_test.cc.o.d"
  "core_ssd_heap_test"
  "core_ssd_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ssd_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
