# Empty dependencies file for storage_page_test.
# This may be replaced when dependencies are built.
