file(REMOVE_RECURSE
  "CMakeFiles/storage_page_test.dir/storage/page_test.cc.o"
  "CMakeFiles/storage_page_test.dir/storage/page_test.cc.o.d"
  "storage_page_test"
  "storage_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
