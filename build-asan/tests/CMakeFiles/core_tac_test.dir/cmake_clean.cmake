file(REMOVE_RECURSE
  "CMakeFiles/core_tac_test.dir/core/tac_test.cc.o"
  "CMakeFiles/core_tac_test.dir/core/tac_test.cc.o.d"
  "core_tac_test"
  "core_tac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
