# Empty compiler generated dependencies file for core_tac_test.
# This may be replaced when dependencies are built.
