# Empty dependencies file for workload_tpch_test.
# This may be replaced when dependencies are built.
