file(REMOVE_RECURSE
  "CMakeFiles/workload_tpch_test.dir/workload/tpch_test.cc.o"
  "CMakeFiles/workload_tpch_test.dir/workload/tpch_test.cc.o.d"
  "workload_tpch_test"
  "workload_tpch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
