# Empty compiler generated dependencies file for workload_tpch_queries_test.
# This may be replaced when dependencies are built.
