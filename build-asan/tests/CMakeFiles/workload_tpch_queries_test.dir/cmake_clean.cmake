file(REMOVE_RECURSE
  "CMakeFiles/workload_tpch_queries_test.dir/workload/tpch_queries_test.cc.o"
  "CMakeFiles/workload_tpch_queries_test.dir/workload/tpch_queries_test.cc.o.d"
  "workload_tpch_queries_test"
  "workload_tpch_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpch_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
