# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for buffer_prefetch_trim_test.
