file(REMOVE_RECURSE
  "CMakeFiles/buffer_prefetch_trim_test.dir/buffer/prefetch_trim_test.cc.o"
  "CMakeFiles/buffer_prefetch_trim_test.dir/buffer/prefetch_trim_test.cc.o.d"
  "buffer_prefetch_trim_test"
  "buffer_prefetch_trim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_prefetch_trim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
