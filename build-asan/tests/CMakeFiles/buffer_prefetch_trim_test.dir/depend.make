# Empty dependencies file for buffer_prefetch_trim_test.
# This may be replaced when dependencies are built.
