# Empty dependencies file for engine_bplus_tree_test.
# This may be replaced when dependencies are built.
