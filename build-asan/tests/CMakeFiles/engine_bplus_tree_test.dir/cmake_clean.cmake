file(REMOVE_RECURSE
  "CMakeFiles/engine_bplus_tree_test.dir/engine/bplus_tree_test.cc.o"
  "CMakeFiles/engine_bplus_tree_test.dir/engine/bplus_tree_test.cc.o.d"
  "engine_bplus_tree_test"
  "engine_bplus_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_bplus_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
