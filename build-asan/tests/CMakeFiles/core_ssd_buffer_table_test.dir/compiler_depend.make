# Empty compiler generated dependencies file for core_ssd_buffer_table_test.
# This may be replaced when dependencies are built.
