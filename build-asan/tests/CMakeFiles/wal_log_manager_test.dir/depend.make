# Empty dependencies file for wal_log_manager_test.
# This may be replaced when dependencies are built.
