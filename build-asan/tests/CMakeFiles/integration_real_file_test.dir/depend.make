# Empty dependencies file for integration_real_file_test.
# This may be replaced when dependencies are built.
