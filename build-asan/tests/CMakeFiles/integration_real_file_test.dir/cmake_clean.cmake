file(REMOVE_RECURSE
  "CMakeFiles/integration_real_file_test.dir/integration/real_file_test.cc.o"
  "CMakeFiles/integration_real_file_test.dir/integration/real_file_test.cc.o.d"
  "integration_real_file_test"
  "integration_real_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_real_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
