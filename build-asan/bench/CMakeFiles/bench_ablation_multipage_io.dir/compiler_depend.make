# Empty compiler generated dependencies file for bench_ablation_multipage_io.
# This may be replaced when dependencies are built.
