file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_checkpoint_interval.dir/bench_fig9_checkpoint_interval.cc.o"
  "CMakeFiles/bench_fig9_checkpoint_interval.dir/bench_fig9_checkpoint_interval.cc.o.d"
  "bench_fig9_checkpoint_interval"
  "bench_fig9_checkpoint_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_checkpoint_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
