# Empty compiler generated dependencies file for bench_fig9_checkpoint_interval.
# This may be replaced when dependencies are built.
