# Empty compiler generated dependencies file for bench_fig5_tpch_speedup.
# This may be replaced when dependencies are built.
