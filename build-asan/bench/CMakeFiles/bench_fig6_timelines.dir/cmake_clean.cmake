file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_timelines.dir/bench_fig6_timelines.cc.o"
  "CMakeFiles/bench_fig6_timelines.dir/bench_fig6_timelines.cc.o.d"
  "bench_fig6_timelines"
  "bench_fig6_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
