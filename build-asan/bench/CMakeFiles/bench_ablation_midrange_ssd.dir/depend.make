# Empty dependencies file for bench_ablation_midrange_ssd.
# This may be replaced when dependencies are built.
