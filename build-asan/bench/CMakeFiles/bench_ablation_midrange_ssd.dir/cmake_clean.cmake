file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_midrange_ssd.dir/bench_ablation_midrange_ssd.cc.o"
  "CMakeFiles/bench_ablation_midrange_ssd.dir/bench_ablation_midrange_ssd.cc.o.d"
  "bench_ablation_midrange_ssd"
  "bench_ablation_midrange_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_midrange_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
