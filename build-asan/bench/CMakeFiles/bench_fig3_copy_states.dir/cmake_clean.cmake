file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_copy_states.dir/bench_fig3_copy_states.cc.o"
  "CMakeFiles/bench_fig3_copy_states.dir/bench_fig3_copy_states.cc.o.d"
  "bench_fig3_copy_states"
  "bench_fig3_copy_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_copy_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
