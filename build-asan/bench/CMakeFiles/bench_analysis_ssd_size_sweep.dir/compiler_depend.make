# Empty compiler generated dependencies file for bench_analysis_ssd_size_sweep.
# This may be replaced when dependencies are built.
