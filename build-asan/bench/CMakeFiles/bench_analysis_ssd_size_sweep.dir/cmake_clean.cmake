file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_ssd_size_sweep.dir/bench_analysis_ssd_size_sweep.cc.o"
  "CMakeFiles/bench_analysis_ssd_size_sweep.dir/bench_analysis_ssd_size_sweep.cc.o.d"
  "bench_analysis_ssd_size_sweep"
  "bench_analysis_ssd_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_ssd_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
