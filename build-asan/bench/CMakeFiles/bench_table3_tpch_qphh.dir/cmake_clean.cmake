file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tpch_qphh.dir/bench_table3_tpch_qphh.cc.o"
  "CMakeFiles/bench_table3_tpch_qphh.dir/bench_table3_tpch_qphh.cc.o.d"
  "bench_table3_tpch_qphh"
  "bench_table3_tpch_qphh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tpch_qphh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
