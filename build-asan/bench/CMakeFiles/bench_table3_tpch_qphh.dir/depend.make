# Empty dependencies file for bench_table3_tpch_qphh.
# This may be replaced when dependencies are built.
