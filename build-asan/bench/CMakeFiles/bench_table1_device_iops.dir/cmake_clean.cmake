file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_device_iops.dir/bench_table1_device_iops.cc.o"
  "CMakeFiles/bench_table1_device_iops.dir/bench_table1_device_iops.cc.o.d"
  "bench_table1_device_iops"
  "bench_table1_device_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_device_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
