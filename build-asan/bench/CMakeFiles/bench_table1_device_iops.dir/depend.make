# Empty dependencies file for bench_table1_device_iops.
# This may be replaced when dependencies are built.
