file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_readahead_accuracy.dir/bench_ablation_readahead_accuracy.cc.o"
  "CMakeFiles/bench_ablation_readahead_accuracy.dir/bench_ablation_readahead_accuracy.cc.o.d"
  "bench_ablation_readahead_accuracy"
  "bench_ablation_readahead_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_readahead_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
