# Empty dependencies file for bench_ablation_readahead_accuracy.
# This may be replaced when dependencies are built.
