# Empty compiler generated dependencies file for bench_ablation_fill_and_throttle.
# This may be replaced when dependencies are built.
