file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fill_and_throttle.dir/bench_ablation_fill_and_throttle.cc.o"
  "CMakeFiles/bench_ablation_fill_and_throttle.dir/bench_ablation_fill_and_throttle.cc.o.d"
  "bench_ablation_fill_and_throttle"
  "bench_ablation_fill_and_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fill_and_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
