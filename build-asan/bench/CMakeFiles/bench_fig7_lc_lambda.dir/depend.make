# Empty dependencies file for bench_fig7_lc_lambda.
# This may be replaced when dependencies are built.
