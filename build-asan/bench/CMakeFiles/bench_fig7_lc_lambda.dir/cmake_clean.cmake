file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lc_lambda.dir/bench_fig7_lc_lambda.cc.o"
  "CMakeFiles/bench_fig7_lc_lambda.dir/bench_fig7_lc_lambda.cc.o.d"
  "bench_fig7_lc_lambda"
  "bench_fig7_lc_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lc_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
