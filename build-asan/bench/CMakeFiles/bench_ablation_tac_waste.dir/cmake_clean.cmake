file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tac_waste.dir/bench_ablation_tac_waste.cc.o"
  "CMakeFiles/bench_ablation_tac_waste.dir/bench_ablation_tac_waste.cc.o.d"
  "bench_ablation_tac_waste"
  "bench_ablation_tac_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tac_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
