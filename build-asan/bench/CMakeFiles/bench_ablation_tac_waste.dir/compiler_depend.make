# Empty compiler generated dependencies file for bench_ablation_tac_waste.
# This may be replaced when dependencies are built.
