file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cw.dir/bench_ablation_cw.cc.o"
  "CMakeFiles/bench_ablation_cw.dir/bench_ablation_cw.cc.o.d"
  "bench_ablation_cw"
  "bench_ablation_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
