# Empty dependencies file for bench_ablation_cw.
# This may be replaced when dependencies are built.
