file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ssd_restart.dir/bench_ext_ssd_restart.cc.o"
  "CMakeFiles/bench_ext_ssd_restart.dir/bench_ext_ssd_restart.cc.o.d"
  "bench_ext_ssd_restart"
  "bench_ext_ssd_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ssd_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
