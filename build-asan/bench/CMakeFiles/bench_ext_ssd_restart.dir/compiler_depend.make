# Empty compiler generated dependencies file for bench_ext_ssd_restart.
# This may be replaced when dependencies are built.
