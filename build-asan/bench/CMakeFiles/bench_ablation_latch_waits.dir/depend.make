# Empty dependencies file for bench_ablation_latch_waits.
# This may be replaced when dependencies are built.
