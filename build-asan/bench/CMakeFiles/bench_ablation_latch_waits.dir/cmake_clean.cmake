file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_latch_waits.dir/bench_ablation_latch_waits.cc.o"
  "CMakeFiles/bench_ablation_latch_waits.dir/bench_ablation_latch_waits.cc.o.d"
  "bench_ablation_latch_waits"
  "bench_ablation_latch_waits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_latch_waits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
