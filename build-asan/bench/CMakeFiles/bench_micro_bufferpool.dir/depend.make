# Empty dependencies file for bench_micro_bufferpool.
# This may be replaced when dependencies are built.
