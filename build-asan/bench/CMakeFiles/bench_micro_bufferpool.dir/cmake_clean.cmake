file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bufferpool.dir/bench_micro_bufferpool.cc.o"
  "CMakeFiles/bench_micro_bufferpool.dir/bench_micro_bufferpool.cc.o.d"
  "bench_micro_bufferpool"
  "bench_micro_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
