# Empty dependencies file for dss_reporting.
# This may be replaced when dependencies are built.
