file(REMOVE_RECURSE
  "CMakeFiles/dss_reporting.dir/dss_reporting.cpp.o"
  "CMakeFiles/dss_reporting.dir/dss_reporting.cpp.o.d"
  "dss_reporting"
  "dss_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
