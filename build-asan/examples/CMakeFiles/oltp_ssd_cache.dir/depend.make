# Empty dependencies file for oltp_ssd_cache.
# This may be replaced when dependencies are built.
