file(REMOVE_RECURSE
  "CMakeFiles/oltp_ssd_cache.dir/oltp_ssd_cache.cpp.o"
  "CMakeFiles/oltp_ssd_cache.dir/oltp_ssd_cache.cpp.o.d"
  "oltp_ssd_cache"
  "oltp_ssd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_ssd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
