
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/buffer_pool.cc" "src/CMakeFiles/turbobp.dir/buffer/buffer_pool.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/buffer/buffer_pool.cc.o.d"
  "/root/repo/src/common/checksum.cc" "src/CMakeFiles/turbobp.dir/common/checksum.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/common/checksum.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/turbobp.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/turbobp.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/common/stats.cc.o.d"
  "/root/repo/src/core/clean_write.cc" "src/CMakeFiles/turbobp.dir/core/clean_write.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/clean_write.cc.o.d"
  "/root/repo/src/core/dual_write.cc" "src/CMakeFiles/turbobp.dir/core/dual_write.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/dual_write.cc.o.d"
  "/root/repo/src/core/lazy_cleaning.cc" "src/CMakeFiles/turbobp.dir/core/lazy_cleaning.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/lazy_cleaning.cc.o.d"
  "/root/repo/src/core/ssd_buffer_table.cc" "src/CMakeFiles/turbobp.dir/core/ssd_buffer_table.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/ssd_buffer_table.cc.o.d"
  "/root/repo/src/core/ssd_cache_base.cc" "src/CMakeFiles/turbobp.dir/core/ssd_cache_base.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/ssd_cache_base.cc.o.d"
  "/root/repo/src/core/ssd_heap.cc" "src/CMakeFiles/turbobp.dir/core/ssd_heap.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/ssd_heap.cc.o.d"
  "/root/repo/src/core/tac.cc" "src/CMakeFiles/turbobp.dir/core/tac.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/core/tac.cc.o.d"
  "/root/repo/src/debug/invariant_auditor.cc" "src/CMakeFiles/turbobp.dir/debug/invariant_auditor.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/debug/invariant_auditor.cc.o.d"
  "/root/repo/src/debug/latch_order_checker.cc" "src/CMakeFiles/turbobp.dir/debug/latch_order_checker.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/debug/latch_order_checker.cc.o.d"
  "/root/repo/src/engine/bplus_tree.cc" "src/CMakeFiles/turbobp.dir/engine/bplus_tree.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/engine/bplus_tree.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/turbobp.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/heap_file.cc" "src/CMakeFiles/turbobp.dir/engine/heap_file.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/engine/heap_file.cc.o.d"
  "/root/repo/src/sim/device_model.cc" "src/CMakeFiles/turbobp.dir/sim/device_model.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/sim/device_model.cc.o.d"
  "/root/repo/src/sim/sim_executor.cc" "src/CMakeFiles/turbobp.dir/sim/sim_executor.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/sim/sim_executor.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/turbobp.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/file_device.cc" "src/CMakeFiles/turbobp.dir/storage/file_device.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/storage/file_device.cc.o.d"
  "/root/repo/src/storage/mem_device.cc" "src/CMakeFiles/turbobp.dir/storage/mem_device.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/storage/mem_device.cc.o.d"
  "/root/repo/src/storage/sim_device.cc" "src/CMakeFiles/turbobp.dir/storage/sim_device.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/storage/sim_device.cc.o.d"
  "/root/repo/src/storage/striped_array.cc" "src/CMakeFiles/turbobp.dir/storage/striped_array.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/storage/striped_array.cc.o.d"
  "/root/repo/src/wal/checkpoint.cc" "src/CMakeFiles/turbobp.dir/wal/checkpoint.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/wal/checkpoint.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/turbobp.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/turbobp.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/wal/recovery.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/turbobp.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/turbobp.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/tpce.cc" "src/CMakeFiles/turbobp.dir/workload/tpce.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/workload/tpce.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/turbobp.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/turbobp.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
