file(REMOVE_RECURSE
  "libturbobp.a"
)
