# Empty dependencies file for turbobp.
# This may be replaced when dependencies are built.
