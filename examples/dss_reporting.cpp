// DSS scenario: a reporting mix over the TPC-H-style schema. Shows how the
// admission policy keeps table scans (cheap on striped disks) OUT of the
// SSD while index-heavy queries (random I/O) get cached — and why that is
// the right call, per Section 2.2 of the paper.
//
//   $ ./build/examples/dss_reporting

#include <cstdio>
#include <cstring>

#include "workload/tpch.h"

using namespace turbobp;

int main() {
  TpchConfig tpch;
  tpch.scale_factor = 1.0;
  tpch.row_scale = 1.0 / 600;
  tpch.streams = 2;

  const uint64_t db_pages = TpchWorkload::EstimateDbPages(tpch, 1024) + 128;
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = db_pages;
  config.bp_frames = db_pages / 10;
  config.ssd_frames = static_cast<int64_t>(db_pages / 2);
  config.design = SsdDesign::kDualWrite;

  DbSystem system(config);
  Database db(&system);
  TpchWorkload::Populate(&db, tpch);
  TpchWorkload workload(&db, tpch);

  std::printf("TPC-H-style database: %llu pages; SSD cache %lld frames\n\n",
              (unsigned long long)db_pages, (long long)config.ssd_frames);

  // Run two contrasting queries twice each: a pure scan (Q1) and an
  // index-lookup query (Q17), cold then warm.
  struct Probe {
    int query;
    const char* what;
  };
  const Probe probes[] = {{1, "Q1  (pure LINEITEM scan)"},
                          {17, "Q17 (random LINEITEM/PART lookups)"}};
  TextTable table({"query", "pass", "elapsed (ms)", "ssd hits", "disk pages",
                   "prefetched"});
  for (const Probe& p : probes) {
    for (int pass = 1; pass <= 2; ++pass) {
      system.buffer_pool().ResetStats();
      IoContext ctx = system.MakeContext();
      const Time elapsed = workload.RunQuery(p.query, ctx);
      system.executor().RunUntil(ctx.now);
      const auto& bp = system.buffer_pool().stats();
      table.AddRow({p.what, pass == 1 ? "cold" : "warm",
                    TextTable::Fmt(ToMillis(elapsed), 1),
                    TextTable::Fmt(bp.ssd_hits),
                    TextTable::Fmt(bp.disk_page_reads),
                    TextTable::Fmt(bp.prefetch_pages)});
    }
  }
  std::printf("%s", table.ToString().c_str());

  const SsdManagerStats ssd = system.ssd_manager().stats();
  std::printf(
      "\nSSD cache after the mix: %lld frames used, %lld sequential pages\n"
      "rejected by the admission policy. The scan query stays disk-bound on\n"
      "both passes (sequential reads are what striped disks are good at);\n"
      "the lookup query's second pass is served by the SSD.\n",
      (long long)ssd.used_frames, (long long)ssd.rejected_sequential);

  // And the spec-style headline number.
  const TpchTestResult result = workload.RunFullBenchmark();
  std::printf("\nfull benchmark: Power %.0f, Throughput %.0f, QphH %.0f\n",
              result.power_at_sf, result.throughput_at_sf, result.qphh);
  return 0;
}
