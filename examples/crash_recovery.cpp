// Crash and restart: demonstrates the WAL + sharp checkpoint + redo
// machinery under the LC design — the design with real recovery
// implications, since the SSD can hold the only up-to-date copy of a page
// (Section 2.3.3 / 3.2 of the paper).
//
//   $ ./build/examples/crash_recovery

#include <cstdio>
#include <cstring>

#include "engine/database.h"

#include "common/rng.h"
#include "engine/heap_file.h"

using namespace turbobp;

int main() {
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = 4096;
  config.bp_frames = 64;
  config.ssd_frames = 1024;
  config.design = SsdDesign::kLazyCleaning;
  config.ssd_options.lc_dirty_fraction = 0.9;  // hold dirty pages on the SSD

  DbSystem system(config);
  Database db(&system);
  HeapFile accounts = HeapFile::Create(&db, "accounts", 64, 10000);

  // Load accounts, each holding a balance of 1000.
  IoContext loader = system.MakeContext(false);
  for (uint32_t i = 0; i < 10000; ++i) {
    std::vector<uint8_t> row(64, 0);
    int64_t balance = 1000;
    std::memcpy(row.data(), &balance, 8);
    accounts.Append(row, 0, loader);
  }
  system.buffer_pool().FlushAllDirty(loader, false);
  system.buffer_pool().Reset();

  // Transfer money between random accounts; each transfer is a committed
  // transaction (two updates + commit force). Total balance is invariant.
  IoContext ctx = system.MakeContext();
  Rng rng(7);
  uint64_t txn = 1;
  auto transfer = [&](uint64_t from, uint64_t to, int64_t amount) {
    std::vector<uint8_t> row(64);
    int64_t balance;
    accounts.Read(accounts.RidOfRow(from), row, AccessKind::kRandom, ctx);
    std::memcpy(&balance, row.data(), 8);
    balance -= amount;
    std::memcpy(row.data(), &balance, 8);
    accounts.Update(accounts.RidOfRow(from), row, txn, ctx);
    accounts.Read(accounts.RidOfRow(to), row, AccessKind::kRandom, ctx);
    std::memcpy(&balance, row.data(), 8);
    balance += amount;
    std::memcpy(row.data(), &balance, 8);
    accounts.Update(accounts.RidOfRow(to), row, txn, ctx);
    system.log().AppendCommit(txn);
    system.log().CommitForce(ctx);
    ++txn;
  };

  for (int i = 0; i < 2000; ++i) {
    transfer(rng.Uniform(10000), rng.Uniform(10000),
             static_cast<int64_t>(rng.Uniform(100)));
    system.executor().RunUntil(ctx.now);
  }
  // A sharp checkpoint mid-stream (flushes memory AND the SSD's dirty pages).
  ctx.now = std::max(ctx.now, system.executor().now());
  system.checkpoint().RunCheckpoint(ctx);
  for (int i = 0; i < 2000; ++i) {
    transfer(rng.Uniform(10000), rng.Uniform(10000),
             static_cast<int64_t>(rng.Uniform(100)));
    system.executor().RunUntil(ctx.now);
  }
  std::printf("ran %llu committed transfers, 1 checkpoint\n",
              (unsigned long long)txn - 1);
  std::printf("dirty pages at crash: %lld in memory, %lld on the SSD\n",
              (long long)system.buffer_pool().DirtyFrameCount(),
              (long long)system.ssd_manager().stats().dirty_frames);

  // CRASH: memory and the SSD manager's state are gone.
  system.Crash();
  std::printf("\n*** crash ***\n\n");

  IoContext rctx = system.MakeContext();
  const RecoveryStats stats = system.Recover(rctx);
  std::printf("recovery: redo from lsn %llu, %lld records scanned, "
              "%lld applied, %lld already on disk, %.1f virtual ms\n",
              (unsigned long long)stats.redo_start_lsn,
              (long long)stats.records_scanned, (long long)stats.records_applied,
              (long long)stats.records_skipped_lsn, ToMillis(stats.elapsed));

  // Verify the invariant directly against the disk.
  int64_t total = 0;
  std::vector<uint8_t> buf(1024);
  for (uint64_t r = 0; r < 10000; ++r) {
    const Rid rid = accounts.RidOfRow(r);
    IoContext read_ctx = system.MakeContext(false);
    TURBOBP_CHECK_OK(
        system.disk_manager().ReadPage(rid.page_id, buf, read_ctx));
    PageView v(buf.data(), 1024);
    int64_t balance;
    std::memcpy(&balance,
                v.data() + kPageHeaderSize + rid.slot * 64, 8);
    total += balance;
  }
  std::printf("sum of balances after recovery: %lld (expected %lld) -> %s\n",
              (long long)total, 10000LL * 1000,
              total == 10000LL * 1000 ? "CONSISTENT" : "CORRUPT");
  return total == 10000LL * 1000 ? 0 : 1;
}
