// OLTP scenario: run the TPC-C-style workload against every SSD buffer-pool
// design and print a side-by-side comparison — a miniature of the paper's
// headline experiment that finishes in seconds.
//
//   $ ./build/examples/oltp_ssd_cache

#include <cstdio>
#include <cstring>

#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace turbobp;

int main() {
  // A small TPC-C database: 4 warehouses, ~8K pages; buffer pool covers
  // 20% of it, the SSD cache 60% — the paper's "working set larger than
  // memory, close to the SSD" sweet spot.
  TpccConfig tpcc;
  tpcc.warehouses = 4;
  tpcc.row_scale = 0.02;

  const uint64_t db_pages = TpccWorkload::EstimateDbPages(tpcc, 1024);
  std::printf("TPC-C: %d warehouses, %llu pages of 1KB\n\n", tpcc.warehouses,
              (unsigned long long)db_pages);

  TextTable table({"design", "tpmC", "speedup", "SSD hits", "disk reads",
                   "p99 txn latency (ms)"});
  double baseline = 0;
  for (SsdDesign design :
       {SsdDesign::kNoSsd, SsdDesign::kCleanWrite, SsdDesign::kDualWrite,
        SsdDesign::kLazyCleaning, SsdDesign::kTac}) {
    SystemConfig config;
    config.page_bytes = 1024;
    config.db_pages = db_pages;
    config.bp_frames = db_pages / 5;
    config.ssd_frames = static_cast<int64_t>(db_pages * 3 / 5);
    config.design = design;
    config.ssd_options.lc_dirty_fraction = 0.5;

    DbSystem system(config);
    Database db(&system);
    TpccWorkload::Populate(&db, tpcc);
    TpccWorkload workload(&db, tpcc);

    DriverOptions opts;
    opts.num_clients = 16;
    opts.duration = Seconds(60);
    opts.steady_window = Seconds(15);
    Driver driver(&system, &workload, opts);
    const DriverResult r = driver.Run();
    if (design == SsdDesign::kNoSsd) baseline = r.steady_rate;

    table.AddRow({r.design, TextTable::Fmt(r.steady_rate * 60, 0),
                  TextTable::Fmt(baseline > 0 ? r.steady_rate / baseline : 1, 2),
                  TextTable::Fmt(r.ssd.hits),
                  TextTable::Fmt(r.bp.disk_page_reads),
                  TextTable::Fmt(r.txn_latency.Percentile(99) / 1000.0, 1)});
    std::printf("ran %-5s : %lld transactions\n", r.design.c_str(),
                (long long)r.total_txns);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nLC (write-back) should lead on this update-intensive workload,\n"
      "exactly as in Figure 5 of the paper.\n");
  return 0;
}
