// Quickstart: build a database system with an SSD-extended buffer pool,
// read and write some pages, and watch the SSD cache absorb the working
// set. This is the five-minute tour of the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "engine/database.h"

#include "common/rng.h"
#include "engine/heap_file.h"

using namespace turbobp;

int main() {
  // 1. Describe the machine: an 8-spindle disk array holding a 64MB
  //    database (65536 x 1KB pages), a 4K-frame memory buffer pool, a
  //    16K-frame SSD cache, and the paper's winning design: lazy cleaning.
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = 65536;
  config.bp_frames = 4096;
  config.ssd_frames = 16384;
  config.design = SsdDesign::kLazyCleaning;

  DbSystem system(config);
  Database db(&system);

  // 2. Create a table and load a million small rows (loader mode: free).
  HeapFile table = HeapFile::Create(&db, "events", /*row_bytes=*/64,
                                    /*capacity_rows=*/200000);
  {
    IoContext loader = system.MakeContext(/*charge=*/false);
    std::vector<uint8_t> row(64);
    for (uint32_t i = 0; i < 200000; ++i) {
      std::memcpy(row.data(), &i, sizeof(i));
      table.Append(row, /*txn_id=*/0, loader);
    }
    system.buffer_pool().FlushAllDirty(loader, false);
    system.buffer_pool().Reset();  // start with a cold cache
  }
  std::printf("loaded %llu rows across %llu pages\n",
              (unsigned long long)table.row_count(),
              (unsigned long long)table.num_pages());

  // 3. Run a skewed read/update workload and watch where reads get served.
  IoContext ctx = system.MakeContext();
  Rng rng(42);
  std::vector<uint8_t> row(64);
  uint64_t txn = 1;
  for (int i = 0; i < 200000; ++i) {
    // Zipf-skewed row choice: a hot head plus a long cold tail.
    const uint64_t r =
        static_cast<uint64_t>(rng.Zipf(static_cast<int64_t>(table.row_count()),
                                       0.9));
    if (rng.Bernoulli(0.25)) {
      table.Read(table.RidOfRow(r), row, AccessKind::kRandom, ctx);
      row[8]++;
      table.Update(table.RidOfRow(r), row, txn, ctx);
      system.log().CommitForce(ctx);  // group commit
      ++txn;
    } else {
      table.Read(table.RidOfRow(r), row, AccessKind::kRandom, ctx);
    }
    system.executor().RunUntil(ctx.now);  // let background work interleave
  }

  // 4. Report: buffer pool hits, SSD cache hits, disk reads.
  const BufferPoolStats& bp = system.buffer_pool().stats();
  const SsdManagerStats ssd = system.ssd_manager().stats();
  std::printf("\nafter %.1f virtual seconds:\n", ToSeconds(ctx.now));
  std::printf("  buffer pool:  %lld hits, %lld misses (%.1f%% hit rate)\n",
              (long long)bp.hits, (long long)bp.misses,
              100.0 * bp.hits / (bp.hits + bp.misses));
  std::printf("  SSD cache:    %lld hits, %lld frames used, %lld dirty\n",
              (long long)ssd.hits, (long long)ssd.used_frames,
              (long long)ssd.dirty_frames);
  std::printf("  disk:         %lld pages read\n",
              (long long)bp.disk_page_reads);
  std::printf(
      "\nMost misses were served by the SSD at ~82us instead of the disks'\n"
      "~7.9ms — that is the paper's entire premise in one run.\n");
  return 0;
}
