#ifndef TURBOBP_FAULT_CRASH_POINT_H_
#define TURBOBP_FAULT_CRASH_POINT_H_

#include <atomic>

namespace turbobp {

// Crash-point instrumentation: TURBOBP_CRASH_POINT("name") marks a
// durability-ordering edge (a point where the set of crash-surviving bytes
// changes — WAL flush, checkpoint stage, cleaner copy, page write). The
// torture harness (src/fault/crash_harness.h) arms an observer and, at the
// k-th hit of a chosen point, snapshots the durable state exactly as a
// power cut at that instant would leave it; recovery then runs over the
// snapshot and is checked against a workload oracle.
//
// Disarmed cost is one relaxed-consistency atomic load and a predicted
// branch, negligible next to the latching and memcpy on every instrumented
// path, so the macro stays on in default (Release) builds and the quick
// torture subset runs in the regular ctest suite. Benchmark builds that
// want the last nanometer compile it out with -DTURBOBP_CRASH_POINTS=OFF.
class CrashPointObserver {
 public:
  virtual ~CrashPointObserver() = default;

  // Called synchronously at every crash point while armed, possibly with
  // engine latches held (the WAL latch at wal/* points, the buffer-pool
  // latch at bp/* points, a partition latch at ssd/* points). The observer
  // must only capture state through lock-free accessors (e.g.
  // LogManager::SnapshotForCrash) or latches ordered after the holder's
  // class — it must never re-enter the engine.
  virtual void OnCrashPoint(const char* name) = 0;
};

namespace detail {
extern std::atomic<CrashPointObserver*> g_crash_observer;
}  // namespace detail

inline void CrashPointHit(const char* name) {
  CrashPointObserver* obs =
      detail::g_crash_observer.load(std::memory_order_acquire);
  if (obs != nullptr) obs->OnCrashPoint(name);
}

// Arms `observer` globally (nullptr disarms). Single-process simulation:
// the caller owns exclusivity; ScopedCrashArm is the usual way in.
void ArmCrashPoints(CrashPointObserver* observer);

// Whether this build compiled the crash points in (TURBOBP_CRASH_POINTS).
bool CrashPointsCompiledIn();

class ScopedCrashArm {
 public:
  explicit ScopedCrashArm(CrashPointObserver* observer) {
    ArmCrashPoints(observer);
  }
  ~ScopedCrashArm() { ArmCrashPoints(nullptr); }
  ScopedCrashArm(const ScopedCrashArm&) = delete;
  ScopedCrashArm& operator=(const ScopedCrashArm&) = delete;
};

}  // namespace turbobp

#ifdef TURBOBP_CRASH_POINTS
#define TURBOBP_CRASH_POINT(name) ::turbobp::CrashPointHit(name)
#else
#define TURBOBP_CRASH_POINT(name) \
  do {                            \
  } while (0)
#endif

#endif  // TURBOBP_FAULT_CRASH_POINT_H_
