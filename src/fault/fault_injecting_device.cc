#include "fault/fault_injecting_device.h"

#include <cstring>
#include <vector>

#include "common/status.h"

namespace turbobp {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kDeviceOffline: return "device-offline";
    case FaultKind::kStuckIo: return "stuck-io";
  }
  return "unknown";
}

FaultInjectingDevice::FaultInjectingDevice(StorageDevice* base,
                                           const FaultPlan& plan)
    : base_(base), plan_(plan), rng_(plan.seed) {
  TURBOBP_CHECK(base != nullptr);
}

FaultKind FaultInjectingDevice::NextFault(IoOp op, Time now,
                                          uint64_t first_page) {
  const int64_t index = op_index_++;
  ++stats_.ops;
  FaultKind kind = FaultKind::kNone;
  if (auto it = plan_.scripted.find(index); it != plan_.scripted.end()) {
    kind = it->second;
  } else if (plan_.offline_at_op >= 0 && index >= plan_.offline_at_op) {
    kind = FaultKind::kDeviceOffline;
  } else {
    // Effective rates: base rates plus every window covering (now, page).
    double transient_rate = plan_.transient_error_rate;
    double torn_rate = plan_.torn_write_rate;
    double flip_rate = plan_.bit_flip_rate;
    double spike_rate = plan_.latency_spike_rate;
    double stuck_rate = plan_.stuck_io_rate;
    for (const FaultWindow& w : plan_.windows) {
      if (!w.Covers(now, first_page)) continue;
      transient_rate += w.transient_error_rate;
      torn_rate += w.torn_write_rate;
      flip_rate += w.bit_flip_rate;
      spike_rate += w.latency_spike_rate;
      stuck_rate += w.stuck_io_rate;
    }
    // Fixed draw order per op keeps the stream deterministic. The stuck-I/O
    // Bernoulli exists only for plans that can produce stuck faults, so
    // pre-existing plans keep their historical draw streams bit-identical.
    const bool can_stick = plan_.stuck_io_rate > 0 || !plan_.windows.empty();
    const bool transient = rng_.Bernoulli(transient_rate);
    const bool torn = op == IoOp::kWrite && rng_.Bernoulli(torn_rate);
    const bool flip = op == IoOp::kRead && rng_.Bernoulli(flip_rate);
    const bool spike = rng_.Bernoulli(spike_rate);
    const bool stuck = can_stick && rng_.Bernoulli(stuck_rate);
    if (transient) {
      kind = FaultKind::kTransientError;
    } else if (torn) {
      kind = FaultKind::kTornWrite;
    } else if (flip) {
      kind = FaultKind::kBitFlip;
    } else if (spike) {
      kind = FaultKind::kLatencySpike;
    } else if (stuck) {
      kind = FaultKind::kStuckIo;
    }
  }
  switch (kind) {
    case FaultKind::kNone: break;
    case FaultKind::kTransientError: ++stats_.transient_errors; break;
    case FaultKind::kTornWrite: ++stats_.torn_writes; break;
    case FaultKind::kBitFlip: ++stats_.bit_flips; break;
    case FaultKind::kLatencySpike: ++stats_.latency_spikes; break;
    case FaultKind::kStuckIo: ++stats_.stuck_ios; break;
    case FaultKind::kDeviceOffline:
      offline_ = true;
      stats_.offline = true;
      break;
  }
  return kind;
}

IoResult FaultInjectingDevice::Read(uint64_t first_page, uint32_t num_pages,
                                    std::span<uint8_t> out, Time now,
                                    bool charge) {
  TrackedLockGuard lock(mu_);
  if (offline_) {
    ++stats_.offline_rejects;
    return IoResult{now, Status::Unavailable("ssd offline")};
  }
  // The loader's uncharged population traffic bypasses injection so the
  // deterministic fault stream covers only modeled operations.
  if (!charge) return base_->Read(first_page, num_pages, out, now, charge);

  const FaultKind fault = NextFault(IoOp::kRead, now, first_page);
  if (fault == FaultKind::kTransientError) {
    return IoResult{now, Status::IoError("injected transient read error")};
  }
  if (fault == FaultKind::kDeviceOffline) {
    return IoResult{now, Status::Unavailable("ssd offline")};
  }
  IoResult res = base_->Read(first_page, num_pages, out, now, charge);
  if (!res.ok()) return res;
  if (fault == FaultKind::kBitFlip) {
    // Latent corruption: one flipped bit anywhere in the transferred data.
    // Page checksums (PageView::VerifyChecksum) are what must catch this.
    const size_t nbytes = static_cast<size_t>(num_pages) * page_bytes();
    const size_t byte = static_cast<size_t>(rng_.Uniform(nbytes));
    out[byte] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
  }
  if (fault == FaultKind::kLatencySpike) res.time += plan_.latency_spike;
  if (fault == FaultKind::kStuckIo) res.time += plan_.stuck_delay;
  return res;
}

IoResult FaultInjectingDevice::Write(uint64_t first_page, uint32_t num_pages,
                                     std::span<const uint8_t> data, Time now,
                                     bool charge) {
  TrackedLockGuard lock(mu_);
  if (offline_) {
    ++stats_.offline_rejects;
    return IoResult{now, Status::Unavailable("ssd offline")};
  }
  if (!charge) return base_->Write(first_page, num_pages, data, now, charge);

  const FaultKind fault = NextFault(IoOp::kWrite, now, first_page);
  if (fault == FaultKind::kTransientError) {
    return IoResult{now, Status::IoError("injected transient write error")};
  }
  if (fault == FaultKind::kDeviceOffline) {
    return IoResult{now, Status::Unavailable("ssd offline")};
  }
  if (fault == FaultKind::kTornWrite) {
    // The tear is silent: the device acks the request but only a prefix
    // reaches the medium. Single-page writes land their first half over the
    // old content (a classic torn sector); multi-page writes land a prefix
    // of whole pages.
    const uint32_t pb = page_bytes();
    if (num_pages == 1) {
      std::vector<uint8_t> merged(pb);
      // Merge source is the old on-medium content. If even that read fails
      // the tear proceeds over the zeroed buffer — the fault being modeled
      // is corruption, so a worse tear is still a valid tear.
      (void)base_->Read(first_page, 1, std::span<uint8_t>(merged), now,
                        /*charge=*/false);
      std::memcpy(merged.data(), data.data(), pb / 2);
      return base_->Write(first_page, 1,
                          std::span<const uint8_t>(merged.data(), pb), now,
                          charge);
    }
    const uint32_t landed = static_cast<uint32_t>(rng_.Uniform(num_pages));
    if (landed == 0) return IoResult{now, Status::Ok()};
    return base_->Write(first_page, landed,
                        data.subspan(0, static_cast<size_t>(landed) * pb), now,
                        charge);
  }
  IoResult res = base_->Write(first_page, num_pages, data, now, charge);
  if (res.ok() && fault == FaultKind::kLatencySpike) {
    res.time += plan_.latency_spike;
  }
  if (res.ok() && fault == FaultKind::kStuckIo) {
    res.time += plan_.stuck_delay;
  }
  return res;
}

void FaultInjectingDevice::ForceOffline() {
  TrackedLockGuard lock(mu_);
  offline_ = true;
  stats_.offline = true;
}

bool FaultInjectingDevice::offline() const {
  TrackedLockGuard lock(mu_);
  return offline_;
}

FaultStats FaultInjectingDevice::fault_stats() const {
  TrackedLockGuard lock(mu_);
  return stats_;
}

}  // namespace turbobp
