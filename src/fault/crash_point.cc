#include "fault/crash_point.h"

namespace turbobp {

namespace detail {
std::atomic<CrashPointObserver*> g_crash_observer{nullptr};
}  // namespace detail

void ArmCrashPoints(CrashPointObserver* observer) {
  detail::g_crash_observer.store(observer, std::memory_order_release);
}

bool CrashPointsCompiledIn() {
#ifdef TURBOBP_CRASH_POINTS
  return true;
#else
  return false;
#endif
}

}  // namespace turbobp
