#include "fault/crash_harness.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "core/ssd_cache_base.h"
#include "core/ssd_metadata_journal.h"
#include "debug/invariant_auditor.h"
#include "engine/bplus_tree.h"
#include "engine/database.h"
#include "engine/heap_file.h"
#include "fault/crash_point.h"
#include "storage/page.h"
#include "storage/striped_array.h"

namespace turbobp {
namespace {

// The top of the data volume is reserved for the oracle's raw slot pages;
// the heap table and the B+-tree grow from the bottom and must never reach
// it (checked after every allocating operation).
constexpr uint64_t kSlotRegionPages = 64;
constexpr uint32_t kHeapRowBytes = 40;
constexpr uint64_t kHeapCapacityRows = 700;
constexpr int kBtreePreloadKeys = 56;  // near-fills leaves so inserts split

constexpr char kEndPoint[] = "end-of-workload";
constexpr char kRedoPoint[] = "recovery/redo-apply";

SystemConfig MakeConfig(const CrashHarnessOptions& o) {
  SystemConfig config;
  config.page_bytes = o.page_bytes;
  config.db_pages = o.db_pages;
  config.bp_frames = o.bp_frames;
  config.ssd_frames = o.ssd_frames;
  config.design = o.design;
  config.ssd_options.num_partitions = 2;
  config.ssd_options.lc_dirty_fraction = 0.6;
  config.ssd_options.lc_group_pages = 4;
  config.persistent_ssd_cache = o.persistent_ssd;
  return config;
}

// The durable state a power cut at one crash instant leaves behind: the
// disk array's platter contents plus the log's records and durable horizon.
// In the classic designs the SSD is deliberately absent — every design
// reformats it at restart (paper, Section 6), which DbSystem's construction
// models. In persistent mode the SSD device content (frame area plus the
// metadata-journal region) survives the cut and is captured too.
struct CrashCapture {
  std::string point;
  int hit = 0;
  StripedDiskArray::Content disk;
  LogManager::CrashSnapshot log;
  bool has_ssd = false;
  std::unordered_map<uint64_t, std::vector<uint8_t>> ssd;
};

// Captures crash snapshots at requested (point, hit) pairs. OnCrashPoint
// runs synchronously inside the engine, possibly with latches held: it only
// touches the lock-free LogManager::SnapshotForCrash and the device-class
// latches (ordered after every engine latch), and never re-enters the
// engine.
class SnapshotObserver : public CrashPointObserver {
 public:
  explicit SnapshotObserver(DbSystem* system, bool snapshot_ssd = false)
      : system_(system), snapshot_ssd_(snapshot_ssd) {}

  void Request(const std::string& point, int hit) {
    requests_[point].insert(hit);
  }
  void set_capture_first_hits(bool v) { capture_first_hits_ = v; }

  const std::map<std::string, int>& hits() const { return hits_; }
  std::map<std::pair<std::string, int>, CrashCapture>& captures() {
    return captures_;
  }
  const CrashCapture* Find(const std::string& point, int hit) const {
    auto it = captures_.find({point, hit});
    return it == captures_.end() ? nullptr : &it->second;
  }

  // Quiescent capture (no crash point involved), used for the
  // end-of-workload pseudo-point.
  void CaptureNow(const char* name, int hit) { Store(name, hit); }

  void OnCrashPoint(const char* name) override {
    const int n = ++hits_[name];
    bool want = capture_first_hits_ && n == 1;
    if (!want) {
      auto it = requests_.find(name);
      want = it != requests_.end() && it->second.contains(n);
    }
    if (want) Store(name, n);
  }

 private:
  void Store(const char* name, int n) {
    CrashCapture cap;
    cap.point = name;
    cap.hit = n;
    cap.disk = system_->disk_array().SnapshotContent();
    cap.log = system_->log().SnapshotForCrash();
    if (snapshot_ssd_ && system_->ssd_device() != nullptr) {
      cap.has_ssd = true;
      cap.ssd = system_->ssd_device()->SnapshotContent();
    }
    captures_[{cap.point, n}] = std::move(cap);
  }

  DbSystem* system_;
  bool snapshot_ssd_ = false;
  bool capture_first_hits_ = false;
  std::map<std::string, int> hits_;
  std::map<std::string, std::set<int>> requests_;
  std::map<std::pair<std::string, int>, CrashCapture> captures_;
};

struct OracleWrite {
  Lsn lsn = kInvalidLsn;  // LSN of the update record that wrote the value
  uint32_t value = 0;
};

// One seeded workload execution plus everything needed to judge any crash
// instant within it.
struct WorkloadRun {
  Catalog catalog;  // as of setup; table extents never move afterwards
  std::map<std::pair<PageId, uint32_t>, std::vector<OracleWrite>> oracle;
  std::map<std::string, int> hits;
  std::map<std::pair<std::string, int>, CrashCapture> captures;
};

void Sync(DbSystem& system, IoContext& ctx) {
  system.executor().RunUntil(ctx.now);
  ctx.now = std::max(ctx.now, system.executor().now());
}

// Reads one SSD device page, XORs `mask` into the byte at `offset` and
// writes the page back — the damaged-but-present image a torn write or a
// decayed cell leaves behind. Uncharged: the mutation models medium damage,
// not I/O traffic.
void FlipDeviceByte(StorageDevice* dev, uint64_t page, uint32_t offset,
                    uint8_t mask) {
  std::vector<uint8_t> buf(dev->page_bytes());
  dev->Read(page, 1, buf, /*now=*/0, /*charge=*/false);
  buf[offset] ^= mask;
  dev->Write(page, 1, buf, /*now=*/0, /*charge=*/false);
}

// Drives the self-healing machinery mid-workload so its crash points fire
// while the observer is armed: corrupts one clean in-service SSD frame and
// lets a scrub tick quarantine-and-repair it (content-neutral — the disk
// copy is identical), then degrades partition 0 and advances virtual time
// past the error and quiet windows so the next tick's canary probe
// re-enables it. Deterministic: depends only on the op index and the
// (seeded) cache state, never on which captures were requested.
void ExerciseSelfHealing(DbSystem& system, IoContext& ctx) {
  auto* cache = dynamic_cast<SsdCacheBase*>(&system.ssd_manager());
  if (cache == nullptr || cache->degraded()) return;
  Sync(system, ctx);
  StorageDevice* dev = system.ssd_device();
  if (dev != nullptr) {
    for (const auto& e : cache->SnapshotForCheckpoint()) {
      if (e.dirty) continue;
      // Payload corruption: the header stays legible but the checksum
      // fails, so the patrol must quarantine the frame and re-seed the page
      // from its disk copy ("ssd/scrub-repair").
      FlipDeviceByte(dev, e.frame, dev->page_bytes() / 2, 0xFF);
      cache->ScrubTick(ctx);
      break;
    }
  }
  cache->DegradePartitionAt(0, ctx);
  // Let the degrade-time error budget lapse and the quiet window pass; the
  // canary probe then re-enables the partition ("ssd/canary-write",
  // "ssd/reenable").
  ctx.now += cache->options().error_window + cache->options().quiet_window;
  Sync(system, ctx);
  cache->ScrubTick(ctx);
}

void WriteSlot(DbSystem& system, WorkloadRun& run, PageId pid, uint32_t slot,
               uint32_t value, uint64_t txn, bool commit, IoContext& ctx) {
  {
    PageGuard g =
        system.buffer_pool().FetchPage(pid, AccessKind::kRandom, ctx);
    // next_lsn before the append is exactly the LSN the record receives;
    // nothing else appends between here and LogUpdate (single-threaded run).
    const Lsn lsn = system.log().current_lsn();
    std::memcpy(g.view().payload() + 4 * slot, &value, 4);
    g.LogUpdate(txn, kPageHeaderSize + 4 * slot, 4);
    run.oracle[{pid, slot}].push_back({lsn, value});
  }
  if (commit) {
    system.log().AppendCommit(txn);
    system.log().CommitForce(ctx);
  }
}

// Runs the mixed workload once. `requests` / `capture_first_hits` drive the
// observer; `capture_end` additionally snapshots the quiescent end state
// (maximal redo tail, used by the idempotence sweep).
WorkloadRun RunWorkload(const CrashHarnessOptions& o,
                        const std::map<std::string, std::set<int>>& requests,
                        bool capture_first_hits, bool capture_end) {
  WorkloadRun run;
  DbSystem system(MakeConfig(o));
  Database db(&system);
  if (o.break_lc_checkpoint) {
    system.checkpoint().set_skip_ssd_flush_for_test(true);
  }
  IoContext ctx = system.MakeContext();

  // Setup (not subject to crashes): a heap table, and a B+-tree pre-loaded
  // to near-full leaves so workload inserts trigger splits. One group
  // commit makes the setup durable.
  HeapFile heap = HeapFile::Create(&db, "torture_rows", kHeapRowBytes,
                                   kHeapCapacityRows);
  BPlusTree tree = BPlusTree::Create(&db, "torture_idx", ctx);
  uint64_t next_txn = 1;
  for (int i = 0; i < kBtreePreloadKeys; ++i) {
    tree.Insert(static_cast<uint64_t>(i + 1) * 1000,
                static_cast<uint64_t>(i), next_txn, ctx);
  }
  system.log().AppendCommit(next_txn);
  system.log().CommitForce(ctx);
  ++next_txn;
  Sync(system, ctx);
  run.catalog = db.catalog();

  const PageId slot_first = o.db_pages - kSlotRegionPages;
  TURBOBP_CHECK(run.catalog.next_free_page + 8 <= slot_first);
  const uint32_t slots_per_page = (o.page_bytes - kPageHeaderSize) / 4;

  SnapshotObserver obs(&system, o.persistent_ssd);
  for (const auto& [point, hit_set] : requests) {
    for (int hit : hit_set) obs.Request(point, hit);
  }
  obs.set_capture_first_hits(capture_first_hits);

  Rng rng(o.seed * 7919 + static_cast<uint64_t>(o.design));
  uint32_t counter = 0;
  uint64_t heap_rows = 0;
  uint64_t tree_values = 0;
  {
    ScopedCrashArm arm(&obs);
    for (int i = 0; i < o.num_ops; ++i) {
      if (o.checkpoint_every > 0 && i > 0 && i % o.checkpoint_every == 0) {
        Sync(system, ctx);
        const Time end = system.checkpoint().RunCheckpoint(ctx);
        ctx.now = std::max(ctx.now, end);
      }
      if (o.exercise_self_healing && i == o.num_ops / 2) {
        ExerciseSelfHealing(system, ctx);
      }
      const uint64_t r = rng.Uniform(100);
      if (r < 50) {
        WriteSlot(system, run,
                  slot_first + rng.Uniform(kSlotRegionPages),
                  static_cast<uint32_t>(rng.Uniform(slots_per_page)),
                  ++counter, next_txn++, /*commit=*/true, ctx);
      } else if (r < 64) {
        // Logged but never forced: the crash-tail case. A later group
        // commit can still make it durable — the oracle keys on LSNs, not
        // on commit intent, which is exact under redo-only recovery.
        WriteSlot(system, run,
                  slot_first + rng.Uniform(kSlotRegionPages),
                  static_cast<uint32_t>(rng.Uniform(slots_per_page)),
                  ++counter, next_txn++, /*commit=*/false, ctx);
      } else if (r < 72 || (r < 78 && heap_rows == 0)) {
        std::vector<uint8_t> row(kHeapRowBytes);
        for (size_t j = 0; j < row.size(); ++j) {
          row[j] = static_cast<uint8_t>(heap_rows + j);
        }
        heap.Append(row, next_txn, ctx);
        ++heap_rows;
        if (rng.Bernoulli(0.5)) {
          system.log().AppendCommit(next_txn);
          system.log().CommitForce(ctx);
        }
        ++next_txn;
      } else if (r < 78) {
        std::vector<uint8_t> row(kHeapRowBytes);
        for (size_t j = 0; j < row.size(); ++j) {
          row[j] = static_cast<uint8_t>(counter + j);
        }
        heap.Update(heap.RidOfRow(rng.Uniform(heap_rows)), row, next_txn,
                    ctx);
        if (rng.Bernoulli(0.5)) {
          system.log().AppendCommit(next_txn);
          system.log().CommitForce(ctx);
        }
        ++next_txn;
      } else if (r < 86) {
        // Lands between the pre-loaded keys, so near-full leaves split.
        tree.Insert(1 + rng.Uniform(kBtreePreloadKeys * 1000), ++tree_values,
                    next_txn, ctx);
        TURBOBP_CHECK(db.catalog().next_free_page <= slot_first);
        if (rng.Bernoulli(0.5)) {
          system.log().AppendCommit(next_txn);
          system.log().CommitForce(ctx);
        }
        ++next_txn;
      } else {
        // Read-only fetch: drives SSD admissions and hits.
        PageGuard g = system.buffer_pool().FetchPage(
            slot_first + rng.Uniform(kSlotRegionPages), AccessKind::kRandom,
            ctx);
      }
      if (i % 4 == 3) Sync(system, ctx);
    }
    Sync(system, ctx);
    if (capture_end) obs.CaptureNow(kEndPoint, 1);
  }
  run.hits = obs.hits();
  run.captures = std::move(obs.captures());
  return run;
}

struct RecoveredDb {
  std::unique_ptr<DbSystem> system;
  std::unique_ptr<Database> db;
  RecoveryStats stats;
  PersistentRestoreStats pstats;
  bool torn_injected = false;
  bool ssd_fault_armed = false;
};

// Damages the restored SSD image per `fault`, after the log's durable state
// is already in place (the frame-corruption fault prefers a frame whose
// journal entry survives the horizon filter, so recovery must actually
// verify and drop it rather than discard it earlier). Returns true when the
// fault found something to damage.
bool ApplyRestartFault(DbSystem* sys, const CrashHarnessOptions& o,
                       SsdRestartFault fault) {
  if (fault == SsdRestartFault::kClean) return true;
  StorageDevice* dev = sys->ssd_device();
  // A throwaway journal over the same region reads the on-device state so
  // the mutation can aim at the exact page recovery will depend on.
  SsdMetadataJournal probe(
      dev, static_cast<uint64_t>(o.ssd_frames),
      SsdMetadataJournal::RegionPagesFor(o.ssd_frames, o.page_bytes),
      [] { return std::vector<SsdMetadataJournal::Record>(); });
  IoContext tmp = sys->MakeContext(/*charge=*/false);
  const SsdMetadataJournal::RecoveredState jr = probe.Recover(tmp);
  const int half = jr.valid ? jr.half : 0;
  switch (fault) {
    case SsdRestartFault::kClean:
      return true;
    case SsdRestartFault::kTornJournalTail: {
      // Corrupt the last consumed append page — or materialize garbage in
      // the first append slot when the epoch has none, the page an
      // interrupted first append would have left half-written.
      const uint64_t page =
          jr.append_pages > 0
              ? probe.AppendBaseOf(half) + jr.append_pages - 1
              : probe.AppendBaseOf(half);
      if (jr.append_pages > 0) {
        // Flip the stored CRC itself: magic/kind/epoch stay readable, so
        // recovery classifies the page as this epoch's torn tail rather
        // than end-of-log residue.
        FlipDeviceByte(dev, page, 24, 0xFF);
      } else {
        std::vector<uint8_t> garbage(o.page_bytes, 0xA5);
        dev->Write(page, 1, garbage, /*now=*/0, /*charge=*/false);
      }
      return jr.valid;
    }
    case SsdRestartFault::kStaleJournal:
      // Destroy the current epoch's seal: recovery must fall back to the
      // previous epoch (or nothing) while the device's frames are newer
      // than any journal entry it can still read — the lazy-scan path.
      FlipDeviceByte(dev, probe.SealPageOf(half), 8, 0xFF);
      return jr.valid;
    case SsdRestartFault::kCorruptFrameHeader: {
      if (jr.entries.empty()) return false;
      // Deterministic pick: the lowest eligible frame, preferring one whose
      // entry the horizon filter keeps (so the drop must come from content
      // verification, not from the LSN gate).
      const Lsn horizon = sys->log().durable_lsn();
      uint64_t target = UINT64_MAX;
      uint64_t fallback = UINT64_MAX;
      for (const auto& [frame, e] : jr.entries) {
        fallback = std::min(fallback, frame);
        if (e.page_lsn == kInvalidLsn || e.page_lsn <= horizon) {
          target = std::min(target, frame);
        }
      }
      if (target == UINT64_MAX) target = fallback;
      // Flip the page-id's low byte: the frame's self-identifying header no
      // longer backs the journal's claim. (The page checksum covers only the
      // payload, so header damage is exactly what the claim check — not the
      // CRC — must catch.)
      FlipDeviceByte(dev, target, 0, 0xFF);
      return true;
    }
  }
  return false;
}

// Builds a fresh system over the capture's surviving bytes, as a restart
// after the crash would find them. In torn mode the first *non-durable*
// record is materialized with a corrupted body and its stale checksum —
// the partially-written block an interrupted log flush leaves behind — and
// the durable horizon is extended over it, as a naive header scan of the
// log device would conclude. Recovery must then truncate it instead of
// replaying garbage.
RecoveredDb MakeRestoredSystem(const CrashHarnessOptions& o,
                               const Catalog& catalog,
                               const CrashCapture& cap, bool torn,
                               SsdRestartFault fault = SsdRestartFault::kClean) {
  RecoveredDb out;
  out.system = std::make_unique<DbSystem>(MakeConfig(o));
  out.db = std::make_unique<Database>(out.system.get());
  out.db->RestoreCatalog(catalog);
  out.system->disk_array().RestoreContent(cap.disk);
  if (cap.has_ssd && out.system->ssd_device() != nullptr) {
    out.system->ssd_device()->RestoreContent(cap.ssd);
  }

  std::vector<LogRecord> records;
  Lsn durable = cap.log.durable_lsn;
  for (const LogRecord& rec : cap.log.records) {
    if (rec.lsn <= cap.log.durable_lsn) records.push_back(rec);
  }
  if (torn) {
    for (const LogRecord& rec : cap.log.records) {
      if (rec.lsn <= cap.log.durable_lsn) continue;
      LogRecord bad = rec;  // keeps the now-stale checksum
      if (!bad.bytes.empty()) {
        bad.bytes[0] = static_cast<uint8_t>(bad.bytes[0] ^ 0xFF);
      } else {
        bad.txn_id = ~bad.txn_id;
      }
      durable = bad.lsn;
      records.push_back(std::move(bad));
      out.torn_injected = true;
      break;
    }
  }
  out.system->log().RestoreDurableState(std::move(records), durable);
  if (cap.has_ssd && out.system->ssd_device() != nullptr) {
    out.ssd_fault_armed = ApplyRestartFault(out.system.get(), o, fault);
  }
  return out;
}

RecoveryStats RecoverNow(DbSystem& system) {
  IoContext rctx = system.MakeContext();
  return system.Recover(rctx);
}

// Warm recovery: the persistent-cache restart path. Fills b.pstats.
RecoveryStats RecoverWarm(RecoveredDb& b) {
  IoContext rctx = b.system->MakeContext();
  auto [stats, pstats] = b.system->RecoverPersistent(rctx);
  b.pstats = pstats;
  return stats;
}

// Byte-compares the full data volume of two recovered systems (synthesized
// never-written pages included). Returns "" when identical.
std::string ComparePages(DbSystem& a, DbSystem& b,
                         const CrashHarnessOptions& o) {
  std::vector<uint8_t> pa(o.page_bytes);
  std::vector<uint8_t> pb(o.page_bytes);
  for (PageId pid = 0; pid < o.db_pages; ++pid) {
    IoContext ca = a.MakeContext();
    IoContext cb = b.MakeContext();
    const Status sa = a.disk_manager().ReadPage(pid, pa, ca);
    const Status sb = b.disk_manager().ReadPage(pid, pb, cb);
    if (!sa.ok() || !sb.ok()) {
      return "page " + std::to_string(pid) + " unreadable: " +
             (sa.ok() ? sb.ToString() : sa.ToString());
    }
    if (std::memcmp(pa.data(), pb.data(), o.page_bytes) != 0) {
      return "page " + std::to_string(pid) + " differs after re-recovery";
    }
  }
  return "";
}

std::string Label(const CrashHarnessOptions& o, const std::string& point,
                  int hit, bool torn) {
  return std::string("[design=") + ToString(o.design) +
         " seed=" + std::to_string(o.seed) + " point=" + point +
         " hit=" + std::to_string(hit) + " torn=" + (torn ? "1" : "0") + "]";
}

CrashScenarioResult VerifyCapture(const CrashHarnessOptions& o,
                                  const WorkloadRun& run,
                                  const CrashCapture& cap, bool torn) {
  CrashScenarioResult result;
  result.triggered = true;
  const std::string label = Label(o, cap.point, cap.hit, torn);

  RecoveredDb b = MakeRestoredSystem(o, run.catalog, cap, torn);
  b.stats = RecoverNow(*b.system);
  result.recovery = b.stats;
  if (torn && b.torn_injected && b.stats.records_truncated < 1) {
    result.failures.push_back(label + " torn tail record was not truncated");
  }

  // 1. Oracle exactness: every cell equals its last durable update. The
  // torn block is non-durable — a correct recovery truncates it, so the
  // horizon is the pre-torn durable LSN in both modes.
  const Lsn horizon = cap.log.durable_lsn;
  std::vector<uint8_t> buf(o.page_bytes);
  for (const auto& [cell, writes] : run.oracle) {
    uint32_t expected = 0;
    for (const OracleWrite& w : writes) {
      if (w.lsn <= horizon) expected = w.value;
    }
    IoContext rctx = b.system->MakeContext();
    const Status s = b.system->disk_manager().ReadPage(cell.first, buf, rctx);
    if (!s.ok()) {
      result.failures.push_back(label + " oracle read of page " +
                                std::to_string(cell.first) +
                                " failed: " + s.ToString());
      continue;
    }
    uint32_t got = 0;
    std::memcpy(&got, PageView(buf.data(), o.page_bytes).payload() +
                          4 * cell.second, 4);
    ++result.oracle_cells;
    if (got != expected) {
      result.failures.push_back(
          label + " oracle: page " + std::to_string(cell.first) + " slot " +
          std::to_string(cell.second) + " expected " +
          std::to_string(expected) + " got " + std::to_string(got));
      if (result.failures.size() >= 8) break;  // one scenario, bounded noise
    }
  }

  // 2. The recovered system's structures are internally consistent.
  const AuditReport report = InvariantAuditor::AuditSystem(
      b.system->buffer_pool(), &b.system->ssd_manager());
  if (!report.ok()) {
    result.failures.push_back(label + " audit: " + report.ToString());
  }

  // 3. Recovery converged: a second pass applies nothing.
  const RecoveryStats second = RecoverNow(*b.system);
  if (second.records_applied != 0) {
    result.failures.push_back(label + " second recovery applied " +
                              std::to_string(second.records_applied) +
                              " records");
  }

  // 4. Idempotence: crash *recovery itself* halfway through its redo pass,
  // recover once more, and require the final image to be byte-identical to
  // the single-pass reference.
  if (b.stats.records_applied >= 2) {
    const int k = 1 + static_cast<int>(b.stats.records_applied / 2);
    RecoveredDb c = MakeRestoredSystem(o, run.catalog, cap, torn);
    SnapshotObserver cobs(c.system.get());
    cobs.Request(kRedoPoint, k);
    {
      ScopedCrashArm arm(&cobs);
      c.stats = RecoverNow(*c.system);
    }
    const CrashCapture* mid = cobs.Find(kRedoPoint, k);
    if (mid == nullptr) {
      result.failures.push_back(label + " mid-redo crash point never hit " +
                                std::to_string(k) + " times");
    } else {
      RecoveredDb d = MakeRestoredSystem(o, run.catalog, *mid,
                                         /*torn=*/false);
      d.stats = RecoverNow(*d.system);
      const std::string diff = ComparePages(*b.system, *d.system, o);
      if (!diff.empty()) {
        result.failures.push_back(label + " idempotence: " + diff);
      }
      result.idempotence_checked = true;
    }
  }
  return result;
}

std::string WarmLabel(const CrashHarnessOptions& o, const std::string& point,
                      int hit, SsdRestartFault fault) {
  return std::string("[design=") + ToString(o.design) +
         " seed=" + std::to_string(o.seed) + " point=" + point +
         " hit=" + std::to_string(hit) + " warm ssd_fault=" +
         ToString(fault) + "]";
}

// Warm-restart verification: recover with the surviving (possibly damaged)
// SSD image via RecoverPersistent and check the persistent-cache contract.
// Oracle reads go through the buffer pool, not the raw disk: a restored
// dirty LC frame legitimately shadows its stale disk copy, and the buffer
// pool is the path by which clients observe the database.
CrashScenarioResult VerifyWarmCapture(const CrashHarnessOptions& o,
                                      const WorkloadRun& run,
                                      const CrashCapture& cap,
                                      SsdRestartFault fault) {
  CrashScenarioResult result;
  result.triggered = true;
  const std::string label = WarmLabel(o, cap.point, cap.hit, fault);

  RecoveredDb b =
      MakeRestoredSystem(o, run.catalog, cap, /*torn=*/false, fault);
  result.ssd_fault_armed = b.ssd_fault_armed;
  b.stats = RecoverWarm(b);
  result.recovery = b.stats;
  result.persistent = b.pstats;
  const Lsn horizon = cap.log.durable_lsn;

  // 1. Horizon rule: no re-attached frame may claim an LSN beyond the WAL
  // durable horizon — serving one would expose unrecoverable state.
  for (const auto& e : b.system->ssd_manager().SnapshotForCheckpoint()) {
    if (e.page_lsn != kInvalidLsn && e.page_lsn > horizon) {
      result.failures.push_back(
          label + " horizon rule: frame " + std::to_string(e.frame) +
          " re-attached page " + std::to_string(e.page_id) + " at LSN " +
          std::to_string(e.page_lsn) + " > durable horizon " +
          std::to_string(horizon));
    }
  }

  // 2. Convergence: a power cut immediately after recovery must leave a
  // state whose own warm recovery redoes nothing. Captured before anything
  // else touches the recovered system.
  {
    CrashCapture after;
    after.point = cap.point + "+recovered";
    after.hit = cap.hit;
    after.disk = b.system->disk_array().SnapshotContent();
    after.log = b.system->log().SnapshotForCrash();
    after.has_ssd = true;
    after.ssd = b.system->ssd_device()->SnapshotContent();
    RecoveredDb conv = MakeRestoredSystem(o, run.catalog, after,
                                          /*torn=*/false);
    conv.stats = RecoverWarm(conv);
    if (conv.stats.records_applied != 0) {
      result.failures.push_back(
          label + " re-crash after recovery redid " +
          std::to_string(conv.stats.records_applied) + " records");
    }
  }

  // 3. Determinism: a second recovery of the same damaged image must yield
  // a byte-identical data volume.
  {
    RecoveredDb d =
        MakeRestoredSystem(o, run.catalog, cap, /*torn=*/false, fault);
    d.stats = RecoverWarm(d);
    const std::string diff = ComparePages(*b.system, *d.system, o);
    if (!diff.empty()) {
      result.failures.push_back(label + " determinism: " + diff);
    }
  }

  // 4. Oracle exactness through the buffer pool.
  for (const auto& [cell, writes] : run.oracle) {
    uint32_t expected = 0;
    for (const OracleWrite& w : writes) {
      if (w.lsn <= horizon) expected = w.value;
    }
    IoContext rctx = b.system->MakeContext();
    uint32_t got = 0;
    {
      PageGuard g = b.system->buffer_pool().FetchPage(
          cell.first, AccessKind::kRandom, rctx);
      std::memcpy(&got, g.view().payload() + 4 * cell.second, 4);
    }
    ++result.oracle_cells;
    if (got != expected) {
      result.failures.push_back(
          label + " oracle: page " + std::to_string(cell.first) + " slot " +
          std::to_string(cell.second) + " expected " +
          std::to_string(expected) + " got " + std::to_string(got));
      if (result.failures.size() >= 8) break;
    }
  }

  // 5. Structures consistent, and every in-service frame's on-device header
  // matches the recovered table (the re-attachment proof).
  const AuditReport report = InvariantAuditor::AuditSystem(
      b.system->buffer_pool(), &b.system->ssd_manager());
  if (!report.ok()) {
    result.failures.push_back(label + " audit: " + report.ToString());
  }
  if (const auto* cache =
          dynamic_cast<const SsdCacheBase*>(&b.system->ssd_manager())) {
    const AuditReport headers = InvariantAuditor::AuditSsdFrameHeaders(*cache);
    if (!headers.ok()) {
      result.failures.push_back(label + " frame-header audit: " +
                                headers.ToString());
    }
  }

  // 6. Mid-redo idempotence: crash recovery itself halfway through redo,
  // recover once more (the damage is already on the captured image), and
  // require the final volume to match the single-pass reference.
  if (b.stats.records_applied >= 2) {
    const int k = 1 + static_cast<int>(b.stats.records_applied / 2);
    RecoveredDb c =
        MakeRestoredSystem(o, run.catalog, cap, /*torn=*/false, fault);
    SnapshotObserver cobs(c.system.get(), /*snapshot_ssd=*/true);
    cobs.Request(kRedoPoint, k);
    {
      ScopedCrashArm arm(&cobs);
      c.stats = RecoverWarm(c);
    }
    const CrashCapture* mid = cobs.Find(kRedoPoint, k);
    if (mid == nullptr) {
      result.failures.push_back(label + " mid-redo crash point never hit " +
                                std::to_string(k) + " times");
    } else {
      RecoveredDb d2 = MakeRestoredSystem(o, run.catalog, *mid,
                                          /*torn=*/false);
      d2.stats = RecoverWarm(d2);
      const std::string diff = ComparePages(*b.system, *d2.system, o);
      if (!diff.empty()) {
        result.failures.push_back(label + " idempotence: " + diff);
      }
      result.idempotence_checked = true;
    }
  }
  return result;
}

}  // namespace

const char* ToString(SsdRestartFault fault) {
  switch (fault) {
    case SsdRestartFault::kClean:
      return "clean";
    case SsdRestartFault::kTornJournalTail:
      return "torn-journal-tail";
    case SsdRestartFault::kStaleJournal:
      return "stale-journal";
    case SsdRestartFault::kCorruptFrameHeader:
      return "corrupt-frame-header";
  }
  return "unknown";
}

std::map<std::string, int> CrashHarness::ProbeCrashPoints() {
  return RunWorkload(options_, {}, /*capture_first_hits=*/false,
                     /*capture_end=*/false)
      .hits;
}

CrashScenarioResult CrashHarness::RunScenario(const std::string& point,
                                              int hit, bool torn_tail) {
  std::map<std::string, std::set<int>> requests;
  requests[point].insert(hit);
  WorkloadRun run = RunWorkload(options_, requests,
                                /*capture_first_hits=*/false,
                                /*capture_end=*/point == kEndPoint);
  const auto it = run.captures.find({point, hit});
  if (it == run.captures.end()) return CrashScenarioResult{};
  return VerifyCapture(options_, run, it->second, torn_tail);
}

CrashMatrixResult CrashHarness::RunMatrix(bool quick) {
  CrashMatrixResult m;
  // Pass 1: one workload run captures the first hit of every point that
  // fires, plus the quiescent end state.
  WorkloadRun first = RunWorkload(options_, {}, /*capture_first_hits=*/true,
                                  /*capture_end=*/true);
  // Pass 2: middle (and, in full mode, last) hits, from observed counts.
  std::map<std::string, std::set<int>> requests;
  for (const auto& [point, count] : first.hits) {
    if (count >= 3) requests[point].insert(1 + count / 2);
    if (!quick && count >= 2) requests[point].insert(count);
  }
  WorkloadRun second;
  if (!requests.empty()) {
    second = RunWorkload(options_, requests, /*capture_first_hits=*/false,
                         /*capture_end=*/false);
  }

  std::set<std::string> points;
  const auto sweep = [&](const WorkloadRun& run) {
    for (const auto& [key, cap] : run.captures) {
      if (cap.point != kEndPoint) points.insert(cap.point);
      for (const bool torn : {false, true}) {
        const CrashScenarioResult r = VerifyCapture(options_, run, cap, torn);
        ++m.scenarios_run;
        m.failures.insert(m.failures.end(), r.failures.begin(),
                          r.failures.end());
      }
    }
  };
  sweep(first);
  sweep(second);
  m.points_covered = static_cast<int>(points.size());
  return m;
}

CrashScenarioResult CrashHarness::RunWarmRestartScenario(
    const std::string& point, int hit, SsdRestartFault fault) {
  TURBOBP_CHECK(options_.persistent_ssd);
  std::map<std::string, std::set<int>> requests;
  requests[point].insert(hit);
  WorkloadRun run = RunWorkload(options_, requests,
                                /*capture_first_hits=*/false,
                                /*capture_end=*/point == kEndPoint);
  const auto it = run.captures.find({point, hit});
  if (it == run.captures.end()) return CrashScenarioResult{};
  return VerifyWarmCapture(options_, run, it->second, fault);
}

CrashMatrixResult CrashHarness::RunWarmRestartMatrix(bool quick) {
  TURBOBP_CHECK(options_.persistent_ssd);
  CrashMatrixResult m;
  // Pass 1: first hit of every point that fires, plus the quiescent end
  // state. Full mode adds a second pass crashing at each point's middle hit.
  WorkloadRun first = RunWorkload(options_, {}, /*capture_first_hits=*/true,
                                  /*capture_end=*/true);
  std::map<std::string, std::set<int>> requests;
  if (!quick) {
    for (const auto& [point, count] : first.hits) {
      if (count >= 3) requests[point].insert(1 + count / 2);
    }
  }
  WorkloadRun second;
  if (!requests.empty()) {
    second = RunWorkload(options_, requests, /*capture_first_hits=*/false,
                         /*capture_end=*/false);
  }

  constexpr SsdRestartFault kFaults[] = {
      SsdRestartFault::kClean, SsdRestartFault::kTornJournalTail,
      SsdRestartFault::kStaleJournal, SsdRestartFault::kCorruptFrameHeader};
  std::set<std::string> points;
  const auto sweep = [&](const WorkloadRun& run) {
    for (const auto& [key, cap] : run.captures) {
      if (cap.point != kEndPoint) points.insert(cap.point);
      for (const SsdRestartFault fault : kFaults) {
        const CrashScenarioResult r =
            VerifyWarmCapture(options_, run, cap, fault);
        ++m.scenarios_run;
        m.failures.insert(m.failures.end(), r.failures.begin(),
                          r.failures.end());
      }
    }
  };
  sweep(first);
  sweep(second);
  m.points_covered = static_cast<int>(points.size());
  return m;
}

std::vector<std::string> CrashHarness::RunRedoIdempotenceSweep(int max_steps) {
  std::vector<std::string> failures;
  WorkloadRun run = RunWorkload(options_, {}, /*capture_first_hits=*/false,
                                /*capture_end=*/true);
  const auto it = run.captures.find({std::string(kEndPoint), 1});
  TURBOBP_CHECK(it != run.captures.end());
  const CrashCapture& cap = it->second;

  RecoveredDb ref = MakeRestoredSystem(options_, run.catalog, cap,
                                       /*torn=*/false);
  ref.stats = RecoverNow(*ref.system);
  const int64_t applied = ref.stats.records_applied;
  if (applied == 0) {
    failures.push_back(Label(options_, kEndPoint, 1, false) +
                       " workload produced no redo work — sweep is vacuous");
    return failures;
  }
  const int64_t steps =
      max_steps > 0 ? std::min<int64_t>(applied, max_steps) : applied;
  for (int64_t k = 1; k <= steps; ++k) {
    RecoveredDb c = MakeRestoredSystem(options_, run.catalog, cap,
                                       /*torn=*/false);
    SnapshotObserver cobs(c.system.get());
    cobs.Request(kRedoPoint, static_cast<int>(k));
    {
      ScopedCrashArm arm(&cobs);
      c.stats = RecoverNow(*c.system);
    }
    const std::string label =
        Label(options_, kRedoPoint, static_cast<int>(k), false);
    const CrashCapture* mid = cobs.Find(kRedoPoint, static_cast<int>(k));
    if (mid == nullptr) {
      failures.push_back(label + " redo crash point did not fire");
      continue;
    }
    RecoveredDb d = MakeRestoredSystem(options_, run.catalog, *mid,
                                       /*torn=*/false);
    d.stats = RecoverNow(*d.system);
    const std::string diff = ComparePages(*ref.system, *d.system, options_);
    if (!diff.empty()) failures.push_back(label + " " + diff);
    const RecoveryStats again = RecoverNow(*d.system);
    if (again.records_applied != 0) {
      failures.push_back(label + " re-recovery applied " +
                         std::to_string(again.records_applied) + " records");
    }
  }
  return failures;
}

}  // namespace turbobp
