#ifndef TURBOBP_FAULT_FAULT_PLAN_H_
#define TURBOBP_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace turbobp {

// The ways a flash device misbehaves in this model, following the failure
// taxonomy of FaCE and "How to Write to SSDs": transient command errors,
// torn (partial) writes that report success, latent bit corruption
// discovered on read, latency excursions, and whole-device dropout.
enum class FaultKind : uint8_t {
  kNone = 0,
  kTransientError,  // op fails with kIoError; no data is transferred
  kTornWrite,       // write silently lands only a prefix, reports success
  kBitFlip,         // read delivers the data with one flipped bit
  kLatencySpike,    // op succeeds but completes late
  kDeviceOffline,   // device dies permanently starting at this op
  kStuckIo,         // op succeeds but hangs for stuck_delay (no error):
                    // the hung-request shape that only I/O deadlines catch
};

const char* ToString(FaultKind kind);

// A time-and-address-windowed fault schedule: while `begin <= now < end`
// and the operation's first page falls in [first_page, last_page], the
// window's rates ADD to the plan's base rates. Chaos-soak storms are built
// from these — burst phases target one partition's contiguous frame range
// with elevated rates, quiet phases between them let the self-healing
// machinery recover. Defaults make a window that is always active and
// covers the whole device.
struct FaultWindow {
  Time begin = 0;
  Time end = kTimeMax;
  uint64_t first_page = 0;
  uint64_t last_page = UINT64_MAX;
  double transient_error_rate = 0.0;
  double torn_write_rate = 0.0;
  double bit_flip_rate = 0.0;
  double latency_spike_rate = 0.0;
  double stuck_io_rate = 0.0;

  bool Covers(Time now, uint64_t page) const {
    return now >= begin && now < end && page >= first_page &&
           page <= last_page;
  }
};

// A deterministic, seedable schedule of faults for one FaultInjectingDevice.
// Faults are drawn per device operation from an Rng seeded with `seed`, so
// two runs with the same plan and the same operation sequence inject the
// same faults at the same operations — failures found in CI replay locally.
struct FaultPlan {
  uint64_t seed = 0x5EEDull;

  // Independent per-operation probabilities.
  double transient_error_rate = 0.0;  // reads and writes
  double torn_write_rate = 0.0;       // writes only
  double bit_flip_rate = 0.0;         // reads only
  double latency_spike_rate = 0.0;    // reads and writes
  Time latency_spike = Millis(50);
  // Stuck I/O (reads and writes): the op succeeds but completes stuck_delay
  // late — far beyond any latency spike, and with no error to retry on.
  // NOTE: a fifth Bernoulli is drawn per op iff the plan CAN produce stuck
  // faults (stuck_io_rate > 0 or windows present), so plans without them
  // keep their historical draw streams bit-identical.
  double stuck_io_rate = 0.0;
  Time stuck_delay = Seconds(2);

  // The device goes (and stays) offline at this 0-based operation index;
  // -1 means never.
  int64_t offline_at_op = -1;

  // Time/address-windowed fault storms; rates add to the base rates above
  // while a window covers the operation.
  std::vector<FaultWindow> windows;

  // Exact faults at exact operation indices; overrides the random draws.
  // Lets tests corrupt precisely the frame they are watching.
  std::map<int64_t, FaultKind> scripted;

  static FaultPlan Healthy() { return FaultPlan{}; }
};

// Injection counters, reported by FaultInjectingDevice::fault_stats().
struct FaultStats {
  int64_t ops = 0;
  int64_t transient_errors = 0;
  int64_t torn_writes = 0;
  int64_t bit_flips = 0;
  int64_t latency_spikes = 0;
  int64_t stuck_ios = 0;
  int64_t offline_rejects = 0;  // ops rejected after the device died
  bool offline = false;
};

}  // namespace turbobp

#endif  // TURBOBP_FAULT_FAULT_PLAN_H_
