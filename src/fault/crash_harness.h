#ifndef TURBOBP_FAULT_CRASH_HARNESS_H_
#define TURBOBP_FAULT_CRASH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/ssd_manager.h"
#include "wal/recovery.h"

namespace turbobp {

// Restart fault applied to the surviving SSD image before a warm
// (persistent-cache) recovery. Each models one way the SSD's durable state
// can be damaged between power cut and restart — the warm matrix requires
// recovery to stay oracle-exact under every one of them (losing warmth is
// fine; losing correctness is not).
enum class SsdRestartFault {
  kClean = 0,           // SSD survives byte-exact
  kTornJournalTail,     // journal append tail holds a CRC-torn page
  kStaleJournal,        // current epoch's seal destroyed: journal is stale,
                        //   frames on the device are newer than its entries
  kCorruptFrameHeader,  // one journal-listed frame's content corrupted
};

const char* ToString(SsdRestartFault fault);

// Deterministic crash-point torture harness.
//
// For a chosen design and seed, the harness runs a mixed workload
// (committed 4-byte counter writes, unforced log tails, heap appends,
// B+-tree inserts, sharp checkpoints) against a shadow oracle, simulates a
// power cut at the k-th hit of a chosen crash point (see
// fault/crash_point.h), reopens a fresh system over the surviving durable
// state, runs redo recovery, and checks:
//
//   1. oracle exactness — every oracle cell equals the value of its last
//      update record at or below the crash-durable LSN. Redo-only / no-undo
//      semantics make exact equality the full correctness statement: it
//      subsumes both "all durable committed data present" and "nothing
//      beyond the durable log visible";
//   2. the InvariantAuditor reports the recovered system clean;
//   3. a second recovery pass applies zero records;
//   4. recovery idempotence — crash *again* mid-redo, recover once more,
//      and the final on-disk image is byte-identical to the single-pass one.
//
// Crashes are simulated by snapshot, not by interrupting control flow: the
// crash-point observer captures the durable state (per-spindle disk
// contents + the log's durable prefix) at the crash instant while the
// original run continues. Torn-tail mode additionally materializes the
// first *non-durable* log record with a corrupted body and a stale
// checksum — the partially-written block an interrupted log flush leaves
// behind — which recovery must detect and truncate.
struct CrashHarnessOptions {
  SsdDesign design = SsdDesign::kNoSsd;
  uint64_t seed = 1;
  int num_ops = 200;
  // Ops between sharp checkpoints (0 disables checkpoints entirely).
  int checkpoint_every = 60;
  // Negative-test mode: the workload's checkpoints skip the LC SSD-dirty
  // drain while still writing their end record — the WAL-compliance bug
  // the harness exists to catch. RunScenario must then report an oracle
  // violation for LC crashes after a completed checkpoint.
  bool break_lc_checkpoint = false;
  // Small geometry so evictions, cleaning and checkpoints all happen within
  // a few hundred ops.
  uint32_t page_bytes = 512;
  uint64_t db_pages = 192;
  uint64_t bp_frames = 16;
  int64_t ssd_frames = 48;
  // Persistent-cache mode: the workload runs with persistent_ssd_cache on,
  // crash captures additionally snapshot the SSD device (frames + metadata
  // journal region), and warm scenarios recover via
  // DbSystem::RecoverPersistent instead of reformatting the SSD.
  bool persistent_ssd = false;
  // Drives the self-healing machinery mid-workload (corrupt one clean frame
  // -> scrub repair; degrade partition 0 -> canary re-enable), so the
  // "ssd/scrub-repair", "ssd/canary-write" and "ssd/reenable" crash points
  // fire under the torture matrix. Content-neutral: repairs re-seed from
  // identical disk copies and a degrade only purges cached copies, so every
  // oracle/audit check applies unchanged.
  bool exercise_self_healing = false;
};

struct CrashScenarioResult {
  // The target point reached its k-th hit during the workload. Untriggered
  // scenarios are vacuously ok (the matrix only sweeps points that fire).
  bool triggered = false;
  // Each failure string is self-describing and carries the full
  // {design, crash_point, hit, seed, torn} tuple.
  std::vector<std::string> failures;
  RecoveryStats recovery;       // stats of the post-crash recovery pass
  int64_t oracle_cells = 0;     // oracle cells compared
  bool idempotence_checked = false;
  // Warm scenarios only: the SSD reconciliation outcome, and whether the
  // requested restart fault found something to damage (an empty journal
  // leaves kCorruptFrameHeader nothing to corrupt, for example).
  PersistentRestoreStats persistent;
  bool ssd_fault_armed = false;

  bool ok() const { return failures.empty(); }
};

struct CrashMatrixResult {
  int scenarios_run = 0;
  int points_covered = 0;  // distinct crash points that fired and were swept
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

class CrashHarness {
 public:
  explicit CrashHarness(const CrashHarnessOptions& options)
      : options_(options) {}

  // Runs the seeded workload once with a counting observer (no crash) and
  // returns how often each crash point fired. The matrix sweeps exactly
  // these points; a point absent here cannot fire under this design.
  std::map<std::string, int> ProbeCrashPoints();

  // One full crash/recover/verify cycle: crash at the hit-th firing of
  // `point`, optionally with a torn log tail.
  CrashScenarioResult RunScenario(const std::string& point, int hit,
                                  bool torn_tail);

  // Sweeps every crash point that fires under this design × {clean, torn}.
  // Quick mode crashes at the first and middle hit of each point; full mode
  // adds the last hit. Both also run an end-of-workload crash (maximal redo
  // tail). This is the {design, seed} slice of the ISSUE's matrix; tests and
  // scripts/crash_torture.sh iterate designs and seeds around it.
  CrashMatrixResult RunMatrix(bool quick = true);

  // Warm-restart scenario (requires options.persistent_ssd): crash at the
  // hit-th firing of `point`, restore the surviving SSD image, damage it per
  // `fault`, recover via RecoverPersistent and verify — oracle exactness
  // through the buffer pool (restored dirty frames legitimately shadow the
  // disk), the horizon rule (no re-attached frame's LSN exceeds the WAL
  // durable horizon), auditor + frame-header audit clean, convergence (an
  // immediate re-crash after recovery redoes nothing), determinism (a second
  // recovery from the same image yields a byte-identical volume), and
  // mid-redo idempotence.
  CrashScenarioResult RunWarmRestartScenario(const std::string& point, int hit,
                                             SsdRestartFault fault);

  // Sweeps every crash point that fires under this design × all four restart
  // faults. Quick mode crashes at the first hit of each point; full mode adds
  // the middle hit. Both include the end-of-workload crash.
  CrashMatrixResult RunWarmRestartMatrix(bool quick = true);

  // Satellite: crash recovery itself at *every* k-th applied redo record of
  // an end-of-workload crash, recover again, and require the re-recovered
  // image to be byte-identical to the single-pass reference. Returns
  // accumulated failures (empty == pass). `max_steps` caps the sweep
  // (0 = every step).
  std::vector<std::string> RunRedoIdempotenceSweep(int max_steps = 0);

 private:
  CrashHarnessOptions options_;
};

}  // namespace turbobp

#endif  // TURBOBP_FAULT_CRASH_HARNESS_H_
