#ifndef TURBOBP_FAULT_FAULT_INJECTING_DEVICE_H_
#define TURBOBP_FAULT_FAULT_INJECTING_DEVICE_H_

#include "common/rng.h"
#include "debug/latch_order_checker.h"
#include "fault/fault_plan.h"
#include "storage/storage_device.h"

namespace turbobp {

// Decorator that injects the faults of a FaultPlan into an underlying
// StorageDevice. Wraps the SSD (or any device) transparently: data movement
// and timing are delegated to the base device, and the plan decides — one
// deterministic draw sequence per operation — whether this operation fails,
// tears, corrupts, lags, or kills the device outright.
//
// Thread safety: mu_ (class kFaultDevice, ordered before kDevice) is held
// for the whole operation so the (op index, rng draw) sequence is a single
// deterministic stream even under concurrent callers.
class FaultInjectingDevice : public StorageDevice {
 public:
  FaultInjectingDevice(StorageDevice* base, const FaultPlan& plan);

  uint64_t num_pages() const override { return base_->num_pages(); }
  uint32_t page_bytes() const override { return base_->page_bytes(); }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override;
  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override;

  int QueueLength(Time now) override { return base_->QueueLength(now); }
  Time EstimateReadTime(AccessKind kind) const override {
    return base_->EstimateReadTime(kind);
  }

  // Kills the device immediately (benchmarks/tests pulling the plug
  // mid-workload, independent of the plan's offline_at_op).
  void ForceOffline();

  bool offline() const;
  FaultStats fault_stats() const;
  StorageDevice* base() { return base_; }

 private:
  // Decides the fault for the next operation and advances the op counter.
  // `charge == false` ops (the loader) pass through unfaulted and undrawn,
  // keeping population traffic out of the deterministic stream. `now` and
  // `first_page` select which FaultWindows apply (windowed rates add to the
  // base rates).
  FaultKind NextFault(IoOp op, Time now, uint64_t first_page)
      TURBOBP_REQUIRES(mu_);

  StorageDevice* const base_;
  const FaultPlan plan_;

  // Held across the base-device call by design (kFaultDevice -> kDevice):
  // the (op index, rng draw) stream must stay a single deterministic
  // sequence even under concurrent callers.
  mutable TrackedMutex<LatchClass::kFaultDevice> mu_;
  Rng rng_ TURBOBP_GUARDED_BY(mu_);
  int64_t op_index_ TURBOBP_GUARDED_BY(mu_) = 0;
  bool offline_ TURBOBP_GUARDED_BY(mu_) = false;
  FaultStats stats_ TURBOBP_GUARDED_BY(mu_);
};

}  // namespace turbobp

#endif  // TURBOBP_FAULT_FAULT_INJECTING_DEVICE_H_
