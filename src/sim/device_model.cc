#include "sim/device_model.h"

#include <algorithm>

#include "common/status.h"

namespace turbobp {

namespace {

// Scales a per-page transfer time from the model's reference page size to
// the configured page size (transfer is linear in bytes).
Time ScaleTransfer(Time per_ref_page, uint32_t page_bytes,
                   uint32_t reference_bytes) {
  return std::max<Time>(
      1, per_ref_page * page_bytes / static_cast<Time>(reference_bytes));
}

}  // namespace

// ---------------------------------------------------------------- HddModel

HddModel::HddModel(const HddParams& params) : params_(params) {
  Reset();
}

Time HddModel::Transfer(IoOp op, uint32_t pages) const {
  const Time per_page = ScaleTransfer(
      op == IoOp::kRead ? params_.transfer_read_per_page
                        : params_.transfer_write_per_page,
      params_.page_bytes, params_.reference_page_bytes);
  return per_page * pages;
}

Time HddModel::ServiceTime(const IoRequest& req) {
  bool sequential = false;
  for (int i = 0; i < kStreams; ++i) {
    if (stream_end_[i] == req.page_offset) {
      sequential = true;
      stream_end_[i] = req.page_offset + req.num_pages;
      break;
    }
  }
  if (!sequential) {
    // Start (or restart) a stream in the round-robin slot.
    stream_end_[next_stream_slot_] = req.page_offset + req.num_pages;
    next_stream_slot_ = (next_stream_slot_ + 1) % kStreams;
  }
  Time t = Transfer(req.op, req.num_pages);
  if (!sequential) {
    t += req.op == IoOp::kRead ? params_.seek_read : params_.seek_write;
  }
  return t;
}

Time HddModel::EstimateReadTime(AccessKind kind) const {
  const Time xfer = Transfer(IoOp::kRead, 1);
  return kind == AccessKind::kRandom ? params_.seek_read + xfer : xfer;
}

void HddModel::Reset() {
  for (int i = 0; i < kStreams; ++i) stream_end_[i] = UINT64_MAX;
  next_stream_slot_ = 0;
}

// ---------------------------------------------------------------- SsdModel

SsdModel::SsdModel(const SsdParams& params) : params_(params) {}

Time SsdModel::ServiceTime(const IoRequest& req) {
  const bool sequential = req.page_offset == next_sequential_offset_;
  next_sequential_offset_ = req.page_offset + req.num_pages;
  Time per_page;
  if (req.op == IoOp::kRead) {
    per_page = sequential ? params_.read_sequential_per_page
                          : params_.read_random_per_page;
  } else {
    per_page = sequential ? params_.write_sequential_per_page
                          : params_.write_random_per_page;
  }
  // Pages after the first within one request stream sequentially.
  Time t = per_page;
  if (req.num_pages > 1) {
    const Time seq = req.op == IoOp::kRead
                         ? params_.read_sequential_per_page
                         : params_.write_sequential_per_page;
    t += seq * (req.num_pages - 1);
  }
  return t;
}

Time SsdModel::EstimateReadTime(AccessKind kind) const {
  return kind == AccessKind::kRandom ? params_.read_random_per_page
                                     : params_.read_sequential_per_page;
}

void SsdModel::Reset() { next_sequential_offset_ = UINT64_MAX; }

// ----------------------------------------------------------- DeviceTimeline

DeviceTimeline::DeviceTimeline(DeviceModel* model, uint32_t page_bytes)
    : model_(model), page_bytes_(page_bytes) {
  TURBOBP_CHECK(model != nullptr);
}

Time DeviceTimeline::Schedule(const IoRequest& req, Time now,
                              Time* service_start) {
  const Time service = model_->ServiceTime(req);
  // Earliest idle interval at or after `now` that fits `service`.
  Time start = now;
  auto it = busy_.upper_bound(start);
  if (it != busy_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) start = prev->second;
  }
  while (it != busy_.end() && it->first < start + service) {
    start = std::max(start, it->second);
    ++it;
  }
  const Time completion = start + service;
  if (service_start != nullptr) *service_start = start;
  busy_.emplace(start, completion);
  free_at_ = std::max(free_at_, completion);
  busy_time_ += service;
  // Bound the map: coalesce the oldest half pairwise once it grows large.
  if (busy_.size() > 2048) {
    auto first = busy_.begin();
    for (size_t i = 0; i < 1024 && std::next(first) != busy_.end(); ++i) {
      auto second = std::next(first);
      const Time s = first->first;
      const Time e = std::max(first->second, second->second);
      busy_.erase(first);
      busy_.erase(second);
      first = busy_.emplace(s, e).first;
      if (std::next(first) == busy_.end()) break;
      first = std::next(first);
    }
  }
  const int64_t nbytes = static_cast<int64_t>(req.num_pages) * page_bytes_;
  if (req.op == IoOp::kRead) {
    ++reads_;
    read_bytes_ += nbytes;
    if (read_traffic_ != nullptr) read_traffic_->Record(now, nbytes);
  } else {
    ++writes_;
    write_bytes_ += nbytes;
    if (write_traffic_ != nullptr) write_traffic_->Record(now, nbytes);
  }
  pending_completions_.insert(completion);
  return completion;
}

int DeviceTimeline::QueueLength(Time now) {
  while (!pending_completions_.empty() &&
         *pending_completions_.begin() <= now) {
    pending_completions_.erase(pending_completions_.begin());
  }
  return static_cast<int>(pending_completions_.size());
}

void DeviceTimeline::Reset() {
  busy_.clear();
  free_at_ = 0;
  busy_time_ = 0;
  reads_ = writes_ = 0;
  read_bytes_ = write_bytes_ = 0;
  pending_completions_.clear();
  model_->Reset();
}

}  // namespace turbobp
