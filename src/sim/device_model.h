#ifndef TURBOBP_SIM_DEVICE_MODEL_H_
#define TURBOBP_SIM_DEVICE_MODEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "common/stats.h"
#include "common/types.h"

namespace turbobp {

// A single I/O request as seen by a device: a contiguous run of pages.
struct IoRequest {
  IoOp op = IoOp::kRead;
  uint64_t page_offset = 0;  // first page on this device
  uint32_t num_pages = 1;
};

// Service-time model interface. Implementations compute how long a request
// occupies the device, given the device's positioning state (for HDDs, the
// head position for sequential-run detection).
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  // Service time for `req`; may update positioning state.
  virtual Time ServiceTime(const IoRequest& req) = 0;

  // Estimated service time for a 1-page access of the given kind, without
  // disturbing positioning state. Used by TAC's temperature accounting
  // ("milliseconds saved by reading the page from the SSD instead of the
  // disk") and by the admission policy's generalized cost test.
  virtual Time EstimateReadTime(AccessKind kind) const = 0;

  virtual void Reset() = 0;
};

// Mechanical-disk model: a request pays seek + rotational delay unless it
// starts exactly where the previous request on this spindle ended, plus a
// per-page transfer time. Parameters are calibrated so an 8-spindle stripe
// reproduces Table 1 of the paper (8KB pages, write caching off):
//   random read 1,015 IOPS   sequential read 26,370 IOPS
//   random write   895 IOPS  sequential write  9,463 IOPS
struct HddParams {
  // Positioning cost (seek + rotational latency), paid on discontinuity.
  Time seek_read = Micros(7577);
  Time seek_write = Micros(8095);
  // Transfer time per 8KB page.
  Time transfer_read_per_page = Micros(303);
  Time transfer_write_per_page = Micros(845);
  // Reference page size for the transfer constants; other page sizes scale
  // transfer time linearly.
  uint32_t reference_page_bytes = 8192;
  uint32_t page_bytes = 8192;
};

class HddModel : public DeviceModel {
 public:
  explicit HddModel(const HddParams& params = HddParams());

  Time ServiceTime(const IoRequest& req) override;
  Time EstimateReadTime(AccessKind kind) const override;
  void Reset() override;

 private:
  Time Transfer(IoOp op, uint32_t pages) const;

  HddParams params_;
  // The drive (command queue + controller) keeps several sequential
  // streams alive concurrently, so interleaved scans still stream. A
  // request continuing any tracked stream avoids the positioning cost.
  static constexpr int kStreams = 8;
  uint64_t stream_end_[kStreams];
  int next_stream_slot_ = 0;
};

// Flash-SSD model: no positioning cost; read and write have distinct
// per-page service times, with a small discount for sequential runs.
// Calibrated to the 160GB SLC Fusion ioDrive in Table 1:
//   random read 12,182 IOPS  sequential read 15,980 IOPS
//   random write 12,374 IOPS sequential write 14,965 IOPS
// Unlike disk transfer times, these costs are flash-latency-dominated and
// are NOT scaled with the configured page size.
struct SsdParams {
  Time read_random_per_page = Micros(82);
  Time read_sequential_per_page = Micros(63);
  Time write_random_per_page = Micros(81);
  Time write_sequential_per_page = Micros(67);
  uint32_t page_bytes = 8192;  // recorded for byte accounting only
};

class SsdModel : public DeviceModel {
 public:
  explicit SsdModel(const SsdParams& params = SsdParams());

  Time ServiceTime(const IoRequest& req) override;
  Time EstimateReadTime(AccessKind kind) const override;
  void Reset() override;

 private:
  SsdParams params_;
  uint64_t next_sequential_offset_ = UINT64_MAX;
};

// Work-conserving request schedule in virtual time for one device. A
// request arriving at `now` books the earliest idle interval of the
// device's timeline that fits its service time (modern I/O subsystems
// reorder queued requests — Native Command Queuing, which the paper cites
// in Section 2.2 — so an arrival never waits behind a request that was
// *booked* for a later instant). Tracks queue length (for the SSD
// throttle-control optimization, Section 3.3.2), busy time, and
// per-operation byte counts (for the I/O-traffic curves of Figure 8).
class DeviceTimeline {
 public:
  DeviceTimeline(DeviceModel* model, uint32_t page_bytes);

  // Schedules `req` arriving at `now`; returns its completion time. If
  // `service_start` is non-null it receives the instant the device begins
  // servicing the request (completion minus service time — the queue wait
  // is the gap from `now` to there).
  Time Schedule(const IoRequest& req, Time now, Time* service_start = nullptr);

  // Number of requests still pending (not yet completed) at `now`.
  int QueueLength(Time now);

  // Virtual time the device has spent servicing requests.
  Time busy_time() const { return busy_time_; }
  Time free_at() const { return free_at_; }
  int64_t num_requests(IoOp op) const {
    return op == IoOp::kRead ? reads_ : writes_;
  }
  int64_t bytes(IoOp op) const {
    return op == IoOp::kRead ? read_bytes_ : write_bytes_;
  }

  // Optional traffic recording: bytes per op land in these series.
  void AttachTraffic(TimeSeries* read_bytes, TimeSeries* write_bytes) {
    read_traffic_ = read_bytes;
    write_traffic_ = write_bytes;
  }

  void Reset();

 private:
  DeviceModel* model_;
  uint32_t page_bytes_;
  // Booked busy intervals, keyed by start time (non-overlapping). Old
  // intervals are coalesced when the map grows, which only overstates
  // contiguous busy spans (conservative).
  std::map<Time, Time> busy_;
  Time free_at_ = 0;  // end of the latest booked interval
  Time busy_time_ = 0;
  int64_t reads_ = 0;
  int64_t writes_ = 0;
  int64_t read_bytes_ = 0;
  int64_t write_bytes_ = 0;
  std::multiset<Time> pending_completions_;
  TimeSeries* read_traffic_ = nullptr;
  TimeSeries* write_traffic_ = nullptr;
};

}  // namespace turbobp

#endif  // TURBOBP_SIM_DEVICE_MODEL_H_
