#ifndef TURBOBP_SIM_SIM_EXECUTOR_H_
#define TURBOBP_SIM_SIM_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "common/types.h"

namespace turbobp {

// Discrete-event executor driving all virtual time in the system.
//
// Benchmarks model N concurrent database clients as actors: each actor runs
// one step (a bounded burst of page accesses), consults the device timelines
// for the completion time of any I/O it had to wait on, and reschedules its
// next step at that completion time. Background activity (asynchronous
// eviction writes, the lazy-cleaning thread, periodic checkpoints) is
// likewise scheduled as events. Events fire in (time, insertion-sequence)
// order, so runs are fully deterministic.
//
// Thread safety: the queue is protected by an internal mutex and now() is an
// atomic read, so OS threads may ScheduleAt/ScheduleAfter concurrently with
// one pump thread running events (the real-thread driver mode: clients run
// on their own threads with ctx.executor == nullptr while a single pump
// thread advances the executor for background actors). Events themselves
// run OUTSIDE the mutex. Only one thread may call RunOne/RunUntil/
// RunUntilIdle at a time. In concurrent mode (set_concurrent(true)) a
// schedule time in the past is clamped to now() instead of asserting —
// client wall-clocks legitimately trail the pump's virtual clock slightly;
// the strict t >= now() check stays on in the deterministic simulator where
// a past-time schedule is a bug.
class SimExecutor {
 public:
  SimExecutor() = default;
  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  Time now() const { return now_.load(std::memory_order_relaxed); }

  // Real-thread mode switch: tolerate slightly-stale schedule times (clamp
  // to now() instead of CHECK-failing). Set before client threads start.
  void set_concurrent(bool on) { concurrent_ = on; }

  // Schedules fn at absolute virtual time t (>= now, clamped if concurrent).
  void ScheduleAt(Time t, std::function<void()> fn);
  void ScheduleAfter(Time delay, std::function<void()> fn) {
    ScheduleAt(now() + delay, std::move(fn));
  }

  // Runs the earliest pending event, advancing now() to its time.
  // Returns false if no events remain.
  bool RunOne();

  // Runs all events with time <= t, then sets now() = t.
  void RunUntil(Time t);

  // Runs until no events remain.
  void RunUntilIdle();

  size_t num_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  uint64_t num_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the earliest event with time <= bound (or any event when bound is
  // kMaxTime) and advances now(); returns false if none qualifies.
  bool PopReady(Time bound, Event* out);

  mutable std::mutex mu_;
  std::atomic<Time> now_{0};
  std::atomic<uint64_t> executed_{0};
  bool concurrent_ = false;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace turbobp

#endif  // TURBOBP_SIM_SIM_EXECUTOR_H_
