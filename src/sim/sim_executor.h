#ifndef TURBOBP_SIM_SIM_EXECUTOR_H_
#define TURBOBP_SIM_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace turbobp {

// Discrete-event executor driving all virtual time in the system.
//
// Benchmarks model N concurrent database clients as actors: each actor runs
// one step (a bounded burst of page accesses), consults the device timelines
// for the completion time of any I/O it had to wait on, and reschedules its
// next step at that completion time. Background activity (asynchronous
// eviction writes, the lazy-cleaning thread, periodic checkpoints) is
// likewise scheduled as events. Events fire in (time, insertion-sequence)
// order, so runs are fully deterministic.
class SimExecutor {
 public:
  SimExecutor() = default;
  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  Time now() const { return now_; }

  // Schedules fn at absolute virtual time t (>= now).
  void ScheduleAt(Time t, std::function<void()> fn);
  void ScheduleAfter(Time delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs the earliest pending event, advancing now() to its time.
  // Returns false if no events remain.
  bool RunOne();

  // Runs all events with time <= t, then sets now() = t.
  void RunUntil(Time t);

  // Runs until no events remain.
  void RunUntilIdle();

  size_t num_pending() const { return queue_.size(); }
  uint64_t num_executed() const { return executed_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace turbobp

#endif  // TURBOBP_SIM_SIM_EXECUTOR_H_
