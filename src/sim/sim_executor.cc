#include "sim/sim_executor.h"

#include <limits>
#include <utility>

#include "common/status.h"

namespace turbobp {

void SimExecutor::ScheduleAt(Time t, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const Time vnow = now_.load(std::memory_order_relaxed);
  if (concurrent_) {
    // A client thread's wall-anchored clock may trail the pump's virtual
    // clock by a scheduling quantum; firing "as soon as possible" is the
    // right semantics there, not an assertion.
    if (t < vnow) t = vnow;
  } else {
    TURBOBP_CHECK(t >= vnow);
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool SimExecutor::PopReady(Time bound, Event* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty() || queue_.top().time > bound) return false;
  // std::priority_queue::top() returns const&; the event must be copied out
  // before pop. Move the function via const_cast, which is safe because the
  // element is removed immediately afterwards.
  *out = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  TURBOBP_CHECK(out->time >= now_.load(std::memory_order_relaxed));
  now_.store(out->time, std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SimExecutor::RunOne() {
  Event ev;
  if (!PopReady(std::numeric_limits<Time>::max(), &ev)) return false;
  ev.fn();  // outside mu_: the event may schedule follow-ups
  return true;
}

void SimExecutor::RunUntil(Time t) {
  Event ev;
  while (PopReady(t, &ev)) {
    ev.fn();
  }
  // Advance to t even if no event landed exactly there.
  std::lock_guard<std::mutex> lock(mu_);
  if (t > now_.load(std::memory_order_relaxed)) {
    now_.store(t, std::memory_order_relaxed);
  }
}

void SimExecutor::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace turbobp
