#include "sim/sim_executor.h"

#include <utility>

#include "common/status.h"

namespace turbobp {

void SimExecutor::ScheduleAt(Time t, std::function<void()> fn) {
  TURBOBP_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool SimExecutor::RunOne() {
  if (queue_.empty()) return false;
  // std::priority_queue::top() returns const&; the event must be copied out
  // before pop. Move the function via const_cast, which is safe because the
  // element is removed immediately afterwards.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  TURBOBP_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void SimExecutor::RunUntil(Time t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
  }
  if (t > now_) now_ = t;
}

void SimExecutor::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace turbobp
