#include "engine/bplus_tree.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

namespace {

// Typed accessors over a node page's payload. Entries start 8 bytes in.
struct Node {
  explicit Node(PageView v) : view(v) {}

  PageView view;

  bool is_leaf() const { return view.header().type == PageType::kBTreeLeaf; }
  uint16_t count() const { return view.header().slot_count; }
  void set_count(uint16_t n) { view.header().slot_count = n; }

  PageId next() const {
    PageId p;
    std::memcpy(&p, view.payload(), 8);
    return p;
  }
  void set_next(PageId p) { std::memcpy(view.payload(), &p, 8); }

  uint8_t* entry_ptr(int i) { return view.payload() + 8 + i * 16; }
  const uint8_t* entry_ptr(int i) const { return view.payload() + 8 + i * 16; }

  uint64_t key_at(int i) const {
    uint64_t k;
    std::memcpy(&k, entry_ptr(i), 8);
    return k;
  }
  uint64_t value_at(int i) const {
    uint64_t v;
    std::memcpy(&v, entry_ptr(i) + 8, 8);
    return v;
  }
  void set_entry(int i, uint64_t key, uint64_t value) {
    std::memcpy(entry_ptr(i), &key, 8);
    std::memcpy(entry_ptr(i) + 8, &value, 8);
  }

  // First index with key > k, over [0, count).
  int UpperBound(uint64_t k) const {
    int lo = 0, hi = count();
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (key_at(mid) <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // First index with key >= k, over [0, count).
  int LowerBound(uint64_t k) const {
    int lo = 0, hi = count();
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (key_at(mid) < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Inner routing: child entry index for key k (entry 0 is -inf). The
  // rightmost child that may contain k — the insertion route.
  int ChildIndexFor(uint64_t k) const { return std::max(0, UpperBound(k) - 1); }

  // Leftmost child that may contain k: duplicates of k can span several
  // nodes, and lookups/deletes must start at the first of them.
  int LeftChildIndexFor(uint64_t k) const {
    return std::max(0, LowerBound(k) - 1);
  }

  // Shifts entries [i, count) right by one and writes the new entry.
  void InsertAt(int i, uint64_t key, uint64_t value) {
    std::memmove(entry_ptr(i + 1), entry_ptr(i),
                 static_cast<size_t>(count() - i) * 16);
    set_entry(i, key, value);
    set_count(static_cast<uint16_t>(count() + 1));
  }

  void RemoveAt(int i) {
    std::memmove(entry_ptr(i), entry_ptr(i + 1),
                 static_cast<size_t>(count() - i - 1) * 16);
    set_count(static_cast<uint16_t>(count() - 1));
  }

  // Byte offset (within the page) of entry i — for targeted WAL records.
  uint32_t EntryOffset(int i) const {
    return kPageHeaderSize + 8 + static_cast<uint32_t>(i) * 16;
  }
};

// Logs the page header plus the entry region [from_entry, count) of `node`
// as two physical redo records (the header carries slot_count).
void LogNodeSuffix(PageGuard& guard, Node& node, int from_entry,
                   uint64_t txn_id, IoContext& ctx) {
  if (!ctx.charge) {
    guard.MarkDirtyUnlogged();
    return;
  }
  guard.LogUpdate(txn_id, 0, kPageHeaderSize + 8);
  const uint32_t from = node.EntryOffset(from_entry);
  const uint32_t to = node.EntryOffset(node.count());
  if (to > from) guard.LogUpdate(txn_id, from, to - from);
}

void LogWholeNode(PageGuard& guard, Node& node, uint64_t txn_id,
                  IoContext& ctx) {
  if (!ctx.charge) {
    guard.MarkDirtyUnlogged();
    return;
  }
  guard.LogUpdate(txn_id, 0, node.EntryOffset(node.count()));
}

}  // namespace

BPlusTree BPlusTree::Create(Database* db, const std::string& name,
                            IoContext& ctx) {
  TURBOBP_CHECK(db != nullptr);
  TURBOBP_CHECK(!db->catalog().btrees.contains(name));
  BTreeInfo info;
  info.name = name;
  info.root = db->AllocatePages(1);
  info.height = 1;
  db->catalog().btrees[name] = info;
  PageGuard guard = db->pool().NewPage(info.root, PageType::kBTreeLeaf, ctx);
  Node node(guard.view());
  node.set_next(kInvalidPageId);
  node.set_count(0);
  LogWholeNode(guard, node, 0, ctx);
  return BPlusTree(db, name);
}

BPlusTree BPlusTree::Attach(Database* db, const std::string& name) {
  TURBOBP_CHECK(db != nullptr);
  TURBOBP_CHECK(db->catalog().btrees.contains(name));
  return BPlusTree(db, name);
}

PageId BPlusTree::DescendToLeaf(uint64_t key,
                                std::vector<std::pair<PageId, int>>* path,
                                IoContext& ctx) {
  PageId pid = info().root;
  while (true) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    if (node.is_leaf()) return pid;
    const int child = node.ChildIndexFor(key);
    if (path != nullptr) path->emplace_back(pid, child);
    pid = node.value_at(child);
  }
}

PageId BPlusTree::DescendToLeafLeftmost(uint64_t key, IoContext& ctx) {
  PageId pid = info().root;
  while (true) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    if (node.is_leaf()) return pid;
    pid = node.value_at(node.LeftChildIndexFor(key));
  }
}

bool BPlusTree::Search(uint64_t key, uint64_t* value, IoContext& ctx) {
  // Duplicates of one key can span leaves; start at the leftmost candidate
  // and walk the chain until the key range is passed.
  PageId pid = DescendToLeafLeftmost(key, ctx);
  while (pid != kInvalidPageId) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    const int pos = node.LowerBound(key);
    if (pos < node.count() && node.key_at(pos) == key) {
      if (value != nullptr) *value = node.value_at(pos);
      return true;
    }
    if (pos < node.count()) return false;  // first key > target: passed it
    pid = node.next();
  }
  return false;
}

std::pair<PageId, uint64_t> BPlusTree::SplitNode(PageGuard& guard,
                                                 uint64_t txn_id,
                                                 IoContext& ctx) {
  Node node(guard.view());
  const PageId right_pid = db_->AllocatePages(1);
  // The right sibling is a page created on the fly — dirty from birth and
  // never read from disk (the TAC-uncacheable case).
  PageGuard right_guard =
      db_->pool().NewPage(right_pid, guard.view().header().type, ctx);
  Node right(right_guard.view());

  const int n = node.count();
  const int keep = n / 2;
  const int moved = n - keep;
  std::memcpy(right.entry_ptr(0), node.entry_ptr(keep),
              static_cast<size_t>(moved) * 16);
  right.set_count(static_cast<uint16_t>(moved));
  node.set_count(static_cast<uint16_t>(keep));
  if (node.is_leaf()) {
    right.set_next(node.next());
    node.set_next(right_pid);
  } else {
    right.set_next(kInvalidPageId);
  }
  const uint64_t split_key = right.key_at(0);
  LogWholeNode(guard, node, txn_id, ctx);
  LogWholeNode(right_guard, right, txn_id, ctx);
  // Both halves are logged but the parent's separator is not yet: redo must
  // replay all three whole-node records together or not at all.
  TURBOBP_CRASH_POINT("btree/split");
  return {right_pid, split_key};
}

void BPlusTree::InsertIntoParent(std::vector<std::pair<PageId, int>>& path,
                                 PageId left, uint64_t split_key, PageId right,
                                 uint64_t txn_id, IoContext& ctx) {
  if (path.empty()) {
    // Split reached the root: grow the tree by one level.
    BTreeInfo& inf = mutable_info();
    const PageId new_root = db_->AllocatePages(1);
    PageGuard guard = db_->pool().NewPage(new_root, PageType::kBTreeInner, ctx);
    Node node(guard.view());
    node.set_next(kInvalidPageId);
    node.set_count(0);
    node.InsertAt(0, 0, left);  // -inf router
    node.InsertAt(1, split_key, right);
    LogWholeNode(guard, node, txn_id, ctx);
    inf.root = new_root;
    ++inf.height;
    return;
  }
  const auto [parent_pid, child_idx] = path.back();
  path.pop_back();
  PageGuard guard = db_->pool().FetchPage(parent_pid, AccessKind::kRandom, ctx);
  Node node(guard.view());
  if (node.count() < MaxEntries()) {
    node.InsertAt(child_idx + 1, split_key, right);
    LogNodeSuffix(guard, node, child_idx + 1, txn_id, ctx);
    return;
  }
  // Parent full: split it first, then route the new entry.
  const auto [new_pid, new_key] = SplitNode(guard, txn_id, ctx);
  PageId target = parent_pid;
  if (split_key >= new_key) target = new_pid;
  {
    PageGuard tguard = db_->pool().FetchPage(target, AccessKind::kRandom, ctx);
    Node tnode(tguard.view());
    const int pos = tnode.UpperBound(split_key);
    tnode.InsertAt(pos, split_key, right);
    LogNodeSuffix(tguard, tnode, pos, txn_id, ctx);
  }
  guard.Release();
  InsertIntoParent(path, parent_pid, new_key, new_pid, txn_id, ctx);
}

void BPlusTree::Insert(uint64_t key, uint64_t value, uint64_t txn_id,
                       IoContext& ctx) {
  std::vector<std::pair<PageId, int>> path;
  const PageId leaf_pid = DescendToLeaf(key, &path, ctx);
  PageGuard guard = db_->pool().FetchPage(leaf_pid, AccessKind::kRandom, ctx);
  Node node(guard.view());
  if (node.count() < MaxEntries()) {
    const int pos = node.UpperBound(key);
    node.InsertAt(pos, key, value);
    LogNodeSuffix(guard, node, pos, txn_id, ctx);
    ++mutable_info().num_entries;
    return;
  }
  const auto [right_pid, split_key] = SplitNode(guard, txn_id, ctx);
  const PageId target = key >= split_key ? right_pid : leaf_pid;
  {
    PageGuard tguard = db_->pool().FetchPage(target, AccessKind::kRandom, ctx);
    Node tnode(tguard.view());
    const int pos = tnode.UpperBound(key);
    tnode.InsertAt(pos, key, value);
    LogNodeSuffix(tguard, tnode, pos, txn_id, ctx);
  }
  guard.Release();
  InsertIntoParent(path, leaf_pid, split_key, right_pid, txn_id, ctx);
  ++mutable_info().num_entries;
}

bool BPlusTree::Delete(uint64_t key, uint64_t txn_id, IoContext& ctx) {
  PageId pid = DescendToLeafLeftmost(key, ctx);
  while (pid != kInvalidPageId) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    const int pos = node.LowerBound(key);
    if (pos < node.count() && node.key_at(pos) == key) {
      node.RemoveAt(pos);
      LogNodeSuffix(guard, node, std::max(0, pos - 1), txn_id, ctx);
      --mutable_info().num_entries;
      return true;
    }
    if (pos < node.count()) return false;  // passed the key range
    pid = node.next();
  }
  return false;
}

void BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn, IoContext& ctx) {
  PageId pid = DescendToLeafLeftmost(lo, ctx);
  while (pid != kInvalidPageId) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    for (int i = 0; i < node.count(); ++i) {
      const uint64_t k = node.key_at(i);
      if (k < lo) continue;
      if (k > hi) return;
      if (!fn(k, node.value_at(i))) return;
    }
    pid = node.next();
  }
}

void BPlusTree::BulkLoad(
    const std::vector<std::pair<uint64_t, uint64_t>>& sorted, IoContext& ctx,
    double fill_factor) {
  TURBOBP_CHECK(info().num_entries == 0);
  TURBOBP_CHECK(std::is_sorted(
      sorted.begin(), sorted.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  if (sorted.empty()) return;

  const uint32_t per_node = std::max<uint32_t>(
      2, static_cast<uint32_t>(MaxEntries() * fill_factor));

  // Build one level from the (key, page) routers of the previous level.
  // Level 0 consumes the data entries and threads the leaf chain.
  std::vector<std::pair<uint64_t, uint64_t>> level = sorted;
  bool leaves = true;
  PageId first_node = kInvalidPageId;
  while (true) {
    std::vector<std::pair<uint64_t, uint64_t>> routers;
    PageId prev = kInvalidPageId;
    size_t i = 0;
    while (i < level.size()) {
      const size_t take = std::min<size_t>(per_node, level.size() - i);
      PageId pid;
      if (leaves && i == 0 && info().height == 1 && routers.empty()) {
        pid = info().root;  // reuse the empty root leaf
      } else {
        pid = db_->AllocatePages(1);
      }
      PageGuard guard =
          db_->pool().Contains(pid)
              ? db_->pool().FetchPage(pid, AccessKind::kRandom, ctx)
              : db_->pool().NewPage(
                    pid, leaves ? PageType::kBTreeLeaf : PageType::kBTreeInner,
                    ctx);
      guard.view().header().type =
          leaves ? PageType::kBTreeLeaf : PageType::kBTreeInner;
      Node node(guard.view());
      node.set_next(kInvalidPageId);
      node.set_count(0);
      for (size_t j = 0; j < take; ++j) {
        node.set_entry(static_cast<int>(j), level[i + j].first,
                       level[i + j].second);
      }
      node.set_count(static_cast<uint16_t>(take));
      if (leaves && prev != kInvalidPageId) {
        PageGuard pguard = db_->pool().FetchPage(prev, AccessKind::kRandom, ctx);
        Node pnode(pguard.view());
        pnode.set_next(pid);
        pguard.MarkDirtyUnlogged();
      }
      guard.MarkDirtyUnlogged();
      routers.emplace_back(level[i].first, pid);
      prev = pid;
      if (first_node == kInvalidPageId) first_node = pid;
      i += take;
    }
    if (routers.size() == 1) {
      BTreeInfo& inf = mutable_info();
      inf.root = static_cast<PageId>(routers[0].second);
      inf.num_entries = sorted.size();
      return;
    }
    // Entry 0 of every inner node routes -inf.
    routers[0].first = 0;
    level = std::move(routers);
    if (leaves) {
      leaves = false;
    }
    ++mutable_info().height;
  }
}

uint64_t BPlusTree::CheckInvariants(IoContext& ctx) {
  // Walk the leaf chain from the leftmost leaf and verify global key order.
  PageId pid = info().root;
  uint64_t depth = 1;
  while (true) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    if (node.is_leaf()) break;
    TURBOBP_CHECK(node.count() >= 1);
    pid = node.value_at(0);
    ++depth;
  }
  TURBOBP_CHECK(depth == info().height);
  uint64_t count = 0;
  uint64_t prev_key = 0;
  bool first = true;
  while (pid != kInvalidPageId) {
    PageGuard guard = db_->pool().FetchPage(pid, AccessKind::kRandom, ctx);
    Node node(guard.view());
    TURBOBP_CHECK(node.is_leaf());
    for (int i = 0; i < node.count(); ++i) {
      const uint64_t k = node.key_at(i);
      TURBOBP_CHECK(first || k >= prev_key);
      prev_key = k;
      first = false;
      ++count;
    }
    pid = node.next();
  }
  TURBOBP_CHECK(count == info().num_entries);
  return count;
}

}  // namespace turbobp
