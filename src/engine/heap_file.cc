#include "engine/heap_file.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

HeapFile HeapFile::Create(Database* db, const std::string& name,
                          uint32_t row_bytes, uint64_t capacity_rows) {
  TURBOBP_CHECK(db != nullptr);
  TURBOBP_CHECK(row_bytes > 0);
  TURBOBP_CHECK(!db->catalog().tables.contains(name));
  const uint32_t payload = db->page_bytes() - kPageHeaderSize;
  TURBOBP_CHECK(row_bytes <= payload);
  TableInfo info;
  info.name = name;
  info.row_bytes = row_bytes;
  info.rows_per_page = payload / row_bytes;
  info.num_pages = std::max<uint64_t>(
      1, (capacity_rows + info.rows_per_page - 1) / info.rows_per_page);
  info.first_page = db->AllocatePages(info.num_pages);
  db->catalog().tables[name] = info;
  return HeapFile(db, name);
}

HeapFile HeapFile::Attach(Database* db, const std::string& name) {
  TURBOBP_CHECK(db != nullptr);
  TURBOBP_CHECK(db->catalog().tables.contains(name));
  return HeapFile(db, name);
}

Rid HeapFile::RidOfRow(uint64_t row_index) const {
  const TableInfo& t = info();
  TURBOBP_DCHECK(row_index < t.num_pages * t.rows_per_page);
  return Rid{t.first_page + row_index / t.rows_per_page,
             static_cast<uint16_t>(row_index % t.rows_per_page)};
}

Rid HeapFile::Append(std::span<const uint8_t> row, uint64_t txn_id,
                     IoContext& ctx) {
  TableInfo& t = mutable_info();
  TURBOBP_CHECK(row.size() == t.row_bytes);
  TURBOBP_CHECK(t.row_count < t.num_pages * t.rows_per_page);
  const Rid rid = RidOfRow(t.row_count);
  PageGuard guard = db_->pool().FetchPage(rid.page_id, AccessKind::kRandom, ctx);
  PageView v = guard.view();
  const uint32_t offset =
      kPageHeaderSize + static_cast<uint32_t>(rid.slot) * t.row_bytes;
  std::memcpy(v.data() + offset, row.data(), t.row_bytes);
  v.header().slot_count = static_cast<uint16_t>(rid.slot + 1);
  if (ctx.charge) {
    guard.LogUpdate(txn_id, offset, t.row_bytes);
  } else {
    guard.MarkDirtyUnlogged();
  }
  // The row and slot count are logged (not yet durable) and live only in
  // the buffer pool; the catalog's row_count is about to advance.
  TURBOBP_CRASH_POINT("heap/append");
  ++t.row_count;
  return rid;
}

void HeapFile::Read(Rid rid, std::span<uint8_t> out, AccessKind kind,
                    IoContext& ctx) {
  const TableInfo& t = info();
  TURBOBP_CHECK(out.size() >= t.row_bytes);
  PageGuard guard = db_->pool().FetchPage(rid.page_id, kind, ctx);
  const uint32_t offset =
      kPageHeaderSize + static_cast<uint32_t>(rid.slot) * t.row_bytes;
  std::memcpy(out.data(), guard.view().data() + offset, t.row_bytes);
}

void HeapFile::Update(Rid rid, std::span<const uint8_t> row, uint64_t txn_id,
                      IoContext& ctx) {
  const TableInfo& t = info();
  TURBOBP_CHECK(row.size() == t.row_bytes);
  PageGuard guard = db_->pool().FetchPage(rid.page_id, AccessKind::kRandom, ctx);
  const uint32_t offset =
      kPageHeaderSize + static_cast<uint32_t>(rid.slot) * t.row_bytes;
  std::memcpy(guard.view().data() + offset, row.data(), t.row_bytes);
  if (ctx.charge) {
    guard.LogUpdate(txn_id, offset, t.row_bytes);
  } else {
    guard.MarkDirtyUnlogged();
  }
  // In-place row update logged; the page write happens at eviction or
  // checkpoint time under the WAL rule.
  TURBOBP_CRASH_POINT("heap/update");
}

void HeapFile::ScanAll(
    IoContext& ctx,
    const std::function<void(Rid, std::span<const uint8_t>)>& fn) {
  ScanRange(0, info().num_pages, ctx, fn);
}

void HeapFile::ScanRange(
    uint64_t from_page_index, uint64_t page_count, IoContext& ctx,
    const std::function<void(Rid, std::span<const uint8_t>)>& fn) {
  const TableInfo t = info();
  const uint64_t end_index = std::min(from_page_index + page_count, t.num_pages);
  ReadAheadTracker tracker;
  BufferPool& pool = db_->pool();
  uint64_t i = from_page_index;
  while (i < end_index) {
    const PageId pid = t.first_page + i;
    const bool ra_active = tracker.OnRequest(pid);
    uint32_t batch = 1;
    if (ra_active) {
      // Read-ahead took over: stage a window of pages with one (trimmed)
      // multi-page request, then consume them as buffer hits.
      batch = static_cast<uint32_t>(
          std::min<uint64_t>(tracker.window_pages(), end_index - i));
      pool.PrefetchRange(pid, batch, ctx);
    }
    for (uint32_t j = 0; j < batch; ++j) {
      const PageId p = pid + j;
      // Keep the tracker fed with every page consumed so the sequential
      // run survives across batches.
      if (j > 0) tracker.OnRequest(p);
      PageGuard guard = pool.FetchPage(
          p, ra_active ? AccessKind::kSequential : AccessKind::kRandom, ctx);
      if (fn) {
        const PageView v = guard.view();
        const uint16_t rows = v.header().slot_count;
        for (uint16_t s = 0; s < rows; ++s) {
          fn(Rid{p, s},
             std::span<const uint8_t>(
                 v.data() + kPageHeaderSize +
                     static_cast<uint32_t>(s) * t.row_bytes,
                 t.row_bytes));
        }
      }
    }
    i += batch;
  }
}

}  // namespace turbobp
