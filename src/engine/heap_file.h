#ifndef TURBOBP_ENGINE_HEAP_FILE_H_
#define TURBOBP_ENGINE_HEAP_FILE_H_

#include <functional>
#include <span>
#include <string>

#include "engine/database.h"
#include "storage/read_ahead.h"

namespace turbobp {

// Fixed-length-record heap file over a contiguous page extent.
//
// Rows live in slotted pages at computable positions, so tables with static
// cardinality (warehouse, district, customer, stock, item, ...) support
// direct RID addressing — the I/O pattern of a clustered-index lookup whose
// inner nodes are cached. Growing tables (orders, order lines) append.
// Sequential scans drive the read-ahead mechanism: the first few pages are
// fetched individually (arriving marked kRandom — the warm-up that keeps
// read-ahead classification below 100%), after which multi-page read-ahead
// batches marked kSequential take over.
class HeapFile {
 public:
  HeapFile() = default;

  // Creates a new table sized for `capacity_rows` and registers it.
  static HeapFile Create(Database* db, const std::string& name,
                         uint32_t row_bytes, uint64_t capacity_rows);

  // Attaches to an existing table by name.
  static HeapFile Attach(Database* db, const std::string& name);

  const TableInfo& info() const { return db_->catalog().tables.at(name_); }
  uint64_t row_count() const { return info().row_count; }
  uint64_t capacity_rows() const {
    return info().num_pages * info().rows_per_page;
  }
  PageId first_page() const { return info().first_page; }
  uint64_t num_pages() const { return info().num_pages; }

  // Direct RID of the i-th row (valid for i < capacity; rows are laid out
  // densely in append order).
  Rid RidOfRow(uint64_t row_index) const;

  // Appends a row; in charging mode the update is WAL-logged under txn_id.
  Rid Append(std::span<const uint8_t> row, uint64_t txn_id, IoContext& ctx);

  // Reads the row at `rid` into `out` (row_bytes bytes).
  void Read(Rid rid, std::span<uint8_t> out, AccessKind kind, IoContext& ctx);

  // Overwrites the row at `rid`; WAL-logged in charging mode.
  void Update(Rid rid, std::span<const uint8_t> row, uint64_t txn_id,
              IoContext& ctx);

  // Full sequential scan through the read-ahead mechanism. `fn` may be
  // empty when only the I/O pattern matters (DSS page-touch queries).
  void ScanAll(IoContext& ctx,
               const std::function<void(Rid, std::span<const uint8_t>)>& fn);

  // Scans pages [first_row_page, last] of the extent only.
  void ScanRange(uint64_t from_page_index, uint64_t page_count, IoContext& ctx,
                 const std::function<void(Rid, std::span<const uint8_t>)>& fn);

 private:
  HeapFile(Database* db, std::string name) : db_(db), name_(std::move(name)) {}

  TableInfo& mutable_info() { return db_->catalog().tables.at(name_); }

  Database* db_ = nullptr;
  std::string name_;
};

}  // namespace turbobp

#endif  // TURBOBP_ENGINE_HEAP_FILE_H_
