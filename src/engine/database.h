#ifndef TURBOBP_ENGINE_DATABASE_H_
#define TURBOBP_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/clean_write.h"
#include "core/dual_write.h"
#include "core/lazy_cleaning.h"
#include "core/ssd_manager.h"
#include "core/tac.h"
#include "fault/fault_injecting_device.h"
#include "fault/fault_plan.h"
#include "io/async_io_engine.h"
#include "sim/sim_executor.h"
#include "storage/disk_manager.h"
#include "storage/sim_device.h"
#include "storage/striped_array.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"

namespace turbobp {

// ---------------------------------------------------------------- Catalog

struct TableInfo {
  std::string name;
  PageId first_page = kInvalidPageId;
  uint64_t num_pages = 0;      // preallocated contiguous extent
  uint32_t row_bytes = 0;
  uint64_t rows_per_page = 0;
  uint64_t row_count = 0;      // rows appended so far
};

struct BTreeInfo {
  std::string name;
  PageId root = kInvalidPageId;
  uint64_t height = 0;
  uint64_t num_entries = 0;
};

// All metadata that a real DBMS would keep in system pages. Kept as a plain
// value type so benchmark fixtures can snapshot it alongside the device
// contents and re-attach it for each design run.
struct Catalog {
  uint64_t next_free_page = 1;  // page 0 reserved
  std::map<std::string, TableInfo> tables;
  std::map<std::string, BTreeInfo> btrees;
};

// ----------------------------------------------------------------- System

// Everything below the catalog: devices, log, buffer pool, SSD manager of
// the requested design, checkpointing and recovery — wired the way the
// paper's Figure 1 shows. This is the type examples and benches construct.
struct SystemConfig {
  uint32_t page_bytes = 8192;
  uint64_t db_pages = 1 << 16;     // data volume size (pages)
  uint64_t bp_frames = 1 << 12;    // main-memory buffer pool
  int64_t ssd_frames = 1 << 14;    // SSD buffer pool (S); ignored for noSSD
  SsdDesign design = SsdDesign::kNoSsd;
  StripedDiskArray::Options disk;  // 8 spindles by default
  SsdParams ssd_params;
  HddParams log_params;            // dedicated log disk
  uint64_t log_device_pages = 1 << 20;
  SsdCacheOptions ssd_options;     // tau/mu/N/alpha/lambda (Table 2)
  BufferPool::Options bp_options;  // page_bytes/num_frames overwritten
  int tac_extent_pages = 32;
  // Persistent SSD cache: the SSD device is enlarged by the metadata
  // journal region and the cache journals its buffer table there, so a
  // restart re-attaches surviving SSD contents (warm restart) instead of
  // reformatting. Recovery must then go through RecoverPersistent().
  bool persistent_ssd_cache = false;
  // Fault injection (src/fault): when enabled, the SSD device is wrapped in
  // a FaultInjectingDevice driven by `ssd_fault_plan`. The disk array and
  // the log device are never wrapped — the paper's safety argument (and
  // this subsystem) is about surviving the *SSD*, the non-redundant
  // commodity part of the stack.
  bool inject_ssd_faults = false;
  FaultPlan ssd_fault_plan = FaultPlan::Healthy();
  // Leader-based WAL group commit (DESIGN.md §14). Off reinstates the
  // pre-group-commit behavior — one log-device write per flush request,
  // issued while holding the WAL latch — kept only as the A/B baseline for
  // bench_scaleout_threads.
  bool wal_group_commit = true;
  // Queue depth of the async I/O engine over the disk array (DESIGN.md §12):
  // read-ahead, checkpoint drain, LC group cleaning and recovery prefetch
  // submit through it. 0 disables the engine entirely — every consumer falls
  // back to its serial call-and-wait path.
  int io_queue_depth = 32;
};

class DbSystem {
 public:
  explicit DbSystem(const SystemConfig& config);
  DbSystem(const DbSystem&) = delete;
  DbSystem& operator=(const DbSystem&) = delete;

  const SystemConfig& config() const { return config_; }
  SimExecutor& executor() { return executor_; }
  StripedDiskArray& disk_array() { return *disk_array_; }
  SimDevice* ssd_device() { return ssd_device_.get(); }  // null for noSSD
  SimDevice* log_device() { return log_device_.get(); }
  // Non-null iff config.inject_ssd_faults and the design uses an SSD.
  FaultInjectingDevice* ssd_fault() { return ssd_fault_device_.get(); }
  DiskManager& disk_manager() { return disk_manager_; }
  // Null when config.io_queue_depth == 0.
  AsyncIoEngine* disk_io_engine() { return disk_io_engine_.get(); }
  LogManager& log() { return log_; }
  SsdManager& ssd_manager() { return *ssd_manager_; }
  BufferPool& buffer_pool() { return *buffer_pool_; }
  CheckpointManager& checkpoint() { return *checkpoint_; }

  // Makes an IoContext bound to this system's executor at the current
  // virtual time.
  IoContext MakeContext(bool charge = true) {
    IoContext ctx;
    ctx.now = executor_.now();
    ctx.executor = &executor_;
    ctx.charge = charge;
    return ctx;
  }

  // Crash simulation: drops the buffer pool (losing un-flushed dirty pages)
  // and truncates the log to its durable prefix. Device contents survive.
  void Crash();

  // Redo-only restart recovery; returns its stats.
  RecoveryStats Recover(IoContext& ctx);

  // Restart recovery with the Section-6 extension: redo covers the oldest
  // dirty SSD page of the last SSD-table checkpoint, then snapshot entries
  // that are provably still the newest version of their page are
  // re-attached to the (fresh) SSD manager — a warm cache at restart
  // instead of hours of ramp-up. Returns (recovery stats, frames restored).
  std::pair<RecoveryStats, size_t> RecoverWithSsdTable(IoContext& ctx);

  // Restart recovery for the persistent SSD cache (persistent_ssd_cache):
  // prunes the torn log tail, recovers the SSD metadata journal, reconciles
  // every recovered mapping against the WAL durable horizon (frames whose
  // LSN exceeds it are never re-attached), re-attaches the survivors and
  // runs redo with restored dirty frames covered. Falls back to plain
  // Recover() semantics when the cache has no journal.
  std::pair<RecoveryStats, PersistentRestoreStats> RecoverPersistent(
      IoContext& ctx);

 private:
  SystemConfig config_;
  SimExecutor executor_;
  std::unique_ptr<StripedDiskArray> disk_array_;
  std::unique_ptr<SimDevice> ssd_device_;
  std::unique_ptr<FaultInjectingDevice> ssd_fault_device_;
  std::unique_ptr<SimDevice> log_device_;
  DiskManager disk_manager_;
  std::unique_ptr<AsyncIoEngine> disk_io_engine_;
  LogManager log_;
  std::unique_ptr<SsdManager> ssd_manager_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<CheckpointManager> checkpoint_;
};

// --------------------------------------------------------------- Database

// Catalog operations and page allocation over a DbSystem. Installs a
// device synthesizer that materializes never-written pages as
// properly-formatted empty pages, so table extents do not need to be
// physically initialized at creation time.
class Database {
 public:
  explicit Database(DbSystem* system);

  DbSystem& system() { return *system_; }
  BufferPool& pool() { return system_->buffer_pool(); }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  uint32_t page_bytes() const { return system_->config().page_bytes; }

  // Allocates `n` contiguous pages; returns the first id.
  PageId AllocatePages(uint64_t n);

  // Benchmark fixtures snapshot the catalog after population and re-attach
  // it to a fresh DbSystem over restored device contents.
  void RestoreCatalog(const Catalog& catalog) { catalog_ = catalog; }

 private:
  void InstallSynthesizer();

  DbSystem* system_;
  Catalog catalog_;
};

}  // namespace turbobp

#endif  // TURBOBP_ENGINE_DATABASE_H_
