#include "engine/database.h"

#include <utility>

#include "common/status.h"
#include "storage/page.h"

namespace turbobp {

namespace {

std::unique_ptr<SsdManager> BuildSsdManager(const SystemConfig& config,
                                            StorageDevice* ssd_device,
                                            DiskManager* disk,
                                            SimExecutor* executor,
                                            AsyncIoEngine* disk_engine) {
  if (config.design == SsdDesign::kNoSsd || ssd_device == nullptr) {
    return std::make_unique<NoSsdManager>();
  }
  SsdCacheOptions opts = config.ssd_options;
  opts.num_frames = config.ssd_frames;
  opts.persistent_cache = config.persistent_ssd_cache;
  opts.disk_io_engine = disk_engine;
  switch (config.design) {
    case SsdDesign::kCleanWrite:
      return std::make_unique<CleanWriteCache>(ssd_device, disk, opts,
                                               executor);
    case SsdDesign::kDualWrite:
      return std::make_unique<DualWriteCache>(ssd_device, disk, opts,
                                              executor);
    case SsdDesign::kLazyCleaning:
      return std::make_unique<LazyCleaningCache>(ssd_device, disk, opts,
                                                 executor);
    case SsdDesign::kTac:
      return std::make_unique<TacCache>(ssd_device, disk, opts, executor,
                                        config.db_pages,
                                        config.tac_extent_pages);
    default:
      return std::make_unique<NoSsdManager>();
  }
}

}  // namespace

DbSystem::DbSystem(const SystemConfig& config)
    : config_([&config] {
        SystemConfig c = config;
        c.disk.hdd.page_bytes = c.page_bytes;
        c.log_params.page_bytes = c.page_bytes;
        c.ssd_params.page_bytes = c.page_bytes;
        c.bp_options.page_bytes = c.page_bytes;
        c.bp_options.num_frames = c.bp_frames;
        return c;
      }()),
      disk_array_(std::make_unique<StripedDiskArray>(
          config_.db_pages, config_.page_bytes, config_.disk)),
      ssd_device_(config_.design == SsdDesign::kNoSsd
                      ? nullptr
                      : std::make_unique<SimDevice>(
                            static_cast<uint64_t>(config_.ssd_frames) +
                                (config_.persistent_ssd_cache
                                     ? SsdMetadataJournal::RegionPagesFor(
                                           config_.ssd_frames,
                                           config_.page_bytes)
                                     : 0),
                            config_.page_bytes,
                            std::make_unique<SsdModel>(config_.ssd_params))),
      ssd_fault_device_(config_.inject_ssd_faults && ssd_device_ != nullptr
                            ? std::make_unique<FaultInjectingDevice>(
                                  ssd_device_.get(), config_.ssd_fault_plan)
                            : nullptr),
      log_device_(std::make_unique<SimDevice>(
          config_.log_device_pages, config_.page_bytes,
          std::make_unique<HddModel>(config_.log_params))),
      disk_manager_(disk_array_.get()),
      disk_io_engine_(config_.io_queue_depth > 0
                          ? std::make_unique<AsyncIoEngine>(
                                disk_array_.get(),
                                AsyncIoEngine::Options{
                                    .queue_depth = config_.io_queue_depth})
                          : nullptr),
      log_(log_device_.get()),
      ssd_manager_(BuildSsdManager(config_,
                                   ssd_fault_device_ != nullptr
                                       ? static_cast<StorageDevice*>(
                                             ssd_fault_device_.get())
                                       : ssd_device_.get(),
                                   &disk_manager_, &executor_,
                                   disk_io_engine_.get())),
      buffer_pool_(std::make_unique<BufferPool>(
          config_.bp_options, &disk_manager_, &log_, ssd_manager_.get(),
          disk_io_engine_.get())),
      checkpoint_(std::make_unique<CheckpointManager>(
          buffer_pool_.get(), ssd_manager_.get(), &log_, &executor_)) {
  log_.set_group_commit(config_.wal_group_commit);
  if (config_.persistent_ssd_cache) {
    // RecoverPersistent scans the full durable log to judge restored SSD
    // frames; checkpoint-driven WAL prefix truncation would hide updates
    // older than the last checkpoint from that scan.
    checkpoint_->set_wal_truncation(false);
  }
}

void DbSystem::Crash() {
  // The engine's submission queue is volatile: queued-but-unissued requests
  // die with the power, exactly like the pool's dirty frames.
  if (disk_io_engine_ != nullptr) disk_io_engine_->Reset();
  buffer_pool_->Reset();
  log_.DropUnflushed();
  // A restart reformats the SSD buffer pool: no design to date reuses its
  // contents across restarts (paper, Section 6). The fault wrapper (and its
  // op clock / offline state) survives the restart: a dying SSD stays dying.
  ssd_manager_ = BuildSsdManager(config_,
                                 ssd_fault_device_ != nullptr
                                     ? static_cast<StorageDevice*>(
                                           ssd_fault_device_.get())
                                     : ssd_device_.get(),
                                 &disk_manager_, &executor_,
                                 disk_io_engine_.get());
  buffer_pool_->set_ssd_manager(ssd_manager_.get());
  checkpoint_->set_ssd_manager(ssd_manager_.get());
}

RecoveryStats DbSystem::Recover(IoContext& ctx) {
  RecoveryManager recovery(&disk_manager_, &log_, disk_io_engine_.get());
  return recovery.Recover(ctx);
}

std::pair<RecoveryStats, size_t> DbSystem::RecoverWithSsdTable(IoContext& ctx) {
  RecoveryManager recovery(&disk_manager_, &log_, disk_io_engine_.get());
  const SsdTableSnapshot* snapshot = checkpoint_->latest_snapshot();
  if (snapshot == nullptr) {
    return {recovery.Recover(ctx), 0};
  }
  // Phase 1 — restore the SSD first. Filter snapshot entries against the
  // durable log (an in-memory scan, no I/O): an entry survives only if no
  // durable update postdates its snapshot-time page LSN, i.e. it is still
  // the newest version of its page.
  std::unordered_map<PageId, Lsn> max_update_lsn;
  for (const LogRecord& rec : log_.records_for_recovery()) {
    if (!log_.IsDurable(rec.lsn)) break;
    if (rec.type != LogRecordType::kUpdate) continue;
    Lsn& maxl = max_update_lsn[rec.page_id];
    maxl = std::max(maxl, rec.lsn);
  }
  std::unordered_map<PageId, Lsn> covered;
  const size_t restored = ssd_manager_->RestoreFromCheckpoint(
      snapshot->entries, ctx, &max_update_lsn, &covered);
  // Phase 2 — redo. Records covered by a restored SSD copy are skipped (the
  // SSD already holds them; the cleaner will move them to disk), so the
  // extended redo horizon (back to the oldest dirty SSD page) costs a log
  // scan, not disk I/O.
  const RecoveryStats stats =
      recovery.Recover(ctx, snapshot->min_dirty_lsn, nullptr, &covered);
  return {stats, restored};
}

std::pair<RecoveryStats, PersistentRestoreStats> DbSystem::RecoverPersistent(
    IoContext& ctx) {
  PersistentRestoreStats pstats;
  // Prune the torn log tail FIRST: the durable horizon used to judge SSD
  // frames must already exclude records that did not survive the crash
  // (otherwise a frame could be admitted against an LSN that is about to be
  // truncated away). Recover() repeats the call idempotently.
  const size_t truncated = log_.TruncateTornTail();
  const Lsn horizon = log_.durable_lsn();
  // Per-page highest durable update LSN: proves whether a recovered frame
  // is still the newest version of its page (in-memory log scan, no I/O).
  std::unordered_map<PageId, Lsn> max_update_lsn;
  for (const LogRecord& rec : log_.records_for_recovery()) {
    if (!log_.IsDurable(rec.lsn)) break;
    if (rec.type != LogRecordType::kUpdate) continue;
    Lsn& maxl = max_update_lsn[rec.page_id];
    maxl = std::max(maxl, rec.lsn);
  }
  std::unordered_map<PageId, Lsn> covered;
  ssd_manager_->RecoverPersistentState(horizon, ctx, &max_update_lsn, &covered,
                                       &pstats);
  RecoveryManager recovery(&disk_manager_, &log_, disk_io_engine_.get());
  RecoveryStats stats =
      recovery.Recover(ctx, pstats.min_dirty_lsn, nullptr, &covered);
  stats.records_truncated += static_cast<int64_t>(truncated);
  return {stats, pstats};
}

Database::Database(DbSystem* system) : system_(system) {
  TURBOBP_CHECK(system != nullptr);
  InstallSynthesizer();
}

PageId Database::AllocatePages(uint64_t n) {
  TURBOBP_CHECK(n > 0);
  TURBOBP_CHECK(catalog_.next_free_page + n <=
                system_->config().db_pages);
  const PageId first = catalog_.next_free_page;
  catalog_.next_free_page += n;
  return first;
}

void Database::InstallSynthesizer() {
  const uint32_t page_bytes = system_->config().page_bytes;
  // Never-written pages materialize as properly formatted empty pages: heap
  // pages inside a table extent, raw free pages elsewhere. Checksums are
  // sealed so the buffer pool's read verification passes.
  system_->disk_array().SetSynthesizer(
      [this, page_bytes](uint64_t page, std::span<uint8_t> out) {
        PageView v(out.data(), page_bytes);
        PageType type = PageType::kFree;
        for (const auto& [name, t] : catalog_.tables) {
          if (page >= t.first_page && page < t.first_page + t.num_pages) {
            type = PageType::kHeap;
            break;
          }
        }
        v.Format(static_cast<PageId>(page), type);
        v.SealChecksum();
      });
}

}  // namespace turbobp
