#ifndef TURBOBP_ENGINE_BPLUS_TREE_H_
#define TURBOBP_ENGINE_BPLUS_TREE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"

namespace turbobp {

// Disk-resident B+-tree with 8-byte keys and values, persisted in buffer
// pool pages.
//
// Index lookups are the workloads' dominant source of *random* I/O (the
// access class the SSD admission policy caches), and page splits create
// dirty pages "on the fly" that were never read from disk — the case TAC
// cannot cache (Section 4.2).
//
// Node layout (identical for leaves and inner nodes): the first 8 payload
// bytes hold the next-leaf pointer (leaves) or are reserved (inner); then
// header.slot_count entries of (key, value) pairs sorted by key. In inner
// nodes the value is a child page id and each key is the smallest key in
// that child's subtree ("low-key router"); entry 0's key is logically -inf.
// Deletes are lazy (no rebalancing), as is common in production engines.
class BPlusTree {
 public:
  BPlusTree() = default;

  // Creates an empty tree and registers it in the catalog.
  static BPlusTree Create(Database* db, const std::string& name,
                          IoContext& ctx);
  static BPlusTree Attach(Database* db, const std::string& name);

  const BTreeInfo& info() const { return db_->catalog().btrees.at(name_); }
  uint64_t num_entries() const { return info().num_entries; }
  uint64_t height() const { return info().height; }

  // Point lookup; returns false if absent.
  bool Search(uint64_t key, uint64_t* value, IoContext& ctx);

  // Inserts (duplicate keys allowed; they cluster together).
  void Insert(uint64_t key, uint64_t value, uint64_t txn_id, IoContext& ctx);

  // Removes one entry with exactly this key (lazy delete). Returns false if
  // not found.
  bool Delete(uint64_t key, uint64_t txn_id, IoContext& ctx);

  // Visits entries with lo <= key <= hi in key order; stop early by
  // returning false from fn.
  void ScanRange(uint64_t lo, uint64_t hi,
                 const std::function<bool(uint64_t key, uint64_t value)>& fn,
                 IoContext& ctx);

  // Bottom-up bulk load from entries sorted by key (strictly required).
  // Used by the population loaders; runs unlogged.
  void BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted,
                IoContext& ctx, double fill_factor = 0.9);

  // Structural invariant check (tests): key order within and across nodes,
  // child routers consistent, leaf chain complete. Returns entry count.
  uint64_t CheckInvariants(IoContext& ctx);

 private:
  BPlusTree(Database* db, std::string name) : db_(db), name_(std::move(name)) {}

  BTreeInfo& mutable_info() { return db_->catalog().btrees.at(name_); }

  uint32_t MaxEntries() const {
    return (db_->page_bytes() - kPageHeaderSize - 8) / 16;
  }

  // Descends to the leaf that should contain `key`; fills `path` with
  // (page, child-entry-index) per inner level if non-null.
  PageId DescendToLeaf(uint64_t key,
                       std::vector<std::pair<PageId, int>>* path,
                       IoContext& ctx);

  // Leftmost leaf that may contain `key` (duplicates can span leaves, so
  // lookups, deletes and range scans start here and follow the chain).
  PageId DescendToLeafLeftmost(uint64_t key, IoContext& ctx);

  // Splits the node in `guard` (already full), returning the new right
  // sibling's id and its low key.
  std::pair<PageId, uint64_t> SplitNode(PageGuard& guard, uint64_t txn_id,
                                        IoContext& ctx);

  void InsertIntoParent(std::vector<std::pair<PageId, int>>& path,
                        PageId left, uint64_t split_key, PageId right,
                        uint64_t txn_id, IoContext& ctx);

  Database* db_ = nullptr;
  std::string name_;
};

}  // namespace turbobp

#endif  // TURBOBP_ENGINE_BPLUS_TREE_H_
