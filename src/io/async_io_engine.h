#ifndef TURBOBP_IO_ASYNC_IO_ENGINE_H_
#define TURBOBP_IO_ASYNC_IO_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <thread>
#include <vector>

#include "common/types.h"
#include "debug/latch_order_checker.h"
#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

// Ticket for one submitted request; 0 is never issued (TrySubmit returns it
// to signal backpressure).
using IoToken = uint64_t;

// One harvested completion. `result.time` is the virtual-time instant the
// request finished on the device; `result.status` carries any per-request
// fault that survived the engine's bounded retry.
struct IoCompletion {
  IoToken token = 0;
  uint64_t tag = 0;          // caller-chosen correlation value
  IoOp op = IoOp::kRead;
  PageId first_page = 0;
  uint32_t num_pages = 0;
  IoResult result;
};

// Invoked while the completion is harvested, with NO engine latch held (and,
// per the submission contract, no pool latch on the stack): the callback may
// re-enter the buffer pool's frame state machine, take shard latches, or
// touch SSD partitions.
using IoCompletionFn = std::function<void(const IoCompletion&)>;

// One request on the submission queue. Exactly one of `out` / `data` is
// meaningful, by op. The spans must stay valid until this request's
// completion has been reaped: a deep queue defers the device transfer past
// Submit (writes gather from `data` at issue time, coalesced reads scatter
// into `out`).
struct AsyncIoRequest {
  IoOp op = IoOp::kRead;
  PageId first_page = 0;
  uint32_t num_pages = 1;
  std::span<uint8_t> out{};         // kRead destination
  std::span<const uint8_t> data{};  // kWrite source
  uint64_t tag = 0;
  IoCompletionFn on_complete;       // optional
  // Hung-request detection: a per-request completion budget measured from
  // the instant the request is issued to the device (virtual time in the
  // sim backend, wall-clock microseconds in the threaded backend; 0 = no
  // deadline). A request whose device call finishes past its deadline is
  // delivered as kTimedOut at the deadline instant — it is never retried
  // (the operation was abandoned, not failed; the device may still have
  // performed it), so a stuck device can never stall a consumer that
  // reaps. Deadline'd requests are never coalesced: the budget applies to
  // exactly one device op.
  Time deadline = 0;
  // Background lane (scrub patrol, repairs): popped only when the normal
  // submission queue is empty, so maintenance I/O never starves foreground
  // work. Each lane has its own queue_depth worth of staging room.
  bool low_priority = false;
};

// io_uring-shaped asynchronous I/O engine over one StorageDevice: a
// submission queue, a bounded set of device-issued requests ("the ring", at
// most `queue_depth` in flight), and a completion queue harvested by
// Reap/Drain. See DESIGN.md §12.
//
// Two backends share the queues:
//
//  * Sim (default). Deterministic virtual time: an issued request calls the
//    device synchronously (data movement is immediate per the StorageDevice
//    contract) and records the device-model completion instant. Queue depth
//    is modelled temporally — when the ring is full the next request is
//    issued at the earliest in-flight completion, so depth 1 degenerates to
//    today's call-and-wait serial loop while depth 32 keeps all spindles of
//    a striped array busy.
//  * Threaded (options.threaded). A small worker pool pops batches and
//    performs the blocking device call off-latch; Reap blocks until a
//    completion is available. This is the backend for FileDevice-class real
//    devices. (io_uring proper is an optional third backend behind the
//    TURBOBP_IO_URING CMake flag; the container default is OFF and falls
//    back to this thread pool.)
//
// Coalescing: contiguous same-op runs on the submission queue are merged
// into one vectored device request (the paper's multi-page trimming applied
// at the engine level), bounded by `max_coalesced_pages`. A coalesced batch
// that fails is split and re-issued per request, so one flaky page never
// re-writes its already-durable neighbours (the per-request bounded-retry
// contract the checkpoint drain relies on).
//
// Latch discipline (LATCH ORDER SPEC, class kIoEngine, device-io forbidden):
// the engine mutex guards only queue state. It is dropped before every
// device call and before every completion callback. Submit/Reap/Drain must
// not be called while holding a buffer-pool shard/frame latch or an SSD
// partition latch — enforced by the TSA EXCLUDES contracts below and the
// async-io rule of tools/analysis/static_check.py.
//
// Crash semantics: a write acknowledged by Submit but not yet issued has
// performed no device transfer, so a crash at that instant loses it — the
// WAL rule (log durable through the page LSN before Submit) is what makes
// that loss recoverable. TURBOBP_CRASH_POINT("io/queued-write") marks the
// staged-not-issued window and "io/submitted-write" the issued-not-reaped
// window; the restart matrix sweeps both.
class AsyncIoEngine {
 public:
  struct Options {
    int queue_depth = 32;           // device-issued requests in flight
    bool coalesce = true;           // merge contiguous same-op runs
    uint32_t max_coalesced_pages = 8;  // one striped-array stripe unit
    // Per-request transient-error policy (kIoError only; kUnavailable is a
    // dead device and never retried).
    int retry_limit = 3;
    Time retry_backoff = Millis(1);
    bool threaded = false;          // worker-pool backend for real devices
  };

  // Snapshot of the engine counters (taken under the engine mutex).
  struct Stats {
    int64_t submitted = 0;          // requests accepted
    int64_t completed = 0;          // completions delivered to callers
    int64_t device_ops = 0;         // vectored device requests issued
    int64_t coalesced_batches = 0;  // device ops that merged >1 request
    int64_t coalesced_pages = 0;    // pages carried by those merged ops
    int64_t queue_full_waits = 0;   // submissions that found the ring full
    int64_t retries = 0;            // per-request re-issues after kIoError
    int64_t errors = 0;             // completions delivered with !ok()
    int64_t timeouts = 0;           // completions converted to kTimedOut
  };

  AsyncIoEngine(StorageDevice* device, const Options& options);
  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;
  ~AsyncIoEngine();

  StorageDevice* device() { return device_; }
  int queue_depth() const { return options_.queue_depth; }

  // Enqueues a request; returns its token. Never fails: when the ring is
  // full the request waits on the submission queue (sim: it will be issued
  // at the instant a slot frees, in virtual time; threaded: Submit blocks).
  // NOTE on TURBOBP_NO_THREAD_SAFETY_ANALYSIS here and below: the engine
  // juggles std::unique_lock across the device call and the completion
  // callbacks, which Clang's analysis cannot model; the structural checker
  // (io-under-latch + async-io rules) covers these paths instead.
  IoToken Submit(const AsyncIoRequest& req, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kSsdPartition))
          TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Like Submit, but returns 0 instead of queueing behind a full submission
  // queue (backpressure for advisory work such as read-ahead).
  IoToken TrySubmit(const AsyncIoRequest& req, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kSsdPartition))
          TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Harvests up to `max` completions whose device finish time is <=
  // `deadline` (sim; the threaded backend blocks until at least one
  // completion is available or nothing is outstanding and ignores the
  // virtual-time deadline). Completion callbacks run here, latch-free, in
  // device-completion order.
  std::vector<IoCompletion> Reap(int max, Time deadline, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kSsdPartition))
          TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Reaps everything (including bounded retries); returns the completion
  // instant of the last request, or ctx.now if nothing was outstanding.
  Time Drain(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kSsdPartition))
          TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Requests accepted but not yet reaped (staged + in flight + harvestable).
  int64_t Outstanding() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  bool Idle() const { return Outstanding() == 0; }

  // Crash simulation: drops all queued and in-flight bookkeeping without
  // delivering completions (the sim backend has already moved any issued
  // data; staged requests vanish, exactly like power loss with a volatile
  // submission queue). Only meaningful between operations.
  void Reset() TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  Stats stats() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

 private:
  using EngineMutex = TrackedMutex<LatchClass::kIoEngine>;
  using EngineLock = std::unique_lock<EngineMutex>;

  struct Pending {
    IoToken token = 0;
    AsyncIoRequest req;
    bool charge = true;
    int attempts = 0;        // device issues so far
    Time not_before = 0;     // retry backoff floor for the next issue
    bool no_coalesce = false;  // split retry: must be issued alone
  };

  // One vectored device op: the coalesced run it carries and, once issued,
  // its result.
  struct Batch {
    std::vector<Pending> reqs;
    uint32_t total_pages = 0;
    IoOp op = IoOp::kRead;
    bool charge = true;
    IoResult result;
  };

  // Pops a maximal coalescable run off the submission queues (normal lane
  // first; the low-priority lane is drained only when the normal lane is
  // empty).
  Batch PopBatchLocked() TURBOBP_REQUIRES(mu_);
  bool HasStagedLocked() const TURBOBP_REQUIRES(mu_) {
    return !staged_.empty() || !staged_low_.empty();
  }
  // Converts a late single-request completion to kTimedOut at its deadline.
  // `wall_us` is the device call's measured wall-clock duration (threaded
  // backend; pass -1 for the sim backend, which compares the virtual
  // completion instant against issue time + deadline instead).
  void ApplyDeadlineLocked(Batch& batch, Time at, int64_t wall_us)
      TURBOBP_REQUIRES(mu_);
  // Performs the blocking device call for `batch` arriving at `at`
  // (gathers writes / scatters coalesced reads through a bounce buffer).
  // Called with no engine latch held.
  IoResult IssueBatch(Batch& batch, Time at);
  // Sim backend: issues staged batches while the ring has room, advancing
  // the engine clock to `now`.
  void Kick(Time now) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Moves one harvestable batch out of the ring. Returns false when nothing
  // completes by `deadline`. A transiently-failed batch is re-staged (split
  // if coalesced) instead of being delivered; `*delivered` tells the caller
  // whether `out` gained completions.
  bool HarvestOne(Time deadline, std::vector<IoCompletion>* out,
                  bool* delivered) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Builds the per-request completions for a finished batch and invokes
  // callbacks. Called with no engine latch held.
  void Deliver(Batch batch, std::vector<IoCompletion>* out);
  void WorkerLoop();

  StorageDevice* device_;
  const Options options_;

  mutable EngineMutex mu_;
  std::deque<Pending> staged_ TURBOBP_GUARDED_BY(mu_);
  // Low-priority lane (AsyncIoRequest::low_priority): background scrub and
  // repair traffic, issued only when `staged_` is empty. Retries of either
  // lane re-stage at the front of `staged_` — a request that already made
  // it to the device has earned its slot.
  std::deque<Pending> staged_low_ TURBOBP_GUARDED_BY(mu_);
  // In-flight and harvestable batches keyed by completion instant. The ring
  // bound compares issued_.size() against queue_depth: a batch occupies its
  // slot until harvested, like an unreaped CQE pinning its ring entry.
  std::multimap<Time, Batch> issued_ TURBOBP_GUARDED_BY(mu_);
  Time clock_ TURBOBP_GUARDED_BY(mu_) = 0;  // sim: engine virtual time
  Time last_completion_ TURBOBP_GUARDED_BY(mu_) = 0;
  IoToken next_token_ TURBOBP_GUARDED_BY(mu_) = 1;
  Stats stats_ TURBOBP_GUARDED_BY(mu_);

  // Threaded backend.
  std::condition_variable_any work_cv_;   // staged_ gained work / stopping
  std::condition_variable_any reap_cv_;   // issued_ gained a completion
  std::condition_variable_any space_cv_;  // staged_ shrank below capacity
  int issuing_ TURBOBP_GUARDED_BY(mu_) = 0;  // workers mid device call
  bool stopping_ TURBOBP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace turbobp

#endif  // TURBOBP_IO_ASYNC_IO_ENGINE_H_
