#include "io/async_io_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

namespace {

// Workers only exist to overlap blocking device calls; a handful saturates
// any real queue depth without spawning a thread per ring slot.
int NumWorkers(const AsyncIoEngine::Options& options) {
  return std::max(1, std::min(options.queue_depth, 8));
}

}  // namespace

AsyncIoEngine::AsyncIoEngine(StorageDevice* device, const Options& options)
    : device_(device), options_(options) {
  TURBOBP_CHECK(device_ != nullptr);
  TURBOBP_CHECK(options_.queue_depth >= 1);
  TURBOBP_CHECK(options_.max_coalesced_pages >= 1);
  if (options_.threaded) {
    workers_.reserve(NumWorkers(options_));
    for (int i = 0; i < NumWorkers(options_); ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  if (!workers_.empty()) {
    {
      EngineLock lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

AsyncIoEngine::Batch AsyncIoEngine::PopBatchLocked() {
  // Normal lane first; the low-priority lane only drains when it is empty.
  std::deque<Pending>& q = staged_.empty() ? staged_low_ : staged_;
  Batch batch;
  batch.reqs.push_back(std::move(q.front()));
  q.pop_front();
  const Pending& head = batch.reqs.front();
  batch.op = head.req.op;
  batch.charge = head.charge;
  batch.total_pages = head.req.num_pages;
  // Deadline'd requests are never coalesced: the budget must map onto
  // exactly one device op (a neighbour's pages would inherit its verdict).
  if (!options_.coalesce || head.no_coalesce || head.req.deadline > 0) {
    return batch;
  }
  while (!q.empty()) {
    const Pending& next = q.front();
    const Pending& last = batch.reqs.back();
    if (next.no_coalesce || next.req.deadline > 0 ||
        next.req.op != batch.op || next.charge != batch.charge ||
        next.req.first_page != last.req.first_page + last.req.num_pages ||
        batch.total_pages + next.req.num_pages > options_.max_coalesced_pages) {
      break;
    }
    batch.total_pages += next.req.num_pages;
    batch.reqs.push_back(std::move(q.front()));
    q.pop_front();
  }
  return batch;
}

void AsyncIoEngine::ApplyDeadlineLocked(Batch& batch, Time at,
                                        int64_t wall_us) {
  if (batch.reqs.size() != 1) return;  // deadline'd requests never coalesce
  const Time deadline = batch.reqs.front().req.deadline;
  if (deadline <= 0 || !batch.result.ok()) return;
  const bool late = wall_us >= 0 ? wall_us > deadline
                                 : batch.result.time > at + deadline;
  if (!late) return;
  // Abandoned, not failed: the device may still have performed the op, so
  // a timed-out WRITE's frame is suspect (callers treat it like a torn
  // write) and a timed-out read's buffer must be ignored. kTimedOut is not
  // IsIoError(), so HarvestOne delivers it instead of retrying — that is
  // what bounds a consumer's wait on a stuck device.
  batch.result.status = Status::TimedOut("device request exceeded deadline");
  if (wall_us < 0) batch.result.time = at + deadline;
  ++stats_.timeouts;
}

IoResult AsyncIoEngine::IssueBatch(Batch& batch, Time at) {
  const PageId first = batch.reqs.front().req.first_page;
  IoResult res;
  if (batch.reqs.size() == 1) {
    AsyncIoRequest& req = batch.reqs.front().req;
    if (batch.op == IoOp::kRead) {
      res = device_->Read(first, req.num_pages, req.out, at, batch.charge);
    } else {
      // The device interface takes a mutable span; the write source is
      // logically const and not modified.
      res = device_->Write(
          first, req.num_pages,
          std::span<uint8_t>(const_cast<uint8_t*>(req.data.data()),
                             req.data.size()),
          at, batch.charge);
    }
  } else {
    // Vectored op over a coalesced run: one device request, with a bounce
    // buffer gathering write sources / scattering read destinations to the
    // per-request spans.
    const size_t page_bytes =
        batch.reqs.front().req.op == IoOp::kRead
            ? batch.reqs.front().req.out.size() /
                  batch.reqs.front().req.num_pages
            : batch.reqs.front().req.data.size() /
                  batch.reqs.front().req.num_pages;
    std::vector<uint8_t> bounce(batch.total_pages * page_bytes);
    if (batch.op == IoOp::kWrite) {
      size_t off = 0;
      for (const Pending& p : batch.reqs) {
        std::copy(p.req.data.begin(), p.req.data.end(), bounce.begin() + off);
        off += p.req.data.size();
      }
      res = device_->Write(first, batch.total_pages, bounce, at, batch.charge);
    } else {
      res = device_->Read(first, batch.total_pages, bounce, at, batch.charge);
      size_t off = 0;
      for (Pending& p : batch.reqs) {
        std::copy(bounce.begin() + off, bounce.begin() + off + p.req.out.size(),
                  p.req.out.begin());
        off += p.req.out.size();
      }
    }
  }
  if (batch.op == IoOp::kWrite) {
    // Issued but not yet reaped: the transfer has reached the device, the
    // completion has not reached the consumer.
    TURBOBP_CRASH_POINT("io/submitted-write");
  }
  return res;
}

void AsyncIoEngine::Kick(Time now) {
  EngineLock lock(mu_);
  clock_ = std::max(clock_, now);
  while (HasStagedLocked() &&
         static_cast<int>(issued_.size()) + issuing_ < options_.queue_depth) {
    Batch batch = PopBatchLocked();
    Time at = clock_;
    for (Pending& p : batch.reqs) {
      at = std::max(at, p.not_before);
      ++p.attempts;
    }
    ++stats_.device_ops;
    if (batch.reqs.size() > 1) {
      ++stats_.coalesced_batches;
      stats_.coalesced_pages += batch.total_pages;
    }
    lock.unlock();
    const IoResult res = IssueBatch(batch, at);
    lock.lock();
    batch.result = res;
    ApplyDeadlineLocked(batch, at, /*wall_us=*/-1);
    issued_.emplace(batch.result.time, std::move(batch));
  }
}

void AsyncIoEngine::Deliver(Batch batch, std::vector<IoCompletion>* out) {
  for (Pending& p : batch.reqs) {
    IoCompletion c;
    c.token = p.token;
    c.tag = p.req.tag;
    c.op = p.req.op;
    c.first_page = p.req.first_page;
    c.num_pages = p.req.num_pages;
    c.result = batch.result;
    if (p.req.on_complete) p.req.on_complete(c);
    if (out != nullptr) out->push_back(std::move(c));
  }
}

bool AsyncIoEngine::HarvestOne(Time deadline, std::vector<IoCompletion>* out,
                               bool* delivered) {
  *delivered = false;
  Batch batch;
  {
    EngineLock lock(mu_);
    auto it = issued_.begin();
    if (it == issued_.end() || it->first > deadline) return false;
    batch = std::move(it->second);
    issued_.erase(it);
    clock_ = std::max(clock_, batch.result.time);

    const bool transient = batch.result.status.IsIoError();
    if (transient && batch.reqs.size() > 1) {
      // A coalesced batch failed: split it and re-issue per request so the
      // retry touches only the page that is actually flaky. Re-stage at the
      // queue front to preserve submission order relative to later work.
      for (auto rit = batch.reqs.rbegin(); rit != batch.reqs.rend(); ++rit) {
        rit->no_coalesce = true;
        rit->not_before =
            std::max(rit->not_before, batch.result.time);
        ++stats_.retries;
        staged_.push_front(std::move(*rit));
      }
      return true;
    }
    if (transient && batch.reqs.front().attempts < options_.retry_limit) {
      Pending p = std::move(batch.reqs.front());
      p.no_coalesce = true;
      p.not_before = batch.result.time + options_.retry_backoff;
      ++stats_.retries;
      staged_.push_front(std::move(p));
      return true;
    }
    last_completion_ = std::max(last_completion_, batch.result.time);
    stats_.completed += static_cast<int64_t>(batch.reqs.size());
    if (!batch.result.ok()) {
      stats_.errors += static_cast<int64_t>(batch.reqs.size());
    }
  }
  // Engine latch dropped: completion callbacks may re-enter the frame state
  // machine and take pool/partition latches on a fresh stack.
  Deliver(std::move(batch), out);
  *delivered = true;
  return true;
}

IoToken AsyncIoEngine::Submit(const AsyncIoRequest& req, IoContext& ctx) {
  Pending p;
  p.req = req;
  p.charge = ctx.charge;
  const bool is_write = req.op == IoOp::kWrite;
  IoToken token = 0;
  {
    EngineLock lock(mu_);
    clock_ = std::max(clock_, ctx.now);
    // Per-lane backpressure: a backlog of background patrol work must not
    // block (or slow) a foreground submission, and vice versa.
    std::deque<Pending>& q = req.low_priority ? staged_low_ : staged_;
    if (static_cast<int>(q.size()) >= options_.queue_depth) {
      ++stats_.queue_full_waits;
      if (!workers_.empty()) {
        while (static_cast<int>(q.size()) >= options_.queue_depth &&
               !stopping_) {
          space_cv_.wait(lock);
        }
      }
      // Sim backend: the submission queue is a virtual-time model, so a
      // "full" queue costs latency (the request issues when a slot frees),
      // never blocks the submitting thread.
    }
    token = next_token_++;
    p.token = token;
    ++stats_.submitted;
    q.push_back(std::move(p));
  }
  if (is_write) {
    // Acknowledged to the queue, not yet on the device: a crash here loses
    // the write (tests/fault queued-write-lost scenario).
    TURBOBP_CRASH_POINT("io/queued-write");
  }
  if (!workers_.empty()) {
    work_cv_.notify_one();
  } else {
    Kick(ctx.now);
  }
  return token;
}

IoToken AsyncIoEngine::TrySubmit(const AsyncIoRequest& req, IoContext& ctx) {
  {
    EngineLock lock(mu_);
    if (static_cast<int>(staged_.size()) + static_cast<int>(staged_low_.size()) +
            static_cast<int>(issued_.size()) + issuing_ >=
        2 * options_.queue_depth) {
      ++stats_.queue_full_waits;
      return 0;
    }
  }
  return Submit(req, ctx);
}

std::vector<IoCompletion> AsyncIoEngine::Reap(int max, Time deadline,
                                              IoContext& ctx) {
  std::vector<IoCompletion> out;
  if (max <= 0) return out;
  if (!workers_.empty()) {
    // Threaded backend: block until a completion is harvestable or nothing
    // is outstanding. Wall-clock devices have no virtual deadline.
    while (static_cast<int>(out.size()) < max) {
      {
        EngineLock lock(mu_);
        while (issued_.empty() && (HasStagedLocked() || issuing_ > 0)) {
          reap_cv_.wait(lock);
        }
        if (issued_.empty()) break;
      }
      bool delivered = false;
      if (!HarvestOne(kTimeMax, &out, &delivered)) break;
      if (!delivered) work_cv_.notify_one();  // a retry was re-staged
      if (!out.empty()) break;  // deliver promptly; callers loop as needed
    }
    return out;
  }
  while (static_cast<int>(out.size()) < max) {
    Kick(ctx.now);
    bool delivered = false;
    if (!HarvestOne(deadline, &out, &delivered)) break;
  }
  return out;
}

Time AsyncIoEngine::Drain(IoContext& ctx) {
  while (!Idle()) {
    std::vector<IoCompletion> got =
        Reap(std::numeric_limits<int>::max(), kTimeMax, ctx);
    if (got.empty() && Idle()) break;
  }
  EngineLock lock(mu_);
  clock_ = std::max(clock_, ctx.now);
  return std::max(ctx.now, last_completion_);
}

int64_t AsyncIoEngine::Outstanding() const {
  EngineLock lock(mu_);
  int64_t n = static_cast<int64_t>(staged_.size()) +
              static_cast<int64_t>(staged_low_.size()) + issuing_;
  for (const auto& [done, batch] : issued_) {
    n += static_cast<int64_t>(batch.reqs.size());
  }
  return n;
}

void AsyncIoEngine::Reset() {
  EngineLock lock(mu_);
  // Wait out workers mid device call so no batch re-materialises after the
  // queues are cleared.
  while (issuing_ > 0) reap_cv_.wait(lock);
  staged_.clear();
  staged_low_.clear();
  issued_.clear();
  clock_ = 0;
  last_completion_ = 0;
}

AsyncIoEngine::Stats AsyncIoEngine::stats() const {
  EngineLock lock(mu_);
  return stats_;
}

void AsyncIoEngine::WorkerLoop() {
  EngineLock lock(mu_);
  while (true) {
    while (!HasStagedLocked() && !stopping_) work_cv_.wait(lock);
    if (!HasStagedLocked() && stopping_) return;
    Batch batch = PopBatchLocked();
    Time at = clock_;
    for (Pending& p : batch.reqs) {
      at = std::max(at, p.not_before);
      ++p.attempts;
    }
    ++stats_.device_ops;
    if (batch.reqs.size() > 1) {
      ++stats_.coalesced_batches;
      stats_.coalesced_pages += batch.total_pages;
    }
    ++issuing_;
    lock.unlock();
    space_cv_.notify_all();
    const auto wall_start = std::chrono::steady_clock::now();
    const IoResult res = IssueBatch(batch, at);
    const int64_t wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    lock.lock();
    --issuing_;
    batch.result = res;
    // Threaded backend: deadlines are wall-clock — the device call's real
    // duration is what a hung request looks like to a blocked consumer.
    ApplyDeadlineLocked(batch, at, wall_us);
    clock_ = std::max(clock_, res.time);
    issued_.emplace(batch.result.time, std::move(batch));
    reap_cv_.notify_all();
  }
}

}  // namespace turbobp
