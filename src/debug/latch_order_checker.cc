#include "debug/latch_order_checker.h"

#include <algorithm>

#include "common/status.h"

namespace turbobp {

namespace {
// Latch classes currently held by this thread, in acquisition order. A plain
// array avoids a thread_local vector's allocation in instrumented hot paths;
// depth is bounded by the number of classes (same-class nesting is itself a
// violation, reported once and then tolerated).
struct HeldStack {
  LatchClass held[2 * kNumLatchClasses];
  int depth = 0;
};
thread_local HeldStack tls_held;
}  // namespace

const char* ToString(LatchClass c) {
  switch (c) {
    case LatchClass::kBufferPool: return "buffer-pool";
    case LatchClass::kBufferFrame: return "buffer-frame";
    case LatchClass::kWal: return "wal";
    case LatchClass::kSsdPartition: return "ssd-partition";
    case LatchClass::kSsdJournal: return "ssd-journal";
    case LatchClass::kSsdFault: return "ssd-fault";
    case LatchClass::kSsdScrub: return "ssd-scrub";
    case LatchClass::kTacLatch: return "tac-latch";
    case LatchClass::kIoEngine: return "io-engine";
    case LatchClass::kFaultDevice: return "fault-device";
    case LatchClass::kDevice: return "device";
  }
  return "?";
}

LatchOrderChecker::LatchOrderChecker() {
#if defined(TURBOBP_AUDIT) || !defined(NDEBUG)
  enabled_.store(true, std::memory_order_relaxed);
#else
  enabled_.store(false, std::memory_order_relaxed);
#endif
}

LatchOrderChecker& LatchOrderChecker::Instance() {
  static LatchOrderChecker checker;
  return checker;
}

LatchWaitStats& LatchWaitStats::Instance() {
  static LatchWaitStats stats;
  return stats;
}

void LatchOrderChecker::OnAcquire(LatchClass c) {
  LatchOrderChecker& self = Instance();
  if (!self.enabled()) return;
  self.RecordAcquire(c);
}

void LatchOrderChecker::OnRelease(LatchClass c) {
  LatchOrderChecker& self = Instance();
  if (!self.enabled()) return;
  self.RecordRelease(c);
}

bool LatchOrderChecker::PathExists(int from, int to) const {
  // DFS over at most kNumLatchClasses nodes; mu_ is held by the caller.
  bool seen[kNumLatchClasses] = {};
  int stack[kNumLatchClasses];
  int top = 0;
  stack[top++] = from;
  seen[from] = true;
  while (top > 0) {
    const int node = stack[--top];
    if (node == to) return true;
    for (int next = 0; next < kNumLatchClasses; ++next) {
      if (edges_[node][next] && !seen[next]) {
        seen[next] = true;
        stack[top++] = next;
      }
    }
  }
  return false;
}

void LatchOrderChecker::AddViolation(const std::string& msg) {
  // mu_ is held by the caller.
  if (abort_on_violation_) {
    Panic(__FILE__, __LINE__, msg.c_str());
  }
  violations_.push_back(msg);
}

void LatchOrderChecker::RecordAcquire(LatchClass c) {
  HeldStack& held = tls_held;
  const int ci = static_cast<int>(c);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < held.depth; ++i) {
      const int hi = static_cast<int>(held.held[i]);
      if (hi == ci) {
        if (!edges_[ci][ci]) {
          edges_[ci][ci] = true;
          AddViolation(std::string("same-class latch nesting: ") +
                       ToString(c) + " acquired while already held");
        }
        continue;
      }
      if (!edges_[hi][ci]) {
        // New ordering edge hi -> ci: a cycle exists iff ci already reaches
        // hi through previously observed edges.
        if (PathExists(ci, hi)) {
          AddViolation(std::string("latch order cycle: acquired ") +
                       ToString(c) + " while holding " +
                       ToString(held.held[i]) + ", but the opposite order " +
                       ToString(c) + " -> " + ToString(held.held[i]) +
                       " was observed earlier");
        }
        edges_[hi][ci] = true;
      }
    }
  }
  if (held.depth < static_cast<int>(sizeof(held.held) / sizeof(held.held[0]))) {
    held.held[held.depth++] = c;
  }
}

void LatchOrderChecker::RecordRelease(LatchClass c) {
  HeldStack& held = tls_held;
  // Locks are almost always released LIFO; tolerate out-of-order release
  // (and a release with no matching acquire, which can happen if checking
  // was enabled while locks were already held).
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.held[i] == c) {
      for (int j = i; j + 1 < held.depth; ++j) held.held[j] = held.held[j + 1];
      --held.depth;
      return;
    }
  }
}

int64_t LatchOrderChecker::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(violations_.size());
}

std::vector<std::string> LatchOrderChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

void LatchOrderChecker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& row : edges_) std::fill(std::begin(row), std::end(row), false);
  violations_.clear();
}

}  // namespace turbobp
