#ifndef TURBOBP_DEBUG_INVARIANT_AUDITOR_H_
#define TURBOBP_DEBUG_INVARIANT_AUDITOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace turbobp {

class BufferPool;
class SsdCacheBase;
class SsdBufferTable;
class SsdSplitHeap;
class SsdManager;
enum class SsdFrameState : uint8_t;

// One broken invariant: which structure it lives in and what is wrong.
struct InvariantViolation {
  std::string structure;  // e.g. "ssd.heap", "pool.page_table"
  std::string detail;
};

// Result of an audit pass. Empty == every checked invariant holds.
class AuditReport {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  void Add(std::string structure, std::string detail) {
    violations_.push_back({std::move(structure), std::move(detail)});
  }
  void Merge(const AuditReport& other) {
    violations_.insert(violations_.end(), other.violations_.begin(),
                       other.violations_.end());
  }
  // Multi-line human-readable summary ("audit clean" when ok).
  std::string ToString() const;

 private:
  std::vector<InvariantViolation> violations_;
};

// Cross-structure consistency auditor for the buffer pool and the SSD
// manager's five structures (buffer table, hash table, free list, split
// clean/dirty heap array, SSD file layout). Intended for quiescent moments:
// tests, checkpoint boundaries (TURBOBP_AUDIT builds), shutdown. Each audit
// takes the owning latches in the documented order (pool before partitions),
// so it is safe to run concurrently with foreground work, but the
// cross-structure checks assume no mutation races between the two sides.
//
// Checked invariants (Section 3.1's structures):
//   pool:  every page-table entry maps to a frame holding that page; every
//          resident frame is indexed; free-listed frames are empty, unpinned
//          and listed exactly once; dirty/pinned frames are resident.
//   ssd:   every hash entry points at a live buffer-table record in the
//          right partition and bucket; heap membership matches the record
//          state (clean side <=> kClean, dirty side <=> kDirty, free and
//          invalid records in no heap); free-list length and used counts
//          reconcile with the aggregate used/dirty/invalid frame counters;
//          partition frame ranges tile [0, S) disjointly; per-design state
//          legality (kDirty only under LC, kInvalid only under TAC).
//   cross: a page dirty in the memory pool has no SSD copy (it was
//          invalidated on the clean->dirty transition), and a kNewerCopy
//          probe result implies a dirty SSD record (the LC copy-state
//          machine's externally visible half).
class InvariantAuditor {
 public:
  static AuditReport AuditBufferPool(const BufferPool& pool);
  static AuditReport AuditSsdCache(const SsdCacheBase& cache);

  // Full audit: both sides plus the cross-structure checks. `ssd` may be
  // null or a design without internal structures (NoSsdManager); only the
  // applicable checks run.
  static AuditReport AuditSystem(const BufferPool& pool, const SsdManager* ssd);

  // Persistent-cache rule: every in-service (kClean/kDirty) frame's
  // on-device page header must match the buffer table — self-verifying
  // checksum, the table's page id, and (when recorded) the table's LSN.
  // After a warm restart this proves each re-attached frame really holds
  // the page the recovered metadata claims. Reads the device (uncharged),
  // so it is a separate entry point rather than part of AuditSystem —
  // fault-injection tests legitimately run with unreadable frames.
  static AuditReport AuditSsdFrameHeaders(const SsdCacheBase& cache);

  // The SSD copy-state machine (Figure 4 / Section 2.3): which frame-state
  // transitions the designs are allowed to make. Used by the auditor's
  // configuration checks and by tests.
  //   kFree    -> kClean (admit clean), kDirty (admit dirty, LC)
  //   kClean   -> kDirty (dirty admission supersedes, LC), kFree (invalidate
  //               or evict), kInvalid (logical invalidation, TAC)
  //   kDirty   -> kClean (cleaner copied to disk), kFree (invalidate)
  //   kInvalid -> kClean (re-validated on dirty eviction, TAC), kFree
  static bool IsLegalTransition(SsdFrameState from, SsdFrameState to);
};

// Test-only backdoor used by corruption-injection tests to break an
// invariant on purpose and assert the auditor reports it. Never used by
// production code paths.
struct AuditAccess {
  static size_t NumPartitions(const SsdCacheBase& cache);
  static size_t PartitionIndexOf(const SsdCacheBase& cache, PageId pid);
  static SsdBufferTable& Table(SsdCacheBase& cache, size_t partition);
  static SsdSplitHeap& Heap(SsdCacheBase& cache, size_t partition);
  static std::atomic<int64_t>& DirtyFrames(SsdCacheBase& cache);

  // Rewires pool.page_table_[pid] = frame (frame == -1 erases the entry).
  static void RebindPageTableEntry(BufferPool& pool, PageId pid, int32_t frame);
  // Overwrites the frame's resident page id without touching the table.
  static void SetFramePageId(BufferPool& pool, int32_t frame, PageId pid);
  // Appends a frame index to the pool's free list.
  static void PushFreeList(BufferPool& pool, int32_t frame);
};

}  // namespace turbobp

#endif  // TURBOBP_DEBUG_INVARIANT_AUDITOR_H_
