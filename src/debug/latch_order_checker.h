#ifndef TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_
#define TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace turbobp {

// Every latch in the engine belongs to one of these classes. The acquisition
// discipline is the enum order: a thread may only acquire a latch whose class
// is *greater* than every latch class it already holds, and must never hold
// two latches of the same class (the code is written so that same-class
// latches — e.g. two SSD partitions — are acquired one at a time).
//
// The table below is the SINGLE SOURCE OF TRUTH for that discipline. It is
// parsed by tools/analysis/static_check.py (latch-order and io-under-latch
// rules) and mirrored — not restated — by the DESIGN.md §7 capability map.
// Three layers enforce it: this runtime checker (observed schedules), Clang
// Thread Safety Analysis via the annotations on TrackedMutex below
// (compile time, TURBOBP_THREAD_SAFETY=ON), and the structural checker
// (lock-scope nesting over the whole tree, no schedule needed). Edit the
// table, and all three follow.
//
// `device-io` says whether blocking StorageDevice/DiskManager calls are
// permitted while a latch of that class is held:
//   forbidden — the PR-5 invariant; fetch/evict drop the latch first.
//   allowed   — I/O under the latch is that component's design (the WAL
//               serializes flushes behind mu_; an SSD partition owns its
//               slice of the device; FaultInjectingDevice wraps the base
//               device call to order fault decisions with I/O).
//
// BEGIN LATCH ORDER SPEC (machine-readable; keep column alignment free-form,
// one row per class, fields separated by whitespace)
//   rank  class          owner-latch                      device-io
//   0     kBufferPool    BufferPool::Shard::mu            forbidden
//   1     kBufferFrame   BufferPool::FrameSync::mu        forbidden
//   2     kWal           LogManager::mu_                  forbidden
//   3     kSsdPartition  SsdCacheBase::Partition::mu      allowed
//   4     kSsdJournal    SsdMetadataJournal::mu_          forbidden
//   5     kSsdFault      SsdCacheBase::fault_mu_          forbidden
//   6     kSsdScrub      SsdCacheBase::scrub_mu_          forbidden
//   7     kTacLatch      TacCache::latch_mu_              forbidden
//   8     kIoEngine      AsyncIoEngine::mu_               forbidden
//   9     kFaultDevice   FaultInjectingDevice::mu_        allowed
//   10    kDevice        storage-device internals         allowed
// END LATCH ORDER SPEC
//
// Notes per class: kBufferPool is outermost and never held across device
// I/O; kBufferFrame is the per-frame wait channel for in-flight I/O (taken
// briefly to sleep on / signal a frame); kWal covers buffered appends (which
// may run under a pool shard latch, kBufferPool -> kWal) and the
// group-commit protocol state — the flush leader computes its batch under
// mu_ but performs the log-device write with mu_ *released* (followers park
// on a condvar), so device I/O under kWal is forbidden; the single
// sanctioned exception is the legacy pre-group-commit A/B baseline in
// FlushToLegacyLocked, waived inline; kSsdJournal guards the
// persistent-metadata journal's
// in-memory staging state only — sealed pages are written to the device
// *after* the latch is dropped (publish-then-seal), hence device-io
// forbidden; kSsdFault guards the lost-page set and degradation state;
// kSsdScrub guards only the scrubber's patrol cursor — held strictly for
// the cursor copy/advance arithmetic and released before any partition
// latch or device call (it is a leaf in practice; no other latch is ever
// taken under it), hence device-io forbidden; kTacLatch guards the
// pending-admission latch table; kIoEngine guards the
// async engine's submission/completion queues only — the engine DROPS its
// mutex before every device call and before invoking completion callbacks
// (which re-enter the frame state machine and may take rank-0 latches on a
// fresh stack), hence device-io forbidden; kDevice is innermost
// (MemDevice internals).
enum class LatchClass : uint8_t {
  kBufferPool = 0,
  kBufferFrame = 1,
  kWal = 2,
  kSsdPartition = 3,
  kSsdJournal = 4,
  kSsdFault = 5,
  kSsdScrub = 6,
  kTacLatch = 7,
  kIoEngine = 8,
  kFaultDevice = 9,
  kDevice = 10,
};
inline constexpr int kNumLatchClasses = 11;

const char* ToString(LatchClass c);

// Runtime lock-order checker. Threads report every tracked acquisition and
// release; the checker maintains the global directed graph of observed
// "held A while acquiring B" edges and flags
//   * cycles (an edge whose reverse path already exists), and
//   * same-class nesting (a potential deadlock without address ordering).
// Checking costs one relaxed atomic load per lock operation when disabled;
// it is enabled by default in debug and TURBOBP_AUDIT builds and can be
// toggled at runtime (tests enable it explicitly so they work in every
// build type).
class LatchOrderChecker {
 public:
  static LatchOrderChecker& Instance();

  static void OnAcquire(LatchClass c);
  static void OnRelease(LatchClass c);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // When set, a detected violation panics instead of being recorded
  // (the mode the TURBOBP_AUDIT build runs tests in).
  void set_abort_on_violation(bool on) { abort_on_violation_ = on; }

  int64_t violation_count() const;
  std::vector<std::string> violations() const;

  // Clears the observed-order graph and recorded violations (tests).
  void Reset();

 private:
  LatchOrderChecker();

  void RecordAcquire(LatchClass c);
  void RecordRelease(LatchClass c);
  // True if a path to -> ... -> from exists in the observed-edge graph.
  bool PathExists(int from, int to) const;
  void AddViolation(const std::string& msg);

  std::atomic<bool> enabled_;
  bool abort_on_violation_ = false;
  mutable std::mutex mu_;  // leaf lock: guards the graph and violation log
  bool edges_[kNumLatchClasses][kNumLatchClasses] = {};
  std::vector<std::string> violations_;
};

// Per-latch-class contention accounting. TrackedMutex takes the try_lock
// fast path first; only a *contended* acquisition pays two steady_clock
// reads and lands here, so the single-threaded simulator never records
// anything and the hot uncontended path costs one extra try_lock. The
// threaded driver snapshots/deltas this around a run to attribute wall time
// to latch classes (the derived latch-wait breakdown in
// BENCH_scaleout_threads.json).
struct LatchWaitSnapshot {
  int64_t waits[kNumLatchClasses] = {};
  int64_t wait_ns[kNumLatchClasses] = {};
};

class LatchWaitStats {
 public:
  static LatchWaitStats& Instance();

  void RecordWait(LatchClass c, int64_t ns) {
    const int i = static_cast<int>(c);
    waits_[i].fetch_add(1, std::memory_order_relaxed);
    wait_ns_[i].fetch_add(ns, std::memory_order_relaxed);
  }

  LatchWaitSnapshot Snapshot() const {
    LatchWaitSnapshot s;
    for (int i = 0; i < kNumLatchClasses; ++i) {
      s.waits[i] = waits_[i].load(std::memory_order_relaxed);
      s.wait_ns[i] = wait_ns_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  void Reset() {
    for (int i = 0; i < kNumLatchClasses; ++i) {
      waits_[i].store(0, std::memory_order_relaxed);
      wait_ns_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  LatchWaitStats() = default;
  std::atomic<int64_t> waits_[kNumLatchClasses] = {};
  std::atomic<int64_t> wait_ns_[kNumLatchClasses] = {};
};

// Drop-in std::mutex replacement that reports its class to the
// LatchOrderChecker. Satisfies Lockable, so std::unique_lock works unchanged
// (the buffer pool's lock-juggling paths rely on that). Under Clang with
// TURBOBP_THREAD_SAFETY=ON the mutex is additionally a *capability*: each
// lock() acquires both this instance and the phantom per-class token
// (LatchClassCap), so guarded fields, REQUIRES contracts on *Locked helpers,
// and the EXCLUDES contracts on the blocking storage entry points are all
// checked at compile time. Prefer TrackedLockGuard (below) over
// std::lock_guard for plain scoped acquisition — the analysis cannot see
// through libstdc++'s unannotated lock_guard.
template <LatchClass kClass>
class TURBOBP_CAPABILITY("latch") TrackedMutex {
 public:
  void lock() TURBOBP_ACQUIRE(this, TURBOBP_LATCH_CAP(kClass)) {
    LatchOrderChecker::OnAcquire(kClass);
    if (mu_.try_lock()) return;
    const auto t0 = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waited = std::chrono::steady_clock::now() - t0;
    LatchWaitStats::Instance().RecordWait(
        kClass,
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count());
  }
  bool try_lock() TURBOBP_TRY_ACQUIRE(true, this, TURBOBP_LATCH_CAP(kClass)) {
    if (!mu_.try_lock()) return false;
    LatchOrderChecker::OnAcquire(kClass);
    return true;
  }
  void unlock() TURBOBP_RELEASE(this, TURBOBP_LATCH_CAP(kClass)) {
    mu_.unlock();
    LatchOrderChecker::OnRelease(kClass);
  }

 private:
  std::mutex mu_;
};

// Scoped acquisition of a TrackedMutex, visible to the thread-safety
// analysis (std::lock_guard on a TrackedMutex locks correctly at runtime
// but is invisible to Clang's TSA, which silently weakens every
// GUARDED_BY it should have discharged). CTAD makes it a drop-in:
//   TrackedLockGuard lock(mu_);
template <LatchClass kClass>
class TURBOBP_SCOPED_CAPABILITY TrackedLockGuard {
 public:
  explicit TrackedLockGuard(TrackedMutex<kClass>& mu)
      TURBOBP_ACQUIRE(mu, TURBOBP_LATCH_CAP(kClass))
      : mu_(mu) {
    mu_.lock();
  }
  ~TrackedLockGuard() TURBOBP_RELEASE() { mu_.unlock(); }

  TrackedLockGuard(const TrackedLockGuard&) = delete;
  TrackedLockGuard& operator=(const TrackedLockGuard&) = delete;

 private:
  TrackedMutex<kClass>& mu_;
};

}  // namespace turbobp

#endif  // TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_
