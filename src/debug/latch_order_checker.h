#ifndef TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_
#define TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace turbobp {

// Every latch in the engine belongs to one of these classes. The documented
// acquisition discipline is the enum order: a thread may only acquire a latch
// whose class is *greater* than every latch class it already holds, and must
// never hold two latches of the same class (the code is written so that
// same-class latches — e.g. two SSD partitions — are acquired one at a time).
//
//   kBufferPool   BufferPool::Shard::mu (outermost; never held across
//                 device I/O — fetch/evict drop it before reading/writing)
//   kBufferFrame  BufferPool::FrameSync::mu (per-frame wait channel for
//                 in-flight I/O; taken briefly to sleep on / signal a frame)
//   kWal          LogManager::mu_ (WAL appends run under a pool shard latch)
//   kSsdPartition SsdCacheBase::Partition::mu
//   kSsdFault     SsdCacheBase::fault_mu_ (lost-page set, degradation state)
//   kTacLatch     TacCache::latch_mu_ (pending-admission latch table)
//   kFaultDevice  FaultInjectingDevice::mu_ (held across the base device)
//   kDevice       storage-device internals (innermost)
enum class LatchClass : uint8_t {
  kBufferPool = 0,
  kBufferFrame = 1,
  kWal = 2,
  kSsdPartition = 3,
  kSsdFault = 4,
  kTacLatch = 5,
  kFaultDevice = 6,
  kDevice = 7,
};
inline constexpr int kNumLatchClasses = 8;

const char* ToString(LatchClass c);

// Runtime lock-order checker. Threads report every tracked acquisition and
// release; the checker maintains the global directed graph of observed
// "held A while acquiring B" edges and flags
//   * cycles (an edge whose reverse path already exists), and
//   * same-class nesting (a potential deadlock without address ordering).
// Checking costs one relaxed atomic load per lock operation when disabled;
// it is enabled by default in debug and TURBOBP_AUDIT builds and can be
// toggled at runtime (tests enable it explicitly so they work in every
// build type).
class LatchOrderChecker {
 public:
  static LatchOrderChecker& Instance();

  static void OnAcquire(LatchClass c);
  static void OnRelease(LatchClass c);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // When set, a detected violation panics instead of being recorded
  // (the mode the TURBOBP_AUDIT build runs tests in).
  void set_abort_on_violation(bool on) { abort_on_violation_ = on; }

  int64_t violation_count() const;
  std::vector<std::string> violations() const;

  // Clears the observed-order graph and recorded violations (tests).
  void Reset();

 private:
  LatchOrderChecker();

  void RecordAcquire(LatchClass c);
  void RecordRelease(LatchClass c);
  // True if a path to -> ... -> from exists in the observed-edge graph.
  bool PathExists(int from, int to) const;
  void AddViolation(const std::string& msg);

  std::atomic<bool> enabled_;
  bool abort_on_violation_ = false;
  mutable std::mutex mu_;  // leaf lock: guards the graph and violation log
  bool edges_[kNumLatchClasses][kNumLatchClasses] = {};
  std::vector<std::string> violations_;
};

// Drop-in std::mutex replacement that reports its class to the
// LatchOrderChecker. Satisfies Lockable, so std::lock_guard /
// std::unique_lock work unchanged (use CTAD: `std::lock_guard lock(mu_);`).
template <LatchClass kClass>
class TrackedMutex {
 public:
  void lock() {
    LatchOrderChecker::OnAcquire(kClass);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    LatchOrderChecker::OnAcquire(kClass);
    return true;
  }
  void unlock() {
    mu_.unlock();
    LatchOrderChecker::OnRelease(kClass);
  }

 private:
  std::mutex mu_;
};

}  // namespace turbobp

#endif  // TURBOBP_DEBUG_LATCH_ORDER_CHECKER_H_
