#include "debug/invariant_auditor.h"

#include <mutex>
#include <unordered_set>
#include <utility>

#include "buffer/buffer_pool.h"
#include "core/ssd_buffer_table.h"
#include "core/ssd_cache_base.h"
#include "core/ssd_heap.h"
#include "storage/page.h"

namespace turbobp {

namespace {
std::string PidStr(PageId pid) {
  return pid == kInvalidPageId ? std::string("<invalid>") : std::to_string(pid);
}
}  // namespace

std::string AuditReport::ToString() const {
  if (ok()) return "audit clean";
  std::string out = "audit found " + std::to_string(violations_.size()) +
                    " violation(s):";
  for (const InvariantViolation& v : violations_) {
    out += "\n  [" + v.structure + "] " + v.detail;
  }
  return out;
}

AuditReport InvariantAuditor::AuditBufferPool(const BufferPool& pool) {
  using FrameState = BufferPool::FrameState;
  AuditReport report;

  // The pool is sharded; each shard is audited under its own latch. An
  // in-flight frame (kReading / kWriting / kEvicting) is a legal transient
  // the auditor may observe mid-fetch, with its own hygiene rules below.
  std::unordered_set<int32_t> mapped_frames;  // across all shards
  for (size_t si = 0; si < pool.shards_.size(); ++si) {
    const auto& sh = *pool.shards_[si];
    TrackedLockGuard lock(sh.mu);
    const std::string where = "shard " + std::to_string(si) + ": ";
    int64_t in_flight = 0;

    // Hash table -> frame direction: every entry maps to a frame of this
    // shard that holds exactly that page, and no two entries share a frame.
    for (const auto& [pid, frame] : sh.page_table) {
      if (frame < sh.frame_begin || frame >= sh.frame_end) {
        report.Add("pool.page_table", where + "entry for page " + PidStr(pid) +
                                          " points at out-of-range frame " +
                                          std::to_string(frame));
        continue;
      }
      if (!mapped_frames.insert(frame).second) {
        report.Add("pool.page_table", "frame " + std::to_string(frame) +
                                          " is mapped by more than one page");
      }
      const auto& f = pool.frames_[frame];
      if (f.page_id != pid) {
        report.Add("pool.page_table",
                   "stale entry: page " + PidStr(pid) + " maps to frame " +
                       std::to_string(frame) + " which holds page " +
                       PidStr(f.page_id));
      }
      if (f.state.load(std::memory_order_relaxed) == FrameState::kFree) {
        report.Add("pool.page_table", where + "page " + PidStr(pid) +
                                          " maps to frame " +
                                          std::to_string(frame) +
                                          " whose state is free");
      }
    }

    // Frame -> hash table direction, state hygiene, empty-frame hygiene.
    for (int32_t i = sh.frame_begin; i < sh.frame_end; ++i) {
      const auto& f = pool.frames_[i];
      const FrameState st = f.state.load(std::memory_order_relaxed);
      if (st == FrameState::kReading || st == FrameState::kWriting ||
          st == FrameState::kEvicting) {
        ++in_flight;
      }
      if (f.page_id != kInvalidPageId) {
        const auto it = sh.page_table.find(f.page_id);
        if (it == sh.page_table.end() || it->second != i) {
          report.Add("pool.frames", "resident frame " + std::to_string(i) +
                                        " (page " + PidStr(f.page_id) +
                                        ") is not indexed by the page table");
        }
        if (st == FrameState::kFree) {
          report.Add("pool.frames", "frame " + std::to_string(i) +
                                        " holds page " + PidStr(f.page_id) +
                                        " but its state is free");
        }
        if (st == FrameState::kReading && f.dirty) {
          report.Add("pool.frames", "frame " + std::to_string(i) +
                                        " is mid-read but marked dirty");
        }
        if ((st == FrameState::kReading || st == FrameState::kEvicting) &&
            f.pin_count != 0) {
          report.Add("pool.frames", "in-flight frame " + std::to_string(i) +
                                        " (page " + PidStr(f.page_id) +
                                        ") is pinned");
        }
      } else {
        if (f.dirty) {
          report.Add("pool.frames",
                     "empty frame " + std::to_string(i) + " is marked dirty");
        }
        if (f.pin_count != 0) {
          report.Add("pool.frames", "empty frame " + std::to_string(i) +
                                        " has pin count " +
                                        std::to_string(f.pin_count));
        }
        if (st != FrameState::kFree) {
          report.Add("pool.frames", "empty frame " + std::to_string(i) +
                                        " is not in the free state");
        }
      }
    }

    // Free list: in range, listed once, genuinely free.
    std::unordered_set<int32_t> free_set;
    for (const int32_t frame : sh.free_list) {
      if (frame < sh.frame_begin || frame >= sh.frame_end) {
        report.Add("pool.free_list",
                   where + "out-of-range frame " + std::to_string(frame));
        continue;
      }
      if (!free_set.insert(frame).second) {
        report.Add("pool.free_list",
                   "frame " + std::to_string(frame) + " listed twice");
        continue;
      }
      const auto& f = pool.frames_[frame];
      if (f.page_id != kInvalidPageId) {
        report.Add("pool.free_list", "frame " + std::to_string(frame) +
                                         " is on the free list but holds page " +
                                         PidStr(f.page_id));
      }
      if (f.state.load(std::memory_order_relaxed) != FrameState::kFree) {
        report.Add("pool.free_list",
                   "frame " + std::to_string(frame) +
                       " is on the free list but its state is not free");
      }
    }

    // Shard accounting: every frame is free-listed, mapped, or
    // claimed-but-unpublished, and the transient counter must equal the
    // claimed-but-unpublished frames plus the mapped frames that are mid-I/O
    // (kReading / kWriting / kEvicting all keep their page-table entry).
    const int64_t range = sh.frame_end - sh.frame_begin;
    const int64_t claimed = range - static_cast<int64_t>(sh.free_list.size()) -
                            static_cast<int64_t>(sh.page_table.size());
    if (sh.transient != claimed + in_flight) {
      report.Add("pool.shard",
                 where + "transient counter " + std::to_string(sh.transient) +
                     " != " + std::to_string(claimed) +
                     " claimed-unpublished + " + std::to_string(in_flight) +
                     " in-flight");
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditSsdCache(const SsdCacheBase& cache) {
  AuditReport report;
  const SsdDesign design = cache.design();

  // Partition frame ranges must tile [0, S) contiguously and disjointly.
  int64_t expected_base = 0;
  for (size_t pi = 0; pi < cache.partitions_.size(); ++pi) {
    const auto& part = *cache.partitions_[pi];
    if (part.frame_base != expected_base) {
      report.Add("ssd.partitions",
                 "partition " + std::to_string(pi) + " frame base " +
                     std::to_string(part.frame_base) + " != expected " +
                     std::to_string(expected_base));
    }
    expected_base = part.frame_base + part.table.capacity();
  }
  if (expected_base != cache.options_.num_frames) {
    report.Add("ssd.partitions",
               "partition capacities cover " + std::to_string(expected_base) +
                   " frames, options say " +
                   std::to_string(cache.options_.num_frames));
  }

  int64_t used_total = 0;
  int64_t dirty_total = 0;
  int64_t invalid_total = 0;
  int64_t quarantined_total = 0;
  int64_t degraded_total = 0;
  for (size_t pi = 0; pi < cache.partitions_.size(); ++pi) {
    const auto& part = *cache.partitions_[pi];
    const std::string where = "partition " + std::to_string(pi);
    const bool part_degraded = part.degraded.load(std::memory_order_acquire);
    if (part_degraded) ++degraded_total;
    TrackedLockGuard lock(part.mu);
    const SsdBufferTable& table = part.table;
    const SsdSplitHeap& heap = part.heap;
    const int32_t cap = table.capacity();

    // Heap-internal order and position bookkeeping.
    if (!heap.CheckInvariants()) {
      report.Add("ssd.heap", where + ": heap order/position invariant broken");
    }

    // Free list: no cycles, in range, length reconciles with used().
    std::vector<char> on_free(static_cast<size_t>(cap), 0);
    int32_t free_count = 0;
    for (int32_t rec = table.free_head_; rec != -1;
         rec = table.records_[static_cast<size_t>(rec)].free_next) {
      if (rec < 0 || rec >= cap) {
        report.Add("ssd.free_list",
                   where + ": out-of-range record " + std::to_string(rec));
        break;
      }
      if (on_free[static_cast<size_t>(rec)]) {
        report.Add("ssd.free_list",
                   where + ": cycle through record " + std::to_string(rec));
        break;
      }
      on_free[static_cast<size_t>(rec)] = 1;
      ++free_count;
    }
    if (free_count + table.used() != cap) {
      report.Add("ssd.free_list",
                 where + ": " + std::to_string(free_count) + " free + " +
                     std::to_string(table.used()) + " used != capacity " +
                     std::to_string(cap));
    }

    // Hash chains: every entry is a live record of this partition, in the
    // right bucket, and findable (no duplicate page ids shadowing it).
    std::vector<char> in_hash(static_cast<size_t>(cap), 0);
    for (size_t b = 0; b < table.buckets_.size(); ++b) {
      int32_t steps = 0;
      for (int32_t rec = table.buckets_[b]; rec != -1;
           rec = table.records_[static_cast<size_t>(rec)].hash_next) {
        if (rec < 0 || rec >= cap || ++steps > cap) {
          report.Add("ssd.hash", where + ": bucket " + std::to_string(b) +
                                     " chain corrupt at record " +
                                     std::to_string(rec));
          break;
        }
        in_hash[static_cast<size_t>(rec)] = 1;
        const SsdFrameRecord& r = table.record(rec);
        if (r.state == SsdFrameState::kFree) {
          report.Add("ssd.hash", where + ": stale hash entry: record " +
                                     std::to_string(rec) + " (page " +
                                     PidStr(r.page_id) + ") is free");
          continue;
        }
        if (table.BucketOf(r.page_id) != b) {
          report.Add("ssd.hash", where + ": record " + std::to_string(rec) +
                                     " (page " + PidStr(r.page_id) +
                                     ") chained in the wrong bucket");
        }
        if (table.Lookup(r.page_id) != rec) {
          report.Add("ssd.hash", where + ": page " + PidStr(r.page_id) +
                                     " has a duplicate or shadowed entry");
        }
        if (&cache.PartitionFor(r.page_id) != &part) {
          report.Add("ssd.hash", where + ": page " + PidStr(r.page_id) +
                                     " belongs to a different partition");
        }
      }
    }

    // Record states vs hash/free/heap membership: the per-frame half of the
    // copy-state machine (a dirty frame must sit in the dirty heap until the
    // cleaner copies it out; free and invalid frames sit in no heap).
    for (int32_t rec = 0; rec < cap; ++rec) {
      const SsdFrameRecord& r = table.record(rec);
      const std::string who =
          where + " record " + std::to_string(rec) + " (page " +
          PidStr(r.page_id) + ")";
      const bool hashed = in_hash[static_cast<size_t>(rec)] != 0;
      const bool freed = on_free[static_cast<size_t>(rec)] != 0;
      // A degraded partition was purged when it dropped out of service, and
      // nothing may admit into it while its flag is up: only free and
      // quarantined records are legal until the canary re-enables it.
      if (part_degraded && r.state != SsdFrameState::kFree &&
          r.state != SsdFrameState::kQuarantined) {
        report.Add("ssd.degraded",
                   who + ": in-service record inside a degraded partition");
      }
      switch (r.state) {
        case SsdFrameState::kFree:
          if (hashed) {
            report.Add("ssd.table", who + ": free but still hashed");
          }
          if (!freed) {
            report.Add("ssd.table", who + ": free but not on the free list");
          }
          if (heap.Contains(rec)) {
            report.Add("ssd.table", who + ": free but present in a heap");
          }
          break;
        case SsdFrameState::kClean:
          if (!hashed) report.Add("ssd.table", who + ": clean but not hashed");
          if (freed) {
            report.Add("ssd.table", who + ": clean but on the free list");
          }
          if (!heap.Contains(rec)) {
            report.Add("ssd.table", who + ": clean but in no heap");
          } else if (heap.IsDirtySide(rec)) {
            report.Add("ssd.heap", who + ": record says clean but sits in the"
                                         " dirty heap");
          }
          break;
        case SsdFrameState::kDirty:
          ++dirty_total;
          if (design != SsdDesign::kLazyCleaning) {
            report.Add("ssd.table",
                       who + ": dirty SSD frame under design " +
                           std::string(turbobp::ToString(design)) +
                           " (only LC writes dirty pages to the SSD)");
          }
          if (!hashed) report.Add("ssd.table", who + ": dirty but not hashed");
          if (freed) {
            report.Add("ssd.table", who + ": dirty but on the free list");
          }
          if (!heap.Contains(rec)) {
            report.Add("ssd.heap",
                       who + ": dirty but in no heap (the cleaner would"
                             " never find it)");
          } else if (!heap.IsDirtySide(rec)) {
            report.Add("ssd.heap", who + ": record says dirty but sits in the"
                                         " clean heap");
          }
          break;
        case SsdFrameState::kInvalid:
          ++invalid_total;
          if (design != SsdDesign::kTac) {
            report.Add("ssd.table",
                       who + ": logically-invalid frame under design " +
                           std::string(turbobp::ToString(design)) +
                           " (only TAC invalidates logically)");
          }
          if (!hashed) {
            report.Add("ssd.table", who + ": invalid but not hashed");
          }
          if (freed) {
            report.Add("ssd.table", who + ": invalid but on the free list");
          }
          if (heap.Contains(rec)) {
            report.Add("ssd.heap", who + ": invalid but present in a heap");
          }
          break;
        case SsdFrameState::kQuarantined:
          // A quarantined frame is out of service for good: never hashed,
          // never on the free list (the flash cells are bad), in no heap.
          // It still counts toward table.used(), so free + used == capacity
          // keeps holding.
          ++quarantined_total;
          if (hashed) {
            report.Add("ssd.table", who + ": quarantined but still hashed");
          }
          if (freed) {
            report.Add("ssd.table",
                       who + ": quarantined but on the free list (a bad frame"
                             " must never be reused)");
          }
          if (heap.Contains(rec)) {
            report.Add("ssd.heap", who + ": quarantined but present in a heap");
          }
          break;
      }
    }

    // Heap slots -> record states (the other direction of the membership
    // checks above, so a record/heap disagreement is caught from both ends).
    for (int32_t i = 0; i < heap.clean_size(); ++i) {
      const int32_t rec = heap.SlotAt(SsdSplitHeap::kClean, i);
      if (rec < 0 || rec >= cap) continue;  // CheckInvariants reported it
      if (table.record(rec).state != SsdFrameState::kClean) {
        report.Add("ssd.heap", where + ": clean-heap slot " +
                                   std::to_string(i) + " holds record " +
                                   std::to_string(rec) +
                                   " whose state is not clean");
      }
    }
    for (int32_t i = 0; i < heap.dirty_size(); ++i) {
      const int32_t rec = heap.SlotAt(SsdSplitHeap::kDirty, i);
      if (rec < 0 || rec >= cap) continue;
      if (table.record(rec).state != SsdFrameState::kDirty) {
        report.Add("ssd.heap", where + ": dirty-heap slot " +
                                   std::to_string(i) + " holds record " +
                                   std::to_string(rec) +
                                   " whose state is not dirty");
      }
    }

    used_total += table.used();
  }

  // Aggregate counters vs ground truth. Quarantined records stay allocated
  // in the table (used() includes them) but the used_frames_ gauge counts
  // only frames still serving pages.
  if (used_total != cache.used_frames_.load() + quarantined_total) {
    report.Add("ssd.counters",
               "used_frames counter " +
                   std::to_string(cache.used_frames_.load()) + " + " +
                   std::to_string(quarantined_total) +
                   " quarantined != table total " + std::to_string(used_total));
  }
  if (quarantined_total != cache.quarantined_frames_.load()) {
    report.Add("ssd.counters",
               "quarantined_frames counter " +
                   std::to_string(cache.quarantined_frames_.load()) +
                   " != quarantined-record total " +
                   std::to_string(quarantined_total));
  }
  if (dirty_total != cache.dirty_frames_.load()) {
    report.Add("ssd.counters",
               "dirty_frames counter " +
                   std::to_string(cache.dirty_frames_.load()) +
                   " != dirty-record total " + std::to_string(dirty_total));
  }
  if (invalid_total != cache.invalid_frames_.load()) {
    report.Add("ssd.counters",
               "invalid_frames counter " +
                   std::to_string(cache.invalid_frames_.load()) +
                   " != invalid-record total " + std::to_string(invalid_total));
  }
  if (degraded_total != cache.degraded_partitions_.load()) {
    report.Add("ssd.counters",
               "degraded_partitions gauge " +
                   std::to_string(cache.degraded_partitions_.load()) +
                   " != degraded-flag total " + std::to_string(degraded_total));
  }
  return report;
}

AuditReport InvariantAuditor::AuditSystem(const BufferPool& pool,
                                          const SsdManager* ssd) {
  AuditReport report = AuditBufferPool(pool);
  const auto* cache = dynamic_cast<const SsdCacheBase*>(ssd);
  if (cache != nullptr) report.Merge(AuditSsdCache(*cache));
  if (ssd == nullptr) return report;

  // Cross-structure: snapshot resident pages shard by shard under each
  // shard latch, then probe the SSD (shard latches released first: Probe
  // takes partition latches and needs no pool state).
  std::vector<std::pair<PageId, bool>> resident;
  for (const auto& shard : pool.shards_) {
    const auto& sh = *shard;
    TrackedLockGuard lock(sh.mu);
    resident.reserve(resident.size() + sh.page_table.size());
    for (const auto& [pid, frame] : sh.page_table) {
      if (frame < sh.frame_begin || frame >= sh.frame_end) {
        continue;  // already reported by AuditBufferPool
      }
      resident.emplace_back(pid, pool.frames_[frame].dirty);
    }
  }
  for (const auto& [pid, dirty] : resident) {
    if (!dirty) continue;
    // The clean->dirty transition invalidates any SSD copy, and nothing may
    // re-admit the page while the newest version sits dirty in memory.
    if (ssd->Probe(pid) != SsdProbe::kAbsent) {
      report.Add("cross",
                 "page " + PidStr(pid) +
                     " is dirty in the memory pool but the SSD still serves"
                     " a copy (missed invalidation)");
    }
  }
  return report;
}

AuditReport InvariantAuditor::AuditSsdFrameHeaders(const SsdCacheBase& cache) {
  AuditReport report;
  std::vector<uint8_t> buf(cache.ssd_device_->page_bytes());
  for (size_t pi = 0; pi < cache.partitions_.size(); ++pi) {
    const auto& part = *cache.partitions_[pi];
    TrackedLockGuard lock(part.mu);
    for (int32_t rec = 0; rec < part.table.capacity(); ++rec) {
      const SsdFrameRecord& r = part.table.record(rec);
      if (r.state != SsdFrameState::kClean &&
          r.state != SsdFrameState::kDirty) {
        continue;
      }
      const uint64_t frame = static_cast<uint64_t>(part.frame_base + rec);
      const std::string where = "partition " + std::to_string(pi) +
                                " record " + std::to_string(rec) + " (frame " +
                                std::to_string(frame) + ", page " +
                                PidStr(r.page_id) + "): ";
      // Uncharged read: the audit must not perturb virtual time or queues.
      const IoResult res =
          cache.ssd_device_->Read(frame, 1, buf, /*now=*/0, /*charge=*/false);
      if (!res.ok()) {
        report.Add("ssd.frame_headers",
                   where + "device read failed: " + res.status.ToString());
        continue;
      }
      const PageView v(buf.data(), cache.ssd_device_->page_bytes());
      if (!v.VerifyChecksum()) {
        report.Add("ssd.frame_headers",
                   where + "frame content fails its checksum");
        continue;
      }
      if (v.header().page_id != r.page_id) {
        report.Add("ssd.frame_headers", where + "frame header claims page " +
                                            PidStr(v.header().page_id));
      }
      if (r.page_lsn != kInvalidLsn && v.header().lsn != r.page_lsn) {
        report.Add("ssd.frame_headers",
                   where + "frame header LSN " +
                       std::to_string(v.header().lsn) +
                       " != table LSN " + std::to_string(r.page_lsn));
      }
    }
  }
  return report;
}

bool InvariantAuditor::IsLegalTransition(SsdFrameState from, SsdFrameState to) {
  if (from == to) return true;
  switch (from) {
    case SsdFrameState::kFree:
      return to == SsdFrameState::kClean || to == SsdFrameState::kDirty;
    case SsdFrameState::kClean:
      return to == SsdFrameState::kDirty || to == SsdFrameState::kFree ||
             to == SsdFrameState::kInvalid ||
             to == SsdFrameState::kQuarantined;
    case SsdFrameState::kDirty:
      // A dirty frame holds the only up-to-date copy: it may only become
      // clean (after the cleaner's disk write), be dropped when the page
      // is re-dirtied in memory, or be quarantined when the flash cells
      // fail (the page is then recorded as lost).
      return to == SsdFrameState::kClean || to == SsdFrameState::kFree ||
             to == SsdFrameState::kQuarantined;
    case SsdFrameState::kInvalid:
      return to == SsdFrameState::kClean || to == SsdFrameState::kFree ||
             to == SsdFrameState::kQuarantined;
    case SsdFrameState::kQuarantined:
      return false;  // terminal: bad flash cells never return to service
  }
  return false;
}

// ----------------------------------------------------------- AuditAccess

size_t AuditAccess::NumPartitions(const SsdCacheBase& cache) {
  return cache.partitions_.size();
}

size_t AuditAccess::PartitionIndexOf(const SsdCacheBase& cache, PageId pid) {
  const auto& part = cache.PartitionFor(pid);
  for (size_t i = 0; i < cache.partitions_.size(); ++i) {
    if (cache.partitions_[i].get() == &part) return i;
  }
  return cache.partitions_.size();
}

SsdBufferTable& AuditAccess::Table(SsdCacheBase& cache, size_t partition) {
  return cache.partitions_.at(partition)->table;
}

SsdSplitHeap& AuditAccess::Heap(SsdCacheBase& cache, size_t partition) {
  return cache.partitions_.at(partition)->heap;
}

std::atomic<int64_t>& AuditAccess::DirtyFrames(SsdCacheBase& cache) {
  return cache.dirty_frames_;
}

void AuditAccess::RebindPageTableEntry(BufferPool& pool, PageId pid,
                                       int32_t frame) {
  auto& sh = *pool.shards_[pool.ShardOf(pid)];
  TrackedLockGuard lock(sh.mu);
  if (frame < 0) {
    sh.page_table.erase(pid);
  } else {
    sh.page_table[pid] = frame;
  }
}

void AuditAccess::SetFramePageId(BufferPool& pool, int32_t frame, PageId pid) {
  auto& sh = *pool.shards_[static_cast<size_t>(pool.frames_[frame].shard)];
  TrackedLockGuard lock(sh.mu);
  pool.frames_[frame].page_id = pid;
}

void AuditAccess::PushFreeList(BufferPool& pool, int32_t frame) {
  auto& sh = *pool.shards_[static_cast<size_t>(pool.frames_[frame].shard)];
  TrackedLockGuard lock(sh.mu);
  sh.free_list.push_back(frame);
}

}  // namespace turbobp
