#ifndef TURBOBP_TURBOBP_H_
#define TURBOBP_TURBOBP_H_

// Umbrella header for the turbobp library: an SSD-extended DBMS buffer
// manager reproducing "Turbocharging DBMS Buffer Pool Using SSDs"
// (SIGMOD 2011), plus the substrates it runs on. Include this to get the
// whole public API; finer-grained headers are listed in README.md.

#include "buffer/buffer_pool.h"     // memory buffer pool + page guards
#include "common/rng.h"             // deterministic RNG (NURand/Zipf)
#include "common/stats.h"           // time series / histograms / tables
#include "core/clean_write.h"       // the CW design
#include "core/dual_write.h"        // the DW design
#include "core/lazy_cleaning.h"     // the LC design (the paper's winner)
#include "core/ssd_manager.h"       // SSD-manager interface + noSSD stub
#include "core/tac.h"               // the TAC baseline
#include "engine/bplus_tree.h"      // persisted B+-tree index
#include "engine/database.h"        // DbSystem assembly + catalog
#include "engine/heap_file.h"       // fixed-record heap tables
#include "fault/fault_injecting_device.h"  // deterministic SSD fault injection
#include "fault/fault_plan.h"       // fault plans and kinds
#include "sim/sim_executor.h"       // discrete-event executor
#include "storage/file_device.h"    // real-file backend
#include "storage/striped_array.h"  // 8-spindle simulated disk array
#include "wal/checkpoint.h"         // sharp checkpoints (+ SSD-table ext)
#include "wal/log_manager.h"        // write-ahead log
#include "wal/recovery.h"           // redo-only restart recovery
#include "workload/driver.h"        // multi-client benchmark driver
#include "workload/tpcc.h"          // TPC-C-style workload
#include "workload/tpce.h"          // TPC-E-style workload
#include "workload/tpch.h"          // TPC-H-style workload

#endif  // TURBOBP_TURBOBP_H_
