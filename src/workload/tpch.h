#ifndef TURBOBP_WORKLOAD_TPCH_H_
#define TURBOBP_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/bplus_tree.h"
#include "engine/heap_file.h"
#include "workload/driver.h"

namespace turbobp {

// TPC-H-style decision-support workload: the 22 queries as I/O-pattern
// skeletons (table-scan fractions plus random index-lookup batches chosen
// to match each query's dominant access pattern), the RF1/RF2 refresh
// functions, and the Power / Throughput tests with the QphH arithmetic of
// the spec.
//
// Scans go through the read-ahead path (sequential, served by the striped
// disks); the index-lookup components (e.g. the LINEITEM lookups the paper
// singles out) are random I/O and are what the SSD accelerates — which is
// why the Throughput test, whose concurrent streams randomize the disk
// access pattern further, gains more than the Power test (Table 3).
//
// Queries are compiled to op lists and executed a few ops per executor
// event, so concurrent streams genuinely interleave at the device level.
struct TpchConfig {
  double scale_factor = 1.0;   // "SF" knob (30 / 100 in the paper)
  double row_scale = 1.0 / 400;  // simulation scale on spec cardinalities
  int streams = 4;             // throughput-test streams (spec: 4@30, 5@100)
  uint64_t seed = 11;
};

struct TpchRows {
  struct LineItem {
    uint64_t l_orderkey;
    uint64_t l_partkey;
    uint64_t l_suppkey;
    int64_t extended_price_cents;
    uint32_t quantity;
    uint32_t shipdate;
    char pad[88];
  };
  struct Order {
    uint64_t o_orderkey;
    uint64_t o_custkey;
    int64_t total_price_cents;
    uint32_t orderdate;
    uint32_t status;
    char pad[96];
  };
  struct Customer {
    uint64_t c_custkey;
    uint64_t c_nationkey;
    int64_t acctbal_cents;
    char pad[136];
  };
  struct Part {
    uint64_t p_partkey;
    int64_t retail_price_cents;
    char pad[112];
  };
  struct PartSupp {
    uint64_t ps_partkey;
    uint64_t ps_suppkey;
    int64_t supply_cost_cents;
    uint32_t avail_qty;
    uint32_t pad0;
    char pad[64];
  };
  struct Supplier {
    uint64_t s_suppkey;
    uint64_t s_nationkey;
    char pad[112];
  };
};
static_assert(sizeof(TpchRows::LineItem) == 128);
static_assert(sizeof(TpchRows::Order) == 128);
static_assert(sizeof(TpchRows::Customer) == 160);
static_assert(sizeof(TpchRows::Part) == 128);
static_assert(sizeof(TpchRows::PartSupp) == 96);
static_assert(sizeof(TpchRows::Supplier) == 128);

struct TpchQueryResult {
  int query = 0;    // 1..22; 23=RF1, 24=RF2
  Time elapsed = 0;
};

struct TpchTestResult {
  std::vector<TpchQueryResult> power_timings;   // RF1, Q1..Q22, RF2
  Time power_elapsed = 0;
  Time throughput_elapsed = 0;
  double power_at_sf = 0.0;
  double throughput_at_sf = 0.0;
  double qphh = 0.0;
};

class TpchWorkload {
 public:
  static void Populate(Database* db, const TpchConfig& config);

  TpchWorkload(Database* db, const TpchConfig& config);

  // Runs the Power test (RF1, the 22 queries serially, RF2) followed by the
  // Throughput test (`streams` concurrent query streams plus a refresh
  // stream), filling in the spec metrics.
  TpchTestResult RunFullBenchmark();

  // Runs a single query synchronously (tests / examples).
  Time RunQuery(int q, IoContext& ctx);

  static uint64_t EstimateDbPages(const TpchConfig& config,
                                  uint32_t page_bytes);

  static constexpr int kNumQueries = 22;

 private:
  friend class TpchStream;

  // One resumable unit of query work.
  struct Op {
    enum Kind { kScanWindow, kRandomRows, kOrderWithLines } kind;
    int table = 0;          // index into tables_
    uint64_t from_page = 0;
    uint32_t page_count = 0;
    uint32_t row_count = 0;
  };

  // Tables by id (see kLineItem.. constants in the .cc).
  HeapFile& table(int id) { return tables_[id]; }

  std::vector<Op> CompileQuery(int q, Rng& rng);
  void AppendScan(std::vector<Op>* ops, int tbl, double fraction, Rng& rng);
  void AppendLookups(std::vector<Op>* ops, int tbl, uint64_t rows);
  void AppendOrderJoins(std::vector<Op>* ops, uint64_t orders);
  void ExecuteOp(const Op& op, Rng& rng, IoContext& ctx);

  void RunRefresh(int which, IoContext& ctx);  // 1=RF1 inserts, 2=RF2 deletes

  Database* db_;
  TpchConfig config_;
  Rng rng_;
  std::vector<HeapFile> tables_;
  uint64_t orders_rows_ = 0;
  uint64_t rf_cursor_ = 0;
  uint64_t next_txn_id_ = 1;
};

}  // namespace turbobp

#endif  // TURBOBP_WORKLOAD_TPCH_H_
