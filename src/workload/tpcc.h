#ifndef TURBOBP_WORKLOAD_TPCC_H_
#define TURBOBP_WORKLOAD_TPCC_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/bplus_tree.h"
#include "engine/heap_file.h"
#include "workload/driver.h"

namespace turbobp {

// TPC-C-style OLTP workload: full schema, NURand access skew and the
// standard five-transaction mix (NewOrder 45%, Payment 43%, OrderStatus 4%,
// Delivery 4%, StockLevel 4%). Update-intensive and highly skewed — the
// workload where the paper's LC design dominates (up to 9.4x over noSSD).
//
// Deviations from the audited kit, documented in DESIGN.md:
//  * per-warehouse cardinalities scale by `row_scale` so page-count ratios
//    (DB : buffer pool : SSD) match the paper's setup at simulation scale;
//  * the growing tables (ORDERS / ORDER_LINE / HISTORY / NEW_ORDER) are
//    rings sized `order_capacity_factor` x the initial order count, so a
//    long run overwrites its oldest orders instead of growing unboundedly;
//  * customer lookups are by id (the 60%-by-last-name path is folded in);
//    the 1% intentional NewOrder aborts are omitted (redo-only logging).
struct TpccConfig {
  int warehouses = 8;
  double row_scale = 0.03;       // fraction of spec rows per warehouse
  int order_capacity_factor = 2;
  uint64_t seed = 42;
  bool commit_force = true;      // group-commit log force per transaction
  // Real-thread mode (the N-OS-thread driver): clients are pinned to home
  // warehouses (client_id % warehouses), remote accesses are disabled, and
  // the order/history rings are partitioned per warehouse so every row is
  // owned by exactly one warehouse latch. Populate() additionally
  // pre-extends the ring tables to full capacity so steady-state ring
  // writes are pure Updates and never move a heap-file frontier from two
  // threads at once. The single-threaded simulator leaves this off and
  // keeps the original global round-robin ring (bit-identical behavior).
  bool partition_by_client = false;
};

// Row images (compact but proportioned like the spec's row sizes).
struct TpccRows {
  struct Warehouse {
    uint64_t w_id;
    int64_t ytd_cents;
    char pad[80];
  };
  struct District {
    uint64_t d_key;  // w*10+d
    uint64_t next_o_id;
    int64_t ytd_cents;
    char pad[72];
  };
  struct Customer {
    uint64_t c_key;
    int64_t balance_cents;
    int64_t ytd_payment_cents;
    uint32_t payment_cnt;
    uint32_t delivery_cnt;
    char pad[224];
  };
  struct Order {
    uint64_t o_id;
    uint64_t c_key;
    uint32_t ol_cnt;
    uint32_t carrier_id;
    uint64_t entry_time;
    char pad[16];
  };
  struct OrderLine {
    uint64_t i_id;
    uint64_t supply_w;
    int64_t amount_cents;
    uint32_t quantity;
    uint32_t delivery_flag;
    char pad[16];
  };
  struct Item {
    uint64_t i_id;
    int64_t price_cents;
    char pad[80];
  };
  struct Stock {
    uint64_t s_key;  // w*items_per_wh + i
    int64_t ytd;
    uint32_t quantity;
    uint32_t order_cnt;
    uint32_t remote_cnt;
    char pad[164];
  };
  struct History {
    uint64_t c_key;
    uint64_t d_key;
    int64_t amount_cents;
    char pad[24];
  };
};
static_assert(sizeof(TpccRows::Warehouse) == 96);
static_assert(sizeof(TpccRows::District) == 96);
static_assert(sizeof(TpccRows::Customer) == 256);
static_assert(sizeof(TpccRows::Order) == 48);
static_assert(sizeof(TpccRows::OrderLine) == 48);
static_assert(sizeof(TpccRows::Item) == 96);
static_assert(sizeof(TpccRows::Stock) == 192);
static_assert(sizeof(TpccRows::History) == 48);

class TpccWorkload : public Workload {
 public:
  // Builds the schema and populates it (loader mode: free I/O, unlogged).
  // The database must be freshly created.
  static void Populate(Database* db, const TpccConfig& config);

  // Attaches to a populated database for a measurement run.
  TpccWorkload(Database* db, const TpccConfig& config);

  std::string name() const override { return "TPC-C"; }
  bool RunTransaction(int client_id, IoContext& ctx) override;
  // Safe for concurrent RunTransaction calls iff partitioned (the threaded
  // driver serializes non-thread-safe workloads behind a global latch).
  bool thread_safe() const override { return partitioned_; }

  // Derived cardinalities.
  int64_t customers_per_district() const { return customers_per_district_; }
  int64_t items() const { return items_; }
  int64_t initial_orders_per_district() const { return init_orders_; }

  // Approximate total data pages a database with this config occupies
  // (used by the benches to hit the paper's size ratios).
  static uint64_t EstimateDbPages(const TpccConfig& config,
                                  uint32_t page_bytes);

  // Per-transaction counters.
  int64_t new_orders() const { return new_orders_.load(); }
  int64_t payments() const { return payments_.load(); }
  int64_t order_statuses() const { return order_statuses_.load(); }
  int64_t deliveries() const { return deliveries_.load(); }
  int64_t stock_levels() const { return stock_levels_.load(); }

 private:
  struct Derived {
    int64_t customers_per_district;
    int64_t items;
    int64_t stock_per_wh;
    int64_t init_orders_per_district;
    int64_t order_capacity;     // ring size (rows)
    int64_t max_lines;          // order lines per order slot
  };
  static Derived DeriveSizes(const TpccConfig& config);

  // Per-home-warehouse mutable state (partitioned mode). The warehouse
  // latch is held for a whole transaction on that warehouse, which makes
  // every heap-row read-modify-write on warehouse-owned rows atomic; the
  // shared B+-trees get their own reader/writer latches below.
  struct WarehouseState {
    std::mutex mu;
    uint64_t order_seq = 0;    // per-warehouse orders ever created
    uint64_t history_seq = 0;
    Rng rng{0};
  };
  // Per-transaction environment: the home warehouse (or -1 = pick at
  // random, sim mode), the RNG stream to draw from, and the warehouse
  // state (nullptr in sim mode — the global ring cursors are used).
  struct TxnEnv {
    int home_w = -1;
    Rng* rng = nullptr;
    WarehouseState* ws = nullptr;
  };

  bool DoTransaction(TxnEnv& env, IoContext& ctx);
  void NewOrder(TxnEnv& env, IoContext& ctx);
  void Payment(TxnEnv& env, IoContext& ctx);
  void OrderStatus(TxnEnv& env, IoContext& ctx);
  void Delivery(TxnEnv& env, IoContext& ctx);
  void StockLevel(TxnEnv& env, IoContext& ctx);

  // Maps the j-th order (or history row) ever created by warehouse `w` to
  // its ring slot. Initial orders are contiguous per warehouse
  // ([w*wh_init_, (w+1)*wh_init_)); growth slots follow after all initial
  // regions, again contiguous per warehouse — Populate's layout is
  // byte-identical to the global ring, only the recycling order becomes
  // warehouse-local.
  uint64_t PartitionSlot(int w, uint64_t j) const;

  uint64_t DistrictKey(int w, int d) const {
    return static_cast<uint64_t>(w) * 10 + static_cast<uint64_t>(d);
  }
  uint64_t CustomerKey(uint64_t d_key, int64_t c) const {
    return d_key * static_cast<uint64_t>(customers_per_district_) +
           static_cast<uint64_t>(c);
  }
  // Ring-aware row write: Update inside the populated prefix, Append at the
  // growth frontier.
  void WriteRingRow(HeapFile& file, uint64_t row, std::span<const uint8_t> data,
                    uint64_t txn, IoContext& ctx);

  int64_t NuRandCustomer(Rng& rng);
  int64_t NuRandItem(Rng& rng);

  // Index keys wrap o_id around the per-district ring size so the B+-tree
  // key space (and hence its page footprint) stays bounded while o_ids keep
  // growing monotonically in the order rows themselves.
  uint64_t OidKey(uint64_t prefix, uint64_t o_id) const;

  Database* db_;
  TpccConfig config_;
  Rng rng_;
  int64_t customers_per_district_;
  int64_t items_;
  int64_t stock_per_wh_;
  int64_t init_orders_;
  int64_t order_capacity_;
  int64_t max_lines_;
  uint64_t oid_ring_ = 1;
  std::atomic<uint64_t> next_txn_id_{1};

  HeapFile warehouse_, district_, customer_, orders_, order_line_, item_,
      stock_, history_;
  BPlusTree orders_idx_;       // (d_key<<24 | o_id) -> order row
  BPlusTree orders_by_cust_;   // (c_key<<24 | o_id) -> order row
  BPlusTree new_order_idx_;    // (d_key<<24 | o_id) -> order row

  // Ring cursors (sim mode: order slots are allocated globally round-robin
  // by the single driver thread; partitioned mode uses the per-warehouse
  // cursors in wh_ instead and never touches these).
  uint64_t order_seq_ = 0;     // total orders ever created
  uint64_t history_seq_ = 0;

  // Partitioned real-thread mode.
  bool partitioned_ = false;
  uint64_t wh_init_ = 0;  // initial orders per warehouse (10 districts)
  uint64_t wh_ring_ = 0;  // ring slots per warehouse
  std::vector<std::unique_ptr<WarehouseState>> wh_;
  // Tree latches: the three indexes are shared across warehouses, so
  // structural changes (Insert/Delete may split or merge nodes) take the
  // writer side and lookups/scans the reader side. Taken under a warehouse
  // latch, never the other way around; no-ops in sim mode.
  mutable std::shared_mutex orders_idx_mu_;
  mutable std::shared_mutex cust_idx_mu_;
  mutable std::shared_mutex new_order_idx_mu_;

  std::atomic<int64_t> new_orders_{0}, payments_{0}, order_statuses_{0},
      deliveries_{0}, stock_levels_{0};
};

}  // namespace turbobp

#endif  // TURBOBP_WORKLOAD_TPCC_H_
