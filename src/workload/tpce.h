#ifndef TURBOBP_WORKLOAD_TPCE_H_
#define TURBOBP_WORKLOAD_TPCE_H_

#include <string>

#include "common/rng.h"
#include "engine/bplus_tree.h"
#include "engine/heap_file.h"
#include "workload/driver.h"

namespace turbobp {

// TPC-E-style OLTP workload: read-intensive (roughly 9 reads : 1 write at
// the transaction-mix level, versus TPC-C's 2:1 with updates), moderately
// skewed. The paper uses it to show that when updates are rare the three
// SSD designs and TAC converge (Figure 5 d-f), with the peak speedup when
// the working set just fits the SSD (20K customers).
//
// The mix mirrors the spec's transaction weights: Trade-Order 10%,
// Trade-Result 10% (the tpsE metric), Trade-Status 19%, Customer-Position
// 13%, Market-Watch 18%, Security-Detail 14%, Trade-Lookup 8%,
// Trade-Update 2%, Market-Feed 1%, Broker-Volume 5%. Hot traffic goes to
// accounts, holdings, securities and *recent* trades; Trade-Lookup/Update
// sample uniformly over the whole trade history — the cold random tail.
struct TpceConfig {
  int64_t customers = 5000;
  int64_t trades_per_customer = 60;  // initial trade-history depth
  int64_t holdings_per_customer = 10;
  uint64_t seed = 7;
  bool commit_force = true;
};

struct TpceRows {
  struct Customer {
    uint64_t c_id;
    uint64_t tier;
    char pad[112];
  };
  struct Account {
    uint64_t ca_id;
    int64_t balance_cents;
    char pad[80];
  };
  struct Security {
    uint64_t s_id;
    int64_t last_price_cents;
    char pad[112];
  };
  struct LastTrade {  // hot price ticker, one row per security
    uint64_t s_id;
    int64_t price_cents;
    uint64_t trade_count;
    char pad[8];
  };
  struct Trade {
    uint64_t t_id;
    uint64_t ca_id;
    uint64_t s_id;
    uint32_t status;  // 0 pending, 1 completed
    uint32_t qty;
    int64_t price_cents;
    char pad[88];
  };
  struct Holding {
    uint64_t h_id;  // account * holdings_per_customer + slot
    uint64_t s_id;
    uint32_t qty;
    uint32_t pad0;
    int64_t cost_basis_cents;
    char pad[32];
  };
};
static_assert(sizeof(TpceRows::Customer) == 128);
static_assert(sizeof(TpceRows::Account) == 96);
static_assert(sizeof(TpceRows::Security) == 128);
static_assert(sizeof(TpceRows::LastTrade) == 32);
static_assert(sizeof(TpceRows::Trade) == 128);
static_assert(sizeof(TpceRows::Holding) == 64);

class TpceWorkload : public Workload {
 public:
  static void Populate(Database* db, const TpceConfig& config);

  TpceWorkload(Database* db, const TpceConfig& config);

  std::string name() const override { return "TPC-E"; }
  bool RunTransaction(int client_id, IoContext& ctx) override;

  static uint64_t EstimateDbPages(const TpceConfig& config,
                                  uint32_t page_bytes);

  int64_t trade_results() const { return trade_results_; }

 private:
  void TradeOrder(IoContext& ctx);
  void TradeResult(IoContext& ctx);
  void TradeStatus(IoContext& ctx);
  void CustomerPosition(IoContext& ctx);
  void MarketWatch(IoContext& ctx);
  void SecurityDetail(IoContext& ctx);
  void TradeLookup(IoContext& ctx);
  void TradeUpdate(IoContext& ctx);
  void MarketFeed(IoContext& ctx);
  void BrokerVolume(IoContext& ctx);

  int64_t PickAccount();   // skewed (Zipf)
  int64_t PickSecurity();  // skewed (Zipf)
  uint64_t PickRecentTrade();
  uint64_t PickAnyTrade();
  void ReadTrade(uint64_t t_row, IoContext& ctx);

  Database* db_;
  TpceConfig config_;
  Rng rng_;
  int64_t securities_;
  uint64_t trade_capacity_;
  uint64_t next_txn_id_ = 1;
  uint64_t trade_seq_ = 0;

  HeapFile customer_, account_, security_, last_trade_, trade_, holding_;
  BPlusTree trades_by_account_;  // (ca_id<<26 | t_seq_low) -> trade row

  int64_t trade_results_ = 0;
};

}  // namespace turbobp

#endif  // TURBOBP_WORKLOAD_TPCE_H_
