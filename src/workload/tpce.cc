#include "workload/tpce.h"

#include <algorithm>
#include <vector>

#include "common/status.h"

namespace turbobp {

namespace {

constexpr uint64_t kTradeSeqBits = 26;
constexpr double kZipfTheta = 0.8;

template <typename Row>
std::span<const uint8_t> AsBytes(const Row& row) {
  return {reinterpret_cast<const uint8_t*>(&row), sizeof(Row)};
}
template <typename Row>
std::span<uint8_t> AsMutableBytes(Row& row) {
  return {reinterpret_cast<uint8_t*>(&row), sizeof(Row)};
}

int64_t SecuritiesFor(const TpceConfig& c) {
  // Spec ratio: 685 securities per 1000 customers.
  return std::max<int64_t>(100, c.customers * 685 / 1000);
}

}  // namespace

uint64_t TpceWorkload::EstimateDbPages(const TpceConfig& config,
                                       uint32_t page_bytes) {
  const uint64_t payload = page_bytes - kPageHeaderSize;
  auto pages = [payload](uint64_t rows, uint64_t row_bytes) {
    const uint64_t per = payload / row_bytes;
    return (rows + per - 1) / per;
  };
  const uint64_t c = static_cast<uint64_t>(config.customers);
  const uint64_t trades =
      c * static_cast<uint64_t>(config.trades_per_customer) * 2;  // ring
  uint64_t total = 0;
  total += pages(c, sizeof(TpceRows::Customer));
  total += pages(c, sizeof(TpceRows::Account));
  total += pages(static_cast<uint64_t>(SecuritiesFor(config)),
                 sizeof(TpceRows::Security));
  total += pages(static_cast<uint64_t>(SecuritiesFor(config)),
                 sizeof(TpceRows::LastTrade));
  total += pages(trades, sizeof(TpceRows::Trade));
  total += pages(c * static_cast<uint64_t>(config.holdings_per_customer),
                 sizeof(TpceRows::Holding));
  total += trades * 18 / payload + 3;  // trades_by_account index
  // Headroom for page rounding and index growth via splits.
  return total + total / 8 + 64;
}

void TpceWorkload::Populate(Database* db, const TpceConfig& config) {
  TURBOBP_CHECK(db != nullptr);
  IoContext ctx = db->system().MakeContext(/*charge=*/false);
  Rng rng(config.seed);
  const uint64_t c = static_cast<uint64_t>(config.customers);
  const int64_t securities = SecuritiesFor(config);
  const uint64_t init_trades =
      c * static_cast<uint64_t>(config.trades_per_customer);
  const uint64_t trade_capacity = init_trades * 2;

  HeapFile customer =
      HeapFile::Create(db, "e_customer", sizeof(TpceRows::Customer), c);
  HeapFile account =
      HeapFile::Create(db, "e_account", sizeof(TpceRows::Account), c);
  HeapFile security = HeapFile::Create(db, "e_security",
                                       sizeof(TpceRows::Security),
                                       static_cast<uint64_t>(securities));
  HeapFile last_trade = HeapFile::Create(db, "e_last_trade",
                                         sizeof(TpceRows::LastTrade),
                                         static_cast<uint64_t>(securities));
  HeapFile trade =
      HeapFile::Create(db, "e_trade", sizeof(TpceRows::Trade), trade_capacity);
  HeapFile holding = HeapFile::Create(
      db, "e_holding", sizeof(TpceRows::Holding),
      c * static_cast<uint64_t>(config.holdings_per_customer));
  BPlusTree trades_by_account = BPlusTree::Create(db, "e_trades_by_acct", ctx);

  for (uint64_t i = 0; i < c; ++i) {
    TpceRows::Customer row{};
    row.c_id = i;
    row.tier = 1 + rng.Uniform(3);
    customer.Append(AsBytes(row), 0, ctx);
    TpceRows::Account arow{};
    arow.ca_id = i;
    arow.balance_cents = 1000000;
    account.Append(AsBytes(arow), 0, ctx);
  }
  for (int64_t i = 0; i < securities; ++i) {
    TpceRows::Security row{};
    row.s_id = static_cast<uint64_t>(i);
    row.last_price_cents = 1000 + static_cast<int64_t>(rng.Uniform(99000));
    security.Append(AsBytes(row), 0, ctx);
    TpceRows::LastTrade lt{};
    lt.s_id = static_cast<uint64_t>(i);
    lt.price_cents = row.last_price_cents;
    last_trade.Append(AsBytes(lt), 0, ctx);
  }
  for (uint64_t i = 0;
       i < c * static_cast<uint64_t>(config.holdings_per_customer); ++i) {
    TpceRows::Holding row{};
    row.h_id = i;
    row.s_id = rng.Uniform(static_cast<uint64_t>(securities));
    row.qty = 100;
    row.cost_basis_cents = 5000;
    holding.Append(AsBytes(row), 0, ctx);
  }
  std::vector<std::pair<uint64_t, uint64_t>> idx;
  idx.reserve(init_trades);
  for (uint64_t t = 0; t < init_trades; ++t) {
    TpceRows::Trade row{};
    row.t_id = t;
    row.ca_id = rng.Uniform(c);
    row.s_id = rng.Uniform(static_cast<uint64_t>(securities));
    row.status = 1;
    row.qty = 100;
    row.price_cents = 5000;
    trade.Append(AsBytes(row), 0, ctx);
    idx.emplace_back((row.ca_id << kTradeSeqBits) | (t % trade_capacity), t);
  }
  std::sort(idx.begin(), idx.end());
  trades_by_account.BulkLoad(idx, ctx);

  db->pool().FlushAllDirty(ctx, /*for_checkpoint=*/false);
  db->pool().Reset();
}

TpceWorkload::TpceWorkload(Database* db, const TpceConfig& config)
    : db_(db), config_(config), rng_(config.seed ^ 0xE11E) {
  securities_ = SecuritiesFor(config);
  customer_ = HeapFile::Attach(db, "e_customer");
  account_ = HeapFile::Attach(db, "e_account");
  security_ = HeapFile::Attach(db, "e_security");
  last_trade_ = HeapFile::Attach(db, "e_last_trade");
  trade_ = HeapFile::Attach(db, "e_trade");
  holding_ = HeapFile::Attach(db, "e_holding");
  trades_by_account_ = BPlusTree::Attach(db, "e_trades_by_acct");
  trade_seq_ = trade_.row_count();
  trade_capacity_ = trade_.capacity_rows();
}

int64_t TpceWorkload::PickAccount() {
  return rng_.Zipf(config_.customers, kZipfTheta);
}

int64_t TpceWorkload::PickSecurity() {
  return rng_.Zipf(securities_, kZipfTheta);
}

uint64_t TpceWorkload::PickRecentTrade() {
  // The hot tail: the most recent ~5% of trades.
  const uint64_t window =
      std::max<uint64_t>(1, trade_capacity_ / 20);
  const uint64_t back = rng_.Uniform(std::min(trade_seq_, window));
  return (trade_seq_ - 1 - back) % trade_capacity_;
}

uint64_t TpceWorkload::PickAnyTrade() {
  return rng_.Uniform(std::min<uint64_t>(trade_seq_, trade_capacity_));
}

void TpceWorkload::ReadTrade(uint64_t t_row, IoContext& ctx) {
  TpceRows::Trade row;
  trade_.Read(trade_.RidOfRow(t_row), AsMutableBytes(row), AccessKind::kRandom,
              ctx);
}

bool TpceWorkload::RunTransaction(int client_id, IoContext& ctx) {
  const uint64_t pick = rng_.Uniform(100);
  bool metric = false;
  if (pick < 10) {
    TradeOrder(ctx);
  } else if (pick < 20) {
    TradeResult(ctx);
    metric = true;
  } else if (pick < 39) {
    TradeStatus(ctx);
  } else if (pick < 52) {
    CustomerPosition(ctx);
  } else if (pick < 70) {
    MarketWatch(ctx);
  } else if (pick < 84) {
    SecurityDetail(ctx);
  } else if (pick < 92) {
    TradeLookup(ctx);
  } else if (pick < 94) {
    TradeUpdate(ctx);
  } else if (pick < 95) {
    MarketFeed(ctx);
  } else {
    BrokerVolume(ctx);
  }
  if (config_.commit_force) db_->system().log().CommitForce(ctx);
  return metric;
}

void TpceWorkload::TradeOrder(IoContext& ctx) {
  const uint64_t txn = next_txn_id_++;
  const int64_t ca = PickAccount();
  const int64_t s = PickSecurity();
  TpceRows::Customer crow;
  customer_.Read(customer_.RidOfRow(static_cast<uint64_t>(ca)),
                 AsMutableBytes(crow), AccessKind::kRandom, ctx);
  TpceRows::Account arow;
  account_.Read(account_.RidOfRow(static_cast<uint64_t>(ca)),
                AsMutableBytes(arow), AccessKind::kRandom, ctx);
  TpceRows::Security srow;
  security_.Read(security_.RidOfRow(static_cast<uint64_t>(s)),
                 AsMutableBytes(srow), AccessKind::kRandom, ctx);

  const uint64_t t_row = trade_seq_ % trade_capacity_;
  const uint64_t t_seq = trade_seq_++;
  TpceRows::Trade trow{};
  trow.t_id = t_seq;
  trow.ca_id = static_cast<uint64_t>(ca);
  trow.s_id = static_cast<uint64_t>(s);
  trow.status = 0;  // pending; Trade-Result completes it
  trow.qty = 100;
  trow.price_cents = srow.last_price_cents;
  if (t_row < trade_.row_count()) {
    // Recycling a ring slot: purge the superseded trade's index entry so
    // the index stays bounded (keys wrap with the ring).
    TpceRows::Trade old;
    trade_.Read(trade_.RidOfRow(t_row), AsMutableBytes(old),
                AccessKind::kRandom, ctx);
    trades_by_account_.Delete(
        (old.ca_id << kTradeSeqBits) | (old.t_id % trade_capacity_), txn, ctx);
    trade_.Update(trade_.RidOfRow(t_row), AsBytes(trow), txn, ctx);
  } else {
    trade_.Append(AsBytes(trow), txn, ctx);
  }
  trades_by_account_.Insert(
      (trow.ca_id << kTradeSeqBits) | (t_seq % trade_capacity_), t_row, txn,
      ctx);
}

void TpceWorkload::TradeResult(IoContext& ctx) {
  ++trade_results_;
  const uint64_t txn = next_txn_id_++;
  const uint64_t t_row = PickRecentTrade();
  TpceRows::Trade trow;
  const Rid trid = trade_.RidOfRow(t_row);
  trade_.Read(trid, AsMutableBytes(trow), AccessKind::kRandom, ctx);
  trow.status = 1;
  trade_.Update(trid, AsBytes(trow), txn, ctx);

  TpceRows::Account arow;
  const Rid arid = account_.RidOfRow(trow.ca_id % account_.row_count());
  account_.Read(arid, AsMutableBytes(arow), AccessKind::kRandom, ctx);
  arow.balance_cents -= trow.price_cents;
  account_.Update(arid, AsBytes(arow), txn, ctx);

  const uint64_t h_row =
      (trow.ca_id * static_cast<uint64_t>(config_.holdings_per_customer) +
       trow.s_id % static_cast<uint64_t>(config_.holdings_per_customer)) %
      holding_.row_count();
  TpceRows::Holding hrow;
  const Rid hrid = holding_.RidOfRow(h_row);
  holding_.Read(hrid, AsMutableBytes(hrow), AccessKind::kRandom, ctx);
  hrow.qty += trow.qty;
  holding_.Update(hrid, AsBytes(hrow), txn, ctx);

  TpceRows::LastTrade lt;
  const Rid ltrid = last_trade_.RidOfRow(trow.s_id %
                                         static_cast<uint64_t>(securities_));
  last_trade_.Read(ltrid, AsMutableBytes(lt), AccessKind::kRandom, ctx);
  lt.price_cents = trow.price_cents;
  lt.trade_count++;
  last_trade_.Update(ltrid, AsBytes(lt), txn, ctx);
}

void TpceWorkload::TradeStatus(IoContext& ctx) {
  const int64_t ca = PickAccount();
  TpceRows::Account arow;
  account_.Read(account_.RidOfRow(static_cast<uint64_t>(ca)),
                AsMutableBytes(arow), AccessKind::kRandom, ctx);
  // The 50 most recent trades of this account.
  std::vector<uint64_t> rows;
  trades_by_account_.ScanRange(
      static_cast<uint64_t>(ca) << kTradeSeqBits,
      ((static_cast<uint64_t>(ca) + 1) << kTradeSeqBits) - 1,
      [&](uint64_t, uint64_t row) {
        rows.push_back(row);
        return true;
      },
      ctx);
  const size_t take = std::min<size_t>(rows.size(), 50);
  for (size_t i = rows.size() - take; i < rows.size(); ++i) {
    ReadTrade(rows[i] % trade_capacity_, ctx);
  }
}

void TpceWorkload::CustomerPosition(IoContext& ctx) {
  const int64_t ca = PickAccount();
  TpceRows::Customer crow;
  customer_.Read(customer_.RidOfRow(static_cast<uint64_t>(ca)),
                 AsMutableBytes(crow), AccessKind::kRandom, ctx);
  TpceRows::Account arow;
  account_.Read(account_.RidOfRow(static_cast<uint64_t>(ca)),
                AsMutableBytes(arow), AccessKind::kRandom, ctx);
  for (int64_t h = 0; h < config_.holdings_per_customer; ++h) {
    const uint64_t h_row =
        static_cast<uint64_t>(ca) *
            static_cast<uint64_t>(config_.holdings_per_customer) +
        static_cast<uint64_t>(h);
    TpceRows::Holding hrow;
    holding_.Read(holding_.RidOfRow(h_row % holding_.row_count()),
                  AsMutableBytes(hrow), AccessKind::kRandom, ctx);
    TpceRows::LastTrade lt;
    last_trade_.Read(
        last_trade_.RidOfRow(hrow.s_id % static_cast<uint64_t>(securities_)),
        AsMutableBytes(lt), AccessKind::kRandom, ctx);
  }
}

void TpceWorkload::MarketWatch(IoContext& ctx) {
  // ~100 price probes against the hot ticker table (mostly buffer hits).
  for (int i = 0; i < 100; ++i) {
    const int64_t s = PickSecurity();
    TpceRows::LastTrade lt;
    last_trade_.Read(last_trade_.RidOfRow(static_cast<uint64_t>(s)),
                     AsMutableBytes(lt), AccessKind::kRandom, ctx);
  }
}

void TpceWorkload::SecurityDetail(IoContext& ctx) {
  const int64_t s = PickSecurity();
  TpceRows::Security srow;
  security_.Read(security_.RidOfRow(static_cast<uint64_t>(s)),
                 AsMutableBytes(srow), AccessKind::kRandom, ctx);
  for (int i = 0; i < 5; ++i) {
    const uint64_t other = rng_.Uniform(static_cast<uint64_t>(securities_));
    security_.Read(security_.RidOfRow(other), AsMutableBytes(srow),
                   AccessKind::kRandom, ctx);
  }
}

void TpceWorkload::TradeLookup(IoContext& ctx) {
  // Uniform over the whole history: the cold random-read tail.
  for (int i = 0; i < 8; ++i) ReadTrade(PickAnyTrade(), ctx);
}

void TpceWorkload::TradeUpdate(IoContext& ctx) {
  const uint64_t txn = next_txn_id_++;
  for (int i = 0; i < 8; ++i) {
    const uint64_t t_row = PickAnyTrade();
    TpceRows::Trade trow;
    const Rid trid = trade_.RidOfRow(t_row);
    trade_.Read(trid, AsMutableBytes(trow), AccessKind::kRandom, ctx);
    trow.qty += 1;
    trade_.Update(trid, AsBytes(trow), txn, ctx);
  }
}

void TpceWorkload::MarketFeed(IoContext& ctx) {
  const uint64_t txn = next_txn_id_++;
  for (int i = 0; i < 20; ++i) {
    const int64_t s = PickSecurity();
    TpceRows::LastTrade lt;
    const Rid ltrid = last_trade_.RidOfRow(static_cast<uint64_t>(s));
    last_trade_.Read(ltrid, AsMutableBytes(lt), AccessKind::kRandom, ctx);
    lt.price_cents += static_cast<int64_t>(rng_.Uniform(21)) - 10;
    last_trade_.Update(ltrid, AsBytes(lt), txn, ctx);
  }
}

void TpceWorkload::BrokerVolume(IoContext& ctx) {
  for (int i = 0; i < 20; ++i) ReadTrade(PickAnyTrade(), ctx);
}

}  // namespace turbobp
