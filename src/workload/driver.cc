#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace turbobp {

Driver::Driver(DbSystem* system, Workload* workload,
               const DriverOptions& options)
    : system_(system), workload_(workload), options_(options) {
  TURBOBP_CHECK(system != nullptr);
  TURBOBP_CHECK(workload != nullptr);
  result_.throughput = TimeSeries(options.sample_width);
  result_.disk_read_bytes = TimeSeries(options.sample_width);
  result_.disk_write_bytes = TimeSeries(options.sample_width);
  result_.ssd_read_bytes = TimeSeries(options.sample_width);
  result_.ssd_write_bytes = TimeSeries(options.sample_width);
}

void Driver::ClientStep(int client_id) {
  SimExecutor& ex = system_->executor();
  if (ex.now() >= end_) return;  // run over: client retires
  IoContext ctx = system_->MakeContext();
  const Time begin = ctx.now;
  const bool metric = workload_->RunTransaction(client_id, ctx);
  TURBOBP_CHECK(ctx.now >= begin);
  ++result_.total_txns;
  result_.txn_latency.Record(ctx.now - begin);
  result_.total_latch_wait += ctx.latch_wait;
  if (metric && ctx.now <= end_) {
    ++result_.metric_txns;
    result_.throughput.Record(ctx.now - start_);
  }
  // Back-to-back execution: the next transaction starts when this one's
  // last I/O completed.
  ex.ScheduleAt(std::max(ctx.now, ex.now()),
                [this, client_id] { ClientStep(client_id); });
}

DriverResult Driver::Run() {
  if (options_.threads > 0) return RunThreaded();
  SimExecutor& ex = system_->executor();
  start_ = ex.now();
  end_ = start_ + options_.duration;
  result_.workload = workload_->name();
  result_.design = ToString(system_->config().design);

  if (options_.record_traffic) {
    system_->disk_array().AttachTraffic(&result_.disk_read_bytes,
                                        &result_.disk_write_bytes);
    if (system_->ssd_device() != nullptr) {
      system_->ssd_device()->timeline().AttachTraffic(&result_.ssd_read_bytes,
                                                      &result_.ssd_write_bytes);
    }
  }

  system_->buffer_pool().ResetStats();
  for (int c = 0; c < options_.num_clients; ++c) {
    // Stagger client starts by a few microseconds for determinism without
    // a thundering herd on the first event.
    ex.ScheduleAt(start_ + c, [this, c] { ClientStep(c); });
  }
  ex.RunUntil(end_);
  // Let in-flight transactions and background work drain (they no longer
  // count); periodic checkpoints and the SSD patrol scrubber must stop
  // rescheduling first.
  system_->checkpoint().StopPeriodic();
  system_->ssd_manager().StopBackground();
  ex.RunUntilIdle();

  result_.run_end = end_;
  result_.overall_rate =
      static_cast<double>(result_.metric_txns) / ToSeconds(options_.duration);
  result_.steady_rate = result_.throughput.AverageRate(
      options_.duration - options_.steady_window, options_.duration);
  result_.bp = system_->buffer_pool().stats();
  result_.ssd = system_->ssd_manager().stats();
  result_.ckpt = system_->checkpoint().stats();

  if (options_.record_traffic) {
    system_->disk_array().AttachTraffic(nullptr, nullptr);
    if (system_->ssd_device() != nullptr) {
      system_->ssd_device()->timeline().AttachTraffic(nullptr, nullptr);
    }
  }
  return result_;
}

DriverResult Driver::RunThreaded() {
  SimExecutor& ex = system_->executor();
  // Anchor the run at the devices' quiesced frontier, not the executor
  // clock: population and warmup booked virtual service time on the device
  // timelines that the executor never chased (sim benches pay it in free
  // virtual time). Started below the frontier, every wall-anchored context
  // would real-sleep off that backlog before its first transaction
  // completed.
  Time anchor = ex.now();
  StripedDiskArray& disks = system_->disk_array();
  for (int i = 0; i < disks.num_spindles(); ++i) {
    anchor = std::max(anchor, disks.spindle(i).timeline().free_at());
  }
  if (system_->ssd_device() != nullptr) {
    anchor = std::max(anchor, system_->ssd_device()->timeline().free_at());
  }
  if (system_->log_device() != nullptr) {
    anchor = std::max(anchor, system_->log_device()->timeline().free_at());
  }
  ex.RunUntil(anchor);
  ex.set_concurrent(true);
  start_ = std::max(ex.now(), anchor);
  end_ = start_ + options_.duration;
  result_.workload = workload_->name();
  result_.design = ToString(system_->config().design);
  result_.threads = options_.threads;

  system_->buffer_pool().ResetStats();
  const LatchWaitSnapshot lw0 = LatchWaitStats::Instance().Snapshot();

  // Wall anchor: virtual microseconds since start_ == wall microseconds
  // since this point.
  const auto wall0 = std::chrono::steady_clock::now();
  auto wall_us = [wall0] {
    return static_cast<Time>(std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - wall0).count());
  };

  // Pump thread: the single event-runner. Background actors stay scheduled
  // on the executor; the pump chases the wall-anchored virtual clock so
  // they fire roughly when a wall observer expects them.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ex.RunUntil(start_ + wall_us());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Per-thread aggregates, merged after the join — clients never share a
  // counter or series while running.
  struct ThreadAgg {
    int64_t total = 0;
    int64_t metric = 0;
    Time latch_wait = 0;
    Histogram latency;
    TimeSeries throughput{Seconds(6)};
  };
  std::vector<ThreadAgg> agg(static_cast<size_t>(options_.threads));
  for (auto& a : agg) a.throughput = TimeSeries(options_.sample_width);

  // Workloads that are not safe for concurrent transactions run serialized
  // behind one latch: correct, but such a run only measures engine-side
  // concurrency (group commit, background actors), not client scale-out.
  std::mutex serialize_mu;
  const bool serialize = !workload_->thread_safe();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadAgg& a = agg[static_cast<size_t>(t)];
      while (true) {
        const Time offset = wall_us();
        if (offset >= options_.duration) break;
        IoContext ctx = system_->MakeContext();
        // Real-thread blocking paths: no executor, clock anchored to the
        // wall. Modelled device waits advance ctx.now past the anchor;
        // the next transaction re-anchors.
        ctx.executor = nullptr;
        ctx.now = start_ + offset;
        ctx.real_sleep_scale = options_.real_sleep_scale;
        ctx.wall_anchored = true;
        ctx.wall_base = start_;
        ctx.wall_epoch = wall0;
        bool metric;
        if (serialize) {
          std::lock_guard<std::mutex> lock(serialize_mu);
          metric = workload_->RunTransaction(t, ctx);
        } else {
          metric = workload_->RunTransaction(t, ctx);
        }
        ++a.total;
        // Latency is the max of modeled completion and wall elapsed: real
        // blocking that never advances ctx.now (group-commit condvar parks,
        // OS mutex queues) still counts against the transaction.
        a.latency.Record(std::max(ctx.now - (start_ + offset),
                                  wall_us() - offset));
        a.latch_wait += ctx.latch_wait;
        if (metric) {
          ++a.metric;
          a.throughput.Record(offset);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  pump.join();

  // Drain: background actors stop rescheduling, then the (now single
  // threaded again) executor runs dry.
  system_->checkpoint().StopPeriodic();
  system_->ssd_manager().StopBackground();
  ex.RunUntilIdle();
  ex.set_concurrent(false);

  for (const ThreadAgg& a : agg) {
    result_.total_txns += a.total;
    result_.metric_txns += a.metric;
    result_.total_latch_wait += a.latch_wait;
    result_.txn_latency.Merge(a.latency);
    result_.throughput.Merge(a.throughput);
  }

  result_.run_end = end_;
  result_.overall_rate =
      static_cast<double>(result_.metric_txns) / ToSeconds(options_.duration);
  result_.steady_rate = result_.throughput.AverageRate(
      options_.duration - options_.steady_window, options_.duration);
  result_.bp = system_->buffer_pool().stats();
  result_.ssd = system_->ssd_manager().stats();
  result_.ckpt = system_->checkpoint().stats();

  const LatchWaitSnapshot lw1 = LatchWaitStats::Instance().Snapshot();
  for (int i = 0; i < kNumLatchClasses; ++i) {
    result_.latch_waits.waits[i] = lw1.waits[i] - lw0.waits[i];
    result_.latch_waits.wait_ns[i] = lw1.wait_ns[i] - lw0.wait_ns[i];
  }
  return result_;
}

}  // namespace turbobp
