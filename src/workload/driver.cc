#include "workload/driver.h"

#include <algorithm>

#include "common/status.h"

namespace turbobp {

Driver::Driver(DbSystem* system, Workload* workload,
               const DriverOptions& options)
    : system_(system), workload_(workload), options_(options) {
  TURBOBP_CHECK(system != nullptr);
  TURBOBP_CHECK(workload != nullptr);
  result_.throughput = TimeSeries(options.sample_width);
  result_.disk_read_bytes = TimeSeries(options.sample_width);
  result_.disk_write_bytes = TimeSeries(options.sample_width);
  result_.ssd_read_bytes = TimeSeries(options.sample_width);
  result_.ssd_write_bytes = TimeSeries(options.sample_width);
}

void Driver::ClientStep(int client_id) {
  SimExecutor& ex = system_->executor();
  if (ex.now() >= end_) return;  // run over: client retires
  IoContext ctx = system_->MakeContext();
  const Time begin = ctx.now;
  const bool metric = workload_->RunTransaction(client_id, ctx);
  TURBOBP_CHECK(ctx.now >= begin);
  ++result_.total_txns;
  result_.txn_latency.Record(ctx.now - begin);
  result_.total_latch_wait += ctx.latch_wait;
  if (metric && ctx.now <= end_) {
    ++result_.metric_txns;
    result_.throughput.Record(ctx.now - start_);
  }
  // Back-to-back execution: the next transaction starts when this one's
  // last I/O completed.
  ex.ScheduleAt(std::max(ctx.now, ex.now()),
                [this, client_id] { ClientStep(client_id); });
}

DriverResult Driver::Run() {
  SimExecutor& ex = system_->executor();
  start_ = ex.now();
  end_ = start_ + options_.duration;
  result_.workload = workload_->name();
  result_.design = ToString(system_->config().design);

  if (options_.record_traffic) {
    system_->disk_array().AttachTraffic(&result_.disk_read_bytes,
                                        &result_.disk_write_bytes);
    if (system_->ssd_device() != nullptr) {
      system_->ssd_device()->timeline().AttachTraffic(&result_.ssd_read_bytes,
                                                      &result_.ssd_write_bytes);
    }
  }

  system_->buffer_pool().ResetStats();
  for (int c = 0; c < options_.num_clients; ++c) {
    // Stagger client starts by a few microseconds for determinism without
    // a thundering herd on the first event.
    ex.ScheduleAt(start_ + c, [this, c] { ClientStep(c); });
  }
  ex.RunUntil(end_);
  // Let in-flight transactions and background work drain (they no longer
  // count); periodic checkpoints and the SSD patrol scrubber must stop
  // rescheduling first.
  system_->checkpoint().StopPeriodic();
  system_->ssd_manager().StopBackground();
  ex.RunUntilIdle();

  result_.run_end = end_;
  result_.overall_rate =
      static_cast<double>(result_.metric_txns) / ToSeconds(options_.duration);
  result_.steady_rate = result_.throughput.AverageRate(
      options_.duration - options_.steady_window, options_.duration);
  result_.bp = system_->buffer_pool().stats();
  result_.ssd = system_->ssd_manager().stats();
  result_.ckpt = system_->checkpoint().stats();

  if (options_.record_traffic) {
    system_->disk_array().AttachTraffic(nullptr, nullptr);
    if (system_->ssd_device() != nullptr) {
      system_->ssd_device()->timeline().AttachTraffic(nullptr, nullptr);
    }
  }
  return result_;
}

}  // namespace turbobp
