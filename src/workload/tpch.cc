#include "workload/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace turbobp {

namespace {

enum TableId {
  kLineItem = 0,
  kOrders = 1,
  kCustomer = 2,
  kPart = 3,
  kPartSupp = 4,
  kSupplier = 5,
  kNumTables = 6,
};

constexpr uint32_t kLinesPerOrder = 4;  // spec average; fixed for direct RIDs
constexpr uint32_t kScanOpPages = 8;    // one read-ahead window per op
constexpr uint32_t kLookupOpRows = 4;   // random lookups per op

struct Sizes {
  uint64_t orders;
  uint64_t lineitem;
  uint64_t customer;
  uint64_t part;
  uint64_t partsupp;
  uint64_t supplier;
};

Sizes SizesFor(const TpchConfig& c) {
  const double m = c.scale_factor * c.row_scale;
  Sizes s;
  s.orders = std::max<uint64_t>(200, static_cast<uint64_t>(1500000 * m));
  s.lineitem = s.orders * kLinesPerOrder;
  s.customer = std::max<uint64_t>(50, static_cast<uint64_t>(150000 * m));
  s.part = std::max<uint64_t>(50, static_cast<uint64_t>(200000 * m));
  s.partsupp = s.part * 4;
  s.supplier = std::max<uint64_t>(10, static_cast<uint64_t>(10000 * m));
  return s;
}

template <typename Row>
std::span<const uint8_t> AsBytes(const Row& row) {
  return {reinterpret_cast<const uint8_t*>(&row), sizeof(Row)};
}

double GeoMeanSeconds(const std::vector<TpchQueryResult>& timings) {
  double log_sum = 0.0;
  for (const auto& t : timings) {
    log_sum += std::log(std::max(1e-6, ToSeconds(t.elapsed)));
  }
  return std::exp(log_sum / static_cast<double>(timings.size()));
}

}  // namespace

uint64_t TpchWorkload::EstimateDbPages(const TpchConfig& config,
                                       uint32_t page_bytes) {
  const Sizes s = SizesFor(config);
  const uint64_t payload = page_bytes - kPageHeaderSize;
  auto pages = [payload](uint64_t rows, uint64_t row_bytes) {
    const uint64_t per = payload / row_bytes;
    return (rows + per - 1) / per;
  };
  // RF headroom: the orders/lineitem extents carry 3% extra capacity.
  uint64_t total = 0;
  total += pages(s.lineitem * 103 / 100, sizeof(TpchRows::LineItem));
  total += pages(s.orders * 103 / 100, sizeof(TpchRows::Order));
  total += pages(s.customer, sizeof(TpchRows::Customer));
  total += pages(s.part, sizeof(TpchRows::Part));
  total += pages(s.partsupp, sizeof(TpchRows::PartSupp));
  total += pages(s.supplier, sizeof(TpchRows::Supplier));
  return total;
}

void TpchWorkload::Populate(Database* db, const TpchConfig& config) {
  TURBOBP_CHECK(db != nullptr);
  IoContext ctx = db->system().MakeContext(/*charge=*/false);
  Rng rng(config.seed);
  const Sizes s = SizesFor(config);

  HeapFile lineitem =
      HeapFile::Create(db, "h_lineitem", sizeof(TpchRows::LineItem),
                       s.lineitem * 103 / 100);
  HeapFile orders = HeapFile::Create(db, "h_orders", sizeof(TpchRows::Order),
                                     s.orders * 103 / 100);
  HeapFile customer = HeapFile::Create(db, "h_customer",
                                       sizeof(TpchRows::Customer), s.customer);
  HeapFile part =
      HeapFile::Create(db, "h_part", sizeof(TpchRows::Part), s.part);
  HeapFile partsupp = HeapFile::Create(db, "h_partsupp",
                                       sizeof(TpchRows::PartSupp), s.partsupp);
  HeapFile supplier = HeapFile::Create(db, "h_supplier",
                                       sizeof(TpchRows::Supplier), s.supplier);

  for (uint64_t o = 0; o < s.orders; ++o) {
    TpchRows::Order row{};
    row.o_orderkey = o;
    row.o_custkey = rng.Uniform(s.customer);
    row.orderdate = static_cast<uint32_t>(rng.Uniform(2557));  // 7 years
    orders.Append(AsBytes(row), 0, ctx);
    for (uint32_t l = 0; l < kLinesPerOrder; ++l) {
      TpchRows::LineItem li{};
      li.l_orderkey = o;
      li.l_partkey = rng.Uniform(s.part);
      li.l_suppkey = rng.Uniform(s.supplier);
      li.quantity = 1 + static_cast<uint32_t>(rng.Uniform(50));
      li.extended_price_cents = static_cast<int64_t>(rng.Uniform(1000000));
      li.shipdate = row.orderdate + static_cast<uint32_t>(rng.Uniform(122));
      lineitem.Append(AsBytes(li), 0, ctx);
      row.total_price_cents += li.extended_price_cents;
    }
  }
  for (uint64_t i = 0; i < s.customer; ++i) {
    TpchRows::Customer row{};
    row.c_custkey = i;
    row.c_nationkey = rng.Uniform(25);
    customer.Append(AsBytes(row), 0, ctx);
  }
  for (uint64_t i = 0; i < s.part; ++i) {
    TpchRows::Part row{};
    row.p_partkey = i;
    row.retail_price_cents = 90000 + static_cast<int64_t>(rng.Uniform(20000));
    part.Append(AsBytes(row), 0, ctx);
    for (int j = 0; j < 4; ++j) {
      TpchRows::PartSupp ps{};
      ps.ps_partkey = i;
      ps.ps_suppkey = rng.Uniform(s.supplier);
      ps.avail_qty = static_cast<uint32_t>(rng.Uniform(9999));
      partsupp.Append(AsBytes(ps), 0, ctx);
    }
  }
  for (uint64_t i = 0; i < s.supplier; ++i) {
    TpchRows::Supplier row{};
    row.s_suppkey = i;
    row.s_nationkey = rng.Uniform(25);
    supplier.Append(AsBytes(row), 0, ctx);
  }

  db->pool().FlushAllDirty(ctx, /*for_checkpoint=*/false);
  db->pool().Reset();
}

TpchWorkload::TpchWorkload(Database* db, const TpchConfig& config)
    : db_(db), config_(config), rng_(config.seed ^ 0xDEC1) {
  tables_.resize(kNumTables);
  tables_[kLineItem] = HeapFile::Attach(db, "h_lineitem");
  tables_[kOrders] = HeapFile::Attach(db, "h_orders");
  tables_[kCustomer] = HeapFile::Attach(db, "h_customer");
  tables_[kPart] = HeapFile::Attach(db, "h_part");
  tables_[kPartSupp] = HeapFile::Attach(db, "h_partsupp");
  tables_[kSupplier] = HeapFile::Attach(db, "h_supplier");
  orders_rows_ = SizesFor(config).orders;
}

void TpchWorkload::AppendScan(std::vector<Op>* ops, int tbl, double fraction,
                              Rng& rng) {
  HeapFile& file = tables_[tbl];
  const uint64_t total = file.num_pages();
  const uint64_t want =
      std::max<uint64_t>(1, static_cast<uint64_t>(total * fraction));
  // A fractional scan reads a contiguous slice (a date-range segment).
  const uint64_t start = want >= total ? 0 : rng.Uniform(total - want);
  for (uint64_t p = 0; p < want; p += kScanOpPages) {
    ops->push_back(Op{Op::kScanWindow, tbl, start + p,
                      static_cast<uint32_t>(
                          std::min<uint64_t>(kScanOpPages, want - p)),
                      0});
  }
}

void TpchWorkload::AppendLookups(std::vector<Op>* ops, int tbl,
                                 uint64_t rows) {
  for (uint64_t r = 0; r < rows; r += kLookupOpRows) {
    ops->push_back(Op{Op::kRandomRows, tbl, 0, 0,
                      static_cast<uint32_t>(
                          std::min<uint64_t>(kLookupOpRows, rows - r))});
  }
}

void TpchWorkload::AppendOrderJoins(std::vector<Op>* ops, uint64_t orders) {
  for (uint64_t r = 0; r < orders; ++r) {
    ops->push_back(Op{Op::kOrderWithLines, 0, 0, 0, 1});
  }
}

std::vector<TpchWorkload::Op> TpchWorkload::CompileQuery(int q, Rng& rng) {
  std::vector<Op> ops;
  const Sizes s = SizesFor(config_);
  // Random-lookup volumes scale with table cardinality.
  const uint64_t li_pct = std::max<uint64_t>(1, s.lineitem / 100);
  const uint64_t ord_pct = std::max<uint64_t>(1, s.orders / 100);
  const uint64_t part_pct = std::max<uint64_t>(1, s.part / 100);
  const uint64_t ps_pct = std::max<uint64_t>(1, s.partsupp / 100);
  switch (q) {
    case 1:  // pricing summary: full LINEITEM scan
      AppendScan(&ops, kLineItem, 1.0, rng);
      break;
    case 2:  // minimum-cost supplier: random PART/PARTSUPP/SUPPLIER probing
      AppendScan(&ops, kPart, 0.1, rng);
      AppendLookups(&ops, kPartSupp, ps_pct * 2);
      AppendLookups(&ops, kSupplier, s.supplier / 10);
      break;
    case 3:  // shipping priority
      AppendScan(&ops, kCustomer, 1.0, rng);
      AppendScan(&ops, kOrders, 1.0, rng);
      AppendScan(&ops, kLineItem, 0.5, rng);
      break;
    case 4:  // order priority: ORDERS scan + LINEITEM existence probes
      AppendScan(&ops, kOrders, 0.25, rng);
      AppendOrderJoins(&ops, ord_pct * 4);
      break;
    case 5:  // local supplier volume
      AppendScan(&ops, kCustomer, 1.0, rng);
      AppendScan(&ops, kOrders, 0.3, rng);
      AppendScan(&ops, kLineItem, 0.3, rng);
      AppendScan(&ops, kSupplier, 1.0, rng);
      break;
    case 6:  // forecasting revenue change: LINEITEM range scan
      AppendScan(&ops, kLineItem, 0.15, rng);
      break;
    case 7:  // volume shipping
      AppendScan(&ops, kLineItem, 0.6, rng);
      AppendScan(&ops, kOrders, 1.0, rng);
      AppendScan(&ops, kCustomer, 1.0, rng);
      AppendScan(&ops, kSupplier, 1.0, rng);
      break;
    case 8:  // national market share
      AppendScan(&ops, kPart, 0.1, rng);
      AppendOrderJoins(&ops, ord_pct * 3);
      AppendScan(&ops, kCustomer, 1.0, rng);
      break;
    case 9:  // product type profit
      AppendScan(&ops, kPart, 0.2, rng);
      AppendScan(&ops, kLineItem, 1.0, rng);
      AppendLookups(&ops, kPartSupp, ps_pct * 5);
      break;
    case 10:  // returned items
      AppendScan(&ops, kLineItem, 0.25, rng);
      AppendScan(&ops, kOrders, 1.0, rng);
      AppendScan(&ops, kCustomer, 1.0, rng);
      break;
    case 11:  // important stock: PARTSUPP scan + supplier probes
      AppendScan(&ops, kPartSupp, 1.0, rng);
      AppendLookups(&ops, kSupplier, s.supplier / 25);
      break;
    case 12:  // shipping modes
      AppendScan(&ops, kLineItem, 1.0, rng);
      AppendLookups(&ops, kOrders, ord_pct * 2);
      break;
    case 13:  // customer distribution
      AppendScan(&ops, kCustomer, 1.0, rng);
      AppendScan(&ops, kOrders, 1.0, rng);
      break;
    case 14:  // promotion effect: month of LINEITEM + PART probes
      AppendScan(&ops, kLineItem, 0.08, rng);
      AppendLookups(&ops, kPart, part_pct * 2);
      break;
    case 15:  // top supplier
      AppendScan(&ops, kLineItem, 0.25, rng);
      AppendScan(&ops, kSupplier, 1.0, rng);
      break;
    case 16:  // parts/supplier relationship
      AppendScan(&ops, kPartSupp, 1.0, rng);
      AppendScan(&ops, kPart, 1.0, rng);
      break;
    case 17:  // small-quantity-order revenue: random LINEITEM lookups by part
      AppendLookups(&ops, kPart, part_pct);
      AppendLookups(&ops, kLineItem, li_pct);
      break;
    case 18:  // large volume customer
      AppendScan(&ops, kOrders, 1.0, rng);
      AppendScan(&ops, kLineItem, 1.0, rng);
      break;
    case 19:  // discounted revenue: LINEITEM probes via parts (index heavy)
      AppendLookups(&ops, kPart, part_pct / 2);
      AppendLookups(&ops, kLineItem, li_pct / 2);
      break;
    case 20:  // potential part promotion
      AppendScan(&ops, kPart, 0.2, rng);
      AppendLookups(&ops, kPartSupp, ps_pct * 2);
      AppendLookups(&ops, kLineItem, li_pct / 2);
      break;
    case 21:  // waiting suppliers
      AppendScan(&ops, kLineItem, 1.0, rng);
      AppendLookups(&ops, kOrders, ord_pct * 4);
      AppendScan(&ops, kSupplier, 1.0, rng);
      break;
    case 22:  // global sales opportunity
      AppendScan(&ops, kCustomer, 0.1, rng);
      AppendLookups(&ops, kOrders, ord_pct * 3);
      break;
    default:
      Panic(__FILE__, __LINE__, "unknown TPC-H query");
  }
  return ops;
}

void TpchWorkload::ExecuteOp(const Op& op, Rng& rng, IoContext& ctx) {
  switch (op.kind) {
    case Op::kScanWindow: {
      HeapFile& file = tables_[op.table];
      file.ScanRange(op.from_page, op.page_count, ctx, nullptr);
      break;
    }
    case Op::kRandomRows: {
      HeapFile& file = tables_[op.table];
      const uint64_t rows = file.row_count();
      if (rows == 0) break;
      std::vector<uint8_t> buf(file.info().row_bytes);
      for (uint32_t i = 0; i < op.row_count; ++i) {
        file.Read(file.RidOfRow(rng.Uniform(rows)), buf, AccessKind::kRandom,
                  ctx);
      }
      break;
    }
    case Op::kOrderWithLines: {
      HeapFile& orders = tables_[kOrders];
      HeapFile& lineitem = tables_[kLineItem];
      std::vector<uint8_t> buf(
          std::max(orders.info().row_bytes, lineitem.info().row_bytes));
      const uint64_t o = rng.Uniform(orders_rows_);
      orders.Read(orders.RidOfRow(o),
                  std::span<uint8_t>(buf.data(), orders.info().row_bytes),
                  AccessKind::kRandom, ctx);
      for (uint32_t l = 0; l < kLinesPerOrder; ++l) {
        lineitem.Read(
            lineitem.RidOfRow(o * kLinesPerOrder + l),
            std::span<uint8_t>(buf.data(), lineitem.info().row_bytes),
            AccessKind::kRandom, ctx);
      }
      break;
    }
  }
}

Time TpchWorkload::RunQuery(int q, IoContext& ctx) {
  const Time begin = ctx.now;
  Rng rng(config_.seed * 977 + static_cast<uint64_t>(q));
  for (const Op& op : CompileQuery(q, rng)) {
    ExecuteOp(op, rng, ctx);
  }
  return ctx.now - begin;
}

void TpchWorkload::RunRefresh(int which, IoContext& ctx) {
  // RF1 inserts (RF2 deletes) SF*1500 orders plus their lines — 0.1% of the
  // table, per the spec. Deletion is modeled as overwriting the oldest
  // rows (redo-only engine), which produces the same write pattern.
  const uint64_t count = std::max<uint64_t>(1, orders_rows_ / 1000);
  HeapFile& orders = tables_[kOrders];
  HeapFile& lineitem = tables_[kLineItem];
  const uint64_t txn = next_txn_id_++;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t row =
        which == 1 ? (orders_rows_ + rf_cursor_) % orders.capacity_rows()
                   : rf_cursor_ % orders_rows_;
    ++rf_cursor_;
    TpchRows::Order orow{};
    orow.o_orderkey = row;
    orow.o_custkey = rng_.Uniform(tables_[kCustomer].row_count());
    if (row < orders.row_count()) {
      orders.Update(orders.RidOfRow(row), AsBytes(orow), txn, ctx);
    } else {
      orders.Append(AsBytes(orow), txn, ctx);
    }
    for (uint32_t l = 0; l < kLinesPerOrder; ++l) {
      TpchRows::LineItem li{};
      li.l_orderkey = row;
      const uint64_t lrow = row * kLinesPerOrder + l;
      if (lrow < lineitem.row_count()) {
        lineitem.Update(lineitem.RidOfRow(lrow), AsBytes(li), txn, ctx);
      } else if (lrow == lineitem.row_count()) {
        lineitem.Append(AsBytes(li), txn, ctx);
      }
    }
  }
  db_->system().log().CommitForce(ctx);
}

// A query stream actor for the throughput test: runs its queries a few ops
// per event so streams interleave on the devices.
class TpchStream {
 public:
  TpchStream(TpchWorkload* workload, std::vector<int> queries, uint64_t seed,
             std::function<void(Time)> on_done)
      : workload_(workload),
        queries_(std::move(queries)),
        rng_(seed),
        on_done_(std::move(on_done)) {}

  void Start() {
    NextQuery();
    Step();
  }

 private:
  static constexpr int kOpsPerEvent = 4;

  void NextQuery() {
    if (qi_ >= queries_.size()) {
      done_ = true;
      return;
    }
    ops_ = workload_->CompileQuery(queries_[qi_], rng_);
    oi_ = 0;
    ++qi_;
  }

  void Step() {
    SimExecutor& ex = workload_->db_->system().executor();
    if (done_) {
      on_done_(ex.now());
      delete this;  // lint: allow(raw-new) self-owning event object
      return;
    }
    IoContext ctx = workload_->db_->system().MakeContext();
    for (int n = 0; n < kOpsPerEvent && !done_; ++n) {
      if (oi_ >= ops_.size()) {
        NextQuery();
        continue;
      }
      workload_->ExecuteOp(ops_[oi_++], rng_, ctx);
    }
    ex.ScheduleAt(std::max(ctx.now, ex.now()), [this] { Step(); });
  }

  TpchWorkload* workload_;
  std::vector<int> queries_;
  Rng rng_;
  std::function<void(Time)> on_done_;
  std::vector<TpchWorkload::Op> ops_;
  size_t qi_ = 0;
  size_t oi_ = 0;
  bool done_ = false;
};

TpchTestResult TpchWorkload::RunFullBenchmark() {
  TpchTestResult result;
  SimExecutor& ex = db_->system().executor();

  // ---- Power test: RF1, Q1..Q22 serially, RF2 (single stream).
  const Time power_start = ex.now();
  {
    IoContext ctx = db_->system().MakeContext();
    const Time rf1_begin = ctx.now;
    RunRefresh(1, ctx);
    result.power_timings.push_back(TpchQueryResult{23, ctx.now - rf1_begin});
    for (int q = 1; q <= kNumQueries; ++q) {
      const Time t = RunQuery(q, ctx);
      result.power_timings.push_back(TpchQueryResult{q, t});
    }
    const Time rf2_begin = ctx.now;
    RunRefresh(2, ctx);
    result.power_timings.push_back(TpchQueryResult{24, ctx.now - rf2_begin});
    ex.RunUntil(ctx.now);
  }
  result.power_elapsed = ex.now() - power_start;

  // ---- Throughput test: S concurrent query streams + a refresh stream.
  const Time tp_start = ex.now();
  int remaining = config_.streams;
  Time last_done = tp_start;
  for (int s = 0; s < config_.streams; ++s) {
    std::vector<int> order;
    for (int q = 0; q < kNumQueries; ++q) {
      order.push_back(1 + (q + s * 7) % kNumQueries);  // rotated permutation
    }
    // The stream owns itself until its final event fires.
    auto* stream = new TpchStream(this, std::move(order),  // lint: allow(raw-new)
                                  config_.seed + 100 + static_cast<uint64_t>(s),
                                  [&remaining, &last_done](Time t) {
                                    --remaining;
                                    last_done = std::max(last_done, t);
                                  });
    stream->Start();
  }
  // Refresh stream: one RF pair per query stream, spread over the test.
  ex.ScheduleAfter(Seconds(1), [this] {
    IoContext ctx = db_->system().MakeContext();
    for (int i = 0; i < config_.streams; ++i) {
      RunRefresh(1, ctx);
      RunRefresh(2, ctx);
    }
  });
  while (remaining > 0 && ex.RunOne()) {
  }
  result.throughput_elapsed = std::max<Time>(1, last_done - tp_start);

  // ---- Spec arithmetic.
  const double sf = config_.scale_factor;
  result.power_at_sf = 3600.0 * sf / GeoMeanSeconds(result.power_timings);
  result.throughput_at_sf =
      static_cast<double>(config_.streams) * kNumQueries * 3600.0 /
      ToSeconds(result.throughput_elapsed) * sf;
  result.qphh = std::sqrt(result.power_at_sf * result.throughput_at_sf);
  return result;
}

}  // namespace turbobp
