#ifndef TURBOBP_WORKLOAD_DRIVER_H_
#define TURBOBP_WORKLOAD_DRIVER_H_

#include <memory>
#include <string>

#include "common/stats.h"
#include "debug/latch_order_checker.h"
#include "engine/database.h"

namespace turbobp {

// A benchmark workload: a population step plus a transaction generator.
// One instance is bound to one Database for one run.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;

  // Executes one complete transaction on behalf of `client_id`, advancing
  // ctx.now through every page access and the commit log force. Returns
  // true if the transaction counts toward the headline metric (NewOrder
  // for tpmC, Trade-Result for tpsE).
  virtual bool RunTransaction(int client_id, IoContext& ctx) = 0;

  // Whether concurrent RunTransaction calls from different OS threads are
  // safe. The real-thread driver serializes workloads that return false
  // behind one global latch (correct, but measures only engine-side
  // concurrency); TPC-C in partitioned mode returns true.
  virtual bool thread_safe() const { return false; }
};

struct DriverOptions {
  int num_clients = 25;
  Time duration = Seconds(600);
  // Bucket width for the throughput/traffic time series (the paper plots
  // six-minute averages of ten-hour runs; scaled runs use scaled buckets).
  Time sample_width = Seconds(6);
  // The metric is averaged over this trailing window ("the average
  // throughput achieved over the last hour of execution").
  Time steady_window = Seconds(60);
  bool record_traffic = true;

  // Real-thread scale-out mode: when > 0, `threads` OS threads (one client
  // each; num_clients is ignored) hammer the shared DbSystem concurrently
  // and `duration` is interpreted on the wall clock — virtual time is
  // anchored so one virtual microsecond == one wall microsecond since run
  // start. A pump thread advances the discrete-event executor to the
  // anchored time so background actors (lazy cleaner, TAC admission, async
  // reaps) still run; clients run with ctx.executor == nullptr and take the
  // engine's real-thread blocking paths. Periodic checkpoints must NOT be
  // scheduled in this mode (checkpoint before/after the run instead): the
  // checkpoint boundary audit assumes it observes a quiesced system.
  // Per-device traffic time series are not recorded (the sinks are not
  // thread-safe); everything else in DriverResult is filled as usual, with
  // per-thread histograms/series merged at report time.
  int threads = 0;
  // Threaded mode only: scale factor turning modelled device waits into
  // real OS sleeps (see IoContext::real_sleep_scale). 0 = don't sleep;
  // DRAM-resident scale-out benches use 0 so throughput measures real
  // engine concurrency, not sleep overlap.
  double real_sleep_scale = 0.0;
};

struct DriverResult {
  std::string workload;
  std::string design;
  int64_t total_txns = 0;
  int64_t metric_txns = 0;
  double steady_rate = 0.0;    // metric txns/sec over the trailing window
  double overall_rate = 0.0;   // metric txns/sec over the full run
  TimeSeries throughput{Seconds(6)};
  TimeSeries disk_read_bytes{Seconds(6)};
  TimeSeries disk_write_bytes{Seconds(6)};
  TimeSeries ssd_read_bytes{Seconds(6)};
  TimeSeries ssd_write_bytes{Seconds(6)};
  BufferPoolStats bp;
  SsdManagerStats ssd;
  CheckpointStats ckpt;
  Time total_latch_wait = 0;
  Histogram txn_latency;
  Time run_end = 0;
  // Threaded mode: per-latch-class contended-acquisition deltas over the
  // run (waits and nanoseconds waited), from LatchWaitStats. Zero in sim
  // mode — a single driver thread never contends.
  int threads = 0;
  LatchWaitSnapshot latch_waits{};
};

// Drives N logical clients against a DbSystem inside the discrete-event
// executor: each client runs transactions back-to-back (no think time, as
// in the paper's throughput runs), yielding to the executor at transaction
// boundaries so background actors (lazy cleaner, checkpoints, TAC
// admissions) interleave in virtual-time order.
class Driver {
 public:
  Driver(DbSystem* system, Workload* workload, const DriverOptions& options);

  // Runs for options.duration of virtual time and reports.
  DriverResult Run();

 private:
  void ClientStep(int client_id);
  DriverResult RunThreaded();

  DbSystem* system_;
  Workload* workload_;
  DriverOptions options_;
  Time start_ = 0;
  Time end_ = 0;
  DriverResult result_;
};

}  // namespace turbobp

#endif  // TURBOBP_WORKLOAD_DRIVER_H_
