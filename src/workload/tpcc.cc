#include "workload/tpcc.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace turbobp {

namespace {

constexpr int kDistrictsPerWh = 10;
constexpr uint64_t kOidBits = 24;  // index key = (d_key or c_key) << 24 | o_id

template <typename Row>
std::span<const uint8_t> AsBytes(const Row& row) {
  return {reinterpret_cast<const uint8_t*>(&row), sizeof(Row)};
}
template <typename Row>
std::span<uint8_t> AsMutableBytes(Row& row) {
  return {reinterpret_cast<uint8_t*>(&row), sizeof(Row)};
}

// NURand constant chosen to preserve the spec's skew ratio (A/range ~ 1/3
// for customers, ~1/12 for items) at any scaled cardinality.
int64_t NuRandA(int64_t range, int shift) {
  const int64_t a =
      static_cast<int64_t>(std::bit_ceil(static_cast<uint64_t>(range))) >>
      shift;
  return std::max<int64_t>(a - 1, 15);
}

// Reader/writer guards over the shared B+-tree latches that collapse to
// no-ops in sim mode (single driver thread, zero overhead on the hot path
// beyond one predictable branch).
class TreeWriteGuard {
 public:
  TreeWriteGuard(std::shared_mutex& mu, bool enabled)
      : lock_(mu, std::defer_lock) {
    if (enabled) lock_.lock();
  }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

class TreeReadGuard {
 public:
  TreeReadGuard(std::shared_mutex& mu, bool enabled)
      : lock_(mu, std::defer_lock) {
    if (enabled) lock_.lock();
  }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace

TpccWorkload::Derived TpccWorkload::DeriveSizes(const TpccConfig& config) {
  Derived d;
  const double s = config.row_scale;
  d.customers_per_district = std::max<int64_t>(30, static_cast<int64_t>(3000 * s));
  d.items = std::max<int64_t>(100, static_cast<int64_t>(100000 * s));
  d.stock_per_wh = d.items;
  d.init_orders_per_district = d.customers_per_district;  // spec: one each
  d.order_capacity = static_cast<int64_t>(config.order_capacity_factor) *
                     d.init_orders_per_district * kDistrictsPerWh *
                     config.warehouses;
  d.max_lines = 12;
  return d;
}

uint64_t TpccWorkload::EstimateDbPages(const TpccConfig& config,
                                       uint32_t page_bytes) {
  const Derived d = DeriveSizes(config);
  const uint64_t payload = page_bytes - kPageHeaderSize;
  auto pages = [payload](uint64_t rows, uint64_t row_bytes) {
    const uint64_t per = payload / row_bytes;
    return (rows + per - 1) / per;
  };
  const uint64_t w = static_cast<uint64_t>(config.warehouses);
  uint64_t total = 0;
  total += pages(w, sizeof(TpccRows::Warehouse));
  total += pages(w * kDistrictsPerWh, sizeof(TpccRows::District));
  total += pages(w * kDistrictsPerWh * d.customers_per_district,
                 sizeof(TpccRows::Customer));
  total += pages(d.items, sizeof(TpccRows::Item));
  total += pages(w * d.stock_per_wh, sizeof(TpccRows::Stock));
  total += pages(static_cast<uint64_t>(d.order_capacity), sizeof(TpccRows::Order));
  total += pages(static_cast<uint64_t>(d.order_capacity * d.max_lines),
                 sizeof(TpccRows::OrderLine));
  total += pages(static_cast<uint64_t>(d.order_capacity), sizeof(TpccRows::History));
  // B+-tree space: three indexes over the order ring at ~16B/entry, plus
  // inner nodes (~2% overhead).
  const uint64_t index_entries = static_cast<uint64_t>(d.order_capacity) * 3;
  total += index_entries * 18 / payload + 3;
  // Headroom for page-granularity rounding and index growth via splits.
  return total + total / 6 + 64;
}

void TpccWorkload::Populate(Database* db, const TpccConfig& config) {
  TURBOBP_CHECK(db != nullptr);
  const Derived d = DeriveSizes(config);
  const uint64_t w = static_cast<uint64_t>(config.warehouses);
  IoContext ctx = db->system().MakeContext(/*charge=*/false);
  Rng rng(config.seed);

  HeapFile warehouse =
      HeapFile::Create(db, "warehouse", sizeof(TpccRows::Warehouse), w);
  HeapFile district = HeapFile::Create(db, "district", sizeof(TpccRows::District),
                                       w * kDistrictsPerWh);
  HeapFile customer =
      HeapFile::Create(db, "customer", sizeof(TpccRows::Customer),
                       w * kDistrictsPerWh * d.customers_per_district);
  HeapFile item = HeapFile::Create(db, "item", sizeof(TpccRows::Item), d.items);
  HeapFile stock = HeapFile::Create(db, "stock", sizeof(TpccRows::Stock),
                                    w * d.stock_per_wh);
  HeapFile orders = HeapFile::Create(db, "orders", sizeof(TpccRows::Order),
                                     static_cast<uint64_t>(d.order_capacity));
  HeapFile order_line = HeapFile::Create(
      db, "order_line", sizeof(TpccRows::OrderLine),
      static_cast<uint64_t>(d.order_capacity * d.max_lines));
  HeapFile history = HeapFile::Create(db, "history", sizeof(TpccRows::History),
                                      static_cast<uint64_t>(d.order_capacity));
  BPlusTree orders_idx = BPlusTree::Create(db, "orders_idx", ctx);
  BPlusTree orders_by_cust = BPlusTree::Create(db, "orders_by_cust", ctx);
  BPlusTree new_order_idx = BPlusTree::Create(db, "new_order_idx", ctx);

  for (uint64_t i = 0; i < w; ++i) {
    TpccRows::Warehouse row{};
    row.w_id = i;
    row.ytd_cents = 30000000;
    warehouse.Append(AsBytes(row), 0, ctx);
  }
  for (uint64_t i = 0; i < w * kDistrictsPerWh; ++i) {
    TpccRows::District row{};
    row.d_key = i;
    row.next_o_id = static_cast<uint64_t>(d.init_orders_per_district) + 1;
    row.ytd_cents = 3000000;
    district.Append(AsBytes(row), 0, ctx);
  }
  for (uint64_t i = 0; i < w * kDistrictsPerWh *
                               static_cast<uint64_t>(d.customers_per_district);
       ++i) {
    TpccRows::Customer row{};
    row.c_key = i;
    row.balance_cents = -1000;
    customer.Append(AsBytes(row), 0, ctx);
  }
  for (int64_t i = 0; i < d.items; ++i) {
    TpccRows::Item row{};
    row.i_id = static_cast<uint64_t>(i);
    row.price_cents = 100 + static_cast<int64_t>(rng.Uniform(9900));
    item.Append(AsBytes(row), 0, ctx);
  }
  for (uint64_t i = 0; i < w * static_cast<uint64_t>(d.stock_per_wh); ++i) {
    TpccRows::Stock row{};
    row.s_key = i;
    row.quantity = 10 + static_cast<uint32_t>(rng.Uniform(91));
    stock.Append(AsBytes(row), 0, ctx);
  }

  // Initial orders: one per customer per district, the newest third
  // undelivered (populating the NEW_ORDER queue), each with 5-15 lines.
  std::vector<std::pair<uint64_t, uint64_t>> idx_entries;
  std::vector<std::pair<uint64_t, uint64_t>> cust_entries;
  std::vector<std::pair<uint64_t, uint64_t>> new_order_entries;
  uint64_t order_row = 0;
  for (uint64_t dk = 0; dk < w * kDistrictsPerWh; ++dk) {
    // Customers receive the initial orders in a random permutation.
    std::vector<int64_t> perm(static_cast<size_t>(d.customers_per_district));
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int64_t>(i);
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Uniform(i)]);
    }
    for (int64_t o = 1; o <= d.init_orders_per_district; ++o) {
      const uint64_t c_key =
          dk * static_cast<uint64_t>(d.customers_per_district) +
          static_cast<uint64_t>(perm[static_cast<size_t>(o - 1)]);
      TpccRows::Order row{};
      row.o_id = static_cast<uint64_t>(o);
      row.c_key = c_key;
      row.ol_cnt = 8 + static_cast<uint32_t>(rng.Uniform(5));
      const bool delivered =
          o <= d.init_orders_per_district - d.init_orders_per_district / 3;
      row.carrier_id = delivered ? 1 + static_cast<uint32_t>(rng.Uniform(10)) : 0;
      orders.Append(AsBytes(row), 0, ctx);
      for (uint32_t l = 0; l < row.ol_cnt; ++l) {
        TpccRows::OrderLine ol{};
        ol.i_id = rng.Uniform(static_cast<uint64_t>(d.items));
        ol.supply_w = dk / kDistrictsPerWh;
        ol.amount_cents = delivered ? static_cast<int64_t>(rng.Uniform(999900)) : 0;
        ol.quantity = 5;
        ol.delivery_flag = delivered ? 1 : 0;
        // Order lines live at computable slots: order_row * max_lines + l.
        while (order_line.row_count() <
               order_row * static_cast<uint64_t>(d.max_lines) + l) {
          TpccRows::OrderLine filler{};
          order_line.Append(AsBytes(filler), 0, ctx);
        }
        order_line.Append(AsBytes(ol), 0, ctx);
      }
      const uint64_t key = (dk << kOidBits) | static_cast<uint64_t>(o);
      idx_entries.emplace_back(key, order_row);
      cust_entries.emplace_back((c_key << kOidBits) | static_cast<uint64_t>(o),
                                order_row);
      if (!delivered) new_order_entries.emplace_back(key, order_row);
      TpccRows::History h{};
      h.c_key = c_key;
      h.d_key = dk;
      h.amount_cents = 1000;
      history.Append(AsBytes(h), 0, ctx);
      ++order_row;
    }
  }
  // Pad the order-line table so future orders land at computable slots.
  while (order_line.row_count() <
         order_row * static_cast<uint64_t>(d.max_lines)) {
    TpccRows::OrderLine filler{};
    order_line.Append(AsBytes(filler), 0, ctx);
  }

  std::sort(cust_entries.begin(), cust_entries.end());
  orders_idx.BulkLoad(idx_entries, ctx);
  orders_by_cust.BulkLoad(cust_entries, ctx);
  new_order_idx.BulkLoad(new_order_entries, ctx);

  if (config.partition_by_client) {
    // Real-thread mode: pre-extend the ring tables to full capacity so
    // steady-state ring writes are pure Updates — the heap-file frontier
    // (row_count / Append) is single-writer state and must never move
    // under concurrent clients.
    const uint64_t cap = static_cast<uint64_t>(d.order_capacity);
    TpccRows::Order ofill{};
    while (orders.row_count() < cap) orders.Append(AsBytes(ofill), 0, ctx);
    TpccRows::OrderLine lfill{};
    while (order_line.row_count() <
           cap * static_cast<uint64_t>(d.max_lines)) {
      order_line.Append(AsBytes(lfill), 0, ctx);
    }
    TpccRows::History hfill{};
    while (history.row_count() < cap) history.Append(AsBytes(hfill), 0, ctx);
  }

  // Push the populated pages to the devices and start from a cold cache.
  db->pool().FlushAllDirty(ctx, /*for_checkpoint=*/false);
  db->pool().Reset();
}

TpccWorkload::TpccWorkload(Database* db, const TpccConfig& config)
    : db_(db), config_(config), rng_(config.seed ^ 0xC0FFEE) {
  const Derived d = DeriveSizes(config);
  customers_per_district_ = d.customers_per_district;
  items_ = d.items;
  stock_per_wh_ = d.stock_per_wh;
  init_orders_ = d.init_orders_per_district;
  order_capacity_ = d.order_capacity;
  max_lines_ = d.max_lines;
  oid_ring_ = static_cast<uint64_t>(config.order_capacity_factor) *
              static_cast<uint64_t>(d.init_orders_per_district);
  warehouse_ = HeapFile::Attach(db, "warehouse");
  district_ = HeapFile::Attach(db, "district");
  customer_ = HeapFile::Attach(db, "customer");
  orders_ = HeapFile::Attach(db, "orders");
  order_line_ = HeapFile::Attach(db, "order_line");
  item_ = HeapFile::Attach(db, "item");
  stock_ = HeapFile::Attach(db, "stock");
  history_ = HeapFile::Attach(db, "history");
  orders_idx_ = BPlusTree::Attach(db, "orders_idx");
  orders_by_cust_ = BPlusTree::Attach(db, "orders_by_cust");
  new_order_idx_ = BPlusTree::Attach(db, "new_order_idx");
  order_seq_ = orders_.row_count();
  history_seq_ = history_.row_count();

  partitioned_ = config.partition_by_client;
  if (partitioned_) {
    wh_init_ = static_cast<uint64_t>(init_orders_) * kDistrictsPerWh;
    wh_ring_ = static_cast<uint64_t>(order_capacity_) /
               static_cast<uint64_t>(config.warehouses);
    // Populate() pre-extended the rings; the per-warehouse cursors start at
    // the initial-order count (the rest of each warehouse's ring is filler
    // that has never held a live order).
    TURBOBP_CHECK(orders_.row_count() ==
                  static_cast<uint64_t>(order_capacity_));
    wh_.reserve(static_cast<size_t>(config.warehouses));
    for (int w = 0; w < config.warehouses; ++w) {
      auto ws = std::make_unique<WarehouseState>();
      ws->order_seq = wh_init_;
      ws->history_seq = wh_init_;
      ws->rng = Rng(config.seed ^ 0xC0FFEE ^
                    (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(w + 1)));
      wh_.push_back(std::move(ws));
    }
  }
}

uint64_t TpccWorkload::PartitionSlot(int w, uint64_t j) const {
  const uint64_t jm = j % wh_ring_;
  const uint64_t wu = static_cast<uint64_t>(w);
  if (jm < wh_init_) return wu * wh_init_ + jm;
  return static_cast<uint64_t>(config_.warehouses) * wh_init_ +
         wu * (wh_ring_ - wh_init_) + (jm - wh_init_);
}

uint64_t TpccWorkload::OidKey(uint64_t prefix, uint64_t o_id) const {
  return (prefix << kOidBits) | ((o_id - 1) % oid_ring_ + 1);
}

int64_t TpccWorkload::NuRandCustomer(Rng& rng) {
  return rng.NuRand(NuRandA(customers_per_district_, 2), 0,
                    customers_per_district_ - 1);
}

int64_t TpccWorkload::NuRandItem(Rng& rng) {
  return rng.NuRand(NuRandA(items_, 4), 0, items_ - 1);
}

void TpccWorkload::WriteRingRow(HeapFile& file, uint64_t row,
                                std::span<const uint8_t> data, uint64_t txn,
                                IoContext& ctx) {
  if (row < file.row_count()) {
    file.Update(file.RidOfRow(row), data, txn, ctx);
  } else {
    // Orders with fewer than max_lines lines leave gaps in the order-line
    // slot space; pad the frontier so slots stay computable. Partitioned
    // mode pre-extends the rings, so appends (which move the shared heap
    // frontier) must never happen there.
    TURBOBP_CHECK(!partitioned_);
    std::vector<uint8_t> filler(data.size(), 0);
    while (row > file.row_count()) {
      file.Append(filler, txn, ctx);
    }
    file.Append(data, txn, ctx);
  }
}

bool TpccWorkload::RunTransaction(int client_id, IoContext& ctx) {
  if (partitioned_) {
    const int home_w =
        static_cast<int>(static_cast<uint64_t>(client_id) % wh_.size());
    WarehouseState& ws = *wh_[static_cast<size_t>(home_w)];
    // The warehouse latch covers the whole transaction: every heap-row RMW
    // on warehouse-owned rows, the per-warehouse ring cursors, and this
    // warehouse's RNG stream.
    std::lock_guard<std::mutex> lock(ws.mu);
    TxnEnv env{home_w, &ws.rng, &ws};
    return DoTransaction(env, ctx);
  }
  TxnEnv env{/*home_w=*/-1, &rng_, /*ws=*/nullptr};
  return DoTransaction(env, ctx);
}

bool TpccWorkload::DoTransaction(TxnEnv& env, IoContext& ctx) {
  const uint64_t pick = env.rng->Uniform(100);
  bool metric = false;
  if (pick < 45) {
    NewOrder(env, ctx);
    metric = true;
  } else if (pick < 88) {
    Payment(env, ctx);
  } else if (pick < 92) {
    OrderStatus(env, ctx);
  } else if (pick < 96) {
    Delivery(env, ctx);
  } else {
    StockLevel(env, ctx);
  }
  if (config_.commit_force) db_->system().log().CommitForce(ctx);
  return metric;
}

void TpccWorkload::NewOrder(TxnEnv& env, IoContext& ctx) {
  Rng& rng = *env.rng;
  ++new_orders_;
  const uint64_t txn = next_txn_id_++;
  const int w = env.home_w >= 0
                    ? env.home_w
                    : static_cast<int>(rng.Uniform(config_.warehouses));
  const int dist = static_cast<int>(rng.Uniform(kDistrictsPerWh));
  const uint64_t d_key = DistrictKey(w, dist);

  TpccRows::Warehouse wrow;
  warehouse_.Read(warehouse_.RidOfRow(w), AsMutableBytes(wrow),
                  AccessKind::kRandom, ctx);

  TpccRows::District drow;
  const Rid drid = district_.RidOfRow(d_key);
  district_.Read(drid, AsMutableBytes(drow), AccessKind::kRandom, ctx);
  const uint64_t o_id = drow.next_o_id;
  drow.next_o_id++;
  district_.Update(drid, AsBytes(drow), txn, ctx);

  const uint64_t c_key = CustomerKey(d_key, NuRandCustomer(rng));
  TpccRows::Customer crow;
  customer_.Read(customer_.RidOfRow(c_key), AsMutableBytes(crow),
                 AccessKind::kRandom, ctx);

  const uint32_t ol_cnt = 8 + static_cast<uint32_t>(rng.Uniform(5));
  bool recycled;
  uint64_t o_row;
  if (env.ws != nullptr) {
    // Partitioned ring: warehouse-local slots, so the superseded order (if
    // any) is guaranteed to belong to this warehouse and its index purge
    // below never reaches across a partition.
    const uint64_t j = env.ws->order_seq++;
    o_row = PartitionSlot(w, j);
    recycled = j >= wh_ring_;
  } else {
    o_row = order_seq_ % static_cast<uint64_t>(order_capacity_);
    ++order_seq_;
    recycled = order_seq_ > static_cast<uint64_t>(order_capacity_);
  }

  // Recycling an order slot: purge the superseded order's index entries so
  // the indexes stay bounded (ring substitution, see header comment).
  if (recycled) {
    TpccRows::Order old;
    orders_.Read(orders_.RidOfRow(o_row), AsMutableBytes(old),
                 AccessKind::kRandom, ctx);
    const uint64_t old_dk = old.c_key / static_cast<uint64_t>(
                                            customers_per_district_);
    {
      TreeWriteGuard g(orders_idx_mu_, partitioned_);
      orders_idx_.Delete(OidKey(old_dk, old.o_id), txn, ctx);
    }
    {
      TreeWriteGuard g(cust_idx_mu_, partitioned_);
      orders_by_cust_.Delete(OidKey(old.c_key, old.o_id), txn, ctx);
    }
    {
      TreeWriteGuard g(new_order_idx_mu_, partitioned_);
      new_order_idx_.Delete(OidKey(old_dk, old.o_id), txn, ctx);
    }
  }

  TpccRows::Order orow{};
  orow.o_id = o_id;
  orow.c_key = c_key;
  orow.ol_cnt = ol_cnt;
  orow.carrier_id = 0;
  orow.entry_time = static_cast<uint64_t>(ctx.now);
  WriteRingRow(orders_, o_row, AsBytes(orow), txn, ctx);

  for (uint32_t l = 0; l < ol_cnt; ++l) {
    const int64_t i_id = NuRandItem(rng);
    // 1% of lines are supplied by a remote warehouse (disabled when the
    // warehouses are partitioned across client threads — stock rows must
    // stay under their owner's latch).
    const int supply_w =
        env.home_w < 0 && rng.Bernoulli(0.01) && config_.warehouses > 1
            ? static_cast<int>(rng.Uniform(config_.warehouses))
            : w;
    TpccRows::Item irow;
    item_.Read(item_.RidOfRow(static_cast<uint64_t>(i_id)),
               AsMutableBytes(irow), AccessKind::kRandom, ctx);
    const uint64_t s_key = static_cast<uint64_t>(supply_w) *
                               static_cast<uint64_t>(stock_per_wh_) +
                           static_cast<uint64_t>(i_id);
    TpccRows::Stock srow;
    const Rid srid = stock_.RidOfRow(s_key);
    stock_.Read(srid, AsMutableBytes(srow), AccessKind::kRandom, ctx);
    srow.quantity = srow.quantity > 10 ? srow.quantity - 5 : srow.quantity + 86;
    srow.ytd += 5;
    srow.order_cnt++;
    if (supply_w != w) srow.remote_cnt++;
    stock_.Update(srid, AsBytes(srow), txn, ctx);

    TpccRows::OrderLine ol{};
    ol.i_id = static_cast<uint64_t>(i_id);
    ol.supply_w = static_cast<uint64_t>(supply_w);
    ol.quantity = 5;
    ol.amount_cents = 5 * irow.price_cents;
    WriteRingRow(order_line_, o_row * static_cast<uint64_t>(max_lines_) + l,
                 AsBytes(ol), txn, ctx);
  }

  const uint64_t key = OidKey(d_key, o_id);
  {
    TreeWriteGuard g(orders_idx_mu_, partitioned_);
    orders_idx_.Insert(key, o_row, txn, ctx);
  }
  {
    TreeWriteGuard g(cust_idx_mu_, partitioned_);
    orders_by_cust_.Insert(OidKey(c_key, o_id), o_row, txn, ctx);
  }
  {
    TreeWriteGuard g(new_order_idx_mu_, partitioned_);
    new_order_idx_.Insert(key, o_row, txn, ctx);
  }
}

void TpccWorkload::Payment(TxnEnv& env, IoContext& ctx) {
  Rng& rng = *env.rng;
  ++payments_;
  const uint64_t txn = next_txn_id_++;
  const int w = env.home_w >= 0
                    ? env.home_w
                    : static_cast<int>(rng.Uniform(config_.warehouses));
  const int dist = static_cast<int>(rng.Uniform(kDistrictsPerWh));
  const uint64_t d_key = DistrictKey(w, dist);
  const int64_t amount = 100 + static_cast<int64_t>(rng.Uniform(499900));

  TpccRows::Warehouse wrow;
  const Rid wrid = warehouse_.RidOfRow(w);
  warehouse_.Read(wrid, AsMutableBytes(wrow), AccessKind::kRandom, ctx);
  wrow.ytd_cents += amount;
  warehouse_.Update(wrid, AsBytes(wrow), txn, ctx);

  TpccRows::District drow;
  const Rid drid = district_.RidOfRow(d_key);
  district_.Read(drid, AsMutableBytes(drow), AccessKind::kRandom, ctx);
  drow.ytd_cents += amount;
  district_.Update(drid, AsBytes(drow), txn, ctx);

  // 15% of payments are for a customer of a remote district (spec 2.5.1.2;
  // disabled in partitioned mode — customer rows stay under their owner's
  // warehouse latch).
  uint64_t c_dkey = d_key;
  if (env.home_w < 0 && rng.Bernoulli(0.15)) {
    c_dkey = DistrictKey(static_cast<int>(rng.Uniform(config_.warehouses)),
                         static_cast<int>(rng.Uniform(kDistrictsPerWh)));
  }
  const uint64_t c_key = CustomerKey(c_dkey, NuRandCustomer(rng));
  TpccRows::Customer crow;
  const Rid crid = customer_.RidOfRow(c_key);
  customer_.Read(crid, AsMutableBytes(crow), AccessKind::kRandom, ctx);
  crow.balance_cents -= amount;
  crow.ytd_payment_cents += amount;
  crow.payment_cnt++;
  customer_.Update(crid, AsBytes(crow), txn, ctx);

  TpccRows::History h{};
  h.c_key = c_key;
  h.d_key = d_key;
  h.amount_cents = amount;
  uint64_t h_row;
  if (env.ws != nullptr) {
    h_row = PartitionSlot(w, env.ws->history_seq++);
  } else {
    h_row = history_seq_ % static_cast<uint64_t>(order_capacity_);
    ++history_seq_;
  }
  WriteRingRow(history_, h_row, AsBytes(h), txn, ctx);
}

void TpccWorkload::OrderStatus(TxnEnv& env, IoContext& ctx) {
  Rng& rng = *env.rng;
  ++order_statuses_;
  const int w = env.home_w >= 0
                    ? env.home_w
                    : static_cast<int>(rng.Uniform(config_.warehouses));
  const int dist = static_cast<int>(rng.Uniform(kDistrictsPerWh));
  const uint64_t c_key = CustomerKey(DistrictKey(w, dist), NuRandCustomer(rng));

  TpccRows::Customer crow;
  customer_.Read(customer_.RidOfRow(c_key), AsMutableBytes(crow),
                 AccessKind::kRandom, ctx);

  // Most recent order of this customer.
  uint64_t last_row = kInvalidPageId;
  {
    TreeReadGuard g(cust_idx_mu_, partitioned_);
    orders_by_cust_.ScanRange(
        c_key << kOidBits, ((c_key + 1) << kOidBits) - 1,
        [&](uint64_t, uint64_t row) {
          last_row = row;
          return true;
        },
        ctx);
  }
  if (last_row == kInvalidPageId) return;  // ring recycled all their orders

  TpccRows::Order orow;
  orders_.Read(orders_.RidOfRow(last_row), AsMutableBytes(orow),
               AccessKind::kRandom, ctx);
  for (uint32_t l = 0; l < orow.ol_cnt; ++l) {
    TpccRows::OrderLine ol;
    order_line_.Read(
        order_line_.RidOfRow(last_row * static_cast<uint64_t>(max_lines_) + l),
        AsMutableBytes(ol), AccessKind::kRandom, ctx);
  }
}

void TpccWorkload::Delivery(TxnEnv& env, IoContext& ctx) {
  Rng& rng = *env.rng;
  ++deliveries_;
  const uint64_t txn = next_txn_id_++;
  const int w = env.home_w >= 0
                    ? env.home_w
                    : static_cast<int>(rng.Uniform(config_.warehouses));
  for (int dist = 0; dist < kDistrictsPerWh; ++dist) {
    const uint64_t d_key = DistrictKey(w, dist);
    // Oldest undelivered order in this district. The scan-then-delete pair
    // is not atomic across the two tree latchings, but the key range is
    // owned by this warehouse's latch holder, so no other thread can race
    // the delete.
    uint64_t key = 0, o_row = 0;
    bool found = false;
    {
      TreeReadGuard g(new_order_idx_mu_, partitioned_);
      new_order_idx_.ScanRange(
          d_key << kOidBits, ((d_key + 1) << kOidBits) - 1,
          [&](uint64_t k, uint64_t row) {
            key = k;
            o_row = row;
            found = true;
            return false;  // first = oldest
          },
          ctx);
    }
    if (!found) continue;
    {
      TreeWriteGuard g(new_order_idx_mu_, partitioned_);
      new_order_idx_.Delete(key, txn, ctx);
    }

    TpccRows::Order orow;
    const Rid orid = orders_.RidOfRow(o_row);
    orders_.Read(orid, AsMutableBytes(orow), AccessKind::kRandom, ctx);
    orow.carrier_id = 1 + static_cast<uint32_t>(rng.Uniform(10));
    orders_.Update(orid, AsBytes(orow), txn, ctx);

    int64_t total = 0;
    for (uint32_t l = 0; l < orow.ol_cnt; ++l) {
      const Rid lrid = order_line_.RidOfRow(
          o_row * static_cast<uint64_t>(max_lines_) + l);
      TpccRows::OrderLine ol;
      order_line_.Read(lrid, AsMutableBytes(ol), AccessKind::kRandom, ctx);
      ol.delivery_flag = 1;
      total += ol.amount_cents;
      order_line_.Update(lrid, AsBytes(ol), txn, ctx);
    }

    TpccRows::Customer crow;
    const Rid crid = customer_.RidOfRow(orow.c_key);
    customer_.Read(crid, AsMutableBytes(crow), AccessKind::kRandom, ctx);
    crow.balance_cents += total;
    crow.delivery_cnt++;
    customer_.Update(crid, AsBytes(crow), txn, ctx);
  }
}

void TpccWorkload::StockLevel(TxnEnv& env, IoContext& ctx) {
  Rng& rng = *env.rng;
  ++stock_levels_;
  const int w = env.home_w >= 0
                    ? env.home_w
                    : static_cast<int>(rng.Uniform(config_.warehouses));
  const int dist = static_cast<int>(rng.Uniform(kDistrictsPerWh));
  const uint64_t d_key = DistrictKey(w, dist);

  TpccRows::District drow;
  district_.Read(district_.RidOfRow(d_key), AsMutableBytes(drow),
                 AccessKind::kRandom, ctx);

  // Examine the last 20 orders' lines and probe the stock of each item.
  const uint64_t from = drow.next_o_id > 20 ? drow.next_o_id - 20 : 1;
  int low_stock = 0;
  for (uint64_t o = from; o < drow.next_o_id; ++o) {
    uint64_t o_row;
    bool hit;
    {
      TreeReadGuard g(orders_idx_mu_, partitioned_);
      hit = orders_idx_.Search(OidKey(d_key, o), &o_row, ctx);
    }
    if (!hit) continue;
    TpccRows::Order orow;
    orders_.Read(orders_.RidOfRow(o_row), AsMutableBytes(orow),
                 AccessKind::kRandom, ctx);
    for (uint32_t l = 0; l < orow.ol_cnt; ++l) {
      TpccRows::OrderLine ol;
      order_line_.Read(
          order_line_.RidOfRow(o_row * static_cast<uint64_t>(max_lines_) + l),
          AsMutableBytes(ol), AccessKind::kRandom, ctx);
      const uint64_t s_key =
          static_cast<uint64_t>(w) * static_cast<uint64_t>(stock_per_wh_) +
          ol.i_id;
      TpccRows::Stock srow;
      stock_.Read(stock_.RidOfRow(s_key), AsMutableBytes(srow),
                  AccessKind::kRandom, ctx);
      if (srow.quantity < 15) ++low_stock;
    }
  }
  (void)low_stock;
}

}  // namespace turbobp
