#ifndef TURBOBP_BUFFER_BUFFER_POOL_H_
#define TURBOBP_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/ssd_manager.h"
#include "debug/latch_order_checker.h"
#include "storage/disk_manager.h"
#include "storage/io_context.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace turbobp {

class BufferPool;
class InvariantAuditor;
struct AuditAccess;

// RAII pin on a buffer frame. While a guard is alive the frame cannot be
// evicted. Mutations must go through BeginWrite()/FinishWrite() so the
// dirty bit, the SSD invalidation hook, the page LSN and the WAL record are
// maintained in the right order.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame) : pool_(pool), frame_(frame) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const;
  PageView view();
  const PageView view() const;

  // Marks the frame dirty (invalidating any SSD copy on the clean->dirty
  // transition), logs the byte range [offset, offset+len) of the *new*
  // content as a physical redo record, and stamps the page LSN.
  // Call after mutating the page content in place.
  Lsn LogUpdate(uint64_t txn_id, uint32_t offset, uint32_t len);

  // Marks dirty and stamps an LSN without logging (pages created and fully
  // rebuilt by recovery-exempt paths, e.g. the loader).
  void MarkDirtyUnlogged();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t ssd_hits = 0;          // misses served by the SSD manager
  int64_t disk_page_reads = 0;   // pages read from disk (incl. expansions)
  int64_t evictions_clean = 0;
  int64_t evictions_dirty = 0;
  int64_t prefetch_pages = 0;    // pages brought in via read-ahead
  int64_t checkpoint_writes = 0;
  Time latch_wait_time = 0;      // stalls behind SSD admission writes (TAC)
};

// Main-memory buffer pool with an SSD-manager extension point (Figure 1).
//
// Page fetch flow (Section 2.2): probe the pool; on a miss, ask the SSD
// manager for the page; otherwise read it from disk (and let the SSD
// manager see the disk read, which is where TAC admits). On eviction, dirty
// pages first satisfy the WAL rule and are then offered to the SSD manager,
// whose design (CW / DW / LC / TAC) decides what is written where.
//
// Replacement is LRU-2 via a lazily rebuilt victim heap keyed on each
// frame's penultimate access time.
class BufferPool {
 public:
  struct Options {
    uint64_t num_frames = 1024;
    uint32_t page_bytes = 8192;
    // CPU charge for an in-memory page access.
    Time hit_cpu = Micros(2);
    bool verify_checksums = true;
    // SQL Server 2008 R2 behaviour observed in Figure 8: while the pool has
    // free frames, every single-page read is expanded to an aligned
    // `expand_read_pages` read.
    bool expand_reads_until_warm = true;
    uint32_t expand_read_pages = 8;
  };

  BufferPool(const Options& options, DiskManager* disk, LogManager* log,
             SsdManager* ssd);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_bytes() const { return options_.page_bytes; }
  uint64_t num_frames() const { return options_.num_frames; }
  SsdManager* ssd_manager() { return ssd_; }

  // Swaps the SSD manager (used when simulating a DBMS restart, which
  // reformats the SSD buffer pool — no design reuses its contents).
  void set_ssd_manager(SsdManager* ssd) { ssd_ = ssd ? ssd : &fallback_ssd_; }

  // Fetches and pins a page. `kind` records how the caller reached the page
  // (random lookup vs. sequential read-ahead) — the SSD admission policy
  // keys off it. When the page is unreadable (its only current copy sat in
  // a dirty SSD frame that died with the device) the fetch cannot be served:
  // with `out_error` set, the error is reported there and an invalid guard
  // is returned; with `out_error == nullptr` the process panics.
  PageGuard FetchPage(PageId pid, AccessKind kind, IoContext& ctx,
                      Status* out_error = nullptr);

  // Allocates a frame for a brand-new page (no disk read) and formats it.
  // The page is born dirty (it exists nowhere else yet).
  PageGuard NewPage(PageId pid, PageType type, IoContext& ctx);

  // Sequential read-ahead: brings [first, first+n) into the pool as one
  // trimmed multi-page disk request (Section 3.3.3), unpinned, marked
  // kSequential. Blocks the client until the data is available.
  void PrefetchRange(PageId first, uint32_t n, IoContext& ctx);

  bool Contains(PageId pid) const;
  int64_t DirtyFrameCount() const;
  int64_t UsedFrameCount() const;

  // Flushes every dirty frame to disk (sharp checkpoint / shutdown).
  // Returns the completion time of the last write. When `for_checkpoint`,
  // routes each flushed page through SsdManager::OnCheckpointWrite.
  Time FlushAllDirty(IoContext& ctx, bool for_checkpoint);

  // Crash simulation: drops all frames, including dirty ones.
  void Reset();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  friend class PageGuard;
  friend class InvariantAuditor;  // read-only structural audits (src/debug)
  friend struct AuditAccess;      // corruption injection in auditor tests

  struct Frame {
    PageId page_id = kInvalidPageId;
    bool dirty = false;
    uint32_t pin_count = 0;
    AccessKind kind = AccessKind::kRandom;
    Time access_history[2] = {0, 0};  // [0]=last, [1]=previous (LRU-2)
    uint64_t touch_stamp = 0;         // bumped per access; victim-heap tag
  };

  uint8_t* FrameData(int32_t frame) {
    return arena_.data() + static_cast<size_t>(frame) * options_.page_bytes;
  }
  std::span<uint8_t> FrameSpan(int32_t frame) {
    return {FrameData(frame), options_.page_bytes};
  }

  void Touch(Frame& f, Time now);
  // LRU-2 key: penultimate access time (0 while seen only once).
  Time VictimKey(const Frame& f) const { return f.access_history[1]; }

  // Returns a free frame index, evicting if necessary.
  int32_t AcquireFrame(IoContext& ctx);
  void EvictFrame(int32_t frame, IoContext& ctx);
  void RebuildVictimHeap();

  // Installs freshly-read page bytes into `frame` and registers it.
  void InstallFrame(int32_t frame, PageId pid, AccessKind kind, IoContext& ctx);

  // Flushes one dirty frame to disk (WAL rule first); returns completion.
  Time WriteFrameToDisk(int32_t frame, IoContext& ctx);

  void VerifyFrameChecksum(int32_t frame, PageId pid) const;

  void Unpin(int32_t frame);
  Lsn LogUpdateInternal(int32_t frame, uint64_t txn_id, uint32_t offset,
                        uint32_t len);
  void MarkDirtyInternal(int32_t frame, Lsn lsn);
  void MarkDirtyLocked(int32_t frame, Lsn lsn);

  Options options_;
  DiskManager* disk_;
  LogManager* log_;
  SsdManager* ssd_;
  NoSsdManager fallback_ssd_;  // used when ssd == nullptr

  std::vector<uint8_t> arena_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int32_t> page_table_;
  std::vector<int32_t> free_list_;

  struct VictimEntry {
    Time key;
    uint64_t stamp;
    int32_t frame;
    bool operator>(const VictimEntry& o) const {
      return key != o.key ? key > o.key : frame > o.frame;
    }
  };
  std::priority_queue<VictimEntry, std::vector<VictimEntry>,
                      std::greater<VictimEntry>>
      victim_heap_;

  bool warmed_up_ = false;  // pool has been filled once (stops expansion)
  BufferPoolStats stats_;
  // Guards all structures in real-thread mode. Outermost latch class: held
  // across WAL flushes, SSD-manager calls and device I/O (see LatchClass).
  mutable TrackedMutex<LatchClass::kBufferPool> mu_;
};

}  // namespace turbobp

#endif  // TURBOBP_BUFFER_BUFFER_POOL_H_
