#ifndef TURBOBP_BUFFER_BUFFER_POOL_H_
#define TURBOBP_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/ssd_manager.h"
#include "debug/latch_order_checker.h"
#include "storage/disk_manager.h"
#include "storage/io_context.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace turbobp {

class AsyncIoEngine;
class BufferPool;
class InvariantAuditor;
struct AuditAccess;

// RAII pin on a buffer frame. While a guard is alive the frame cannot be
// evicted. Mutations must go through BeginWrite()/FinishWrite() so the
// dirty bit, the SSD invalidation hook, the page LSN and the WAL record are
// maintained in the right order.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame) : pool_(pool), frame_(frame) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const;
  PageView view();
  const PageView view() const;

  // Marks the frame dirty (invalidating any SSD copy on the clean->dirty
  // transition), logs the byte range [offset, offset+len) of the *new*
  // content as a physical redo record, and stamps the page LSN.
  // Call after mutating the page content in place.
  Lsn LogUpdate(uint64_t txn_id, uint32_t offset, uint32_t len);

  // Marks dirty and stamps an LSN without logging (pages created and fully
  // rebuilt by recovery-exempt paths, e.g. the loader).
  void MarkDirtyUnlogged();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

// Snapshot of the pool's counters. The live counters are relaxed atomics
// mutated concurrently by every client; stats() copies them out so callers
// never read a torn or racing value.
struct BufferPoolStats {
  // Fetch classifications: hits + misses >= ops holds in EVERY snapshot,
  // including one taken mid-fetch from another thread (equality at
  // quiescence). A naive field-by-field relaxed copy can tear and break
  // it; stats() orders and retries its reads to keep it.
  int64_t ops = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t ssd_hits = 0;          // misses served by the SSD manager
  int64_t disk_page_reads = 0;   // pages read from disk (incl. expansions)
  int64_t evictions_clean = 0;
  int64_t evictions_dirty = 0;
  int64_t prefetch_pages = 0;    // pages brought in via PrefetchRange
  int64_t expanded_pages = 0;    // speculative neighbours from warm-up reads
  int64_t checkpoint_writes = 0;
  Time latch_wait_time = 0;      // stalls behind SSD admission writes (TAC)
  // Contention on the pool's shard latches themselves (real-thread mode;
  // always zero in the single-threaded simulator).
  int64_t pool_latch_waits = 0;
  int64_t pool_latch_wait_ns = 0;
};

// Main-memory buffer pool with an SSD-manager extension point (Figure 1).
//
// Page fetch flow (Section 2.2): probe the pool; on a miss, ask the SSD
// manager for the page; otherwise read it from disk (and let the SSD
// manager see the disk read, which is where TAC admits). On eviction, dirty
// pages first satisfy the WAL rule and are then offered to the SSD manager,
// whose design (CW / DW / LC / TAC) decides what is written where.
//
// Replacement is LRU-2 via a lazily rebuilt victim heap keyed on each
// frame's penultimate access time.
//
// Concurrency (DESIGN.md §10): the page table, free list and victim heap are
// sharded by page id, and no shard latch is ever held across device I/O.
// Each frame carries a small I/O state machine (kFree -> kReading ->
// kResident -> kEvicting); a fetch that misses publishes a kReading
// placeholder, drops the shard latch for the SSD/disk read, then re-latches
// to install. A second fetch of an in-flight page waits on that frame alone.
class BufferPool {
 public:
  struct Options {
    uint64_t num_frames = 1024;
    uint32_t page_bytes = 8192;
    // CPU charge for an in-memory page access.
    Time hit_cpu = Micros(2);
    bool verify_checksums = true;
    // SQL Server 2008 R2 behaviour observed in Figure 8: while the pool has
    // free frames, every single-page read is expanded to an aligned
    // `expand_read_pages` read.
    bool expand_reads_until_warm = true;
    uint32_t expand_read_pages = 8;
    // Page-table/free-list shards. 0 = auto: one shard per 16 frames,
    // capped at 16 (small pools keep a single shard, preserving the exact
    // single-list replacement order the unit tests pin down).
    uint32_t num_shards = 0;
  };

  // `io_engine`, when provided, must wrap the same device `disk` mediates;
  // PrefetchRange and FlushAllDirty then run as deep-queue submitters
  // (DESIGN.md §12) instead of serial call-and-wait loops. Null keeps every
  // path synchronous — the mode the unit tests that pin DiskManager request
  // counts construct.
  BufferPool(const Options& options, DiskManager* disk, LogManager* log,
             SsdManager* ssd, AsyncIoEngine* io_engine = nullptr);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_bytes() const { return options_.page_bytes; }
  uint64_t num_frames() const { return options_.num_frames; }
  SsdManager* ssd_manager() { return ssd_; }

  // Swaps the SSD manager (used when simulating a DBMS restart, which
  // reformats the SSD buffer pool — no design reuses its contents).
  void set_ssd_manager(SsdManager* ssd) { ssd_ = ssd ? ssd : &fallback_ssd_; }

  // Fetches and pins a page. `kind` records how the caller reached the page
  // (random lookup vs. sequential read-ahead) — the SSD admission policy
  // keys off it. When the page is unreadable (its only current copy sat in
  // a dirty SSD frame that died with the device) the fetch cannot be served:
  // with `out_error` set, the error is reported there and an invalid guard
  // is returned; with `out_error == nullptr` the process panics.
  // NOTE on TURBOBP_NO_THREAD_SAFETY_ANALYSIS below: the pool's per-frame
  // I/O state machine juggles std::unique_lock (drop the shard latch across
  // device I/O, re-take it to install/settle), which Clang's analysis cannot
  // model — libstdc++'s unique_lock carries no annotations. These paths are
  // covered instead by the structural checker (tools/analysis/
  // static_check.py, io-under-latch + latch-order rules over lock-scope
  // nesting) and by the runtime LatchOrderChecker.
  PageGuard FetchPage(PageId pid, AccessKind kind, IoContext& ctx,
                      Status* out_error = nullptr)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Allocates a frame for a brand-new page (no disk read) and formats it.
  // The page is born dirty (it exists nowhere else yet).
  PageGuard NewPage(PageId pid, PageType type, IoContext& ctx)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Sequential read-ahead: brings [first, first+n) into the pool as one
  // trimmed multi-page disk request (Section 3.3.3), unpinned, marked
  // kSequential. Blocks the client until the data is available.
  void PrefetchRange(PageId first, uint32_t n, IoContext& ctx)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  bool Contains(PageId pid) const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  int64_t DirtyFrameCount() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  int64_t UsedFrameCount() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Flushes every dirty frame to disk (sharp checkpoint / shutdown).
  // Returns the completion time of the last write. When `for_checkpoint`,
  // routes each flushed page through SsdManager::OnCheckpointWrite.
  Time FlushAllDirty(IoContext& ctx, bool for_checkpoint)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Crash simulation: drops all frames, including dirty ones. Must not run
  // concurrently with in-flight fetches or flushes.
  void Reset() TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  BufferPoolStats stats() const;
  void ResetStats();

 private:
  friend class PageGuard;
  friend class InvariantAuditor;  // read-only structural audits (src/debug)
  friend struct AuditAccess;      // corruption injection in auditor tests

  // Per-frame I/O state machine (DESIGN.md §10). Transitions happen under
  // the owning shard's latch; waiters additionally read the value in their
  // wake predicates without it, hence the atomic.
  enum class FrameState : uint8_t {
    kFree = 0,      // no page: on the free list, or claimed by an operation
    kReading = 1,   // placeholder published, device read in flight
    kResident = 2,  // content valid
    kWriting = 3,   // checkpoint/shutdown flush in flight: still readable and
                    // pinnable, but not evictable or re-dirtyable
    kEvicting = 4,  // eviction I/O in flight: unreadable, settles to kFree
  };

  struct Frame {
    PageId page_id = kInvalidPageId;
    bool dirty = false;
    uint32_t pin_count = 0;
    AccessKind kind = AccessKind::kRandom;
    Time access_history[2] = {0, 0};  // [0]=last, [1]=previous (LRU-2)
    uint64_t touch_stamp = 0;         // bumped per access; victim-heap tag
    int32_t shard = 0;                // owning shard (fixed at construction)
    std::atomic<FrameState> state{FrameState::kFree};
    // Bumped on every settle (install, abort, eviction/flush completion);
    // never reset, so a waiter that captured the old value always wakes.
    std::atomic<uint64_t> io_epoch{0};
    // Sim mode: projected completion time of the in-flight I/O.
    Time ready_at = 0;
  };

  // Sleep/wake channel for real-thread waiters on one frame's in-flight I/O.
  struct FrameSync {
    TrackedMutex<LatchClass::kBufferFrame> mu;
    std::condition_variable_any cv;
    // Lets the completion path skip the lock+notify when nobody waits (the
    // overwhelmingly common case). seq_cst pairs with the waiter's
    // register-then-recheck, so a wakeup can never be missed.
    std::atomic<int32_t> waiters{0};
  };

  struct VictimEntry {
    Time key;
    uint64_t stamp;
    int32_t frame;
    bool operator>(const VictimEntry& o) const {
      return key != o.key ? key > o.key : frame > o.frame;
    }
  };

  using ShardMutex = TrackedMutex<LatchClass::kBufferPool>;
  using ShardLock = std::unique_lock<ShardMutex>;

  // One shard of the page table / free list / victim heap, covering the
  // contiguous frame range [frame_begin, frame_end).
  struct Shard {
    mutable ShardMutex mu;
    // Signalled whenever a frame of this shard may have become claimable
    // (unpin to zero, in-flight I/O settled, frame freed).
    std::condition_variable_any avail_cv;
    // Bumped per signal; filters spurious wakes.
    int64_t avail_signals TURBOBP_GUARDED_BY(mu) = 0;
    int64_t claim_waiters TURBOBP_GUARDED_BY(mu) = 0;
    // Frames mid-I/O (kReading/kWriting/kEvicting) plus frames claimed off
    // the free list or out of an eviction but not yet installed/released.
    int64_t transient TURBOBP_GUARDED_BY(mu) = 0;
    std::unordered_map<PageId, int32_t> page_table TURBOBP_GUARDED_BY(mu);
    std::vector<int32_t> free_list TURBOBP_GUARDED_BY(mu);
    std::priority_queue<VictimEntry, std::vector<VictimEntry>,
                        std::greater<VictimEntry>>
        victim_heap TURBOBP_GUARDED_BY(mu);
    // Fixed at construction; read latch-free.
    int32_t frame_begin = 0;
    int32_t frame_end = 0;
  };

  // Live counters (relaxed atomics; see BufferPoolStats for the snapshot).
  struct StatCounters {
    // Fetch classifications: bumped once per FetchPage hit/miss commitment,
    // LAST and with release ordering, so a snapshot reading ops first
    // (acquire) always observes hits + misses >= ops.
    std::atomic<int64_t> ops{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> ssd_hits{0};
    std::atomic<int64_t> disk_page_reads{0};
    std::atomic<int64_t> evictions_clean{0};
    std::atomic<int64_t> evictions_dirty{0};
    std::atomic<int64_t> prefetch_pages{0};
    std::atomic<int64_t> expanded_pages{0};
    std::atomic<int64_t> checkpoint_writes{0};
    std::atomic<Time> latch_wait_time{0};
    std::atomic<int64_t> pool_latch_waits{0};
    std::atomic<int64_t> pool_latch_wait_ns{0};

    static void Bump(std::atomic<int64_t>& c, int64_t by = 1) {
      c.fetch_add(by, std::memory_order_relaxed);
    }
    // Bumps a classification counter and then seals the fetch into ops.
    void Classified(std::atomic<int64_t>& c) {
      c.fetch_add(1, std::memory_order_relaxed);
      ops.fetch_add(1, std::memory_order_release);
    }
  };

  uint8_t* FrameData(int32_t frame) const {
    return const_cast<uint8_t*>(arena_.data()) +
           static_cast<size_t>(frame) * options_.page_bytes;
  }
  std::span<uint8_t> FrameSpan(int32_t frame) const {
    return {FrameData(frame), options_.page_bytes};
  }

  size_t ShardOf(PageId pid) const {
    return static_cast<size_t>((pid * 0x9E3779B97F4A7C15ull) >> 32) %
           shards_.size();
  }
  Shard& ShardOfFrame(int32_t frame) const {
    return *shards_[static_cast<size_t>(frames_[frame].shard)];
  }

  // Locks a shard, accounting contended acquisitions (the pool-latch-wait
  // metric the latch-decomposition ablation reports). Returns ownership via
  // std::unique_lock, which the thread-safety analysis cannot track — hence
  // the NO_TSA here and on every caller above/below.
  ShardLock LockShard(const Shard& sh) const TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  void Touch(Frame& f, Time now);
  // LRU-2 key: penultimate access time (0 while seen only once).
  Time VictimKey(const Frame& f) const { return f.access_history[1]; }

  // Claims a frame of `sh` for the caller (free list first, then LRU-2
  // eviction — which drops and re-takes `lock` around the eviction I/O).
  // With `may_wait`, blocks until a frame can be claimed (panics only when
  // every frame stays pinned); otherwise returns -1 when nothing is
  // immediately claimable. The claimed frame is kFree, off the free list,
  // unmapped, and counted in sh.transient until installed or released.
  int32_t ClaimFrame(Shard& sh, ShardLock& lock, IoContext& ctx,
                     bool may_wait) TURBOBP_REQUIRES(sh.mu)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Evicts the (resident, unpinned) frame: marks it kEvicting, releases the
  // latch for the WAL flush + SSD/disk write, re-latches, unmaps and resets
  // it. The page-table entry stays mapped during the I/O so a concurrent
  // fetch of the page waits instead of reading a not-yet-durable disk copy.
  // On return the frame is claimed by the caller.
  void EvictFrameLocked(Shard& sh, ShardLock& lock, int32_t frame,
                        IoContext& ctx) TURBOBP_REQUIRES(sh.mu)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  void RebuildVictimHeapLocked(Shard& sh) TURBOBP_REQUIRES(sh.mu);

  // Returns a claimed frame to the free list (lost a publish race).
  void ReleaseClaimedLocked(Shard& sh, int32_t frame) TURBOBP_REQUIRES(sh.mu);
  // Resets a frame's metadata (keeps io_epoch; leaves state kFree).
  void ResetFrameLocked(Frame& f);

  // Completion half of the read protocol: re-latches, flips the kReading
  // placeholder to kResident (pinned for FetchPage, unpinned for prefetch),
  // and wakes frame- and claim-waiters.
  PageGuard FinishRead(Shard& sh, int32_t frame, PageId pid, AccessKind kind,
                       IoContext& ctx) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  void FinishPrefetch(int32_t frame, PageId pid, IoContext& ctx)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Failure half: unmaps the placeholder and frees the frame.
  void AbortRead(int32_t frame, PageId pid) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Installs one speculative neighbour page from a warm-up expanded read
  // (free-list frames only; never evicts).
  void InstallExpandedPage(PageId p, const uint8_t* bytes, IoContext& ctx)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Blocks until the frame's io_epoch moves past the value captured under
  // the shard latch; returns with `lock` released. `spins` guards against a
  // sim-mode frame that never settles (impossible unless an event yields
  // mid-I/O, which the executor's run-to-completion model forbids).
  void WaitForFrame(int32_t frame, ShardLock& lock, IoContext& ctx,
                    int* spins) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Blocks while the frame is mid-flush (kWriting). Re-dirtying a page
  // under an in-flight checkpoint write must wait for the write so the
  // flushed image is a clean prefix of the page's history.
  void WaitWhileWriting(int32_t frame, ShardLock& lock)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Deep-queue checkpoint/shutdown drain: stages dirty frames in windows,
  // forces the WAL once per window, submits per-page writes to io_engine_
  // (which coalesces contiguous runs), and settles each frame from the
  // completion callback. Only called when io_engine_ != nullptr.
  Time FlushAllDirtyAsync(IoContext& ctx, bool for_checkpoint)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;

  // Wakes frame-waiters after a settle (shard latch held).
  void BumpEpochAndNotify(int32_t frame);
  // Wakes ClaimFrame waiters of `sh` (shard latch held).
  void NotifyAvail(Shard& sh) TURBOBP_REQUIRES(sh.mu);

  void VerifyFrameChecksum(int32_t frame, PageId pid) const;

  void Unpin(int32_t frame) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  Lsn LogUpdateInternal(int32_t frame, uint64_t txn_id, uint32_t offset,
                        uint32_t len) TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  void MarkDirtyInternal(int32_t frame, Lsn lsn)
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS;
  // Requires the frame's owning shard latch (not nameable here: the shard is
  // frame-indexed); the structural checker pins the callers.
  void MarkDirtyLocked(int32_t frame, Lsn lsn);

  Options options_;
  DiskManager* disk_;
  LogManager* log_;
  SsdManager* ssd_;
  AsyncIoEngine* io_engine_ = nullptr;  // optional; wraps disk_'s device
  NoSsdManager fallback_ssd_;  // used when ssd == nullptr

  std::vector<uint8_t> arena_;
  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<FrameSync[]> frame_sync_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> warmed_up_{false};  // pool filled once (stops expansion)
  std::atomic<int64_t> free_frames_{0};  // total across shards (expansion gate)
  mutable StatCounters counters_;
};

}  // namespace turbobp

#endif  // TURBOBP_BUFFER_BUFFER_POOL_H_
