#include "buffer/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/status.h"
#include "fault/crash_point.h"
#include "io/async_io_engine.h"

namespace turbobp {

// ------------------------------------------------------------- PageGuard

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

PageId PageGuard::page_id() const {
  TURBOBP_DCHECK(valid());
  return pool_->frames_[frame_].page_id;
}

PageView PageGuard::view() {
  TURBOBP_DCHECK(valid());
  return PageView(pool_->FrameSpan(frame_));
}

const PageView PageGuard::view() const {
  TURBOBP_DCHECK(valid());
  return PageView(pool_->FrameSpan(frame_));
}

Lsn PageGuard::LogUpdate(uint64_t txn_id, uint32_t offset, uint32_t len) {
  TURBOBP_DCHECK(valid());
  return pool_->LogUpdateInternal(frame_, txn_id, offset, len);
}

void PageGuard::MarkDirtyUnlogged() {
  TURBOBP_DCHECK(valid());
  pool_->MarkDirtyInternal(frame_, kInvalidLsn);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

// ------------------------------------------------------------ BufferPool

BufferPool::BufferPool(const Options& options, DiskManager* disk,
                       LogManager* log, SsdManager* ssd,
                       AsyncIoEngine* io_engine)
    : options_(options), disk_(disk), log_(log), ssd_(ssd),
      io_engine_(io_engine) {
  TURBOBP_CHECK(disk != nullptr);
  TURBOBP_CHECK(options.num_frames > 0);
  TURBOBP_CHECK(options.page_bytes == disk->page_bytes());
  if (ssd_ == nullptr) ssd_ = &fallback_ssd_;
  arena_.resize(options.num_frames * static_cast<size_t>(options.page_bytes));
  frames_ = std::make_unique<Frame[]>(options.num_frames);
  frame_sync_ = std::make_unique<FrameSync[]>(options.num_frames);

  uint64_t shards = options.num_shards;
  if (shards == 0) {
    shards = std::clamp<uint64_t>(options.num_frames / 16, 1, 16);
  }
  shards = std::min<uint64_t>(shards, options.num_frames);
  shards_.reserve(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->frame_begin = static_cast<int32_t>(options.num_frames * s / shards);
    sh->frame_end = static_cast<int32_t>(options.num_frames * (s + 1) / shards);
    // Descending push so the lowest-numbered frame of the shard pops first
    // (the unit tests pin the frame-0-first fill order).
    for (int32_t i = sh->frame_end - 1; i >= sh->frame_begin; --i) {
      sh->free_list.push_back(i);
      frames_[i].shard = static_cast<int32_t>(s);
    }
    shards_.push_back(std::move(sh));
  }
  free_frames_.store(static_cast<int64_t>(options.num_frames),
                     std::memory_order_relaxed);
}

BufferPool::ShardLock BufferPool::LockShard(const Shard& sh) const {
  ShardLock lock(sh.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const auto t0 = std::chrono::steady_clock::now();
    lock.lock();
    const auto dt = std::chrono::steady_clock::now() - t0;
    StatCounters::Bump(counters_.pool_latch_waits);
    StatCounters::Bump(
        counters_.pool_latch_wait_ns,
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }
  return lock;
}

void BufferPool::Touch(Frame& f, Time now) {
  f.access_history[1] = f.access_history[0];
  f.access_history[0] = now;
  ++f.touch_stamp;
}

void BufferPool::VerifyFrameChecksum(int32_t frame, PageId pid) const {
  const PageView v(FrameSpan(frame));
  const PageHeader& h = v.header();
  if (h.page_id != pid && h.page_id != kInvalidPageId) {
    Panic(__FILE__, __LINE__, "device returned the wrong page");
  }
  if (options_.verify_checksums && h.page_id == pid && !v.VerifyChecksum()) {
    Panic(__FILE__, __LINE__, "page checksum mismatch: stale or torn copy");
  }
}

void BufferPool::BumpEpochAndNotify(int32_t frame) {
  frames_[frame].io_epoch.fetch_add(1, std::memory_order_seq_cst);
  FrameSync& s = frame_sync_[frame];
  if (s.waiters.load(std::memory_order_seq_cst) > 0) {
    // The empty critical section orders the bump against a waiter that is
    // between its predicate check and the sleep.
    { TrackedLockGuard sync_lock(s.mu); }
    s.cv.notify_all();
  }
}

void BufferPool::NotifyAvail(Shard& sh) {
  ++sh.avail_signals;
  if (sh.claim_waiters > 0) sh.avail_cv.notify_all();
}

void BufferPool::WaitForFrame(int32_t frame, ShardLock& lock, IoContext& ctx,
                              int* spins) {
  Frame& f = frames_[frame];
  const uint64_t epoch = f.io_epoch.load(std::memory_order_seq_cst);
  const Time ready = f.ready_at;
  lock.unlock();
  if (ctx.executor != nullptr) {
    // Sim mode: executor events run to completion, so an in-flight frame is
    // only observable across a client's own re-entry; waiting in virtual
    // time suffices. The spin guard catches a frame that never settles.
    ctx.Wait(ready);
    if (++*spins > 1000) {
      Panic(__FILE__, __LINE__, "in-flight frame failed to settle (sim)");
    }
    return;
  }
  FrameSync& s = frame_sync_[frame];
  std::unique_lock sync_lock(s.mu);
  s.waiters.fetch_add(1, std::memory_order_seq_cst);
  s.cv.wait(sync_lock, [&f, epoch] {
    return f.io_epoch.load(std::memory_order_seq_cst) != epoch;
  });
  s.waiters.fetch_sub(1, std::memory_order_relaxed);
}

void BufferPool::WaitWhileWriting(int32_t frame, ShardLock& lock) {
  Frame& f = frames_[frame];
  while (f.state.load(std::memory_order_relaxed) == FrameState::kWriting) {
    // The epoch cannot move while we hold the shard latch (completions
    // re-latch), so capturing it here cannot miss the wakeup.
    const uint64_t epoch = f.io_epoch.load(std::memory_order_seq_cst);
    lock.unlock();
    FrameSync& s = frame_sync_[frame];
    {
      std::unique_lock sync_lock(s.mu);
      s.waiters.fetch_add(1, std::memory_order_seq_cst);
      s.cv.wait(sync_lock, [&f, epoch] {
        return f.io_epoch.load(std::memory_order_seq_cst) != epoch;
      });
      s.waiters.fetch_sub(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

void BufferPool::ResetFrameLocked(Frame& f) {
  f.page_id = kInvalidPageId;
  f.dirty = false;
  f.pin_count = 0;
  f.kind = AccessKind::kRandom;
  f.access_history[0] = f.access_history[1] = 0;
  f.touch_stamp = 0;
  f.ready_at = 0;
  f.state.store(FrameState::kFree, std::memory_order_relaxed);
}

void BufferPool::ReleaseClaimedLocked(Shard& sh, int32_t frame) {
  ResetFrameLocked(frames_[frame]);
  sh.free_list.push_back(frame);
  free_frames_.fetch_add(1, std::memory_order_relaxed);
  --sh.transient;
  NotifyAvail(sh);
}

PageGuard BufferPool::FinishRead(Shard& sh, int32_t frame, PageId pid,
                                 AccessKind kind, IoContext& ctx) {
  ShardLock lock = LockShard(sh);
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.state.load(std::memory_order_relaxed) ==
                 FrameState::kReading);
  TURBOBP_DCHECK(f.page_id == pid);
  f.dirty = false;
  f.pin_count = 1;
  f.kind = kind;
  f.access_history[0] = f.access_history[1] = 0;
  Touch(f, ctx.now);
  f.ready_at = ctx.now;
  f.state.store(FrameState::kResident, std::memory_order_relaxed);
  --sh.transient;
  BumpEpochAndNotify(frame);
  NotifyAvail(sh);
  return PageGuard(this, frame);
}

void BufferPool::FinishPrefetch(int32_t frame, PageId pid, IoContext& ctx) {
  Shard& sh = ShardOfFrame(frame);
  ShardLock lock = LockShard(sh);
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.state.load(std::memory_order_relaxed) ==
                 FrameState::kReading);
  TURBOBP_DCHECK(f.page_id == pid);
  f.dirty = false;
  f.pin_count = 0;
  f.kind = AccessKind::kSequential;
  f.access_history[0] = f.access_history[1] = 0;
  Touch(f, ctx.now);
  f.ready_at = ctx.now;
  f.state.store(FrameState::kResident, std::memory_order_relaxed);
  --sh.transient;
  BumpEpochAndNotify(frame);
  NotifyAvail(sh);
}

void BufferPool::AbortRead(int32_t frame, PageId pid) {
  Shard& sh = ShardOfFrame(frame);
  ShardLock lock = LockShard(sh);
  Frame& f = frames_[frame];
  const auto it = sh.page_table.find(pid);
  if (it != sh.page_table.end() && it->second == frame) {
    sh.page_table.erase(it);
  }
  ResetFrameLocked(f);
  sh.free_list.push_back(frame);
  free_frames_.fetch_add(1, std::memory_order_relaxed);
  --sh.transient;
  BumpEpochAndNotify(frame);
  NotifyAvail(sh);
}

void BufferPool::InstallExpandedPage(PageId p, const uint8_t* bytes,
                                     IoContext& ctx) {
  Shard& sh = *shards_[ShardOf(p)];
  ShardLock lock = LockShard(sh);
  if (sh.page_table.contains(p)) return;
  if (sh.free_list.empty()) return;  // speculative pages only: never evict
  const int32_t fr = sh.free_list.back();
  sh.free_list.pop_back();
  free_frames_.fetch_sub(1, std::memory_order_relaxed);
  std::memcpy(FrameData(fr), bytes, options_.page_bytes);
  VerifyFrameChecksum(fr, p);
  Frame& f = frames_[fr];
  f.page_id = p;
  f.dirty = false;
  f.pin_count = 0;
  // Speculative neighbours arrive via one big I/O: treat as sequential so
  // they do not pollute the SSD admission policy.
  f.kind = AccessKind::kSequential;
  f.access_history[0] = f.access_history[1] = 0;
  Touch(f, ctx.now);
  f.state.store(FrameState::kResident, std::memory_order_relaxed);
  sh.page_table.emplace(p, fr);
  StatCounters::Bump(counters_.expanded_pages);
}

PageGuard BufferPool::FetchPage(PageId pid, AccessKind kind, IoContext& ctx,
                                Status* out_error) {
  if (ctx.charge) ctx.now += options_.hit_cpu;
  Shard& sh = *shards_[ShardOf(pid)];
  int32_t frame = -1;
  int spins = 0;
  for (;;) {
    ShardLock lock = LockShard(sh);
    const auto it = sh.page_table.find(pid);
    if (it != sh.page_table.end()) {
      const int32_t found = it->second;
      Frame& f = frames_[found];
      const FrameState st = f.state.load(std::memory_order_relaxed);
      if (st == FrameState::kReading || st == FrameState::kEvicting) {
        // Another client's I/O is in flight on this page: wait on that
        // frame alone (the shard stays available to everyone else), then
        // re-probe — the page is resident after a read, gone after an evict.
        WaitForFrame(found, lock, ctx, &spins);
        continue;
      }
      Touch(f, ctx.now);
      f.kind = kind;
      ++f.pin_count;
      counters_.Classified(counters_.hits);
      ++ctx.bp_hits;
      lock.unlock();
      // TAC pathology (Section 2.5): a pending SSD admission write holds the
      // page latch; only the client touching that page waits for it — with
      // every pool latch released.
      const Time busy = ssd_->LatchBusyUntil(pid, ctx.now);
      if (busy > ctx.now && ctx.charge) {
        counters_.latch_wait_time.fetch_add(busy - ctx.now,
                                            std::memory_order_relaxed);
        ctx.latch_wait += busy - ctx.now;
        ctx.Wait(busy);
      }
      return PageGuard(this, found);
    }

    frame = ClaimFrame(sh, lock, ctx, /*may_wait=*/true);
    if (sh.page_table.contains(pid)) {
      // The claim dropped the latch (eviction or wait) and another client
      // published this page meanwhile; retry as a hit.
      ReleaseClaimedLocked(sh, frame);
      continue;
    }
    // Publish the read-pending placeholder: a concurrent fetch of this page
    // now waits on the frame instead of issuing a second device read.
    Frame& f = frames_[frame];
    f.page_id = pid;
    f.kind = kind;
    f.ready_at = ctx.now;
    f.state.store(FrameState::kReading, std::memory_order_relaxed);
    sh.page_table.emplace(pid, frame);
    // Commitment point: this call is a miss (counted exactly once even if
    // the claim retried above).
    counters_.Classified(counters_.misses);
    ++ctx.bp_misses;
    break;
  }

  // Miss path, Section 2.2 — no pool latch held across any of the I/O below.
  ssd_->OnBufferPoolMiss(pid, kind, ctx);

  Status ssd_error;
  if (ssd_->TryReadPage(pid, FrameSpan(frame), ctx, &ssd_error)) {
    StatCounters::Bump(counters_.ssd_hits);
    ++ctx.ssd_hits;
    VerifyFrameChecksum(frame, pid);
    return FinishRead(sh, frame, pid, kind, ctx);
  }
  if (!ssd_error.ok()) {
    // The only current copy of this page sat in a dirty SSD frame that
    // could not be salvaged; the disk version is stale, so serving it would
    // silently corrupt the database. Surface a hard error instead.
    AbortRead(frame, pid);
    if (out_error != nullptr) {
      *out_error = ssd_error;
      return PageGuard();
    }
    Panic(__FILE__, __LINE__, "page unreadable: newest copy lost with the SSD");
  }

  // Read from disk. While the pool still has free frames SQL Server 2008 R2
  // expands every single-page read into an aligned multi-page read.
  const uint32_t expand = options_.expand_read_pages;
  const bool can_expand =
      options_.expand_reads_until_warm &&
      !warmed_up_.load(std::memory_order_relaxed) && expand > 1 &&
      free_frames_.load(std::memory_order_relaxed) >=
          static_cast<int64_t>(expand);
  if (can_expand) {
    const PageId block_first = pid - pid % expand;
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(expand, disk_->num_pages() - block_first));
    static thread_local std::vector<uint8_t> scratch;
    scratch.resize(static_cast<size_t>(count) * options_.page_bytes);
    TURBOBP_CHECK_OK(disk_->ReadPages(block_first, count, scratch, ctx));
    StatCounters::Bump(counters_.disk_page_reads, count);
    for (uint32_t i = 0; i < count; ++i) {
      const PageId p = block_first + i;
      if (p == pid) continue;  // the requested page lands in our claim below
      // Never install a speculative disk copy that the SSD supersedes (a
      // restored dirty SSD page after a warm restart): the disk version is
      // stale; a future fetch must take the SSD path.
      if (ssd_->Probe(p) == SsdProbe::kNewerCopy) continue;
      InstallExpandedPage(
          p, scratch.data() + static_cast<size_t>(i) * options_.page_bytes,
          ctx);
    }
    std::memcpy(
        FrameData(frame),
        scratch.data() + static_cast<size_t>(pid - block_first) *
                             options_.page_bytes,
        options_.page_bytes);
    VerifyFrameChecksum(frame, pid);
    ssd_->OnDiskRead(pid, FrameSpan(frame), kind, ctx);
    return FinishRead(sh, frame, pid, kind, ctx);
  }

  TURBOBP_CHECK_OK(disk_->ReadPage(pid, FrameSpan(frame), ctx));
  StatCounters::Bump(counters_.disk_page_reads);
  VerifyFrameChecksum(frame, pid);
  ssd_->OnDiskRead(pid, FrameSpan(frame), kind, ctx);
  return FinishRead(sh, frame, pid, kind, ctx);
}

PageGuard BufferPool::NewPage(PageId pid, PageType type, IoContext& ctx) {
  Shard& sh = *shards_[ShardOf(pid)];
  int spins = 0;
  for (;;) {
    ShardLock lock = LockShard(sh);
    int32_t frame;
    const auto it = sh.page_table.find(pid);
    if (it != sh.page_table.end()) {
      frame = it->second;
      Frame& stale = frames_[frame];
      const FrameState st = stale.state.load(std::memory_order_relaxed);
      if (st != FrameState::kResident) {
        WaitForFrame(frame, lock, ctx, &spins);
        continue;
      }
      // A speculative multi-page read (expansion / read-ahead) may have
      // pulled this not-yet-allocated page in as a formatted free page;
      // reclaim the frame in place.
      TURBOBP_CHECK(stale.pin_count == 0);
      TURBOBP_CHECK(!stale.dirty);
      sh.page_table.erase(it);
      ++sh.transient;  // claimed by us until installed below
    } else {
      frame = ClaimFrame(sh, lock, ctx, /*may_wait=*/true);
      if (sh.page_table.contains(pid)) {
        ReleaseClaimedLocked(sh, frame);
        continue;
      }
    }
    PageView v(FrameSpan(frame));
    v.Format(pid, type);
    Frame& f = frames_[frame];
    f.page_id = pid;
    f.kind = AccessKind::kRandom;
    f.access_history[0] = f.access_history[1] = 0;
    Touch(f, ctx.now);
    // A brand-new page exists nowhere else: it is dirty from birth, and any
    // stale SSD copy of a recycled page id must go.
    f.dirty = true;
    f.pin_count = 1;
    f.state.store(FrameState::kResident, std::memory_order_relaxed);
    --sh.transient;
    sh.page_table.emplace(pid, frame);
    BumpEpochAndNotify(frame);
    NotifyAvail(sh);
    ssd_->OnPageDirtied(pid);
    return PageGuard(this, frame);
  }
}

void BufferPool::PrefetchRange(PageId first, uint32_t n, IoContext& ctx) {
  if (n == 0) return;
  TURBOBP_CHECK(first + n <= disk_->num_pages());

  // Claim a frame and publish a read-pending placeholder for every page not
  // already resident (or in flight), and ask the SSD what it knows.
  struct Pending {
    PageId pid;
    int32_t frame;
    SsdProbe probe;
  };
  std::vector<Pending> pages;
  pages.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const PageId p = first + i;
    Shard& sh = *shards_[ShardOf(p)];
    ShardLock lock = LockShard(sh);
    if (sh.page_table.contains(p)) continue;
    // Read-ahead is advisory: skip pages rather than stall behind a shard
    // whose frames are all pinned or in flight.
    const int32_t fr = ClaimFrame(sh, lock, ctx, /*may_wait=*/false);
    if (fr < 0) continue;
    if (sh.page_table.contains(p)) {  // claim's eviction lost a publish race
      ReleaseClaimedLocked(sh, fr);
      continue;
    }
    Frame& f = frames_[fr];
    f.page_id = p;
    f.kind = AccessKind::kSequential;
    f.ready_at = ctx.now;
    f.state.store(FrameState::kReading, std::memory_order_relaxed);
    sh.page_table.emplace(p, fr);
    lock.unlock();
    pages.push_back({p, fr, ssd_->Probe(p)});
  }
  if (pages.empty()) return;

  auto read_via_ssd = [&](const Pending& ent) -> bool {
    if (!ssd_->TryReadPage(ent.pid, FrameSpan(ent.frame), ctx)) return false;
    StatCounters::Bump(counters_.ssd_hits);
    ++ctx.ssd_hits;
    VerifyFrameChecksum(ent.frame, ent.pid);
    FinishPrefetch(ent.frame, ent.pid, ctx);
    StatCounters::Bump(counters_.prefetch_pages);
    return true;
  };

  // Trim leading and trailing pages that the SSD can serve (Section 3.3.3):
  // the disk handles one large I/O better than several small ones, so only
  // the ends of the request are peeled off.
  size_t lo = 0;
  size_t hi = pages.size();
  while (lo < hi && pages[lo].probe != SsdProbe::kAbsent &&
         read_via_ssd(pages[lo])) {
    ++lo;
  }
  while (hi > lo && pages[hi - 1].probe != SsdProbe::kAbsent &&
         read_via_ssd(pages[hi - 1])) {
    --hi;
  }
  if (lo >= hi) return;

  if (io_engine_ != nullptr) {
    // Deep-queue path: one engine request per pending page, installed from
    // the completion callback. The engine coalesces contiguous runs into
    // vectored device ops bounded by its stripe-sized batch limit, so a
    // 64-page window becomes several independent ops that a deep queue runs
    // on all spindles at once (the serial path's single huge request already
    // parallelises inside the striped array; the win here is overlapping
    // the SSD-split and gap-split fragments). Callbacks take shard latches,
    // so no pool latch may be held here.
    uint32_t submitted = 0;
    for (size_t i = lo; i < hi; ++i) {
      const Pending& ent = pages[i];
      if (ent.probe == SsdProbe::kNewerCopy) {
        // Newer SSD copy (LC): never read this page from disk (see the
        // serial path below). Extra SSD read; drop the placeholder on
        // failure.
        if (!read_via_ssd(ent)) AbortRead(ent.frame, ent.pid);
        continue;
      }
      AsyncIoRequest req;
      req.op = IoOp::kRead;
      req.first_page = ent.pid;
      req.num_pages = 1;
      req.out = FrameSpan(ent.frame);
      req.on_complete = [this, &ctx, ent](const IoCompletion& c) {
        TURBOBP_CHECK_OK(c.result.status);
        VerifyFrameChecksum(ent.frame, ent.pid);
        ssd_->OnDiskRead(ent.pid, FrameSpan(ent.frame),
                         AccessKind::kSequential, ctx);
        FinishPrefetch(ent.frame, ent.pid, ctx);
        StatCounters::Bump(counters_.prefetch_pages);
      };
      io_engine_->Submit(req, ctx);
      ++submitted;
    }
    if (submitted > 0) {
      StatCounters::Bump(counters_.disk_page_reads, submitted);
      ctx.disk_reads += submitted;
      ctx.Wait(io_engine_->Drain(ctx));
    }
    return;
  }

  // One contiguous disk read covering the remaining span (it may include
  // pages that are already resident or cached on the SSD; those disk copies
  // are discarded).
  const PageId disk_first = pages[lo].pid;
  const uint32_t disk_count =
      static_cast<uint32_t>(pages[hi - 1].pid - disk_first + 1);
  static thread_local std::vector<uint8_t> scratch;
  scratch.resize(static_cast<size_t>(disk_count) * options_.page_bytes);
  TURBOBP_CHECK_OK(disk_->ReadPages(disk_first, disk_count, scratch, ctx));
  StatCounters::Bump(counters_.disk_page_reads, disk_count);

  for (size_t i = lo; i < hi; ++i) {
    const Pending& ent = pages[i];
    if (ent.probe == SsdProbe::kNewerCopy) {
      // The SSD holds a newer version (LC): the disk copy just read is
      // stale and must be replaced via an extra SSD read. If that read
      // fails (lost page on a dying SSD), drop the placeholder — installing
      // the stale disk copy would corrupt the database; a later FetchPage
      // surfaces the hard error.
      if (!read_via_ssd(ent)) AbortRead(ent.frame, ent.pid);
      continue;
    }
    std::memcpy(FrameData(ent.frame),
                scratch.data() + static_cast<size_t>(ent.pid - disk_first) *
                                     options_.page_bytes,
                options_.page_bytes);
    VerifyFrameChecksum(ent.frame, ent.pid);
    ssd_->OnDiskRead(ent.pid, FrameSpan(ent.frame), AccessKind::kSequential,
                     ctx);
    FinishPrefetch(ent.frame, ent.pid, ctx);
    StatCounters::Bump(counters_.prefetch_pages);
  }
}

bool BufferPool::Contains(PageId pid) const {
  const Shard& sh = *shards_[ShardOf(pid)];
  ShardLock lock = LockShard(sh);
  return sh.page_table.contains(pid);
}

int64_t BufferPool::DirtyFrameCount() const {
  int64_t n = 0;
  for (const auto& shp : shards_) {
    ShardLock lock = LockShard(*shp);
    for (int32_t i = shp->frame_begin; i < shp->frame_end; ++i) {
      const Frame& f = frames_[i];
      if (f.page_id != kInvalidPageId && f.dirty) ++n;
    }
  }
  return n;
}

int64_t BufferPool::UsedFrameCount() const {
  int64_t n = 0;
  for (const auto& shp : shards_) {
    ShardLock lock = LockShard(*shp);
    n += static_cast<int64_t>(shp->page_table.size());
  }
  return n;
}

int32_t BufferPool::ClaimFrame(Shard& sh, ShardLock& lock, IoContext& ctx,
                               bool may_wait) {
  int fruitless = 0;
  for (;;) {
    if (!sh.free_list.empty()) {
      const int32_t frame = sh.free_list.back();
      sh.free_list.pop_back();
      free_frames_.fetch_sub(1, std::memory_order_relaxed);
      ++sh.transient;
      return frame;
    }
    warmed_up_.store(true, std::memory_order_relaxed);
    // Pop LRU-2 victims until a currently-valid entry surfaces; rebuild the
    // heap from scratch when it runs dry (stale entries are simply dropped).
    for (int attempts = 0; attempts < 3; ++attempts) {
      while (!sh.victim_heap.empty()) {
        const VictimEntry e = sh.victim_heap.top();
        sh.victim_heap.pop();
        const Frame& f = frames_[e.frame];
        if (f.page_id == kInvalidPageId || f.pin_count > 0 ||
            f.touch_stamp != e.stamp ||
            f.state.load(std::memory_order_relaxed) != FrameState::kResident) {
          continue;  // stale or unusable entry
        }
        EvictFrameLocked(sh, lock, e.frame, ctx);
        return e.frame;
      }
      RebuildVictimHeapLocked(sh);
    }
    if (!may_wait) return -1;
    if (ctx.executor != nullptr) {
      // Sim mode runs one client at a time: nobody else can unpin a frame,
      // so waiting is hopeless.
      Panic(__FILE__, __LINE__, "buffer pool exhausted: all frames pinned");
    }
    // Real threads: a frame may be mid-I/O, or pinned by a guard about to
    // be released. Wait for a claimability signal; panic only after a
    // signal-free grace period — then every frame really is stuck pinned.
    const int64_t signals_before = sh.avail_signals;
    if (sh.transient == 0 && ++fruitless > 50) {
      Panic(__FILE__, __LINE__, "buffer pool exhausted: all frames pinned");
    }
    ++sh.claim_waiters;
    sh.avail_cv.wait_for(lock, std::chrono::milliseconds(20));
    --sh.claim_waiters;
    if (sh.avail_signals != signals_before || sh.transient > 0) fruitless = 0;
  }
}

void BufferPool::RebuildVictimHeapLocked(Shard& sh) {
  sh.victim_heap = {};
  for (int32_t i = sh.frame_begin; i < sh.frame_end; ++i) {
    const Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pin_count > 0 ||
        f.state.load(std::memory_order_relaxed) != FrameState::kResident) {
      continue;
    }
    sh.victim_heap.push(VictimEntry{VictimKey(f), f.touch_stamp, i});
  }
}

void BufferPool::EvictFrameLocked(Shard& sh, ShardLock& lock, int32_t frame,
                                  IoContext& ctx) {
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.pin_count == 0);
  const PageId pid = f.page_id;
  const AccessKind kind = f.kind;
  const bool dirty = f.dirty;
  // The page-table entry stays mapped while the I/O runs: a concurrent
  // fetch of this page waits on the frame instead of reading a disk copy
  // that is not durable yet.
  f.state.store(FrameState::kEvicting, std::memory_order_relaxed);
  ++sh.transient;
  lock.unlock();

  // Loader-mode evictions (population) bypass the SSD manager entirely:
  // every measured run starts from a cold SSD buffer pool, as in the paper
  // (the DBMS is restarted between runs).
  if (!dirty) {
    StatCounters::Bump(counters_.evictions_clean);
    if (ctx.charge) {
      // Re-seal before offering the bytes to the SSD: a frame cleaned by a
      // snapshot-based flush still carries its pre-seal in-frame checksum.
      PageView v(FrameSpan(frame));
      v.SealChecksum();
      ssd_->OnEvictClean(pid, FrameSpan(frame), kind, ctx);
    }
  } else {
    StatCounters::Bump(counters_.evictions_dirty);
    PageView v(FrameSpan(frame));
    v.SealChecksum();
    const Lsn page_lsn = v.header().lsn;
    // WAL rule (Section 2.4): the log must be durable through the page's
    // LSN before the page is written to the SSD or the disk. The page
    // write's arrival time is therefore the log flush's completion.
    const Time log_done =
        log_ != nullptr ? log_->FlushTo(page_lsn, ctx) : ctx.now;
    // WAL obligation discharged, page not yet written anywhere (the window
    // where the log alone carries the update). No pool latch is held; the
    // frame is fenced off as kEvicting.
    TURBOBP_CRASH_POINT("bp/evict-after-wal");
    IoContext write_ctx = ctx;
    write_ctx.now = std::max(ctx.now, log_done);
    EvictionOutcome outcome;  // loader mode: straight to disk
    if (ctx.charge) {
      outcome =
          ssd_->OnEvictDirty(pid, FrameSpan(frame), kind, page_lsn, write_ctx);
    }
    if (outcome.write_to_disk) {
      // The disk array is the durable home; its failure has no fallback.
      TURBOBP_CHECK_OK(
          disk_->WritePage(pid, FrameSpan(frame), write_ctx).status);
      // The dirty eviction reached the disk (write-through designs).
      TURBOBP_CRASH_POINT("bp/evict-disk-write");
    }
  }

  lock.lock();
  sh.page_table.erase(pid);
  ResetFrameLocked(f);
  // The frame stays claimed by the caller (still counted in sh.transient);
  // only same-page waiters are woken, to re-probe and miss.
  BumpEpochAndNotify(frame);
}

Time BufferPool::FlushAllDirty(IoContext& ctx, bool for_checkpoint) {
  if (io_engine_ != nullptr) return FlushAllDirtyAsync(ctx, for_checkpoint);
  Time last = ctx.now;
  std::vector<uint8_t> snapshot(options_.page_bytes);
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    for (int32_t i = sh.frame_begin; i < sh.frame_end; ++i) {
      PageId pid;
      AccessKind kind;
      {
        ShardLock lock = LockShard(sh);
        Frame& f = frames_[i];
        if (f.page_id == kInvalidPageId || !f.dirty ||
            f.state.load(std::memory_order_relaxed) !=
                FrameState::kResident) {
          continue;  // empty, clean, or already being written elsewhere
        }
        pid = f.page_id;
        kind = f.kind;
        // kWriting: still readable and pinnable, but not evictable, not
        // re-dirtyable (MarkDirty waits), and not double-flushable.
        f.state.store(FrameState::kWriting, std::memory_order_relaxed);
        ++sh.transient;
        std::memcpy(snapshot.data(), FrameData(i), options_.page_bytes);
      }
      // WAL rule first, then the disk write — latch-free, from the snapshot.
      PageView v{std::span<uint8_t>(snapshot)};
      v.SealChecksum();
      const Lsn lsn = v.header().lsn;
      const Time log_done =
          log_ != nullptr ? log_->FlushTo(lsn, ctx) : ctx.now;
      IoContext write_ctx = ctx;
      write_ctx.now = std::max(ctx.now, log_done);
      const IoResult w = disk_->WritePage(
          pid, std::span<const uint8_t>(snapshot), write_ctx);
      TURBOBP_CHECK_OK(w.status);
      last = std::max(last, w.time);
      // One dirty frame flushed (checkpoint or shutdown), others may still
      // be dirty in memory only. No pool latch is held.
      TURBOBP_CRASH_POINT("bp/flush-page");
      if (for_checkpoint) {
        IoContext ck_ctx = ctx;
        ssd_->OnCheckpointWrite(pid, std::span<const uint8_t>(snapshot), kind,
                                lsn, ck_ctx);
        StatCounters::Bump(counters_.checkpoint_writes);
      }
      {
        ShardLock lock = LockShard(sh);
        Frame& f = frames_[i];
        f.dirty = false;
        f.state.store(FrameState::kResident, std::memory_order_relaxed);
        --sh.transient;
        BumpEpochAndNotify(i);
        NotifyAvail(sh);
      }
    }
  }
  return last;
}

Time BufferPool::FlushAllDirtyAsync(IoContext& ctx, bool for_checkpoint) {
  Time last = ctx.now;
  struct Staged {
    PageId pid = kInvalidPageId;
    int32_t frame = -1;
    AccessKind kind = AccessKind::kRandom;
    Lsn lsn = kInvalidLsn;
    std::vector<uint8_t> snapshot;
  };
  // A window of ~2x the ring keeps the device saturated while bounding the
  // staging memory to a few dozen page images.
  const size_t window =
      static_cast<size_t>(io_engine_->queue_depth()) * 2;
  std::vector<Staged> staged;
  staged.reserve(window);

  auto flush_window = [&]() {
    if (staged.empty()) return;
    // Sorting by page id lets the engine coalesce contiguous dirty runs
    // into vectored writes.
    std::sort(staged.begin(), staged.end(),
              [](const Staged& a, const Staged& b) { return a.pid < b.pid; });
    // WAL rule, once per window: the log must be durable through every
    // staged page's LSN BEFORE any write is acknowledged to the queue (the
    // sim backend may move bytes to the device inside Submit). Forcing to
    // the window maximum over-forces at worst, never under-forces.
    Lsn max_lsn = kInvalidLsn;
    for (const Staged& s : staged) max_lsn = std::max(max_lsn, s.lsn);
    const Time log_done =
        log_ != nullptr ? log_->FlushTo(max_lsn, ctx) : ctx.now;
    IoContext io_ctx = ctx;
    io_ctx.now = std::max(ctx.now, log_done);
    for (Staged& s : staged) {
      AsyncIoRequest req;
      req.op = IoOp::kWrite;
      req.first_page = s.pid;
      req.num_pages = 1;
      req.data = std::span<const uint8_t>(s.snapshot);
      // `staged` gains no elements until the window drains: the pointer
      // stays valid for the callback's lifetime.
      Staged* sp = &s;
      req.on_complete = [this, &ctx, for_checkpoint,
                         sp](const IoCompletion& c) {
        TURBOBP_CHECK_OK(c.result.status);
        // One dirty frame flushed; same durability edge as the serial
        // path's per-page write. No pool latch is held (the engine dropped
        // its own latch before calling back).
        TURBOBP_CRASH_POINT("bp/flush-page");
        if (for_checkpoint) {
          IoContext ck_ctx = ctx;
          ssd_->OnCheckpointWrite(sp->pid,
                                  std::span<const uint8_t>(sp->snapshot),
                                  sp->kind, sp->lsn, ck_ctx);
          StatCounters::Bump(counters_.checkpoint_writes);
        }
        Shard& sh = ShardOfFrame(sp->frame);
        ShardLock lock = LockShard(sh);
        Frame& f = frames_[sp->frame];
        f.dirty = false;
        f.state.store(FrameState::kResident, std::memory_order_relaxed);
        --sh.transient;
        BumpEpochAndNotify(sp->frame);
        NotifyAvail(sh);
      };
      io_engine_->Submit(req, io_ctx);
    }
    last = std::max(last, io_engine_->Drain(io_ctx));
    staged.clear();
  };

  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    for (int32_t i = sh.frame_begin; i < sh.frame_end; ++i) {
      {
        ShardLock lock = LockShard(sh);
        Frame& f = frames_[i];
        if (f.page_id == kInvalidPageId || !f.dirty ||
            f.state.load(std::memory_order_relaxed) !=
                FrameState::kResident) {
          continue;  // empty, clean, or already being written elsewhere
        }
        Staged s;
        s.pid = f.page_id;
        s.frame = i;
        s.kind = f.kind;
        // kWriting until the completion callback settles the frame.
        f.state.store(FrameState::kWriting, std::memory_order_relaxed);
        ++sh.transient;
        s.snapshot.resize(options_.page_bytes);
        std::memcpy(s.snapshot.data(), FrameData(i), options_.page_bytes);
        staged.push_back(std::move(s));
      }
      {
        Staged& s = staged.back();
        PageView v{std::span<uint8_t>(s.snapshot)};
        v.SealChecksum();
        s.lsn = v.header().lsn;
      }
      if (staged.size() >= window) flush_window();
    }
  }
  flush_window();
  return last;
}

void BufferPool::Reset() {
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    ShardLock lock = LockShard(sh);
    sh.page_table.clear();
    sh.victim_heap = {};
    sh.free_list.clear();
    sh.transient = 0;
    for (int32_t i = sh.frame_end - 1; i >= sh.frame_begin; --i) {
      ResetFrameLocked(frames_[i]);
      sh.free_list.push_back(i);
    }
    NotifyAvail(sh);
  }
  free_frames_.store(static_cast<int64_t>(options_.num_frames),
                     std::memory_order_relaxed);
  warmed_up_.store(false, std::memory_order_relaxed);
}

void BufferPool::Unpin(int32_t frame) {
  Shard& sh = ShardOfFrame(frame);
  ShardLock lock = LockShard(sh);
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.pin_count > 0);
  if (--f.pin_count == 0) NotifyAvail(sh);
}

Lsn BufferPool::LogUpdateInternal(int32_t frame, uint64_t txn_id,
                                  uint32_t offset, uint32_t len) {
  TURBOBP_CHECK(log_ != nullptr);
  Shard& sh = ShardOfFrame(frame);
  ShardLock lock = LockShard(sh);
  WaitWhileWriting(frame, lock);
  Frame& f = frames_[frame];
  TURBOBP_CHECK(offset + len <= options_.page_bytes);
  const Lsn lsn = log_->AppendUpdate(
      txn_id, f.page_id, offset,
      std::span<const uint8_t>(FrameData(frame) + offset, len));
  MarkDirtyLocked(frame, lsn);
  return lsn;
}

void BufferPool::MarkDirtyInternal(int32_t frame, Lsn lsn) {
  Shard& sh = ShardOfFrame(frame);
  ShardLock lock = LockShard(sh);
  WaitWhileWriting(frame, lock);
  MarkDirtyLocked(frame, lsn);
}

void BufferPool::MarkDirtyLocked(int32_t frame, Lsn lsn) {
  Frame& f = frames_[frame];
  PageView v(FrameSpan(frame));
  if (!f.dirty) {
    f.dirty = true;
    // Clean -> dirty transition: the SSD copy (if any) is now stale and is
    // invalidated immediately (physically by CW/DW/LC, logically by TAC).
    ssd_->OnPageDirtied(f.page_id);
  }
  v.header().version++;
  if (lsn != kInvalidLsn) v.header().lsn = lsn;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  // Consistent snapshot under concurrency: ops is bumped last (release) by
  // every fetch classification and read first here (acquire), so even a
  // single pass observes hits + misses >= ops. The re-read at the end of
  // the pass upgrades that to a stable snapshot — ops unchanged means no
  // classification ran while hits/misses were copied; otherwise retry
  // (bounded: the ordered single pass is already invariant-preserving).
  for (int attempt = 0; attempt < 4; ++attempt) {
    s.ops = counters_.ops.load(std::memory_order_acquire);
    s.hits = counters_.hits.load(std::memory_order_relaxed);
    s.misses = counters_.misses.load(std::memory_order_relaxed);
    if (counters_.ops.load(std::memory_order_acquire) == s.ops) break;
  }
  s.ssd_hits = counters_.ssd_hits.load(std::memory_order_relaxed);
  s.disk_page_reads = counters_.disk_page_reads.load(std::memory_order_relaxed);
  s.evictions_clean = counters_.evictions_clean.load(std::memory_order_relaxed);
  s.evictions_dirty = counters_.evictions_dirty.load(std::memory_order_relaxed);
  s.prefetch_pages = counters_.prefetch_pages.load(std::memory_order_relaxed);
  s.expanded_pages = counters_.expanded_pages.load(std::memory_order_relaxed);
  s.checkpoint_writes =
      counters_.checkpoint_writes.load(std::memory_order_relaxed);
  s.latch_wait_time = counters_.latch_wait_time.load(std::memory_order_relaxed);
  s.pool_latch_waits =
      counters_.pool_latch_waits.load(std::memory_order_relaxed);
  s.pool_latch_wait_ns =
      counters_.pool_latch_wait_ns.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  counters_.ops.store(0, std::memory_order_relaxed);
  counters_.hits.store(0, std::memory_order_relaxed);
  counters_.misses.store(0, std::memory_order_relaxed);
  counters_.ssd_hits.store(0, std::memory_order_relaxed);
  counters_.disk_page_reads.store(0, std::memory_order_relaxed);
  counters_.evictions_clean.store(0, std::memory_order_relaxed);
  counters_.evictions_dirty.store(0, std::memory_order_relaxed);
  counters_.prefetch_pages.store(0, std::memory_order_relaxed);
  counters_.expanded_pages.store(0, std::memory_order_relaxed);
  counters_.checkpoint_writes.store(0, std::memory_order_relaxed);
  counters_.latch_wait_time.store(0, std::memory_order_relaxed);
  counters_.pool_latch_waits.store(0, std::memory_order_relaxed);
  counters_.pool_latch_wait_ns.store(0, std::memory_order_relaxed);
}

}  // namespace turbobp
