#include "buffer/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

// ------------------------------------------------------------- PageGuard

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

PageId PageGuard::page_id() const {
  TURBOBP_DCHECK(valid());
  return pool_->frames_[frame_].page_id;
}

PageView PageGuard::view() {
  TURBOBP_DCHECK(valid());
  return PageView(pool_->FrameSpan(frame_));
}

const PageView PageGuard::view() const {
  TURBOBP_DCHECK(valid());
  return PageView(pool_->FrameSpan(frame_));
}

Lsn PageGuard::LogUpdate(uint64_t txn_id, uint32_t offset, uint32_t len) {
  TURBOBP_DCHECK(valid());
  return pool_->LogUpdateInternal(frame_, txn_id, offset, len);
}

void PageGuard::MarkDirtyUnlogged() {
  TURBOBP_DCHECK(valid());
  pool_->MarkDirtyInternal(frame_, kInvalidLsn);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

// ------------------------------------------------------------ BufferPool

BufferPool::BufferPool(const Options& options, DiskManager* disk,
                       LogManager* log, SsdManager* ssd)
    : options_(options), disk_(disk), log_(log), ssd_(ssd) {
  TURBOBP_CHECK(disk != nullptr);
  TURBOBP_CHECK(options.num_frames > 0);
  TURBOBP_CHECK(options.page_bytes == disk->page_bytes());
  if (ssd_ == nullptr) ssd_ = &fallback_ssd_;
  arena_.resize(options.num_frames * static_cast<size_t>(options.page_bytes));
  frames_.resize(options.num_frames);
  free_list_.reserve(options.num_frames);
  for (int64_t i = static_cast<int64_t>(options.num_frames) - 1; i >= 0; --i) {
    free_list_.push_back(static_cast<int32_t>(i));
  }
}

void BufferPool::Touch(Frame& f, Time now) {
  f.access_history[1] = f.access_history[0];
  f.access_history[0] = now;
  ++f.touch_stamp;
}

void BufferPool::VerifyFrameChecksum(int32_t frame, PageId pid) const {
  const PageView v(const_cast<uint8_t*>(arena_.data()) +
                       static_cast<size_t>(frame) * options_.page_bytes,
                   options_.page_bytes);
  const PageHeader& h = v.header();
  if (h.page_id != pid && h.page_id != kInvalidPageId) {
    Panic(__FILE__, __LINE__, "device returned the wrong page");
  }
  if (options_.verify_checksums && h.page_id == pid && !v.VerifyChecksum()) {
    Panic(__FILE__, __LINE__, "page checksum mismatch: stale or torn copy");
  }
}

PageGuard BufferPool::FetchPage(PageId pid, AccessKind kind, IoContext& ctx,
                                Status* out_error) {
  std::lock_guard lock(mu_);
  if (ctx.charge) ctx.now += options_.hit_cpu;

  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    // TAC pathology (Section 2.5): a pending SSD admission write holds the
    // page latch; forward processing waits for it.
    const Time busy = ssd_->LatchBusyUntil(pid, ctx.now);
    if (busy > ctx.now && ctx.charge) {
      stats_.latch_wait_time += busy - ctx.now;
      ctx.latch_wait += busy - ctx.now;
      ctx.Wait(busy);
    }
    Touch(f, ctx.now);
    f.kind = kind;
    ++f.pin_count;
    ++stats_.hits;
    ++ctx.bp_hits;
    return PageGuard(this, it->second);
  }

  // Miss path, Section 2.2.
  ++stats_.misses;
  ++ctx.bp_misses;
  ssd_->OnBufferPoolMiss(pid, kind, ctx);

  const int32_t frame = AcquireFrame(ctx);
  Status ssd_error;
  if (ssd_->TryReadPage(pid, FrameSpan(frame), ctx, &ssd_error)) {
    ++stats_.ssd_hits;
    ++ctx.ssd_hits;
    VerifyFrameChecksum(frame, pid);
    InstallFrame(frame, pid, kind, ctx);
    Frame& f = frames_[frame];
    ++f.pin_count;
    return PageGuard(this, frame);
  }
  if (!ssd_error.ok()) {
    // The only current copy of this page sat in a dirty SSD frame that
    // could not be salvaged; the disk version is stale, so serving it would
    // silently corrupt the database. Surface a hard error instead.
    free_list_.push_back(frame);
    if (out_error != nullptr) {
      *out_error = ssd_error;
      return PageGuard();
    }
    Panic(__FILE__, __LINE__, "page unreadable: newest copy lost with the SSD");
  }

  // Read from disk. While the pool still has free frames SQL Server 2008 R2
  // expands every single-page read into an aligned multi-page read.
  const uint32_t expand = options_.expand_read_pages;
  const bool can_expand = options_.expand_reads_until_warm && !warmed_up_ &&
                          expand > 1 &&
                          free_list_.size() >= static_cast<size_t>(expand);
  if (can_expand) {
    const PageId block_first = pid - pid % expand;
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(expand, disk_->num_pages() - block_first));
    static thread_local std::vector<uint8_t> scratch;
    scratch.resize(static_cast<size_t>(count) * options_.page_bytes);
    TURBOBP_CHECK_OK(disk_->ReadPages(block_first, count, scratch, ctx));
    stats_.disk_page_reads += count;
    int32_t pinned_frame = -1;
    for (uint32_t i = 0; i < count; ++i) {
      const PageId p = block_first + i;
      if (p != pid && page_table_.contains(p)) continue;
      // Never install a speculative disk copy that the SSD supersedes (a
      // restored dirty SSD page after a warm restart): the disk version is
      // stale; a future fetch must take the SSD path.
      if (p != pid && ssd_->Probe(p) == SsdProbe::kNewerCopy) continue;
      int32_t fr;
      if (p == pid) {
        fr = frame;
      } else {
        if (free_list_.empty()) continue;  // speculative pages only
        fr = free_list_.back();
        free_list_.pop_back();
      }
      std::memcpy(FrameData(fr),
                  scratch.data() + static_cast<size_t>(i) * options_.page_bytes,
                  options_.page_bytes);
      VerifyFrameChecksum(fr, p);
      // Speculative neighbours arrive via one big I/O: treat as sequential
      // so they do not pollute the SSD admission policy.
      InstallFrame(fr, p, p == pid ? kind : AccessKind::kSequential, ctx);
      if (p == pid) pinned_frame = fr;
    }
    TURBOBP_CHECK(pinned_frame >= 0);
    ssd_->OnDiskRead(pid, FrameSpan(pinned_frame), kind, ctx);
    Frame& f = frames_[pinned_frame];
    ++f.pin_count;
    return PageGuard(this, pinned_frame);
  }

  TURBOBP_CHECK_OK(disk_->ReadPage(pid, FrameSpan(frame), ctx));
  ++stats_.disk_page_reads;
  VerifyFrameChecksum(frame, pid);
  InstallFrame(frame, pid, kind, ctx);
  ssd_->OnDiskRead(pid, FrameSpan(frame), kind, ctx);
  Frame& f = frames_[frame];
  ++f.pin_count;
  return PageGuard(this, frame);
}

PageGuard BufferPool::NewPage(PageId pid, PageType type, IoContext& ctx) {
  std::lock_guard lock(mu_);
  int32_t frame;
  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    // A speculative multi-page read (expansion / read-ahead) may have pulled
    // this not-yet-allocated page in as a formatted free page; reclaim the
    // frame in place.
    frame = it->second;
    Frame& stale = frames_[frame];
    TURBOBP_CHECK(stale.pin_count == 0);
    TURBOBP_CHECK(!stale.dirty);
    page_table_.erase(it);
  } else {
    frame = AcquireFrame(ctx);
  }
  PageView v(FrameSpan(frame));
  v.Format(pid, type);
  InstallFrame(frame, pid, AccessKind::kRandom, ctx);
  Frame& f = frames_[frame];
  // A brand-new page exists nowhere else: it is dirty from birth, and any
  // stale SSD copy of a recycled page id must go.
  f.dirty = true;
  ssd_->OnPageDirtied(pid);
  ++f.pin_count;
  return PageGuard(this, frame);
}

void BufferPool::PrefetchRange(PageId first, uint32_t n, IoContext& ctx) {
  std::lock_guard lock(mu_);
  if (n == 0) return;
  TURBOBP_CHECK(first + n <= disk_->num_pages());

  // Which pages do we actually need, and what does the SSD know about them?
  std::vector<PageId> pages;
  std::vector<SsdProbe> probes;
  for (uint32_t i = 0; i < n; ++i) {
    const PageId p = first + i;
    if (page_table_.contains(p)) continue;
    pages.push_back(p);
    probes.push_back(ssd_->Probe(p));
  }
  if (pages.empty()) return;

  auto read_via_ssd = [&](PageId p) -> bool {
    const int32_t fr = AcquireFrame(ctx);
    if (ssd_->TryReadPage(p, FrameSpan(fr), ctx)) {
      ++stats_.ssd_hits;
      ++ctx.ssd_hits;
      VerifyFrameChecksum(fr, p);
      InstallFrame(fr, p, AccessKind::kSequential, ctx);
      ++stats_.prefetch_pages;
      return true;
    }
    free_list_.push_back(fr);
    return false;
  };

  // Trim leading and trailing pages that the SSD can serve (Section 3.3.3):
  // the disk handles one large I/O better than several small ones, so only
  // the ends of the request are peeled off.
  size_t lo = 0;
  size_t hi = pages.size();
  while (lo < hi && probes[lo] != SsdProbe::kAbsent && read_via_ssd(pages[lo])) {
    ++lo;
  }
  while (hi > lo && probes[hi - 1] != SsdProbe::kAbsent &&
         read_via_ssd(pages[hi - 1])) {
    --hi;
  }
  if (lo >= hi) return;

  // One contiguous disk read covering the remaining span (it may include
  // pages that are already resident or cached on the SSD; those disk copies
  // are discarded).
  const PageId disk_first = pages[lo];
  const uint32_t disk_count = static_cast<uint32_t>(pages[hi - 1] - disk_first + 1);
  static thread_local std::vector<uint8_t> scratch;
  scratch.resize(static_cast<size_t>(disk_count) * options_.page_bytes);
  TURBOBP_CHECK_OK(disk_->ReadPages(disk_first, disk_count, scratch, ctx));
  stats_.disk_page_reads += disk_count;

  for (size_t i = lo; i < hi; ++i) {
    const PageId p = pages[i];
    if (page_table_.contains(p)) continue;
    if (probes[i] == SsdProbe::kNewerCopy) {
      // The SSD holds a newer version (LC): the disk copy just read is
      // stale and must be replaced via an extra SSD read. If that read
      // fails (lost page on a dying SSD), skip the page — installing the
      // stale disk copy would corrupt the database; a later FetchPage
      // surfaces the hard error.
      read_via_ssd(p);
      continue;
    }
    const int32_t fr = AcquireFrame(ctx);
    std::memcpy(FrameData(fr),
                scratch.data() +
                    static_cast<size_t>(p - disk_first) * options_.page_bytes,
                options_.page_bytes);
    VerifyFrameChecksum(fr, p);
    InstallFrame(fr, p, AccessKind::kSequential, ctx);
    ssd_->OnDiskRead(p, FrameSpan(fr), AccessKind::kSequential, ctx);
    ++stats_.prefetch_pages;
  }
}

bool BufferPool::Contains(PageId pid) const {
  std::lock_guard lock(mu_);
  return page_table_.contains(pid);
}

int64_t BufferPool::DirtyFrameCount() const {
  std::lock_guard lock(mu_);
  int64_t n = 0;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) ++n;
  }
  return n;
}

int64_t BufferPool::UsedFrameCount() const {
  std::lock_guard lock(mu_);
  return static_cast<int64_t>(page_table_.size());
}

int32_t BufferPool::AcquireFrame(IoContext& ctx) {
  if (!free_list_.empty()) {
    const int32_t frame = free_list_.back();
    free_list_.pop_back();
    return frame;
  }
  warmed_up_ = true;
  // Pop LRU-2 victims until a currently-valid entry surfaces; rebuild the
  // heap from scratch when it runs dry (stale entries are simply dropped).
  for (int attempts = 0; attempts < 3; ++attempts) {
    while (!victim_heap_.empty()) {
      const VictimEntry e = victim_heap_.top();
      victim_heap_.pop();
      const Frame& f = frames_[e.frame];
      if (f.page_id == kInvalidPageId || f.pin_count > 0 ||
          f.touch_stamp != e.stamp) {
        continue;  // stale or unusable entry
      }
      EvictFrame(e.frame, ctx);
      return e.frame;
    }
    RebuildVictimHeap();
  }
  Panic(__FILE__, __LINE__, "buffer pool exhausted: all frames pinned");
}

void BufferPool::RebuildVictimHeap() {
  victim_heap_ = {};
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pin_count > 0) continue;
    victim_heap_.push(
        VictimEntry{VictimKey(f), f.touch_stamp, static_cast<int32_t>(i)});
  }
}

void BufferPool::EvictFrame(int32_t frame, IoContext& ctx) {
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.pin_count == 0);
  const PageId pid = f.page_id;
  page_table_.erase(pid);

  // Loader-mode evictions (population) bypass the SSD manager entirely:
  // every measured run starts from a cold SSD buffer pool, as in the paper
  // (the DBMS is restarted between runs).
  if (!f.dirty) {
    ++stats_.evictions_clean;
    if (ctx.charge) ssd_->OnEvictClean(pid, FrameSpan(frame), f.kind, ctx);
  } else {
    ++stats_.evictions_dirty;
    PageView v(FrameSpan(frame));
    v.SealChecksum();
    const Lsn page_lsn = v.header().lsn;
    // WAL rule (Section 2.4): the log must be durable through the page's
    // LSN before the page is written to the SSD or the disk. The page
    // write's arrival time is therefore the log flush's completion.
    const Time log_done = log_ != nullptr ? log_->FlushTo(page_lsn, ctx) : ctx.now;
    // WAL obligation discharged, page not yet written anywhere (the window
    // where the log alone carries the update). Buffer-pool latch is held.
    TURBOBP_CRASH_POINT("bp/evict-after-wal");
    IoContext write_ctx = ctx;
    write_ctx.now = std::max(ctx.now, log_done);
    EvictionOutcome outcome;  // loader mode: straight to disk
    if (ctx.charge) {
      outcome =
          ssd_->OnEvictDirty(pid, FrameSpan(frame), f.kind, page_lsn, write_ctx);
    }
    if (outcome.write_to_disk) {
      // The disk array is the durable home; its failure has no fallback.
      TURBOBP_CHECK_OK(disk_->WritePage(pid, FrameSpan(frame), write_ctx).status);
      // The dirty eviction reached the disk (write-through designs).
      TURBOBP_CRASH_POINT("bp/evict-disk-write");
    }
  }
  f = Frame{};  // reset metadata; frame data will be overwritten
}

void BufferPool::InstallFrame(int32_t frame, PageId pid, AccessKind kind,
                              IoContext& ctx) {
  Frame& f = frames_[frame];
  f.page_id = pid;
  f.dirty = false;
  f.pin_count = 0;
  f.kind = kind;
  f.access_history[0] = f.access_history[1] = 0;
  Touch(f, ctx.now);
  page_table_[pid] = frame;
}

Time BufferPool::WriteFrameToDisk(int32_t frame, IoContext& ctx) {
  Frame& f = frames_[frame];
  PageView v(FrameSpan(frame));
  v.SealChecksum();
  const Time log_done =
      log_ != nullptr ? log_->FlushTo(v.header().lsn, ctx) : ctx.now;
  IoContext write_ctx = ctx;
  write_ctx.now = std::max(ctx.now, log_done);
  const IoResult w = disk_->WritePage(f.page_id, FrameSpan(frame), write_ctx);
  TURBOBP_CHECK_OK(w.status);
  return w.time;
}

Time BufferPool::FlushAllDirty(IoContext& ctx, bool for_checkpoint) {
  std::lock_guard lock(mu_);
  Time last = ctx.now;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || !f.dirty) continue;
    const int32_t frame = static_cast<int32_t>(i);
    const Time done = WriteFrameToDisk(frame, ctx);
    last = std::max(last, done);
    // One dirty frame flushed (checkpoint or shutdown), others may still be
    // dirty in memory only. Buffer-pool latch is held.
    TURBOBP_CRASH_POINT("bp/flush-page");
    if (for_checkpoint) {
      PageView v(FrameSpan(frame));
      IoContext ck_ctx = ctx;
      ssd_->OnCheckpointWrite(f.page_id, FrameSpan(frame), f.kind,
                              v.header().lsn, ck_ctx);
      ++stats_.checkpoint_writes;
    }
    f.dirty = false;
  }
  return last;
}

void BufferPool::Reset() {
  std::lock_guard lock(mu_);
  page_table_.clear();
  victim_heap_ = {};
  free_list_.clear();
  for (int64_t i = static_cast<int64_t>(frames_.size()) - 1; i >= 0; --i) {
    frames_[i] = Frame{};
    free_list_.push_back(static_cast<int32_t>(i));
  }
  warmed_up_ = false;
}

void BufferPool::Unpin(int32_t frame) {
  std::lock_guard lock(mu_);
  Frame& f = frames_[frame];
  TURBOBP_DCHECK(f.pin_count > 0);
  --f.pin_count;
}

Lsn BufferPool::LogUpdateInternal(int32_t frame, uint64_t txn_id,
                                  uint32_t offset, uint32_t len) {
  std::lock_guard lock(mu_);
  TURBOBP_CHECK(log_ != nullptr);
  Frame& f = frames_[frame];
  TURBOBP_CHECK(offset + len <= options_.page_bytes);
  const Lsn lsn = log_->AppendUpdate(
      txn_id, f.page_id, offset,
      std::span<const uint8_t>(FrameData(frame) + offset, len));
  MarkDirtyLocked(frame, lsn);
  return lsn;
}

void BufferPool::MarkDirtyInternal(int32_t frame, Lsn lsn) {
  std::lock_guard lock(mu_);
  MarkDirtyLocked(frame, lsn);
}

void BufferPool::MarkDirtyLocked(int32_t frame, Lsn lsn) {
  Frame& f = frames_[frame];
  PageView v(FrameSpan(frame));
  if (!f.dirty) {
    f.dirty = true;
    // Clean -> dirty transition: the SSD copy (if any) is now stale and is
    // invalidated immediately (physically by CW/DW/LC, logically by TAC).
    ssd_->OnPageDirtied(f.page_id);
  }
  v.header().version++;
  if (lsn != kInvalidLsn) v.header().lsn = lsn;
}

}  // namespace turbobp
