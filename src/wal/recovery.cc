#include "wal/recovery.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "fault/crash_point.h"
#include "io/async_io_engine.h"
#include "storage/page.h"

namespace turbobp {

RecoveryManager::RecoveryManager(DiskManager* disk, LogManager* log,
                                 AsyncIoEngine* io_engine)
    : disk_(disk), log_(log), io_engine_(io_engine) {
  TURBOBP_CHECK(disk != nullptr);
  TURBOBP_CHECK(log != nullptr);
}

Lsn RecoveryManager::FindRedoStart() const {
  // Scan backwards for the latest begin-checkpoint whose end record is
  // durable: everything before it is already on disk (sharp checkpoints).
  // records_for_recovery(): recovery runs before the system opens, with no
  // concurrent appenders (the documented latch-free fast path).
  const auto& records = log_->records_for_recovery();
  bool saw_end = false;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (!log_->IsDurable(it->lsn)) continue;
    if (it->type == LogRecordType::kEndCheckpoint) {
      saw_end = true;
    } else if (it->type == LogRecordType::kBeginCheckpoint && saw_end) {
      return it->lsn;
    }
  }
  return kInvalidLsn;
}

RecoveryStats RecoveryManager::Recover(
    IoContext& ctx, Lsn redo_start_override,
    std::unordered_map<PageId, Lsn>* max_update_lsn,
    const std::unordered_map<PageId, Lsn>* covered_by_ssd) {
  RecoveryStats stats;
  const Time start = ctx.now;
  // Torn-tail hardening: a crash mid-flush can leave the final log block
  // partially written. Per-record checksums find the first damaged record
  // and the log is truncated there — those records were never acknowledged
  // durable to any client, so dropping them is the correct recovery.
  stats.records_truncated = static_cast<int64_t>(log_->TruncateTornTail());
  stats.redo_start_lsn = FindRedoStart();
  // The override can only move redo EARLIER. kInvalidLsn from FindRedoStart
  // means "no completed checkpoint: scan from the very beginning" — the
  // earliest possible start, which no override may narrow. (A restored-SSD
  // min-dirty LSN replacing it would skip the log prefix that rebuilds
  // pages whose SSD copies were dropped at restore verification.)
  if (redo_start_override != kInvalidLsn &&
      stats.redo_start_lsn != kInvalidLsn &&
      redo_start_override < stats.redo_start_lsn) {
    stats.redo_start_lsn = redo_start_override;
  }

  const uint32_t page_bytes = disk_->page_bytes();

  // Filter pass (pure, no I/O): decide which records will enter redo and do
  // the scan bookkeeping. Separating it from the apply pass lets the
  // prefetched path below see each window's page set up front.
  std::vector<const LogRecord*> todo;
  for (const LogRecord& rec : log_->records_for_recovery()) {
    if (!log_->IsDurable(rec.lsn)) break;  // torn tail: stop at first gap
    if (stats.redo_start_lsn != kInvalidLsn && rec.lsn < stats.redo_start_lsn) {
      continue;
    }
    if (rec.type != LogRecordType::kUpdate) continue;
    ++stats.records_scanned;
    if (max_update_lsn != nullptr) {
      Lsn& maxl = (*max_update_lsn)[rec.page_id];
      maxl = std::max(maxl, rec.lsn);
    }
    if (covered_by_ssd != nullptr) {
      const auto it = covered_by_ssd->find(rec.page_id);
      if (it != covered_by_ssd->end() && rec.lsn <= it->second) {
        // A restored (dirty) SSD copy already contains this update; the
        // cleaner will bring the disk forward later, exactly as if the
        // crash had never happened.
        ++stats.records_skipped_ssd;
        continue;
      }
    }
    todo.push_back(&rec);
  }

  // Applies one record to the page image in `buf` and, if the redo test
  // passes, writes it back synchronously (the "recovery/redo-apply"
  // idempotence edge requires every applied record to be durable before the
  // next one, in both the serial and the prefetched path).
  auto apply = [&](const LogRecord& rec, std::span<uint8_t> buf) {
    PageView v(buf.data(), page_bytes);
    // Redo test: apply only if the on-disk page has not seen this update.
    if (v.header().page_id == rec.page_id && v.header().lsn >= rec.lsn) {
      ++stats.records_skipped_lsn;
      return;
    }
    TURBOBP_CHECK(rec.offset + rec.bytes.size() <= page_bytes);
    std::memcpy(buf.data() + rec.offset, rec.bytes.data(), rec.bytes.size());
    v.header().lsn = rec.lsn;
    v.SealChecksum();
    const IoResult w = disk_->WritePage(rec.page_id, buf, ctx);
    TURBOBP_CHECK_OK(w.status);
    ctx.Wait(w.time);  // recovery is single-threaded and synchronous
    ++stats.records_applied;
    ++stats.pages_written;
    // One redo step landed on disk. Crashing here and recovering again must
    // converge to the same state (idempotence: the page-LSN redo test skips
    // the already-applied prefix on the next pass).
    TURBOBP_CRASH_POINT("recovery/redo-apply");
  };

  if (io_engine_ == nullptr) {
    std::vector<uint8_t> buf(page_bytes);
    for (const LogRecord* rec : todo) {
      TURBOBP_CHECK_OK(disk_->ReadPage(rec->page_id, buf, ctx));
      ++stats.pages_read;
      apply(*rec, buf);
    }
  } else {
    // Deep-queue redo prefetch: group the redo stream into windows of up to
    // 2x the ring's depth DISTINCT pages, prefetch each window's pages
    // through the engine (contiguous runs coalesce into vectored reads,
    // scattered ones overlap across spindles), then apply from the cached
    // images. A record applies INTO its cached image, so a later record of
    // the same page within the window sees every earlier update — the
    // coherence rule that makes caching safe.
    const size_t window =
        static_cast<size_t>(io_engine_->queue_depth()) * 2;
    std::unordered_map<PageId, std::vector<uint8_t>> cache;
    size_t i = 0;
    while (i < todo.size()) {
      cache.clear();
      std::vector<PageId> pids;
      size_t j = i;
      while (j < todo.size()) {
        const PageId pid = todo[j]->page_id;
        if (!cache.contains(pid)) {
          if (pids.size() == window) break;
          cache.emplace(pid, std::vector<uint8_t>(page_bytes));
          pids.push_back(pid);
        }
        ++j;
      }
      std::sort(pids.begin(), pids.end());
      for (const PageId pid : pids) {
        AsyncIoRequest req;
        req.first_page = pid;
        req.num_pages = 1;
        req.out = cache[pid];
        req.on_complete = [](const IoCompletion& c) {
          TURBOBP_CHECK_OK(c.result.status);
        };
        io_engine_->Submit(req, ctx);
      }
      ctx.Wait(io_engine_->Drain(ctx));
      stats.pages_read += static_cast<int64_t>(pids.size());
      for (; i < j; ++i) apply(*todo[i], cache[todo[i]->page_id]);
    }
  }
  stats.elapsed = ctx.now - start;
  return stats;
}

}  // namespace turbobp
