#ifndef TURBOBP_WAL_RECOVERY_H_
#define TURBOBP_WAL_RECOVERY_H_

#include <unordered_map>

#include "common/types.h"
#include "storage/disk_manager.h"
#include "wal/log_manager.h"

namespace turbobp {

class AsyncIoEngine;

struct RecoveryStats {
  Lsn redo_start_lsn = kInvalidLsn;
  int64_t records_scanned = 0;
  int64_t records_applied = 0;
  int64_t records_skipped_lsn = 0;  // page already newer (redo test failed)
  int64_t records_skipped_ssd = 0;  // covered by a restored SSD copy
  int64_t records_truncated = 0;    // torn-tail records pruned before redo
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  Time elapsed = 0;
};

// Redo-only restart recovery (ARIES redo pass over physiological records).
//
// After a crash the buffer pool and the SSD cache contents are discarded —
// as the paper notes (Section 6), no design to date leverages the SSD
// during restart. The sharp checkpoint guarantees the disk is current as of
// the last completed checkpoint; this pass replays the durable log tail,
// applying each update record whose LSN is newer than the on-disk page LSN.
class RecoveryManager {
 public:
  // `io_engine`, when provided, batches the redo pass's page reads: the
  // records to replay are grouped into windows of distinct pages, each
  // window's pages are prefetched through the engine's deep queue (reads of
  // one page are also deduplicated within a window), and redo applies from
  // the prefetched images. Page writes stay synchronous, preserving the
  // per-record "recovery/redo-apply" idempotence edge.
  RecoveryManager(DiskManager* disk, LogManager* log,
                  AsyncIoEngine* io_engine = nullptr);

  // Replays the durable log from the latest completed checkpoint (or from
  // the beginning if none). Reads and writes pages directly through the
  // disk manager. Returns stats; ctx carries timing.
  //
  // `redo_start_override` forces an earlier redo start (the restart
  // extension must cover dirty SSD pages whose updates predate the last
  // checkpoint). `max_update_lsn`, if given, receives the highest durable
  // update LSN seen per page — the restart extension uses it to prove a
  // snapshot entry is still the newest version of its page.
  // `covered_by_ssd` maps pages to the LSN up to which a restored SSD copy
  // already contains all updates: redo skips those records entirely (no
  // disk I/O), which is what makes the restart extension's recovery fast.
  RecoveryStats Recover(
      IoContext& ctx, Lsn redo_start_override = kInvalidLsn,
      std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      const std::unordered_map<PageId, Lsn>* covered_by_ssd = nullptr);

 private:
  // Latest begin-checkpoint LSN whose matching end record is durable.
  Lsn FindRedoStart() const;

  DiskManager* disk_;
  LogManager* log_;
  AsyncIoEngine* io_engine_;
};

}  // namespace turbobp

#endif  // TURBOBP_WAL_RECOVERY_H_
