#ifndef TURBOBP_WAL_CHECKPOINT_H_
#define TURBOBP_WAL_CHECKPOINT_H_

#include <vector>

#include "buffer/buffer_pool.h"
#include "common/types.h"
#include "core/ssd_manager.h"
#include "sim/sim_executor.h"
#include "wal/log_manager.h"

namespace turbobp {

struct CheckpointStats {
  int64_t checkpoints_taken = 0;
  // Checkpoints aborted because the SSD dirty-drain failed (device errors
  // past the bounded retry, degradation, or a lost dirty page). A failed
  // checkpoint writes no end record and does not advance last_checkpoint_lsn:
  // recovery redoes from the previous completed checkpoint, which is exactly
  // what heals the pages the drain could not land on disk.
  int64_t checkpoints_failed = 0;
  Time total_duration = 0;
  Time max_duration = 0;
  int64_t pages_flushed_memory = 0;
  int64_t pages_flushed_ssd = 0;  // LC: dirty SSD pages drained
  Lsn last_checkpoint_lsn = kInvalidLsn;
};

// The restart extension's durable payload: the SSD buffer table as of a
// checkpoint, conceptually part of the checkpoint record (Section 4.1.2 of
// the paper sketches exactly this: "adding the SSD buffer table data
// structure ... to the checkpoint record").
struct SsdTableSnapshot {
  Lsn checkpoint_lsn = kInvalidLsn;
  Lsn min_dirty_lsn = kInvalidLsn;  // redo must start no later than this
  std::vector<SsdManager::CheckpointEntry> entries;
};

// Sharp checkpointing, as in SQL Server 2008 R2 (Section 3.2): every dirty
// page in the main-memory buffer pool is flushed to disk — and, under the
// LC design, every dirty page in the SSD buffer pool as well, which is why
// checkpoint dips are deepest for LC (Figures 6 and 9). Recovery then only
// needs to redo the log tail after the last completed checkpoint.
class CheckpointManager {
 public:
  CheckpointManager(BufferPool* pool, SsdManager* ssd, LogManager* log,
                    SimExecutor* executor);

  // Runs one sharp checkpoint at ctx.now. Returns the completion time of
  // the last flush write (the checkpoint's end).
  Time RunCheckpoint(IoContext& ctx);

  // Schedules periodic checkpoints every `interval` of virtual time,
  // starting one interval from now ("recovery interval" in the paper:
  // 40 minutes for TPC-E/H, effectively off for TPC-C).
  void SchedulePeriodic(Time interval);
  void StopPeriodic() { periodic_ = false; }

  const CheckpointStats& stats() const { return stats_; }

  // Begin-LSNs of completed checkpoints (recovery starts at the latest one
  // whose end record is durable).
  const std::vector<Lsn>& completed() const { return completed_; }

  // WAL in-memory prefix truncation: after a checkpoint completes, buffered
  // log records below its begin-LSN (all durable by the checkpoint's commit
  // edge) are released — recovery never replays below the last completed
  // checkpoint, so retaining them only grows memory without bound on long
  // threaded soaks. Default on; DbSystem turns it off for the restart
  // extensions (persistent SSD cache, SSD-table checkpoints), whose
  // recovery paths scan the full durable log to build per-page
  // max-update-LSN maps.
  void set_wal_truncation(bool on) { wal_truncation_ = on; }
  bool wal_truncation() const { return wal_truncation_; }

  // Negative-test backdoor (crash harness): deliberately SKIP the LC
  // SSD-dirty drain while still writing the end-checkpoint record — the
  // WAL-compliance bug the torture harness must be able to catch. Never set
  // outside tests.
  void set_skip_ssd_flush_for_test(bool v) { skip_ssd_flush_for_test_ = v; }

  // --- restart extension (Section 6 future work) ----------------------------

  // When enabled, checkpoints stop draining the SSD's dirty pages; instead
  // the SSD buffer table is snapshotted into the checkpoint record, and
  // DbSystem::RecoverWithSsdTable() re-attaches the SSD after a restart.
  void EnableSsdTableCheckpoints() {
    ssd_table_mode_ = true;
    // RecoverWithSsdTable validates restored SSD frames against the full
    // durable log; a truncated prefix would admit stale frames as current.
    wal_truncation_ = false;
  }
  // A restart replaces the SSD manager instance; re-point at the new one
  // (the durable snapshot_ is unaffected).
  void set_ssd_manager(SsdManager* ssd) { ssd_ = ssd; }
  bool ssd_table_mode() const { return ssd_table_mode_; }
  const SsdTableSnapshot* latest_snapshot() const {
    return snapshot_.checkpoint_lsn == kInvalidLsn ? nullptr : &snapshot_;
  }

 private:
  void PeriodicTick(Time interval);

  BufferPool* pool_;
  SsdManager* ssd_;
  LogManager* log_;
  SimExecutor* executor_;
  bool periodic_ = false;
  bool ssd_table_mode_ = false;
  bool wal_truncation_ = true;
  bool skip_ssd_flush_for_test_ = false;
  SsdTableSnapshot snapshot_;
  CheckpointStats stats_;
  std::vector<Lsn> completed_;
};

}  // namespace turbobp

#endif  // TURBOBP_WAL_CHECKPOINT_H_
