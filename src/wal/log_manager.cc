#include "wal/log_manager.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

uint32_t LogRecord::ComputeChecksum() const {
  uint32_t crc = Crc32c(&lsn, sizeof(lsn));
  const uint8_t type_byte = static_cast<uint8_t>(type);
  crc = Crc32c(&type_byte, sizeof(type_byte), crc);
  crc = Crc32c(&txn_id, sizeof(txn_id), crc);
  crc = Crc32c(&page_id, sizeof(page_id), crc);
  crc = Crc32c(&offset, sizeof(offset), crc);
  if (!bytes.empty()) crc = Crc32c(bytes.data(), bytes.size(), crc);
  return crc;
}

namespace {
// Log pages carry no recoverable content in this model (records_ is the
// oracle); flushes write zeros of the right size to charge the device.
std::span<const uint8_t> ZeroPages(size_t need) {
  static thread_local std::vector<uint8_t> zeros;
  if (zeros.size() < need) zeros.assign(need, 0);
  return std::span<const uint8_t>(zeros.data(), need);
}
}  // namespace

LogManager::LogManager(StorageDevice* log_device) : device_(log_device) {
  TURBOBP_CHECK(log_device != nullptr);
}

Lsn LogManager::Append(LogRecord rec) {
  TrackedLockGuard lock(mu_);
  rec.lsn = next_lsn_;
  rec.SealChecksum();
  next_lsn_ += rec.SizeOnDisk();
  last_record_lsn_ = rec.lsn;
  records_.push_back(std::move(rec));
  ++logical_records_;
  // The record exists in the log buffer but is not durable yet: a crash
  // here loses it (and everything after it) unless a later flush lands.
  TURBOBP_CRASH_POINT("wal/append");
  return records_.back().lsn;
}

Lsn LogManager::AppendUpdate(uint64_t txn_id, PageId pid, uint32_t offset,
                             std::span<const uint8_t> bytes) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn_id;
  rec.page_id = pid;
  rec.offset = offset;
  rec.bytes.assign(bytes.begin(), bytes.end());
  return Append(std::move(rec));
}

Lsn LogManager::AppendCommit(uint64_t txn_id) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn_id;
  return Append(std::move(rec));
}

Lsn LogManager::AppendBeginCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kBeginCheckpoint;
  return Append(std::move(rec));
}

Lsn LogManager::AppendEndCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kEndCheckpoint;
  return Append(std::move(rec));
}

void LogManager::StageDeviceWrite(Lsn target, uint64_t* first,
                                  uint32_t* npages) {
  // Durability is tracked by record-start LSN: flushing "to lsn" makes the
  // record beginning at lsn durable.
  const uint64_t pending_bytes = target - durable_lsn_;
  const uint32_t page_bytes = device_->page_bytes();
  *npages = static_cast<uint32_t>(
      std::max<uint64_t>(1, (pending_bytes + page_bytes - 1) / page_bytes));
  // The log is written sequentially; wrap around the device (log truncation
  // of the physical file is outside this model's scope).
  *first = device_offset_pages_;
  if (*first + *npages > device_->num_pages()) {
    *first = 0;
  }
  device_offset_pages_ =
      (*first + *npages) % std::max<uint64_t>(1, device_->num_pages());
}

// The group-commit protocol juggles mu_ around the device write and parks
// followers on flush_cv_, which Clang's thread-safety analysis cannot
// follow (std::unique_lock + condition_variable_any are unannotated).
// Discipline is enforced by the runtime latch-order checker, the TSan CI
// job, and the structural io-under-latch rule instead.
Time LogManager::FlushTo(Lsn lsn, IoContext& ctx)
    TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<TrackedMutex<LatchClass::kWal>> lock(mu_);
  // Clamp to the last appended record (the historical records_.back()
  // clamp, robust to prefix truncation).
  lsn = std::min(lsn, last_record_lsn_);
  if (lsn <= durable_lsn_) return ctx.now;
  if (!group_commit_) return FlushToLegacyLocked(lsn, ctx);

  bool waited = false;
  for (;;) {
    if (lsn <= durable_lsn_) {
      // A leader's batch covered this LSN while we waited; its virtual
      // completion is the flush completion the caller observes.
      return waited ? std::max(ctx.now, durable_completion_) : ctx.now;
    }
    if (flush_in_flight_) {
      // Follower: a leader is writing with mu_ released. Park; the leader
      // batches everything appended before its write, so one wakeup
      // usually covers us.
      ++flush_waits_;
      waited = true;
      flush_cv_.wait(lock);
      continue;
    }
    // Leader: batch every record appended so far into one device write.
    flush_in_flight_ = true;
    const Lsn target = last_record_lsn_;
    uint64_t first = 0;
    uint32_t npages = 0;
    StageDeviceWrite(target, &first, &npages);
    if (ctx.charge) ++flushes_;
    lock.unlock();

    // About to force the log: nothing new is durable yet.
    TURBOBP_CRASH_POINT("wal/flush-begin");
    const size_t need = static_cast<size_t>(npages) * device_->page_bytes();
    const IoResult res =
        device_->Write(first, npages, ZeroPages(need), ctx.now, ctx.charge);
    // A failed log write means durability can no longer be promised; unlike
    // the SSD cache there is no degraded mode to fall back to.
    TURBOBP_CHECK_OK(res.status);
    // The device accepted the write but durability has not been
    // acknowledged: this is the torn-tail window — a crash here may leave
    // the final log block partially on the medium.
    TURBOBP_CRASH_POINT("wal/flush-device");
    // The leader rides out the write's modeled duration here, with mu_
    // released but flush_in_flight_ still set: commits arriving meanwhile
    // append, park on flush_cv_, and are covered by the *next* leader's
    // batch — this window is what makes group commit group. (Sim mode: only
    // advances ctx.now; threaded mode: wall-sleeps per real_sleep_scale.)
    ctx.Wait(res.time);

    lock.lock();
    durable_lsn_ = target;
    durable_completion_ = res.time;
    flush_in_flight_ = false;
    // The flushed prefix is now durable; pages covered by it may be written.
    TURBOBP_CRASH_POINT("wal/flush-durable");
    lock.unlock();
    // Notify with mu_ released: waking N followers into a held latch is the
    // classic hurry-up-and-wait storm — every wakeup would immediately block
    // on the relock and get billed as kWal contention.
    flush_cv_.notify_all();
    return res.time;  // target >= lsn: the batch covered the caller
  }
}

Time LogManager::FlushToLegacyLocked(Lsn lsn, IoContext& ctx) {
  // Pre-group-commit baseline, kept only for the bench_scaleout_threads A/B
  // (set_group_commit(false)): one device write per flush request, issued
  // while holding mu_, so every committer serializes behind device latency.
  TURBOBP_CRASH_POINT("wal/flush-begin");
  uint64_t first = 0;
  uint32_t npages = 0;
  StageDeviceWrite(lsn, &first, &npages);
  const size_t need = static_cast<size_t>(npages) * device_->page_bytes();
  const IoResult res =  // check: allow(io-under-latch: legacy pre-group-commit A/B baseline)
      device_->Write(first, npages, ZeroPages(need), ctx.now, ctx.charge);
  TURBOBP_CHECK_OK(res.status);
  TURBOBP_CRASH_POINT("wal/flush-device");
  durable_lsn_ = lsn;
  durable_completion_ = res.time;
  TURBOBP_CRASH_POINT("wal/flush-durable");
  if (ctx.charge) ++flushes_;
  // The defining cost of the legacy protocol: the committer blocks to the
  // device's completion *while holding mu_*, so every other appender and
  // committer queues on the latch for the full write. (In sim mode this
  // only advances the virtual clock; in real-thread mode with
  // real_sleep_scale it burns wall time under the latch — the serial
  // bottleneck the group-commit leader protocol removes.)
  ctx.Wait(res.time);
  return res.time;
}

void LogManager::CommitForce(IoContext& ctx) {
  const Time completion = FlushTo(current_lsn(), ctx);
  // The commit's durability edge: the group-commit flush has been issued
  // and accounted; the client has not yet been released.
  TURBOBP_CRASH_POINT("wal/commit-force");
  ctx.Wait(completion);
}

size_t LogManager::TruncatePrefix(Lsn horizon) {
  TrackedLockGuard lock(mu_);
  // Only records that are both durable and below the redo horizon may go:
  // recovery replays from the last completed checkpoint's begin record, and
  // DropUnflushed must still be able to pop the undurable tail.
  size_t keep = 0;
  while (keep < records_.size() && records_[keep].lsn < horizon &&
         records_[keep].lsn <= durable_lsn_) {
    ++keep;
  }
  if (keep == 0) return 0;
  base_lsn_ = keep < records_.size() ? records_[keep].lsn : next_lsn_;
  records_.erase(records_.begin(), records_.begin() + keep);
  // erase() keeps capacity; hand the dead prefix's memory back once it
  // dominates (the point of truncating at all).
  if (records_.capacity() > 2 * records_.size() + 64) {
    records_.shrink_to_fit();
  }
  records_truncated_ += static_cast<int64_t>(keep);
  return keep;
}

size_t LogManager::DropUnflushed() {
  TrackedLockGuard lock(mu_);
  size_t dropped = 0;
  while (!records_.empty() && records_.back().lsn > durable_lsn_) {
    records_.pop_back();
    ++dropped;
  }
  logical_records_ -= static_cast<int64_t>(dropped);
  last_record_lsn_ = records_.empty() ? (base_lsn_ > 1 ? base_lsn_ - 1 : 0)
                                      : records_.back().lsn;
  return dropped;
}

size_t LogManager::TruncateTornTail() {
  TrackedLockGuard lock(mu_);
  size_t bad = records_.size();
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].lsn > durable_lsn_) {
      // Past the durable prefix: a crash already discards these (see
      // DropUnflushed); truncate here too so replay sees one clean prefix.
      bad = i;
      break;
    }
    if (!records_[i].VerifyChecksum()) {
      bad = i;
      break;
    }
  }
  if (bad == records_.size()) return 0;
  const size_t dropped = records_.size() - bad;
  // Durability retreats to the last intact record — but no further than the
  // truncated prefix boundary, which is durable by construction.
  const Lsn new_durable =
      bad == 0 ? (base_lsn_ > 1 ? base_lsn_ - 1 : Lsn{0}) : records_[bad - 1].lsn;
  next_lsn_ = records_[bad].lsn;  // reclaim the torn record's LSN space
  records_.resize(bad);
  logical_records_ -= static_cast<int64_t>(dropped);
  last_record_lsn_ = records_.empty() ? (base_lsn_ > 1 ? base_lsn_ - 1 : 0)
                                      : records_.back().lsn;
  durable_lsn_ = std::min(durable_lsn_, new_durable);
  TURBOBP_CRASH_POINT("wal/truncate-tail");
  return dropped;
}

void LogManager::RestoreDurableState(std::vector<LogRecord> records,
                                     Lsn durable_lsn) {
  TrackedLockGuard lock(mu_);
  records_ = std::move(records);
  durable_lsn_ = durable_lsn;
  next_lsn_ = records_.empty()
                  ? Lsn{1}
                  : records_.back().lsn + records_.back().SizeOnDisk();
  logical_records_ = static_cast<int64_t>(records_.size());
  last_record_lsn_ = records_.empty() ? Lsn{0} : records_.back().lsn;
  // If the snapshot was itself a truncated suffix, everything below its
  // first record was durable before the crash.
  base_lsn_ = records_.empty() ? Lsn{1} : records_.front().lsn;
}

}  // namespace turbobp
