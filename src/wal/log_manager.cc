#include "wal/log_manager.h"

#include <algorithm>

#include "common/status.h"

namespace turbobp {

LogManager::LogManager(StorageDevice* log_device) : device_(log_device) {
  TURBOBP_CHECK(log_device != nullptr);
}

Lsn LogManager::Append(LogRecord rec) {
  std::lock_guard lock(mu_);
  rec.lsn = next_lsn_;
  next_lsn_ += rec.SizeOnDisk();
  records_.push_back(std::move(rec));
  return records_.back().lsn;
}

Lsn LogManager::AppendUpdate(uint64_t txn_id, PageId pid, uint32_t offset,
                             std::span<const uint8_t> bytes) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn_id;
  rec.page_id = pid;
  rec.offset = offset;
  rec.bytes.assign(bytes.begin(), bytes.end());
  return Append(std::move(rec));
}

Lsn LogManager::AppendCommit(uint64_t txn_id) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn_id;
  return Append(std::move(rec));
}

Lsn LogManager::AppendBeginCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kBeginCheckpoint;
  return Append(std::move(rec));
}

Lsn LogManager::AppendEndCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kEndCheckpoint;
  return Append(std::move(rec));
}

Time LogManager::FlushTo(Lsn lsn, IoContext& ctx) {
  std::lock_guard lock(mu_);
  return FlushToLocked(lsn, ctx);
}

Time LogManager::FlushToLocked(Lsn lsn, IoContext& ctx) {
  // Durability is tracked by record-start LSN: flushing "to lsn" makes the
  // record beginning at lsn durable. Clamp to the last appended record.
  lsn = std::min(lsn, records_.empty() ? Lsn{0} : records_.back().lsn);
  if (lsn <= durable_lsn_) return ctx.now;
  const uint64_t pending_bytes = lsn - durable_lsn_;
  const uint32_t page_bytes = device_->page_bytes();
  const uint32_t npages = static_cast<uint32_t>(
      std::max<uint64_t>(1, (pending_bytes + page_bytes - 1) / page_bytes));
  // The log is written sequentially; wrap around the device (log truncation
  // of the physical file is outside this model's scope).
  uint64_t first = device_offset_pages_;
  uint32_t n = npages;
  if (first + n > device_->num_pages()) {
    first = 0;
  }
  // Log pages carry no recoverable content in this model (records_ is the
  // oracle); write zeros of the right size to charge the device.
  static thread_local std::vector<uint8_t> zeros;
  const size_t need = static_cast<size_t>(n) * page_bytes;
  if (zeros.size() < need) zeros.assign(need, 0);
  const IoResult res =
      device_->Write(first, n, std::span<const uint8_t>(zeros.data(), need),
                     ctx.now, ctx.charge);
  // A failed log write means durability can no longer be promised; unlike
  // the SSD cache there is no degraded mode to fall back to.
  TURBOBP_CHECK_OK(res.status);
  const Time completion = res.time;
  device_offset_pages_ = (first + n) % std::max<uint64_t>(1, device_->num_pages());
  durable_lsn_ = lsn;
  if (ctx.charge) ++flushes_;
  return completion;
}

void LogManager::CommitForce(IoContext& ctx) {
  Time completion;
  {
    std::lock_guard lock(mu_);
    completion = FlushToLocked(next_lsn_, ctx);
  }
  ctx.Wait(completion);
}

size_t LogManager::DropUnflushed() {
  std::lock_guard lock(mu_);
  size_t dropped = 0;
  while (!records_.empty() && records_.back().lsn > durable_lsn_) {
    records_.pop_back();
    ++dropped;
  }
  return dropped;
}

}  // namespace turbobp
