#include "wal/log_manager.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

uint32_t LogRecord::ComputeChecksum() const {
  uint32_t crc = Crc32c(&lsn, sizeof(lsn));
  const uint8_t type_byte = static_cast<uint8_t>(type);
  crc = Crc32c(&type_byte, sizeof(type_byte), crc);
  crc = Crc32c(&txn_id, sizeof(txn_id), crc);
  crc = Crc32c(&page_id, sizeof(page_id), crc);
  crc = Crc32c(&offset, sizeof(offset), crc);
  if (!bytes.empty()) crc = Crc32c(bytes.data(), bytes.size(), crc);
  return crc;
}

LogManager::LogManager(StorageDevice* log_device) : device_(log_device) {
  TURBOBP_CHECK(log_device != nullptr);
}

Lsn LogManager::Append(LogRecord rec) {
  TrackedLockGuard lock(mu_);
  rec.lsn = next_lsn_;
  rec.SealChecksum();
  next_lsn_ += rec.SizeOnDisk();
  records_.push_back(std::move(rec));
  // The record exists in the log buffer but is not durable yet: a crash
  // here loses it (and everything after it) unless a later flush lands.
  TURBOBP_CRASH_POINT("wal/append");
  return records_.back().lsn;
}

Lsn LogManager::AppendUpdate(uint64_t txn_id, PageId pid, uint32_t offset,
                             std::span<const uint8_t> bytes) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn_id;
  rec.page_id = pid;
  rec.offset = offset;
  rec.bytes.assign(bytes.begin(), bytes.end());
  return Append(std::move(rec));
}

Lsn LogManager::AppendCommit(uint64_t txn_id) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn_id;
  return Append(std::move(rec));
}

Lsn LogManager::AppendBeginCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kBeginCheckpoint;
  return Append(std::move(rec));
}

Lsn LogManager::AppendEndCheckpoint() {
  LogRecord rec;
  rec.type = LogRecordType::kEndCheckpoint;
  return Append(std::move(rec));
}

Time LogManager::FlushTo(Lsn lsn, IoContext& ctx) {
  TrackedLockGuard lock(mu_);
  return FlushToLocked(lsn, ctx);
}

Time LogManager::FlushToLocked(Lsn lsn, IoContext& ctx) {
  // Durability is tracked by record-start LSN: flushing "to lsn" makes the
  // record beginning at lsn durable. Clamp to the last appended record.
  lsn = std::min(lsn, records_.empty() ? Lsn{0} : records_.back().lsn);
  if (lsn <= durable_lsn_) return ctx.now;
  // About to force the log: nothing new is durable yet.
  TURBOBP_CRASH_POINT("wal/flush-begin");
  const uint64_t pending_bytes = lsn - durable_lsn_;
  const uint32_t page_bytes = device_->page_bytes();
  const uint32_t npages = static_cast<uint32_t>(
      std::max<uint64_t>(1, (pending_bytes + page_bytes - 1) / page_bytes));
  // The log is written sequentially; wrap around the device (log truncation
  // of the physical file is outside this model's scope).
  uint64_t first = device_offset_pages_;
  uint32_t n = npages;
  if (first + n > device_->num_pages()) {
    first = 0;
  }
  // Log pages carry no recoverable content in this model (records_ is the
  // oracle); write zeros of the right size to charge the device.
  static thread_local std::vector<uint8_t> zeros;
  const size_t need = static_cast<size_t>(n) * page_bytes;
  if (zeros.size() < need) zeros.assign(need, 0);
  const IoResult res =
      device_->Write(first, n, std::span<const uint8_t>(zeros.data(), need),
                     ctx.now, ctx.charge);
  // A failed log write means durability can no longer be promised; unlike
  // the SSD cache there is no degraded mode to fall back to.
  TURBOBP_CHECK_OK(res.status);
  const Time completion = res.time;
  device_offset_pages_ = (first + n) % std::max<uint64_t>(1, device_->num_pages());
  // The device accepted the write but durability has not been acknowledged:
  // this is the torn-tail window — a crash here may leave the final log
  // block partially on the medium.
  TURBOBP_CRASH_POINT("wal/flush-device");
  durable_lsn_ = lsn;
  // The flushed prefix is now durable; pages covered by it may be written.
  TURBOBP_CRASH_POINT("wal/flush-durable");
  if (ctx.charge) ++flushes_;
  return completion;
}

void LogManager::CommitForce(IoContext& ctx) {
  Time completion;
  {
    TrackedLockGuard lock(mu_);
    completion = FlushToLocked(next_lsn_, ctx);
  }
  // The commit's durability edge: the group-commit flush has been issued
  // and accounted; the client has not yet been released.
  TURBOBP_CRASH_POINT("wal/commit-force");
  ctx.Wait(completion);
}

size_t LogManager::DropUnflushed() {
  TrackedLockGuard lock(mu_);
  size_t dropped = 0;
  while (!records_.empty() && records_.back().lsn > durable_lsn_) {
    records_.pop_back();
    ++dropped;
  }
  return dropped;
}

size_t LogManager::TruncateTornTail() {
  TrackedLockGuard lock(mu_);
  size_t bad = records_.size();
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].lsn > durable_lsn_) {
      // Past the durable prefix: a crash already discards these (see
      // DropUnflushed); truncate here too so replay sees one clean prefix.
      bad = i;
      break;
    }
    if (!records_[i].VerifyChecksum()) {
      bad = i;
      break;
    }
  }
  if (bad == records_.size()) return 0;
  const size_t dropped = records_.size() - bad;
  const Lsn new_durable = bad == 0 ? Lsn{0} : records_[bad - 1].lsn;
  next_lsn_ = records_[bad].lsn;  // reclaim the torn record's LSN space
  records_.resize(bad);
  durable_lsn_ = std::min(durable_lsn_, new_durable);
  TURBOBP_CRASH_POINT("wal/truncate-tail");
  return dropped;
}

void LogManager::RestoreDurableState(std::vector<LogRecord> records,
                                     Lsn durable_lsn) {
  TrackedLockGuard lock(mu_);
  records_ = std::move(records);
  durable_lsn_ = durable_lsn;
  next_lsn_ = records_.empty()
                  ? Lsn{1}
                  : records_.back().lsn + records_.back().SizeOnDisk();
}

}  // namespace turbobp
