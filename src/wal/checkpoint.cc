#include "wal/checkpoint.h"

#include <algorithm>

#include "common/status.h"
#include "debug/invariant_auditor.h"
#include "fault/crash_point.h"

namespace turbobp {

namespace {
// TURBOBP_AUDIT builds cross-check the buffer pool and the SSD manager's
// structures at every checkpoint boundary: the checkpoint is the one moment
// the engine claims a consistent durable story, so an inconsistency here
// means a correctness bug upstream. No-op (and zero cost) otherwise.
void AuditAtCheckpointBoundary(BufferPool* pool, SsdManager* ssd,
                               [[maybe_unused]] const char* when) {
#ifdef TURBOBP_AUDIT
  const AuditReport report = InvariantAuditor::AuditSystem(*pool, ssd);
  if (!report.ok()) {
    const std::string msg =
        std::string("checkpoint ") + when + ": " + report.ToString();
    Panic(__FILE__, __LINE__, msg.c_str());
  }
#else
  (void)pool;
  (void)ssd;
#endif
}
}  // namespace

CheckpointManager::CheckpointManager(BufferPool* pool, SsdManager* ssd,
                                     LogManager* log, SimExecutor* executor)
    : pool_(pool), ssd_(ssd), log_(log), executor_(executor) {
  TURBOBP_CHECK(pool != nullptr);
  TURBOBP_CHECK(log != nullptr);
}

Time CheckpointManager::RunCheckpoint(IoContext& ctx) {
  const Time start = ctx.now;
  AuditAtCheckpointBoundary(pool_, ssd_, "begin");
  const Lsn begin_lsn = log_->AppendBeginCheckpoint();
  if (ssd_ != nullptr) ssd_->OnCheckpointBegin();
  // Begin record appended (not yet durable), LC admission of new dirty
  // pages stopped. A crash here leaves a begin with no end: the previous
  // completed checkpoint still governs recovery.
  TURBOBP_CRASH_POINT("ckpt/begin");

  const int64_t dirty_before = pool_->DirtyFrameCount();
  // Flush all dirty memory pages (sharp checkpoint); DW also pushes
  // checkpointed random pages into the SSD via OnCheckpointWrite.
  Time end = pool_->FlushAllDirty(ctx, /*for_checkpoint=*/true);
  stats_.pages_flushed_memory += dirty_before;
  // Every memory-dirty page is on disk; the SSD drain has not run yet.
  TURBOBP_CRASH_POINT("ckpt/after-pool-flush");

  if (ssd_ != nullptr && ssd_table_mode_) {
    // Restart extension: instead of draining the SSD's dirty pages, persist
    // the SSD buffer table in the checkpoint record. Redo must then start
    // no later than the oldest dirty SSD page's LSN.
    snapshot_.checkpoint_lsn = begin_lsn;
    snapshot_.entries = ssd_->SnapshotForCheckpoint();
    snapshot_.min_dirty_lsn = kInvalidLsn;
    for (const auto& e : snapshot_.entries) {
      if (e.dirty && e.page_lsn != kInvalidLsn &&
          (snapshot_.min_dirty_lsn == kInvalidLsn ||
           e.page_lsn < snapshot_.min_dirty_lsn)) {
        snapshot_.min_dirty_lsn = e.page_lsn;
      }
    }
  } else if (ssd_ != nullptr) {
    // LC: the SSD may hold the newest copy of pages; they must reach disk.
    const int64_t ssd_dirty_before = ssd_->stats().dirty_frames;
    IoResult ssd_res{end, Status::Ok()};
    if (!skip_ssd_flush_for_test_) {
      ssd_res = ssd_->FlushAllDirty(ctx);
    }
    if (ssd_res.ok() && ssd_->stats().lost_pages > 0) {
      // Lost pages (dirty copies that died with the SSD) are healed by redo
      // from the previous completed checkpoint; advancing the recovery LSN
      // past their updates would strand them forever.
      ssd_res.status = Status::IoError("lost pages outstanding at checkpoint");
    }
    if (!ssd_res.ok()) {
      // Failed checkpoint, atomically: no end record is written, the
      // previous begin-LSN keeps governing recovery, and the error is
      // surfaced through checkpoints_failed here and
      // SsdManagerStats::checkpoint_flush_failures on the cache.
      ++stats_.checkpoints_failed;
      ssd_->OnCheckpointEnd();
      AuditAtCheckpointBoundary(pool_, ssd_, "abort");
      return std::max(end, ssd_res.time);
    }
    end = std::max(end, ssd_res.time);
    stats_.pages_flushed_ssd += ssd_dirty_before;
  }
  // The disk now holds every pre-checkpoint update (LC included); the end
  // record does not exist yet, so recovery would still redo the full tail.
  TURBOBP_CRASH_POINT("ckpt/after-ssd-flush");

  log_->AppendEndCheckpoint();
  // End record appended but not durable: the checkpoint must not count yet.
  TURBOBP_CRASH_POINT("ckpt/before-end-flush");
  // The end-checkpoint record must be durable for the checkpoint to count.
  end = std::max(end, log_->FlushTo(log_->current_lsn(), ctx));
  // The checkpoint's commit edge: from here on, recovery starts at this
  // begin record and everything older must already be on disk.
  TURBOBP_CRASH_POINT("ckpt/end-durable");

  if (ssd_ != nullptr) ssd_->OnCheckpointEnd();
  ++stats_.checkpoints_taken;
  const Time duration = end - start;
  stats_.total_duration += duration;
  stats_.max_duration = std::max(stats_.max_duration, duration);
  stats_.last_checkpoint_lsn = begin_lsn;
  completed_.push_back(begin_lsn);
  if (wal_truncation_) {
    // The checkpoint's commit edge passed: recovery starts at this begin
    // record, so the buffered copies below it (durable by construction —
    // FlushAllDirty forced the log through every flushed page's LSN, and
    // the end-record flush covered the rest) are dead weight. Release them.
    log_->TruncatePrefix(begin_lsn);
  }
  AuditAtCheckpointBoundary(pool_, ssd_, "end");
  return end;
}

void CheckpointManager::SchedulePeriodic(Time interval) {
  TURBOBP_CHECK(executor_ != nullptr);
  TURBOBP_CHECK(interval > 0);
  periodic_ = true;
  executor_->ScheduleAfter(interval, [this, interval] { PeriodicTick(interval); });
}

void CheckpointManager::PeriodicTick(Time interval) {
  if (!periodic_) return;
  IoContext ctx;
  ctx.now = executor_->now();
  ctx.executor = executor_;
  const Time end = RunCheckpoint(ctx);
  // Next checkpoint fires one interval after this one *finishes* (a
  // checkpoint that overruns the interval does not stack).
  executor_->ScheduleAt(std::max(end, executor_->now()) + interval,
                        [this, interval] { PeriodicTick(interval); });
}

}  // namespace turbobp
