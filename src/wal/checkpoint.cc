#include "wal/checkpoint.h"

#include <algorithm>

#include "common/status.h"
#include "debug/invariant_auditor.h"

namespace turbobp {

namespace {
// TURBOBP_AUDIT builds cross-check the buffer pool and the SSD manager's
// structures at every checkpoint boundary: the checkpoint is the one moment
// the engine claims a consistent durable story, so an inconsistency here
// means a correctness bug upstream. No-op (and zero cost) otherwise.
void AuditAtCheckpointBoundary(BufferPool* pool, SsdManager* ssd,
                               [[maybe_unused]] const char* when) {
#ifdef TURBOBP_AUDIT
  const AuditReport report = InvariantAuditor::AuditSystem(*pool, ssd);
  if (!report.ok()) {
    const std::string msg =
        std::string("checkpoint ") + when + ": " + report.ToString();
    Panic(__FILE__, __LINE__, msg.c_str());
  }
#else
  (void)pool;
  (void)ssd;
#endif
}
}  // namespace

CheckpointManager::CheckpointManager(BufferPool* pool, SsdManager* ssd,
                                     LogManager* log, SimExecutor* executor)
    : pool_(pool), ssd_(ssd), log_(log), executor_(executor) {
  TURBOBP_CHECK(pool != nullptr);
  TURBOBP_CHECK(log != nullptr);
}

Time CheckpointManager::RunCheckpoint(IoContext& ctx) {
  const Time start = ctx.now;
  AuditAtCheckpointBoundary(pool_, ssd_, "begin");
  const Lsn begin_lsn = log_->AppendBeginCheckpoint();
  if (ssd_ != nullptr) ssd_->OnCheckpointBegin();

  const int64_t dirty_before = pool_->DirtyFrameCount();
  // Flush all dirty memory pages (sharp checkpoint); DW also pushes
  // checkpointed random pages into the SSD via OnCheckpointWrite.
  Time end = pool_->FlushAllDirty(ctx, /*for_checkpoint=*/true);
  stats_.pages_flushed_memory += dirty_before;

  if (ssd_ != nullptr && ssd_table_mode_) {
    // Restart extension: instead of draining the SSD's dirty pages, persist
    // the SSD buffer table in the checkpoint record. Redo must then start
    // no later than the oldest dirty SSD page's LSN.
    snapshot_.checkpoint_lsn = begin_lsn;
    snapshot_.entries = ssd_->SnapshotForCheckpoint();
    snapshot_.min_dirty_lsn = kInvalidLsn;
    for (const auto& e : snapshot_.entries) {
      if (e.dirty && e.page_lsn != kInvalidLsn &&
          (snapshot_.min_dirty_lsn == kInvalidLsn ||
           e.page_lsn < snapshot_.min_dirty_lsn)) {
        snapshot_.min_dirty_lsn = e.page_lsn;
      }
    }
  } else if (ssd_ != nullptr) {
    // LC: the SSD may hold the newest copy of pages; they must reach disk.
    const int64_t ssd_dirty_before = ssd_->stats().dirty_frames;
    const Time ssd_end = ssd_->FlushAllDirty(ctx);
    end = std::max(end, ssd_end);
    stats_.pages_flushed_ssd += ssd_dirty_before;
  }

  log_->AppendEndCheckpoint();
  // The end-checkpoint record must be durable for the checkpoint to count.
  end = std::max(end, log_->FlushTo(log_->current_lsn(), ctx));

  if (ssd_ != nullptr) ssd_->OnCheckpointEnd();
  ++stats_.checkpoints_taken;
  const Time duration = end - start;
  stats_.total_duration += duration;
  stats_.max_duration = std::max(stats_.max_duration, duration);
  stats_.last_checkpoint_lsn = begin_lsn;
  completed_.push_back(begin_lsn);
  AuditAtCheckpointBoundary(pool_, ssd_, "end");
  return end;
}

void CheckpointManager::SchedulePeriodic(Time interval) {
  TURBOBP_CHECK(executor_ != nullptr);
  TURBOBP_CHECK(interval > 0);
  periodic_ = true;
  executor_->ScheduleAfter(interval, [this, interval] { PeriodicTick(interval); });
}

void CheckpointManager::PeriodicTick(Time interval) {
  if (!periodic_) return;
  IoContext ctx;
  ctx.now = executor_->now();
  ctx.executor = executor_;
  const Time end = RunCheckpoint(ctx);
  // Next checkpoint fires one interval after this one *finishes* (a
  // checkpoint that overruns the interval does not stack).
  executor_->ScheduleAt(std::max(end, executor_->now()) + interval,
                        [this, interval] { PeriodicTick(interval); });
}

}  // namespace turbobp
