#ifndef TURBOBP_WAL_LOG_MANAGER_H_
#define TURBOBP_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "debug/latch_order_checker.h"
#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

enum class LogRecordType : uint8_t {
  kUpdate = 0,      // physical redo: bytes at (page_id, offset)
  kCommit = 1,
  kBeginCheckpoint = 2,
  kEndCheckpoint = 3,
};

// Physiological redo record. Updates carry the after-image bytes of the
// modified byte range (page splits log whole-page images), which is all a
// redo-only recovery pass needs; the workloads in this repo never roll back,
// so no undo information is kept (documented in DESIGN.md).
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t txn_id = 0;
  PageId page_id = kInvalidPageId;
  uint32_t offset = 0;
  // CRC32-C over every other field, sealed at append time. A record in the
  // durable prefix whose stored checksum no longer matches its content is a
  // torn tail block: replay truncates the log there instead of applying
  // (or asserting on) garbage.
  uint32_t checksum = 0;
  std::vector<uint8_t> bytes;

  // 32-byte header + 4-byte checksum + after-image payload.
  size_t SizeOnDisk() const { return 36 + bytes.size(); }

  uint32_t ComputeChecksum() const;
  void SealChecksum() { checksum = ComputeChecksum(); }
  bool VerifyChecksum() const { return checksum == ComputeChecksum(); }
};

// Write-ahead log over a dedicated log device (the paper's setup uses one
// HDD exclusively for the DBMS log). Appends are buffered; FlushTo() forces
// the log through a given LSN with sequential page-sized writes, which is
// the WAL obligation the buffer pool and the LC cleaner discharge before
// writing any dirty page to the SSD or the disk (Section 2.4).
class LogManager {
 public:
  LogManager(StorageDevice* log_device);
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Lsn AppendUpdate(uint64_t txn_id, PageId pid, uint32_t offset,
                   std::span<const uint8_t> bytes) TURBOBP_EXCLUDES(mu_);
  Lsn AppendCommit(uint64_t txn_id) TURBOBP_EXCLUDES(mu_);
  Lsn AppendBeginCheckpoint() TURBOBP_EXCLUDES(mu_);
  Lsn AppendEndCheckpoint() TURBOBP_EXCLUDES(mu_);

  // Forces the log through `lsn`. Asynchronous in virtual time: consumes
  // log-device time, returns the completion time, leaves ctx.now alone.
  // Idempotent for already-durable LSNs.
  Time FlushTo(Lsn lsn, IoContext& ctx) TURBOBP_EXCLUDES(mu_);

  // Group commit: forces the whole log and blocks the client until durable.
  void CommitForce(IoContext& ctx) TURBOBP_EXCLUDES(mu_);

  Lsn current_lsn() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return next_lsn_;
  }
  Lsn durable_lsn() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return durable_lsn_;
  }
  bool IsDurable(Lsn lsn) const { return lsn <= durable_lsn(); }

  // Total records appended / flush requests issued (stats).
  int64_t num_records() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return static_cast<int64_t>(records_.size());
  }
  int64_t flushes_issued() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return flushes_;
  }
  int64_t bytes_appended() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return static_cast<int64_t>(next_lsn_);
  }

  // Recovery interface: all records, and the subset durable at crash time.
  // Returns a reference into the log's own storage: recovery is
  // single-threaded, so no latch is held while the caller iterates.
  // Deliberately latch-free (TURBOBP_NO_THREAD_SAFETY_ANALYSIS): see
  // SnapshotForCrash below; the structural checker audits these callers.
  const std::vector<LogRecord>& records() const
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }

  // Simulates a crash: discards records that were never forced to the log
  // device. Returns the number of records lost.
  size_t DropUnflushed();

  // Torn-tail hardening (replay path): verifies the per-record checksum of
  // every record in the durable prefix, in order, and truncates the log at
  // the first bad record — that record and everything after it are dropped,
  // the durable LSN retreats to the last intact record, and new appends
  // reuse the reclaimed LSN space. A torn final log block is thereby
  // *recovered from* instead of asserted on. Idempotent; returns the number
  // of records dropped (0 on a clean log).
  size_t TruncateTornTail();

  // --- crash-harness interface (src/fault/crash_harness) --------------------

  // The durable-at-this-instant view of the log. Taken WITHOUT the WAL
  // latch: crash points inside FlushToLocked fire while mu_ is held, so the
  // observer cannot use the locking accessors. The simulation is
  // single-threaded per system; the harness is the only caller.
  struct CrashSnapshot {
    std::vector<LogRecord> records;
    Lsn durable_lsn = 0;
    Lsn next_lsn = 1;
  };
  CrashSnapshot SnapshotForCrash() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return CrashSnapshot{records_, durable_lsn_, next_lsn_};
  }

  // Rebuilds a fresh LogManager's state from a crash snapshot, as if the
  // records were read back from the log device at restart. The caller may
  // have corrupted a record body (keeping its stale checksum) to model a
  // torn tail block; TruncateTornTail() then prunes it during replay.
  void RestoreDurableState(std::vector<LogRecord> records, Lsn durable_lsn);

 private:
  Lsn Append(LogRecord rec) TURBOBP_EXCLUDES(mu_);
  Time FlushToLocked(Lsn lsn, IoContext& ctx) TURBOBP_REQUIRES(mu_);

  // WAL latch: serializes appends and flushes. Acquired under the buffer
  // pool latch on the eviction path (kBufferPool -> kWal) and standalone by
  // checkpoints and group commit. Log-device writes happen *under* mu_
  // (FlushToLocked) by design — see the latch-order spec table.
  mutable TrackedMutex<LatchClass::kWal> mu_;
  StorageDevice* device_;
  std::vector<LogRecord> records_ TURBOBP_GUARDED_BY(mu_);
  Lsn next_lsn_ TURBOBP_GUARDED_BY(mu_) = 1;  // byte-offset LSN; 0 invalid
  Lsn durable_lsn_ TURBOBP_GUARDED_BY(mu_) = 0;
  // Wraps around the log device.
  uint64_t device_offset_pages_ TURBOBP_GUARDED_BY(mu_) = 0;
  int64_t flushes_ TURBOBP_GUARDED_BY(mu_) = 0;
};

}  // namespace turbobp

#endif  // TURBOBP_WAL_LOG_MANAGER_H_
