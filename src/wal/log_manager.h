#ifndef TURBOBP_WAL_LOG_MANAGER_H_
#define TURBOBP_WAL_LOG_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "debug/latch_order_checker.h"
#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

enum class LogRecordType : uint8_t {
  kUpdate = 0,      // physical redo: bytes at (page_id, offset)
  kCommit = 1,
  kBeginCheckpoint = 2,
  kEndCheckpoint = 3,
};

// Physiological redo record. Updates carry the after-image bytes of the
// modified byte range (page splits log whole-page images), which is all a
// redo-only recovery pass needs; the workloads in this repo never roll back,
// so no undo information is kept (documented in DESIGN.md).
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  LogRecordType type = LogRecordType::kUpdate;
  uint64_t txn_id = 0;
  PageId page_id = kInvalidPageId;
  uint32_t offset = 0;
  // CRC32-C over every other field, sealed at append time. A record in the
  // durable prefix whose stored checksum no longer matches its content is a
  // torn tail block: replay truncates the log there instead of applying
  // (or asserting on) garbage.
  uint32_t checksum = 0;
  std::vector<uint8_t> bytes;

  // 32-byte header + 4-byte checksum + after-image payload.
  size_t SizeOnDisk() const { return 36 + bytes.size(); }

  uint32_t ComputeChecksum() const;
  void SealChecksum() { checksum = ComputeChecksum(); }
  bool VerifyChecksum() const { return checksum == ComputeChecksum(); }
};

// Write-ahead log over a dedicated log device (the paper's setup uses one
// HDD exclusively for the DBMS log). Appends are buffered; FlushTo() forces
// the log through a given LSN with sequential page-sized writes, which is
// the WAL obligation the buffer pool and the LC cleaner discharge before
// writing any dirty page to the SSD or the disk (Section 2.4).
//
// Flushes use leader-based group commit (DESIGN.md §14): the first thread to
// find no flush in flight becomes the leader, computes the batch under mu_,
// and performs ONE device write covering every record appended so far with
// mu_ *released* — appenders keep appending and followers park on a condvar
// until the leader publishes the new durable LSN. kWal is therefore
// device-io-forbidden in the latch-order spec. The pre-group-commit
// behavior (device write while holding mu_, every committer serializing
// behind device latency) is retained behind set_group_commit(false) as the
// A/B baseline for bench_scaleout_threads.
class LogManager {
 public:
  LogManager(StorageDevice* log_device);
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Toggles leader-based group commit (default on). The legacy mode exists
  // only for A/B measurement; it reintroduces device I/O under mu_.
  void set_group_commit(bool on) { group_commit_ = on; }
  bool group_commit() const { return group_commit_; }

  Lsn AppendUpdate(uint64_t txn_id, PageId pid, uint32_t offset,
                   std::span<const uint8_t> bytes) TURBOBP_EXCLUDES(mu_);
  Lsn AppendCommit(uint64_t txn_id) TURBOBP_EXCLUDES(mu_);
  Lsn AppendBeginCheckpoint() TURBOBP_EXCLUDES(mu_);
  Lsn AppendEndCheckpoint() TURBOBP_EXCLUDES(mu_);

  // Forces the log through `lsn`. Asynchronous in virtual time: consumes
  // log-device time, returns the completion time, leaves ctx.now alone.
  // Idempotent for already-durable LSNs. May block (condvar) behind an
  // in-flight leader write in real-thread mode.
  Time FlushTo(Lsn lsn, IoContext& ctx) TURBOBP_EXCLUDES(mu_);

  // Group commit: forces the whole log and blocks the client until durable.
  void CommitForce(IoContext& ctx) TURBOBP_EXCLUDES(mu_);

  Lsn current_lsn() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return next_lsn_;
  }
  Lsn durable_lsn() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return durable_lsn_;
  }
  bool IsDurable(Lsn lsn) const { return lsn <= durable_lsn(); }

  // Records logically in the log (including any truncated in-memory
  // prefix — truncation discards buffered copies, not log history) and
  // flush requests issued (stats).
  int64_t num_records() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return logical_records_;
  }
  int64_t flushes_issued() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return flushes_;
  }
  int64_t bytes_appended() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return static_cast<int64_t>(next_lsn_);
  }
  // Group-commit observability: flushes_issued() counts leader batches;
  // flush_waits() counts times a caller parked behind an in-flight batch.
  int64_t flush_waits() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return flush_waits_;
  }

  // --- record access ---------------------------------------------------------

  // Point-in-time copy of the buffered records, taken under mu_. Safe to
  // call while other threads append; this is the accessor every
  // steady-state caller must use.
  std::vector<LogRecord> records_snapshot() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return records_;
  }

  // Latch-free reference into the live record buffer — the documented
  // single-threaded fast path for recovery and the crash harness, both of
  // which run while no client executes (recovery replays before the system
  // opens; the harness observes from inside a crash point). Iterating this
  // while another thread appends is a data race; concurrent callers use
  // records_snapshot(). The structural checker audits the call sites.
  const std::vector<LogRecord>& records_for_recovery() const
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }

  // --- in-memory tail bounding ----------------------------------------------

  // Drops the in-memory prefix of records that are durable AND strictly
  // below `horizon` (the redo horizon of the last completed checkpoint:
  // recovery never reads below it, so the buffered copies are dead weight a
  // long-running threaded soak would otherwise accumulate without bound).
  // Returns the number of records dropped. LSNs, durability and
  // num_records() are unaffected — only buffered copies are released.
  size_t TruncatePrefix(Lsn horizon) TURBOBP_EXCLUDES(mu_);

  // Records currently buffered in memory (bounded-memory assertions).
  size_t retained_records() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return records_.size();
  }
  int64_t records_truncated() const TURBOBP_EXCLUDES(mu_) {
    TrackedLockGuard lock(mu_);
    return records_truncated_;
  }

  // Simulates a crash: discards records that were never forced to the log
  // device. Returns the number of records lost.
  size_t DropUnflushed();

  // Torn-tail hardening (replay path): verifies the per-record checksum of
  // every record in the durable prefix, in order, and truncates the log at
  // the first bad record — that record and everything after it are dropped,
  // the durable LSN retreats to the last intact record, and new appends
  // reuse the reclaimed LSN space. A torn final log block is thereby
  // *recovered from* instead of asserted on. Idempotent; returns the number
  // of records dropped (0 on a clean log).
  size_t TruncateTornTail();

  // --- crash-harness interface (src/fault/crash_harness) --------------------

  // The durable-at-this-instant view of the log. Taken WITHOUT the WAL
  // latch: crash points inside the flush path fire while mu_ may be held,
  // so the observer cannot use the locking accessors. The simulation is
  // single-threaded per system; the harness is the only caller.
  struct CrashSnapshot {
    std::vector<LogRecord> records;
    Lsn durable_lsn = 0;
    Lsn next_lsn = 1;
  };
  CrashSnapshot SnapshotForCrash() const TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return CrashSnapshot{records_, durable_lsn_, next_lsn_};
  }

  // Rebuilds a fresh LogManager's state from a crash snapshot, as if the
  // records were read back from the log device at restart. The caller may
  // have corrupted a record body (keeping its stale checksum) to model a
  // torn tail block; TruncateTornTail() then prunes it during replay.
  void RestoreDurableState(std::vector<LogRecord> records, Lsn durable_lsn);

 private:
  Lsn Append(LogRecord rec) TURBOBP_EXCLUDES(mu_);
  // Legacy pre-group-commit flush: one device write per call, issued while
  // holding mu_. Kept verbatim as the A/B baseline (group_commit_ == false).
  Time FlushToLegacyLocked(Lsn lsn, IoContext& ctx) TURBOBP_REQUIRES(mu_);
  // Computes the device extent covering [durable_lsn_, target] and advances
  // the sequential log-device cursor.
  void StageDeviceWrite(Lsn target, uint64_t* first, uint32_t* npages)
      TURBOBP_REQUIRES(mu_);

  // WAL latch: serializes appends and the flush-protocol state. Acquired
  // under the buffer pool latch on the eviction path (kBufferPool -> kWal)
  // and standalone by checkpoints and group commit. Device-io-forbidden:
  // the group-commit leader drops mu_ for the batched log-device write (the
  // legacy A/B mode is the single sanctioned waiver).
  mutable TrackedMutex<LatchClass::kWal> mu_;
  StorageDevice* device_;
  std::vector<LogRecord> records_ TURBOBP_GUARDED_BY(mu_);
  Lsn next_lsn_ TURBOBP_GUARDED_BY(mu_) = 1;  // byte-offset LSN; 0 invalid
  Lsn durable_lsn_ TURBOBP_GUARDED_BY(mu_) = 0;
  // Start LSN of the last appended record (survives prefix truncation;
  // FlushTo clamps against it the way it used to clamp against
  // records_.back()).
  Lsn last_record_lsn_ TURBOBP_GUARDED_BY(mu_) = 0;
  // First retained LSN: records with lsn < base_lsn_ were truncated (all
  // durable). TruncateTornTail retreats durability no further than this.
  Lsn base_lsn_ TURBOBP_GUARDED_BY(mu_) = 1;
  // Wraps around the log device.
  uint64_t device_offset_pages_ TURBOBP_GUARDED_BY(mu_) = 0;
  int64_t flushes_ TURBOBP_GUARDED_BY(mu_) = 0;
  int64_t logical_records_ TURBOBP_GUARDED_BY(mu_) = 0;
  int64_t records_truncated_ TURBOBP_GUARDED_BY(mu_) = 0;
  int64_t flush_waits_ TURBOBP_GUARDED_BY(mu_) = 0;

  // Group-commit protocol state. flush_in_flight_ is true while a leader
  // writes to the device with mu_ released; followers park on flush_cv_
  // and re-check durable_lsn_ when notified. Completion of the flush that
  // established durable_lsn_, in virtual time (what a woken follower
  // returns as its flush completion).
  bool group_commit_ = true;
  bool flush_in_flight_ TURBOBP_GUARDED_BY(mu_) = false;
  Time durable_completion_ TURBOBP_GUARDED_BY(mu_) = 0;
  std::condition_variable_any flush_cv_;
};

}  // namespace turbobp

#endif  // TURBOBP_WAL_LOG_MANAGER_H_
