#include "storage/sim_device.h"

#include <utility>

namespace turbobp {

SimDevice::SimDevice(uint64_t num_pages, uint32_t page_bytes,
                     std::unique_ptr<DeviceModel> model)
    : store_(num_pages, page_bytes),
      model_(std::move(model)),
      timeline_(model_.get(), page_bytes) {}

IoResult SimDevice::Read(uint64_t first_page, uint32_t num_pages,
                         std::span<uint8_t> out, Time now, bool charge) {
  IoResult res = store_.Read(first_page, num_pages, out, now, charge);
  if (!charge || !res.ok()) return res;
  TrackedLockGuard lock(mu_);
  res.time = timeline_.Schedule(IoRequest{IoOp::kRead, first_page, num_pages},
                                now, &res.service_start);
  return res;
}

IoResult SimDevice::Write(uint64_t first_page, uint32_t num_pages,
                          std::span<const uint8_t> data, Time now,
                          bool charge) {
  IoResult res = store_.Write(first_page, num_pages, data, now, charge);
  if (!charge || !res.ok()) return res;
  TrackedLockGuard lock(mu_);
  res.time = timeline_.Schedule(IoRequest{IoOp::kWrite, first_page, num_pages},
                                now, &res.service_start);
  return res;
}

}  // namespace turbobp
