#include "storage/striped_array.h"

#include <algorithm>

#include "common/status.h"

namespace turbobp {

StripedDiskArray::StripedDiskArray(uint64_t num_pages, uint32_t page_bytes,
                                   const Options& options)
    : num_pages_(num_pages),
      page_bytes_(page_bytes),
      stripe_pages_(options.stripe_pages) {
  TURBOBP_CHECK(options.num_spindles > 0);
  TURBOBP_CHECK(options.stripe_pages > 0);
  const uint64_t per_spindle =
      (num_pages + options.num_spindles - 1) / options.num_spindles +
      stripe_pages_;
  HddParams hdd = options.hdd;
  hdd.page_bytes = page_bytes;
  for (int i = 0; i < options.num_spindles; ++i) {
    spindles_.push_back(std::make_unique<SimDevice>(
        per_spindle, page_bytes, std::make_unique<HddModel>(hdd)));
  }
}

StripedDiskArray::Mapping StripedDiskArray::Map(uint64_t logical_page) const {
  const uint64_t stripe_index = logical_page / stripe_pages_;
  const uint64_t offset = logical_page % stripe_pages_;
  const int spindle = static_cast<int>(stripe_index % spindles_.size());
  const uint64_t row = stripe_index / spindles_.size();
  return Mapping{spindle, row * stripe_pages_ + offset};
}

template <typename Fn>
void StripedDiskArray::ForEachRun(uint64_t first, uint32_t n, Fn&& fn) const {
  uint32_t done = 0;
  while (done < n) {
    const uint64_t logical = first + done;
    const Mapping m = Map(logical);
    // Run extends to the end of the current stripe unit at most.
    const uint32_t within = static_cast<uint32_t>(logical % stripe_pages_);
    const uint32_t run = std::min<uint32_t>(n - done, stripe_pages_ - within);
    fn(m.spindle, m.local_page, run, done);
    done += run;
  }
}

IoResult StripedDiskArray::Read(uint64_t first_page, uint32_t num_pages,
                                std::span<uint8_t> out, Time now, bool charge) {
  TURBOBP_CHECK(first_page + num_pages <= num_pages_);
  // Sub-requests proceed in parallel: completion is the latest
  // sub-completion, and the first failing spindle reports for the stripe.
  IoResult agg{now, Status::Ok()};
  ForEachRun(first_page, num_pages,
             [&](int spindle, uint64_t local, uint32_t count, uint32_t off) {
               const IoResult r = spindles_[spindle]->Read(
                   local, count,
                   out.subspan(static_cast<size_t>(off) * page_bytes_,
                               static_cast<size_t>(count) * page_bytes_),
                   now, charge);
               agg.time = std::max(agg.time, r.time);
               if (agg.ok() && !r.ok()) agg.status = r.status;
             });
  return agg;
}

IoResult StripedDiskArray::Write(uint64_t first_page, uint32_t num_pages,
                                 std::span<const uint8_t> data, Time now,
                                 bool charge) {
  TURBOBP_CHECK(first_page + num_pages <= num_pages_);
  IoResult agg{now, Status::Ok()};
  ForEachRun(first_page, num_pages,
             [&](int spindle, uint64_t local, uint32_t count, uint32_t off) {
               const IoResult r = spindles_[spindle]->Write(
                   local, count,
                   data.subspan(static_cast<size_t>(off) * page_bytes_,
                                static_cast<size_t>(count) * page_bytes_),
                   now, charge);
               agg.time = std::max(agg.time, r.time);
               if (agg.ok() && !r.ok()) agg.status = r.status;
             });
  return agg;
}

int StripedDiskArray::QueueLength(Time now) {
  int total = 0;
  for (auto& s : spindles_) total += s->QueueLength(now);
  return total;
}

Time StripedDiskArray::EstimateReadTime(AccessKind kind) const {
  return spindles_[0]->EstimateReadTime(kind);
}

void StripedDiskArray::AttachTraffic(TimeSeries* read_bytes,
                                     TimeSeries* write_bytes) {
  for (auto& s : spindles_) s->timeline().AttachTraffic(read_bytes, write_bytes);
}

int64_t StripedDiskArray::TotalRequests(IoOp op) const {
  int64_t total = 0;
  for (const auto& s : spindles_) {
    total += const_cast<SimDevice&>(*s).timeline().num_requests(op);
  }
  return total;
}

int64_t StripedDiskArray::TotalBytes(IoOp op) const {
  int64_t total = 0;
  for (const auto& s : spindles_) {
    total += const_cast<SimDevice&>(*s).timeline().bytes(op);
  }
  return total;
}

Time StripedDiskArray::TotalBusyTime() const {
  Time total = 0;
  for (const auto& s : spindles_) {
    total += const_cast<SimDevice&>(*s).timeline().busy_time();
  }
  return total;
}

void StripedDiskArray::SetSynthesizer(MemDevice::Synthesizer s) {
  const uint64_t n = spindles_.size();
  const uint32_t unit = stripe_pages_;
  for (uint64_t i = 0; i < n; ++i) {
    // Translate the spindle-local page id back to the logical page id the
    // caller's synthesizer expects.
    spindles_[i]->store().SetSynthesizer(
        [s, i, n, unit](uint64_t local, std::span<uint8_t> out) {
          const uint64_t row = local / unit;
          const uint64_t offset = local % unit;
          const uint64_t stripe_index = row * n + i;
          s(stripe_index * unit + offset, out);
        });
  }
}

StripedDiskArray::Content StripedDiskArray::SnapshotContent() const {
  Content content;
  content.spindles.reserve(spindles_.size());
  for (const auto& s : spindles_) {
    content.spindles.push_back(
        const_cast<SimDevice&>(*s).store().SnapshotContent());
  }
  return content;
}

void StripedDiskArray::RestoreContent(const Content& content) {
  TURBOBP_CHECK(content.spindles.size() == spindles_.size());
  for (size_t i = 0; i < spindles_.size(); ++i) {
    spindles_[i]->store().RestoreContent(content.spindles[i]);
  }
}

}  // namespace turbobp
