#include "storage/file_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace turbobp {

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDevice::Create(const std::string& path, uint64_t num_pages,
                          uint32_t page_bytes,
                          std::unique_ptr<FileDevice>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(num_pages * page_bytes)) != 0) {
    ::close(fd);
    return Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
  }
  // Factory for a private constructor; make_unique has no access.
  out->reset(new FileDevice(fd, num_pages, page_bytes));  // lint: allow(raw-new)
  return Status::Ok();
}

Status FileDevice::Open(const std::string& path, uint32_t page_bytes,
                        std::unique_ptr<FileDevice>* out) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(errno));
  }
  out->reset(new FileDevice(  // lint: allow(raw-new)
      fd, static_cast<uint64_t>(st.st_size) / page_bytes, page_bytes));
  return Status::Ok();
}

IoResult FileDevice::Read(uint64_t first_page, uint32_t num_pages,
                          std::span<uint8_t> out, Time now, bool charge) {
  const size_t nbytes = static_cast<size_t>(num_pages) * page_bytes_;
  size_t done = 0;
  while (done < nbytes) {
    const ssize_t n = ::pread(fd_, out.data() + done, nbytes - done,
                              static_cast<off_t>(first_page * page_bytes_ + done));
    if (n == 0) {
      // Reading past materialized extents of a sparse file yields zeros via
      // ftruncate; EOF short-reads mean never-written tail, not failure.
      std::memset(out.data() + done, 0, nbytes - done);
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoResult{now, Status::IoError(std::string("pread: ") +
                                           std::strerror(errno))};
    }
    done += static_cast<size_t>(n);
  }
  return IoResult{now, Status::Ok()};
}

IoResult FileDevice::Write(uint64_t first_page, uint32_t num_pages,
                           std::span<const uint8_t> data, Time now,
                           bool charge) {
  const size_t nbytes = static_cast<size_t>(num_pages) * page_bytes_;
  size_t done = 0;
  while (done < nbytes) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, nbytes - done,
                               static_cast<off_t>(first_page * page_bytes_ + done));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return IoResult{now, Status::IoError(std::string("pwrite: ") +
                                           std::strerror(errno))};
    }
    done += static_cast<size_t>(n);
  }
  return IoResult{now, Status::Ok()};
}

Status FileDevice::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace turbobp
