#ifndef TURBOBP_STORAGE_MEM_DEVICE_H_
#define TURBOBP_STORAGE_MEM_DEVICE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "debug/latch_order_checker.h"
#include "storage/storage_device.h"

namespace turbobp {

// In-memory page store with zero service time. Serves three roles:
//   * the correctness substrate for unit tests,
//   * the backing store of SimDevice (which adds a latency model),
//   * a lazily-materialized store: pages never written are synthesized on
//     first read by a caller-provided function, so a "400GB" logical
//     database costs only its written working set in RAM.
class MemDevice : public StorageDevice {
 public:
  // Fills `out` with the initial (never-written) content of `page`.
  using Synthesizer = std::function<void(uint64_t page, std::span<uint8_t> out)>;

  MemDevice(uint64_t num_pages, uint32_t page_bytes);

  void SetSynthesizer(Synthesizer s) { synthesizer_ = std::move(s); }

  uint64_t num_pages() const override { return num_pages_; }
  uint32_t page_bytes() const override { return page_bytes_; }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override;
  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override;

  // Whether the page has ever been written (vs. synthesized-on-read).
  bool IsMaterialized(uint64_t page) const;
  size_t materialized_pages() const;

  // Drops all written content (simulates reformatting the device).
  void Clear();

  // Crash simulation (src/fault/crash_harness): copies of the materialized
  // page map, capturing exactly the bytes a power cut at this instant would
  // leave on the medium. Restore replaces the whole map.
  std::unordered_map<uint64_t, std::vector<uint8_t>> SnapshotContent() const;
  void RestoreContent(std::unordered_map<uint64_t, std::vector<uint8_t>> pages);

 private:
  void ReadOne(uint64_t page, std::span<uint8_t> out) TURBOBP_REQUIRES(mu_);

  const uint64_t num_pages_;
  const uint32_t page_bytes_;
  Synthesizer synthesizer_;
  mutable TrackedMutex<LatchClass::kDevice> mu_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_
      TURBOBP_GUARDED_BY(mu_);
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_MEM_DEVICE_H_
