#ifndef TURBOBP_STORAGE_PAGE_H_
#define TURBOBP_STORAGE_PAGE_H_

#include <cstring>
#include <span>

#include "common/checksum.h"
#include "common/status.h"
#include "common/types.h"

namespace turbobp {

enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kHeap = 2,
  kBTreeLeaf = 3,
  kBTreeInner = 4,
  kRaw = 5,  // pages written directly by tests / synthetic workloads
};

// On-page header, stored at offset 0 of every database page. The checksum
// covers the payload (everything after the header) and is verified on every
// device read, so a stale or corrupt copy on any of the three tiers
// (memory / SSD / disk) is caught at the point it is consumed.
struct PageHeader {
  PageId page_id = kInvalidPageId;
  Lsn lsn = kInvalidLsn;          // LSN of the last update (WAL rule input)
  uint64_t version = 0;           // bumped on every modification; test oracle
  uint32_t checksum = 0;
  PageType type = PageType::kFree;
  uint16_t slot_count = 0;
  uint32_t free_offset = 0;       // start of unallocated payload space
  uint32_t reserved = 0;
};
static_assert(sizeof(PageHeader) == 40);

inline constexpr uint32_t kPageHeaderSize = sizeof(PageHeader);

// Typed view over one page's bytes. Does not own the storage.
class PageView {
 public:
  PageView(uint8_t* data, uint32_t page_bytes)
      : data_(data), page_bytes_(page_bytes) {}
  explicit PageView(std::span<uint8_t> bytes)
      : data_(bytes.data()), page_bytes_(static_cast<uint32_t>(bytes.size())) {}

  PageHeader& header() { return *reinterpret_cast<PageHeader*>(data_); }
  const PageHeader& header() const {
    return *reinterpret_cast<const PageHeader*>(data_);
  }

  uint8_t* payload() { return data_ + kPageHeaderSize; }
  const uint8_t* payload() const { return data_ + kPageHeaderSize; }
  uint32_t payload_bytes() const { return page_bytes_ - kPageHeaderSize; }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  uint32_t page_bytes() const { return page_bytes_; }

  // Initializes a fresh page of the given type.
  void Format(PageId id, PageType type) {
    std::memset(data_, 0, page_bytes_);
    PageHeader& h = header();
    h.page_id = id;
    h.type = type;
    h.free_offset = 0;
  }

  uint32_t ComputeChecksum() const {
    return Crc32c(payload(), payload_bytes());
  }
  void SealChecksum() { header().checksum = ComputeChecksum(); }
  bool VerifyChecksum() const { return header().checksum == ComputeChecksum(); }

 private:
  uint8_t* data_;
  uint32_t page_bytes_;
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_PAGE_H_
