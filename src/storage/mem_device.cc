#include "storage/mem_device.h"

#include <cstring>

#include "common/status.h"

namespace turbobp {

MemDevice::MemDevice(uint64_t num_pages, uint32_t page_bytes)
    : num_pages_(num_pages), page_bytes_(page_bytes) {
  TURBOBP_CHECK(page_bytes > 0);
}

void MemDevice::ReadOne(uint64_t page, std::span<uint8_t> out) {
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    std::memcpy(out.data(), it->second.data(), page_bytes_);
  } else if (synthesizer_) {
    synthesizer_(page, out);
  } else {
    std::memset(out.data(), 0, page_bytes_);
  }
}

IoResult MemDevice::Read(uint64_t first_page, uint32_t num_pages,
                         std::span<uint8_t> out, Time now, bool charge) {
  TURBOBP_CHECK(first_page + num_pages <= num_pages_);
  TURBOBP_CHECK(out.size() >= static_cast<size_t>(num_pages) * page_bytes_);
  TrackedLockGuard lock(mu_);
  for (uint32_t i = 0; i < num_pages; ++i) {
    ReadOne(first_page + i,
            out.subspan(static_cast<size_t>(i) * page_bytes_, page_bytes_));
  }
  return IoResult{now, Status::Ok()};
}

IoResult MemDevice::Write(uint64_t first_page, uint32_t num_pages,
                          std::span<const uint8_t> data, Time now,
                          bool charge) {
  TURBOBP_CHECK(first_page + num_pages <= num_pages_);
  TURBOBP_CHECK(data.size() >= static_cast<size_t>(num_pages) * page_bytes_);
  TrackedLockGuard lock(mu_);
  for (uint32_t i = 0; i < num_pages; ++i) {
    auto& stored = pages_[first_page + i];
    stored.assign(data.begin() + static_cast<size_t>(i) * page_bytes_,
                  data.begin() + static_cast<size_t>(i + 1) * page_bytes_);
  }
  return IoResult{now, Status::Ok()};
}

bool MemDevice::IsMaterialized(uint64_t page) const {
  TrackedLockGuard lock(mu_);
  return pages_.contains(page);
}

size_t MemDevice::materialized_pages() const {
  TrackedLockGuard lock(mu_);
  return pages_.size();
}

void MemDevice::Clear() {
  TrackedLockGuard lock(mu_);
  pages_.clear();
}

std::unordered_map<uint64_t, std::vector<uint8_t>> MemDevice::SnapshotContent()
    const {
  TrackedLockGuard lock(mu_);
  return pages_;
}

void MemDevice::RestoreContent(
    std::unordered_map<uint64_t, std::vector<uint8_t>> pages) {
  TrackedLockGuard lock(mu_);
  pages_ = std::move(pages);
}

}  // namespace turbobp
