#ifndef TURBOBP_STORAGE_DISK_MANAGER_H_
#define TURBOBP_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

// The disk manager of Figure 1: mediates all page I/O between the buffer
// manager and the database volume (typically a StripedDiskArray), issuing
// one device request per call — including multi-page vectored reads, which
// the read-ahead path relies on ("the disk can handle a single large I/O
// request more efficiently than multiple small I/O requests", Section 3.3.3).
//
// The disk array is the durable home of every page, so transient device
// errors are absorbed here with a bounded retry/backoff loop; a request
// that still fails is surfaced to the caller, for whom a dead disk array
// (unlike a dead SSD cache) is fatal.
class DiskManager {
 public:
  // Transient-error policy: retry up to kRetryLimit attempts, charging
  // kRetryBackoff of virtual time between attempts.
  static constexpr int kRetryLimit = 3;
  static constexpr Time kRetryBackoff = Millis(1);

  explicit DiskManager(StorageDevice* data);
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  uint32_t page_bytes() const { return data_->page_bytes(); }
  uint64_t num_pages() const { return data_->num_pages(); }
  StorageDevice* device() { return data_; }

  // Blocking single-page read; advances ctx.now to completion. Like every
  // entry point below: never call with a buffer-pool shard or frame latch
  // held (the PR-5 invariant, enforced by the EXCLUDES contracts).
  Status ReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame));

  // Blocking contiguous multi-page read as one device request.
  Status ReadPages(PageId first, uint32_t n, std::span<uint8_t> out,
                   IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame));

  // Asynchronous writes: consume device time, return the completion time,
  // leave ctx.now unchanged.
  IoResult WritePage(PageId pid, std::span<const uint8_t> data, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame));
  IoResult WritePages(PageId first, uint32_t n, std::span<const uint8_t> data,
                      IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame));

  Time EstimateReadTime(AccessKind kind) const {
    return data_->EstimateReadTime(kind);
  }

  int64_t reads_issued() const {
    return reads_.load(std::memory_order_relaxed);
  }
  int64_t writes_issued() const {
    return writes_.load(std::memory_order_relaxed);
  }
  int64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  // Contiguous multi-page runs (n > 1) issued as ONE vectored device
  // request — the paper's trimming optimisation, counted per request rather
  // than per page so the accounting reflects what the device actually saw.
  int64_t multi_page_reads() const {
    return multi_page_reads_.load(std::memory_order_relaxed);
  }
  int64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }
  int64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  int64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

 private:
  StorageDevice* data_;
  // Relaxed atomics: bumped concurrently once the buffer pool issues reads
  // and writes outside its shard latches.
  std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
  std::atomic<int64_t> pages_read_{0};
  std::atomic<int64_t> multi_page_reads_{0};
  std::atomic<int64_t> pages_written_{0};
  std::atomic<int64_t> io_retries_{0};
  std::atomic<int64_t> io_errors_{0};
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_DISK_MANAGER_H_
