#ifndef TURBOBP_STORAGE_STORAGE_DEVICE_H_
#define TURBOBP_STORAGE_STORAGE_DEVICE_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "debug/latch_order_checker.h"

namespace turbobp {

// Outcome of one device request: the virtual-time completion instant plus
// an error channel. A request can fail (flaky flash, a dead device); the
// fault-tolerance layer (src/fault, SsdCacheBase quarantine/degradation)
// turns these statuses into retries, disk fallbacks, or pass-through mode.
// Not [[nodiscard]]: the data movement has already happened by the time the
// result is returned, so fire-and-forget callers on devices that cannot
// fail (MemDevice, SimDevice) may legitimately drop it; paths that touch a
// possibly-faulty device must check `status`.
struct IoResult {
  Time time = 0;     // completion instant of the request
  Status status;     // kOk, kIoError (transient), kUnavailable (dead), ...
  // Instant the device began servicing the request (completion minus the
  // in-device service time; the gap from arrival to here is queue wait).
  // Hung-request detection keys deadlines off this rather than the arrival
  // instant, so queueing congestion — the throttle controller's business —
  // is never mistaken for device sickness. 0 means the device does not
  // model a queue; consumers fall back to the arrival instant.
  Time service_start = 0;

  bool ok() const { return status.ok(); }
};

// A page-addressed block device in virtual time.
//
// The contract separates data movement from timing: data transfers take
// effect immediately in call order (so content is sequentially consistent
// with the discrete-event schedule), while the returned completion time
// models when the request would finish on the physical device, given that
// it arrived at `now` and queued behind earlier requests. Callers that must
// wait for the data (buffer-pool miss reads) advance their client clock to
// the returned time; fire-and-forget callers (eviction write-back) schedule
// a completion event instead.
//
// `charge == false` performs the data movement without consuming device
// time; the loader uses it to populate multi-gigabyte databases for free.
//
// Read/Write carry TURBOBP_EXCLUDES over the buffer-pool shard, frame and
// WAL latch-class tokens: no pool latch may be held across a blocking
// device request (the PR-5 invariant), and since group commit moved the
// flush write outside LogManager::mu_, no WAL latch either — both proven
// at compile time under TURBOBP_THREAD_SAFETY=ON and structurally by the
// io-under-latch rule of tools/analysis/static_check.py.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  virtual uint64_t num_pages() const = 0;
  virtual uint32_t page_bytes() const = 0;

  // Reads `num_pages` pages starting at `first_page` into `out`
  // (num_pages * page_bytes() bytes) as one device request. On error the
  // contents of `out` are unspecified.
  virtual IoResult Read(uint64_t first_page, uint32_t num_pages,
                        std::span<uint8_t> out, Time now, bool charge = true)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kWal)) = 0;

  // Writes `num_pages` pages starting at `first_page` as one device request.
  // On error the write may have landed partially (torn); callers that care
  // must re-write or fall back to another copy.
  virtual IoResult Write(uint64_t first_page, uint32_t num_pages,
                         std::span<const uint8_t> data, Time now,
                         bool charge = true)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kBufferPool),
                       TURBOBP_LATCH_CAP(LatchClass::kBufferFrame),
                       TURBOBP_LATCH_CAP(LatchClass::kWal)) = 0;

  // Number of requests pending (issued but not completed) at `now`. The SSD
  // throttle-control optimization (Section 3.3.2) keys off this.
  virtual int QueueLength(Time now) { return 0; }

  // Estimated single-page read service time for the given access kind.
  // Drives TAC's temperature increments and the generalized admission test.
  virtual Time EstimateReadTime(AccessKind kind) const { return 0; }
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_STORAGE_DEVICE_H_
