#include "storage/disk_manager.h"

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

DiskManager::DiskManager(StorageDevice* data) : data_(data) {
  TURBOBP_CHECK(data != nullptr);
}

Status DiskManager::ReadPage(PageId pid, std::span<uint8_t> out,
                             IoContext& ctx) {
  return ReadPages(pid, 1, out, ctx);
}

Status DiskManager::ReadPages(PageId first, uint32_t n, std::span<uint8_t> out,
                              IoContext& ctx) {
  IoResult res;
  for (int attempt = 0; attempt < kRetryLimit; ++attempt) {
    if (attempt > 0) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      if (ctx.charge) ctx.now += kRetryBackoff;
    }
    res = data_->Read(first, n, out, ctx.now, ctx.charge);
    if (res.ok() || res.status.IsUnavailable()) break;
  }
  if (ctx.charge) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    pages_read_.fetch_add(n, std::memory_order_relaxed);
    if (n > 1) multi_page_reads_.fetch_add(1, std::memory_order_relaxed);
    ctx.disk_reads += n;
  }
  if (!res.ok()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return res.status;
  }
  ctx.Wait(res.time);
  return Status::Ok();
}

IoResult DiskManager::WritePage(PageId pid, std::span<const uint8_t> data,
                                IoContext& ctx) {
  return WritePages(pid, 1, data, ctx);
}

IoResult DiskManager::WritePages(PageId first, uint32_t n,
                                 std::span<const uint8_t> data,
                                 IoContext& ctx) {
  IoResult res;
  Time at = ctx.now;
  for (int attempt = 0; attempt < kRetryLimit; ++attempt) {
    if (attempt > 0) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      if (ctx.charge) at += kRetryBackoff;
    }
    res = data_->Write(first, n, data, at, ctx.charge);
    if (res.ok() || res.status.IsUnavailable()) break;
  }
  if (ctx.charge) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    pages_written_.fetch_add(n, std::memory_order_relaxed);
  }
  if (!res.ok()) io_errors_.fetch_add(1, std::memory_order_relaxed);
  // The page content has reached the durable disk array (heap, B+-tree,
  // checkpoint and redo writes all funnel through here).
  TURBOBP_CRASH_POINT("disk/write-pages");
  return res;
}

}  // namespace turbobp
