#include "storage/disk_manager.h"

#include "common/status.h"

namespace turbobp {

DiskManager::DiskManager(StorageDevice* data) : data_(data) {
  TURBOBP_CHECK(data != nullptr);
}

void DiskManager::ReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx) {
  ReadPages(pid, 1, out, ctx);
}

void DiskManager::ReadPages(PageId first, uint32_t n, std::span<uint8_t> out,
                            IoContext& ctx) {
  const Time completion = data_->Read(first, n, out, ctx.now, ctx.charge);
  if (ctx.charge) {
    ++reads_;
    pages_read_ += n;
    ctx.disk_reads += n;
  }
  ctx.Wait(completion);
}

Time DiskManager::WritePage(PageId pid, std::span<const uint8_t> data,
                            IoContext& ctx) {
  return WritePages(pid, 1, data, ctx);
}

Time DiskManager::WritePages(PageId first, uint32_t n,
                             std::span<const uint8_t> data, IoContext& ctx) {
  const Time completion = data_->Write(first, n, data, ctx.now, ctx.charge);
  if (ctx.charge) {
    ++writes_;
    pages_written_ += n;
  }
  return completion;
}

}  // namespace turbobp
