#ifndef TURBOBP_STORAGE_FILE_DEVICE_H_
#define TURBOBP_STORAGE_FILE_DEVICE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/storage_device.h"

namespace turbobp {

// Real-file backend (pread/pwrite). Used by the runnable examples so the
// library also works as an ordinary buffer manager over actual storage;
// virtual time is passed through unchanged (wall-clock latency is real).
class FileDevice : public StorageDevice {
 public:
  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;
  ~FileDevice() override;

  // Creates (or truncates) a file sized num_pages * page_bytes.
  static Status Create(const std::string& path, uint64_t num_pages,
                       uint32_t page_bytes, std::unique_ptr<FileDevice>* out);
  // Opens an existing file; num_pages derived from the file size.
  static Status Open(const std::string& path, uint32_t page_bytes,
                     std::unique_ptr<FileDevice>* out);

  uint64_t num_pages() const override { return num_pages_; }
  uint32_t page_bytes() const override { return page_bytes_; }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override;
  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override;

  Status Sync();

 private:
  FileDevice(int fd, uint64_t num_pages, uint32_t page_bytes)
      : fd_(fd), num_pages_(num_pages), page_bytes_(page_bytes) {}

  int fd_;
  uint64_t num_pages_;
  uint32_t page_bytes_;
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_FILE_DEVICE_H_
