#ifndef TURBOBP_STORAGE_STRIPED_ARRAY_H_
#define TURBOBP_STORAGE_STRIPED_ARRAY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/device_model.h"
#include "storage/sim_device.h"
#include "storage/storage_device.h"

namespace turbobp {

// RAID-0 stripe over N simulated spindles, mirroring the paper's setup of a
// database file group striped across eight 7,200rpm SATA drives. A stripe
// unit of `stripe_pages` consecutive pages lives on one spindle; successive
// units round-robin across spindles. Multi-page requests are split into
// per-spindle sub-requests which proceed in parallel; the completion time is
// the latest sub-completion. Per-spindle FIFO queues preserve the
// sequential-run detection that gives striped disks their sequential-read
// cost advantage over the SSD (the premise of the admission policy).
class StripedDiskArray : public StorageDevice {
 public:
  struct Options {
    int num_spindles = 8;
    uint32_t stripe_pages = 8;  // 64KB units at 8KB pages
    HddParams hdd;
  };

  StripedDiskArray(uint64_t num_pages, uint32_t page_bytes,
                   const Options& options);

  uint64_t num_pages() const override { return num_pages_; }
  uint32_t page_bytes() const override { return page_bytes_; }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override;
  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override;

  int QueueLength(Time now) override;
  Time EstimateReadTime(AccessKind kind) const override;

  int num_spindles() const { return static_cast<int>(spindles_.size()); }
  SimDevice& spindle(int i) { return *spindles_[i]; }

  // Attaches aggregate traffic recording across all spindles.
  void AttachTraffic(TimeSeries* read_bytes, TimeSeries* write_bytes);

  // Aggregate counters across spindles.
  int64_t TotalRequests(IoOp op) const;
  int64_t TotalBytes(IoOp op) const;
  Time TotalBusyTime() const;

  // The synthesizer is installed on every spindle's backing store, keyed by
  // the *logical* page id (callers think in logical pages).
  void SetSynthesizer(MemDevice::Synthesizer s);

  // Crash simulation (src/fault/crash_harness): per-spindle materialized
  // page maps — the exact bytes a power cut at this instant leaves on the
  // platters. Restoring onto a fresh array of the same geometry rebuilds
  // that durable state; the synthesizer still covers never-written pages.
  struct Content {
    std::vector<std::unordered_map<uint64_t, std::vector<uint8_t>>> spindles;
  };
  Content SnapshotContent() const;
  void RestoreContent(const Content& content);

 private:
  struct Mapping {
    int spindle;
    uint64_t local_page;
  };
  Mapping Map(uint64_t logical_page) const;

  // Runs `fn(spindle, local_first, count, data_offset_pages)` for each
  // maximal per-spindle contiguous run of [first, first+n).
  template <typename Fn>
  void ForEachRun(uint64_t first, uint32_t n, Fn&& fn) const;

  const uint64_t num_pages_;
  const uint32_t page_bytes_;
  const uint32_t stripe_pages_;
  std::vector<std::unique_ptr<SimDevice>> spindles_;
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_STRIPED_ARRAY_H_
