#ifndef TURBOBP_STORAGE_IO_CONTEXT_H_
#define TURBOBP_STORAGE_IO_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/types.h"

namespace turbobp {

class SimExecutor;

// Per-client execution context threaded through every storage operation.
//
// `now` is the client's virtual clock: blocking operations (buffer-pool miss
// reads, commit log forces) advance it to the operation's completion time;
// asynchronous operations (eviction write-back, lazy cleaning) consume
// device time but leave the client clock alone.
//
// `charge == false` puts the context in loader mode: data moves, but no
// device time is consumed and the clock never advances. The workload
// populators use this to build multi-gigabyte databases instantly.
struct IoContext {
  Time now = 0;
  bool charge = true;
  SimExecutor* executor = nullptr;  // for scheduling async completions

  // Real-thread mode (executor == nullptr): when > 0, Wait() additionally
  // sleeps the OS thread for (completion - now) * real_sleep_scale of wall
  // time, so modelled device latency manifests as real latency and thread
  // scale-out measures genuine overlap. Deltas below real_sleep_min_us are
  // skipped — an OS sleep costs ~50us of scheduler quantum anyway, and
  // sub-quantum sleeps would only add noise. 0 (the default) preserves the
  // pure virtual-time semantics everywhere else.
  double real_sleep_scale = 0.0;
  int64_t real_sleep_min_us = 50;

  // Wall anchor for real-thread mode: virtual time `wall_base` corresponds
  // to steady-clock instant `wall_epoch`. When set, Wait() only sleeps the
  // portion of a modelled completion that wall time has not already covered
  // — without it, real blocking that does not advance `now` (parking on the
  // group-commit condvar, queueing on an OS mutex) would be re-paid as
  // modelled sleep on the next Wait(), double-charging every commit.
  bool wall_anchored = false;
  Time wall_base = 0;
  std::chrono::steady_clock::time_point wall_epoch{};

  Time WallNow() const {
    return wall_base +
           static_cast<Time>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - wall_epoch)
                   .count());
  }

  // Per-context I/O accounting (reset by the driver per measurement window).
  int64_t bp_hits = 0;
  int64_t bp_misses = 0;
  int64_t ssd_hits = 0;
  int64_t disk_reads = 0;
  Time latch_wait = 0;  // time spent waiting on page latches (TAC ablation)

  // Blocks the client until `completion`.
  void Wait(Time completion) {
    if (!charge || completion <= now) return;
    Time delta = completion - now;
    now = completion;
    if (executor == nullptr && real_sleep_scale > 0) {
      if (wall_anchored) {
        // Only the part of the modelled completion still in the wall future
        // costs a sleep; time already burned blocking for real (condvar
        // parks, mutex queues) is not re-paid.
        const Time wall = WallNow();
        if (completion <= wall) return;
        delta = completion - wall;
      }
      if (delta >= real_sleep_min_us) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int64_t>(static_cast<double>(delta) *
                                 real_sleep_scale)));
      }
    }
  }
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_IO_CONTEXT_H_
