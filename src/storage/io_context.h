#ifndef TURBOBP_STORAGE_IO_CONTEXT_H_
#define TURBOBP_STORAGE_IO_CONTEXT_H_

#include <cstdint>

#include "common/types.h"

namespace turbobp {

class SimExecutor;

// Per-client execution context threaded through every storage operation.
//
// `now` is the client's virtual clock: blocking operations (buffer-pool miss
// reads, commit log forces) advance it to the operation's completion time;
// asynchronous operations (eviction write-back, lazy cleaning) consume
// device time but leave the client clock alone.
//
// `charge == false` puts the context in loader mode: data moves, but no
// device time is consumed and the clock never advances. The workload
// populators use this to build multi-gigabyte databases instantly.
struct IoContext {
  Time now = 0;
  bool charge = true;
  SimExecutor* executor = nullptr;  // for scheduling async completions

  // Per-context I/O accounting (reset by the driver per measurement window).
  int64_t bp_hits = 0;
  int64_t bp_misses = 0;
  int64_t ssd_hits = 0;
  int64_t disk_reads = 0;
  Time latch_wait = 0;  // time spent waiting on page latches (TAC ablation)

  // Blocks the client until `completion`.
  void Wait(Time completion) {
    if (charge && completion > now) now = completion;
  }
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_IO_CONTEXT_H_
