#ifndef TURBOBP_STORAGE_READ_AHEAD_H_
#define TURBOBP_STORAGE_READ_AHEAD_H_

#include <cstdint>

#include "common/types.h"

namespace turbobp {

// Read-ahead–based access classification (Section 2.2).
//
// The paper's admission policy caches only pages fetched via *random* I/O.
// It identifies sequential pages by piggybacking on the DBMS read-ahead
// mechanism: a scan operator fetches its first few pages individually (the
// read-ahead has not triggered yet, so those arrive marked kRandom), and
// once `trigger_pages` consecutive pages have been seen, it switches to
// multi-page read-ahead batches marked kSequential. That warm-up is why the
// classifier is ~82% accurate on a pure sequential scan rather than 100%.
class ReadAheadTracker {
 public:
  explicit ReadAheadTracker(uint32_t trigger_pages = 4,
                            uint32_t window_pages = 64)
      : trigger_(trigger_pages), window_(window_pages) {}

  // Records a page request from this scan stream; returns true once the
  // stream has proven sequential and read-ahead should take over.
  bool OnRequest(PageId pid) {
    if (pid == last_ + 1) {
      ++run_;
    } else {
      run_ = 1;
    }
    last_ = pid;
    return run_ >= trigger_;
  }

  uint32_t window_pages() const { return window_; }
  void Reset() {
    last_ = kInvalidPageId;
    run_ = 0;
  }

 private:
  uint32_t trigger_;
  uint32_t window_;
  PageId last_ = kInvalidPageId;
  uint32_t run_ = 0;
};

// The alternative classifier of Narayanan et al. [29] that the paper
// compares against (and measures at only ~51% accuracy under concurrency):
// a request is "sequential" if it lies within `window` pages of the
// preceding request on the device, over the *global* interleaved stream.
class ProximityClassifier {
 public:
  explicit ProximityClassifier(int64_t window_pages = 64)
      : window_(window_pages) {}

  AccessKind Classify(PageId pid) {
    AccessKind kind = AccessKind::kRandom;
    if (last_ != kInvalidPageId) {
      const int64_t delta =
          static_cast<int64_t>(pid) - static_cast<int64_t>(last_);
      if (delta >= -window_ && delta <= window_) {
        kind = AccessKind::kSequential;
      }
    }
    last_ = pid;
    return kind;
  }

  void Reset() { last_ = kInvalidPageId; }

 private:
  int64_t window_;
  PageId last_ = kInvalidPageId;
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_READ_AHEAD_H_
