#ifndef TURBOBP_STORAGE_SIM_DEVICE_H_
#define TURBOBP_STORAGE_SIM_DEVICE_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/device_model.h"
#include "storage/mem_device.h"
#include "storage/storage_device.h"

namespace turbobp {

// A storage device with simulated service times: an in-memory page store
// (lazily materialized) combined with a calibrated DeviceModel and a FIFO
// DeviceTimeline. One SimDevice models one spindle or one SSD.
//
// Thread-safe for concurrent Read/Write/QueueLength (real-thread driver
// mode): the store is internally latched and a device-class latch serializes
// timeline bookings. timeline()/store() direct access and crash
// snapshot/restore remain single-threaded operations (setup, harness).
class SimDevice : public StorageDevice {
 public:
  SimDevice(uint64_t num_pages, uint32_t page_bytes,
            std::unique_ptr<DeviceModel> model);

  uint64_t num_pages() const override { return store_.num_pages(); }
  uint32_t page_bytes() const override { return store_.page_bytes(); }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override;
  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override;

  int QueueLength(Time now) override {
    TrackedLockGuard lock(mu_);
    return timeline_.QueueLength(now);
  }
  Time EstimateReadTime(AccessKind kind) const override {
    return model_->EstimateReadTime(kind);
  }

  MemDevice& store() { return store_; }
  // Setup/teardown path (traffic attachment, bench inspection): callers run
  // before client threads start or after they join.
  DeviceTimeline& timeline() TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return timeline_;
  }

  // Crash simulation (src/fault/crash_harness): snapshot/restore of the
  // materialized medium content. The persistent SSD cache depends on this
  // covering the *whole* device — frame area plus the metadata-journal
  // region carved out at the tail — so a restored device replays exactly
  // what a power cut left behind.
  std::unordered_map<uint64_t, std::vector<uint8_t>> SnapshotContent() const {
    return store_.SnapshotContent();
  }
  void RestoreContent(
      std::unordered_map<uint64_t, std::vector<uint8_t>> pages) {
    store_.RestoreContent(std::move(pages));
  }

 private:
  MemDevice store_;
  std::unique_ptr<DeviceModel> model_;
  // Innermost latch (kDevice, same rank as the store's own): taken only
  // around timeline bookings, never while the store latch is held.
  mutable TrackedMutex<LatchClass::kDevice> mu_;
  DeviceTimeline timeline_ TURBOBP_GUARDED_BY(mu_);
};

}  // namespace turbobp

#endif  // TURBOBP_STORAGE_SIM_DEVICE_H_
