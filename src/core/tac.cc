#include "core/tac.h"

#include <algorithm>

#include "common/status.h"
#include "fault/crash_point.h"

namespace turbobp {

namespace {
// Gap between a disk read finishing and TAC's admission write grabbing the
// page latch. SQL Server's asynchronous I/O leaves such a window; if a
// transaction dirties the page first, the admission is abandoned
// (Section 4.2's explanation of why DW beats TAC on TPC-C).
constexpr Time kAdmissionDelay = Micros(200);
}  // namespace

TacCache::TacCache(StorageDevice* ssd_device, DiskManager* disk,
                   const SsdCacheOptions& options, SimExecutor* executor,
                   uint64_t db_pages, int extent_pages)
    : SsdCacheBase(ssd_device, disk, options, executor),
      extent_pages_(extent_pages) {
  TURBOBP_CHECK(extent_pages > 0);
  const uint64_t extents = db_pages / static_cast<uint64_t>(extent_pages) + 1;
  temperatures_ = std::make_unique<std::atomic<double>[]>(extents);
}

double TacCache::HeapKey(const Partition& part, int32_t rec) const {
  return part.table.record(rec).key_snapshot;
}

void TacCache::OnBufferPoolMiss(PageId pid, AccessKind kind, IoContext& ctx) {
  // Temperature accrual: milliseconds saved by an SSD read vs. a disk read.
  const Time disk_us = disk_->EstimateReadTime(kind);
  const Time ssd_us = ssd_device_->EstimateReadTime(kind);
  const double saved_ms =
      std::max<double>(0.0, static_cast<double>(disk_us - ssd_us) / 1000.0);
  std::atomic<double>& t =
      temperatures_[pid / static_cast<PageId>(extent_pages_)];
  double cur = t.load(std::memory_order_relaxed);
  while (!t.compare_exchange_weak(cur, cur + saved_ms,
                                  std::memory_order_relaxed)) {
  }
}

void TacCache::OnDiskRead(PageId pid, std::span<const uint8_t> data,
                          AccessKind kind, IoContext& ctx) {
  if (!ctx.charge) return;  // loader traffic never populates the cache
  MaybeDegrade(ctx);
  if (degraded()) return;
  const double temp = ExtentTemperature(pid);
  Partition& part = PartitionFor(pid);
  {
    TrackedLockGuard lock(part.mu);
    const int32_t existing = part.table.Lookup(pid);
    if (existing != -1 &&
        part.table.record(existing).state != SsdFrameState::kInvalid) {
      return;  // already cached and valid
    }
    // Before the partition is full, all pages are admitted. Afterwards,
    // admit only if the page's extent is hotter than the coldest valid SSD
    // page (which PickVictim will then replace).
    if (part.table.used() >= part.table.capacity()) {
      const int32_t coldest = PickVictim(part);
      if (coldest == -1 ||
          temp <= part.table.record(coldest).key_snapshot) {
        return;  // not hot enough
      }
    }
  }

  if (ThrottleBlocks(ctx.now)) {
    Counters::Bump(counters_.throttled);
    return;
  }

  // Admission proceeds after a short delay (the latch-gap pathology). If
  // the page is dirtied in the meantime, the write is abandoned.
  std::vector<uint8_t> copy(data.begin(), data.end());
  const double snapshot = temp;
  uint64_t generation = 0;
  {
    TrackedLockGuard glock(latch_mu_);
    generation = ++admission_generation_;
    pending_admissions_[pid] = generation;
  }
  auto commit = [this, pid, snapshot, generation,
                 copy = std::move(copy)]() mutable {
    {
      TrackedLockGuard glock(latch_mu_);
      const auto pending = pending_admissions_.find(pid);
      if (pending == pending_admissions_.end() ||
          pending->second != generation) {
        return;  // abandoned (page dirtied) or superseded by a newer read
      }
      pending_admissions_.erase(pending);
    }
    Partition& p = PartitionFor(pid);
    {
      TrackedLockGuard lock(p.mu);
      const int32_t existing = p.table.Lookup(pid);
      if (existing != -1) return;  // raced (dirtied -> invalid, or admitted)
    }
    IoContext ctx2;
    ctx2.now = executor_ != nullptr ? executor_->now() : 0;
    ctx2.executor = executor_;
    if (AdmitPage(pid, std::span<const uint8_t>(copy), AccessKind::kRandom,
                  /*dirty=*/false, kInvalidLsn, ctx2)) {
      Partition& pp = PartitionFor(pid);
      TrackedLockGuard lock(pp.mu);
      const int32_t rec = pp.table.Lookup(pid);
      if (rec != -1) {
        SsdFrameRecord& r = pp.table.record(rec);
        r.key_snapshot = snapshot;
        pp.heap.UpdateKey(rec);
        TrackedLockGuard llock(latch_mu_);
        latch_busy_[pid] = r.ready_at;
      }
    }
  };
  if (executor_ != nullptr) {
    executor_->ScheduleAt(std::max(ctx.now + kAdmissionDelay, executor_->now()),
                          std::move(commit));
  } else {
    commit();
  }
}

void TacCache::OnPageDirtied(PageId pid) {
  // Cancel any scheduled admission write: its buffered image is now stale.
  {
    TrackedLockGuard glock(latch_mu_);
    pending_admissions_.erase(pid);
  }
  ClearLostPage(pid);  // the rewrite supersedes any lost SSD copy
  if (degraded()) return;
  Partition& part = PartitionFor(pid);
  TrackedLockGuard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) return;
  SsdFrameRecord& r = part.table.record(rec);
  if (r.state == SsdFrameState::kInvalid ||
      r.state == SsdFrameState::kQuarantined) {
    return;
  }
  // Logical invalidation (Section 2.5): mark invalid but keep the frame,
  // wasting SSD space until the page is re-written.
  r.state = SsdFrameState::kInvalid;
  part.heap.Remove(rec);
  invalid_frames_.fetch_add(1);
  // The frame must not be re-attached on a warm restart: its content is
  // about to be superseded in the buffer pool.
  NoteJournalErase(FrameOf(part, rec));
  Counters::Bump(counters_.invalidations);
}

void TacCache::OnEvictClean(PageId pid, std::span<const uint8_t> data,
                            AccessKind kind, IoContext& ctx) {
  // TAC admits on the read path, not on clean evictions.
}

EvictionOutcome TacCache::OnEvictDirty(PageId pid,
                                       std::span<const uint8_t> data,
                                       AccessKind kind, Lsn page_lsn,
                                       IoContext& ctx) {
  MaybeDegrade(ctx);
  EvictionOutcome outcome;
  outcome.write_to_disk = true;  // write-through, as in a traditional DBMS
  if (degraded()) return outcome;
  Partition& part = PartitionFor(pid);
  {
    TrackedLockGuard lock(part.mu);
    const int32_t rec = part.table.Lookup(pid);
    if (rec == -1) return outcome;  // no invalid version -> not on the SSD
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state != SsdFrameState::kInvalid) return outcome;
    if (ThrottleBlocks(ctx.now)) {
      Counters::Bump(counters_.throttled);
      return outcome;
    }
    // Re-validate with the fresh content — but only once the write succeeded
    // (a failed write leaves possibly-torn bytes; the frame stays invalid).
    const IoResult w = WriteFrame(part, rec, data, ctx);
    if (!w.ok()) return outcome;
    // The fresh content is on the SSD but the record still says kInvalid: a
    // crash in this window leaves the frame invalid (never served), which is
    // exactly the pre-write state — benign in both directions.
    TURBOBP_CRASH_POINT("tac/revalidate-write");
    r.state = SsdFrameState::kClean;
    r.Touch(ctx.now);
    // Record the content LSN (like every other clean admission): the warm
    // restart verifies a restored frame's header against it.
    r.page_lsn = page_lsn;
    r.key_snapshot = ExtentTemperature(pid);
    part.heap.InsertClean(rec);
    invalid_frames_.fetch_sub(1);
    r.ready_at = w.time;
    NoteJournalPut(FrameOf(part, rec), pid, page_lsn, /*dirty=*/false);
    outcome.cached_on_ssd = true;
    Counters::Bump(counters_.admissions);
  }
  MaintainJournal(ctx);
  return outcome;
}

int32_t TacCache::PickVictim(Partition& part) {
  int32_t coldest = part.heap.CleanRoot();
  for (int guard = 0; guard < 64 && coldest != -1; ++guard) {
    SsdFrameRecord& c = part.table.record(coldest);
    const double live = ExtentTemperature(c.page_id);
    if (live == c.key_snapshot) return coldest;
    c.key_snapshot = live;
    part.heap.UpdateKey(coldest);
    coldest = part.heap.CleanRoot();
  }
  return coldest;
}

Time TacCache::LatchBusyUntil(PageId pid, Time now) {
  TrackedLockGuard lock(latch_mu_);
  if (latch_busy_.size() > 8192) {
    for (auto it = latch_busy_.begin(); it != latch_busy_.end();) {
      it = it->second <= now ? latch_busy_.erase(it) : std::next(it);
    }
  }
  auto it = latch_busy_.find(pid);
  if (it == latch_busy_.end()) return 0;
  if (it->second <= now) {
    latch_busy_.erase(it);
    return 0;
  }
  return it->second;
}

}  // namespace turbobp
