#ifndef TURBOBP_CORE_SSD_BUFFER_TABLE_H_
#define TURBOBP_CORE_SSD_BUFFER_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace turbobp {

class InvariantAuditor;

enum class SsdFrameState : uint8_t {
  kFree = 0,
  kClean = 1,        // valid; identical to the disk copy
  kDirty = 2,        // valid; newer than the disk copy (LC only)
  kInvalid = 3,      // logically invalidated but not reclaimed (TAC only)
  kQuarantined = 4,  // frame failed a read or checksum; never reused
};

// One record of the SSD buffer table (Section 3.1): the paper stores a page
// id, a dirty bit, the last two access times (LRU-2), a latch and linkage
// pointers in an 88-byte record; this struct is the same shape (the latch
// lives at partition granularity, Section 3.3.4).
struct SsdFrameRecord {
  PageId page_id = kInvalidPageId;
  Lsn page_lsn = kInvalidLsn;        // LSN carried by a dirty page (WAL/ckpt)
  Time access[2] = {0, 0};           // [0]=last, [1]=penultimate access
  Time ready_at = 0;                 // SSD write completion; readable after
  int32_t hash_next = -1;            // intra-bucket chain
  int32_t free_next = -1;            // SSD free list chain
  int32_t heap_pos = -1;             // slot in the SSD heap array, -1 if none
  SsdFrameState state = SsdFrameState::kFree;
  AccessKind kind = AccessKind::kRandom;
  // Heap-ordering key as of the last sift. The LRU-2 designs keep this in
  // sync with Lru2Key(); TAC stores the extent-temperature snapshot here
  // (temperatures rise between sifts, so the victim loop re-validates).
  double key_snapshot = 0.0;

  // LRU-2 ordering key: backward-2 distance, i.e. the penultimate access
  // time (0 until the page has been touched twice, making once-touched
  // pages the first replacement victims, per O'Neil et al.).
  Time Lru2Key() const { return access[1]; }

  void Touch(Time now) {
    access[1] = access[0];
    access[0] = now;
  }
};

// The SSD buffer table, hash table and free list of Figure 4 for one
// partition: `capacity` records, a chained hash index over page ids, and an
// intrusive free list threaded through the records.
class SsdBufferTable {
 public:
  explicit SsdBufferTable(int32_t capacity);

  int32_t capacity() const { return static_cast<int32_t>(records_.size()); }
  int32_t used() const { return used_; }

  SsdFrameRecord& record(int32_t i) { return records_[i]; }
  const SsdFrameRecord& record(int32_t i) const { return records_[i]; }

  // Returns the record index holding `pid`, or -1.
  int32_t Lookup(PageId pid) const;

  // Links `rec` (whose page_id must be set) into the hash table.
  void InsertHash(int32_t rec);

  // Unlinks `rec` from the hash table.
  void RemoveHash(int32_t rec);

  // Pops a free record, or returns -1 when the partition is full.
  int32_t PopFree();

  // Resets `rec` and returns it to the free list.
  void PushFree(int32_t rec);

 private:
  friend class InvariantAuditor;  // walks buckets/free list read-only

  size_t BucketOf(PageId pid) const;

  std::vector<SsdFrameRecord> records_;
  std::vector<int32_t> buckets_;
  int32_t free_head_ = -1;
  int32_t used_ = 0;
  uint64_t bucket_mask_ = 0;
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_BUFFER_TABLE_H_
