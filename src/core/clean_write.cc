#include "core/clean_write.h"

// CleanWriteCache is header-only behaviour layered on SsdCacheBase; this
// translation unit anchors the vtable.
namespace turbobp {}  // namespace turbobp
