#ifndef TURBOBP_CORE_LAZY_CLEANING_H_
#define TURBOBP_CORE_LAZY_CLEANING_H_

#include <vector>

#include "core/ssd_cache_base.h"
#include "sim/sim_executor.h"

namespace turbobp {

// The lazy-cleaning (LC) design of Section 2.3.3: dirty pages evicted from
// the memory buffer pool are written *only* to the SSD (a write-back
// cache), and a background lazy-cleaning thread copies dirty SSD pages to
// the database on disk later. LC wins on update-intensive, highly skewed
// workloads (TPC-C: up to 9.4x over noSSD, 6.8x over TAC) because hot dirty
// pages are re-read and re-dirtied many times on the SSD before ever paying
// a disk write.
//
// The cleaner wakes when the dirty fraction of the SSD exceeds lambda and
// cleans until slightly below it (Section 2.3.3), gathering up to alpha
// dirty pages with consecutive disk addresses per disk write (group
// cleaning, Section 3.3.5). Since pages cannot move device-to-device
// directly, each cleaned page is read from the SSD into memory first.
//
// Checkpoint integration (Section 3.2): a sharp checkpoint must also flush
// every dirty SSD page to disk, and LC stops caching new dirty pages while
// a checkpoint is in progress.
class LazyCleaningCache : public SsdCacheBase {
 public:
  LazyCleaningCache(StorageDevice* ssd_device, DiskManager* disk,
                    const SsdCacheOptions& options, SimExecutor* executor);

  SsdDesign design() const override { return SsdDesign::kLazyCleaning; }

  EvictionOutcome OnEvictDirty(PageId pid, std::span<const uint8_t> data,
                               AccessKind kind, Lsn page_lsn,
                               IoContext& ctx) override;

  void OnCheckpointBegin() override {
    in_checkpoint_.store(true, std::memory_order_release);
  }
  void OnCheckpointEnd() override {
    in_checkpoint_.store(false, std::memory_order_release);
  }
  // Drains every dirty SSD frame to disk for the sharp checkpoint. Failure
  // is atomic from the checkpoint's point of view: a non-kOk status (device
  // errors past the bounded retry, degradation, or a dirty frame lost
  // mid-drain) means the checkpoint must not advance the recovery LSN.
  IoResult FlushAllDirty(IoContext& ctx) override;

  // Cleaner observability (Figure 7 reports the cleaner's disk IOPS).
  int64_t cleaner_wakeups() const { return cleaner_wakeups_.load(); }
  bool cleaner_running() const { return cleaner_running_.load(); }

  // Thresholds in frames.
  int64_t HighWatermark() const {
    return static_cast<int64_t>(options_.lc_dirty_fraction *
                                static_cast<double>(options_.num_frames));
  }
  int64_t LowWatermark() const {
    return std::max<int64_t>(
        0, HighWatermark() -
               static_cast<int64_t>(options_.lc_watermark_gap *
                                    static_cast<double>(options_.num_frames)));
  }

 private:
  // Starts the cleaner actor if the dirty count crossed the high watermark.
  void MaybeWakeCleaner(Time now);
  // One cleaner iteration: clean one group, then reschedule at the disk
  // write's completion (the cleaner is paced by the disk).
  void CleanerStep();
  // Cleans one group starting from the oldest dirty page; returns the disk
  // write completion time, or 0 if there was nothing to clean.
  Time CleanOneGroup(IoContext& ctx);

  // Oldest dirty page across partitions; fills part/rec. Returns false if
  // no dirty pages exist.
  bool OldestDirty(Partition** part, int32_t* rec);

  // Emergency cleaner flush (degradation, Section 2.3's safety argument):
  // LC's dirty frames hold the only current copies, so before the failing
  // partition goes silent every readable dirty frame is copied to disk;
  // unreadable ones become lost pages. Runs under the partition latch that
  // DegradePartition holds across salvage+purge+publish — the rest of the
  // cache keeps serving untouched.
  void OnPartitionDegrade(Partition& part, IoContext& ctx)
      TURBOBP_REQUIRES(part.mu) override;

  std::atomic<bool> in_checkpoint_{false};
  std::atomic<bool> cleaner_running_{false};
  std::atomic<int64_t> cleaner_wakeups_{0};
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_LAZY_CLEANING_H_
