#ifndef TURBOBP_CORE_TAC_H_
#define TURBOBP_CORE_TAC_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/ssd_cache_base.h"
#include "sim/sim_executor.h"

namespace turbobp {

// Temperature-Aware Caching (Canim et al., VLDB 2010), re-implemented as in
// Section 2.5 of the paper:
//
//   (i)   On a buffer-pool miss the temperature of the page's *extent*
//         (32 consecutive disk pages) is incremented by the milliseconds
//         saved by reading the page from the SSD instead of the disk.
//   (ii)  A page is written to the SSD immediately after it is read from
//         disk (write-through on the read path). Before the SSD is full all
//         pages are admitted; afterwards only pages whose extent is hotter
//         than the coldest valid SSD page, which is then replaced.
//   (iii) When a buffer-pool page is updated, the SSD copy is *logically*
//         invalidated: marked invalid but not evicted — which is why TAC
//         wastes SSD space under update-intensive workloads (7.4-10.4GB of
//         the 140GB SSD on TPC-C, per the paper).
//   (iv)  When a dirty page is evicted it goes to disk as usual; if an
//         invalid version sits in the SSD it is also re-written there.
//
// The immediate write after the disk read contends with forward processing
// for the page latch (the paper measured ~25% longer latch waits); modeled
// here by registering the admission write's completion as LatchBusyUntil.
class TacCache : public SsdCacheBase {
 public:
  TacCache(StorageDevice* ssd_device, DiskManager* disk,
           const SsdCacheOptions& options, SimExecutor* executor,
           uint64_t db_pages, int extent_pages = 32);

  SsdDesign design() const override { return SsdDesign::kTac; }

  void OnBufferPoolMiss(PageId pid, AccessKind kind, IoContext& ctx) override;
  void OnDiskRead(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                  IoContext& ctx) override;
  void OnPageDirtied(PageId pid) override;
  void OnEvictClean(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                    IoContext& ctx) override;
  EvictionOutcome OnEvictDirty(PageId pid, std::span<const uint8_t> data,
                               AccessKind kind, Lsn page_lsn,
                               IoContext& ctx) override;
  Time LatchBusyUntil(PageId pid, Time now) override;

  double ExtentTemperature(PageId pid) const {
    return temperatures_[pid / static_cast<PageId>(extent_pages_)].load(
        std::memory_order_relaxed);
  }
  // SSD frames wasted on logically-invalid pages (Section 2.5 ablation).
  int64_t wasted_frames() const { return invalid_frames_.load(); }

 protected:
  // TAC replaces the *coldest valid* SSD page by extent temperature, not
  // the LRU-2 victim.
  double HeapKey(const Partition& part, int32_t rec) const override;
  int32_t PickVictim(Partition& part) override;

 private:
  int extent_pages_;
  // Per-extent temperatures, accrued concurrently by every client's miss
  // path; CAS-added, read relaxed (a slightly stale read only shifts an
  // admission decision by one access, which the policy tolerates).
  std::unique_ptr<std::atomic<double>[]> temperatures_;
  // Admission writes scheduled but not yet started, keyed by a generation
  // so a delayed commit can only consume the exact pending entry it was
  // scheduled for. Dirtying the page erases the entry, permanently
  // abandoning that admission (Section 4.2): the buffered clean image is
  // stale the moment the page is modified, whether or not the page is
  // later evicted and re-read.
  std::unordered_map<PageId, uint64_t> pending_admissions_
      TURBOBP_GUARDED_BY(latch_mu_);
  uint64_t admission_generation_ TURBOBP_GUARDED_BY(latch_mu_) = 0;
  // Pending/completed admission writes: pid -> latch release time.
  std::unordered_map<PageId, Time> latch_busy_ TURBOBP_GUARDED_BY(latch_mu_);
  TrackedMutex<LatchClass::kTacLatch> latch_mu_;
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_TAC_H_
