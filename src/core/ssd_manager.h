#ifndef TURBOBP_CORE_SSD_MANAGER_H_
#define TURBOBP_CORE_SSD_MANAGER_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

// What the SSD manager has (or knows) about a page, for the multi-page I/O
// trimming optimization (Section 3.3.3) and the read path.
enum class SsdProbe : uint8_t {
  kAbsent = 0,     // no usable copy on the SSD
  kCleanCopy = 1,  // SSD copy identical to the disk copy
  kNewerCopy = 2,  // SSD copy newer than the disk copy (LC only)
};

// What the buffer pool must still do with an evicted dirty page after the
// SSD manager has taken its share of the work.
struct EvictionOutcome {
  bool write_to_disk = true;    // false only when LC absorbed the page
  bool cached_on_ssd = false;   // page was admitted to the SSD
};

struct SsdManagerStats {
  // Probe classifications: hits + probe_misses >= ops holds in EVERY
  // snapshot, including one taken mid-probe from another thread (equality
  // at quiescence). A naive field-by-field relaxed copy can tear and break
  // it; SsdCacheBase::stats() orders and retries its reads to keep it.
  int64_t ops = 0;
  int64_t hits = 0;             // pages served from the SSD
  int64_t hits_dirty = 0;       // ... of which were dirty SSD pages (LC)
  int64_t probe_misses = 0;     // lookups that found nothing usable
  int64_t admissions = 0;       // pages written into the SSD cache
  int64_t evictions = 0;        // pages replaced
  int64_t throttled = 0;        // operations skipped by throttle control
  int64_t rejected_sequential = 0;  // admissions denied by the policy
  int64_t cleaner_disk_writes = 0;  // LC: pages copied SSD -> disk
  int64_t cleaner_io_requests = 0;  // LC: disk write requests issued
  int64_t invalidations = 0;
  int64_t used_frames = 0;
  int64_t dirty_frames = 0;
  int64_t invalid_frames = 0;   // TAC: logically invalidated, space wasted
  int64_t capacity_frames = 0;
  // Fault handling (src/fault): device failures seen and survived.
  int64_t device_read_errors = 0;   // failed SSD read attempts
  int64_t device_write_errors = 0;  // failed SSD write attempts
  int64_t read_retries = 0;         // extra attempts after transient errors
  int64_t frame_corruptions = 0;    // checksum/page-id mismatches on frames
  int64_t quarantined_frames = 0;   // frames taken out of service
  int64_t lost_pages = 0;           // dirty pages whose only copy is gone
  int64_t emergency_cleaned = 0;    // LC: dirty frames salvaged at degrade
  int64_t checkpoint_flush_failures = 0;  // FlushAllDirty calls that failed
  bool degraded = false;            // ALL partitions (or the cache) passed-through
  // Self-healing (per-partition degradation + background scrub).
  int64_t partitions_degraded = 0;  // partitions that entered pass-through
  int64_t partitions_recovered = 0; // partitions re-enabled after healing
  int64_t scrub_frames_verified = 0;  // patrol reads that verified clean
  int64_t scrub_frames_repaired = 0;  // corrupt frames re-seeded from disk
  int64_t io_timeouts = 0;          // reads that blew their deadline
  int64_t hedged_reads = 0;         // reads completed from disk via hedging
  // Persistent-cache metadata journal (persistent_ssd_cache mode only).
  int64_t journal_records_appended = 0;
  int64_t journal_pages_written = 0;
  int64_t journal_compactions = 0;
  int64_t journal_write_errors = 0;
};

// Outcome of a persistent-cache warm restart (RecoverPersistentState).
struct PersistentRestoreStats {
  bool journal_valid = false;   // a usable journal epoch was found
  uint64_t journal_epoch = 0;
  bool journal_torn = false;    // append tail truncated at a CRC-torn page
  bool journal_stale = false;   // fell back to an older epoch
  bool scan_fallback = false;   // lazy frame scan ran (journal incomplete)
  size_t entries_recovered = 0;   // journal entries considered
  size_t restored = 0;            // frames re-attached to the cache
  size_t dropped_beyond_horizon = 0;  // LSN > WAL durable horizon: dropped
  size_t dropped_verification = 0;    // header/checksum mismatch: dropped
  size_t reseeded = 0;            // superseded dirty images copied to disk
  // Redo must start no later than this to roll re-attached dirty frames'
  // disk copies forward (kInvalidLsn when no dirty frame was restored).
  Lsn min_dirty_lsn = kInvalidLsn;
};

// The SSD manager of Figure 1: the component this paper contributes.
//
// It sits between the buffer manager and the disk manager and decides, page
// by page and at run time, which pages evicted from (or read into) the
// main-memory buffer pool are worth caching on the SSD. Concrete
// subclasses implement the clean-write (CW), dual-write (DW), lazy-cleaning
// (LC) designs of Section 2.3 and the TAC baseline of Canim et al.; a
// NoSsdManager stub gives the unmodified-DBMS baseline.
class SsdManager {
 public:
  virtual ~SsdManager() = default;

  virtual SsdDesign design() const = 0;
  std::string name() const { return ToString(design()); }

  // --- read path -----------------------------------------------------------

  // Non-destructive probe: is `pid` on the SSD, and is the copy newer than
  // the disk version? Must not charge any I/O time.
  virtual SsdProbe Probe(PageId pid) const = 0;

  // Attempts to serve `pid` from the SSD. On success fills `out`, charges
  // the SSD read to ctx (blocking), updates replacement state and returns
  // true. Honors throttle control: may refuse when the SSD queue is long,
  // unless the SSD copy is newer than disk (then it must serve the read for
  // correctness, Section 3.3.2).
  //
  // Returns false on any miss or refusal; the caller then reads from disk.
  // If `error` is non-null it distinguishes the one unservable case: the
  // SSD held the *only* current copy (a dirty LC frame) and that copy is
  // unreadable — disk fallback would silently serve stale data, so the
  // caller must surface `*error` instead.
  virtual bool TryReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx,
                           Status* error = nullptr) = 0;

  // --- notifications from the buffer manager --------------------------------

  // A buffer-pool lookup missed (before the SSD/disk is consulted). TAC
  // accrues extent temperature here.
  virtual void OnBufferPoolMiss(PageId pid, AccessKind kind, IoContext& ctx) {}

  // A page was just read from *disk* into the buffer pool. TAC admits here
  // (write-through immediately after the disk read); the paper's designs
  // only admit on eviction.
  virtual void OnDiskRead(PageId pid, std::span<const uint8_t> data,
                          AccessKind kind, IoContext& ctx) {}

  // A clean page in the buffer pool is about to be modified; any SSD copy
  // must be invalidated (physically for CW/DW/LC, logically for TAC).
  virtual void OnPageDirtied(PageId pid) = 0;

  // A *clean* page is being evicted from the buffer pool.
  virtual void OnEvictClean(PageId pid, std::span<const uint8_t> data,
                            AccessKind kind, IoContext& ctx) = 0;

  // A *dirty* page is being evicted. The WAL rule has already been enforced
  // by the buffer pool (log flushed through `page_lsn`). Returns what the
  // buffer pool must still do.
  virtual EvictionOutcome OnEvictDirty(PageId pid,
                                       std::span<const uint8_t> data,
                                       AccessKind kind, Lsn page_lsn,
                                       IoContext& ctx) = 0;

  // --- checkpoint integration (Section 3.2) ---------------------------------

  virtual void OnCheckpointBegin() {}
  virtual void OnCheckpointEnd() {}

  // A dirty page is being flushed by a checkpoint (not evicted). DW also
  // writes checkpointed random pages to the SSD to fill it with useful data.
  virtual void OnCheckpointWrite(PageId pid, std::span<const uint8_t> data,
                                 AccessKind kind, Lsn page_lsn,
                                 IoContext& ctx) {}

  // Flushes every dirty SSD page to disk (LC; no-op elsewhere). Returns the
  // completion time of the last disk write plus an error channel: a
  // non-kOk status means dirty pages remain (the device failed past the
  // bounded retry, or a dirty frame's only copy was lost mid-flush). The
  // caller — the sharp checkpoint — must then NOT advance the recovery LSN:
  // redo from the previous checkpoint is what heals the stranded pages.
  virtual IoResult FlushAllDirty(IoContext& ctx) {
    return IoResult{ctx.now, Status::Ok()};
  }

  // --- restart extension (the paper's Section 6 future work) ----------------

  // Snapshot of the SSD buffer table for inclusion in a checkpoint record:
  // with it, a checkpoint need not drain the SSD's dirty pages, and a
  // restart can re-attach the (persistent) SSD contents instead of warming
  // a cold cache. Entries are verified against the device at restore time,
  // so frames recycled after the snapshot are simply dropped.
  struct CheckpointEntry {
    PageId page_id = kInvalidPageId;
    uint64_t frame = 0;  // device frame holding the copy
    bool dirty = false;
    Lsn page_lsn = kInvalidLsn;
  };
  virtual std::vector<CheckpointEntry> SnapshotForCheckpoint() const {
    return {};
  }
  // Re-attaches snapshot entries whose device frames still hold the claimed
  // page (header id + checksum + LSN verified) — "using the contents of
  // the SSD during the recovery task" (Section 4.1.2). Returns entries
  // restored into the cache.
  //
  // `max_update_lsn` (per-page highest durable update LSN) splits verified
  // entries three ways:
  //   * not superseded            -> restored into the cache (dirty stays
  //     dirty; the cleaner resumes), covered through its LSN;
  //   * superseded + dirty        -> its content is copied to the disk once
  //     (seeding the redo base), covered through its LSN, not cached;
  //   * superseded + clean        -> the disk already has it; covered only.
  // `covered_lsn` receives, per page, the LSN up to which redo may skip
  // update records entirely.
  virtual size_t RestoreFromCheckpoint(
      const std::vector<CheckpointEntry>& entries, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr) {
    return 0;
  }

  // --- persistent SSD cache (persistent_ssd_cache mode) ---------------------

  // Warm restart over a surviving SSD device: recovers the metadata journal,
  // verifies each claimed mapping against the frame's self-identifying page
  // header, reconciles against the WAL durable `horizon` (no frame whose LSN
  // exceeds it is ever re-attached) and re-attaches the survivors. Falls
  // back to a lazy scan of the frame area when the journal is torn, stale
  // or absent. Returns false when the manager does not support (or was not
  // configured for) persistence.
  virtual bool RecoverPersistentState(
      Lsn horizon, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr,
      PersistentRestoreStats* out = nullptr) {
    return false;
  }

  // --- misc ------------------------------------------------------------------

  // If the page's frame latch is held by a pending SSD admission write (the
  // TAC latch-contention pathology, Section 2.5), returns the virtual time
  // the latch frees; otherwise returns 0.
  virtual Time LatchBusyUntil(PageId pid, Time now) { return 0; }

  virtual SsdManagerStats stats() const { return {}; }

  // True once the manager has given up on the SSD and behaves like
  // NoSsdManager (graceful degradation after repeated device errors).
  virtual bool degraded() const { return false; }

  // Stops self-rescheduling background actors (the patrol scrubber) so a
  // drain to executor idle terminates — the SSD-manager analogue of
  // CheckpointManager::StopPeriodic(). Idempotent; no-op by default.
  virtual void StopBackground() {}
};

// Baseline: the stock buffer manager with no SSD.
class NoSsdManager : public SsdManager {
 public:
  SsdDesign design() const override { return SsdDesign::kNoSsd; }
  SsdProbe Probe(PageId pid) const override { return SsdProbe::kAbsent; }
  bool TryReadPage(PageId, std::span<uint8_t>, IoContext&,
                   Status* = nullptr) override {
    return false;
  }
  void OnPageDirtied(PageId) override {}
  void OnEvictClean(PageId, std::span<const uint8_t>, AccessKind,
                    IoContext&) override {}
  EvictionOutcome OnEvictDirty(PageId, std::span<const uint8_t>, AccessKind,
                               Lsn, IoContext&) override {
    return EvictionOutcome{/*write_to_disk=*/true, /*cached_on_ssd=*/false};
  }
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_MANAGER_H_
