#ifndef TURBOBP_CORE_DUAL_WRITE_H_
#define TURBOBP_CORE_DUAL_WRITE_H_

#include "core/ssd_cache_base.h"

namespace turbobp {

// The dual-write (DW) design of Section 2.3.2: a dirty page evicted from
// the memory buffer pool is written both to the SSD and to the database on
// disk — a write-through cache for dirty pages. The SSD copy therefore
// stays identical to the disk copy (barring a crash between the two writes)
// and checkpoint/recovery logic is unchanged.
//
// During a checkpoint DW additionally writes flushed dirty pages that are
// marked "random" to the SSD (Section 3.2), which fills the SSD with useful
// data faster.
class DualWriteCache : public SsdCacheBase {
 public:
  using SsdCacheBase::SsdCacheBase;

  SsdDesign design() const override { return SsdDesign::kDualWrite; }

  EvictionOutcome OnEvictDirty(PageId pid, std::span<const uint8_t> data,
                               AccessKind kind, Lsn page_lsn,
                               IoContext& ctx) override;

  void OnCheckpointWrite(PageId pid, std::span<const uint8_t> data,
                         AccessKind kind, Lsn page_lsn,
                         IoContext& ctx) override;
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_DUAL_WRITE_H_
