#ifndef TURBOBP_CORE_SSD_CACHE_BASE_H_
#define TURBOBP_CORE_SSD_CACHE_BASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/ssd_buffer_table.h"
#include "core/ssd_heap.h"
#include "core/ssd_manager.h"
#include "core/ssd_metadata_journal.h"
#include "debug/latch_order_checker.h"
#include "storage/disk_manager.h"
#include "storage/storage_device.h"

namespace turbobp {

class AsyncIoEngine;
class SimExecutor;
class InvariantAuditor;
struct AuditAccess;

// Tuning parameters of Table 2, plus the fault-tolerance policy knobs.
struct SsdCacheOptions {
  int64_t num_frames = 18350080;     // S: SSD buffer pool size in frames
  int num_partitions = 16;           // N: one per hardware context (3.3.4)
  double aggressive_fill = 0.95;     // tau: admit everything below this fill
  int throttle_queue_limit = 100;    // mu: skip SSD I/O beyond this queue
  double lc_dirty_fraction = 0.5;    // lambda: LC cleaner high watermark
  int lc_group_pages = 32;           // alpha: max pages per cleaner write
  double lc_watermark_gap = 0.0001;  // clean to ~0.01% of S below lambda
  // Fault tolerance (src/fault): transient SSD errors and checksum
  // mismatches are retried up to io_retry_limit attempts with
  // io_retry_backoff of virtual time between them. Device errors charge a
  // time-decayed per-partition budget: once a partition accumulates
  // degrade_error_limit errors inside one error_window, that partition
  // (alone) flips to pass-through — the rest of the cache keeps serving.
  int io_retry_limit = 3;
  Time io_retry_backoff = Micros(500);
  int64_t degrade_error_limit = 8;
  Time error_window = Seconds(10);
  // Self-healing (scrub & re-admission). A degraded partition is probed
  // with canary writes once it has been error-free for quiet_window; it is
  // re-enabled only while its window budget is at or below
  // recover_error_limit (hysteresis: recover threshold << degrade
  // threshold). self_healing=false restores the old terminal cliff: the
  // first partition degradation takes the whole cache down for good
  // (bench_chaos_degrade's A/B baseline).
  bool self_healing = true;
  int64_t recover_error_limit = 1;
  Time quiet_window = Seconds(5);
  // Patrol scrubber: ScrubTick verifies up to scrub_frames_per_tick frames
  // per call. scrub_interval > 0 additionally self-schedules ticks on the
  // executor (0 leaves the scrubber caller-driven: tests, chaos soak).
  Time scrub_interval = 0;
  int scrub_frames_per_tick = 64;
  // Read deadlines and hedging: an SSD frame read whose device *service*
  // time (completion minus IoResult::service_start — queue wait excluded,
  // so congestion on a busy cache is never booked as sickness) exceeds
  // read_deadline counts as an io_timeout toward the partition's error
  // budget; for clean frames (disk holds an identical copy) the read is
  // hedged to disk at the deadline instead of waiting out the stall.
  // 0 disables deadlines.
  Time read_deadline = 0;
  bool hedge_reads = true;
  // Persistent SSD cache: journal the buffer table to a metadata region at
  // the tail of the SSD device (past the frame area), so cache contents
  // survive a restart. The device must provide num_frames +
  // SsdMetadataJournal::RegionPagesFor(num_frames, page_bytes) pages.
  bool persistent_cache = false;
  // Optional async engine over the DISK array (not the SSD). When set, LC's
  // group cleaning and checkpoint drain submit per-page disk writes through
  // it — the engine coalesces contiguous runs and owns the bounded
  // per-request retry, so one flaky page never re-writes its group
  // neighbours. Null keeps the serial DiskManager::WritePages path.
  AsyncIoEngine* disk_io_engine = nullptr;
};

// Common machinery shared by the CW/DW/LC designs and TAC: the partitioned
// buffer table / hash table / free list / split heap of Section 3.1, the
// admission policy of Section 2.2 (random-only plus aggressive filling,
// Section 3.3.1), throttle control (Section 3.3.2) and the SSD read/write
// paths. Concrete designs supply the eviction-time behaviour.
class SsdCacheBase : public SsdManager {
 public:
  SsdCacheBase(StorageDevice* ssd_device, DiskManager* disk,
               const SsdCacheOptions& options, SimExecutor* executor);

  // --- SsdManager parts common to all designs -------------------------------

  SsdProbe Probe(PageId pid) const override;
  bool TryReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx,
                   Status* error = nullptr) override;
  void OnPageDirtied(PageId pid) override;
  void OnEvictClean(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                    IoContext& ctx) override;
  SsdManagerStats stats() const override;

  // Restart extension (Section 6 future work): the SSD buffer table can be
  // snapshotted into a checkpoint record and re-attached after a restart.
  std::vector<CheckpointEntry> SnapshotForCheckpoint() const override;
  size_t RestoreFromCheckpoint(
      const std::vector<CheckpointEntry>& entries, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr) override;

  // Persistent cache (options().persistent_cache): warm restart from the
  // metadata journal + frame headers, reconciled against the WAL durable
  // horizon. See RecoverPersistentState in SsdManager for the contract.
  bool RecoverPersistentState(
      Lsn horizon, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr,
      PersistentRestoreStats* out = nullptr) override;

  // Checkpoint hook shared by every design: force-flushes the staged
  // journal records so the on-device journal catches up at least once per
  // checkpoint. LC chains to this from its dirty-frame drain.
  IoResult FlushAllDirty(IoContext& ctx) override;

  // The metadata journal, when persistent_cache is on (tests/harness).
  SsdMetadataJournal* journal() { return journal_.get(); }

  const SsdCacheOptions& options() const { return options_; }
  int64_t used_frames() const { return used_frames_.load(); }
  int64_t dirty_frames() const { return dirty_frames_.load(); }
  int64_t quarantined_frames() const { return quarantined_frames_.load(); }

  // --- graceful degradation (survive a flaky or dying SSD) ------------------

  // True once the whole cache behaves like NoSsdManager: either the global
  // kill switch fired (Degrade / self_healing=false) or every partition is
  // independently degraded.
  bool degraded() const override {
    return degraded_.load(std::memory_order_acquire) ||
           degraded_partitions_.load(std::memory_order_acquire) >=
               static_cast<int>(partitions_.size());
  }

  // Forces whole-cache degradation now (tests/operator action); normally
  // degradation is per-partition, triggered by the partition's error budget.
  void Degrade(IoContext& ctx) { EnterDegradedMode(ctx); }

  // --- self-healing (scrub, canary probes, re-admission) --------------------

  // One patrol pass: verifies up to options().scrub_frames_per_tick frames
  // (round-robin cursor across partitions), quarantines-and-repairs corrupt
  // ones from their disk copies, then probes every degraded partition with
  // a canary write and re-enables those whose error budget has recovered
  // under hysteresis. Returns the number of frames whose checksum verified.
  // Must be called without partition latches (it takes them itself).
  int ScrubTick(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  // Degrades one partition by index (tests/operator action; chaos harness).
  void DegradePartitionAt(size_t index, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  // Stops the self-scheduling scrub actor (idempotent). Driver::Run calls
  // this before draining the executor to idle; Crash() safety is handled by
  // the liveness token (a pending ScrubStep event outliving this object
  // no-ops instead of firing into freed memory).
  void StopBackground() override {
    if (scrub_alive_ != nullptr) *scrub_alive_ = false;
  }

  size_t partition_count() const { return partitions_.size(); }
  bool partition_degraded(size_t index) const {
    return partitions_[index]->degraded.load(std::memory_order_acquire);
  }
  int64_t degraded_partition_count() const {
    return degraded_partitions_.load(std::memory_order_acquire);
  }

  // Pages whose only current copy sat in a dirty SSD frame that could not
  // be salvaged. Reads of these pages fail hard (disk would be stale);
  // recovery (WAL redo) or a full page rewrite clears them.
  bool IsLostPage(PageId pid) const TURBOBP_EXCLUDES(fault_mu_);
  std::vector<PageId> LostPages() const TURBOBP_EXCLUDES(fault_mu_);

 protected:
  struct Partition {
    Partition(int32_t cap, SsdSplitHeap::KeyFn key)
        : table(cap), heap(&table, std::move(key)), capacity(cap) {}
    SsdBufferTable table TURBOBP_GUARDED_BY(mu);
    SsdSplitHeap heap TURBOBP_GUARDED_BY(mu);
    int64_t frame_base = 0;  // device page of this partition's frame 0
    int32_t capacity = 0;    // table.capacity(), readable without mu
    // Health state (self-healing v2). Plain atomics, not guarded by mu:
    // they are read on hot paths before the latch is taken, and written
    // from error paths that may or may not hold it. The races are benign —
    // an error event can land in the closing instants of a stale window.
    // Pass-through flag. Publish protocol: stored true only under mu, after
    // the partition was salvaged AND purged — a reader that observes true
    // may skip the latch and fall back to disk, so the flag must never be
    // visible while the table can still hold a newer-than-disk frame.
    std::atomic<bool> degraded{false};
    // Mutual-exclusion guard for the degrade sequence itself (the visible
    // flag above is set too late to serve as one). Re-armed by a heal.
    std::atomic<bool> degrading{false};
    std::atomic<int64_t> window_errors{0};  // errors inside current window
    std::atomic<Time> window_start{0};      // when the current window opened
    std::atomic<Time> last_error_at{0};     // quiet-window clock for canaries
    // SSD device I/O runs *under* mu by design (one partition per hardware
    // context, Section 3.3.4) — see the latch-order spec table.
    mutable TrackedMutex<LatchClass::kSsdPartition> mu;
  };

  Partition& PartitionFor(PageId pid) {
    return *partitions_[static_cast<size_t>(
        (pid * 0xD1B54A32D192ED03ull) >> 32 & 0xFFFFFFFFull) %
                        partitions_.size()];
  }
  const Partition& PartitionFor(PageId pid) const {
    return const_cast<SsdCacheBase*>(this)->PartitionFor(pid);
  }

  // The per-partition heap key; LRU-2 by default, overridden by TAC.
  virtual double HeapKey(const Partition& part, int32_t rec) const
      TURBOBP_REQUIRES(part.mu);
  // Shim for the heap's key callback: SsdSplitHeap invokes its KeyFn only
  // from operations that already run under the partition latch, but the
  // lambda capture cannot carry that proof — so the callback routes through
  // this unchecked hop instead of silencing the whole call chain.
  double HeapKeyForCallback(const Partition& part, int32_t rec) const
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return HeapKey(part, rec);
  }

  // Admission policy of Section 2.2: below the aggressive-fill threshold
  // everything is admitted; afterwards only pages whose (random) re-access
  // would be faster from the SSD than from the disk — i.e. kRandom pages.
  bool AdmissionAllows(AccessKind kind);

  // Throttle control: true when the SSD queue exceeds mu.
  bool ThrottleBlocks(Time now);

  // Inserts (or refreshes) `pid` in the cache, evicting a replacement
  // victim if needed. Returns false when no frame could be obtained (all
  // valid pages dirty, partition exhausted). Performs the asynchronous SSD
  // write when new content must land on the device.
  bool AdmitPage(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                 bool dirty, Lsn page_lsn, IoContext& ctx);

  // Quarantines `rec` while it is still on the free list (restore-time
  // corruption: the frame never entered service, so QuarantineFrameLocked's
  // used-frame bookkeeping does not apply).
  void QuarantineRestoredFrame(Partition& part, int32_t rec)
      TURBOBP_REQUIRES(part.mu);

  // Picks a replacement victim in `part` (clean-heap root by default;
  // TAC overrides with coldest-valid-temperature). Returns -1 if none.
  virtual int32_t PickVictim(Partition& part) TURBOBP_REQUIRES(part.mu);

  // Unlinks `rec` from hash and heap (it stays allocated for reuse).
  void DetachRecord(Partition& part, int32_t rec) TURBOBP_REQUIRES(part.mu);

  // Device page holding `rec` of `part`.
  uint64_t FrameOf(const Partition& part, int32_t rec) const {
    return static_cast<uint64_t>(part.frame_base + rec);
  }

  // Asynchronous single-frame SSD write with bounded retry for transients;
  // returns the completion result. On failure the frame content is suspect
  // (possibly torn) — the caller must not serve reads from it.
  IoResult WriteFrame(Partition& part, int32_t rec,
                      std::span<const uint8_t> data, IoContext& ctx)
      TURBOBP_REQUIRES(part.mu);
  // Blocking single-frame SSD read into out; advances ctx.now.
  IoResult ReadFrame(Partition& part, int32_t rec, std::span<uint8_t> out,
                     IoContext& ctx) TURBOBP_REQUIRES(part.mu);
  // ReadFrame plus verification that `out` really holds `pid` at a valid
  // checksum, retrying (re-reading) transient errors and corruptions up to
  // options().io_retry_limit attempts. kCorruption after the last attempt
  // means the frame itself is bad (candidate for quarantine). With
  // `hedge_ok` (clean frames only: the disk copy is identical) a read whose
  // device completion exceeds options().read_deadline is hedged: the page
  // is re-read from disk at the deadline instant instead of waiting out the
  // stall, and the timeout still charges the partition's error budget.
  Status ReadFrameVerified(Partition& part, int32_t rec, PageId pid,
                           std::span<uint8_t> out, IoContext& ctx,
                           bool hedge_ok = false) TURBOBP_REQUIRES(part.mu);

  // Takes `rec` out of service permanently: detached from hash and heap,
  // never returned to the free list (the flash cells are bad), state
  // kQuarantined. Partition lock must be held.
  void QuarantineFrameLocked(Partition& part, int32_t rec)
      TURBOBP_REQUIRES(part.mu);

  // Counts one device error against `part`'s time-decayed budget (errors
  // within the last options().error_window); safe under a partition lock
  // (it only touches atomics — the actual mode flip is deferred to
  // MaybeDegrade). `now` stamps the error for window decay and the
  // quiet-window clock.
  void RecordDeviceError(Partition& part, Time now);
  // Journal write failures share the medium with every partition's frames:
  // charge all budgets (matching the old cache-global accounting).
  void RecordJournalError(Time now);
  // `part`'s error budget as of `now`: 0 once the window has lapsed.
  int64_t WindowErrors(const Partition& part, Time now) const;
  // Consume the deferred error events and flip any partition whose budget
  // is blown into pass-through. Must be called WITHOUT any partition lock
  // held: DegradePartition takes the failing partition's lock for the
  // whole salvage+purge+publish sequence.
  void MaybeDegrade(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  // Whole-cache kill switch (Degrade(), self_healing=false). Takes every
  // partition through the per-partition salvage+purge+publish sequence
  // first, then raises the terminal flag: readers skip all latches once
  // they observe it, so it must not become visible while any partition
  // still holds a newer-than-disk copy. Terminal: nothing re-enables.
  void EnterDegradedMode(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  // Flips one partition into pass-through. Under ONE hold of part.mu:
  // salvage hook, then purge (every in-service frame released and
  // journal-erased — pass-through writes go to disk, so stale frames must
  // not survive to a later re-enable), and only then the part.degraded
  // store. Publishing the flag any earlier is a silent stale-read window:
  // lock-free readers would bypass the latch and serve the stale disk copy
  // while the only current copy sat in a dirty frame awaiting salvage.
  void DegradePartition(Partition& part, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  void PurgePartitionLocked(Partition& part) TURBOBP_REQUIRES(part.mu);
  // Canary-probes a degraded partition and re-enables it when the probe
  // succeeds and the error budget has recovered under hysteresis.
  void TryHealPartition(Partition& part, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  // Design-specific salvage, run by DegradePartition before the purge with
  // part.mu already held; LC overrides it to emergency-flush the failing
  // partition's dirty frames (the only current copies) to disk.
  virtual void OnPartitionDegrade(Partition& part, IoContext& ctx)
      TURBOBP_REQUIRES(part.mu) {}

  // Records that the only current copy of `pid` is gone.
  void RecordLostPage(PageId pid) TURBOBP_EXCLUDES(fault_mu_);
  // A full-page rewrite (NewPage) or redo supersedes the lost copy.
  void ClearLostPage(PageId pid) TURBOBP_EXCLUDES(fault_mu_);

  // Drops every cached page (used between benchmark runs and by tests).
  void Invalidate(PageId pid);

  // --- persistent-cache journal hooks ---------------------------------------
  // Optimistic publish-then-seal: the in-memory table mutation has already
  // happened (under the partition latch) when these stage the matching
  // journal record. No-ops when persistence is off or restore suppresses
  // journaling (latch order kSsdPartition -> kSsdJournal makes the calls
  // legal under a partition latch).
  void NoteJournalPut(uint64_t frame, PageId pid, Lsn page_lsn, bool dirty) {
    if (journal_ != nullptr && !journal_suppress_) {
      journal_->NotePut(frame, pid, page_lsn, dirty);
    }
  }
  void NoteJournalErase(uint64_t frame) {
    if (journal_ != nullptr && !journal_suppress_) {
      journal_->NoteErase(frame);
    }
  }
  // Writes staged journal records to the device when enough have gathered
  // (always, when `force`). Must be called OUTSIDE partition latches; a
  // write failure counts as a device error toward degradation.
  void MaintainJournal(IoContext& ctx, bool force = false)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  SsdCacheOptions options_;
  StorageDevice* ssd_device_;
  DiskManager* disk_;
  SimExecutor* executor_;
  std::vector<std::unique_ptr<Partition>> partitions_;

  // Persistent-cache metadata journal (null unless persistent_cache).
  // journal_suppress_ mutes the Note* hooks while a restore re-attaches
  // recovered entries (the post-restore compaction snapshots them anyway).
  std::unique_ptr<SsdMetadataJournal> journal_;
  std::atomic<bool> journal_suppress_{false};

  std::atomic<int64_t> used_frames_{0};
  std::atomic<int64_t> dirty_frames_{0};
  std::atomic<int64_t> invalid_frames_{0};
  std::atomic<int64_t> quarantined_frames_{0};

  // Degradation state. device_errors_ counts every failed SSD attempt
  // (lifetime, for stats and the cheap has-anything-changed check in
  // MaybeDegrade); degraded_ is the terminal whole-cache kill switch;
  // degraded_partitions_ mirrors the per-partition flags so degraded() and
  // the auditor need no O(partitions) scan.
  std::atomic<int64_t> device_errors_{0};
  std::atomic<int64_t> degrade_scanned_{0};  // device_errors_ at last scan
  std::atomic<bool> degraded_{false};
  // Guard for EnterDegradedMode: degraded_ itself is published only after
  // every partition is salvaged and purged, so it cannot double as the
  // sequence's mutual exclusion.
  std::atomic<bool> degrade_entered_{false};
  std::atomic<int64_t> degraded_partitions_{0};

  // Patrol cursor of the background scrubber. scrub_mu_ is held only for
  // the copy/advance arithmetic — never across a partition latch or device
  // I/O (see the latch-order spec).
  mutable TrackedMutex<LatchClass::kSsdScrub> scrub_mu_;
  size_t scrub_part_ TURBOBP_GUARDED_BY(scrub_mu_) = 0;
  int32_t scrub_rec_ TURBOBP_GUARDED_BY(scrub_mu_) = 0;
  // Liveness token for the scrub actor: scheduled events hold a weak_ptr,
  // so an event that outlives this cache (Crash() rebuilds the manager with
  // events still queued) no-ops instead of touching freed memory. Setting
  // the bool false (StopBackground) stops rescheduling without waiting.
  std::shared_ptr<bool> scrub_alive_;

  // Lost pages (dirty copies that died with the device). lost_live_ is a
  // lock-free emptiness guard so the hot read path skips fault_mu_ while
  // nothing has been lost (the overwhelmingly common case).
  mutable TrackedMutex<LatchClass::kSsdFault> fault_mu_;
  std::unordered_set<PageId> lost_pages_ TURBOBP_GUARDED_BY(fault_mu_);
  std::atomic<int64_t> lost_live_{0};

  // Stats counters: relaxed atomics, incremented from any thread (often
  // under a partition lock) and snapshotted by stats() without one.
  struct Counters {
    // Probe classifications: bumped once per TryReadPage outcome that lands
    // in hits or probe_misses (throttle skips and read errors classify as
    // neither). Incremented LAST, with release ordering, so a snapshot that
    // reads ops first (acquire) always observes hits + probe_misses >= ops
    // — the conservation invariant stats() promises even mid-probe.
    std::atomic<int64_t> ops{0};
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> hits_dirty{0};
    std::atomic<int64_t> probe_misses{0};
    std::atomic<int64_t> admissions{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> throttled{0};
    std::atomic<int64_t> rejected_sequential{0};
    std::atomic<int64_t> cleaner_disk_writes{0};
    std::atomic<int64_t> cleaner_io_requests{0};
    std::atomic<int64_t> invalidations{0};
    std::atomic<int64_t> device_read_errors{0};
    std::atomic<int64_t> device_write_errors{0};
    std::atomic<int64_t> read_retries{0};
    std::atomic<int64_t> frame_corruptions{0};
    std::atomic<int64_t> emergency_cleaned{0};
    std::atomic<int64_t> checkpoint_flush_failures{0};
    std::atomic<int64_t> partitions_degraded{0};
    std::atomic<int64_t> partitions_recovered{0};
    std::atomic<int64_t> scrub_frames_verified{0};
    std::atomic<int64_t> scrub_frames_repaired{0};
    std::atomic<int64_t> io_timeouts{0};
    std::atomic<int64_t> hedged_reads{0};

    static void Bump(std::atomic<int64_t>& c, int64_t by = 1) {
      c.fetch_add(by, std::memory_order_relaxed);
    }
    // Bumps a classification counter and then seals the probe into ops.
    void Classified(std::atomic<int64_t>& c) {
      c.fetch_add(1, std::memory_order_relaxed);
      ops.fetch_add(1, std::memory_order_release);
    }
  };
  mutable Counters counters_;

 private:
  // AdmitPage's body (everything under the partition latch); the public
  // wrapper runs journal maintenance after the latch is released.
  bool AdmitPageImpl(PageId pid, std::span<const uint8_t> data,
                     AccessKind kind, bool dirty, Lsn page_lsn,
                     IoContext& ctx);

  // One patrol step: verify the frame under the scrub cursor (advancing it).
  // Returns true when a frame's checksum verified. `buf` is the caller's
  // page-sized scratch buffer (reused across the tick).
  bool ScrubOneSlot(IoContext& ctx, std::vector<uint8_t>& buf)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  // Re-seeds a quarantined-then-lost *clean* page from its disk copy into a
  // healthy frame (low-priority via the disk engine when configured).
  void RepairFrame(PageId pid, IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  // Self-scheduling executor actor driving ScrubTick every scrub_interval.
  void ScrubStep();

  // Shared restore engine behind RestoreFromCheckpoint and
  // RecoverPersistentState; `stats` (optional) receives the drop/reseed
  // breakdown.
  size_t RestoreEntries(const std::vector<CheckpointEntry>& entries,
                        IoContext& ctx,
                        const std::unordered_map<PageId, Lsn>* max_update_lsn,
                        std::unordered_map<PageId, Lsn>* covered_lsn,
                        PersistentRestoreStats* stats);

  // Lazy-scan fallback for a torn/stale/absent journal: reads every frame
  // NOT claimed by `known` (may be null: scan everything), keeps the ones
  // whose self-identifying header checks out, and classifies them
  // clean/dirty against the current disk copy's LSN.
  std::vector<CheckpointEntry> LazyScanEntries(
      IoContext& ctx,
      const std::unordered_map<uint64_t, SsdMetadataJournal::RecoveredEntry>*
          known);

  friend class InvariantAuditor;  // read-only structural audits (src/debug)
  friend struct AuditAccess;      // corruption injection in auditor tests
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_CACHE_BASE_H_
