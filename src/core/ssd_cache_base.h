#ifndef TURBOBP_CORE_SSD_CACHE_BASE_H_
#define TURBOBP_CORE_SSD_CACHE_BASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/ssd_buffer_table.h"
#include "core/ssd_heap.h"
#include "core/ssd_manager.h"
#include "core/ssd_metadata_journal.h"
#include "debug/latch_order_checker.h"
#include "storage/disk_manager.h"
#include "storage/storage_device.h"

namespace turbobp {

class AsyncIoEngine;
class SimExecutor;
class InvariantAuditor;
struct AuditAccess;

// Tuning parameters of Table 2, plus the fault-tolerance policy knobs.
struct SsdCacheOptions {
  int64_t num_frames = 18350080;     // S: SSD buffer pool size in frames
  int num_partitions = 16;           // N: one per hardware context (3.3.4)
  double aggressive_fill = 0.95;     // tau: admit everything below this fill
  int throttle_queue_limit = 100;    // mu: skip SSD I/O beyond this queue
  double lc_dirty_fraction = 0.5;    // lambda: LC cleaner high watermark
  int lc_group_pages = 32;           // alpha: max pages per cleaner write
  double lc_watermark_gap = 0.0001;  // clean to ~0.01% of S below lambda
  // Fault tolerance (src/fault): transient SSD errors and checksum
  // mismatches are retried up to io_retry_limit attempts with
  // io_retry_backoff of virtual time between them; once the device has
  // produced degrade_error_limit errors in total, the cache gives up on the
  // SSD and flips to pass-through (NoSsdManager-equivalent) mode.
  int io_retry_limit = 3;
  Time io_retry_backoff = Micros(500);
  int64_t degrade_error_limit = 8;
  // Persistent SSD cache: journal the buffer table to a metadata region at
  // the tail of the SSD device (past the frame area), so cache contents
  // survive a restart. The device must provide num_frames +
  // SsdMetadataJournal::RegionPagesFor(num_frames, page_bytes) pages.
  bool persistent_cache = false;
  // Optional async engine over the DISK array (not the SSD). When set, LC's
  // group cleaning and checkpoint drain submit per-page disk writes through
  // it — the engine coalesces contiguous runs and owns the bounded
  // per-request retry, so one flaky page never re-writes its group
  // neighbours. Null keeps the serial DiskManager::WritePages path.
  AsyncIoEngine* disk_io_engine = nullptr;
};

// Common machinery shared by the CW/DW/LC designs and TAC: the partitioned
// buffer table / hash table / free list / split heap of Section 3.1, the
// admission policy of Section 2.2 (random-only plus aggressive filling,
// Section 3.3.1), throttle control (Section 3.3.2) and the SSD read/write
// paths. Concrete designs supply the eviction-time behaviour.
class SsdCacheBase : public SsdManager {
 public:
  SsdCacheBase(StorageDevice* ssd_device, DiskManager* disk,
               const SsdCacheOptions& options, SimExecutor* executor);

  // --- SsdManager parts common to all designs -------------------------------

  SsdProbe Probe(PageId pid) const override;
  bool TryReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx,
                   Status* error = nullptr) override;
  void OnPageDirtied(PageId pid) override;
  void OnEvictClean(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                    IoContext& ctx) override;
  SsdManagerStats stats() const override;

  // Restart extension (Section 6 future work): the SSD buffer table can be
  // snapshotted into a checkpoint record and re-attached after a restart.
  std::vector<CheckpointEntry> SnapshotForCheckpoint() const override;
  size_t RestoreFromCheckpoint(
      const std::vector<CheckpointEntry>& entries, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr) override;

  // Persistent cache (options().persistent_cache): warm restart from the
  // metadata journal + frame headers, reconciled against the WAL durable
  // horizon. See RecoverPersistentState in SsdManager for the contract.
  bool RecoverPersistentState(
      Lsn horizon, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr,
      PersistentRestoreStats* out = nullptr) override;

  // Checkpoint hook shared by every design: force-flushes the staged
  // journal records so the on-device journal catches up at least once per
  // checkpoint. LC chains to this from its dirty-frame drain.
  IoResult FlushAllDirty(IoContext& ctx) override;

  // The metadata journal, when persistent_cache is on (tests/harness).
  SsdMetadataJournal* journal() { return journal_.get(); }

  const SsdCacheOptions& options() const { return options_; }
  int64_t used_frames() const { return used_frames_.load(); }
  int64_t dirty_frames() const { return dirty_frames_.load(); }
  int64_t quarantined_frames() const { return quarantined_frames_.load(); }

  // --- graceful degradation (survive a flaky or dying SSD) ------------------

  // True once the cache has flipped to pass-through mode: every SsdManager
  // entry point then behaves like NoSsdManager.
  bool degraded() const override {
    return degraded_.load(std::memory_order_acquire);
  }

  // Forces degradation now (tests/operator action); normally it triggers
  // itself once device errors reach options().degrade_error_limit.
  void Degrade(IoContext& ctx) { EnterDegradedMode(ctx); }

  // Pages whose only current copy sat in a dirty SSD frame that could not
  // be salvaged. Reads of these pages fail hard (disk would be stale);
  // recovery (WAL redo) or a full page rewrite clears them.
  bool IsLostPage(PageId pid) const TURBOBP_EXCLUDES(fault_mu_);
  std::vector<PageId> LostPages() const TURBOBP_EXCLUDES(fault_mu_);

 protected:
  struct Partition {
    Partition(int32_t capacity, SsdSplitHeap::KeyFn key)
        : table(capacity), heap(&table, std::move(key)) {}
    SsdBufferTable table TURBOBP_GUARDED_BY(mu);
    SsdSplitHeap heap TURBOBP_GUARDED_BY(mu);
    int64_t frame_base = 0;  // device page of this partition's frame 0
    // SSD device I/O runs *under* mu by design (one partition per hardware
    // context, Section 3.3.4) — see the latch-order spec table.
    mutable TrackedMutex<LatchClass::kSsdPartition> mu;
  };

  Partition& PartitionFor(PageId pid) {
    return *partitions_[static_cast<size_t>(
        (pid * 0xD1B54A32D192ED03ull) >> 32 & 0xFFFFFFFFull) %
                        partitions_.size()];
  }
  const Partition& PartitionFor(PageId pid) const {
    return const_cast<SsdCacheBase*>(this)->PartitionFor(pid);
  }

  // The per-partition heap key; LRU-2 by default, overridden by TAC.
  virtual double HeapKey(const Partition& part, int32_t rec) const
      TURBOBP_REQUIRES(part.mu);
  // Shim for the heap's key callback: SsdSplitHeap invokes its KeyFn only
  // from operations that already run under the partition latch, but the
  // lambda capture cannot carry that proof — so the callback routes through
  // this unchecked hop instead of silencing the whole call chain.
  double HeapKeyForCallback(const Partition& part, int32_t rec) const
      TURBOBP_NO_THREAD_SAFETY_ANALYSIS {
    return HeapKey(part, rec);
  }

  // Admission policy of Section 2.2: below the aggressive-fill threshold
  // everything is admitted; afterwards only pages whose (random) re-access
  // would be faster from the SSD than from the disk — i.e. kRandom pages.
  bool AdmissionAllows(AccessKind kind);

  // Throttle control: true when the SSD queue exceeds mu.
  bool ThrottleBlocks(Time now);

  // Inserts (or refreshes) `pid` in the cache, evicting a replacement
  // victim if needed. Returns false when no frame could be obtained (all
  // valid pages dirty, partition exhausted). Performs the asynchronous SSD
  // write when new content must land on the device.
  bool AdmitPage(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                 bool dirty, Lsn page_lsn, IoContext& ctx);

  // Quarantines `rec` while it is still on the free list (restore-time
  // corruption: the frame never entered service, so QuarantineFrameLocked's
  // used-frame bookkeeping does not apply).
  void QuarantineRestoredFrame(Partition& part, int32_t rec)
      TURBOBP_REQUIRES(part.mu);

  // Picks a replacement victim in `part` (clean-heap root by default;
  // TAC overrides with coldest-valid-temperature). Returns -1 if none.
  virtual int32_t PickVictim(Partition& part) TURBOBP_REQUIRES(part.mu);

  // Unlinks `rec` from hash and heap (it stays allocated for reuse).
  void DetachRecord(Partition& part, int32_t rec) TURBOBP_REQUIRES(part.mu);

  // Device page holding `rec` of `part`.
  uint64_t FrameOf(const Partition& part, int32_t rec) const {
    return static_cast<uint64_t>(part.frame_base + rec);
  }

  // Asynchronous single-frame SSD write with bounded retry for transients;
  // returns the completion result. On failure the frame content is suspect
  // (possibly torn) — the caller must not serve reads from it.
  IoResult WriteFrame(Partition& part, int32_t rec,
                      std::span<const uint8_t> data, IoContext& ctx)
      TURBOBP_REQUIRES(part.mu);
  // Blocking single-frame SSD read into out; advances ctx.now.
  IoResult ReadFrame(Partition& part, int32_t rec, std::span<uint8_t> out,
                     IoContext& ctx) TURBOBP_REQUIRES(part.mu);
  // ReadFrame plus verification that `out` really holds `pid` at a valid
  // checksum, retrying (re-reading) transient errors and corruptions up to
  // options().io_retry_limit attempts. kCorruption after the last attempt
  // means the frame itself is bad (candidate for quarantine).
  Status ReadFrameVerified(Partition& part, int32_t rec, PageId pid,
                           std::span<uint8_t> out, IoContext& ctx)
      TURBOBP_REQUIRES(part.mu);

  // Takes `rec` out of service permanently: detached from hash and heap,
  // never returned to the free list (the flash cells are bad), state
  // kQuarantined. Partition lock must be held.
  void QuarantineFrameLocked(Partition& part, int32_t rec)
      TURBOBP_REQUIRES(part.mu);

  // Counts one device error; safe under a partition lock (it only bumps an
  // atomic — the actual mode flip is deferred to MaybeDegrade).
  void RecordDeviceError();
  // Consume the deferred error count and, past the threshold, flip to
  // pass-through mode. Must be called WITHOUT any partition lock held:
  // EnterDegradedMode runs OnDegrade, and LC's emergency flush takes every
  // partition lock in turn.
  void MaybeDegrade(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));
  void EnterDegradedMode(IoContext& ctx)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  // Design-specific last rites before pass-through mode; LC overrides this
  // with the emergency cleaner flush of its dirty frames.
  virtual void OnDegrade(IoContext& ctx) {}

  // Records that the only current copy of `pid` is gone.
  void RecordLostPage(PageId pid) TURBOBP_EXCLUDES(fault_mu_);
  // A full-page rewrite (NewPage) or redo supersedes the lost copy.
  void ClearLostPage(PageId pid) TURBOBP_EXCLUDES(fault_mu_);

  // Drops every cached page (used between benchmark runs and by tests).
  void Invalidate(PageId pid);

  // --- persistent-cache journal hooks ---------------------------------------
  // Optimistic publish-then-seal: the in-memory table mutation has already
  // happened (under the partition latch) when these stage the matching
  // journal record. No-ops when persistence is off or restore suppresses
  // journaling (latch order kSsdPartition -> kSsdJournal makes the calls
  // legal under a partition latch).
  void NoteJournalPut(uint64_t frame, PageId pid, Lsn page_lsn, bool dirty) {
    if (journal_ != nullptr && !journal_suppress_) {
      journal_->NotePut(frame, pid, page_lsn, dirty);
    }
  }
  void NoteJournalErase(uint64_t frame) {
    if (journal_ != nullptr && !journal_suppress_) {
      journal_->NoteErase(frame);
    }
  }
  // Writes staged journal records to the device when enough have gathered
  // (always, when `force`). Must be called OUTSIDE partition latches; a
  // write failure counts as a device error toward degradation.
  void MaintainJournal(IoContext& ctx, bool force = false)
      TURBOBP_EXCLUDES(TURBOBP_LATCH_CAP(LatchClass::kSsdPartition));

  SsdCacheOptions options_;
  StorageDevice* ssd_device_;
  DiskManager* disk_;
  SimExecutor* executor_;
  std::vector<std::unique_ptr<Partition>> partitions_;

  // Persistent-cache metadata journal (null unless persistent_cache).
  // journal_suppress_ mutes the Note* hooks while a restore re-attaches
  // recovered entries (the post-restore compaction snapshots them anyway).
  std::unique_ptr<SsdMetadataJournal> journal_;
  std::atomic<bool> journal_suppress_{false};

  std::atomic<int64_t> used_frames_{0};
  std::atomic<int64_t> dirty_frames_{0};
  std::atomic<int64_t> invalid_frames_{0};
  std::atomic<int64_t> quarantined_frames_{0};

  // Degradation state. device_errors_ counts every failed SSD attempt;
  // degraded_ is checked (acquire) at every entry point before any
  // partition lock is taken.
  std::atomic<int64_t> device_errors_{0};
  std::atomic<bool> degraded_{false};

  // Lost pages (dirty copies that died with the device). lost_live_ is a
  // lock-free emptiness guard so the hot read path skips fault_mu_ while
  // nothing has been lost (the overwhelmingly common case).
  mutable TrackedMutex<LatchClass::kSsdFault> fault_mu_;
  std::unordered_set<PageId> lost_pages_ TURBOBP_GUARDED_BY(fault_mu_);
  std::atomic<int64_t> lost_live_{0};

  // Stats counters: relaxed atomics, incremented from any thread (often
  // under a partition lock) and snapshotted by stats() without one.
  struct Counters {
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> hits_dirty{0};
    std::atomic<int64_t> probe_misses{0};
    std::atomic<int64_t> admissions{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> throttled{0};
    std::atomic<int64_t> rejected_sequential{0};
    std::atomic<int64_t> cleaner_disk_writes{0};
    std::atomic<int64_t> cleaner_io_requests{0};
    std::atomic<int64_t> invalidations{0};
    std::atomic<int64_t> device_read_errors{0};
    std::atomic<int64_t> device_write_errors{0};
    std::atomic<int64_t> read_retries{0};
    std::atomic<int64_t> frame_corruptions{0};
    std::atomic<int64_t> emergency_cleaned{0};
    std::atomic<int64_t> checkpoint_flush_failures{0};

    static void Bump(std::atomic<int64_t>& c, int64_t by = 1) {
      c.fetch_add(by, std::memory_order_relaxed);
    }
  };
  mutable Counters counters_;

 private:
  // AdmitPage's body (everything under the partition latch); the public
  // wrapper runs journal maintenance after the latch is released.
  bool AdmitPageImpl(PageId pid, std::span<const uint8_t> data,
                     AccessKind kind, bool dirty, Lsn page_lsn,
                     IoContext& ctx);

  // Shared restore engine behind RestoreFromCheckpoint and
  // RecoverPersistentState; `stats` (optional) receives the drop/reseed
  // breakdown.
  size_t RestoreEntries(const std::vector<CheckpointEntry>& entries,
                        IoContext& ctx,
                        const std::unordered_map<PageId, Lsn>* max_update_lsn,
                        std::unordered_map<PageId, Lsn>* covered_lsn,
                        PersistentRestoreStats* stats);

  // Lazy-scan fallback for a torn/stale/absent journal: reads every frame
  // NOT claimed by `known` (may be null: scan everything), keeps the ones
  // whose self-identifying header checks out, and classifies them
  // clean/dirty against the current disk copy's LSN.
  std::vector<CheckpointEntry> LazyScanEntries(
      IoContext& ctx,
      const std::unordered_map<uint64_t, SsdMetadataJournal::RecoveredEntry>*
          known);

  friend class InvariantAuditor;  // read-only structural audits (src/debug)
  friend struct AuditAccess;      // corruption injection in auditor tests
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_CACHE_BASE_H_
