#ifndef TURBOBP_CORE_SSD_CACHE_BASE_H_
#define TURBOBP_CORE_SSD_CACHE_BASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ssd_buffer_table.h"
#include "core/ssd_heap.h"
#include "core/ssd_manager.h"
#include "debug/latch_order_checker.h"
#include "storage/disk_manager.h"
#include "storage/storage_device.h"

namespace turbobp {

class SimExecutor;
class InvariantAuditor;
struct AuditAccess;

// Tuning parameters of Table 2.
struct SsdCacheOptions {
  int64_t num_frames = 18350080;     // S: SSD buffer pool size in frames
  int num_partitions = 16;           // N: one per hardware context (3.3.4)
  double aggressive_fill = 0.95;     // tau: admit everything below this fill
  int throttle_queue_limit = 100;    // mu: skip SSD I/O beyond this queue
  double lc_dirty_fraction = 0.5;    // lambda: LC cleaner high watermark
  int lc_group_pages = 32;           // alpha: max pages per cleaner write
  double lc_watermark_gap = 0.0001;  // clean to ~0.01% of S below lambda
};

// Common machinery shared by the CW/DW/LC designs and TAC: the partitioned
// buffer table / hash table / free list / split heap of Section 3.1, the
// admission policy of Section 2.2 (random-only plus aggressive filling,
// Section 3.3.1), throttle control (Section 3.3.2) and the SSD read/write
// paths. Concrete designs supply the eviction-time behaviour.
class SsdCacheBase : public SsdManager {
 public:
  SsdCacheBase(StorageDevice* ssd_device, DiskManager* disk,
               const SsdCacheOptions& options, SimExecutor* executor);

  // --- SsdManager parts common to all designs -------------------------------

  SsdProbe Probe(PageId pid) const override;
  bool TryReadPage(PageId pid, std::span<uint8_t> out, IoContext& ctx) override;
  void OnPageDirtied(PageId pid) override;
  void OnEvictClean(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                    IoContext& ctx) override;
  SsdManagerStats stats() const override;

  // Restart extension (Section 6 future work): the SSD buffer table can be
  // snapshotted into a checkpoint record and re-attached after a restart.
  std::vector<CheckpointEntry> SnapshotForCheckpoint() const override;
  size_t RestoreFromCheckpoint(
      const std::vector<CheckpointEntry>& entries, IoContext& ctx,
      const std::unordered_map<PageId, Lsn>* max_update_lsn = nullptr,
      std::unordered_map<PageId, Lsn>* covered_lsn = nullptr) override;

  const SsdCacheOptions& options() const { return options_; }
  int64_t used_frames() const { return used_frames_.load(); }
  int64_t dirty_frames() const { return dirty_frames_.load(); }

 protected:
  struct Partition {
    Partition(int32_t capacity, SsdSplitHeap::KeyFn key)
        : table(capacity), heap(&table, std::move(key)) {}
    SsdBufferTable table;
    SsdSplitHeap heap;
    int64_t frame_base = 0;  // device page of this partition's frame 0
    mutable TrackedMutex<LatchClass::kSsdPartition> mu;
  };

  Partition& PartitionFor(PageId pid) {
    return *partitions_[static_cast<size_t>(
        (pid * 0xD1B54A32D192ED03ull) >> 32 & 0xFFFFFFFFull) %
                        partitions_.size()];
  }
  const Partition& PartitionFor(PageId pid) const {
    return const_cast<SsdCacheBase*>(this)->PartitionFor(pid);
  }

  // The per-partition heap key; LRU-2 by default, overridden by TAC.
  virtual double HeapKey(const Partition& part, int32_t rec) const;

  // Admission policy of Section 2.2: below the aggressive-fill threshold
  // everything is admitted; afterwards only pages whose (random) re-access
  // would be faster from the SSD than from the disk — i.e. kRandom pages.
  bool AdmissionAllows(AccessKind kind);

  // Throttle control: true when the SSD queue exceeds mu.
  bool ThrottleBlocks(Time now);

  // Inserts (or refreshes) `pid` in the cache, evicting a replacement
  // victim if needed. Returns false when no frame could be obtained (all
  // valid pages dirty, partition exhausted). Performs the asynchronous SSD
  // write when new content must land on the device.
  bool AdmitPage(PageId pid, std::span<const uint8_t> data, AccessKind kind,
                 bool dirty, Lsn page_lsn, IoContext& ctx);

  // Picks a replacement victim in `part` (clean-heap root by default;
  // TAC overrides with coldest-valid-temperature). Returns -1 if none.
  virtual int32_t PickVictim(Partition& part);

  // Unlinks `rec` from hash and heap (it stays allocated for reuse).
  void DetachRecord(Partition& part, int32_t rec);

  // Device page holding `rec` of `part`.
  uint64_t FrameOf(const Partition& part, int32_t rec) const {
    return static_cast<uint64_t>(part.frame_base + rec);
  }

  // Asynchronous single-frame SSD write; returns completion time.
  Time WriteFrame(Partition& part, int32_t rec, std::span<const uint8_t> data,
                  IoContext& ctx);
  // Blocking single-frame SSD read into out; advances ctx.now.
  Time ReadFrame(Partition& part, int32_t rec, std::span<uint8_t> out,
                 IoContext& ctx);

  // Drops every cached page (used between benchmark runs and by tests).
  void Invalidate(PageId pid);

  SsdCacheOptions options_;
  StorageDevice* ssd_device_;
  DiskManager* disk_;
  SimExecutor* executor_;
  std::vector<std::unique_ptr<Partition>> partitions_;

  std::atomic<int64_t> used_frames_{0};
  std::atomic<int64_t> dirty_frames_{0};
  std::atomic<int64_t> invalid_frames_{0};

  // Stats (mutated under partition locks; read racily for reporting).
  mutable TrackedMutex<LatchClass::kSsdStats> stats_mu_;
  SsdManagerStats stats_counters_;

 private:
  friend class InvariantAuditor;  // read-only structural audits (src/debug)
  friend struct AuditAccess;      // corruption injection in auditor tests
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_CACHE_BASE_H_
