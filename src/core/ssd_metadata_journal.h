#ifndef TURBOBP_CORE_SSD_METADATA_JOURNAL_H_
#define TURBOBP_CORE_SSD_METADATA_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "debug/latch_order_checker.h"
#include "storage/io_context.h"
#include "storage/storage_device.h"

namespace turbobp {

// Crash-consistent metadata journal for the persistent SSD cache
// (DESIGN.md "Persistent SSD cache"). A small region at the tail of the SSD
// device records the buffer table — (frame, page id, LSN, dirty) mappings —
// so a restart can re-attach the surviving SSD contents instead of warming a
// cold cache.
//
// On-device format. The region is split into two halves; epoch e lives in
// half (e % 2), so compaction double-buffers: the previous epoch stays
// authoritative until the new epoch's seal page lands (publish-then-seal at
// the epoch level). Each half is laid out as
//
//   page 0                     seal page  (written LAST during compaction)
//   pages [1, 1+snap_cap)      snapshot pages (full-table image)
//   pages [1+snap_cap, half)   append pages (incremental puts/erases)
//
// Every journal page carries a 32-byte header (magic, kind, epoch, index,
// used-bytes, CRC32C over header+payload), making each page self-sealing: a
// torn write is caught by the CRC and truncates the append scan exactly
// there. Append pages fill incrementally — a partially-filled tail page is
// rewritten fuller in place; the CRC makes every intermediate image valid
// standalone.
//
// Consistency model (optimistic publish-then-seal): the in-memory buffer
// table is updated first, under the partition latch; NotePut/NoteErase then
// stage a record under the journal latch (kSsdJournal — rank above
// kSsdPartition, device I/O forbidden); sealed pages are written to the
// device later, outside both latches, by Maintain(). The journal therefore
// always *lags* the live table, never leads it: recovery treats every
// journal entry as a hint to be verified against the frame's
// self-identifying page header and the WAL durable horizon. A lost journal
// tail only costs warmth, never correctness.
//
// Epochs are strictly increasing across restarts: open/recover scans the
// region for the highest epoch on any CRC-valid page, so a new epoch can
// never collide with stale-but-valid pages from an earlier incarnation of
// the same half.
class SsdMetadataJournal {
 public:
  // One buffer-table mutation (or one snapshot row: a put).
  struct Record {
    uint64_t frame = 0;  // absolute device page holding the frame
    PageId page_id = kInvalidPageId;
    Lsn page_lsn = kInvalidLsn;
    bool dirty = false;
    bool erase = false;  // true: the frame mapping was dropped
  };

  struct RecoveredEntry {
    PageId page_id = kInvalidPageId;
    Lsn page_lsn = kInvalidLsn;
    bool dirty = false;
  };

  struct RecoveredState {
    bool valid = false;    // a usable epoch was found
    uint64_t epoch = 0;    // the adopted epoch
    int half = -1;         // which half held it
    bool fell_back = false;  // newest seal/snapshot unusable; older epoch used
    bool torn_tail = false;  // append scan hit a CRC-torn page
    uint32_t snapshot_pages = 0;
    uint32_t append_pages = 0;  // valid append pages consumed
    size_t append_records = 0;
    // Final table image after replaying snapshot + appends, keyed by frame.
    std::unordered_map<uint64_t, RecoveredEntry> entries;

    // True when the journal may be missing mappings that exist on the
    // device (an older epoch was adopted, or the append tail was torn);
    // the cache then supplements with a lazy frame scan.
    bool incomplete() const { return !valid || fell_back || torn_tail; }
  };

  // Gathers the current full buffer table for compaction. Called WITHOUT
  // the journal latch held (it takes partition latches internally).
  using SnapshotFn = std::function<std::vector<Record>()>;

  // The journal owns device pages [region_base, region_base+region_pages).
  SsdMetadataJournal(StorageDevice* device, uint64_t region_base,
                     uint32_t region_pages, SnapshotFn snapshot_fn);

  // Device pages needed to journal `num_frames` frames at `page_bytes`.
  static uint32_t RegionPagesFor(int64_t num_frames, uint32_t page_bytes);

  // --- geometry (used by tests and the crash harness's fault mutations) ----
  uint64_t region_base() const { return region_base_; }
  uint32_t region_pages() const { return region_pages_; }
  uint32_t half_pages() const { return half_pages_; }
  uint32_t records_per_page() const { return records_per_page_; }
  uint32_t snapshot_page_capacity() const { return snap_cap_; }
  uint32_t append_page_capacity() const { return append_cap_; }
  uint64_t SealPageOf(int half) const {
    return region_base_ + static_cast<uint64_t>(half) * half_pages_;
  }
  uint64_t SnapshotBaseOf(int half) const { return SealPageOf(half) + 1; }
  uint64_t AppendBaseOf(int half) const {
    return SnapshotBaseOf(half) + snap_cap_;
  }

  // --- staging (hot path; partition latch may be held) ---------------------

  // Stages "frame now holds page_id@lsn". Buffers in memory only; the
  // device write happens in a later Maintain(). Latch order
  // kSsdPartition -> kSsdJournal permits calls under a partition latch.
  void NotePut(uint64_t frame, PageId page_id, Lsn page_lsn, bool dirty)
      TURBOBP_EXCLUDES(mu_);
  // Stages "frame's mapping was dropped" (invalidate/evict/quarantine).
  void NoteErase(uint64_t frame) TURBOBP_EXCLUDES(mu_);

  // --- durability (must run outside partition latches) ---------------------

  // Writes staged records to the device once at least a page's worth is
  // pending (always, when `force`); compacts when the append area is full
  // or the journal has not been opened yet. Returns the last device
  // completion time plus an error channel; failures leave the on-device
  // journal prefix-consistent (recovery truncates at the torn page).
  IoResult Maintain(IoContext& ctx, bool force = false) TURBOBP_EXCLUDES(
      mu_, TURBOBP_LATCH_CAP(LatchClass::kSsdJournal));

  // Forces a full compaction: snapshot of the live table + fresh seal under
  // a new epoch. Used after recovery to re-seal the reconciled state.
  IoResult Compact(IoContext& ctx) TURBOBP_EXCLUDES(
      mu_, TURBOBP_LATCH_CAP(LatchClass::kSsdJournal));

  // Reads the region and reconstructs the most recent usable epoch's table
  // image. Startup-time only. Also learns the highest on-device epoch so
  // subsequent compactions supersede every stale page.
  RecoveredState Recover(IoContext& ctx) TURBOBP_EXCLUDES(
      mu_, TURBOBP_LATCH_CAP(LatchClass::kSsdJournal));

  // --- stats ---------------------------------------------------------------
  int64_t records_appended() const {
    return records_appended_.load(std::memory_order_relaxed);
  }
  int64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }
  int64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  int64_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }

 private:
  // The flush path: moves pending_ into tail_ and writes/compacts. Runs
  // with flush exclusivity (flushing_) held, journal latch NOT held.
  IoResult FlushExclusive(IoContext& ctx, bool force, bool want_compact);
  IoResult FlushTail(IoContext& ctx, bool force);
  IoResult CompactNow(IoContext& ctx);
  // Highest epoch on any CRC-valid page in the region (0 if none).
  uint64_t ScanMaxEpoch(IoContext& ctx);
  // Writes one sealed journal page; names the durability edge for the
  // crash-point torture harness.
  IoResult WriteRegionPage(uint64_t abs_page, std::span<const uint8_t> data,
                           IoContext& ctx, const char* crash_point);

  StorageDevice* device_;
  const uint64_t region_base_;
  const uint32_t region_pages_;
  const uint32_t page_bytes_;
  const uint32_t records_per_page_;
  uint32_t snap_cap_ = 0;
  uint32_t append_cap_ = 0;
  uint32_t half_pages_ = 0;
  SnapshotFn snapshot_fn_;

  // Staging buffer: records published to the live table but not yet handed
  // to the flush path. The only state touched on the hot path.
  mutable TrackedMutex<LatchClass::kSsdJournal> mu_;
  std::vector<Record> pending_ TURBOBP_GUARDED_BY(mu_);

  // Flush exclusivity: one flush/compaction/recovery at a time; a second
  // caller simply leaves its records pending for the next round. All state
  // below is only touched while flushing_ is held, so it needs no latch —
  // and the device writes it drives stay outside every latch scope.
  std::atomic<bool> flushing_{false};
  std::vector<Record> tail_;     // records of the partially-filled tail page
  uint64_t epoch_ = 0;           // current sealed epoch (valid once opened_)
  uint32_t append_used_pages_ = 0;  // fully-filled append pages this epoch
  bool opened_ = false;

  std::atomic<int64_t> records_appended_{0};
  std::atomic<int64_t> pages_written_{0};
  std::atomic<int64_t> compactions_{0};
  std::atomic<int64_t> write_errors_{0};
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_METADATA_JOURNAL_H_
