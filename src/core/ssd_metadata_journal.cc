#include "core/ssd_metadata_journal.h"

#include <algorithm>
#include <cstring>

#include "common/checksum.h"
#include "fault/crash_point.h"

namespace turbobp {

namespace {

// Journal page header, at offset 0 of every region page. The CRC covers the
// header (with the crc field zeroed) plus the first `used` payload bytes,
// so every page is valid standalone and a torn write is self-evident.
struct JournalPageHeader {
  uint32_t magic = 0;
  uint32_t kind = 0;  // 1 = seal, 2 = snapshot, 3 = append
  uint64_t epoch = 0;
  uint32_t index = 0;  // position within the page's role (snap/append area)
  uint32_t used = 0;   // payload bytes covered by the CRC
  uint32_t crc = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(JournalPageHeader) == 32);

inline constexpr uint32_t kJournalMagic = 0x4A504254;  // "TBPJ"
inline constexpr uint32_t kKindSeal = 1;
inline constexpr uint32_t kKindSnapshot = 2;
inline constexpr uint32_t kKindAppend = 3;
inline constexpr uint32_t kHeaderBytes = sizeof(JournalPageHeader);
// type(1) + frame(8) + page_id(8) + lsn(8) + flags(1)
inline constexpr uint32_t kRecordBytes = 26;
inline constexpr uint8_t kRecPut = 1;
inline constexpr uint8_t kRecErase = 2;
inline constexpr uint8_t kFlagDirty = 0x1;

// Seal payload: snapshot page count + total table entries at seal time.
struct SealPayload {
  uint32_t snapshot_pages = 0;
  uint32_t reserved = 0;
  uint64_t entry_count = 0;
};
static_assert(sizeof(SealPayload) == 16);

uint32_t PageCrc(const JournalPageHeader& h, const uint8_t* payload) {
  JournalPageHeader copy = h;
  copy.crc = 0;
  const uint32_t seed = Crc32c(&copy, sizeof(copy));
  return Crc32c(payload, h.used, seed);
}

void EncodeRecord(const SsdMetadataJournal::Record& r, uint8_t* out) {
  out[0] = r.erase ? kRecErase : kRecPut;
  std::memcpy(out + 1, &r.frame, 8);
  std::memcpy(out + 9, &r.page_id, 8);
  std::memcpy(out + 17, &r.page_lsn, 8);
  out[25] = r.dirty ? kFlagDirty : 0;
}

SsdMetadataJournal::Record DecodeRecord(const uint8_t* in) {
  SsdMetadataJournal::Record r;
  r.erase = in[0] == kRecErase;
  std::memcpy(&r.frame, in + 1, 8);
  std::memcpy(&r.page_id, in + 9, 8);
  std::memcpy(&r.page_lsn, in + 17, 8);
  r.dirty = (in[25] & kFlagDirty) != 0;
  return r;
}

// Builds one sealed journal page in `buf` from `n` records starting at
// `recs` (n == 0 allowed: an empty-but-valid page).
void BuildRecordPage(uint32_t kind, uint64_t epoch, uint32_t index,
                     const SsdMetadataJournal::Record* recs, size_t n,
                     std::span<uint8_t> buf) {
  std::fill(buf.begin(), buf.end(), uint8_t{0});
  JournalPageHeader h;
  h.magic = kJournalMagic;
  h.kind = kind;
  h.epoch = epoch;
  h.index = index;
  h.used = static_cast<uint32_t>(n) * kRecordBytes;
  uint8_t* payload = buf.data() + kHeaderBytes;
  for (size_t i = 0; i < n; ++i) {
    EncodeRecord(recs[i], payload + i * kRecordBytes);
  }
  h.crc = PageCrc(h, payload);
  std::memcpy(buf.data(), &h, kHeaderBytes);
}

// Validates a page read back from the device: magic, CRC and — when the
// caller knows what it expects — kind/epoch/index. Returns false on any
// mismatch (the page is residue of an older epoch, or torn).
bool ValidatePage(std::span<const uint8_t> buf, JournalPageHeader* out,
                  uint32_t want_kind = 0, uint64_t want_epoch = 0,
                  bool check_epoch = false, uint32_t want_index = 0,
                  bool check_index = false) {
  if (buf.size() < kHeaderBytes) return false;
  JournalPageHeader h;
  std::memcpy(&h, buf.data(), kHeaderBytes);
  if (h.magic != kJournalMagic) return false;
  if (h.used > buf.size() - kHeaderBytes) return false;
  if (h.crc != PageCrc(h, buf.data() + kHeaderBytes)) return false;
  if (want_kind != 0 && h.kind != want_kind) return false;
  if (check_epoch && h.epoch != want_epoch) return false;
  if (check_index && h.index != want_index) return false;
  if (out != nullptr) *out = h;
  return true;
}

}  // namespace

uint32_t SsdMetadataJournal::RegionPagesFor(int64_t num_frames,
                                            uint32_t page_bytes) {
  TURBOBP_CHECK(page_bytes > kHeaderBytes + kRecordBytes);
  const uint32_t per_page = (page_bytes - kHeaderBytes) / kRecordBytes;
  const uint32_t snap_cap = static_cast<uint32_t>(
      (num_frames + per_page - 1) / per_page);
  const uint32_t append_cap = std::max<uint32_t>(4, snap_cap);
  return 2 * (1 + snap_cap + append_cap);
}

SsdMetadataJournal::SsdMetadataJournal(StorageDevice* device,
                                       uint64_t region_base,
                                       uint32_t region_pages,
                                       SnapshotFn snapshot_fn)
    : device_(device),
      region_base_(region_base),
      region_pages_(region_pages),
      page_bytes_(device->page_bytes()),
      records_per_page_((page_bytes_ - kHeaderBytes) / kRecordBytes),
      snapshot_fn_(std::move(snapshot_fn)) {
  TURBOBP_CHECK(device != nullptr);
  TURBOBP_CHECK(records_per_page_ > 0);
  TURBOBP_CHECK(region_pages_ >= 2 * (1 + 1 + 4));
  TURBOBP_CHECK(region_base_ + region_pages_ <= device->num_pages());
  half_pages_ = region_pages_ / 2;
  // Split the half between snapshot and append area the same way
  // RegionPagesFor sized it: snapshot first, at least 4 append pages.
  const uint32_t body = half_pages_ - 1;
  snap_cap_ = std::min<uint32_t>(body - 4, (body + 1) / 2);
  append_cap_ = body - snap_cap_;
}

void SsdMetadataJournal::NotePut(uint64_t frame, PageId page_id, Lsn page_lsn,
                                 bool dirty) {
  Record r;
  r.frame = frame;
  r.page_id = page_id;
  r.page_lsn = page_lsn;
  r.dirty = dirty;
  TrackedLockGuard lock(mu_);
  pending_.push_back(r);
}

void SsdMetadataJournal::NoteErase(uint64_t frame) {
  Record r;
  r.frame = frame;
  r.erase = true;
  TrackedLockGuard lock(mu_);
  pending_.push_back(r);
}

IoResult SsdMetadataJournal::Maintain(IoContext& ctx, bool force) {
  bool expected = false;
  if (!flushing_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return IoResult{ctx.now, Status::Ok()};  // a flush is already running
  }
  const IoResult res = FlushExclusive(ctx, force, /*want_compact=*/false);
  flushing_.store(false, std::memory_order_release);
  return res;
}

IoResult SsdMetadataJournal::Compact(IoContext& ctx) {
  bool expected = false;
  if (!flushing_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return IoResult{ctx.now, Status::Ok()};
  }
  const IoResult res = FlushExclusive(ctx, /*force=*/true,
                                      /*want_compact=*/true);
  flushing_.store(false, std::memory_order_release);
  return res;
}

IoResult SsdMetadataJournal::FlushExclusive(IoContext& ctx, bool force,
                                            bool want_compact) {
  {
    TrackedLockGuard lock(mu_);
    tail_.insert(tail_.end(), pending_.begin(), pending_.end());
    pending_.clear();
  }
  if (!opened_ || want_compact) {
    if (!force && tail_.empty()) return IoResult{ctx.now, Status::Ok()};
    return CompactNow(ctx);
  }
  if (!force && tail_.size() < records_per_page_) {
    return IoResult{ctx.now, Status::Ok()};
  }
  return FlushTail(ctx, force);
}

IoResult SsdMetadataJournal::FlushTail(IoContext& ctx, bool force) {
  IoResult res{ctx.now, Status::Ok()};
  const int half = static_cast<int>(epoch_ % 2);
  std::vector<uint8_t> buf(page_bytes_);
  size_t consumed = 0;
  while (consumed < tail_.size()) {
    const size_t remaining = tail_.size() - consumed;
    if (remaining < records_per_page_ && !force) break;
    if (append_used_pages_ >= append_cap_) {
      // Append area exhausted: fold everything into a fresh epoch.
      tail_.erase(tail_.begin(),
                  tail_.begin() + static_cast<ptrdiff_t>(consumed));
      return CompactNow(ctx);
    }
    const size_t n = std::min<size_t>(records_per_page_, remaining);
    BuildRecordPage(kKindAppend, epoch_, append_used_pages_,
                    tail_.data() + consumed, n, buf);
    const IoResult w =
        WriteRegionPage(AppendBaseOf(half) + append_used_pages_, buf, ctx,
                        "ssd/journal-append");
    if (!w.ok()) {
      // The page may be torn; recovery's CRC scan truncates there. Keep
      // the records staged so a later flush rewrites the page intact.
      tail_.erase(tail_.begin(),
                  tail_.begin() + static_cast<ptrdiff_t>(consumed));
      return w;
    }
    res.time = std::max(res.time, w.time);
    if (n == records_per_page_) {
      records_appended_.fetch_add(static_cast<int64_t>(n),
                                  std::memory_order_relaxed);
      consumed += n;
      ++append_used_pages_;
    } else {
      // Partial tail page: the records stay staged and the same device page
      // is rewritten fuller next time (every intermediate image is sealed).
      break;
    }
  }
  tail_.erase(tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>(consumed));
  return res;
}

IoResult SsdMetadataJournal::CompactNow(IoContext& ctx) {
  if (!opened_) {
    // First contact with the device (fresh manager over a possibly-warm
    // SSD): learn the highest epoch any valid page carries, so the new
    // epoch supersedes every stale page, even in its own half.
    epoch_ = ScanMaxEpoch(ctx);
  }
  const uint64_t next = epoch_ + 1;
  const int half = static_cast<int>(next % 2);
  std::vector<Record> snap;
  if (snapshot_fn_) snap = snapshot_fn_();
  if (snap.size() > static_cast<size_t>(snap_cap_) * records_per_page_) {
    snap.resize(static_cast<size_t>(snap_cap_) * records_per_page_);
  }
  const uint32_t pages = static_cast<uint32_t>(
      (snap.size() + records_per_page_ - 1) / records_per_page_);
  IoResult res{ctx.now, Status::Ok()};
  std::vector<uint8_t> buf(page_bytes_);
  for (uint32_t i = 0; i < pages; ++i) {
    const size_t off = static_cast<size_t>(i) * records_per_page_;
    const size_t n = std::min<size_t>(records_per_page_, snap.size() - off);
    BuildRecordPage(kKindSnapshot, next, i, snap.data() + off, n, buf);
    const IoResult w = WriteRegionPage(SnapshotBaseOf(half) + i, buf, ctx,
                                       "ssd/journal-compact");
    if (!w.ok()) return w;  // old epoch stays authoritative; retry later
    res.time = std::max(res.time, w.time);
  }
  // Seal LAST: the epoch switch publishes atomically with this page. A
  // crash anywhere before leaves the previous epoch authoritative (the
  // "stale journal" recovery scenario).
  std::fill(buf.begin(), buf.end(), uint8_t{0});
  JournalPageHeader h;
  h.magic = kJournalMagic;
  h.kind = kKindSeal;
  h.epoch = next;
  h.index = 0;
  h.used = sizeof(SealPayload);
  SealPayload payload;
  payload.snapshot_pages = pages;
  payload.entry_count = snap.size();
  std::memcpy(buf.data() + kHeaderBytes, &payload, sizeof(payload));
  h.crc = PageCrc(h, buf.data() + kHeaderBytes);
  std::memcpy(buf.data(), &h, kHeaderBytes);
  const IoResult w =
      WriteRegionPage(SealPageOf(half), buf, ctx, "ssd/journal-seal");
  if (!w.ok()) return w;
  res.time = std::max(res.time, w.time);
  epoch_ = next;
  append_used_pages_ = 0;
  tail_.clear();  // the snapshot covers everything staged so far
  opened_ = true;
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return res;
}

uint64_t SsdMetadataJournal::ScanMaxEpoch(IoContext& ctx) {
  uint64_t max_epoch = 0;
  std::vector<uint8_t> buf(page_bytes_);
  for (uint32_t i = 0; i < region_pages_; ++i) {
    const IoResult r =
        device_->Read(region_base_ + i, 1, buf, ctx.now, ctx.charge);
    if (!r.ok()) continue;
    ctx.Wait(r.time);
    JournalPageHeader h;
    if (ValidatePage(buf, &h)) max_epoch = std::max(max_epoch, h.epoch);
  }
  return max_epoch;
}

IoResult SsdMetadataJournal::WriteRegionPage(uint64_t abs_page,
                                             std::span<const uint8_t> data,
                                             IoContext& ctx,
                                             const char* crash_point) {
  const IoResult w = device_->Write(abs_page, 1, data, ctx.now, ctx.charge);
  // The durable journal bytes just changed on the medium; `crash_point`
  // names which edge (append / compact / seal) for the torture harness.
  TURBOBP_CRASH_POINT(crash_point);
  if (!w.ok()) write_errors_.fetch_add(1, std::memory_order_relaxed);
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  return w;
}

SsdMetadataJournal::RecoveredState SsdMetadataJournal::Recover(
    IoContext& ctx) {
  RecoveredState out;
  bool expected = false;
  if (!flushing_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return out;  // startup-time API; a concurrent flush means misuse
  }
  // Learn the global max epoch first (also protects the epoch sequence of
  // the compaction that re-seals after recovery).
  const uint64_t max_epoch = ScanMaxEpoch(ctx);

  std::vector<uint8_t> buf(page_bytes_);
  struct Candidate {
    uint64_t epoch;
    uint32_t snapshot_pages;
    int half;
  };
  std::vector<Candidate> candidates;
  for (int half = 0; half < 2; ++half) {
    const IoResult r =
        device_->Read(SealPageOf(half), 1, buf, ctx.now, ctx.charge);
    if (!r.ok()) continue;
    ctx.Wait(r.time);
    JournalPageHeader h;
    if (!ValidatePage(buf, &h, kKindSeal)) continue;
    if (h.used < sizeof(SealPayload)) continue;
    SealPayload payload;
    std::memcpy(&payload, buf.data() + kHeaderBytes, sizeof(payload));
    if (payload.snapshot_pages > snap_cap_) continue;
    if (static_cast<int>(h.epoch % 2) != half) continue;
    candidates.push_back(Candidate{h.epoch, payload.snapshot_pages, half});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.epoch > b.epoch;
            });

  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const Candidate& cand = candidates[ci];
    std::unordered_map<uint64_t, RecoveredEntry> entries;
    bool snapshot_ok = true;
    for (uint32_t i = 0; i < cand.snapshot_pages && snapshot_ok; ++i) {
      const IoResult r = device_->Read(SnapshotBaseOf(cand.half) + i, 1, buf,
                                       ctx.now, ctx.charge);
      if (!r.ok()) {
        snapshot_ok = false;
        break;
      }
      ctx.Wait(r.time);
      JournalPageHeader h;
      if (!ValidatePage(buf, &h, kKindSnapshot, cand.epoch,
                        /*check_epoch=*/true, i, /*check_index=*/true)) {
        snapshot_ok = false;
        break;
      }
      for (uint32_t j = 0; j * kRecordBytes + kRecordBytes <= h.used; ++j) {
        const Record rec =
            DecodeRecord(buf.data() + kHeaderBytes + j * kRecordBytes);
        if (rec.erase) {
          entries.erase(rec.frame);
        } else {
          entries[rec.frame] =
              RecoveredEntry{rec.page_id, rec.page_lsn, rec.dirty};
        }
      }
    }
    if (!snapshot_ok) {
      // A torn or overwritten snapshot makes the whole epoch unusable
      // (records could be missing from the middle, not just the tail).
      continue;
    }
    out.valid = true;
    out.epoch = cand.epoch;
    out.half = cand.half;
    // Fell back if a newer epoch existed but was unusable — either its seal
    // validated and its snapshot did not (ci > 0), or the seal itself was
    // destroyed while CRC-valid pages of the newer epoch survive elsewhere
    // in the region (max_epoch > adopted epoch).
    out.fell_back = ci > 0 || max_epoch > cand.epoch;
    out.snapshot_pages = cand.snapshot_pages;
    // Append scan: consume sealed pages in index order; stop at the first
    // invalid page. A CRC-torn page that still carries this epoch's magic
    // header is a torn tail; anything else is just end-of-log residue.
    for (uint32_t i = 0; i < append_cap_; ++i) {
      const IoResult r = device_->Read(AppendBaseOf(cand.half) + i, 1, buf,
                                       ctx.now, ctx.charge);
      if (!r.ok()) {
        out.torn_tail = true;
        break;
      }
      ctx.Wait(r.time);
      JournalPageHeader h;
      if (!ValidatePage(buf, &h, kKindAppend, cand.epoch,
                        /*check_epoch=*/true, i, /*check_index=*/true)) {
        JournalPageHeader raw;
        std::memcpy(&raw, buf.data(), kHeaderBytes);
        out.torn_tail = raw.magic == kJournalMagic &&
                        raw.kind == kKindAppend && raw.epoch == cand.epoch;
        break;
      }
      for (uint32_t j = 0; j * kRecordBytes + kRecordBytes <= h.used; ++j) {
        const Record rec =
            DecodeRecord(buf.data() + kHeaderBytes + j * kRecordBytes);
        if (rec.erase) {
          entries.erase(rec.frame);
        } else {
          entries[rec.frame] =
              RecoveredEntry{rec.page_id, rec.page_lsn, rec.dirty};
        }
        ++out.append_records;
      }
      ++out.append_pages;
    }
    out.entries = std::move(entries);
    break;
  }

  // Future epochs must supersede everything on the device, including pages
  // of epochs we did not adopt.
  epoch_ = std::max(max_epoch, out.epoch);
  opened_ = out.valid;
  append_used_pages_ = out.valid ? out.append_pages : 0;
  tail_.clear();
  flushing_.store(false, std::memory_order_release);
  return out;
}

}  // namespace turbobp
