#ifndef TURBOBP_CORE_CLEAN_WRITE_H_
#define TURBOBP_CORE_CLEAN_WRITE_H_

#include "core/ssd_cache_base.h"

namespace turbobp {

// The clean-write (CW) design of Section 2.3.1: only clean pages are ever
// cached on the SSD. A dirty page evicted from the memory buffer pool goes
// to disk alone, so the SSD copy of every page is always identical to the
// disk copy and no checkpoint or recovery changes are needed. CW mainly
// helps read-mostly working sets; in every experiment of the paper it loses
// to DW and LC.
class CleanWriteCache : public SsdCacheBase {
 public:
  using SsdCacheBase::SsdCacheBase;

  SsdDesign design() const override { return SsdDesign::kCleanWrite; }

  EvictionOutcome OnEvictDirty(PageId pid, std::span<const uint8_t> data,
                               AccessKind kind, Lsn page_lsn,
                               IoContext& ctx) override {
    // Never cached: the page only goes to the database on disk.
    return EvictionOutcome{/*write_to_disk=*/true, /*cached_on_ssd=*/false};
  }
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_CLEAN_WRITE_H_
