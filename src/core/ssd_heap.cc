#include "core/ssd_heap.h"

#include <utility>

#include "common/status.h"

namespace turbobp {

SsdSplitHeap::SsdSplitHeap(SsdBufferTable* table, KeyFn key)
    : table_(table), key_(std::move(key)) {
  TURBOBP_CHECK(table != nullptr);
  slots_.assign(static_cast<size_t>(table->capacity()), -1);
  side_.assign(static_cast<size_t>(table->capacity()), kNone);
}

void SsdSplitHeap::Place(int side, int32_t i, int32_t rec) {
  slots_[Phys(side, i)] = rec;
  table_->record(rec).heap_pos = i;
}

void SsdSplitHeap::Insert(Side side, int32_t rec) {
  TURBOBP_DCHECK(side_[rec] == kNone);
  TURBOBP_CHECK(size_[kClean] + size_[kDirty] <
                static_cast<int32_t>(slots_.size()));
  side_[rec] = static_cast<int8_t>(side);
  const int32_t i = size_[side]++;
  Place(side, i, rec);
  SiftUp(side, i);
}

void SsdSplitHeap::Remove(int32_t rec) {
  const int8_t s = side_[rec];
  if (s == kNone) return;
  EraseAt(static_cast<Side>(s), table_->record(rec).heap_pos);
}

void SsdSplitHeap::EraseAt(Side side, int32_t i) {
  const int32_t victim = SlotAt(side, i);
  const int32_t last = --size_[side];
  side_[victim] = kNone;
  table_->record(victim).heap_pos = -1;
  if (i != last) {
    const int32_t moved = SlotAt(side, last);
    Place(side, i, moved);
    SiftUp(side, i);
    SiftDown(side, i);
  }
  slots_[Phys(side, last)] = -1;
}

void SsdSplitHeap::UpdateKey(int32_t rec) {
  const int8_t s = side_[rec];
  if (s == kNone) return;
  const int32_t i = table_->record(rec).heap_pos;
  SiftUp(s, i);
  SiftDown(s, table_->record(rec).heap_pos);
}

void SsdSplitHeap::DirtyToClean(int32_t rec) {
  TURBOBP_DCHECK(side_[rec] == kDirty);
  EraseAt(kDirty, table_->record(rec).heap_pos);
  Insert(kClean, rec);
}

void SsdSplitHeap::SiftUp(int side, int32_t i) {
  const int32_t rec = SlotAt(side, i);
  const double k = key_(rec);
  while (i > 0) {
    const int32_t parent = (i - 1) / 2;
    const int32_t prec = SlotAt(side, parent);
    if (key_(prec) <= k) break;
    Place(side, i, prec);
    i = parent;
  }
  Place(side, i, rec);
}

void SsdSplitHeap::SiftDown(int side, int32_t i) {
  const int32_t n = size_[side];
  const int32_t rec = SlotAt(side, i);
  const double k = key_(rec);
  while (true) {
    int32_t child = 2 * i + 1;
    if (child >= n) break;
    double ck = key_(SlotAt(side, child));
    if (child + 1 < n) {
      const double rk = key_(SlotAt(side, child + 1));
      if (rk < ck) {
        ck = rk;
        ++child;
      }
    }
    if (ck >= k) break;
    Place(side, i, SlotAt(side, child));
    i = child;
  }
  Place(side, i, rec);
}

bool SsdSplitHeap::CheckInvariants() const {
  for (int side = kClean; side <= kDirty; ++side) {
    for (int32_t i = 0; i < size_[side]; ++i) {
      const int32_t rec = SlotAt(side, i);
      if (rec < 0) return false;
      if (side_[rec] != side) return false;
      if (table_->record(rec).heap_pos != i) return false;
      if (i > 0 && key_(SlotAt(side, (i - 1) / 2)) > key_(rec)) return false;
    }
  }
  // The two heaps must not overlap.
  return size_[kClean] + size_[kDirty] <= static_cast<int32_t>(slots_.size());
}

}  // namespace turbobp
