#ifndef TURBOBP_CORE_SSD_HEAP_H_
#define TURBOBP_CORE_SSD_HEAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/ssd_buffer_table.h"

namespace turbobp {

class InvariantAuditor;

// The SSD heap array of Figure 4: a single array of `capacity` slots hosting
// two indexed binary min-heaps that grow toward each other. The *clean*
// heap keeps its root (the replacement victim) at slot 0 and grows right;
// the *dirty* heap keeps its root (the page the LC cleaner handles next) at
// the last slot and grows left. Each slot holds a record index; each record
// stores its logical heap position so key updates and removals are
// O(log n). Keys are supplied by a callable so the LRU-2 designs (key =
// penultimate access time) and TAC (key = extent temperature) share the
// structure.
class SsdSplitHeap {
 public:
  using KeyFn = std::function<double(int32_t rec)>;

  SsdSplitHeap(SsdBufferTable* table, KeyFn key);

  void InsertClean(int32_t rec) { Insert(kClean, rec); }
  void InsertDirty(int32_t rec) { Insert(kDirty, rec); }

  // Removes `rec` from whichever heap contains it. No-op if absent.
  void Remove(int32_t rec);

  // Re-establishes heap order after `rec`'s key changed.
  void UpdateKey(int32_t rec);

  // Moves `rec` from the dirty heap to the clean heap (after cleaning).
  void DirtyToClean(int32_t rec);

  // Root (minimum key) of each heap; -1 when empty.
  int32_t CleanRoot() const { return size_[kClean] ? SlotAt(kClean, 0) : -1; }
  int32_t DirtyRoot() const { return size_[kDirty] ? SlotAt(kDirty, 0) : -1; }

  int32_t clean_size() const { return size_[kClean]; }
  int32_t dirty_size() const { return size_[kDirty]; }
  bool Contains(int32_t rec) const { return side_[rec] != kNone; }
  bool IsDirtySide(int32_t rec) const { return side_[rec] == kDirty; }

  // Validates both heap-order and position invariants (tests).
  bool CheckInvariants() const;

 private:
  friend class InvariantAuditor;  // walks slots read-only

  enum Side : int8_t { kNone = -1, kClean = 0, kDirty = 1 };

  // Physical slot of logical index i on a side: the clean heap is stored
  // left-to-right, the dirty heap mirrored right-to-left.
  size_t Phys(int side, int32_t i) const {
    return side == kClean ? static_cast<size_t>(i)
                          : slots_.size() - 1 - static_cast<size_t>(i);
  }
  int32_t SlotAt(int side, int32_t i) const { return slots_[Phys(side, i)]; }
  void Place(int side, int32_t i, int32_t rec);

  void Insert(Side side, int32_t rec);
  void SiftUp(int side, int32_t i);
  void SiftDown(int side, int32_t i);
  void EraseAt(Side side, int32_t i);

  SsdBufferTable* table_;
  KeyFn key_;
  std::vector<int32_t> slots_;
  std::vector<int8_t> side_;  // per-record side membership
  int32_t size_[2] = {0, 0};
};

}  // namespace turbobp

#endif  // TURBOBP_CORE_SSD_HEAP_H_
