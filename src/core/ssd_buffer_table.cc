#include "core/ssd_buffer_table.h"

#include <bit>

#include "common/status.h"

namespace turbobp {

SsdBufferTable::SsdBufferTable(int32_t capacity) {
  TURBOBP_CHECK(capacity > 0);
  records_.resize(static_cast<size_t>(capacity));
  // 2x records, rounded to a power of two, keeps chains short.
  const uint64_t nbuckets =
      std::bit_ceil(static_cast<uint64_t>(capacity) * 2);
  buckets_.assign(nbuckets, -1);
  bucket_mask_ = nbuckets - 1;
  // Thread the initial free list through the records.
  for (int32_t i = 0; i < capacity; ++i) {
    records_[static_cast<size_t>(i)].free_next = i + 1 < capacity ? i + 1 : -1;
  }
  free_head_ = 0;
}

size_t SsdBufferTable::BucketOf(PageId pid) const {
  // Fibonacci hashing spreads dense page ids.
  return static_cast<size_t>((pid * 0x9E3779B97F4A7C15ull) >> 13 &
                             bucket_mask_);
}

int32_t SsdBufferTable::Lookup(PageId pid) const {
  int32_t i = buckets_[BucketOf(pid)];
  while (i != -1) {
    const SsdFrameRecord& r = records_[static_cast<size_t>(i)];
    if (r.page_id == pid) return i;
    i = r.hash_next;
  }
  return -1;
}

void SsdBufferTable::InsertHash(int32_t rec) {
  SsdFrameRecord& r = records_[static_cast<size_t>(rec)];
  TURBOBP_DCHECK(r.page_id != kInvalidPageId);
  const size_t b = BucketOf(r.page_id);
  r.hash_next = buckets_[b];
  buckets_[b] = rec;
}

void SsdBufferTable::RemoveHash(int32_t rec) {
  SsdFrameRecord& r = records_[static_cast<size_t>(rec)];
  const size_t b = BucketOf(r.page_id);
  int32_t i = buckets_[b];
  if (i == rec) {
    buckets_[b] = r.hash_next;
    r.hash_next = -1;
    return;
  }
  while (i != -1) {
    SsdFrameRecord& prev = records_[static_cast<size_t>(i)];
    if (prev.hash_next == rec) {
      prev.hash_next = r.hash_next;
      r.hash_next = -1;
      return;
    }
    i = prev.hash_next;
  }
  Panic(__FILE__, __LINE__, "record not found in SSD hash chain");
}

int32_t SsdBufferTable::PopFree() {
  if (free_head_ == -1) return -1;
  const int32_t rec = free_head_;
  SsdFrameRecord& r = records_[static_cast<size_t>(rec)];
  free_head_ = r.free_next;
  r.free_next = -1;
  ++used_;
  return rec;
}

void SsdBufferTable::PushFree(int32_t rec) {
  SsdFrameRecord& r = records_[static_cast<size_t>(rec)];
  TURBOBP_DCHECK(r.heap_pos == -1);
  r = SsdFrameRecord{};
  r.free_next = free_head_;
  free_head_ = rec;
  --used_;
}

}  // namespace turbobp
