#include "core/lazy_cleaning.h"

#include <algorithm>

#include "common/status.h"
#include "fault/crash_point.h"
#include "io/async_io_engine.h"
#include "storage/page.h"

namespace turbobp {

LazyCleaningCache::LazyCleaningCache(StorageDevice* ssd_device,
                                     DiskManager* disk,
                                     const SsdCacheOptions& options,
                                     SimExecutor* executor)
    : SsdCacheBase(ssd_device, disk, options, executor) {
  TURBOBP_CHECK(disk != nullptr);
}

EvictionOutcome LazyCleaningCache::OnEvictDirty(PageId pid,
                                                std::span<const uint8_t> data,
                                                AccessKind kind, Lsn page_lsn,
                                                IoContext& ctx) {
  MaybeDegrade(ctx);
  EvictionOutcome outcome;
  // Degraded: behave exactly like NoSsdManager (the caller writes to disk).
  if (degraded()) return outcome;
  // While a checkpoint runs, LC stops caching new dirty pages (Section 3.2).
  const bool in_ckpt = in_checkpoint_.load(std::memory_order_acquire);
  const bool allowed =
      !in_ckpt && AdmissionAllows(kind) && !ThrottleBlocks(ctx.now);
  if (allowed &&
      AdmitPage(pid, data, kind, /*dirty=*/true, page_lsn, ctx)) {
    // The SSD absorbed the page: no disk write now; the cleaner (or a
    // checkpoint) will copy it to disk eventually.
    outcome.write_to_disk = false;
    outcome.cached_on_ssd = true;
    MaybeWakeCleaner(ctx.now);
  } else {
    outcome.write_to_disk = true;
    if (!in_ckpt) {
      if (!AdmissionAllows(kind)) {
        Counters::Bump(counters_.rejected_sequential);
      } else if (ThrottleBlocks(ctx.now)) {
        Counters::Bump(counters_.throttled);
      }
    }
  }
  return outcome;
}

void LazyCleaningCache::MaybeWakeCleaner(Time now) {
  if (dirty_frames_.load() <= HighWatermark()) return;
  if (cleaner_running_.exchange(true, std::memory_order_acq_rel)) return;
  cleaner_wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (executor_ != nullptr) {
    executor_->ScheduleAt(std::max(now, executor_->now()),
                          [this] { CleanerStep(); });
  } else {
    // No executor (real-file mode): clean synchronously to the watermark.
    IoContext ctx;
    ctx.now = now;
    while (dirty_frames_.load() > LowWatermark()) {
      if (CleanOneGroup(ctx) == 0) break;
    }
    cleaner_running_.store(false, std::memory_order_release);
  }
}

void LazyCleaningCache::CleanerStep() {
  if (dirty_frames_.load() <= LowWatermark()) {
    cleaner_running_.store(false, std::memory_order_release);
    return;
  }
  IoContext ctx;
  ctx.now = executor_->now();
  ctx.executor = executor_;
  const Time done = CleanOneGroup(ctx);
  if (done == 0) {
    cleaner_running_.store(false, std::memory_order_release);
    return;
  }
  // The cleaner processes one group at a time, paced by the disk write; this
  // is what consumes a visible share of disk bandwidth once lambda is
  // crossed (the throughput drop in Figure 6(a)).
  executor_->ScheduleAt(std::max(done, executor_->now()),
                        [this] { CleanerStep(); });
}

bool LazyCleaningCache::OldestDirty(Partition** part, int32_t* rec) {
  double best_key = 0;
  *part = nullptr;
  *rec = -1;
  for (auto& p : partitions_) {
    TrackedLockGuard lock(p->mu);
    const int32_t root = p->heap.DirtyRoot();
    if (root == -1) continue;
    const double key = static_cast<double>(p->table.record(root).Lru2Key());
    if (*rec == -1 || key < best_key) {
      best_key = key;
      *part = p.get();
      *rec = root;
    }
  }
  return *rec != -1;
}

Time LazyCleaningCache::CleanOneGroup(IoContext& ctx) {
  if (degraded()) return 0;  // the degrade path already drained what it could
  Partition* seed_part;
  int32_t seed_rec;
  if (!OldestDirty(&seed_part, &seed_rec)) return 0;

  PageId seed_pid;
  {
    TrackedLockGuard lock(seed_part->mu);
    // Re-validate under the lock (the root may have moved).
    if (seed_part->table.record(seed_rec).state != SsdFrameState::kDirty) {
      return ctx.now + 1;  // retry next step
    }
    seed_pid = seed_part->table.record(seed_rec).page_id;
  }

  // Group cleaning (Section 3.3.5): gather up to alpha dirty SSD pages with
  // *consecutive disk addresses* starting at the seed, so the copy-out is
  // one large sequential disk write.
  const uint32_t page_bytes = disk_->page_bytes();
  std::vector<uint8_t> buffer;
  // What was staged, with the record's page id and LSN at staging time —
  // the mark-clean pass below uses them to detect frames re-dirtied (or
  // recycled) between the SSD read and the re-acquired latch.
  struct Staged {
    Partition* part;
    int32_t rec;
    PageId pid;
    Lsn lsn_at_stage;
  };
  std::vector<Staged> group;
  Time last_ssd_read = ctx.now;
  for (int i = 0; i < options_.lc_group_pages; ++i) {
    const PageId pid = seed_pid + static_cast<PageId>(i);
    Partition& part = PartitionFor(pid);
    TrackedLockGuard lock(part.mu);
    const int32_t rec = part.table.Lookup(pid);
    if (rec == -1 ||
        part.table.record(rec).state != SsdFrameState::kDirty) {
      if (i == 0) return ctx.now + 1;  // seed vanished; retry
      break;
    }
    // Pages cannot move between devices directly: read the dirty page from
    // the SSD into memory first — verified, so a corrupt frame is never
    // copied over the disk's (older but intact) version of the page.
    buffer.resize(buffer.size() + page_bytes);
    IoContext read_ctx = ctx;
    const Status rs = ReadFrameVerified(
        part, rec, pid,
        std::span<uint8_t>(buffer.data() + buffer.size() - page_bytes,
                           page_bytes),
        read_ctx);
    if (!rs.ok()) {
      if (rs.IsCorruption()) {
        // The only current copy is damaged beyond re-reading.
        QuarantineFrameLocked(part, rec);
        RecordLostPage(pid);
      }
      buffer.resize(buffer.size() - page_bytes);
      if (i == 0 && group.empty()) {
        // Nothing gathered; transient errors retry next step (quarantine
        // above guarantees progress for persistent corruption).
        return degraded() ? 0 : ctx.now + 1;
      }
      break;
    }
    last_ssd_read = std::max(last_ssd_read, read_ctx.now);
    group.push_back({&part, rec, pid, part.table.record(rec).page_lsn});
  }
  if (group.empty()) return degraded() ? 0 : ctx.now + 1;

  // The group is staged in memory; nothing has reached the disk yet. A
  // crash here loses no durability (the SSD still holds the dirty copies,
  // and the log covers them from the previous checkpoint).
  TURBOBP_CRASH_POINT("lc/clean-read");

  // One multi-page disk write for the whole group, arriving after the SSD
  // reads finished. (The WAL rule was satisfied when these pages were first
  // admitted: the buffer pool forces the log before any dirty-page write.)
  IoContext write_ctx = ctx;
  write_ctx.now = last_ssd_read;
  Time done;
  if (options_.disk_io_engine != nullptr) {
    // Deep-queue path: one engine request per group page. Healthy groups
    // still reach the device as coalesced vectored writes, but a transient
    // EIO makes the engine split the batch and retry ONLY the failing page
    // — DiskManager::WritePages' whole-request retry would re-write every
    // already-durable neighbour in the group.
    for (size_t i = 0; i < group.size(); ++i) {
      AsyncIoRequest req;
      req.op = IoOp::kWrite;
      req.first_page = group[i].pid;
      req.num_pages = 1;
      req.data = std::span<const uint8_t>(
          buffer.data() + i * page_bytes, page_bytes);
      req.on_complete = [](const IoCompletion& c) {
        // The disk array is the durable home; failure past the engine's
        // bounded per-request retry has no fallback (serial-path parity).
        TURBOBP_CHECK_OK(c.result.status);
      };
      options_.disk_io_engine->Submit(req, write_ctx);
    }
    done = options_.disk_io_engine->Drain(write_ctx);
  } else {
    const IoResult wres = disk_->WritePages(
        seed_pid, static_cast<uint32_t>(group.size()), buffer, write_ctx);
    // The disk array is the durable home; its failure has no fallback.
    TURBOBP_CHECK_OK(wres.status);
    done = wres.time;
  }
  // The SSD→disk copy landed but the frames are still marked dirty: a crash
  // here must be harmless in either direction (the copy is idempotent).
  TURBOBP_CRASH_POINT("lc/clean-disk-write");

  // Mark the group clean: move records from the dirty heap to the clean heap.
  for (size_t i = 0; i < group.size(); ++i) {
    Partition& part = *group[i].part;
    const int32_t rec = group[i].rec;
    // The LSN of the image that actually reached the disk, read from the
    // staged copy's own header.
    const Lsn staged_lsn =
        PageView(buffer.data() + i * page_bytes, page_bytes).header().lsn;
    TrackedLockGuard lock(part.mu);
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state != SsdFrameState::kDirty) continue;  // raced with invalidate
    if (r.page_id != group[i].pid || r.page_lsn != group[i].lsn_at_stage) {
      // The frame was re-dirtied with a newer image (or recycled for a
      // different page) after we staged it; the disk now holds the older
      // copy, so the frame must stay dirty (the cleaner will revisit it).
      continue;
    }
    r.state = SsdFrameState::kClean;
    // Track the staged image's content LSN: the restart extension and the
    // metadata journal verify a restored frame's on-page header against it.
    r.page_lsn = staged_lsn;
    dirty_frames_.fetch_sub(1);
    part.heap.DirtyToClean(rec);
    NoteJournalPut(FrameOf(part, rec), r.page_id, staged_lsn,
                   /*dirty=*/false);
  }
  Counters::Bump(counters_.cleaner_disk_writes,
                 static_cast<int64_t>(group.size()));
  Counters::Bump(counters_.cleaner_io_requests);
  // Group fully cleaned and accounted (dirty counters decremented).
  TURBOBP_CRASH_POINT("lc/clean-marked");
  MaintainJournal(ctx);
  return done;
}

void LazyCleaningCache::OnPartitionDegrade(Partition& part, IoContext& ctx) {
  // Emergency cleaner flush for one partition: its dirty frames hold the
  // *only* current copies of their pages. Salvage every frame that still
  // reads back verifiably (bounded retries absorb transient errors) to
  // disk; the rest become lost pages, served only by a hard error until
  // WAL redo or a full rewrite supersedes them. The caller
  // (DegradePartition) holds part.mu across salvage, purge and the
  // pass-through publish, so no reader can observe the flag while a dirty
  // frame still waits here.
  std::vector<uint8_t> buf(disk_->page_bytes());
  for (int32_t rec = 0; rec < part.table.capacity(); ++rec) {
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state != SsdFrameState::kDirty) continue;
    const PageId pid = r.page_id;
    const Status rs = ReadFrameVerified(part, rec, pid, buf, ctx);
    if (rs.ok()) {
      const IoResult w = disk_->WritePage(pid, buf, ctx);
      TURBOBP_CHECK_OK(w.status);
      ctx.Wait(w.time);
      // The salvage copy reached the disk; the frame is still marked
      // dirty, so a crash in either half of this window is idempotent.
      TURBOBP_CRASH_POINT("lc/degrade-salvage");
      r.state = SsdFrameState::kClean;
      r.page_lsn = PageView(buf.data(), disk_->page_bytes()).header().lsn;
      dirty_frames_.fetch_sub(1);
      part.heap.DirtyToClean(rec);
      Counters::Bump(counters_.emergency_cleaned);
    } else {
      QuarantineFrameLocked(part, rec);
      RecordLostPage(pid);
    }
  }
}

IoResult LazyCleaningCache::FlushAllDirty(IoContext& ctx) {
  Time last = ctx.now;
  const int64_t lost_before = lost_live_.load(std::memory_order_acquire);
  int stalls = 0;
  while (dirty_frames_.load() > 0) {
    const int64_t dirty_before = dirty_frames_.load();
    IoContext step_ctx = ctx;
    step_ctx.now = ctx.now;
    const Time done = CleanOneGroup(step_ctx);
    if (done == 0) break;  // degraded mid-drain; salvage took the rest
    last = std::max(last, done);
    // The checkpoint drains the SSD as fast as the devices allow; each
    // group's I/O lands on the device timelines, so the elapsed time is
    // captured by the returned completion times.
    ctx.now = std::max(ctx.now, step_ctx.now);
    if (dirty_frames_.load() >= dirty_before) {
      // A CleanOneGroup round that cleaned nothing (transient read errors
      // retry forever from the cleaner's point of view). Bound the stall:
      // a checkpoint must fail rather than spin on a flaky device.
      if (++stalls > options_.io_retry_limit) break;
    } else {
      stalls = 0;
    }
  }
  // Failure is atomic for the caller: any dirty frame left on the SSD — or
  // quarantined mid-drain (its updates are stranded above the disk copy) —
  // means the disk is NOT current, and the checkpoint must keep the old
  // recovery LSN so redo from the previous checkpoint heals those pages.
  Status status = Status::Ok();
  if (dirty_frames_.load() > 0) {
    status = degraded()
                 ? Status::Unavailable("SSD degraded mid checkpoint flush")
                 : Status::IoError("dirty SSD frames not drained");
  } else if (lost_live_.load(std::memory_order_acquire) > lost_before) {
    status = Status::IoError("dirty SSD frame lost during checkpoint flush");
  }
  if (!status.ok()) Counters::Bump(counters_.checkpoint_flush_failures);
  // Chain to the base hook: the checkpoint is also the journal's force-flush
  // point (persistent cache). Its outcome never overrides the drain status.
  SsdCacheBase::FlushAllDirty(ctx);
  return IoResult{last, status};
}

}  // namespace turbobp
