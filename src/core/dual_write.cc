#include "core/dual_write.h"

namespace turbobp {

EvictionOutcome DualWriteCache::OnEvictDirty(PageId pid,
                                             std::span<const uint8_t> data,
                                             AccessKind kind, Lsn page_lsn,
                                             IoContext& ctx) {
  MaybeDegrade(ctx);
  EvictionOutcome outcome;
  outcome.write_to_disk = true;  // always: write-through
  if (degraded()) return outcome;
  if (AdmissionAllows(kind) && !ThrottleBlocks(ctx.now)) {
    // The disk write happens "simultaneously" (the buffer pool issues it on
    // return); since both copies are written, the SSD entry is *clean* —
    // identical to the disk version.
    outcome.cached_on_ssd =
        AdmitPage(pid, data, kind, /*dirty=*/false, page_lsn, ctx);
  } else if (!AdmissionAllows(kind)) {
    Counters::Bump(counters_.rejected_sequential);
  } else {
    Counters::Bump(counters_.throttled);
  }
  return outcome;
}

void DualWriteCache::OnCheckpointWrite(PageId pid,
                                       std::span<const uint8_t> data,
                                       AccessKind kind, Lsn page_lsn,
                                       IoContext& ctx) {
  // Section 3.2: checkpointed dirty pages marked "random" are written to
  // the SSD as well as the disk, extending the eviction-only policy.
  if (kind != AccessKind::kRandom) return;
  if (ThrottleBlocks(ctx.now)) return;
  AdmitPage(pid, data, kind, /*dirty=*/false, page_lsn, ctx);
}

}  // namespace turbobp
