#include "core/ssd_cache_base.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "fault/crash_point.h"
#include "io/async_io_engine.h"
#include "sim/sim_executor.h"
#include "storage/page.h"

namespace turbobp {

SsdCacheBase::SsdCacheBase(StorageDevice* ssd_device, DiskManager* disk,
                           const SsdCacheOptions& options,
                           SimExecutor* executor)
    : options_(options),
      ssd_device_(ssd_device),
      disk_(disk),
      executor_(executor) {
  TURBOBP_CHECK(ssd_device != nullptr);
  TURBOBP_CHECK(options.num_frames > 0);
  TURBOBP_CHECK(options.num_partitions > 0);
  TURBOBP_CHECK(options.io_retry_limit > 0);
  TURBOBP_CHECK(ssd_device->num_pages() >=
                static_cast<uint64_t>(options.num_frames));
  const int n = options.num_partitions;
  const int64_t per_part = (options.num_frames + n - 1) / n;
  int64_t base = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t cap = std::min<int64_t>(per_part, options.num_frames - base);
    if (cap <= 0) break;
    // The heap's key function closes over the partition, which does not
    // exist until construction finishes; construct with a placeholder key
    // and install the real one immediately after.
    auto part =
        std::make_unique<Partition>(static_cast<int32_t>(cap), SsdSplitHeap::KeyFn{});
    Partition* p = part.get();
    p->heap = SsdSplitHeap(
        &p->table,
        [this, p](int32_t rec) { return HeapKeyForCallback(*p, rec); });
    p->frame_base = base;
    base += cap;
    partitions_.push_back(std::move(part));
  }
  if (options.persistent_cache) {
    const uint32_t region_pages = SsdMetadataJournal::RegionPagesFor(
        options.num_frames, ssd_device->page_bytes());
    TURBOBP_CHECK(ssd_device->num_pages() >=
                  static_cast<uint64_t>(options.num_frames) + region_pages);
    journal_ = std::make_unique<SsdMetadataJournal>(
        ssd_device, static_cast<uint64_t>(options.num_frames), region_pages,
        [this] {
          std::vector<SsdMetadataJournal::Record> recs;
          for (const CheckpointEntry& e : SnapshotForCheckpoint()) {
            SsdMetadataJournal::Record r;
            r.frame = e.frame;
            r.page_id = e.page_id;
            r.page_lsn = e.page_lsn;
            r.dirty = e.dirty;
            recs.push_back(r);
          }
          return recs;
        });
  }
  if (options.scrub_interval > 0 && executor_ != nullptr) {
    // Self-scheduling patrol actor (paced like LC's cleaner). Caller-driven
    // setups (tests, the chaos soak) leave scrub_interval at 0 and call
    // ScrubTick themselves. The weak liveness token lets a queued event
    // outlive this cache (Crash() rebuilds the manager) without firing into
    // freed memory, and StopBackground() stops the rescheduling chain.
    scrub_alive_ = std::make_shared<bool>(true);
    std::weak_ptr<bool> alive = scrub_alive_;
    executor_->ScheduleAt(executor_->now() + options.scrub_interval,
                          [this, alive] {
                            const auto a = alive.lock();
                            if (a != nullptr && *a) ScrubStep();
                          });
  }
}

double SsdCacheBase::HeapKey(const Partition& part, int32_t rec) const {
  return static_cast<double>(part.table.record(rec).Lru2Key());
}

SsdProbe SsdCacheBase::Probe(PageId pid) const {
  // A lost page still looks "newer than disk": the disk copy is stale and
  // the prefetch/expansion paths must not install it.
  if (IsLostPage(pid)) return SsdProbe::kNewerCopy;
  if (degraded()) return SsdProbe::kAbsent;
  const Partition& part = PartitionFor(pid);
  if (part.degraded.load(std::memory_order_acquire)) return SsdProbe::kAbsent;
  TrackedLockGuard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) return SsdProbe::kAbsent;
  switch (part.table.record(rec).state) {
    case SsdFrameState::kClean:
      return SsdProbe::kCleanCopy;
    case SsdFrameState::kDirty:
      return SsdProbe::kNewerCopy;
    default:
      return SsdProbe::kAbsent;
  }
}

bool SsdCacheBase::TryReadPage(PageId pid, std::span<uint8_t> out,
                               IoContext& ctx, Status* error) {
  MaybeDegrade(ctx);
  if (IsLostPage(pid)) {
    // The only current copy died with its SSD frame; the disk copy is
    // stale. Serving either would be silent corruption.
    if (error != nullptr) {
      *error = Status::IoError("newest copy of page lost with the ssd");
    }
    return false;
  }
  if (degraded()) {
    counters_.Classified(counters_.probe_misses);
    return false;
  }
  Partition& part = PartitionFor(pid);
  if (part.degraded.load(std::memory_order_acquire)) {
    // Safe to skip the latch: the flag is published only after the
    // partition was salvaged and purged under it (DegradePartition), so
    // observing it proves the partition holds nothing newer than disk. A
    // reader racing with an in-flight degrade sees the flag still false,
    // queues on the latch below, and finds an empty table.
    counters_.Classified(counters_.probe_misses);
    return false;
  }
  TrackedLockGuard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) {
    counters_.Classified(counters_.probe_misses);
    return false;
  }
  SsdFrameRecord& r = part.table.record(rec);
  if (r.state != SsdFrameState::kClean && r.state != SsdFrameState::kDirty) {
    counters_.Classified(counters_.probe_misses);
    return false;
  }
  const bool must_read = r.state == SsdFrameState::kDirty;
  // Throttle control (Section 3.3.2): when the SSD queue is saturated, read
  // from disk instead — unless the SSD copy is newer (correctness).
  if (!must_read && ThrottleBlocks(ctx.now)) {
    Counters::Bump(counters_.throttled);
    return false;
  }
  if (r.ready_at > ctx.now) {
    // The admission write that created this copy has not completed.
    if (!must_read) return false;  // clean copy also lives on disk
    ctx.Wait(r.ready_at);          // dirty copy exists only here
  }
  // A clean frame's disk copy is identical, so its read may hedge to disk
  // at the deadline; a dirty frame's may not (the SSD holds the only copy).
  const Status read =
      ReadFrameVerified(part, rec, pid, out, ctx, /*hedge_ok=*/!must_read);
  if (read.ok()) {
    r.Touch(ctx.now);
    part.heap.UpdateKey(rec);
    counters_.Classified(counters_.hits);
    // The paper attributes LC's TPC-C win to re-referenced dirty SSD pages
    // ("about 83% of the total SSD references are to dirty SSD pages").
    if (must_read) Counters::Bump(counters_.hits_dirty);
    return true;
  }
  if (read.IsCorruption()) {
    // The frame itself is bad (latent corruption or an old torn write that
    // survives re-reads): take it out of service for good.
    QuarantineFrameLocked(part, rec);
    if (must_read) RecordLostPage(pid);
  }
  if (must_read && error != nullptr) {
    *error = read.IsCorruption()
                 ? Status::IoError("newest copy of page lost with the ssd")
                 : read;
  }
  // Clean copies fall back to the (identical) disk copy: no client-visible
  // error, the read path simply misses.
  return false;
}

void SsdCacheBase::OnPageDirtied(PageId pid) {
  // A page being rewritten in the pool supersedes any lost SSD copy (the
  // NewPage full-rewrite path; partial updates cannot reach a lost page
  // because its fetch fails).
  ClearLostPage(pid);
  if (degraded()) return;
  Invalidate(pid);
}

void SsdCacheBase::Invalidate(PageId pid) {
  Partition& part = PartitionFor(pid);
  TrackedLockGuard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) return;
  SsdFrameRecord& r = part.table.record(rec);
  if (r.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
  DetachRecord(part, rec);
  part.table.PushFree(rec);
  used_frames_.fetch_sub(1);
  NoteJournalErase(FrameOf(part, rec));
  Counters::Bump(counters_.invalidations);
}

void SsdCacheBase::OnEvictClean(PageId pid, std::span<const uint8_t> data,
                                AccessKind kind, IoContext& ctx) {
  MaybeDegrade(ctx);
  if (degraded()) return;
  if (!AdmissionAllows(kind)) {
    Counters::Bump(counters_.rejected_sequential);
    return;
  }
  if (ThrottleBlocks(ctx.now)) {
    Counters::Bump(counters_.throttled);
    return;
  }
  AdmitPage(pid, data, kind, /*dirty=*/false, kInvalidLsn, ctx);
}

bool SsdCacheBase::AdmissionAllows(AccessKind kind) {
  // Aggressive filling (Section 3.3.1): cache everything until the SSD is
  // tau full; afterwards only randomly-accessed pages qualify, because only
  // those are faster to re-read from the SSD than from the striped disks.
  const int64_t used = used_frames_.load();
  if (static_cast<double>(used) <
      options_.aggressive_fill * static_cast<double>(options_.num_frames)) {
    return true;
  }
  return kind == AccessKind::kRandom;
}

bool SsdCacheBase::ThrottleBlocks(Time now) {
  return ssd_device_->QueueLength(now) > options_.throttle_queue_limit;
}

int32_t SsdCacheBase::PickVictim(Partition& part) {
  return part.heap.CleanRoot();
}

void SsdCacheBase::DetachRecord(Partition& part, int32_t rec) {
  if (part.heap.Contains(rec)) part.heap.Remove(rec);
  part.table.RemoveHash(rec);
}

bool SsdCacheBase::AdmitPage(PageId pid, std::span<const uint8_t> data,
                             AccessKind kind, bool dirty, Lsn page_lsn,
                             IoContext& ctx) {
  const bool admitted = AdmitPageImpl(pid, data, kind, dirty, page_lsn, ctx);
  // Journal maintenance runs after the partition latch is released (the
  // staged records were published under it; the device writes must not be).
  MaintainJournal(ctx);
  return admitted;
}

bool SsdCacheBase::AdmitPageImpl(PageId pid, std::span<const uint8_t> data,
                                 AccessKind kind, bool dirty, Lsn page_lsn,
                                 IoContext& ctx) {
  MaybeDegrade(ctx);
  if (degraded()) return false;
  Partition& part = PartitionFor(pid);
  if (part.degraded.load(std::memory_order_acquire)) return false;
  TrackedLockGuard lock(part.mu);
  if (part.degraded.load(std::memory_order_acquire)) {
    // The partition degraded while we queued on its latch (the pre-latch
    // check above is only a fast path). It has already been purged and the
    // pass-through flag published, so admitting now would strand a frame no
    // reader can see — for a dirty page, that frame would silently hold the
    // only current copy. Decline; dirty evictions fall back to disk.
    return false;
  }
  int32_t rec = part.table.Lookup(pid);
  if (rec != -1) {
    // Already cached. A clean re-admission is content-identical: refresh
    // usage only. A dirty admission over an existing entry supersedes it.
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state == SsdFrameState::kInvalid) return false;  // TAC handles
    r.Touch(ctx.now);
    if (dirty) {
      const IoResult w = WriteFrame(part, rec, data, ctx);
      if (!w.ok()) {
        // The frame content is now suspect (possibly torn); drop the entry
        // so the caller writes the page to disk instead.
        if (r.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
        DetachRecord(part, rec);
        part.table.PushFree(rec);
        used_frames_.fetch_sub(1);
        NoteJournalErase(FrameOf(part, rec));
        return false;
      }
      if (r.state != SsdFrameState::kDirty) {
        r.state = SsdFrameState::kDirty;
        dirty_frames_.fetch_add(1);
        if (part.heap.Contains(rec) && !part.heap.IsDirtySide(rec)) {
          part.heap.Remove(rec);
          part.heap.InsertDirty(rec);
        }
      }
      r.page_lsn = page_lsn;
      r.ready_at = w.time;
      NoteJournalPut(FrameOf(part, rec), pid, page_lsn, /*dirty=*/true);
    } else {
      part.heap.UpdateKey(rec);
    }
    return true;
  }

  rec = part.table.PopFree();
  if (rec == -1) {
    const int32_t victim = PickVictim(part);
    if (victim == -1) return false;  // nothing replaceable (all dirty)
    SsdFrameRecord& v = part.table.record(victim);
    if (v.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
    DetachRecord(part, victim);
    part.table.PushFree(victim);
    used_frames_.fetch_sub(1);
    NoteJournalErase(FrameOf(part, victim));
    Counters::Bump(counters_.evictions);
    rec = part.table.PopFree();
    TURBOBP_CHECK(rec != -1);
  }

  // Land the content before installing the mapping: a failed or torn write
  // must leave no record claiming the frame holds `pid`.
  const IoResult w = WriteFrame(part, rec, data, ctx);
  if (!w.ok()) {
    part.table.PushFree(rec);
    return false;
  }
  used_frames_.fetch_add(1);

  SsdFrameRecord& r = part.table.record(rec);
  r.page_id = pid;
  r.kind = kind;
  // Record the page's LSN even for clean admissions (read from the page
  // header): the restart extension needs it to prove a restored copy is
  // still the newest version of the page.
  r.page_lsn = page_lsn != kInvalidLsn
                   ? page_lsn
                   : PageView(const_cast<uint8_t*>(data.data()),
                              static_cast<uint32_t>(data.size()))
                         .header()
                         .lsn;
  r.state = dirty ? SsdFrameState::kDirty : SsdFrameState::kClean;
  r.access[0] = r.access[1] = 0;
  r.Touch(ctx.now);
  part.table.InsertHash(rec);
  if (dirty) {
    dirty_frames_.fetch_add(1);
    part.heap.InsertDirty(rec);
  } else {
    part.heap.InsertClean(rec);
  }
  r.ready_at = w.time;
  NoteJournalPut(FrameOf(part, rec), pid, r.page_lsn, dirty);
  Counters::Bump(counters_.admissions);
  // Mapping installed over freshly-landed frame content. For LC dirty
  // admissions this is the moment the SSD becomes the page's newest copy.
  TURBOBP_CRASH_POINT("ssd/admit");
  return true;
}

IoResult SsdCacheBase::WriteFrame(Partition& part, int32_t rec,
                                  std::span<const uint8_t> data,
                                  IoContext& ctx) {
  IoResult res;
  Time at = ctx.now;
  for (int attempt = 0; attempt < options_.io_retry_limit; ++attempt) {
    if (attempt > 0 && ctx.charge) at += options_.io_retry_backoff;
    res = ssd_device_->Write(FrameOf(part, rec), 1, data, at, ctx.charge);
    // The frame content just landed on the SSD medium (the partition latch
    // is held; the observer must not re-enter the cache).
    TURBOBP_CRASH_POINT("ssd/frame-write");
    if (res.ok()) return res;
    Counters::Bump(counters_.device_write_errors);
    RecordDeviceError(part, at);
    // A failed attempt still occupies the device until its completion time;
    // the next attempt's backoff counts from there, not from submission.
    if (ctx.charge) at = std::max(at, res.time);
    if (res.status.IsUnavailable()) break;  // dead device: retries are moot
  }
  return res;
}

IoResult SsdCacheBase::ReadFrame(Partition& part, int32_t rec,
                                 std::span<uint8_t> out, IoContext& ctx) {
  IoResult res =
      ssd_device_->Read(FrameOf(part, rec), 1, out, ctx.now, ctx.charge);
  if (res.ok()) {
    ctx.Wait(res.time);
  } else {
    Counters::Bump(counters_.device_read_errors);
    RecordDeviceError(part, ctx.now);
  }
  return res;
}

Status SsdCacheBase::ReadFrameVerified(Partition& part, int32_t rec, PageId pid,
                                       std::span<uint8_t> out, IoContext& ctx,
                                       bool hedge_ok) {
  Status last;
  for (int attempt = 0; attempt < options_.io_retry_limit; ++attempt) {
    if (attempt > 0) {
      Counters::Bump(counters_.read_retries);
      if (ctx.charge) ctx.now += options_.io_retry_backoff;
    }
    const Time issued = ctx.now;
    const IoResult res =
        ssd_device_->Read(FrameOf(part, rec), 1, out, ctx.now, ctx.charge);
    if (!res.ok()) {
      last = res.status;
      Counters::Bump(counters_.device_read_errors);
      RecordDeviceError(part, ctx.now);
      // A failed attempt still occupied the device until its completion
      // time: charge it, so latency spikes and retry backoff compose the
      // same way on failing and succeeding attempts.
      ctx.Wait(res.time);
      if (res.status.IsUnavailable()) break;
      continue;
    }
    // The deadline clock starts when the device begins *servicing* the
    // request, not when it arrives: time spent queued behind other traffic
    // is congestion (the throttle controller's business), and counting it
    // as sickness makes a busy cache degrade its own healthy partitions —
    // a self-sustaining cascade, since every purge-and-refill adds more
    // queueing. Devices that do not model a queue report service_start=0
    // and fall back to the arrival instant.
    const Time svc_begin = std::max(issued, res.service_start);
    if (options_.read_deadline > 0 && ctx.charge &&
        res.time > svc_begin + options_.read_deadline) {
      // The device answered, but too late: a hung request. Charge the
      // partition's budget either way; for clean frames (the disk copy
      // is identical) hedge the read to disk at the deadline instead of
      // waiting out the stall.
      const Time deadline_at = svc_begin + options_.read_deadline;
      Counters::Bump(counters_.io_timeouts);
      RecordDeviceError(part, deadline_at);
      if (hedge_ok && options_.hedge_reads) {
        ctx.Wait(deadline_at);
        // Scratch buffer: a failed hedge must not clobber the SSD data that
        // the fall-through verification below still wants to inspect.
        std::vector<uint8_t> hedge_buf(out.size());
        const Status ds = disk_->ReadPage(pid, hedge_buf, ctx);
        if (ds.ok()) {
          const PageView dv(hedge_buf.data(),
                            static_cast<uint32_t>(hedge_buf.size()));
          if (dv.header().page_id == pid && dv.VerifyChecksum()) {
            std::memcpy(out.data(), hedge_buf.data(), out.size());
            Counters::Bump(counters_.hedged_reads);
            return Status::Ok();
          }
        }
        // The disk hedge failed too; fall through and wait out the SSD
        // read — its data may still verify.
      }
    }
    ctx.Wait(res.time);
    const PageView v(out.data(), static_cast<uint32_t>(out.size()));
    if (v.header().page_id == pid && v.VerifyChecksum()) return Status::Ok();
    // A checksum mismatch may be a transient transfer flip (the medium is
    // fine) — a re-read decides. Persistent mismatch means the frame holds
    // damaged content.
    last = Status::Corruption("ssd frame failed checksum verification");
    Counters::Bump(counters_.frame_corruptions);
    RecordDeviceError(part, ctx.now);
  }
  return last.ok() ? Status::IoError("ssd frame read failed") : last;
}

void SsdCacheBase::QuarantineFrameLocked(Partition& part, int32_t rec) {
  SsdFrameRecord& r = part.table.record(rec);
  TURBOBP_CHECK(r.state != SsdFrameState::kFree &&
                r.state != SsdFrameState::kQuarantined);
  if (r.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
  if (r.state == SsdFrameState::kInvalid) invalid_frames_.fetch_sub(1);
  DetachRecord(part, rec);
  // The record is deliberately NOT pushed onto the free list: the frame's
  // flash cells are suspect and must never hold a page again. It still
  // counts toward table.used() (the auditor's free+used==capacity balance),
  // tracked separately by quarantined_frames_.
  r.page_id = kInvalidPageId;
  r.page_lsn = kInvalidLsn;
  r.ready_at = 0;
  r.state = SsdFrameState::kQuarantined;
  used_frames_.fetch_sub(1);
  quarantined_frames_.fetch_add(1);
  NoteJournalErase(FrameOf(part, rec));
}

void SsdCacheBase::QuarantineRestoredFrame(Partition& part, int32_t rec) {
  SsdFrameRecord& r = part.table.record(rec);
  // The record was just taken off the free list and never entered service:
  // no detach, no used-frame decrement — only the permanent out-of-service
  // marking (the auditor's free+used==capacity balance still holds, with
  // the record counted on the used side as quarantined).
  TURBOBP_CHECK(r.state == SsdFrameState::kFree);
  r.page_id = kInvalidPageId;
  r.page_lsn = kInvalidLsn;
  r.ready_at = 0;
  r.state = SsdFrameState::kQuarantined;
  quarantined_frames_.fetch_add(1);
}

void SsdCacheBase::RecordDeviceError(Partition& part, Time now) {
  device_errors_.fetch_add(1, std::memory_order_relaxed);
  // Time-decayed budget: a fresh window opens when the previous one lapsed.
  // All relaxed — in a race two errors may split across adjacent windows,
  // which only delays the degradation verdict by one event.
  const Time start = part.window_start.load(std::memory_order_relaxed);
  if (now - start > options_.error_window) {
    part.window_start.store(now, std::memory_order_relaxed);
    part.window_errors.store(1, std::memory_order_relaxed);
  } else {
    part.window_errors.fetch_add(1, std::memory_order_relaxed);
  }
  part.last_error_at.store(now, std::memory_order_relaxed);
}

void SsdCacheBase::RecordJournalError(Time now) {
  // The journal region shares the medium with every partition's frames:
  // charge all budgets (matching the old cache-global accounting).
  for (auto& partp : partitions_) RecordDeviceError(*partp, now);
}

int64_t SsdCacheBase::WindowErrors(const Partition& part, Time now) const {
  const Time start = part.window_start.load(std::memory_order_relaxed);
  if (now - start > options_.error_window) return 0;  // window lapsed
  return part.window_errors.load(std::memory_order_relaxed);
}

void SsdCacheBase::MaybeDegrade(IoContext& ctx) {
  if (degraded_.load(std::memory_order_acquire)) return;
  // Cheap hot-path early-out: nothing to scan unless an error landed since
  // the last sweep.
  const int64_t events = device_errors_.load(std::memory_order_relaxed);
  if (events == degrade_scanned_.load(std::memory_order_relaxed)) return;
  degrade_scanned_.store(events, std::memory_order_relaxed);
  for (auto& partp : partitions_) {
    Partition& part = *partp;
    if (part.degraded.load(std::memory_order_acquire)) continue;
    if (WindowErrors(part, ctx.now) < options_.degrade_error_limit) continue;
    DegradePartition(part, ctx);
    if (degraded_.load(std::memory_order_acquire)) return;  // kill switch
  }
}

void SsdCacheBase::EnterDegradedMode(IoContext& ctx) {
  bool expected = false;
  if (!degrade_entered_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    return;
  }
  // Take every partition through the per-partition salvage+purge+publish
  // sequence while the device may still answer. The terminal flag is
  // raised only afterwards: a reader that observes it skips every latch
  // and falls back to disk, so it must never be visible while a dirty
  // frame (the only current copy of its page) still sits in a table.
  for (auto& partp : partitions_) DegradePartition(*partp, ctx);
  degraded_.store(true, std::memory_order_release);
}

void SsdCacheBase::DegradePartition(Partition& part, IoContext& ctx) {
  bool expected = false;
  if (!part.degrading.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return;
  }
  {
    TrackedLockGuard lock(part.mu);
    // Salvage while the device may still answer (LC writes this partition's
    // dirty frames — the only newer copies — to disk), then purge (pass-
    // through writes go to disk, so any frame left behind would serve stale
    // data after a later re-enable), and only then publish the flag, all
    // under one latch hold. Readers treat part.degraded == true as a
    // license to skip the latch and fall back to disk; publishing it before
    // the salvage completed handed them stale disk copies of pages whose
    // only current version was a dirty frame still awaiting salvage.
    OnPartitionDegrade(part, ctx);
    PurgePartitionLocked(part);
    part.degraded.store(true, std::memory_order_release);
  }
  degraded_partitions_.fetch_add(1, std::memory_order_acq_rel);
  Counters::Bump(counters_.partitions_degraded);
  MaintainJournal(ctx);
  if (!options_.self_healing) {
    // The old terminal cliff: the first partition failure takes the whole
    // cache down for good.
    EnterDegradedMode(ctx);
  }
}

void SsdCacheBase::PurgePartitionLocked(Partition& part) {
  for (int32_t rec = 0; rec < part.capacity; ++rec) {
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state == SsdFrameState::kFree ||
        r.state == SsdFrameState::kQuarantined) {
      continue;
    }
    if (r.state == SsdFrameState::kDirty) {
      dirty_frames_.fetch_sub(1);
      // Defensive: the salvage hook already wrote (or lost-page-recorded)
      // every dirty frame; a frame still dirty here lost its only copy.
      RecordLostPage(r.page_id);
    }
    if (r.state == SsdFrameState::kInvalid) invalid_frames_.fetch_sub(1);
    const uint64_t frame = FrameOf(part, rec);
    DetachRecord(part, rec);
    part.table.PushFree(rec);
    used_frames_.fetch_sub(1);
    NoteJournalErase(frame);
  }
}

void SsdCacheBase::TryHealPartition(Partition& part, IoContext& ctx) {
  // Hysteresis gate 1: a minimum quiet window since the last error.
  if (ctx.now - part.last_error_at.load(std::memory_order_relaxed) <
      options_.quiet_window) {
    return;
  }
  // Canary probe: write a self-checksummed throwaway page to a free frame
  // and read it back. kInvalidPageId keeps a crash-surviving canary from
  // being re-attached by the lazy restart scan.
  int32_t rec = -1;
  {
    TrackedLockGuard lock(part.mu);
    rec = part.table.PopFree();
  }
  if (rec == -1) return;  // every cell quarantined: unhealable
  const uint32_t page_bytes = ssd_device_->page_bytes();
  std::vector<uint8_t> buf(page_bytes);
  PageView v(buf.data(), page_bytes);
  v.Format(kInvalidPageId, PageType::kRaw);
  std::memset(v.payload(), 0xC5, v.payload_bytes());
  v.SealChecksum();
  const IoResult w =
      ssd_device_->Write(FrameOf(part, rec), 1, buf, ctx.now, ctx.charge);
  // The canary just landed on (or bounced off) the suspect medium; a crash
  // here must leave recovery unaffected: the frame is free-listed and the
  // canary page self-identifies as no page at all.
  TURBOBP_CRASH_POINT("ssd/canary-write");
  bool probe_ok = false;
  if (w.ok()) {
    ctx.Wait(w.time);
    std::vector<uint8_t> readback(page_bytes);
    const IoResult r =
        ssd_device_->Read(FrameOf(part, rec), 1, readback, ctx.now, ctx.charge);
    if (r.ok()) {
      ctx.Wait(r.time);
      const PageView rv(readback.data(), page_bytes);
      probe_ok = rv.VerifyChecksum() &&
                 std::memcmp(readback.data(), buf.data(), page_bytes) == 0;
    }
  }
  {
    TrackedLockGuard lock(part.mu);
    part.table.PushFree(rec);
  }
  if (!probe_ok) {
    // The probe itself is evidence the medium is still sick; the error
    // extends the quiet window.
    RecordDeviceError(part, ctx.now);
    return;
  }
  // Hysteresis gate 2: the decayed budget must sit at or below the recover
  // threshold (<< degrade threshold), so a marginal device cannot flap.
  if (WindowErrors(part, ctx.now) > options_.recover_error_limit) return;
  part.window_errors.store(0, std::memory_order_relaxed);
  part.window_start.store(ctx.now, std::memory_order_relaxed);
  part.degraded.store(false, std::memory_order_release);
  degraded_partitions_.fetch_sub(1, std::memory_order_acq_rel);
  Counters::Bump(counters_.partitions_recovered);
  // Re-arm the degrade sequence last: clearing it earlier would let a
  // concurrent DegradePartition re-run salvage+purge on a partition whose
  // pass-through flag is still up and double-count the gauges above.
  part.degrading.store(false, std::memory_order_release);
  // The partition is live again (empty, journal-consistent). A crash here
  // re-degrades nothing: restart sees an empty healthy partition.
  TURBOBP_CRASH_POINT("ssd/reenable");
  MaintainJournal(ctx, /*force=*/true);
}

int SsdCacheBase::ScrubTick(IoContext& ctx) {
  MaybeDegrade(ctx);
  // Terminal kill switch only — NOT the derived all-partitions predicate:
  // canary probes must keep running when every partition is degraded, or
  // nothing would ever heal.
  if (degraded_.load(std::memory_order_acquire)) return 0;
  int verified = 0;
  if (!partitions_.empty()) {
    std::vector<uint8_t> buf(ssd_device_->page_bytes());
    const int budget = std::max(1, options_.scrub_frames_per_tick);
    for (int i = 0; i < budget; ++i) {
      if (ScrubOneSlot(ctx, buf)) ++verified;
    }
  }
  if (degraded_partitions_.load(std::memory_order_acquire) > 0) {
    for (auto& partp : partitions_) {
      if (partp->degraded.load(std::memory_order_acquire)) {
        TryHealPartition(*partp, ctx);
      }
    }
  }
  MaintainJournal(ctx);
  return verified;
}

bool SsdCacheBase::ScrubOneSlot(IoContext& ctx, std::vector<uint8_t>& buf) {
  size_t pi;
  int32_t rec;
  {
    // scrub_mu_ guards only the cursor copy/advance — released before the
    // partition latch or any device call (latch-order spec, rank 6).
    TrackedLockGuard lock(scrub_mu_);
    if (scrub_part_ >= partitions_.size()) scrub_part_ = 0;
    pi = scrub_part_;
    rec = scrub_rec_;
    if (rec + 1 >= partitions_[pi]->capacity) {
      scrub_rec_ = 0;
      scrub_part_ = (pi + 1) % partitions_.size();
    } else {
      scrub_rec_ = rec + 1;
    }
  }
  Partition& part = *partitions_[pi];
  if (part.degraded.load(std::memory_order_acquire)) return false;
  PageId repair_pid = kInvalidPageId;
  bool ok = false;
  {
    TrackedLockGuard lock(part.mu);
    if (rec >= part.table.capacity()) return false;
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state != SsdFrameState::kClean &&
        r.state != SsdFrameState::kDirty) {
      return false;  // free/invalid/quarantined: nothing to verify
    }
    if (r.ready_at > ctx.now) return false;  // admission write in flight
    const bool was_dirty = r.state == SsdFrameState::kDirty;
    const PageId pid = r.page_id;
    const Status vs = ReadFrameVerified(part, rec, pid, buf, ctx);
    if (vs.ok()) {
      Counters::Bump(counters_.scrub_frames_verified);
      ok = true;
    } else if (vs.IsCorruption()) {
      // Latent corruption caught by patrol, not by a client read.
      QuarantineFrameLocked(part, rec);
      if (was_dirty) {
        RecordLostPage(pid);  // the only copy died in place
      } else {
        repair_pid = pid;  // the disk copy is identical: re-seed it
      }
    }
    // Transient device errors: leave the frame alone — the budget was
    // charged; a client read (or the next patrol lap) retries.
  }
  if (repair_pid != kInvalidPageId) RepairFrame(repair_pid, ctx);
  return ok;
}

void SsdCacheBase::RepairFrame(PageId pid, IoContext& ctx) {
  std::vector<uint8_t> buf(disk_->page_bytes());
  Status rs = Status::Ok();
  if (options_.disk_io_engine != nullptr) {
    // Patrol repairs ride the low-priority lane: they must never starve
    // foreground I/O.
    AsyncIoRequest req;
    req.op = IoOp::kRead;
    req.first_page = pid;
    req.num_pages = 1;
    req.out = std::span<uint8_t>(buf);
    req.low_priority = true;
    Status got = Status::Ok();
    req.on_complete = [&got](const IoCompletion& c) { got = c.result.status; };
    options_.disk_io_engine->Submit(req, ctx);
    ctx.Wait(options_.disk_io_engine->Drain(ctx));
    rs = got;
  } else {
    rs = disk_->ReadPage(pid, buf, ctx);
  }
  if (!rs.ok()) return;  // disk unreadable: the quarantine already happened
  const PageView v(buf.data(), disk_->page_bytes());
  if (v.header().page_id != pid || !v.VerifyChecksum()) return;
  if (AdmitPage(pid, buf, AccessKind::kRandom, /*dirty=*/false, kInvalidLsn,
                ctx)) {
    // The repaired copy sits on a healthy frame and its journal record is
    // staged; a crash here re-runs at most the (idempotent) re-admission.
    TURBOBP_CRASH_POINT("ssd/scrub-repair");
    Counters::Bump(counters_.scrub_frames_repaired);
  }
}

void SsdCacheBase::DegradePartitionAt(size_t index, IoContext& ctx) {
  TURBOBP_CHECK(index < partitions_.size());
  DegradePartition(*partitions_[index], ctx);
}

void SsdCacheBase::ScrubStep() {
  // Terminal degradation stops the actor for good (matching the old cliff);
  // per-partition degradation keeps it running — that is the healer.
  if (degraded_.load(std::memory_order_acquire)) return;
  IoContext ctx;
  ctx.now = executor_->now();
  ctx.executor = executor_;
  ScrubTick(ctx);
  std::weak_ptr<bool> alive = scrub_alive_;
  executor_->ScheduleAt(executor_->now() + options_.scrub_interval,
                        [this, alive] {
                          const auto a = alive.lock();
                          if (a != nullptr && *a) ScrubStep();
                        });
}

bool SsdCacheBase::IsLostPage(PageId pid) const {
  if (lost_live_.load(std::memory_order_acquire) == 0) return false;
  TrackedLockGuard lock(fault_mu_);
  return lost_pages_.contains(pid);
}

std::vector<PageId> SsdCacheBase::LostPages() const {
  TrackedLockGuard lock(fault_mu_);
  return std::vector<PageId>(lost_pages_.begin(), lost_pages_.end());
}

void SsdCacheBase::RecordLostPage(PageId pid) {
  TrackedLockGuard lock(fault_mu_);
  if (lost_pages_.insert(pid).second) {
    lost_live_.fetch_add(1, std::memory_order_release);
  }
}

void SsdCacheBase::ClearLostPage(PageId pid) {
  if (lost_live_.load(std::memory_order_acquire) == 0) return;
  TrackedLockGuard lock(fault_mu_);
  if (lost_pages_.erase(pid) > 0) {
    lost_live_.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<SsdManager::CheckpointEntry> SsdCacheBase::SnapshotForCheckpoint()
    const {
  std::vector<CheckpointEntry> entries;
  for (const auto& part : partitions_) {
    TrackedLockGuard lock(part->mu);
    for (int32_t rec = 0; rec < part->table.capacity(); ++rec) {
      const SsdFrameRecord& r = part->table.record(rec);
      if (r.state != SsdFrameState::kClean && r.state != SsdFrameState::kDirty) {
        continue;
      }
      CheckpointEntry e;
      e.page_id = r.page_id;
      e.frame = FrameOf(*part, rec);
      e.dirty = r.state == SsdFrameState::kDirty;
      e.page_lsn = r.page_lsn;
      entries.push_back(e);
    }
  }
  return entries;
}

size_t SsdCacheBase::RestoreFromCheckpoint(
    const std::vector<CheckpointEntry>& entries, IoContext& ctx,
    const std::unordered_map<PageId, Lsn>* max_update_lsn,
    std::unordered_map<PageId, Lsn>* covered_lsn) {
  return RestoreEntries(entries, ctx, max_update_lsn, covered_lsn, nullptr);
}

size_t SsdCacheBase::RestoreEntries(
    const std::vector<CheckpointEntry>& entries, IoContext& ctx,
    const std::unordered_map<PageId, Lsn>* max_update_lsn,
    std::unordered_map<PageId, Lsn>* covered_lsn,
    PersistentRestoreStats* stats) {
  size_t restored = 0;
  std::vector<uint8_t> buf(ssd_device_->page_bytes());
  std::vector<uint8_t> disk_buf(disk_->page_bytes());
  for (const CheckpointEntry& e : entries) {
    Partition& part = PartitionFor(e.page_id);
    const int64_t rec64 = static_cast<int64_t>(e.frame) - part.frame_base;
    if (rec64 < 0 || rec64 >= part.table.capacity()) continue;
    const int32_t rec = static_cast<int32_t>(rec64);
    TrackedLockGuard lock(part.mu);
    if (part.table.Lookup(e.page_id) != -1) continue;  // duplicate entry
    // The exact record index must be free for the frame mapping to hold.
    // Thread through the free list directly: pop until the target surfaces,
    // re-pushing the others (after a restart all records are free).
    std::vector<int32_t> popped;
    int32_t got = -1;
    while ((got = part.table.PopFree()) != -1 && got != rec) {
      popped.push_back(got);
    }
    for (int32_t other : popped) part.table.PushFree(other);
    if (got != rec) continue;  // record occupied or quarantined: stale entry
    // Trust but verify: the frame may have been recycled after the snapshot
    // was taken, or damaged while the cache was down. Reads are charged
    // (restart-time work). A raw read distinguishes the two cheaply: a
    // valid checksum naming a different page/LSN is a *recycled* frame
    // (healthy cells, silent drop); only a failed read or bad checksum is
    // escalated to the verified-retry path, whose persistent-corruption
    // verdict quarantines the frame.
    const IoResult rres =
        ssd_device_->Read(e.frame, 1, buf, ctx.now, ctx.charge);
    bool checksum_ok = false;
    if (rres.ok()) {
      ctx.Wait(rres.time);
      checksum_ok =
          PageView(buf.data(), ssd_device_->page_bytes()).VerifyChecksum();
    } else {
      Counters::Bump(counters_.device_read_errors);
      RecordDeviceError(part, ctx.now);
    }
    if (!rres.ok() || !checksum_ok) {
      const Status vs = ReadFrameVerified(part, rec, e.page_id, buf, ctx);
      if (vs.IsCorruption()) {
        if (PageView(buf.data(), ssd_device_->page_bytes()).VerifyChecksum()) {
          // Valid content for a different page: recycled, healthy cells.
          part.table.PushFree(rec);
          continue;
        }
        // Persistently damaged content: out of service for good — the bug
        // this path used to have was silently dropping such frames back
        // onto the free list, re-exposing the bad cells to new admissions.
        QuarantineRestoredFrame(part, rec);
        if (stats != nullptr) ++stats->dropped_verification;
        continue;
      }
      if (!vs.ok()) {  // device error past bounded retry
        part.table.PushFree(rec);
        if (stats != nullptr) ++stats->dropped_verification;
        continue;
      }
    }
    const PageView v(buf.data(), ssd_device_->page_bytes());
    if (v.header().page_id != e.page_id || v.header().lsn != e.page_lsn) {
      // The frame's self-identifying header does not back the entry's
      // claim. Under a checkpoint-snapshot restore that is the expected
      // recycled-frame case (silent); under the journal path it is a
      // verification drop and counted as such.
      part.table.PushFree(rec);
      if (stats != nullptr) ++stats->dropped_verification;
      continue;
    }
    if (stats != nullptr && !e.dirty) {
      // Journal path only: a "clean" journal entry can predate the disk
      // write of the same image (write-through designs journal the SSD
      // admission before the buffer pool's disk write lands). Attaching —
      // and especially covering — such an entry would let redo skip an
      // update the disk never received, and a clean frame may later be
      // evicted without write-back. Only a disk copy at least as new as the
      // entry proves the "clean" claim; anything else drops the entry and
      // redo rebuilds the page from the disk base. (Checkpoint-snapshot
      // restores skip this: their entries were taken with the disk drained
      // current.)
      const Status ds = disk_->ReadPage(e.page_id, disk_buf, ctx);
      bool disk_current = false;
      if (ds.ok()) {
        const PageView dv(disk_buf.data(), disk_->page_bytes());
        disk_current = dv.VerifyChecksum() &&
                       dv.header().page_id == e.page_id &&
                       dv.header().lsn >= e.page_lsn;
      }
      if (!disk_current) {
        part.table.PushFree(rec);
        ++stats->dropped_verification;
        continue;
      }
    }
    bool superseded = false;
    if (max_update_lsn != nullptr) {
      const auto it = max_update_lsn->find(e.page_id);
      superseded = it != max_update_lsn->end() && it->second > e.page_lsn;
    }
    if (superseded) {
      part.table.PushFree(rec);
      // The copy is stale for serving reads, but it is still a valid page
      // image at its LSN: seed the disk with it (dirty copies may predate
      // the disk by a long stretch of skipped redo), and let redo roll the
      // page forward from there.
      if (e.dirty) {
        const IoResult w = disk_->WritePage(e.page_id, buf, ctx);
        TURBOBP_CHECK_OK(w.status);
        ctx.Wait(w.time);
        // The superseded dirty image is on disk; redo (which starts after
        // restore) rolls the page forward from it. A crash before this
        // write replays the same restore path, so the reseed is idempotent.
        TURBOBP_CRASH_POINT("ssd/restore-reseed");
        if (stats != nullptr) ++stats->reseeded;
      }
      if (covered_lsn != nullptr) {
        Lsn& cl = (*covered_lsn)[e.page_id];
        cl = std::max(cl, e.page_lsn);
      }
      continue;
    }
    SsdFrameRecord& r = part.table.record(rec);
    r.page_id = e.page_id;
    r.kind = AccessKind::kRandom;
    r.page_lsn = e.page_lsn;
    // The caller has already filtered out entries superseded by later
    // durable updates, so each surviving copy is the newest version of its
    // page. Dirty entries stay dirty: the SSD still holds the only current
    // copy, the redo pass skips the records it covers, and the cleaner
    // carries on copying it to disk as before the crash.
    r.state = e.dirty ? SsdFrameState::kDirty : SsdFrameState::kClean;
    r.access[0] = r.access[1] = 0;
    r.Touch(ctx.now);
    r.ready_at = 0;  // content verified on the device: serveable immediately
    part.table.InsertHash(rec);
    if (e.dirty) {
      dirty_frames_.fetch_add(1);
      part.heap.InsertDirty(rec);
    } else {
      part.heap.InsertClean(rec);
    }
    used_frames_.fetch_add(1);
    NoteJournalPut(e.frame, e.page_id, e.page_lsn, e.dirty);
    if (covered_lsn != nullptr) {
      Lsn& cl = (*covered_lsn)[e.page_id];
      cl = std::max(cl, e.page_lsn);
    }
    if (stats != nullptr) {
      ++stats->restored;
      if (e.dirty && e.page_lsn != kInvalidLsn &&
          (stats->min_dirty_lsn == kInvalidLsn ||
           e.page_lsn < stats->min_dirty_lsn)) {
        stats->min_dirty_lsn = e.page_lsn;
      }
    }
    ++restored;
  }
  return restored;
}

std::vector<SsdManager::CheckpointEntry> SsdCacheBase::LazyScanEntries(
    IoContext& ctx,
    const std::unordered_map<uint64_t, SsdMetadataJournal::RecoveredEntry>*
        known) {
  // Fallback for a torn/stale/absent journal: every frame header is
  // self-identifying (page id + LSN + checksum), so the frame area itself
  // is a slow second copy of the buffer table. Unmaterialized frames fail
  // the checksum (all-zero pages do not self-verify) and are skipped.
  std::vector<CheckpointEntry> found;
  std::vector<uint8_t> buf(ssd_device_->page_bytes());
  std::vector<uint8_t> disk_buf(disk_->page_bytes());
  for (const auto& partp : partitions_) {
    Partition& part = *partp;
    TrackedLockGuard lock(part.mu);
    for (int32_t rec = 0; rec < part.table.capacity(); ++rec) {
      const uint64_t frame = FrameOf(part, rec);
      if (known != nullptr && known->contains(frame)) continue;
      const IoResult rres =
          ssd_device_->Read(frame, 1, buf, ctx.now, ctx.charge);
      if (!rres.ok()) {
        Counters::Bump(counters_.device_read_errors);
        RecordDeviceError(part, ctx.now);
        continue;
      }
      ctx.Wait(rres.time);
      const PageView v(buf.data(), ssd_device_->page_bytes());
      if (!v.VerifyChecksum()) continue;
      const PageId pid = v.header().page_id;
      if (pid == kInvalidPageId || pid >= disk_->num_pages()) continue;
      // Classify against the current disk copy: same LSN means the frame is
      // a clean duplicate; an older disk copy (or an unreadable one) means
      // the frame is the newer image and must come back dirty; a newer disk
      // copy means the frame is a stale leftover.
      const Status ds = disk_->ReadPage(pid, disk_buf, ctx);
      if (ds.ok()) {
        const PageView dv(disk_buf.data(), disk_->page_bytes());
        if (dv.VerifyChecksum() && dv.header().page_id == pid) {
          if (dv.header().lsn > v.header().lsn) continue;  // stale leftover
          if (dv.header().lsn == v.header().lsn) {
            CheckpointEntry e;
            e.page_id = pid;
            e.frame = frame;
            e.dirty = false;
            e.page_lsn = v.header().lsn;
            found.push_back(e);
            continue;
          }
        }
      }
      CheckpointEntry e;
      e.page_id = pid;
      e.frame = frame;
      e.dirty = true;  // the SSD holds the newest (or only readable) image
      e.page_lsn = v.header().lsn;
      found.push_back(e);
    }
  }
  return found;
}

bool SsdCacheBase::RecoverPersistentState(
    Lsn horizon, IoContext& ctx,
    const std::unordered_map<PageId, Lsn>* max_update_lsn,
    std::unordered_map<PageId, Lsn>* covered_lsn,
    PersistentRestoreStats* out) {
  if (journal_ == nullptr || degraded()) return false;
  PersistentRestoreStats local;
  PersistentRestoreStats& st = out != nullptr ? *out : local;
  st = PersistentRestoreStats{};
  const SsdMetadataJournal::RecoveredState jr = journal_->Recover(ctx);
  st.journal_valid = jr.valid;
  st.journal_epoch = jr.epoch;
  st.journal_torn = jr.torn_tail;
  st.journal_stale = jr.fell_back;
  st.entries_recovered = jr.entries.size();
  // Only LC leaves frames whose content is newer than the disk; for the
  // other designs a dirty marker can only be a journal-lag artifact, and
  // re-attaching it dirty would wrongly shadow the disk. Redo heals
  // whatever such a drop loses.
  const bool keep_dirty = design() == SsdDesign::kLazyCleaning;
  std::vector<CheckpointEntry> entries;
  entries.reserve(jr.entries.size());
  const auto filter_add = [&](const CheckpointEntry& e) {
    // The no-frame-newer-than-durable rule: a frame whose LSN exceeds the
    // WAL durable horizon reflects updates that did not survive the crash;
    // serving it would resurrect rolled-back state. The WAL rule makes
    // this impossible for frames written before the crash, so any match is
    // a torn/garbled mapping — drop it.
    if (e.page_lsn != kInvalidLsn && e.page_lsn > horizon) {
      ++st.dropped_beyond_horizon;
      return;
    }
    if (e.dirty && !keep_dirty) return;
    entries.push_back(e);
  };
  for (const auto& [frame, re] : jr.entries) {
    CheckpointEntry e;
    e.page_id = re.page_id;
    e.frame = frame;
    e.dirty = re.dirty;
    e.page_lsn = re.page_lsn;
    filter_add(e);
  }
  if (jr.incomplete()) {
    st.scan_fallback = true;
    for (const CheckpointEntry& e :
         LazyScanEntries(ctx, jr.valid ? &jr.entries : nullptr)) {
      filter_add(e);
    }
  }
  // Newest image of each page first: RestoreEntries keeps the first
  // attachment of a page and drops later duplicates.
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) {
              if (a.page_id != b.page_id) return a.page_id < b.page_id;
              return a.page_lsn > b.page_lsn;
            });
  // The restore re-attaches into a live table; muting the journal hooks
  // avoids staging a record per re-attached frame — the re-seal below
  // snapshots the final table in one sweep instead.
  journal_suppress_.store(true, std::memory_order_release);
  RestoreEntries(entries, ctx, max_update_lsn, covered_lsn, &st);
  journal_suppress_.store(false, std::memory_order_release);
  const IoResult c = journal_->Compact(ctx);
  if (!c.ok()) {
    Counters::Bump(counters_.device_write_errors);
    RecordJournalError(ctx.now);
  }
  return true;
}

void SsdCacheBase::MaintainJournal(IoContext& ctx, bool force) {
  if (journal_ == nullptr || degraded() ||
      journal_suppress_.load(std::memory_order_acquire)) {
    return;
  }
  const IoResult r = journal_->Maintain(ctx, force);
  if (!r.ok()) {
    // Journal write failures are advisory for the cache (a stale journal
    // only costs warm-restart coverage) but still count toward the device's
    // degradation budget: the journal shares the medium with the frames.
    Counters::Bump(counters_.device_write_errors);
    RecordJournalError(ctx.now);
  }
}

IoResult SsdCacheBase::FlushAllDirty(IoContext& ctx) {
  // CW/DW/TAC have no dirty frames to drain, so for them the checkpoint
  // hook is purely the journal force-flush point (LC chains here from its
  // own drain). Journal failures must not fail the checkpoint: the journal
  // is a warm-restart hint, never a durability dependency.
  MaintainJournal(ctx, /*force=*/true);
  return IoResult{ctx.now, Status::Ok()};
}

SsdManagerStats SsdCacheBase::stats() const {
  const auto ld = [](const std::atomic<int64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  SsdManagerStats s;
  // Consistent snapshot under concurrency: ops is bumped last (release) by
  // every probe classification and read first here (acquire), so even a
  // single pass observes hits + probe_misses >= ops. The re-read at the end
  // of the pass upgrades that to a stable snapshot — if ops did not move
  // while the other counters were copied, no classification ran and the
  // pass is atomic; otherwise retry (bounded: under a continuous write
  // storm the ordered single pass is still invariant-preserving).
  for (int attempt = 0; attempt < 4; ++attempt) {
    s.ops = counters_.ops.load(std::memory_order_acquire);
    s.hits = ld(counters_.hits);
    s.probe_misses = ld(counters_.probe_misses);
    if (counters_.ops.load(std::memory_order_acquire) == s.ops) break;
  }
  s.hits_dirty = ld(counters_.hits_dirty);
  s.admissions = ld(counters_.admissions);
  s.evictions = ld(counters_.evictions);
  s.throttled = ld(counters_.throttled);
  s.rejected_sequential = ld(counters_.rejected_sequential);
  s.cleaner_disk_writes = ld(counters_.cleaner_disk_writes);
  s.cleaner_io_requests = ld(counters_.cleaner_io_requests);
  s.invalidations = ld(counters_.invalidations);
  s.used_frames = used_frames_.load();
  s.dirty_frames = dirty_frames_.load();
  s.invalid_frames = invalid_frames_.load();
  s.capacity_frames = options_.num_frames;
  s.device_read_errors = ld(counters_.device_read_errors);
  s.device_write_errors = ld(counters_.device_write_errors);
  s.read_retries = ld(counters_.read_retries);
  s.frame_corruptions = ld(counters_.frame_corruptions);
  s.quarantined_frames = quarantined_frames_.load();
  s.lost_pages = lost_live_.load();
  s.emergency_cleaned = ld(counters_.emergency_cleaned);
  s.checkpoint_flush_failures = ld(counters_.checkpoint_flush_failures);
  s.degraded = degraded();
  s.partitions_degraded = ld(counters_.partitions_degraded);
  s.partitions_recovered = ld(counters_.partitions_recovered);
  s.scrub_frames_verified = ld(counters_.scrub_frames_verified);
  s.scrub_frames_repaired = ld(counters_.scrub_frames_repaired);
  s.io_timeouts = ld(counters_.io_timeouts);
  s.hedged_reads = ld(counters_.hedged_reads);
  if (journal_ != nullptr) {
    s.journal_records_appended = journal_->records_appended();
    s.journal_pages_written = journal_->pages_written();
    s.journal_compactions = journal_->compactions();
    s.journal_write_errors = journal_->write_errors();
  }
  return s;
}

}  // namespace turbobp
