#include "core/ssd_cache_base.h"

#include <algorithm>

#include "common/status.h"
#include "storage/page.h"

namespace turbobp {

SsdCacheBase::SsdCacheBase(StorageDevice* ssd_device, DiskManager* disk,
                           const SsdCacheOptions& options,
                           SimExecutor* executor)
    : options_(options),
      ssd_device_(ssd_device),
      disk_(disk),
      executor_(executor) {
  TURBOBP_CHECK(ssd_device != nullptr);
  TURBOBP_CHECK(options.num_frames > 0);
  TURBOBP_CHECK(options.num_partitions > 0);
  TURBOBP_CHECK(ssd_device->num_pages() >=
                static_cast<uint64_t>(options.num_frames));
  const int n = options.num_partitions;
  const int64_t per_part = (options.num_frames + n - 1) / n;
  int64_t base = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t cap = std::min<int64_t>(per_part, options.num_frames - base);
    if (cap <= 0) break;
    // The heap's key function closes over the partition, which does not
    // exist until construction finishes; construct with a placeholder key
    // and install the real one immediately after.
    auto part =
        std::make_unique<Partition>(static_cast<int32_t>(cap), SsdSplitHeap::KeyFn{});
    Partition* p = part.get();
    p->heap = SsdSplitHeap(
        &p->table, [this, p](int32_t rec) { return HeapKey(*p, rec); });
    p->frame_base = base;
    base += cap;
    partitions_.push_back(std::move(part));
  }
  {
    std::lock_guard lock(stats_mu_);
    stats_counters_.capacity_frames = options.num_frames;
  }
}

double SsdCacheBase::HeapKey(const Partition& part, int32_t rec) const {
  return static_cast<double>(part.table.record(rec).Lru2Key());
}

SsdProbe SsdCacheBase::Probe(PageId pid) const {
  const Partition& part = PartitionFor(pid);
  std::lock_guard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) return SsdProbe::kAbsent;
  switch (part.table.record(rec).state) {
    case SsdFrameState::kClean:
      return SsdProbe::kCleanCopy;
    case SsdFrameState::kDirty:
      return SsdProbe::kNewerCopy;
    default:
      return SsdProbe::kAbsent;
  }
}

bool SsdCacheBase::TryReadPage(PageId pid, std::span<uint8_t> out,
                               IoContext& ctx) {
  Partition& part = PartitionFor(pid);
  std::lock_guard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.probe_misses;
    return false;
  }
  SsdFrameRecord& r = part.table.record(rec);
  if (r.state != SsdFrameState::kClean && r.state != SsdFrameState::kDirty) {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.probe_misses;
    return false;
  }
  const bool must_read = r.state == SsdFrameState::kDirty;
  // Throttle control (Section 3.3.2): when the SSD queue is saturated, read
  // from disk instead — unless the SSD copy is newer (correctness).
  if (!must_read && ThrottleBlocks(ctx.now)) {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.throttled;
    return false;
  }
  if (r.ready_at > ctx.now) {
    // The admission write that created this copy has not completed.
    if (!must_read) return false;  // clean copy also lives on disk
    ctx.Wait(r.ready_at);          // dirty copy exists only here
  }
  ReadFrame(part, rec, out, ctx);
  r.Touch(ctx.now);
  part.heap.UpdateKey(rec);
  {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.hits;
    // The paper attributes LC's TPC-C win to re-referenced dirty SSD pages
    // ("about 83% of the total SSD references are to dirty SSD pages").
    if (must_read) ++stats_counters_.hits_dirty;
  }
  return true;
}

void SsdCacheBase::OnPageDirtied(PageId pid) { Invalidate(pid); }

void SsdCacheBase::Invalidate(PageId pid) {
  Partition& part = PartitionFor(pid);
  std::lock_guard lock(part.mu);
  const int32_t rec = part.table.Lookup(pid);
  if (rec == -1) return;
  SsdFrameRecord& r = part.table.record(rec);
  if (r.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
  DetachRecord(part, rec);
  part.table.PushFree(rec);
  used_frames_.fetch_sub(1);
  std::lock_guard slock(stats_mu_);
  ++stats_counters_.invalidations;
}

void SsdCacheBase::OnEvictClean(PageId pid, std::span<const uint8_t> data,
                                AccessKind kind, IoContext& ctx) {
  if (!AdmissionAllows(kind)) {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.rejected_sequential;
    return;
  }
  if (ThrottleBlocks(ctx.now)) {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.throttled;
    return;
  }
  AdmitPage(pid, data, kind, /*dirty=*/false, kInvalidLsn, ctx);
}

bool SsdCacheBase::AdmissionAllows(AccessKind kind) {
  // Aggressive filling (Section 3.3.1): cache everything until the SSD is
  // tau full; afterwards only randomly-accessed pages qualify, because only
  // those are faster to re-read from the SSD than from the striped disks.
  const int64_t used = used_frames_.load();
  if (static_cast<double>(used) <
      options_.aggressive_fill * static_cast<double>(options_.num_frames)) {
    return true;
  }
  return kind == AccessKind::kRandom;
}

bool SsdCacheBase::ThrottleBlocks(Time now) {
  return ssd_device_->QueueLength(now) > options_.throttle_queue_limit;
}

int32_t SsdCacheBase::PickVictim(Partition& part) {
  return part.heap.CleanRoot();
}

void SsdCacheBase::DetachRecord(Partition& part, int32_t rec) {
  part.heap.Remove(rec);
  part.table.RemoveHash(rec);
}

bool SsdCacheBase::AdmitPage(PageId pid, std::span<const uint8_t> data,
                             AccessKind kind, bool dirty, Lsn page_lsn,
                             IoContext& ctx) {
  Partition& part = PartitionFor(pid);
  std::lock_guard lock(part.mu);
  int32_t rec = part.table.Lookup(pid);
  if (rec != -1) {
    // Already cached. A clean re-admission is content-identical: refresh
    // usage only. A dirty admission over an existing entry supersedes it.
    SsdFrameRecord& r = part.table.record(rec);
    if (r.state == SsdFrameState::kInvalid) return false;  // TAC handles
    r.Touch(ctx.now);
    if (dirty) {
      if (r.state != SsdFrameState::kDirty) {
        r.state = SsdFrameState::kDirty;
        dirty_frames_.fetch_add(1);
        if (part.heap.Contains(rec) && !part.heap.IsDirtySide(rec)) {
          part.heap.Remove(rec);
          part.heap.InsertDirty(rec);
        }
      }
      r.page_lsn = page_lsn;
      r.ready_at = WriteFrame(part, rec, data, ctx);
    } else {
      part.heap.UpdateKey(rec);
    }
    return true;
  }

  rec = part.table.PopFree();
  if (rec == -1) {
    const int32_t victim = PickVictim(part);
    if (victim == -1) return false;  // nothing replaceable (all dirty)
    SsdFrameRecord& v = part.table.record(victim);
    if (v.state == SsdFrameState::kDirty) dirty_frames_.fetch_sub(1);
    DetachRecord(part, victim);
    part.table.PushFree(victim);
    used_frames_.fetch_sub(1);
    {
      std::lock_guard slock(stats_mu_);
      ++stats_counters_.evictions;
    }
    rec = part.table.PopFree();
    TURBOBP_CHECK(rec != -1);
  }
  used_frames_.fetch_add(1);

  SsdFrameRecord& r = part.table.record(rec);
  r.page_id = pid;
  r.kind = kind;
  // Record the page's LSN even for clean admissions (read from the page
  // header): the restart extension needs it to prove a restored copy is
  // still the newest version of the page.
  r.page_lsn = page_lsn != kInvalidLsn
                   ? page_lsn
                   : PageView(const_cast<uint8_t*>(data.data()),
                              static_cast<uint32_t>(data.size()))
                         .header()
                         .lsn;
  r.state = dirty ? SsdFrameState::kDirty : SsdFrameState::kClean;
  r.access[0] = r.access[1] = 0;
  r.Touch(ctx.now);
  part.table.InsertHash(rec);
  if (dirty) {
    dirty_frames_.fetch_add(1);
    part.heap.InsertDirty(rec);
  } else {
    part.heap.InsertClean(rec);
  }
  r.ready_at = WriteFrame(part, rec, data, ctx);
  {
    std::lock_guard slock(stats_mu_);
    ++stats_counters_.admissions;
  }
  return true;
}

Time SsdCacheBase::WriteFrame(Partition& part, int32_t rec,
                              std::span<const uint8_t> data, IoContext& ctx) {
  return ssd_device_->Write(FrameOf(part, rec), 1, data, ctx.now, ctx.charge);
}

Time SsdCacheBase::ReadFrame(Partition& part, int32_t rec,
                             std::span<uint8_t> out, IoContext& ctx) {
  const Time done =
      ssd_device_->Read(FrameOf(part, rec), 1, out, ctx.now, ctx.charge);
  ctx.Wait(done);
  return done;
}

std::vector<SsdManager::CheckpointEntry> SsdCacheBase::SnapshotForCheckpoint()
    const {
  std::vector<CheckpointEntry> entries;
  for (const auto& part : partitions_) {
    std::lock_guard lock(part->mu);
    for (int32_t rec = 0; rec < part->table.capacity(); ++rec) {
      const SsdFrameRecord& r = part->table.record(rec);
      if (r.state != SsdFrameState::kClean && r.state != SsdFrameState::kDirty) {
        continue;
      }
      CheckpointEntry e;
      e.page_id = r.page_id;
      e.frame = FrameOf(*part, rec);
      e.dirty = r.state == SsdFrameState::kDirty;
      e.page_lsn = r.page_lsn;
      entries.push_back(e);
    }
  }
  return entries;
}

size_t SsdCacheBase::RestoreFromCheckpoint(
    const std::vector<CheckpointEntry>& entries, IoContext& ctx,
    const std::unordered_map<PageId, Lsn>* max_update_lsn,
    std::unordered_map<PageId, Lsn>* covered_lsn) {
  size_t restored = 0;
  std::vector<uint8_t> buf(ssd_device_->page_bytes());
  for (const CheckpointEntry& e : entries) {
    Partition& part = PartitionFor(e.page_id);
    const int64_t rec64 = static_cast<int64_t>(e.frame) - part.frame_base;
    if (rec64 < 0 || rec64 >= part.table.capacity()) continue;
    const int32_t rec = static_cast<int32_t>(rec64);
    // Trust but verify: the frame may have been recycled after the
    // snapshot was taken. Read it back and check the page header. Reads
    // are charged (restart-time work).
    const Time done = ssd_device_->Read(e.frame, 1, buf, ctx.now, ctx.charge);
    ctx.Wait(done);
    PageView v(buf.data(), ssd_device_->page_bytes());
    if (v.header().page_id != e.page_id || !v.VerifyChecksum() ||
        v.header().lsn != e.page_lsn) {
      continue;  // the frame was recycled after the snapshot
    }
    bool superseded = false;
    if (max_update_lsn != nullptr) {
      const auto it = max_update_lsn->find(e.page_id);
      superseded = it != max_update_lsn->end() && it->second > e.page_lsn;
    }
    if (superseded) {
      // The copy is stale for serving reads, but it is still a valid page
      // image at its LSN: seed the disk with it (dirty copies may predate
      // the disk by a long stretch of skipped redo), and let redo roll the
      // page forward from there.
      if (e.dirty) {
        const Time wdone = disk_->WritePage(e.page_id, buf, ctx);
        ctx.Wait(wdone);
      }
      if (covered_lsn != nullptr) {
        Lsn& cl = (*covered_lsn)[e.page_id];
        cl = std::max(cl, e.page_lsn);
      }
      continue;
    }
    std::lock_guard lock(part.mu);
    if (part.table.Lookup(e.page_id) != -1) continue;  // duplicate entry
    // The exact record index must be free for the frame mapping to hold.
    // After a restart all records are free, so PopFree until we find it
    // would be wasteful; instead thread through the free list directly by
    // popping until the target surfaces, re-pushing the others.
    std::vector<int32_t> popped;
    int32_t got = -1;
    while ((got = part.table.PopFree()) != -1 && got != rec) {
      popped.push_back(got);
    }
    for (int32_t other : popped) part.table.PushFree(other);
    if (got != rec) continue;  // record occupied: stale entry
    SsdFrameRecord& r = part.table.record(rec);
    r.page_id = e.page_id;
    r.kind = AccessKind::kRandom;
    r.page_lsn = e.page_lsn;
    // The caller has already filtered out entries superseded by later
    // durable updates, so each surviving copy is the newest version of its
    // page. Dirty entries stay dirty: the SSD still holds the only current
    // copy, the redo pass skips the records it covers, and the cleaner
    // carries on copying it to disk as before the crash.
    r.state = e.dirty ? SsdFrameState::kDirty : SsdFrameState::kClean;
    r.Touch(ctx.now);
    part.table.InsertHash(rec);
    if (e.dirty) {
      dirty_frames_.fetch_add(1);
      part.heap.InsertDirty(rec);
    } else {
      part.heap.InsertClean(rec);
    }
    used_frames_.fetch_add(1);
    if (covered_lsn != nullptr) {
      Lsn& cl = (*covered_lsn)[e.page_id];
      cl = std::max(cl, e.page_lsn);
    }
    ++restored;
  }
  return restored;
}

SsdManagerStats SsdCacheBase::stats() const {
  SsdManagerStats s;
  {
    std::lock_guard slock(stats_mu_);
    s = stats_counters_;
  }
  s.used_frames = used_frames_.load();
  s.dirty_frames = dirty_frames_.load();
  s.invalid_frames = invalid_frames_.load();
  s.capacity_frames = options_.num_frames;
  return s;
}

}  // namespace turbobp
