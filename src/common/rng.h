#ifndef TURBOBP_COMMON_RNG_H_
#define TURBOBP_COMMON_RNG_H_

#include <cstdint>

namespace turbobp {

// Deterministic xoshiro256++ generator. Every stochastic component of the
// library (workload generators, device jitter, property tests) draws from an
// explicitly seeded Rng so whole benchmark runs replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // TPC-C NURand(A, x, y): non-uniform random over [x, y], clause 2.1.6.
  // Produces the skewed access pattern (roughly 75% of accesses to ~20% of
  // the key space) that the paper cites as the reason LC wins on TPC-C.
  int64_t NuRand(int64_t a, int64_t x, int64_t y);

  // Zipfian over [0, n) with exponent theta, Gray et al.'s method with a
  // per-(n, theta) cached zeta. Used by the TPC-E-like generator.
  int64_t Zipf(int64_t n, double theta);

 private:
  uint64_t s_[4];
  uint64_t c_load_ = 0;  // NURand constant C (fixed per generator)
  // Zipf cache for the last (n, theta) pair.
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace turbobp

#endif  // TURBOBP_COMMON_RNG_H_
