#include "common/rng.h"

#include <cmath>

namespace turbobp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // NURand's constant C must stay fixed for the lifetime of the generator
  // (TPC-C clause 2.1.6.1); derive it from the seed.
  c_load_ = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * n;
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NuRand(int64_t a, int64_t x, int64_t y) {
  const int64_t c = static_cast<int64_t>(c_load_ % static_cast<uint64_t>(a + 1));
  const int64_t r1 = UniformRange(0, a);
  const int64_t r2 = UniformRange(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  if (n != zipf_n_ || theta != zipf_theta_) {
    double zetan = 0.0;
    for (int64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(i, theta);
    double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = zetan;
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) / (1.0 - zeta2 / zetan);
  }
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 1;
  return static_cast<int64_t>(
      n * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

}  // namespace turbobp
