#ifndef TURBOBP_COMMON_CHECKSUM_H_
#define TURBOBP_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace turbobp {

// CRC32C (Castagnoli), software slice-by-one implementation. Every page
// carries a checksum over its payload; the buffer manager verifies it on
// each device read, so any stale- or torn-copy bug between the three page
// locations (memory / SSD / disk) surfaces immediately as corruption.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace turbobp

#endif  // TURBOBP_COMMON_CHECKSUM_H_
