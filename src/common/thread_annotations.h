#ifndef TURBOBP_COMMON_THREAD_ANNOTATIONS_H_
#define TURBOBP_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis wiring (DESIGN.md §7, "Compile-time latch
// discipline"). Every engine mutex is a TrackedMutex<LatchClass>, annotated
// below as a *capability*; latch-guarded fields say which latch guards them
// with TURBOBP_GUARDED_BY, internal `*Locked` helpers carry TURBOBP_REQUIRES
// contracts, and the blocking storage entry points carry TURBOBP_EXCLUDES
// over the pool/frame latch tokens — so `clang -Wthread-safety -Werror`
// rejects a device read under a shard latch at compile time, before any
// schedule runs.
//
// The macros expand to Clang's capability attributes only when the compiler
// is Clang AND the build opted in (-DTURBOBP_THREAD_SAFETY, set by the
// TURBOBP_THREAD_SAFETY=ON CMake option). Everywhere else — GCC, MSVC,
// un-opted Clang — they expand to nothing, so annotated headers compile
// identically and the annotations cost nothing at runtime.
//
// What the analysis cannot see (std::unique_lock juggling in the buffer
// pool's per-frame I/O state machine, the crash-observer's sanctioned
// latch-free snapshots) is marked TURBOBP_NO_THREAD_SAFETY_ANALYSIS with a
// pointer to the structural checker (tools/analysis/static_check.py) that
// covers those paths instead.

#if defined(__clang__) && defined(TURBOBP_THREAD_SAFETY)
#define TURBOBP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TURBOBP_THREAD_ANNOTATION(x)  // no-op off Clang / un-opted builds
#endif

// Marks a class as a capability (a latch). The string names the capability
// kind in diagnostics ("mutex 'mu_' is still held", ...).
#define TURBOBP_CAPABILITY(x) TURBOBP_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (TrackedLockGuard below; clang tracks the guarded scope).
#define TURBOBP_SCOPED_CAPABILITY TURBOBP_THREAD_ANNOTATION(scoped_lockable)

// Field `x` may only be read or written while the named capability is held.
#define TURBOBP_GUARDED_BY(x) TURBOBP_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the *pointee* is guarded by the named capability.
#define TURBOBP_PT_GUARDED_BY(x) TURBOBP_THREAD_ANNOTATION(pt_guarded_by(x))

// The function may only be called while holding the listed capabilities
// (internal `*Locked` helpers).
#define TURBOBP_REQUIRES(...) \
  TURBOBP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TURBOBP_REQUIRES_SHARED(...) \
  TURBOBP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function may only be called while NOT holding the listed capabilities.
// This is the compile-time form of the PR-5 invariant: every blocking
// StorageDevice / DiskManager entry point EXCLUDES the buffer-pool shard and
// frame latch tokens, so "device I/O under a pool latch" is a build error.
#define TURBOBP_EXCLUDES(...) \
  TURBOBP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock/unlock functions. With no argument they acquire/release `this`
// (the capability class itself); with arguments, the named capabilities.
#define TURBOBP_ACQUIRE(...) \
  TURBOBP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TURBOBP_RELEASE(...) \
  TURBOBP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TURBOBP_TRY_ACQUIRE(...) \
  TURBOBP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The function returns a reference to the named capability (accessors).
#define TURBOBP_RETURN_CAPABILITY(x) TURBOBP_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model. Every use in the engine
// cites why (lock juggling across device I/O, crash-observer snapshots) and
// names the layer that checks the path instead.
#define TURBOBP_NO_THREAD_SAFETY_ANALYSIS \
  TURBOBP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace turbobp {

// Phantom per-latch-class capability tokens. TrackedMutex<kClass>::lock()
// acquires LatchClassCap<kClass>::token alongside the mutex instance, which
// buys two compile-time guarantees the instance capability alone cannot
// express:
//
//  * EXCLUDES over a whole class: DiskManager::ReadPage cannot name "any of
//    the pool's N shard mutexes", but it can (and does) exclude
//    LatchClassCap<LatchClass::kBufferPool>::token, which is held whenever
//    any shard latch is held.
//  * Same-class nesting ban: acquiring a second mutex of a class re-acquires
//    the class token, which Clang rejects — the static twin of the runtime
//    LatchOrderChecker's same-class rule.
//
// The tokens are pure compile-time phantoms: empty structs never referenced
// at runtime (the attributes are the only consumers). Single `auto`
// parameter so the spelling stays comma-free inside attribute macros.
template <auto kClass>
struct LatchClassCap {
  struct TURBOBP_CAPABILITY("latch-class") Token {};
  static inline Token token;
};

// Names the phantom class token inside capability attributes, e.g.
//   void ReadPage(...) TURBOBP_EXCLUDES(
//       TURBOBP_LATCH_CAP(LatchClass::kBufferPool));
#define TURBOBP_LATCH_CAP(cls) (::turbobp::LatchClassCap<(cls)>::token)

}  // namespace turbobp

#endif  // TURBOBP_COMMON_THREAD_ANNOTATIONS_H_
