#ifndef TURBOBP_COMMON_TYPES_H_
#define TURBOBP_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace turbobp {

// Identifies an 8KB-class database page. Page ids are dense per database:
// page `p` lives at byte offset `p * page_size` of the (striped) data volume.
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

// Log sequence number. Monotonically increasing byte offset into the WAL.
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

// Virtual time in microseconds since simulation start. All latency models,
// the discrete-event executor and the workload drivers operate in this unit.
using Time = int64_t;
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

inline constexpr Time Micros(int64_t us) { return us; }
inline constexpr Time Millis(int64_t ms) { return ms * 1000; }
inline constexpr Time Seconds(double s) { return static_cast<Time>(s * 1e6); }
inline constexpr double ToSeconds(Time t) { return static_cast<double>(t) / 1e6; }
inline constexpr double ToMillis(Time t) { return static_cast<double>(t) / 1e3; }

// How the caller reached a page, per Section 2.2 of the paper. Pages fetched
// through the read-ahead mechanism (sequential scans) are marked kSequential;
// everything else (index lookups, RID fetches) is kRandom. Only kRandom pages
// are admitted to the SSD once the aggressive-fill threshold is reached.
enum class AccessKind : uint8_t {
  kRandom = 0,
  kSequential = 1,
};

inline const char* ToString(AccessKind k) {
  return k == AccessKind::kRandom ? "random" : "sequential";
}

enum class IoOp : uint8_t {
  kRead = 0,
  kWrite = 1,
};

// The four SSD designs evaluated in the paper plus the no-SSD baseline.
enum class SsdDesign : uint8_t {
  kNoSsd = 0,        // stock buffer manager, disks only
  kCleanWrite = 1,   // CW: dirty evictions never cached on SSD
  kDualWrite = 2,    // DW: dirty evictions written to SSD and disk
  kLazyCleaning = 3, // LC: dirty evictions written to SSD, cleaned lazily
  kTac = 4,          // Temperature-Aware Caching (Canim et al., VLDB'10)
};

inline const char* ToString(SsdDesign d) {
  switch (d) {
    case SsdDesign::kNoSsd: return "noSSD";
    case SsdDesign::kCleanWrite: return "CW";
    case SsdDesign::kDualWrite: return "DW";
    case SsdDesign::kLazyCleaning: return "LC";
    case SsdDesign::kTac: return "TAC";
  }
  return "?";
}

// Record id: locates a tuple inside a heap file.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
};

}  // namespace turbobp

#endif  // TURBOBP_COMMON_TYPES_H_
