#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/status.h"

namespace turbobp {

void TimeSeries::Record(Time t, double value) {
  if (t < 0) return;
  const size_t idx = static_cast<size_t>(t / width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += value;
}

double TimeSeries::AverageRate(Time from, Time to) const {
  double sum = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const Time start = static_cast<Time>(i) * width_;
    if (start >= from && start < to) {
      sum += buckets_[i];
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return sum / (static_cast<double>(n) * ToSeconds(width_));
}

void TimeSeries::Merge(const TimeSeries& other) {
  TURBOBP_CHECK(width_ == other.width_);
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0.0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::vector<double> TimeSeries::SmoothedRates(int window) const {
  std::vector<double> out(buckets_.size(), 0.0);
  const int half = window / 2;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double sum = 0.0;
    int n = 0;
    for (int j = -half; j <= half; ++j) {
      const int64_t k = static_cast<int64_t>(i) + j;
      if (k >= 0 && k < static_cast<int64_t>(buckets_.size())) {
        sum += BucketRate(static_cast<size_t>(k));
        ++n;
      }
    }
    out[i] = n ? sum / n : 0.0;
  }
  return out;
}

void Histogram::Record(int64_t value_us) {
  if (value_us < 0) value_us = 0;
  const int bucket =
      value_us == 0 ? 0 : 64 - std::countl_zero(static_cast<uint64_t>(value_us));
  buckets_[static_cast<size_t>(std::min(bucket, 63))]++;
  ++count_;
  sum_ += static_cast<double>(value_us);
  max_ = std::max(max_, value_us);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const int64_t target =
      static_cast<int64_t>(static_cast<double>(count_) * p / 100.0);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 0 ? 0 : (int64_t{1} << i) - 1;  // bucket upper bound
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> cells) {
  TURBOBP_CHECK(cells.size() == rows_[0].size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      const std::string& cell = rows_[r][c];
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  return out;
}

std::string TextTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace turbobp
