#ifndef TURBOBP_COMMON_STATS_H_
#define TURBOBP_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace turbobp {

// Accumulates samples into fixed-width virtual-time buckets. Used for the
// throughput-vs-time curves of Figures 6/7/9 and the MB/s traffic curves of
// Figure 8: record an event (e.g. one transaction, or N bytes of I/O) at
// virtual time t; read back the per-bucket rate afterwards.
class TimeSeries {
 public:
  // bucket_width: virtual time covered by one bucket.
  explicit TimeSeries(Time bucket_width) : width_(bucket_width) {}

  void Record(Time t, double value = 1.0);

  Time bucket_width() const { return width_; }
  size_t num_buckets() const { return buckets_.size(); }

  // Sum of values recorded in bucket i.
  double BucketSum(size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0.0;
  }
  // Sum / bucket width in seconds: a per-second rate.
  double BucketRate(size_t i) const {
    return BucketSum(i) / ToSeconds(width_);
  }
  // Mid-point virtual time of bucket i.
  Time BucketMid(size_t i) const {
    return static_cast<Time>(i) * width_ + width_ / 2;
  }

  // Average rate over buckets whose *start* lies in [from, to).
  double AverageRate(Time from, Time to) const;

  // Centered moving average of the per-bucket rates (the paper smooths the
  // Figure 6 curves with a 3-point moving average).
  std::vector<double> SmoothedRates(int window = 3) const;

  // Bucket-wise sum of another series (same bucket width required). The
  // threaded driver records per-thread series and merges them at report
  // time instead of sharing one series across threads.
  void Merge(const TimeSeries& other);

 private:
  Time width_;
  std::vector<double> buckets_;
};

// Simple power-of-two-bucketed latency histogram (microseconds).
class Histogram {
 public:
  Histogram() : buckets_(64, 0) {}

  void Record(int64_t value_us);
  int64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  int64_t max() const { return max_; }
  // Approximate percentile (0 < p <= 100) using bucket upper bounds.
  int64_t Percentile(double p) const;

  void Merge(const Histogram& other);

 private:
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  int64_t max_ = 0;
};

// Aligned plain-text table printer shared by the bench harnesses so every
// figure/table reproduction prints in a uniform, diffable format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(int64_t v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turbobp

#endif  // TURBOBP_COMMON_STATS_H_
