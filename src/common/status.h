#ifndef TURBOBP_COMMON_STATUS_H_
#define TURBOBP_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace turbobp {

// Lightweight status object: the library does not use exceptions (hot paths
// in the buffer manager cannot afford unwinding and the style guide bans
// them); operations that can fail return Status / StatusOr. The class is
// [[nodiscard]]: silently dropping a Status is a compile error under
// -Werror; truly-ignorable results must say so with TURBOBP_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIoError = 4,
    kFull = 5,
    kAborted = 6,
    kUnavailable = 7,
    kTimedOut = 8,
  };

  Status() : code_(Code::kOk) {}
  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Full(std::string msg = "") {
    return Status(Code::kFull, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  // A device (or service) that has permanently stopped answering; unlike
  // kIoError this is not worth retrying.
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  // A request that exceeded its deadline. The operation may still complete
  // on the device later (the result is abandoned, not cancelled), so the
  // caller must treat the target as suspect — it feeds the degradation
  // budget, not the retry loop.
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsFull() const { return code_ == Code::kFull; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kIoError: name = "IoError"; break;
      case Code::kFull: name = "Full"; break;
      case Code::kAborted: name = "Aborted"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
      case Code::kTimedOut: name = "TimedOut"; break;
    }
    return message_.empty() ? std::string(name)
                            : std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Terminates the process with a message; used for invariant violations that
// indicate a bug in the library itself (never for user errors).
[[noreturn]] inline void Panic(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "turbobp PANIC at %s:%d: %s\n", file, line, msg);
  std::abort();
}

#define TURBOBP_CHECK(cond)                          \
  do {                                               \
    if (!(cond)) {                                   \
      ::turbobp::Panic(__FILE__, __LINE__, #cond);   \
    }                                                \
  } while (0)

// Documents that a Status is deliberately dropped (rare; prefer checking).
#define TURBOBP_IGNORE_STATUS(expr)                  \
  do {                                               \
    ::turbobp::Status _ignored = (expr);             \
    (void)_ignored;                                  \
  } while (0)

#define TURBOBP_CHECK_OK(expr)                                        \
  do {                                                                \
    ::turbobp::Status _s = (expr);                                    \
    if (!_s.ok()) {                                                   \
      ::turbobp::Panic(__FILE__, __LINE__, _s.ToString().c_str());    \
    }                                                                 \
  } while (0)

#ifndef NDEBUG
#define TURBOBP_DCHECK(cond) TURBOBP_CHECK(cond)
#else
#define TURBOBP_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

}  // namespace turbobp

#endif  // TURBOBP_COMMON_STATUS_H_
