// Reproduces Figure 7: the effect of the LC dirty-fraction threshold
// (lambda = 10% / 50% / 90%) on the TPC-C 4K-warehouse database, plus the
// cleaner's disk request rate the paper quotes (950 / 769 / 521 IOPS).
// Higher lambda lets the SSD hold more dirty pages, absorbing more of the
// read/write traffic to hot dirty pages before they ever cost a disk I/O.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 7: LC with lambda in {10%, 50%, 90%}, TPC-C 4K warehouses",
      "throughput(90%) ~ 3.1x throughput(10%), ~1.6x throughput(50%); "
      "cleaner IOPS 950/769/521");

  const Time duration = bench::ScaledDuration(Seconds(600));
  const TpccConfig config = bench::TpccForPages(64, bench::kTpccPages[2]);
  const double lambdas[3] = {0.10, 0.50, 0.90};

  DriverOptions opts;
  opts.sample_width = bench::ScaledDuration(Seconds(36));

  std::vector<DriverResult> results;
  std::vector<double> cleaner_iops;
  for (double lambda : lambdas) {
    DriverResult r = bench::RunOltp<TpccWorkload>(
        SsdDesign::kLazyCleaning, config, bench::kTpccPages[2], lambda,
        duration, /*ckpt_interval=*/0, opts);
    cleaner_iops.push_back(static_cast<double>(r.ssd.cleaner_io_requests) /
                           ToSeconds(duration));
    results.push_back(std::move(r));
    std::fflush(stdout);
  }

  TextTable summary({"lambda", "tpmC (scaled)", "vs lambda=10%",
                     "cleaner disk req/s", "pages cleaned", "dirty frames end"});
  for (size_t i = 0; i < results.size(); ++i) {
    summary.AddRow(
        {TextTable::Fmt(lambdas[i] * 100, 0) + "%",
         TextTable::Fmt(results[i].steady_rate * 60.0, 0),
         TextTable::Fmt(results[i].steady_rate /
                            std::max(1e-9, results[0].steady_rate),
                        2),
         TextTable::Fmt(cleaner_iops[i], 1),
         TextTable::Fmt(results[i].ssd.cleaner_disk_writes),
         TextTable::Fmt(results[i].ssd.dirty_frames)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  // Throughput-over-time curves (the figure itself).
  std::vector<std::vector<double>> curves;
  size_t buckets = 0;
  for (const auto& r : results) {
    curves.push_back(r.throughput.SmoothedRates(3));
    buckets = std::max(buckets, curves.back().size());
  }
  TextTable curve_table(
      {"t (s)", "LC lambda=10%", "LC lambda=50%", "LC lambda=90%"});
  for (size_t b = 0; b < buckets; ++b) {
    curve_table.AddRow(
        {TextTable::Fmt(ToSeconds(results[0].throughput.BucketMid(b)), 0),
         TextTable::Fmt(b < curves[0].size() ? curves[0][b] * 60 : 0, 0),
         TextTable::Fmt(b < curves[1].size() ? curves[1][b] * 60 : 0, 0),
         TextTable::Fmt(b < curves[2].size() ? curves[2][b] * 60 : 0, 0)});
  }
  std::printf("%s\n", curve_table.ToString().c_str());
  std::printf(
      "Expected shape: throughput increases with lambda while the cleaner's\n"
      "disk request rate decreases — more dirty residency means more\n"
      "absorbed re-writes and fewer forced copies to disk.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
