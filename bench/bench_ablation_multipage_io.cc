// Ablation for Section 3.3.3: when a multi-page read request has some pages
// cached on the SSD, splitting the request around them is *slower* than
// issuing one large disk read and trimming only the leading/trailing SSD
// pages, because the disk handles one large I/O far better than several
// small ones. Compares three strategies on a scan whose pages are partially
// SSD-resident.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/sim_device.h"
#include "storage/striped_array.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 1024;
constexpr uint32_t kRun = 8;  // pages per multi-page request

// Time to satisfy one 8-page request where `ssd_mask` marks SSD-resident
// pages, under each strategy. Fresh devices per call so timings are clean.
struct Timings {
  Time split;  // one I/O per contiguous piece (the paper's first attempt)
  Time trim;   // trim ends from SSD, one disk I/O for the middle
  Time disk_only;
};

Timings MeasureOne(uint32_t ssd_mask) {
  Timings t{};
  std::vector<uint8_t> buf(kRun * kPage);
  for (int strategy = 0; strategy < 3; ++strategy) {
    StripedDiskArray disks(1 << 12, kPage, StripedDiskArray::Options());
    SsdParams sp;
    sp.page_bytes = kPage;
    SimDevice ssd(256, kPage, std::make_unique<SsdModel>(sp));
    Time done = 0;
    auto read_disk = [&](uint32_t first, uint32_t count) {
      done = std::max(done, disks.Read(512 + first, count,
                                       std::span<uint8_t>(buf.data(),
                                                          count * kPage),
                                       0).time);
    };
    auto read_ssd = [&](uint32_t page) {
      done = std::max(done, ssd.Read(page, 1,
                                     std::span<uint8_t>(buf.data(), kPage), 0)
                                .time);
    };
    if (strategy == 0) {
      // Split: each maximal non-SSD run is a separate disk I/O.
      uint32_t i = 0;
      while (i < kRun) {
        if (ssd_mask >> i & 1) {
          read_ssd(i);
          ++i;
          continue;
        }
        uint32_t j = i;
        while (j < kRun && !(ssd_mask >> j & 1)) ++j;
        read_disk(i, j - i);
        i = j;
      }
      t.split = done;
    } else if (strategy == 1) {
      // Trim: peel SSD pages off both ends, one disk I/O for the middle.
      uint32_t lo = 0, hi = kRun;
      while (lo < hi && (ssd_mask >> lo & 1)) read_ssd(lo++);
      while (hi > lo && (ssd_mask >> (hi - 1) & 1)) read_ssd(--hi);
      if (lo < hi) read_disk(lo, hi - lo);
      t.trim = done;
    } else {
      read_disk(0, kRun);
      t.disk_only = done;
    }
  }
  return t;
}

void Run() {
  bench::PrintHeader(
      "Ablation: multi-page I/O — split vs trim (Section 3.3.3)",
      "splitting a read around SSD-resident pages reduced performance; "
      "trimming only the ends wins");

  Rng rng(5);
  TextTable table({"SSD-resident pattern", "split (ms)", "trim (ms)",
                   "disk-only (ms)", "trim speedup vs split"});
  const struct {
    const char* name;
    uint32_t mask;
  } patterns[] = {
      {"none", 0x00},
      {"middle 2 pages (3rd,5th)", 0x14},  // the paper's example
      {"alternating", 0x55},
      {"both ends", 0xC3},
      {"all but one", 0xF7},
  };
  for (const auto& p : patterns) {
    const Timings t = MeasureOne(p.mask);
    table.AddRow({p.name, TextTable::Fmt(ToMillis(t.split), 2),
                  TextTable::Fmt(ToMillis(t.trim), 2),
                  TextTable::Fmt(ToMillis(t.disk_only), 2),
                  TextTable::Fmt(static_cast<double>(t.split) /
                                     static_cast<double>(t.trim),
                                 2)});
  }
  // Aggregate over random residency patterns.
  double split_sum = 0, trim_sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const Timings t = MeasureOne(static_cast<uint32_t>(rng.Uniform(256)));
    split_sum += static_cast<double>(t.split);
    trim_sum += static_cast<double>(t.trim);
  }
  table.AddRow({"random (avg of 1000)", TextTable::Fmt(split_sum / 1e6, 2),
                TextTable::Fmt(trim_sum / 1e6, 2), "-",
                TextTable::Fmt(split_sum / trim_sum, 2)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: splitting multiplies disk positioning costs and is\n"
      "consistently slower; trimming approaches the single-large-I/O cost\n"
      "while still offloading the ends to the SSD.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
