// Ablation for the Section 2.5 latch-contention claim: TAC writes a page to
// the SSD immediately after its disk read, and the admission write holds
// the page latch against forward processing — "with the TPC-E workloads we
// have observed that TAC has page latch times that are about 25% longer on
// the average". The paper's designs write only at eviction, so they show
// no such waits.
//
// Phase 2 measures the buffer pool's own latches under real OS threads: N
// clients fault distinct pages through a device with a fixed per-read sleep.
// A pool that holds its pool-wide latch across the device read serializes
// the faults (each thread's wall time ~ N * reads * sleep); a pool that
// drops the latch for the I/O overlaps them (wall ~ reads * sleep). The
// derived latch wait — wall time minus the thread's own device time — is
// the A/B metric, computable against any pool version; the shard-latch
// counters are reported too where the stats struct has them.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "buffer/buffer_pool.h"
#include "storage/mem_device.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

// StorageDevice decorator sleeping (real time) before each charged read.
class SleepyReadDevice : public StorageDevice {
 public:
  SleepyReadDevice(StorageDevice* base, std::chrono::microseconds read_sleep)
      : base_(base), read_sleep_(read_sleep) {}

  uint64_t num_pages() const override { return base_->num_pages(); }
  uint32_t page_bytes() const override { return base_->page_bytes(); }

  IoResult Read(uint64_t first_page, uint32_t num_pages,
                std::span<uint8_t> out, Time now, bool charge = true) override {
    if (charge) std::this_thread::sleep_for(read_sleep_);
    return base_->Read(first_page, num_pages, out, now, charge);
  }

  IoResult Write(uint64_t first_page, uint32_t num_pages,
                 std::span<const uint8_t> data, Time now,
                 bool charge = true) override {
    return base_->Write(first_page, num_pages, data, now, charge);
  }

 private:
  StorageDevice* base_;
  std::chrono::microseconds read_sleep_;
};

std::string ThreadedContentionPhase(std::vector<std::string>& json_items) {
  constexpr int kThreads = 8;
  const int pages_per_thread = bench::QuickMode() ? 60 : 150;
  constexpr std::chrono::microseconds kReadSleep(300);
  constexpr uint32_t kPage = 512;

  MemDevice mem(1 << 14, kPage);
  mem.SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
    PageView v(out.data(), kPage);
    v.Format(page, PageType::kRaw);
    v.SealChecksum();
  });
  SleepyReadDevice slow(&mem, kReadSleep);
  MemDevice log_dev(1 << 10, kPage);
  DiskManager disk(&slow);
  LogManager log(&log_dev);
  BufferPool::Options opts;
  opts.num_frames = 4096;  // every fault gets a free frame: reads dominate
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk, &log, nullptr);

  std::vector<int64_t> wall_ns(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto t0 = std::chrono::steady_clock::now();
      IoContext ctx;
      for (int i = 0; i < pages_per_thread; ++i) {
        const PageId pid =
            static_cast<PageId>(t) * pages_per_thread + i;
        PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
      }
      wall_ns[t] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    });
  }
  for (auto& th : threads) th.join();

  const int64_t own_io_ns =
      static_cast<int64_t>(pages_per_thread) *
      std::chrono::duration_cast<std::chrono::nanoseconds>(kReadSleep).count();
  int64_t derived_wait_ns = 0;
  int64_t wall_total_ns = 0;
  for (const int64_t w : wall_ns) {
    wall_total_ns += w;
    derived_wait_ns += std::max<int64_t>(0, w - own_io_ns);
  }

  std::string j = "{";
  bench::JsonAdd(j, "phase", "threaded_contention", true);
  bench::JsonAdd(j, "threads", static_cast<int64_t>(kThreads));
  bench::JsonAdd(j, "pages_per_thread",
                 static_cast<int64_t>(pages_per_thread));
  bench::JsonAdd(j, "read_sleep_us", kReadSleep.count());
  bench::JsonAdd(j, "wall_ms_total",
                 static_cast<double>(wall_total_ns) / 1e6);
  bench::JsonAdd(j, "own_io_ms_per_thread",
                 static_cast<double>(own_io_ns) / 1e6);
  bench::JsonAdd(j, "derived_latch_wait_ms",
                 static_cast<double>(derived_wait_ns) / 1e6);
  const auto stats = pool.stats();
  bench::AddPoolLatchFields(j, stats);
  j += "}";
  json_items.push_back(j);

  std::printf(
      "Threaded contention (%d threads x %d faults, %lldus/read):\n"
      "  wall total %.1f ms, own-I/O per thread %.1f ms,\n"
      "  derived pool-latch wait %.1f ms\n\n",
      kThreads, pages_per_thread,
      static_cast<long long>(kReadSleep.count()),
      static_cast<double>(wall_total_ns) / 1e6,
      static_cast<double>(own_io_ns) / 1e6,
      static_cast<double>(derived_wait_ns) / 1e6);
  char line[160];
  std::snprintf(line, sizeof(line), "%.1f",
                static_cast<double>(derived_wait_ns) / 1e6);
  return line;
}

void Run() {
  bench::PrintHeader(
      "Ablation: page latch waits caused by SSD admission writes (TPC-E)",
      "TAC's latch waits ~25% longer than the eviction-time designs");

  std::vector<std::string> json_items;

  const Time duration = bench::ScaledDuration(Seconds(240));
  const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);

  TextTable table({"design", "total latch wait (ms)", "per 1K txns (ms)",
                   "tpsE (scaled)"});
  for (SsdDesign d : {SsdDesign::kDualWrite, SsdDesign::kLazyCleaning,
                      SsdDesign::kTac}) {
    const DriverResult r = bench::RunOltp<TpceWorkload>(
        d, config, bench::kTpcePages[1], 0.01, duration, Seconds(40));
    table.AddRow(
        {r.design, TextTable::Fmt(ToMillis(r.total_latch_wait), 1),
         TextTable::Fmt(ToMillis(r.total_latch_wait) /
                            std::max<double>(1, r.total_txns / 1000.0),
                        2),
         TextTable::Fmt(r.steady_rate, 1)});
    json_items.push_back(bench::ResultJson(r));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: DW and LC accumulate zero admission-latch waits\n"
      "(they write to the SSD only after eviction, when no one holds the\n"
      "page); TAC pays a measurable wait whenever a just-read page is\n"
      "touched again while its admission write is in flight.\n\n");

  ThreadedContentionPhase(json_items);
  bench::WriteJson("ablation_latch_waits", json_items);
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
