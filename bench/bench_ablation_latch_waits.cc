// Ablation for the Section 2.5 latch-contention claim: TAC writes a page to
// the SSD immediately after its disk read, and the admission write holds
// the page latch against forward processing — "with the TPC-E workloads we
// have observed that TAC has page latch times that are about 25% longer on
// the average". The paper's designs write only at eviction, so they show
// no such waits.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation: page latch waits caused by SSD admission writes (TPC-E)",
      "TAC's latch waits ~25% longer than the eviction-time designs");

  const Time duration = bench::ScaledDuration(Seconds(240));
  const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);

  TextTable table({"design", "total latch wait (ms)", "per 1K txns (ms)",
                   "tpsE (scaled)"});
  for (SsdDesign d : {SsdDesign::kDualWrite, SsdDesign::kLazyCleaning,
                      SsdDesign::kTac}) {
    const DriverResult r = bench::RunOltp<TpceWorkload>(
        d, config, bench::kTpcePages[1], 0.01, duration, Seconds(40));
    table.AddRow(
        {r.design, TextTable::Fmt(ToMillis(r.total_latch_wait), 1),
         TextTable::Fmt(ToMillis(r.total_latch_wait) /
                            std::max<double>(1, r.total_txns / 1000.0),
                        2),
         TextTable::Fmt(r.steady_rate, 1)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: DW and LC accumulate zero admission-latch waits\n"
      "(they write to the SSD only after eviction, when no one holds the\n"
      "page); TAC pays a measurable wait whenever a just-read page is\n"
      "touched again while its admission write is in flight.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
