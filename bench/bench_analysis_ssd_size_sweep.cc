// Analysis bench for the paper's concluding claim: "The best speedup can be
// achieved when the working set size is close to the SSD buffer pool size."
// Sweeps the SSD capacity S for a fixed TPC-E working set and plots the
// speedup dome: rising while the SSD captures more of the working set,
// flattening once the working set fits (extra capacity buys nothing).

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Analysis: speedup vs SSD size (fixed TPC-E working set)",
      "conclusions: best speedup when working set ~ SSD size");

  const Time duration = bench::ScaledDuration(Seconds(300));
  const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);
  const uint64_t db_pages = bench::kTpcePages[1];

  // Baseline without an SSD.
  double baseline;
  {
    SystemConfig sys = bench::BaseSystem(SsdDesign::kNoSsd, db_pages, 0.01);
    DbSystem system(sys);
    Database db(&system);
    TpceWorkload::Populate(&db, config);
    TpceWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = duration;
    baseline = Driver(&system, &workload, opts).Run().steady_rate;
  }

  TextTable table({"SSD frames", "SSD/DB ratio", "tpsE", "speedup",
                   "SSD hit rate"});
  for (const double frac : {0.05, 0.15, 0.3, 0.6, 1.0, 1.5}) {
    SystemConfig sys = bench::BaseSystem(SsdDesign::kDualWrite, db_pages, 0.01);
    sys.ssd_frames = static_cast<int64_t>(db_pages * frac);
    DbSystem system(sys);
    Database db(&system);
    TpceWorkload::Populate(&db, config);
    TpceWorkload workload(&db, config);
    system.checkpoint().SchedulePeriodic(Seconds(40));
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = duration;
    const DriverResult r = Driver(&system, &workload, opts).Run();
    const auto& s = r.ssd;
    const double hit =
        s.hits + s.probe_misses > 0
            ? static_cast<double>(s.hits) /
                  static_cast<double>(s.hits + s.probe_misses)
            : 0.0;
    table.AddRow({TextTable::Fmt(sys.ssd_frames), TextTable::Fmt(frac, 2),
                  TextTable::Fmt(r.steady_rate, 1),
                  TextTable::Fmt(baseline > 0 ? r.steady_rate / baseline : 0, 2),
                  TextTable::Fmt(hit, 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: speedup grows steeply with SSD size while the\n"
      "working set does not fit, then flattens once it does — capacity\n"
      "beyond the working set is wasted (the paper's 10K-customer case).\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
