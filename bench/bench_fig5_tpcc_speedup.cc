// Reproduces Figure 5 (a)-(c): steady-state TPC-C throughput speedups of
// DW, LC and TAC over the noSSD baseline at the 1K / 2K / 4K-warehouse
// scales (checkpointing effectively off, lambda = 50%, metric = average
// throughput over the trailing window, as in Section 4.2).
//
// Paper: (a) 1K: DW 2.2x LC 9.1x TAC 1.9x   (b) 2K: 1.9x / 9.4x / 1.4x
//        (c) 4K: 2.2x / 6.2x / 1.9x — LC >> DW > TAC everywhere.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

using bench::kTpccLabels;
using bench::kTpccPages;

void Run() {
  bench::PrintHeader(
      "Figure 5 (a)-(c): TPC-C speedups over noSSD",
      "1K: DW 2.2 LC 9.1 TAC 1.9 | 2K: 1.9/9.4/1.4 | 4K: 2.2/6.2/1.9");

  const Time duration = bench::ScaledDuration(Seconds(360));
  const int warehouses[3] = {16, 32, 64};
  const double paper[3][3] = {{2.2, 9.1, 1.9}, {1.9, 9.4, 1.4}, {2.2, 6.2, 1.9}};

  TextTable table({"scale", "design", "tpmC (scaled)", "speedup",
                   "paper speedup", "SSD hit", "BP hit"});
  for (int i = 0; i < 3; ++i) {
    const TpccConfig config =
        bench::TpccForPages(warehouses[i], kTpccPages[i]);
    double baseline = 0;
    const SsdDesign designs[] = {SsdDesign::kNoSsd, SsdDesign::kDualWrite,
                                 SsdDesign::kLazyCleaning, SsdDesign::kTac};
    const double paper_speedup[] = {1.0, paper[i][0], paper[i][1], paper[i][2]};
    for (int d = 0; d < 4; ++d) {
      const DriverResult result = bench::RunOltp<TpccWorkload>(
          designs[d], config, kTpccPages[i], /*lc_lambda=*/0.5, duration,
          /*ckpt_interval=*/0);  // checkpointing off for TPC-C (Section 4.1.2)
      if (d == 0) baseline = result.steady_rate;
      const double speedup =
          baseline > 0 ? result.steady_rate / baseline : 0.0;
      const auto& s = result.ssd;
      const double hit_rate =
          s.hits + s.probe_misses > 0
              ? static_cast<double>(s.hits) /
                    static_cast<double>(s.hits + s.probe_misses)
              : 0.0;
      const double bp_hit =
          static_cast<double>(result.bp.hits) /
          static_cast<double>(result.bp.hits + result.bp.misses);
      table.AddRow({kTpccLabels[i], result.design,
                    TextTable::Fmt(result.steady_rate * 60.0, 0),
                    TextTable::Fmt(speedup, 2),
                    TextTable::Fmt(paper_speedup[d], 1),
                    TextTable::Fmt(hit_rate, 2), TextTable::Fmt(bp_hit, 2)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: every SSD design beats noSSD; LC leads by a wide\n"
      "margin (write-back absorbs TPC-C's re-dirtied hot pages); DW beats\n"
      "TAC (physical invalidation + eviction-time admission).\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
