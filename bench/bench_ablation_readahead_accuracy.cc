// Ablation for the Section 2.2 classifier comparison: "while the read-ahead
// mechanism was 82% accurate in identifying sequential reads, the method
// proposed in [29] was only 51% accurate" (the 64-page-proximity heuristic,
// measured under concurrent interleaved streams).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/read_ahead.h"

namespace turbobp {
namespace {

struct Accuracy {
  int64_t correct = 0;
  int64_t total = 0;
  double Rate() const {
    return total ? static_cast<double>(correct) / static_cast<double>(total)
                 : 0;
  }
};

void Run() {
  bench::PrintHeader(
      "Ablation: read-ahead classifier vs 64-page proximity heuristic [29]",
      "sequential-read query: read-ahead 82% accurate, proximity 51%");

  // Model the paper's experiment: issue a sequential-read query while the
  // system carries concurrent traffic. Streams: several table scans plus
  // random index lookups, interleaved as a multi-user system would.
  Rng rng(17);
  const int kStreams = 4;
  PageId scan_pos[kStreams];
  ReadAheadTracker trackers[kStreams];
  for (int s = 0; s < kStreams; ++s) scan_pos[s] = static_cast<PageId>(s) << 22;
  ProximityClassifier proximity(64);

  Accuracy ra, prox;
  // Scans restart periodically (query boundaries), so the read-ahead
  // warm-up cost recurs — that is what keeps it at ~82%, not ~100%.
  const int kScanLength = 10;
  int remaining[kStreams] = {};
  for (int step = 0; step < 200000; ++step) {
    const uint64_t pick = rng.Uniform(100);
    if (pick < 60) {
      const int s = static_cast<int>(rng.Uniform(kStreams));
      if (remaining[s] == 0) {
        remaining[s] = kScanLength;
        scan_pos[s] += 1000;  // new scan elsewhere in the table
        trackers[s].Reset();
      }
      --remaining[s];
      const PageId p = scan_pos[s]++;
      // Ground truth: sequential.
      if (trackers[s].OnRequest(p)) ++ra.correct;
      ++ra.total;
      if (proximity.Classify(p) == AccessKind::kSequential) ++prox.correct;
      ++prox.total;
    } else {
      const PageId p = rng.Uniform(1 << 24);
      // Ground truth: random. The read-ahead mechanism never marks lookups
      // (they do not flow through a scan operator) — always correct here.
      ++ra.correct;
      ++ra.total;
      if (proximity.Classify(p) == AccessKind::kRandom) ++prox.correct;
      ++prox.total;
    }
  }

  TextTable table({"classifier", "accuracy", "paper"});
  table.AddRow({"read-ahead mechanism", TextTable::Fmt(ra.Rate() * 100, 1) + "%",
                "82%"});
  table.AddRow({"64-page proximity [29]",
                TextTable::Fmt(prox.Rate() * 100, 1) + "%", "51%"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: the read-ahead mechanism loses only the per-scan\n"
      "warm-up pages; the global proximity heuristic is degraded both by\n"
      "interleaving (scans look random) and by dense random traffic that\n"
      "happens to land within 64 pages of the previous request.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
