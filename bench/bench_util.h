#ifndef TURBOBP_BENCH_BENCH_UTIL_H_
#define TURBOBP_BENCH_BENCH_UTIL_H_

// Shared setup for the paper-reproduction bench harnesses.
//
// Sizes reproduce the paper's hardware at 1/400 scale *in page counts*
// (Section 4.1: 20GB DBMS buffer pool, 140GB of a 160GB SLC Fusion ioDrive
// as the SSD buffer pool, databases of 100-415GB striped over eight
// 7,200rpm drives, a dedicated log disk):
//     buffer pool   20GB  = 2,621,440 pages -> 6,554 frames
//     SSD pool     140GB = 18,350,080 pages -> 45,875 frames (S)
//     TPC-C DBs    100/200/400GB -> 32,768 / 65,536 / 131,072 pages
//     TPC-E DBs    115/230/415GB -> 37,683 / 75,367 / 135,988 pages
//     TPC-H DBs     45/160GB     -> 14,745 / 52,429 pages
// Virtual durations are the paper's divided by 60 (10h -> 600s) unless
// TURBOBP_QUICK=1 shrinks them 4x for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.h"
#include "engine/database.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"
#include "workload/tpch.h"

namespace turbobp {
namespace bench {

inline constexpr uint32_t kPageBytes = 1024;
inline constexpr uint64_t kBpFrames = 6554;
inline constexpr int64_t kSsdFrames = 45875;
inline constexpr int kClients = 25;

inline bool QuickMode() {
  const char* v = std::getenv("TURBOBP_QUICK");
  return v != nullptr && v[0] == '1';
}

inline Time ScaledDuration(Time full) { return QuickMode() ? full / 4 : full; }

// Paper database-size targets (pages).
inline constexpr uint64_t kTpccPages[3] = {32768, 65536, 131072};
inline constexpr const char* kTpccLabels[3] = {"1K warehouses (100GB)",
                                               "2K warehouses (200GB)",
                                               "4K warehouses (400GB)"};
inline constexpr uint64_t kTpcePages[3] = {37683, 75367, 135988};
inline constexpr const char* kTpceLabels[3] = {"10K customers (115GB)",
                                               "20K customers (230GB)",
                                               "40K customers (415GB)"};
inline constexpr uint64_t kTpchPages[2] = {14745, 52429};
inline constexpr const char* kTpchLabels[2] = {"30 SF (45GB)",
                                               "100 SF (160GB)"};

inline SystemConfig BaseSystem(SsdDesign design, uint64_t db_pages,
                               double lc_lambda) {
  SystemConfig config;
  config.page_bytes = kPageBytes;
  config.db_pages = db_pages;
  config.bp_frames = kBpFrames;
  config.ssd_frames = kSsdFrames;
  config.design = design;
  config.ssd_options.lc_dirty_fraction = lc_lambda;  // Table 2: 1% E/H, 50% C
  return config;
}

// Finds a TPC-C row_scale whose database lands on `target_pages`.
inline TpccConfig TpccForPages(int warehouses, uint64_t target_pages,
                               uint64_t seed = 42) {
  TpccConfig config;
  config.warehouses = warehouses;
  config.seed = seed;
  double lo = 1e-4, hi = 1.0;
  for (int iter = 0; iter < 48; ++iter) {
    config.row_scale = (lo + hi) / 2;
    const uint64_t pages = TpccWorkload::EstimateDbPages(config, kPageBytes);
    if (pages < target_pages) {
      lo = config.row_scale;
    } else {
      hi = config.row_scale;
    }
  }
  config.row_scale = lo;
  return config;
}

inline TpceConfig TpceForPages(int64_t customers, uint64_t target_pages,
                               uint64_t seed = 7) {
  TpceConfig config;
  config.customers = customers;
  config.seed = seed;
  int64_t lo = 1, hi = 1 << 20;
  while (lo < hi) {
    config.trades_per_customer = (lo + hi + 1) / 2;
    if (TpceWorkload::EstimateDbPages(config, kPageBytes) <= target_pages) {
      lo = config.trades_per_customer;
    } else {
      hi = config.trades_per_customer - 1;
    }
  }
  config.trades_per_customer = lo;
  return config;
}

inline TpchConfig TpchForPages(double sf, uint64_t target_pages, int streams,
                               uint64_t seed = 11) {
  TpchConfig config;
  config.scale_factor = sf;
  config.streams = streams;
  config.seed = seed;
  double lo = 1e-7, hi = 1.0;
  for (int iter = 0; iter < 48; ++iter) {
    config.row_scale = (lo + hi) / 2;
    if (TpchWorkload::EstimateDbPages(config, kPageBytes) < target_pages) {
      lo = config.row_scale;
    } else {
      hi = config.row_scale;
    }
  }
  config.row_scale = lo;
  return config;
}

// Builds, populates and runs one OLTP configuration; returns the result.
template <typename WorkloadT, typename ConfigT>
DriverResult RunOltp(SsdDesign design, const ConfigT& wl_config,
                     uint64_t db_pages_hint, double lc_lambda, Time duration,
                     Time ckpt_interval, DriverOptions driver_opts = {}) {
  const uint64_t db_pages =
      std::max<uint64_t>(WorkloadT::EstimateDbPages(wl_config, kPageBytes),
                         db_pages_hint);
  DbSystem system(BaseSystem(design, db_pages, lc_lambda));
  Database db(&system);
  WorkloadT::Populate(&db, wl_config);
  WorkloadT workload(&db, wl_config);
  if (ckpt_interval > 0) system.checkpoint().SchedulePeriodic(ckpt_interval);
  driver_opts.num_clients = kClients;
  driver_opts.duration = duration;
  if (driver_opts.steady_window == Seconds(60) && duration < Seconds(120)) {
    driver_opts.steady_window = duration / 4;
  }
  Driver driver(&system, &workload, driver_opts);
  return driver.Run();
}

// ---------------------------------------------------------------- JSON out
//
// Each bench emits machine-readable evidence next to its text tables:
// WriteJson("ablation_latch_waits", items) writes BENCH_ablation_latch_waits
// .json in the working directory, one JSON object per item. CI asserts the
// file exists and is non-empty; A/B comparisons diff two such files.

inline void JsonAdd(std::string& j, const char* key, const std::string& val,
                    bool quote) {
  if (j.size() > 1) j += ",";
  j += "\"";
  j += key;
  j += quote ? "\":\"" : "\":";
  j += val;
  if (quote) j += "\"";
}

inline void JsonAdd(std::string& j, const char* key, double val) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", val);
  JsonAdd(j, key, buf, false);
}

inline void JsonAdd(std::string& j, const char* key, int64_t val) {
  JsonAdd(j, key, std::to_string(val), false);
}

// Adds the shard-latch contention counters where the stats struct has them.
// A template so the `if constexpr` branch is genuinely discarded against a
// BufferPoolStats that predates the counters — the same bench source then
// compiles in a pre-change checkout for A/B latch-wait comparisons.
template <typename Stats>
void AddPoolLatchFields(std::string& j, const Stats& bp) {
  if constexpr (requires { bp.pool_latch_wait_ns; }) {
    JsonAdd(j, "pool_latch_waits", bp.pool_latch_waits);
    JsonAdd(j, "pool_latch_wait_ms",
            static_cast<double>(bp.pool_latch_wait_ns) / 1e6);
  }
}

// Adds the SSD self-healing counters where the stats struct has them (same
// A/B-checkout trick as AddPoolLatchFields: the branch is discarded against
// an SsdManagerStats that predates per-partition degradation).
template <typename Stats>
void AddSsdHealthFields(std::string& j, const Stats& ssd) {
  if constexpr (requires { ssd.partitions_degraded; }) {
    JsonAdd(j, "ssd_partitions_degraded", ssd.partitions_degraded);
    JsonAdd(j, "ssd_partitions_recovered", ssd.partitions_recovered);
    JsonAdd(j, "ssd_scrub_frames_verified", ssd.scrub_frames_verified);
    JsonAdd(j, "ssd_scrub_frames_repaired", ssd.scrub_frames_repaired);
    JsonAdd(j, "ssd_io_timeouts", ssd.io_timeouts);
    JsonAdd(j, "ssd_hedged_reads", ssd.hedged_reads);
  }
}

// Renders one driver run. Compiles against both the current BufferPoolStats
// and older ones without the shard-latch counters, so the same bench source
// can be dropped into a pre-change checkout for A/B comparisons.
inline std::string ResultJson(const DriverResult& r) {
  std::string j = "{";
  JsonAdd(j, "workload", r.workload, true);
  JsonAdd(j, "design", r.design, true);
  JsonAdd(j, "total_txns", r.total_txns);
  JsonAdd(j, "metric_txns", r.metric_txns);
  JsonAdd(j, "steady_rate", r.steady_rate);
  JsonAdd(j, "overall_rate", r.overall_rate);
  JsonAdd(j, "total_latch_wait_ms", ToMillis(r.total_latch_wait));
  JsonAdd(j, "bp_hits", r.bp.hits);
  JsonAdd(j, "bp_misses", r.bp.misses);
  JsonAdd(j, "bp_hit_rate",
          static_cast<double>(r.bp.hits) /
              std::max<int64_t>(1, r.bp.hits + r.bp.misses));
  JsonAdd(j, "ssd_hit_rate",
          static_cast<double>(r.bp.ssd_hits) /
              std::max<int64_t>(1, r.bp.misses));
  JsonAdd(j, "bp_latch_wait_ms", ToMillis(r.bp.latch_wait_time));
  AddPoolLatchFields(j, r.bp);
  AddSsdHealthFields(j, r.ssd);
  j += "}";
  return j;
}

inline void WriteJson(const std::string& name,
                      const std::vector<std::string>& items) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < items.size(); ++i) {
    std::fprintf(f, "  %s%s\n", items[i].c_str(),
                 i + 1 < items.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("JSON evidence written to %s\n", path.c_str());
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper.c_str());
  if (QuickMode()) std::printf("(TURBOBP_QUICK=1: shortened run)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace turbobp

#endif  // TURBOBP_BENCH_BENCH_UTIL_H_
