// Ablation for the Section 4.1 claim the paper uses to drop CW from its
// plots: "for the 20K customer TPC-E database, CW was 21.6% and 23.3%
// slower than DW and LC, respectively" — and CW is worse than both on the
// update-heavy TPC-C as well.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation: clean-write (CW) vs DW / LC",
      "TPC-E 20K: CW 21.6% slower than DW, 23.3% slower than LC");

  const Time duration = bench::ScaledDuration(Seconds(360));

  {
    const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);
    TextTable table({"design", "tpsE (scaled)", "vs CW"});
    double cw_rate = 0;
    for (SsdDesign d : {SsdDesign::kCleanWrite, SsdDesign::kDualWrite,
                        SsdDesign::kLazyCleaning}) {
      const DriverResult r = bench::RunOltp<TpceWorkload>(
          d, config, bench::kTpcePages[1], 0.01, duration, Seconds(40));
      if (d == SsdDesign::kCleanWrite) cw_rate = r.steady_rate;
      table.AddRow({r.design, TextTable::Fmt(r.steady_rate, 1),
                    TextTable::Fmt(cw_rate > 0 ? r.steady_rate / cw_rate : 0,
                                   2)});
      std::fflush(stdout);
    }
    std::printf("---- TPC-E 20K customers ----\n%s\n", table.ToString().c_str());
  }
  {
    const TpccConfig config = bench::TpccForPages(32, bench::kTpccPages[1]);
    TextTable table({"design", "tpmC (scaled)", "vs CW"});
    double cw_rate = 0;
    for (SsdDesign d : {SsdDesign::kCleanWrite, SsdDesign::kDualWrite,
                        SsdDesign::kLazyCleaning}) {
      const DriverResult r = bench::RunOltp<TpccWorkload>(
          d, config, bench::kTpccPages[1], 0.5, duration, 0);
      if (d == SsdDesign::kCleanWrite) cw_rate = r.steady_rate;
      table.AddRow({r.design, TextTable::Fmt(r.steady_rate * 60, 0),
                    TextTable::Fmt(cw_rate > 0 ? r.steady_rate / cw_rate : 0,
                                   2)});
      std::fflush(stdout);
    }
    std::printf("---- TPC-C 2K warehouses ----\n%s\n", table.ToString().c_str());
  }
  std::printf(
      "Expected shape: CW trails DW and LC on both workloads (never caching\n"
      "dirty evictions wastes exactly the pages most likely to be re-read);\n"
      "the gap is modest on read-heavy TPC-E, large on TPC-C.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
