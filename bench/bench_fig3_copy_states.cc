// Audits Figure 3: with up to three copies of a page (memory / SSD / disk),
// only six relationships are legal; cases 4 and 6 (SSD newer than disk)
// can occur only under the LC design. This harness churns a buffer pool
// over each design, classifies every page's live copy-state at regular
// intervals, and prints the observed census — the write-through designs
// must show zero occurrences of cases 4 and 6.

#include <cstdio>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "common/rng.h"

namespace turbobp {
namespace {

constexpr PageId kPages = 2048;

struct Census {
  int64_t cases[7] = {0};  // 1..6 used
  int64_t illegal = 0;
};

Census AuditDesign(SsdDesign design) {
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = kPages;
  config.bp_frames = 256;
  config.ssd_frames = 768;
  config.design = design;
  config.ssd_options.num_partitions = 4;
  config.ssd_options.lc_dirty_fraction = 0.5;
  DbSystem system(config);
  Database db(&system);

  Census census;
  Rng rng(31 + static_cast<uint64_t>(design));
  IoContext ctx = system.MakeContext();
  auto disk_version = [&](PageId pid) {
    std::vector<uint8_t> buf(config.page_bytes);
    system.disk_array().Read(pid, 1, buf, 0, /*charge=*/false);
    return PageView(buf.data(), config.page_bytes).header().version;
  };
  auto ssd_version = [&](PageId pid) -> int64_t {
    if (system.ssd_manager().Probe(pid) == SsdProbe::kAbsent) return -1;
    std::vector<uint8_t> buf(config.page_bytes);
    IoContext probe = system.MakeContext(false);
    probe.now += Seconds(1000);
    if (!system.ssd_manager().TryReadPage(pid, buf, probe)) return -1;
    return static_cast<int64_t>(
        PageView(buf.data(), config.page_bytes).header().version);
  };

  for (int step = 0; step < 30000; ++step) {
    ctx.now = std::max(ctx.now, system.executor().now());
    const PageId pid = rng.Uniform(kPages);
    {
      PageGuard g = system.buffer_pool().FetchPage(pid, AccessKind::kRandom, ctx);
      if (rng.Bernoulli(0.4)) {
        g.view().payload()[0] = static_cast<uint8_t>(step);
        g.LogUpdate(1, kPageHeaderSize, 1);
      }
    }
    if (step % 500 != 0) continue;
    system.executor().RunUntil(ctx.now);
    for (PageId p = 0; p < kPages; p += 7) {
      const uint64_t disk_v = disk_version(p);
      const int64_t ssd_v = ssd_version(p);
      int64_t mem_v = -1;
      if (system.buffer_pool().Contains(p)) {
        PageGuard g = system.buffer_pool().FetchPage(p, AccessKind::kRandom, ctx);
        mem_v = static_cast<int64_t>(g.view().header().version);
      }
      int c;
      if (mem_v >= 0 && ssd_v < 0) {
        c = mem_v == static_cast<int64_t>(disk_v) ? 1
            : mem_v > static_cast<int64_t>(disk_v) ? 2
                                                   : 0;
      } else if (mem_v < 0 && ssd_v >= 0) {
        c = ssd_v == static_cast<int64_t>(disk_v) ? 3
            : ssd_v > static_cast<int64_t>(disk_v) ? 4
                                                   : 0;
      } else if (mem_v >= 0 && ssd_v >= 0) {
        if (mem_v != ssd_v) {
          c = 0;  // memory and SSD must match (invalidate-on-dirty)
        } else {
          c = mem_v == static_cast<int64_t>(disk_v) ? 5
              : mem_v > static_cast<int64_t>(disk_v) ? 6
                                                     : 0;
        }
      } else {
        continue;  // only the disk copy exists: trivial
      }
      if (c == 0) {
        ++census.illegal;
      } else {
        ++census.cases[c];
      }
    }
  }
  return census;
}

void Run() {
  bench::PrintHeader(
      "Figure 3: census of page copy-state relationships under churn",
      "six legal cases; cases 4 and 6 (SSD newer than disk) are LC-only");
  TextTable table({"design", "case1", "case2", "case3", "case4", "case5",
                   "case6", "illegal"});
  for (SsdDesign d : {SsdDesign::kCleanWrite, SsdDesign::kDualWrite,
                      SsdDesign::kLazyCleaning, SsdDesign::kTac}) {
    const Census c = AuditDesign(d);
    table.AddRow({ToString(d), TextTable::Fmt(c.cases[1]),
                  TextTable::Fmt(c.cases[2]), TextTable::Fmt(c.cases[3]),
                  TextTable::Fmt(c.cases[4]), TextTable::Fmt(c.cases[5]),
                  TextTable::Fmt(c.cases[6]), TextTable::Fmt(c.illegal)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: zero illegal states for every design; case4/case6\n"
      "strictly zero for CW, DW and TAC, non-zero for LC.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
