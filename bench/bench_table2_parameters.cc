// Reproduces Table 2: the parameter values used throughout the evaluation,
// printed from the library's actual defaults so the table cannot drift from
// the implementation.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ssd_cache_base.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader("Table 2: parameter values used in the evaluation",
                     "tau=95%, mu=100, N=16, S=18,350,080 (140GB), alpha=32, "
                     "lambda=1% (E,H) / 50% (C)");
  const SsdCacheOptions defaults;
  TextTable table({"symbol", "description", "paper value", "library default"});
  table.AddRow({"tau", "aggressive filling threshold", "95%",
                TextTable::Fmt(defaults.aggressive_fill * 100, 0) + "%"});
  table.AddRow({"mu", "throttle control threshold", "100",
                TextTable::Fmt(int64_t{defaults.throttle_queue_limit})});
  table.AddRow({"N", "number of SSD partitions", "16",
                TextTable::Fmt(int64_t{defaults.num_partitions})});
  table.AddRow({"S", "number of SSD frames (140GB)", "18350080",
                TextTable::Fmt(defaults.num_frames) + " (paper) / " +
                    TextTable::Fmt(bench::kSsdFrames) + " at 1/400 scale"});
  table.AddRow({"alpha", "max dirty pages per LC write request", "32",
                TextTable::Fmt(int64_t{defaults.lc_group_pages})});
  table.AddRow({"lambda", "dirty fraction of SSD space",
                "1% (E, H), 50% (C)",
                TextTable::Fmt(defaults.lc_dirty_fraction * 100, 0) +
                    "% default; benches set 1% (E,H) / 50% (C)"});
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
