// Micro-benchmarks for the SSD manager's data structures (Section 3.1):
// the hash-indexed buffer table, the free list, and the split clean/dirty
// heap. These are the operations on every SSD hit/admission path, so their
// constant factors bound the manager's CPU overhead.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/ssd_buffer_table.h"
#include "core/ssd_heap.h"

namespace turbobp {
namespace {

void BM_BufferTableLookupHit(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t rec = table.PopFree();
    table.record(rec).page_id = static_cast<PageId>(i) * 977;
    table.InsertHash(rec);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(rng.Uniform(static_cast<uint64_t>(n)) * 977));
  }
}
BENCHMARK(BM_BufferTableLookupHit)->Range(1 << 10, 1 << 18);

void BM_BufferTableLookupMiss(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t rec = table.PopFree();
    table.record(rec).page_id = static_cast<PageId>(i) * 977;
    table.InsertHash(rec);
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(rng.Next() | 1));
  }
}
BENCHMARK(BM_BufferTableLookupMiss)->Range(1 << 10, 1 << 18);

void BM_BufferTableInsertRemoveCycle(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  Rng rng(3);
  PageId next = 0;
  for (auto _ : state) {
    const int32_t rec = table.PopFree();
    if (rec == -1) {
      state.SkipWithError("table exhausted");
      break;
    }
    table.record(rec).page_id = next++;
    table.InsertHash(rec);
    table.RemoveHash(rec);
    table.PushFree(rec);
  }
}
BENCHMARK(BM_BufferTableInsertRemoveCycle)->Range(1 << 10, 1 << 16);

void BM_SplitHeapInsertRemove(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  SsdSplitHeap heap(&table, [&table](int32_t rec) {
    return static_cast<double>(table.record(rec).Lru2Key());
  });
  Rng rng(4);
  std::vector<int32_t> live;
  // Pre-fill to half capacity so operations run at realistic heap depth.
  for (int32_t i = 0; i < n / 2; ++i) {
    const int32_t rec = table.PopFree();
    table.record(rec).access[1] = static_cast<Time>(rng.Uniform(1 << 20));
    heap.InsertClean(rec);
    live.push_back(rec);
  }
  for (auto _ : state) {
    const int32_t rec = table.PopFree();
    table.record(rec).access[1] = static_cast<Time>(rng.Uniform(1 << 20));
    heap.InsertClean(rec);
    const size_t victim_idx = rng.Uniform(live.size());
    const int32_t victim = live[victim_idx];
    heap.Remove(victim);
    table.PushFree(victim);
    live[victim_idx] = rec;
  }
}
BENCHMARK(BM_SplitHeapInsertRemove)->Range(1 << 10, 1 << 16);

void BM_SplitHeapUpdateKey(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  SsdSplitHeap heap(&table, [&table](int32_t rec) {
    return static_cast<double>(table.record(rec).Lru2Key());
  });
  Rng rng(5);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t rec = table.PopFree();
    table.record(rec).access[1] = static_cast<Time>(rng.Uniform(1 << 20));
    heap.InsertClean(rec);
  }
  Time now = 1 << 21;
  for (auto _ : state) {
    const int32_t rec = static_cast<int32_t>(rng.Uniform(n));
    table.record(rec).Touch(now++);
    heap.UpdateKey(rec);
  }
}
BENCHMARK(BM_SplitHeapUpdateKey)->Range(1 << 10, 1 << 16);

void BM_SplitHeapVictimPop(benchmark::State& state) {
  const int32_t n = static_cast<int32_t>(state.range(0));
  SsdBufferTable table(n);
  SsdSplitHeap heap(&table, [&table](int32_t rec) {
    return static_cast<double>(table.record(rec).Lru2Key());
  });
  Rng rng(6);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t rec = table.PopFree();
    table.record(rec).access[1] = static_cast<Time>(rng.Uniform(1 << 20));
    heap.InsertClean(rec);
  }
  for (auto _ : state) {
    const int32_t victim = heap.CleanRoot();
    heap.Remove(victim);
    table.record(victim).access[1] = static_cast<Time>(rng.Uniform(1 << 20));
    heap.InsertClean(victim);
  }
}
BENCHMARK(BM_SplitHeapVictimPop)->Range(1 << 10, 1 << 16);

}  // namespace
}  // namespace turbobp

BENCHMARK_MAIN();
