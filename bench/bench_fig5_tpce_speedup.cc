// Reproduces Figure 5 (d)-(f): TPC-E speedups over noSSD at 10K / 20K /
// 40K customers (lambda = 1%, checkpoints every 40 minutes scaled).
//
// Paper: 10K: DW 5.5 LC 5.4 TAC 5.2 | 20K: 8.0/7.6/7.5 | 40K: 2.7/2.7/3.0.
// The designs converge (few updates) and the peak is at 20K, where the
// working set just fits the SSD.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

using bench::kTpceLabels;
using bench::kTpcePages;

void Run() {
  bench::PrintHeader(
      "Figure 5 (d)-(f): TPC-E speedups over noSSD",
      "10K: DW 5.5 LC 5.4 TAC 5.2 | 20K: 8.0/7.6/7.5 | 40K: 2.7/2.7/3.0");

  const Time duration = bench::ScaledDuration(Seconds(360));
  const Time ckpt_interval = Seconds(40);  // 40 minutes / 60
  const int64_t customers[3] = {1250, 2500, 5000};
  const double paper[3][3] = {{5.5, 5.4, 5.2}, {8.0, 7.6, 7.5}, {2.7, 2.7, 3.0}};

  TextTable table({"scale", "design", "tpsE (scaled)", "speedup",
                   "paper speedup", "SSD hit", "BP hit"});
  for (int i = 0; i < 3; ++i) {
    const TpceConfig config = bench::TpceForPages(customers[i], kTpcePages[i]);
    double baseline = 0;
    const SsdDesign designs[] = {SsdDesign::kNoSsd, SsdDesign::kDualWrite,
                                 SsdDesign::kLazyCleaning, SsdDesign::kTac};
    const double paper_speedup[] = {1.0, paper[i][0], paper[i][1], paper[i][2]};
    for (int d = 0; d < 4; ++d) {
      const DriverResult result = bench::RunOltp<TpceWorkload>(
          designs[d], config, kTpcePages[i], /*lc_lambda=*/0.01, duration,
          ckpt_interval);
      if (d == 0) baseline = result.steady_rate;
      const double speedup = baseline > 0 ? result.steady_rate / baseline : 0;
      const auto& s = result.ssd;
      const double ssd_hit =
          s.hits + s.probe_misses > 0
              ? static_cast<double>(s.hits) /
                    static_cast<double>(s.hits + s.probe_misses)
              : 0.0;
      const double bp_hit =
          static_cast<double>(result.bp.hits) /
          static_cast<double>(result.bp.hits + result.bp.misses);
      table.AddRow({kTpceLabels[i], result.design,
                    TextTable::Fmt(result.steady_rate, 1),
                    TextTable::Fmt(speedup, 2),
                    TextTable::Fmt(paper_speedup[d], 1),
                    TextTable::Fmt(ssd_hit, 2), TextTable::Fmt(bp_hit, 2)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: all three SSD designs land close together (the\n"
      "workload is read-intensive, so write-back buys little), with the\n"
      "largest gains at the middle scale where the working set ~fits the\n"
      "SSD, and muted gains at 40K where it does not.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
