// Reproduces Figure 8: read/write I/O traffic (MB/s) to the disks and to
// the SSD over the whole run — TPC-E 20K customers under DW.
//
// Paper landmarks: the disks start near 50MB/s of read traffic and drop to
// ~6MB/s once the buffer pool fills (the 8-page read-expansion feature);
// SSD read traffic climbs steadily until the SSD is full; write spikes mark
// checkpoints; in steady state the *disks* are the bottleneck (~6.5MB/s of
// random reads) while the SSD is far from saturated.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 8: I/O traffic to disks and SSD (TPC-E 20K customers, DW)",
      "disk read 50 -> 6MB/s after ramp; SSD read climbs to ~46MB/s; "
      "checkpoint write spikes");

  const Time duration = bench::ScaledDuration(Seconds(600));
  const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);
  DriverOptions opts;
  opts.sample_width = bench::ScaledDuration(Seconds(20));
  opts.record_traffic = true;

  const DriverResult r = bench::RunOltp<TpceWorkload>(
      SsdDesign::kDualWrite, config, bench::kTpcePages[1], 0.01, duration,
      Seconds(40), opts);

  auto mbps = [&](const TimeSeries& ts, size_t b) {
    return ts.BucketRate(b) / 1e6;
  };
  const size_t buckets =
      std::max(r.disk_read_bytes.num_buckets(), r.ssd_read_bytes.num_buckets());
  TextTable table({"t (s)", "disk read MB/s", "disk write MB/s",
                   "SSD read MB/s", "SSD write MB/s"});
  for (size_t b = 0; b < buckets; ++b) {
    table.AddRow({TextTable::Fmt(ToSeconds(r.disk_read_bytes.BucketMid(b)), 0),
                  TextTable::Fmt(mbps(r.disk_read_bytes, b), 2),
                  TextTable::Fmt(mbps(r.disk_write_bytes, b), 2),
                  TextTable::Fmt(mbps(r.ssd_read_bytes, b), 2),
                  TextTable::Fmt(mbps(r.ssd_write_bytes, b), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: disk reads spike in the first buckets (8-page read\n"
      "expansion while the pool is cold) then fall; SSD reads ramp as the\n"
      "cache fills; periodic disk/SSD write spikes at checkpoints; steady\n"
      "state gated by random disk reads, SSD unsaturated.\n"
      "(All MB/s values are at 1/400 scale and 1KB pages; multiply shapes,\n"
      "not magnitudes, against the paper.)\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
