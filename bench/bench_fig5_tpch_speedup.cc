// Reproduces Figure 5 (g)-(h): TPC-H QphH speedups over noSSD at 30 and
// 100 SF (lambda = 1%, checkpoints as for TPC-E).
//
// Paper: 30SF: DW 3.4 LC 3.2 TAC 3.3 | 100SF: 2.8/2.9/2.9 — the designs
// are indistinguishable (read-intensive DSS); the gains come from the
// index-lookup-dominated queries whose random I/O the SSD offloads.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

using bench::kTpchLabels;
using bench::kTpchPages;

TpchTestResult RunOne(SsdDesign design, const TpchConfig& config,
                      uint64_t db_pages) {
  DbSystem system(bench::BaseSystem(design, db_pages + db_pages / 8 + 64,
                                    /*lc_lambda=*/0.01));
  Database db(&system);
  TpchWorkload::Populate(&db, config);
  TpchWorkload workload(&db, config);
  system.checkpoint().SchedulePeriodic(Seconds(40));
  return workload.RunFullBenchmark();
}

void Run() {
  bench::PrintHeader(
      "Figure 5 (g)-(h): TPC-H speedups over noSSD (QphH)",
      "30SF: DW 3.4 LC 3.2 TAC 3.3 | 100SF: 2.8/2.9/2.9");

  const double sfs[2] = {30, 100};
  const int streams[2] = {4, 5};  // spec minimums at these scales
  const double paper[2][3] = {{3.4, 3.2, 3.3}, {2.8, 2.9, 2.9}};

  TextTable table({"scale", "design", "QphH (scaled)", "speedup",
                   "paper speedup"});
  for (int i = 0; i < 2; ++i) {
    TpchConfig config =
        bench::TpchForPages(sfs[i], kTpchPages[i], streams[i]);
    if (bench::QuickMode()) config.streams = 2;
    double baseline = 0;
    const SsdDesign designs[] = {SsdDesign::kNoSsd, SsdDesign::kDualWrite,
                                 SsdDesign::kLazyCleaning, SsdDesign::kTac};
    const double paper_speedup[] = {1.0, paper[i][0], paper[i][1], paper[i][2]};
    for (int d = 0; d < 4; ++d) {
      const TpchTestResult result = RunOne(designs[d], config, kTpchPages[i]);
      if (d == 0) baseline = result.qphh;
      table.AddRow({kTpchLabels[i], ToString(designs[d]),
                    TextTable::Fmt(result.qphh, 0),
                    TextTable::Fmt(baseline > 0 ? result.qphh / baseline : 0, 2),
                    TextTable::Fmt(paper_speedup[d], 1)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: ~3x gains at both scales, slightly lower at 100SF,\n"
      "with DW / LC / TAC within noise of one another.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
