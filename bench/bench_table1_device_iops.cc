// Reproduces Table 1: maximum sustainable IOPS for each device with
// page-sized (8KB) I/Os, queue depth 1, disk write caching off — an
// Iometer-style closed-loop sweep against the calibrated device models.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/sim_device.h"
#include "storage/striped_array.h"

namespace turbobp {
namespace {

double MeasureIops(SimDevice& dev, IoOp op, bool sequential, uint64_t seed) {
  dev.timeline().Reset();
  Rng rng(seed);
  std::vector<uint8_t> buf(dev.page_bytes());
  Time now = 0;
  int64_t count = 0;
  uint64_t seq = 0;
  while (now < Seconds(20)) {
    const uint64_t page =
        sequential ? (seq++ % dev.num_pages()) : rng.Uniform(dev.num_pages());
    now = op == IoOp::kRead ? dev.Read(page, 1, buf, now).time
                            : dev.Write(page, 1, buf, now).time;
    ++count;
  }
  return static_cast<double>(count) / 20.0;
}

double MeasureArrayIops(StripedDiskArray& disks, IoOp op, bool sequential) {
  double total = 0;
  for (int s = 0; s < disks.num_spindles(); ++s) {
    total += MeasureIops(disks.spindle(s), op, sequential,
                         static_cast<uint64_t>(s) + 1);
  }
  return total;
}

void Run() {
  bench::PrintHeader(
      "Table 1: maximum sustainable IOPS (8KB I/Os, QD=1)",
      "8 HDDs: rd 1015/26370, wr 895/9463; SSD: rd 12182/15980, wr "
      "12374/14965");

  StripedDiskArray::Options disk_opts;  // 8 spindles, paper HDD model
  StripedDiskArray::Options eight_k = disk_opts;
  eight_k.hdd.page_bytes = 8192;
  StripedDiskArray disks(1 << 14, 8192, eight_k);
  SsdParams ssd_params;
  ssd_params.page_bytes = 8192;
  SimDevice ssd(1 << 13, 8192, std::make_unique<SsdModel>(ssd_params));

  TextTable table({"device", "metric", "paper IOPS", "measured IOPS", "ratio"});
  struct RowSpec {
    const char* metric;
    IoOp op;
    bool seq;
    double paper_hdd;
    double paper_ssd;
  };
  const RowSpec rows[] = {
      {"random read", IoOp::kRead, false, 1015, 12182},
      {"sequential read", IoOp::kRead, true, 26370, 15980},
      {"random write", IoOp::kWrite, false, 895, 12374},
      {"sequential write", IoOp::kWrite, true, 9463, 14965},
  };
  for (const RowSpec& r : rows) {
    const double measured = MeasureArrayIops(disks, r.op, r.seq);
    table.AddRow({"8 HDDs", r.metric, TextTable::Fmt(r.paper_hdd, 0),
                  TextTable::Fmt(measured, 0),
                  TextTable::Fmt(measured / r.paper_hdd, 3)});
  }
  for (const RowSpec& r : rows) {
    const double measured = MeasureIops(ssd, r.op, r.seq, 99);
    table.AddRow({"SSD", r.metric, TextTable::Fmt(r.paper_ssd, 0),
                  TextTable::Fmt(measured, 0),
                  TextTable::Fmt(measured / r.paper_ssd, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The SSD-vs-disk random-read gap (%0.1fx) is the quantity every other\n"
      "experiment inherits; the sequential-read advantage of the striped\n"
      "disks is why the admission policy only caches random pages.\n\n",
      12182.0 / 1015.0);
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
