// Ablation for the Section 4.3.2 / conclusions claim: "a very high
// performance SSD like the Fusion I/O card may not be required to obtain
// the maximum possible performance if the disk subsystem is the
// bottleneck." Replaces the high-end SLC SSD model with progressively
// slower mid-range models and measures TPC-E throughput: while the random
// disk reads gate the system, a 2-4x slower SSD should cost almost nothing.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation: high-end vs mid-range SSD (TPC-E 40K, disk-bound regime)",
      "Section 4.3.2: the SSD is far from saturated; disks are the "
      "bottleneck");

  const Time duration = bench::ScaledDuration(Seconds(300));
  // The 40K-customer scale: working set exceeds the SSD, so the disks carry
  // a large share of the random reads — the disk-bound regime of Figure 8.
  const TpceConfig config = bench::TpceForPages(5000, bench::kTpcePages[2]);
  const uint64_t db_pages = bench::kTpcePages[2];

  TextTable table({"SSD class", "slowdown", "tpsE", "vs high-end",
                   "SSD busy fraction"});
  double high_end = 0;
  for (const double slowdown : {1.0, 2.0, 4.0, 8.0}) {
    SystemConfig sys = bench::BaseSystem(SsdDesign::kDualWrite, db_pages, 0.01);
    sys.ssd_params.read_random_per_page =
        static_cast<Time>(82 * slowdown);
    sys.ssd_params.read_sequential_per_page =
        static_cast<Time>(63 * slowdown);
    sys.ssd_params.write_random_per_page = static_cast<Time>(81 * slowdown);
    sys.ssd_params.write_sequential_per_page =
        static_cast<Time>(67 * slowdown);
    DbSystem system(sys);
    Database db(&system);
    TpceWorkload::Populate(&db, config);
    TpceWorkload workload(&db, config);
    system.checkpoint().SchedulePeriodic(Seconds(40));
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = duration;
    const DriverResult r = Driver(&system, &workload, opts).Run();
    if (slowdown == 1.0) high_end = r.steady_rate;
    const double busy =
        static_cast<double>(system.ssd_device()->timeline().busy_time()) /
        static_cast<double>(duration);
    table.AddRow(
        {slowdown == 1.0 ? "SLC Fusion ioDrive (Table 1)"
                         : (TextTable::Fmt(slowdown, 0) + "x slower"),
         TextTable::Fmt(slowdown, 0) + "x", TextTable::Fmt(r.steady_rate, 1),
         TextTable::Fmt(high_end > 0 ? r.steady_rate / high_end : 1, 2),
         TextTable::Fmt(busy, 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: a 2-4x slower SSD keeps most of the throughput while\n"
      "its busy fraction is low (the disks gate the system); only at large\n"
      "slowdowns does the SSD itself become the bottleneck.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
