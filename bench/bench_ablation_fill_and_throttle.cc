// Design-choice ablations for the Section 3.3 optimizations the paper
// adopts without sweeping:
//   * aggressive filling (tau, Section 3.3.1): how fast does the SSD become
//     useful with and without it?
//   * throttle control (mu, Section 3.3.2): does capping the SSD queue
//     protect throughput under bursty load?
// Run on TPC-C 2K under DW (the write-through design exercises both paths).

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

DriverResult RunWith(double tau, int mu, const TpccConfig& config,
                     Time duration) {
  SystemConfig sys =
      bench::BaseSystem(SsdDesign::kDualWrite, bench::kTpccPages[1], 0.5);
  sys.ssd_options.aggressive_fill = tau;
  sys.ssd_options.throttle_queue_limit = mu;
  DbSystem system(sys);
  Database db(&system);
  TpccWorkload::Populate(&db, config);
  TpccWorkload workload(&db, config);
  DriverOptions opts;
  opts.num_clients = bench::kClients;
  opts.duration = duration;
  opts.sample_width = duration / 16;
  Driver driver(&system, &workload, opts);
  return driver.Run();
}

void Run() {
  bench::PrintHeader(
      "Ablation: aggressive filling (tau) and throttle control (mu)",
      "Table 2 uses tau=95%, mu=100; this sweeps both on TPC-C 2K / DW");

  const Time duration = bench::ScaledDuration(Seconds(240));
  const TpccConfig config = bench::TpccForPages(32, bench::kTpccPages[1]);

  std::printf("---- aggressive filling: tau sweep (mu=100) ----\n");
  TextTable tau_table({"tau", "tpmC steady", "tpmC first-quarter",
                       "SSD used at end", "seq pages admitted"});
  for (const double tau : {0.0, 0.5, 0.95}) {
    const DriverResult r = RunWith(tau, 100, config, duration);
    const double early =
        r.throughput.AverageRate(0, duration / 4) * 60.0;
    tau_table.AddRow(
        {TextTable::Fmt(tau * 100, 0) + "%",
         TextTable::Fmt(r.steady_rate * 60, 0), TextTable::Fmt(early, 0),
         TextTable::Fmt(r.ssd.used_frames),
         TextTable::Fmt(r.ssd.admissions - r.ssd.hits >= 0
                            ? r.ssd.admissions
                            : r.ssd.admissions)});
    std::fflush(stdout);
  }
  std::printf("%s\n", tau_table.ToString().c_str());

  std::printf("---- throttle control: mu sweep (tau=95%%) ----\n");
  TextTable mu_table({"mu", "tpmC steady", "SSD ops throttled", "SSD hits"});
  for (const int mu : {1, 10, 100, 1 << 20}) {
    const DriverResult r = RunWith(0.95, mu, config, duration);
    mu_table.AddRow({mu == (1 << 20) ? "unlimited" : TextTable::Fmt(int64_t{mu}),
                     TextTable::Fmt(r.steady_rate * 60, 0),
                     TextTable::Fmt(r.ssd.throttled),
                     TextTable::Fmt(r.ssd.hits)});
    std::fflush(stdout);
  }
  std::printf("%s\n", mu_table.ToString().c_str());
  std::printf(
      "Expected shape: tau=95%% fills the SSD with useful pages much faster\n"
      "than no-fill (higher early throughput, similar steady state); overly\n"
      "aggressive throttling (mu=1) starves the cache while mu>=100 changes\n"
      "little — the paper's settings sit on the flat part of both curves.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
