// Analysis bench for the Section 2.3.3 warning: "delaying these writes to
// disk for too long can make the recovery time unacceptably long" — the
// flip side of LC's throughput win. Measures crash-recovery work and
// virtual restart time as a function of lambda and of checkpoint recency,
// plus the restart extension's variant.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

struct Outcome {
  RecoveryStats stats;
  size_t restored = 0;
};

// Restart variants: cold SSD (classic), the ssd-table checkpoint extension,
// or the crash-consistent persistent metadata journal.
enum class Restart { kCold, kSsdTable, kPersistent };

Outcome RunOne(double lambda, bool take_checkpoint, Restart restart,
               bool churn_after_ckpt = true) {
  const TpccConfig config = bench::TpccForPages(16, bench::kTpccPages[0]);
  SystemConfig sys_config =
      bench::BaseSystem(SsdDesign::kLazyCleaning, bench::kTpccPages[0], lambda);
  sys_config.persistent_ssd_cache = (restart == Restart::kPersistent);
  DbSystem system(sys_config);
  Database db(&system);
  TpccWorkload::Populate(&db, config);
  if (restart == Restart::kSsdTable) {
    system.checkpoint().EnableSsdTableCheckpoints();
  }
  {
    TpccWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = bench::ScaledDuration(Seconds(120));
    Driver driver(&system, &workload, opts);
    driver.Run();
  }
  if (take_checkpoint) {
    IoContext ctx = system.MakeContext();
    const Time end = system.checkpoint().RunCheckpoint(ctx);
    system.executor().RunUntil(std::max(end, system.executor().now()));
    if (churn_after_ckpt) {
      // A little more work after the checkpoint, then crash. This churn
      // recycles SSD frames, invalidating part of the snapshot — the
      // extension's recovery exposure.
      TpccWorkload workload(&db, config);
      DriverOptions opts;
      opts.num_clients = bench::kClients;
      opts.duration = bench::ScaledDuration(Seconds(20));
      Driver driver(&system, &workload, opts);
      driver.Run();
    }
  }
  system.Crash();
  IoContext rctx = system.MakeContext();
  Outcome out;
  switch (restart) {
    case Restart::kCold:
      out.stats = system.Recover(rctx);
      break;
    case Restart::kSsdTable: {
      auto [stats, restored] = system.RecoverWithSsdTable(rctx);
      out.stats = stats;
      out.restored = restored;
      break;
    }
    case Restart::kPersistent: {
      auto [stats, pstats] = system.RecoverPersistent(rctx);
      out.stats = stats;
      out.restored = pstats.restored;
      break;
    }
  }
  return out;
}

void Run() {
  bench::PrintHeader(
      "Analysis: crash-recovery time vs lambda / checkpoint recency",
      "Section 2.3.3: delaying dirty writes too long makes recovery long");

  TextTable table({"variant", "redo records applied", "redo pages written",
                   "restart time (virtual s)", "SSD frames restored"});
  struct Row {
    const char* label;
    double lambda;
    bool ckpt;
    Restart restart;
    bool churn;
  };
  const Row rows[] = {
      {"LC lambda=10%, no checkpoint", 0.10, false, Restart::kCold, true},
      {"LC lambda=90%, no checkpoint", 0.90, false, Restart::kCold, true},
      {"LC lambda=90%, recent checkpoint", 0.90, true, Restart::kCold, true},
      {"LC lambda=90%, ckpt + ext, churn after", 0.90, true, Restart::kSsdTable,
       true},
      {"LC lambda=90%, ckpt + ext, crash at ckpt", 0.90, true,
       Restart::kSsdTable, false},
      // The persistent journal needs no checkpoint at all: frames survive
      // the crash and cover redo work that the cold variants re-execute.
      {"LC lambda=90%, persistent journal, no ckpt", 0.90, false,
       Restart::kPersistent, true},
      {"LC lambda=90%, persistent journal + ckpt", 0.90, true,
       Restart::kPersistent, true},
  };
  for (const Row& r : rows) {
    const Outcome out = RunOne(r.lambda, r.ckpt, r.restart, r.churn);
    table.AddRow({r.label, TextTable::Fmt(out.stats.records_applied),
                  TextTable::Fmt(out.stats.pages_written),
                  TextTable::Fmt(ToSeconds(out.stats.elapsed), 2),
                  TextTable::Fmt(static_cast<int64_t>(out.restored))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: without checkpoints, restart time grows with lambda\n"
      "(more dirty pages living only on the SSD -> longer redo); a recent\n"
      "sharp checkpoint collapses it. The ssd-table extension is cheapest\n"
      "when the crash is close to a checkpoint (snapshot frames intact:\n"
      "records are covered by restored copies); inter-checkpoint churn\n"
      "recycles frames and re-exposes redo work — the tradeoff a production\n"
      "design would bound with snapshot-frame pinning or shorter intervals.\n"
      "The persistent journal restores frames even with no checkpoint: its\n"
      "on-SSD metadata survives the crash, so restored copies cover redo\n"
      "work regardless of checkpoint recency.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
