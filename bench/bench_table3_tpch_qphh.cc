// Reproduces Table 3: TPC-H Power-test / Throughput-test / QphH metrics for
// LC, DW, TAC and noSSD at 30 SF and 100 SF.
//
// Paper @30SF:  LC 5978/5601/5787, DW 5917/6643/6269, TAC 6386/5639/6001,
//               noSSD 2733/1229/1832.
// Paper @100SF: LC 3836/3228/3519, DW 3204/3691/3439, TAC 3705/3235/3462,
//               noSSD 1536/953/1210.
// Shape: the SSD designs triple noSSD; the *throughput* test (concurrent
// streams randomize the I/O) gains more than the power test.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 3: TPC-H Power and Throughput test results",
      "30SF noSSD QphH 1832 vs SSD designs ~5800-6300; 100SF 1210 vs ~3500");

  const double sfs[2] = {30, 100};
  const int streams[2] = {4, 5};
  for (int i = 0; i < 2; ++i) {
    TpchConfig config = bench::TpchForPages(sfs[i], bench::kTpchPages[i],
                                            streams[i]);
    if (bench::QuickMode()) config.streams = 2;
    TextTable table({"metric", "LC", "DW", "TAC", "noSSD"});
    std::vector<TpchTestResult> results;
    for (SsdDesign d : {SsdDesign::kLazyCleaning, SsdDesign::kDualWrite,
                        SsdDesign::kTac, SsdDesign::kNoSsd}) {
      DbSystem system(bench::BaseSystem(
          d, bench::kTpchPages[i] + bench::kTpchPages[i] / 8 + 64, 0.01));
      Database db(&system);
      TpchWorkload::Populate(&db, config);
      TpchWorkload workload(&db, config);
      system.checkpoint().SchedulePeriodic(Seconds(40));
      results.push_back(workload.RunFullBenchmark());
      std::fflush(stdout);
    }
    auto row = [&](const char* name, auto getter) {
      table.AddRow({name, TextTable::Fmt(getter(results[0]), 0),
                    TextTable::Fmt(getter(results[1]), 0),
                    TextTable::Fmt(getter(results[2]), 0),
                    TextTable::Fmt(getter(results[3]), 0)});
    };
    std::printf("---- %s (%d streams) ----\n", bench::kTpchLabels[i],
                config.streams);
    row("Power Test", [](const TpchTestResult& r) { return r.power_at_sf; });
    row("Throughput Test",
        [](const TpchTestResult& r) { return r.throughput_at_sf; });
    row("QphH", [](const TpchTestResult& r) { return r.qphh; });
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Expected shape: all SSD designs within ~10%% of each other and ~3x\n"
      "noSSD; the throughput test shows the larger relative gain because\n"
      "concurrent query streams turn the disk access pattern random.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
