// Queue-depth sweep for the async I/O engine (DESIGN.md §12): the same two
// deep-queue consumers — a TPC-H-style sequential scan driven by
// read-ahead, and a checkpoint drain over scattered dirty pages — run at
// engine depths {1, 8, 32} over the paper's 8-spindle striped disk array.
// Depth 1 degenerates to the old call-and-wait serial loop; a deep queue
// must keep every spindle busy. CI's bench-quick step asserts depth 32 is
// at least 1.5x depth 1 on both scenarios.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "io/async_io_engine.h"
#include "storage/page.h"
#include "storage/striped_array.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 1024;
constexpr uint64_t kDbPages = 1 << 14;
constexpr uint64_t kFrames = 512;
constexpr uint32_t kWindow = 64;  // read-ahead request size (pages)

struct DepthResult {
  int depth = 0;
  Time scan = 0;
  Time drain = 0;
  AsyncIoEngine::Stats stats;
};

DepthResult MeasureDepth(int depth) {
  StripedDiskArray::Options dopt;  // 8 spindles, 8-page stripe unit
  dopt.hdd.page_bytes = kPage;
  StripedDiskArray disks(kDbPages, kPage, dopt);
  disks.SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
    PageView v(out.data(), kPage);
    v.Format(static_cast<PageId>(page), PageType::kRaw);
    v.SealChecksum();
  });
  SimDevice log_dev(1 << 16, kPage,
                    std::make_unique<HddModel>(HddParams{.page_bytes = kPage}));
  DiskManager disk(&disks);
  LogManager log(&log_dev);
  AsyncIoEngine engine(&disks, {.queue_depth = depth});
  BufferPool::Options bopt;
  bopt.num_frames = kFrames;
  bopt.page_bytes = kPage;
  BufferPool pool(bopt, &disk, &log, nullptr, &engine);

  DepthResult r;
  r.depth = depth;

  // --- TPC-H-style sequential scan: read-ahead windows over a contiguous
  // table extent, each window a PrefetchRange the engine splits into
  // stripe-unit batches running on all spindles at once.
  const uint64_t scan_pages = bench::QuickMode() ? 1024 : 4096;
  {
    IoContext ctx;
    const Time start = ctx.now;
    for (uint64_t first = 0; first + kWindow <= scan_pages;
         first += kWindow) {
      pool.PrefetchRange(static_cast<PageId>(first), kWindow, ctx);
    }
    r.scan = ctx.now - start;
  }

  // --- Checkpoint drain: scattered dirty pages (the hard case — random
  // positioning cost per page, nothing to coalesce), flushed by
  // FlushAllDirty through the engine's submission window.
  pool.Reset();
  const int dirty_pages = bench::QuickMode() ? 96 : 256;
  {
    IoContext load;
    load.charge = false;  // populate the dirty set for free
    Rng rng(7);
    std::set<PageId> pids;
    while (static_cast<int>(pids.size()) < dirty_pages) {
      pids.insert(static_cast<PageId>(rng.Uniform(kDbPages)));
    }
    for (const PageId pid : pids) {
      PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, load);
      g.view().payload()[0] = static_cast<uint8_t>(pid);
      g.LogUpdate(1, kPageHeaderSize, 1);
    }
    IoContext ctx;
    r.drain = pool.FlushAllDirty(ctx, /*for_checkpoint=*/false) - ctx.now;
  }

  r.stats = engine.stats();
  return r;
}

void Run() {
  bench::PrintHeader(
      "Async I/O engine: queue-depth sweep (read-ahead scan + checkpoint "
      "drain)",
      "deep-queue submit/reap over the 8-spindle striped array; depth 1 is "
      "the serial call-and-wait baseline");

  const int depths[] = {1, 8, 32};
  std::vector<DepthResult> results;
  for (const int d : depths) results.push_back(MeasureDepth(d));
  const DepthResult& base = results.front();

  TextTable table({"queue depth", "scan (ms)", "scan speedup", "drain (ms)",
                   "drain speedup", "device ops", "coalesced batches"});
  std::vector<std::string> json;
  for (const DepthResult& r : results) {
    const double scan_speedup =
        static_cast<double>(base.scan) / static_cast<double>(r.scan);
    const double drain_speedup =
        static_cast<double>(base.drain) / static_cast<double>(r.drain);
    table.AddRow({std::to_string(r.depth), TextTable::Fmt(ToMillis(r.scan), 2),
                  TextTable::Fmt(scan_speedup, 2),
                  TextTable::Fmt(ToMillis(r.drain), 2),
                  TextTable::Fmt(drain_speedup, 2),
                  std::to_string(r.stats.device_ops),
                  std::to_string(r.stats.coalesced_batches)});
    std::string j = "{";
    bench::JsonAdd(j, "depth", static_cast<int64_t>(r.depth));
    bench::JsonAdd(j, "scan_ms", ToMillis(r.scan));
    bench::JsonAdd(j, "scan_speedup_vs_depth1", scan_speedup);
    bench::JsonAdd(j, "drain_ms", ToMillis(r.drain));
    bench::JsonAdd(j, "drain_speedup_vs_depth1", drain_speedup);
    bench::JsonAdd(j, "device_ops", r.stats.device_ops);
    bench::JsonAdd(j, "coalesced_batches", r.stats.coalesced_batches);
    bench::JsonAdd(j, "coalesced_pages", r.stats.coalesced_pages);
    bench::JsonAdd(j, "retries", r.stats.retries);
    j += "}";
    json.push_back(j);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: depth 1 serializes every request behind the previous\n"
      "completion; depth 32 keeps all 8 spindles busy, so both the scan and\n"
      "the scattered drain finish several times faster (>= 1.5x is the CI\n"
      "regression bar).\n\n");
  bench::WriteJson("async_qdepth", json);
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
