// Ablation for the Section 2.5 claim: TAC's logical invalidation wastes
// SSD space on update-intensive workloads — "with the 1K, 2K and 4K
// warehouse TPC-C databases, TAC wastes about 7.4GB, 10.4GB, and 8.9GB out
// of 140GB SSD space to store invalid pages" (5-7% of the SSD).

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation: SSD space wasted by TAC's logical invalidation (TPC-C)",
      "paper: 7.4 / 10.4 / 8.9 GB of 140GB (5.3% / 7.4% / 6.4%)");

  const Time duration = bench::ScaledDuration(Seconds(360));
  const int warehouses[3] = {16, 32, 64};
  const double paper_gb[3] = {7.4, 10.4, 8.9};

  TextTable table({"scale", "invalid frames", "of SSD", "paper",
                   "CW/DW/LC invalid"});
  for (int i = 0; i < 3; ++i) {
    const TpccConfig config =
        bench::TpccForPages(warehouses[i], bench::kTpccPages[i]);
    const DriverResult tac = bench::RunOltp<TpccWorkload>(
        SsdDesign::kTac, config, bench::kTpccPages[i], 0.5, duration, 0);
    std::fflush(stdout);
    const DriverResult dw = bench::RunOltp<TpccWorkload>(
        SsdDesign::kDualWrite, config, bench::kTpccPages[i], 0.5, duration, 0);
    const double fraction = static_cast<double>(tac.ssd.invalid_frames) /
                            static_cast<double>(tac.ssd.capacity_frames);
    table.AddRow({bench::kTpccLabels[i], TextTable::Fmt(tac.ssd.invalid_frames),
                  TextTable::Fmt(fraction * 100, 1) + "%",
                  TextTable::Fmt(paper_gb[i] / 140 * 100, 1) + "%",
                  TextTable::Fmt(dw.ssd.invalid_frames)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: TAC carries a persistent population of invalid SSD\n"
      "frames (single-digit percent of capacity) while the paper's designs,\n"
      "which invalidate physically, always report zero.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
