// Reproduces Figure 6: full-run throughput-vs-time curves.
//   (a) TPC-C 2K warehouses   (b) TPC-C 4K warehouses
//   (c) TPC-E 20K customers   (d) TPC-E 40K customers
// Each curve is the smoothed bucketed throughput for LC / DW / TAC / noSSD
// (3-point moving average, as in the paper). Look for: LC's throughput
// drop when its dirty pages cross lambda (paper: 1:50h at 2K, 2:30h at 4K,
// scaled /60 here), the long TPC-E ramp-up, and checkpoint dips.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void PrintCurves(const char* title, const std::vector<DriverResult>& results) {
  std::printf("---- %s ----\n", title);
  std::vector<std::vector<double>> curves;
  size_t buckets = 0;
  for (const auto& r : results) {
    curves.push_back(r.throughput.SmoothedRates(3));
    buckets = std::max(buckets, curves.back().size());
  }
  std::vector<std::string> header = {"t (s)"};
  for (const auto& r : results) header.push_back(r.design);
  TextTable table(header);
  for (size_t b = 0; b < buckets; ++b) {
    std::vector<std::string> row = {
        TextTable::Fmt(ToSeconds(results[0].throughput.BucketMid(b)), 0)};
    for (const auto& c : curves) {
      row.push_back(TextTable::Fmt(b < c.size() ? c[b] : 0.0, 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintHeader(
      "Figure 6: 10-hour test-run curves (throughput/s vs virtual time)",
      "LC drop when dirty > lambda (2K: ~1:50h, 4K: ~2:30h); long TPC-E "
      "ramp-up; checkpoint dips");

  const Time duration = bench::ScaledDuration(Seconds(600));  // 10h / 60
  const SsdDesign designs[] = {SsdDesign::kLazyCleaning, SsdDesign::kDualWrite,
                               SsdDesign::kTac, SsdDesign::kNoSsd};
  DriverOptions opts;
  opts.sample_width = bench::ScaledDuration(Seconds(36));  // 6 min / ~10

  // (a)-(b) TPC-C at 2K and 4K warehouses, checkpoints off, lambda 50%.
  const int tpcc_scales[2] = {1, 2};
  const int tpcc_wh[3] = {16, 32, 64};
  for (int i : tpcc_scales) {
    const TpccConfig config =
        bench::TpccForPages(tpcc_wh[i], bench::kTpccPages[i]);
    std::vector<DriverResult> results;
    for (SsdDesign d : designs) {
      results.push_back(bench::RunOltp<TpccWorkload>(
          d, config, bench::kTpccPages[i], 0.5, duration, 0, opts));
      std::fflush(stdout);
    }
    PrintCurves(
        (std::string("Figure 6: TPC-C ") + bench::kTpccLabels[i] + ", tpmC/60")
            .c_str(),
        results);
  }

  // (c)-(d) TPC-E at 20K and 40K customers, checkpoints every 40min/60.
  const int tpce_scales[2] = {1, 2};
  const int64_t tpce_cust[3] = {1250, 2500, 5000};
  for (int i : tpce_scales) {
    const TpceConfig config =
        bench::TpceForPages(tpce_cust[i], bench::kTpcePages[i]);
    std::vector<DriverResult> results;
    for (SsdDesign d : designs) {
      results.push_back(bench::RunOltp<TpceWorkload>(
          d, config, bench::kTpcePages[i], 0.01, duration, Seconds(40), opts));
      std::fflush(stdout);
    }
    PrintCurves(
        (std::string("Figure 6: TPC-E ") + bench::kTpceLabels[i] + ", tpsE")
            .c_str(),
        results);
  }
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
