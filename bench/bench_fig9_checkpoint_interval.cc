// Reproduces Figure 9: the effect of the checkpoint (recovery) interval on
// DW and LC over the TPC-E 20K-customer database — 40 minutes vs 5 hours
// (scaled /60: 40s vs 300s), run for 13 hours scaled (780s).
//
// Paper: for DW the long interval wins once the SSD is full (checkpointed
// pages bump useful SSD pages); for LC the long interval piles up dirty
// SSD pages, so its first checkpoint causes a deep, long dip (the paper's
// 5h-interval LC drops dramatically from 5h to ~6.5h). LC runs with
// lambda=50% under the long interval (the paper raises it from 1%).

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 9: checkpoint interval 40min vs 5h (TPC-E 20K customers)",
      "DW: long interval better post-ramp; LC: deep dip at the first long-"
      "interval checkpoint");

  const Time duration = bench::ScaledDuration(Seconds(780));  // 13h / 60
  const TpceConfig config = bench::TpceForPages(2500, bench::kTpcePages[1]);
  DriverOptions opts;
  opts.sample_width = bench::ScaledDuration(Seconds(26));

  struct Variant {
    const char* label;
    SsdDesign design;
    Time interval;
    double lambda;
  };
  const Variant variants[] = {
      {"DW 40min", SsdDesign::kDualWrite, Seconds(40), 0.01},
      {"DW 5h", SsdDesign::kDualWrite, Seconds(300), 0.01},
      {"LC 40min", SsdDesign::kLazyCleaning, Seconds(40), 0.01},
      {"LC 5h", SsdDesign::kLazyCleaning, Seconds(300), 0.50},
  };

  std::vector<DriverResult> results;
  TextTable summary({"variant", "tpsE steady", "checkpoints", "max ckpt (s)",
                     "ssd pages flushed"});
  for (const Variant& v : variants) {
    DriverResult r = bench::RunOltp<TpceWorkload>(
        v.design, config, bench::kTpcePages[1], v.lambda, duration,
        v.interval, opts);
    summary.AddRow({v.label, TextTable::Fmt(r.steady_rate, 1),
                    TextTable::Fmt(r.ckpt.checkpoints_taken),
                    TextTable::Fmt(ToSeconds(r.ckpt.max_duration), 2),
                    TextTable::Fmt(r.ckpt.pages_flushed_ssd)});
    results.push_back(std::move(r));
    std::fflush(stdout);
  }
  std::printf("%s\n", summary.ToString().c_str());

  std::vector<std::vector<double>> curves;
  size_t buckets = 0;
  for (const auto& r : results) {
    curves.push_back(r.throughput.SmoothedRates(3));
    buckets = std::max(buckets, curves.back().size());
  }
  TextTable curve_table({"t (s)", "DW 40min", "DW 5h", "LC 40min", "LC 5h"});
  for (size_t b = 0; b < buckets; ++b) {
    std::vector<std::string> row = {
        TextTable::Fmt(ToSeconds(results[0].throughput.BucketMid(b)), 0)};
    for (const auto& c : curves) {
      row.push_back(TextTable::Fmt(b < c.size() ? c[b] : 0.0, 1));
    }
    curve_table.AddRow(std::move(row));
  }
  std::printf("%s\n", curve_table.ToString().c_str());
  std::printf(
      "Expected shape: LC-5h leads early, then collapses during its first\n"
      "checkpoint (it must drain a huge dirty SSD set) before recovering;\n"
      "DW-5h overtakes DW-40min once the SSD is full; both 40min variants\n"
      "show shallow periodic dips.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
