// Micro-benchmarks for the buffer pool's fetch paths: in-memory hit,
// SSD-served miss, and disk-served miss with eviction — the three rungs of
// the paper's storage hierarchy — measured in host CPU time per operation
// (device *virtual* time is free here; this isolates manager overhead).

#include <benchmark/benchmark.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "core/dual_write.h"
#include "sim/sim_executor.h"
#include "storage/page.h"
#include "storage/sim_device.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 1024;

struct Fixture {
  Fixture(uint64_t frames, int64_t ssd_frames)
      : disk_dev(1 << 16, kPage, std::make_unique<HddModel>()),
        ssd_dev(std::max<int64_t>(ssd_frames, 1), kPage,
                std::make_unique<SsdModel>()),
        log_dev(1 << 14, kPage, std::make_unique<HddModel>()),
        disk(&disk_dev),
        log(&log_dev) {
    disk_dev.store().SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
      PageView v(out.data(), kPage);
      v.Format(page, PageType::kRaw);
      v.SealChecksum();
    });
    if (ssd_frames > 0) {
      SsdCacheOptions opts;
      opts.num_frames = ssd_frames;
      opts.num_partitions = 16;
      ssd = std::make_unique<DualWriteCache>(&ssd_dev, &disk, opts, &executor);
    }
    BufferPool::Options opts;
    opts.num_frames = frames;
    opts.page_bytes = kPage;
    opts.expand_reads_until_warm = false;
    pool = std::make_unique<BufferPool>(opts, &disk, &log, ssd.get());
  }

  SimExecutor executor;
  SimDevice disk_dev;
  SimDevice ssd_dev;
  SimDevice log_dev;
  DiskManager disk;
  LogManager log;
  std::unique_ptr<SsdManager> ssd;
  std::unique_ptr<BufferPool> pool;
};

void BM_FetchHit(benchmark::State& state) {
  Fixture f(1 << 12, 0);
  IoContext ctx;
  for (PageId p = 0; p < 1 << 12; ++p) {
    f.pool->FetchPage(p, AccessKind::kRandom, ctx);
  }
  Rng rng(1);
  for (auto _ : state) {
    PageGuard g =
        f.pool->FetchPage(rng.Uniform(1 << 12), AccessKind::kRandom, ctx);
    benchmark::DoNotOptimize(g.view().data());
  }
}
BENCHMARK(BM_FetchHit);

void BM_FetchMissFromDiskWithEviction(benchmark::State& state) {
  Fixture f(1 << 8, 0);
  IoContext ctx;
  Rng rng(2);
  for (auto _ : state) {
    PageGuard g =
        f.pool->FetchPage(rng.Uniform(1 << 16), AccessKind::kRandom, ctx);
    benchmark::DoNotOptimize(g.view().data());
  }
}
BENCHMARK(BM_FetchMissFromDiskWithEviction);

void BM_FetchMissServedBySsd(benchmark::State& state) {
  Fixture f(1 << 8, 1 << 14);
  IoContext ctx;
  ctx.executor = &f.executor;
  Rng rng(3);
  // Warm the SSD cache with the working set (via clean evictions).
  for (PageId p = 0; p < 1 << 14; ++p) {
    f.pool->FetchPage(p % (1 << 14), AccessKind::kRandom, ctx);
  }
  ctx.now += Seconds(100);  // all admission writes complete
  for (auto _ : state) {
    PageGuard g = f.pool->FetchPage(rng.Uniform(1 << 14), AccessKind::kRandom,
                                    ctx);
    benchmark::DoNotOptimize(g.view().data());
  }
  state.counters["ssd_hit_rate"] =
      static_cast<double>(f.pool->stats().ssd_hits) /
      static_cast<double>(std::max<int64_t>(1, f.pool->stats().misses));
}
BENCHMARK(BM_FetchMissServedBySsd);

void BM_DirtyEvictionPath(benchmark::State& state) {
  Fixture f(1 << 8, 1 << 12);
  IoContext ctx;
  ctx.executor = &f.executor;
  Rng rng(4);
  uint64_t txn = 1;
  for (auto _ : state) {
    PageGuard g =
        f.pool->FetchPage(rng.Uniform(1 << 15), AccessKind::kRandom, ctx);
    g.view().payload()[0]++;
    g.LogUpdate(txn++, kPageHeaderSize, 1);
  }
}
BENCHMARK(BM_DirtyEvictionPath);

void BM_PrefetchRange(benchmark::State& state) {
  Fixture f(1 << 12, 0);
  IoContext ctx;
  PageId next = 0;
  for (auto _ : state) {
    f.pool->PrefetchRange(next % ((1 << 16) - 8), 8, ctx);
    next += 8;
    if (next % (1 << 12) == 0) f.pool->Reset();
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PrefetchRange);

}  // namespace
}  // namespace turbobp

BENCHMARK_MAIN();
