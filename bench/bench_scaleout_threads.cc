// Real-thread scale-out: N OS-thread clients against one shared DbSystem.
//
// Unlike the paper-figure benches (virtual time, sim executor), this one
// measures the engine itself: wall-clock TPC-C throughput with 1/4/8 OS
// threads over a DRAM-resident database (bp_frames >= db_pages, so after
// warmup no run is device-bound and the scaling curve isolates software
// contention). Partitioned TPC-C pins each client to a home warehouse —
// the workload itself does not serialize, so whatever does not scale is an
// engine latch.
//
// Evidence emitted to BENCH_scaleout_threads.json:
//   * one row per design (noSSD/DW/LC/TAC) x thread count with rates and a
//     per-latch-class wait breakdown (waits + wait_ms per LatchClass),
//   * derived rows: speedup_8t_vs_1t per design (CI guards >= 2x),
//   * a group-commit A/B pair at 8 threads (mode=group vs mode=legacy,
//     config.wal_group_commit flipped): the kWal wait must drop >= 2x now
//     that the flush leader writes the batched records outside the latch.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "debug/latch_order_checker.h"

namespace turbobp {
namespace bench {
namespace {

struct RunSpec {
  SsdDesign design;
  int threads;
  bool group_commit;
  // The scaling sweep runs with an SSD-class log device: with the default
  // HDD model the log disk's ~10 MB/s write bandwidth caps TPC-C at ~2.4k
  // txns/s regardless of thread count, and the curve measures the modeled
  // spindle instead of the engine. The group-commit A/B keeps the paper-era
  // HDD log: the whole point of that pair is how much a slow device write
  // hurts when it is issued under the WAL latch.
  bool fast_log = true;
};

DriverResult RunScaleout(const RunSpec& spec, Time wall_duration) {
  TpccConfig tpcc;
  tpcc.warehouses = 8;  // one home warehouse per thread at the widest run
  tpcc.row_scale = 0.05;
  tpcc.seed = 42;
  tpcc.partition_by_client = true;

  SystemConfig config;
  config.page_bytes = kPageBytes;
  config.db_pages = TpccWorkload::EstimateDbPages(tpcc, kPageBytes);
  config.bp_frames = config.db_pages + 64;  // DRAM-resident by construction
  config.ssd_frames = static_cast<int64_t>(config.db_pages / 2);
  config.design = spec.design;
  config.ssd_options.lc_dirty_fraction = 0.01;
  config.wal_group_commit = spec.group_commit;
  if (spec.fast_log) {
    // SSD-class commit log (see RunSpec::fast_log). Group commit still pays
    // real per-flush latency — it just is not a bandwidth wall.
    config.log_params.seek_write = Micros(30);
    config.log_params.seek_read = Micros(30);
    config.log_params.transfer_write_per_page = Micros(40);
    config.log_params.transfer_read_per_page = Micros(40);
  }

  DbSystem system(config);
  Database db(&system);
  TpccWorkload::Populate(&db, tpcc);
  TpccWorkload workload(&db, tpcc);

  // Warm the pool before the clock starts: the run is DRAM-resident by
  // construction, but a cold pool would pay every first-touch miss as a
  // real-wall HDD seek inside the timed window (~8 ms each), drowning the
  // contention signal. The sweep is uncharged — no device time is booked.
  {
    IoContext warm = system.MakeContext(/*charge=*/false);
    BufferPool& pool = system.buffer_pool();
    for (PageId pid = 0; pid < config.db_pages; ++pid) {
      PageGuard g = pool.FetchPage(pid, AccessKind::kSequential, warm);
    }
  }

  DriverOptions opts;
  opts.threads = spec.threads;
  opts.duration = wall_duration;
  opts.sample_width = Millis(100);
  opts.steady_window = wall_duration / 2;
  opts.record_traffic = false;
  // Modeled device time burns real wall time (1 virtual us = 1 wall us):
  // a commit's log write costs what the dedicated log disk model says it
  // costs. Without this every device op is wall-free and the scaling curve
  // measures nothing but lock-acquisition overhead.
  opts.real_sleep_scale = 1.0;
  Driver driver(&system, &workload, opts);
  return driver.Run();
}

void AddLatchBreakdown(std::string& j, const LatchWaitSnapshot& lw) {
  for (int i = 0; i < kNumLatchClasses; ++i) {
    if (lw.waits[i] == 0 && lw.wait_ns[i] == 0) continue;
    const std::string base = std::string("latch_") +
                             ToString(static_cast<LatchClass>(i));
    JsonAdd(j, (base + "_waits").c_str(), lw.waits[i]);
    JsonAdd(j, (base + "_wait_ms").c_str(),
            static_cast<double>(lw.wait_ns[i]) / 1e6);
  }
}

int Main() {
  PrintHeader("Real-thread scale-out: N OS-thread TPC-C clients",
              "engine evidence (no paper figure); group-commit A/B");
  const Time wall = QuickMode() ? Millis(600) : Millis(2000);

  const SsdDesign designs[] = {SsdDesign::kNoSsd, SsdDesign::kDualWrite,
                               SsdDesign::kLazyCleaning, SsdDesign::kTac};
  const int thread_counts[] = {1, 4, 8};

  std::vector<std::string> items;
  std::map<std::string, double> rate_1t;
  std::map<std::string, double> rate_8t;

  std::printf("%-8s %6s %12s %12s %14s %14s\n", "design", "thr", "txns",
              "rate/s", "kWal_wait_ms", "pool_wait_ms");
  for (SsdDesign design : designs) {
    for (int threads : thread_counts) {
      const DriverResult r =
          RunScaleout({design, threads, /*group_commit=*/true}, wall);
      const double kwal_ms =
          static_cast<double>(
              r.latch_waits.wait_ns[static_cast<int>(LatchClass::kWal)]) /
          1e6;
      const double pool_ms =
          static_cast<double>(
              r.latch_waits
                  .wait_ns[static_cast<int>(LatchClass::kBufferPool)]) /
          1e6;
      std::printf("%-8s %6d %12lld %12.0f %14.2f %14.2f\n", r.design.c_str(),
                  threads, static_cast<long long>(r.total_txns),
                  r.overall_rate, kwal_ms, pool_ms);
      if (threads == 1) rate_1t[r.design] = r.overall_rate;
      if (threads == 8) rate_8t[r.design] = r.overall_rate;

      std::string j = ResultJson(r);
      j.pop_back();  // reopen the object for the scale-out fields
      JsonAdd(j, "row", std::string("scaleout"), true);
      JsonAdd(j, "threads", static_cast<int64_t>(threads));
      JsonAdd(j, "mode", std::string("group"), true);
      AddLatchBreakdown(j, r.latch_waits);
      j += "}";
      items.push_back(j);
    }
  }

  std::printf("\nscaling (8 threads vs 1, overall rate):\n");
  for (const auto& [design, r1] : rate_1t) {
    const double speedup = r1 > 0 ? rate_8t[design] / r1 : 0.0;
    std::printf("  %-8s %.2fx\n", design.c_str(), speedup);
    std::string j = "{";
    JsonAdd(j, "row", std::string("speedup"), true);
    JsonAdd(j, "design", design, true);
    JsonAdd(j, "rate_1t", r1);
    JsonAdd(j, "rate_8t", rate_8t[design]);
    JsonAdd(j, "speedup_8t_vs_1t", speedup);
    items.push_back(j + "}");
  }

  // Group-commit A/B at 8 threads: the legacy flush writes the device under
  // mu_, so followers queue on the latch for the whole write; the leader
  // protocol moves the write outside and parks followers on the condvar
  // instead. kWal wall-clock wait must collapse.
  std::printf("\ngroup-commit A/B (LC, 8 threads):\n");
  double kwal_by_mode[2] = {0, 0};
  for (int legacy = 0; legacy < 2; ++legacy) {
    const DriverResult r = RunScaleout({SsdDesign::kLazyCleaning, 8,
                                        /*group_commit=*/legacy == 0,
                                        /*fast_log=*/false},
                                       wall);
    const double kwal_ms =
        static_cast<double>(
            r.latch_waits.wait_ns[static_cast<int>(LatchClass::kWal)]) /
        1e6;
    kwal_by_mode[legacy] = kwal_ms;
    std::printf("  %-7s rate %9.0f/s  kWal wait %10.2f ms (%lld waits)\n",
                legacy ? "legacy" : "group", r.overall_rate, kwal_ms,
                static_cast<long long>(
                    r.latch_waits.waits[static_cast<int>(LatchClass::kWal)]));
    std::string j = ResultJson(r);
    j.pop_back();
    JsonAdd(j, "row", std::string("group_commit_ab"), true);
    JsonAdd(j, "threads", static_cast<int64_t>(8));
    JsonAdd(j, "mode", std::string(legacy ? "legacy" : "group"), true);
    AddLatchBreakdown(j, r.latch_waits);
    j += "}";
    items.push_back(j);
  }
  if (kwal_by_mode[0] > 0) {
    std::printf("  kWal wait reduction: %.2fx\n",
                kwal_by_mode[1] / kwal_by_mode[0]);
  }

  WriteJson("scaleout_threads", items);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turbobp

int main() { return turbobp::bench::Main(); }
