// Chaos A/B: TPC-C throughput through an SSD fault storm, terminal
// degradation (the old cliff: self_healing=false, one bad partition kills
// the whole cache for good) versus the self-healing cache (per-partition
// degradation, patrol scrub, canary re-admission, read deadlines + disk
// hedging). The storm covers half the SSD's partitions for one minute
// mid-run; the interesting numbers are the post-storm steady rate relative
// to the pre-storm baseline (self-healing should recover >= 90%, terminal
// should stay pinned near the noSSD floor) and the time from storm end to
// the first bucket back at 90% of baseline. Evidence lands in
// BENCH_chaos_degrade.json.
//
// The storm is availability faults only — transient errors, hung requests,
// latency spikes — not at-rest corruption: under lazy cleaning a bit flip
// on a dirty frame destroys the only current copy of the page, which no
// cache policy can survive (the chaos soak test covers latent corruption
// against clean frames, where scrub repair from disk applies).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault_injecting_device.h"

namespace turbobp {
namespace {

struct ChaosOutcome {
  DriverResult r;
  double baseline_rate = 0;   // pre-storm steady throughput
  double storm_rate = 0;      // throughput while the storm runs
  double post_rate = 0;       // tail-window throughput after the storm
  double recover90_s = -1;    // storm end -> first bucket >= 90% baseline
  bool terminal = false;      // cache ended the run in pass-through
};

ChaosOutcome RunChaos(SsdDesign design, bool self_healing, Time duration,
                      Time storm_begin, Time storm_end) {
  const TpccConfig wl = bench::TpccForPages(16, bench::kTpccPages[0]);
  SystemConfig config =
      bench::BaseSystem(design, bench::kTpccPages[0], /*lc_lambda=*/0.5);

  // Self-healing policy: small enough windows that the one-minute storm
  // degrades partitions and the post-storm quiet heals them within a few
  // buckets.
  config.ssd_options.self_healing = self_healing;
  config.ssd_options.degrade_error_limit = 8;
  config.ssd_options.error_window = Seconds(5);
  config.ssd_options.recover_error_limit = 1;
  config.ssd_options.quiet_window = Seconds(2);
  // The deadline must clear the *congestion* envelope (checkpoint and
  // admission bursts queue the SSD for tens of ms — that is load, not
  // sickness) while still cutting the 2s stuck-request hangs short.
  config.ssd_options.read_deadline = Millis(250);
  config.ssd_options.hedge_reads = true;
  config.ssd_options.scrub_interval = Millis(500);
  config.ssd_options.scrub_frames_per_tick = 256;
  // A dirty LC frame is the only current copy of its page, so its reads
  // must out-stubborn the storm (0.5^20 residual failure odds) instead of
  // surfacing data loss; clean reads still bail to the disk copy early.
  config.ssd_options.io_retry_limit = 20;

  // The storm: half the partitions' frame ranges, mixed transient errors,
  // hung requests and latency spikes, for [storm_begin, storm_end).
  config.inject_ssd_faults = true;
  FaultPlan plan;
  plan.seed = 17;
  // Hung requests overshoot the 250ms deadline (timeouts + hedges fire) but
  // stay cheap enough that LC's emergency salvage — which must re-read every
  // dirty frame of a degrading partition through the storm — completes in
  // seconds of virtual time, not minutes.
  plan.stuck_delay = Millis(500);
  FaultWindow storm;
  storm.begin = storm_begin;
  storm.end = storm_end;
  // Blast radius: one eighth of the device (a couple of partitions). LC's
  // emergency salvage writes every dirty frame of a degrading partition to
  // the disk array — at HDD seek cost, a storm over half the device floods
  // the disk with ~a minute of salvage writes and the whole run stays
  // disk-bound; an eighth keeps the flood proportionate while still
  // degrading (and healing) whole partitions.
  storm.first_page = 0;
  storm.last_page = static_cast<uint64_t>(bench::kSsdFrames) / 8 - 1;
  storm.transient_error_rate = 0.5;
  storm.stuck_io_rate = 0.05;
  storm.latency_spike_rate = 0.2;
  plan.windows.push_back(storm);
  config.ssd_fault_plan = plan;

  DbSystem system(config);
  Database db(&system);
  TpccWorkload::Populate(&db, wl);
  TpccWorkload workload(&db, wl);
  // Window times are absolute virtual time; the loader runs uncharged, so
  // the driver must still start (essentially) at zero for them to line up.
  // The small residue t0 that populate does leave on the clock shifts the
  // driver-relative throughput series, so the metric windows below subtract
  // it — otherwise the "baseline" window leaks into the storm.
  const Time t0 = system.executor().now();
  TURBOBP_CHECK(t0 < storm_begin / 4);
  if (std::getenv("TURBOBP_CHAOS_DEBUG") != nullptr) {
    std::printf("debug: t0=%.3fs\n", ToSeconds(t0));
  }
  system.checkpoint().SchedulePeriodic(Seconds(60));

  DriverOptions opts;
  opts.num_clients = bench::kClients;
  opts.duration = duration;
  opts.sample_width = bench::ScaledDuration(Seconds(8));

  Driver driver(&system, &workload, opts);
  ChaosOutcome out;
  out.r = driver.Run();
  out.terminal = system.ssd_manager().degraded();

  // Driver-relative storm edges (the throughput series starts at the
  // driver's start, t0 after the absolute fault windows).
  const Time sb = storm_begin - t0;
  const Time se = storm_end - t0;
  const TimeSeries& tp = out.r.throughput;
  // Baseline: the steady second half of the pre-storm period (skips the
  // warmup ramp without assuming the run is longer than 60s windows).
  out.baseline_rate = tp.AverageRate(sb / 2, sb);
  out.storm_rate = tp.AverageRate(sb, se);
  out.post_rate = tp.AverageRate(duration - (duration - se) / 2, duration);
  const std::vector<double> rates = tp.SmoothedRates(1);
  for (size_t b = 0; b < rates.size(); ++b) {
    if (tp.BucketMid(b) >= se && rates[b] >= 0.9 * out.baseline_rate) {
      out.recover90_s = ToSeconds(tp.BucketMid(b) - se);
      break;
    }
  }
  if (std::getenv("TURBOBP_CHAOS_DEBUG") != nullptr) {
    for (size_t b = 0; b < rates.size(); ++b) {
      std::printf("debug: bucket %zu mid=%.1fs rate=%.1f\n", b,
                  ToSeconds(tp.BucketMid(b)), rates[b]);
    }
    const auto& s = out.r.ssd;
    std::printf(
        "debug: used=%lld/%lld dirty=%lld quarantined=%lld lost=%lld "
        "throttled=%lld hits=%lld probe_misses=%lld admissions=%lld "
        "emergency_cleaned=%lld timeouts=%lld\n",
        static_cast<long long>(s.used_frames),
        static_cast<long long>(s.capacity_frames),
        static_cast<long long>(s.dirty_frames),
        static_cast<long long>(s.quarantined_frames),
        static_cast<long long>(s.lost_pages),
        static_cast<long long>(s.throttled),
        static_cast<long long>(s.hits),
        static_cast<long long>(s.probe_misses),
        static_cast<long long>(s.admissions),
        static_cast<long long>(s.emergency_cleaned),
        static_cast<long long>(s.io_timeouts));
  }
  return out;
}

std::string OutcomeJson(const ChaosOutcome& o, bool self_healing,
                        Time storm_begin, Time storm_end) {
  std::string j = bench::ResultJson(o.r);
  j.pop_back();  // reopen the ResultJson object to append chaos fields
  bench::JsonAdd(j, "self_healing", static_cast<int64_t>(self_healing));
  bench::JsonAdd(j, "storm_begin_s", ToSeconds(storm_begin));
  bench::JsonAdd(j, "storm_end_s", ToSeconds(storm_end));
  bench::JsonAdd(j, "baseline_rate", o.baseline_rate);
  bench::JsonAdd(j, "storm_rate", o.storm_rate);
  bench::JsonAdd(j, "post_storm_rate", o.post_rate);
  bench::JsonAdd(j, "post_over_baseline",
                 o.post_rate / std::max(1e-9, o.baseline_rate));
  bench::JsonAdd(j, "recover90_s", o.recover90_s);
  bench::JsonAdd(j, "terminal_degraded", static_cast<int64_t>(o.terminal));
  j += "}";
  return j;
}

void Run() {
  bench::PrintHeader(
      "Chaos A/B: fault storm vs terminal degradation vs self-healing",
      "robustness extension (no paper figure): per-partition degradation, "
      "scrub & canary re-admission, I/O deadlines + hedged reads");

  const Time duration = bench::ScaledDuration(Seconds(480));
  const Time storm_begin = duration / 4;
  const Time storm_end = storm_begin + duration / 8;

  std::vector<std::string> items;
  TextTable table({"design", "mode", "baseline", "storm", "post", "post/base",
                   "recover90 (s)", "terminal"});
  for (SsdDesign design :
       {SsdDesign::kDualWrite, SsdDesign::kLazyCleaning}) {
    for (const bool self_healing : {false, true}) {
      const ChaosOutcome o =
          RunChaos(design, self_healing, duration, storm_begin, storm_end);
      table.AddRow({ToString(design),
                    self_healing ? "self-healing" : "terminal-cliff",
                    TextTable::Fmt(o.baseline_rate, 1),
                    TextTable::Fmt(o.storm_rate, 1),
                    TextTable::Fmt(o.post_rate, 1),
                    TextTable::Fmt(o.post_rate / std::max(1e-9,
                                                          o.baseline_rate),
                                   2),
                    o.recover90_s < 0 ? "never"
                                      : TextTable::Fmt(o.recover90_s, 0),
                    o.terminal ? "yes" : "no"});
      items.push_back(OutcomeJson(o, self_healing, storm_begin, storm_end));
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Read: the terminal-cliff rows never recover (post/base well under 1, "
      "terminal=yes); the self-healing rows re-enable every partition and "
      "return to >= 0.9x baseline — within a bucket for DW, after a cache "
      "re-warm ramp for LC (the storm purge + salvage leaves LC refilling "
      "its working set from disk; quick mode ends mid-ramp).\n");
  bench::WriteJson("chaos_degrade", items);
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
