// Extension benchmark (the paper's Section 6 future work, sketched in
// Section 4.1.2): persist the SSD buffer table in the checkpoint record so
// (a) LC checkpoints no longer drain the SSD's dirty pages, and (b) a
// restart re-attaches the SSD's contents instead of re-warming a cold
// cache — attacking the two pain points the paper calls out ("with very
// large SSDs this can dramatically increase the time required to perform a
// checkpoint"; "it takes a very long time to warm-up the SSD ... the
// ramp-up time before reaching peak throughput is very long").
//
// Compares classic LC against LC+extension on TPC-C: checkpoint duration,
// restart recovery work, SSD warmth after restart, and early post-restart
// throughput.

#include <cstdio>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

struct Outcome {
  Time checkpoint_duration = 0;
  int64_t ssd_pages_drained = 0;
  size_t frames_after_restart = 0;
  double early_tpmc = 0;    // first post-restart window
  double ssd_hit_rate = 0;  // during that window
};

Outcome RunVariant(bool extension, const TpccConfig& config,
                   uint64_t db_pages) {
  Outcome out;
  DbSystem system(bench::BaseSystem(SsdDesign::kLazyCleaning, db_pages,
                                    /*lc_lambda=*/0.9));
  Database db(&system);
  TpccWorkload::Populate(&db, config);
  if (extension) system.checkpoint().EnableSsdTableCheckpoints();

  const Time warm = bench::ScaledDuration(Seconds(180));
  {
    TpccWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = warm;
    Driver driver(&system, &workload, opts);
    driver.Run();
  }
  // One sharp checkpoint at the end of the warm phase.
  IoContext ctx = system.MakeContext();
  const Time ckpt_start = ctx.now;
  const Time ckpt_end = system.checkpoint().RunCheckpoint(ctx);
  out.checkpoint_duration = ckpt_end - ckpt_start;
  out.ssd_pages_drained = system.checkpoint().stats().pages_flushed_ssd;

  // Crash and restart.
  system.executor().RunUntil(std::max(ckpt_end, system.executor().now()));
  system.Crash();
  IoContext rctx = system.MakeContext();
  if (extension) {
    const auto [stats, restored] = system.RecoverWithSsdTable(rctx);
    (void)stats;
    out.frames_after_restart = restored;
  } else {
    system.Recover(rctx);  // cold SSD, as in all published designs
    out.frames_after_restart = 0;
  }
  system.executor().RunUntil(std::max(rctx.now, system.executor().now()));

  // Post-restart throughput over one short window.
  {
    TpccWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = bench::ScaledDuration(Seconds(60));
    opts.steady_window = opts.duration;  // the whole window: ramp included
    Driver driver(&system, &workload, opts);
    const DriverResult r = driver.Run();
    out.early_tpmc = r.steady_rate * 60.0;
    out.ssd_hit_rate =
        r.ssd.hits + r.ssd.probe_misses > 0
            ? static_cast<double>(r.ssd.hits) /
                  static_cast<double>(r.ssd.hits + r.ssd.probe_misses)
            : 0.0;
  }
  return out;
}

void Run() {
  bench::PrintHeader(
      "Extension: SSD buffer table in the checkpoint record (Section 6)",
      "goal: cheap checkpoints under LC + warm SSD at restart (no ramp-up)");

  const TpccConfig config = bench::TpccForPages(32, bench::kTpccPages[1]);
  const Outcome classic =
      RunVariant(/*extension=*/false, config, bench::kTpccPages[1]);
  std::fflush(stdout);
  const Outcome ext =
      RunVariant(/*extension=*/true, config, bench::kTpccPages[1]);

  TextTable table({"metric", "LC classic", "LC + ssd-table checkpoint"});
  table.AddRow({"checkpoint duration (s)",
                TextTable::Fmt(ToSeconds(classic.checkpoint_duration), 2),
                TextTable::Fmt(ToSeconds(ext.checkpoint_duration), 2)});
  table.AddRow({"SSD pages drained at checkpoint",
                TextTable::Fmt(classic.ssd_pages_drained),
                TextTable::Fmt(ext.ssd_pages_drained)});
  table.AddRow({"SSD frames live after restart",
                TextTable::Fmt(static_cast<int64_t>(classic.frames_after_restart)),
                TextTable::Fmt(static_cast<int64_t>(ext.frames_after_restart))});
  table.AddRow({"post-restart tpmC (first window, ramp incl.)",
                TextTable::Fmt(classic.early_tpmc, 0),
                TextTable::Fmt(ext.early_tpmc, 0)});
  table.AddRow({"post-restart SSD hit rate",
                TextTable::Fmt(classic.ssd_hit_rate, 2),
                TextTable::Fmt(ext.ssd_hit_rate, 2)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: the extension's checkpoint is dramatically shorter\n"
      "(no SSD drain) and the restart window starts with a warm SSD — the\n"
      "ramp-up the paper's Figure 6 curves spend hours on disappears.\n\n");
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
