// Extension benchmark (the paper's Section 6 future work, sketched in
// Section 4.1.2): reuse the SSD buffer pool's contents across a restart so
// (a) LC checkpoints no longer drain the SSD's dirty pages, and (b) a
// restart re-attaches the SSD's contents instead of re-warming a cold
// cache — attacking the two pain points the paper calls out ("with very
// large SSDs this can dramatically increase the time required to perform a
// checkpoint"; "it takes a very long time to warm-up the SSD ... the
// ramp-up time before reaching peak throughput is very long").
//
// Three variants on TPC-C:
//   classic     LC, cold SSD at restart (every published design)
//   ssd-table   LC + SSD buffer table in the checkpoint record
//   persistent  LC + crash-consistent on-SSD metadata journal
//                  (SystemConfig::persistent_ssd_cache, RecoverPersistent)
// comparing checkpoint duration, restart recovery work, SSD warmth after
// restart, early post-restart throughput, and — the headline Figure 6
// metric — the virtual time until post-restart throughput reaches its
// peak. Acceptance: the persistent journal's time-to-peak is at most 25%
// of the classic cold restart's.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace turbobp {
namespace {

enum class Mode { kClassic, kSsdTable, kPersistent };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kClassic:
      return "LC classic (cold restart)";
    case Mode::kSsdTable:
      return "LC + ssd-table checkpoint";
    case Mode::kPersistent:
      return "LC + persistent journal";
  }
  return "?";
}

const char* ModeKey(Mode m) {
  switch (m) {
    case Mode::kClassic:
      return "classic_cold";
    case Mode::kSsdTable:
      return "ssd_table_checkpoint";
    case Mode::kPersistent:
      return "persistent_journal";
  }
  return "?";
}

struct Outcome {
  Time checkpoint_duration = 0;
  int64_t ssd_pages_drained = 0;
  size_t frames_after_restart = 0;
  double early_tpmc = 0;     // first post-restart window
  double ssd_hit_rate = 0;   // during that window
  Time time_to_peak = 0;     // post-restart virtual time to 90% of peak
  double peak_rate = 0;      // peak smoothed throughput (txns/s)
  PersistentRestoreStats pstats;  // persistent variant only
};

// Virtual time (from the start of the post-restart run) until the smoothed
// throughput first reaches 90% of the run's peak (the highest smoothed
// rate — the paper's Figure 6 "ramp-up time before reaching peak
// throughput"). The 5-bucket moving average keeps a single noisy bucket
// from moving either the peak or the crossing.
Time TimeToPeak(const TimeSeries& ts, double* peak_out) {
  const std::vector<double> rates = ts.SmoothedRates(5);
  if (std::getenv("TURBOBP_BENCH_DEBUG") != nullptr) {
    std::printf("smooth:");
    for (double r : rates) std::printf(" %.0f", r);
    std::printf("\n");
  }
  if (rates.empty()) return 0;
  double peak = 0;
  for (double r : rates) peak = std::max(peak, r);
  if (peak_out != nullptr) *peak_out = peak;
  if (peak <= 0) return 0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] >= 0.9 * peak) {
      return static_cast<Time>(i + 1) * ts.bucket_width();
    }
  }
  return static_cast<Time>(rates.size()) * ts.bucket_width();
}

Outcome RunVariant(Mode mode, const TpccConfig& config, uint64_t db_pages) {
  Outcome out;
  SystemConfig sys_config = bench::BaseSystem(SsdDesign::kLazyCleaning,
                                              db_pages, /*lc_lambda=*/0.9);
  sys_config.persistent_ssd_cache = (mode == Mode::kPersistent);
  DbSystem system(sys_config);
  Database db(&system);
  TpccWorkload::Populate(&db, config);
  if (mode == Mode::kSsdTable) {
    system.checkpoint().EnableSsdTableCheckpoints();
  }

  const Time warm = bench::ScaledDuration(Seconds(180));
  {
    TpccWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = warm;
    Driver driver(&system, &workload, opts);
    driver.Run();
  }
  // One sharp checkpoint at the end of the warm phase.
  IoContext ctx = system.MakeContext();
  const Time ckpt_start = ctx.now;
  const Time ckpt_end = system.checkpoint().RunCheckpoint(ctx);
  out.checkpoint_duration = ckpt_end - ckpt_start;
  out.ssd_pages_drained = system.checkpoint().stats().pages_flushed_ssd;

  // Crash and restart. Device contents survive; in-memory state does not.
  system.executor().RunUntil(std::max(ckpt_end, system.executor().now()));
  system.Crash();
  IoContext rctx = system.MakeContext();
  switch (mode) {
    case Mode::kClassic:
      system.Recover(rctx);  // cold SSD, as in all published designs
      out.frames_after_restart = 0;
      break;
    case Mode::kSsdTable: {
      const auto [stats, restored] = system.RecoverWithSsdTable(rctx);
      (void)stats;
      out.frames_after_restart = restored;
      break;
    }
    case Mode::kPersistent: {
      const auto [stats, pstats] = system.RecoverPersistent(rctx);
      (void)stats;
      out.pstats = pstats;
      out.frames_after_restart = pstats.restored;
      break;
    }
  }
  system.executor().RunUntil(std::max(rctx.now, system.executor().now()));

  // Post-restart run, long enough for the cold cache to re-warm, so the
  // time-to-peak comparison sees the whole ramp on every variant.
  {
    TpccWorkload workload(&db, config);
    DriverOptions opts;
    opts.num_clients = bench::kClients;
    opts.duration = bench::ScaledDuration(Seconds(240));
    opts.steady_window = opts.duration;  // the whole window: ramp included
    // Fine-grained buckets: a warm restart reaches peak within seconds, so
    // the default 6s buckets would quantize its time-to-peak to a floor.
    opts.sample_width = Seconds(1);
    Driver driver(&system, &workload, opts);
    const DriverResult r = driver.Run();
    out.early_tpmc = r.steady_rate * 60.0;
    out.ssd_hit_rate =
        r.ssd.hits + r.ssd.probe_misses > 0
            ? static_cast<double>(r.ssd.hits) /
                  static_cast<double>(r.ssd.hits + r.ssd.probe_misses)
            : 0.0;
    out.time_to_peak = TimeToPeak(r.throughput, &out.peak_rate);
  }
  return out;
}

std::string OutcomeJson(Mode mode, const Outcome& o) {
  std::string j = "{";
  bench::JsonAdd(j, "variant", ModeKey(mode), true);
  bench::JsonAdd(j, "checkpoint_duration_s", ToSeconds(o.checkpoint_duration));
  bench::JsonAdd(j, "ssd_pages_drained", o.ssd_pages_drained);
  bench::JsonAdd(j, "frames_after_restart",
                 static_cast<int64_t>(o.frames_after_restart));
  bench::JsonAdd(j, "early_tpmc", o.early_tpmc);
  bench::JsonAdd(j, "post_restart_ssd_hit_rate", o.ssd_hit_rate);
  bench::JsonAdd(j, "time_to_peak_s", ToSeconds(o.time_to_peak));
  bench::JsonAdd(j, "peak_rate_tps", o.peak_rate);
  j += "}";
  return j;
}

void Run() {
  bench::PrintHeader(
      "Extension: warm SSD restart (ssd-table ckpt vs persistent journal)",
      "goal: cheap checkpoints under LC + warm SSD at restart (no ramp-up)");

  const TpccConfig config = bench::TpccForPages(32, bench::kTpccPages[1]);
  const Outcome classic =
      RunVariant(Mode::kClassic, config, bench::kTpccPages[1]);
  std::fflush(stdout);
  const Outcome ext =
      RunVariant(Mode::kSsdTable, config, bench::kTpccPages[1]);
  std::fflush(stdout);
  const Outcome pers =
      RunVariant(Mode::kPersistent, config, bench::kTpccPages[1]);

  TextTable table({"metric", ModeName(Mode::kClassic),
                   ModeName(Mode::kSsdTable), ModeName(Mode::kPersistent)});
  table.AddRow({"checkpoint duration (s)",
                TextTable::Fmt(ToSeconds(classic.checkpoint_duration), 2),
                TextTable::Fmt(ToSeconds(ext.checkpoint_duration), 2),
                TextTable::Fmt(ToSeconds(pers.checkpoint_duration), 2)});
  table.AddRow({"SSD pages drained at checkpoint",
                TextTable::Fmt(classic.ssd_pages_drained),
                TextTable::Fmt(ext.ssd_pages_drained),
                TextTable::Fmt(pers.ssd_pages_drained)});
  table.AddRow(
      {"SSD frames live after restart",
       TextTable::Fmt(static_cast<int64_t>(classic.frames_after_restart)),
       TextTable::Fmt(static_cast<int64_t>(ext.frames_after_restart)),
       TextTable::Fmt(static_cast<int64_t>(pers.frames_after_restart))});
  table.AddRow({"post-restart tpmC (window avg, ramp incl.)",
                TextTable::Fmt(classic.early_tpmc, 0),
                TextTable::Fmt(ext.early_tpmc, 0),
                TextTable::Fmt(pers.early_tpmc, 0)});
  table.AddRow({"post-restart SSD hit rate",
                TextTable::Fmt(classic.ssd_hit_rate, 2),
                TextTable::Fmt(ext.ssd_hit_rate, 2),
                TextTable::Fmt(pers.ssd_hit_rate, 2)});
  table.AddRow({"time to 90% of peak throughput (s)",
                TextTable::Fmt(ToSeconds(classic.time_to_peak), 1),
                TextTable::Fmt(ToSeconds(ext.time_to_peak), 1),
                TextTable::Fmt(ToSeconds(pers.time_to_peak), 1)});
  std::printf("%s\n", table.ToString().c_str());

  const double cold_ttp = ToSeconds(classic.time_to_peak);
  const double warm_ttp = ToSeconds(pers.time_to_peak);
  const double ratio = cold_ttp > 0 ? warm_ttp / cold_ttp : 0.0;
  const bool ramp_ok = ratio <= 0.25;
  std::printf(
      "Warm-restart ramp: persistent journal reaches peak in %.1fs vs\n"
      "%.1fs cold (ratio %.2f, acceptance <= 0.25: %s).\n",
      warm_ttp, cold_ttp, ratio, ramp_ok ? "PASS" : "FAIL");
  std::printf(
      "Expected shape: both warm variants skip the SSD drain at checkpoint\n"
      "and start the restart window with a warm SSD — the ramp-up the\n"
      "paper's Figure 6 curves spend hours on disappears. The persistent\n"
      "journal additionally survives crashes with no checkpoint at all.\n\n");

  std::vector<std::string> items;
  items.push_back(OutcomeJson(Mode::kClassic, classic));
  items.push_back(OutcomeJson(Mode::kSsdTable, ext));
  items.push_back(OutcomeJson(Mode::kPersistent, pers));
  {
    std::string j = "{";
    bench::JsonAdd(j, "variant", "summary", true);
    bench::JsonAdd(j, "cold_time_to_peak_s", cold_ttp);
    bench::JsonAdd(j, "warm_time_to_peak_s", warm_ttp);
    bench::JsonAdd(j, "warm_over_cold_ratio", ratio);
    bench::JsonAdd(j, "warm_ramp_ok", std::string(ramp_ok ? "true" : "false"),
                   false);
    bench::JsonAdd(j, "journal_valid",
                   std::string(pers.pstats.journal_valid ? "true" : "false"),
                   false);
    bench::JsonAdd(j, "journal_entries_recovered",
                   static_cast<int64_t>(pers.pstats.entries_recovered));
    bench::JsonAdd(j, "journal_dropped_beyond_horizon",
                   static_cast<int64_t>(pers.pstats.dropped_beyond_horizon));
    j += "}";
    items.push_back(j);
  }
  bench::WriteJson("ext_ssd_restart", items);
}

}  // namespace
}  // namespace turbobp

int main() {
  turbobp::Run();
  return 0;
}
