// Corruption-injection tests for the InvariantAuditor: a clean system must
// audit clean, and each deliberately broken invariant must be reported.

#include "debug/invariant_auditor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "core/dual_write.h"
#include "core/lazy_cleaning.h"
#include "core/ssd_buffer_table.h"
#include "core/ssd_heap.h"
#include "storage/mem_device.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 512;
constexpr PageId kPages = 256;

std::vector<uint8_t> MakePage(PageId pid) {
  std::vector<uint8_t> data(kPage);
  PageView v(data.data(), kPage);
  v.Format(pid, PageType::kRaw);
  v.SealChecksum();
  return data;
}

bool HasViolationContaining(const AuditReport& report, const std::string& sub) {
  for (const auto& v : report.violations()) {
    if (v.detail.find(sub) != std::string::npos) return true;
  }
  return false;
}

class InvariantAuditorTest : public ::testing::Test {
 protected:
  InvariantAuditorTest()
      : disk_dev_(kPages, kPage),
        ssd_dev_(64, kPage),
        log_dev_(1 << 10, kPage),
        disk_(&disk_dev_),
        log_(&log_dev_) {
    disk_dev_.SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
      PageView v(out.data(), kPage);
      v.Format(page, PageType::kRaw);
      v.SealChecksum();
    });
    sopts_.num_frames = 64;
    sopts_.num_partitions = 4;
  }

  MemDevice disk_dev_;
  MemDevice ssd_dev_;
  MemDevice log_dev_;
  DiskManager disk_;
  LogManager log_;
  SsdCacheOptions sopts_;
};

TEST_F(InvariantAuditorTest, CleanSystemAuditsClean) {
  DualWriteCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  BufferPool::Options opts;
  opts.num_frames = 32;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk_, &log_, &ssd);

  Rng rng(7);
  IoContext ctx;
  for (int i = 0; i < 4000; ++i) {
    const PageId pid = rng.Uniform(kPages);
    PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
    if (rng.Bernoulli(0.3)) {
      g.view().payload()[0] = static_cast<uint8_t>(i);
      g.LogUpdate(static_cast<uint64_t>(i), kPageHeaderSize, 1);
    }
  }
  const AuditReport report = InvariantAuditor::AuditSystem(pool, &ssd);
  EXPECT_TRUE(report.ok()) << report.ToString();
  pool.FlushAllDirty(ctx, false);
  const AuditReport after = InvariantAuditor::AuditSystem(pool, &ssd);
  EXPECT_TRUE(after.ok()) << after.ToString();
}

TEST_F(InvariantAuditorTest, LazyCleaningDirtyFramesAuditClean) {
  LazyCleaningCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  IoContext ctx;
  for (PageId pid = 0; pid < 32; ++pid) {
    const auto data = MakePage(pid);
    ssd.OnEvictDirty(pid, data, AccessKind::kRandom, kInvalidLsn, ctx);
  }
  EXPECT_GT(ssd.dirty_frames(), 0);
  AuditReport report = InvariantAuditor::AuditSsdCache(ssd);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Draining the dirty pages must leave a consistent all-clean cache.
  ssd.FlushAllDirty(ctx);
  EXPECT_EQ(ssd.dirty_frames(), 0);
  report = InvariantAuditor::AuditSsdCache(ssd);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsDirtyHeapEntryWhoseRecordSaysClean) {
  LazyCleaningCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  IoContext ctx;
  const PageId pid = 13;
  const auto data = MakePage(pid);
  ASSERT_TRUE(
      ssd.OnEvictDirty(pid, data, AccessKind::kRandom, kInvalidLsn, ctx)
          .cached_on_ssd);

  // Flip the record's state without touching heap membership or counters:
  // the frame now sits in the dirty heap while claiming to be clean.
  const size_t part = AuditAccess::PartitionIndexOf(ssd, pid);
  SsdBufferTable& table = AuditAccess::Table(ssd, part);
  const int32_t rec = table.Lookup(pid);
  ASSERT_NE(rec, -1);
  ASSERT_EQ(table.record(rec).state, SsdFrameState::kDirty);
  table.record(rec).state = SsdFrameState::kClean;

  const AuditReport report = InvariantAuditor::AuditSsdCache(ssd);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "dirty heap"))
      << report.ToString();
  EXPECT_TRUE(HasViolationContaining(report, "dirty_frames counter"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsStaleHashEntryAfterBotchedEviction) {
  DualWriteCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  IoContext ctx;
  const PageId pid = 21;
  const auto data = MakePage(pid);
  ssd.OnEvictClean(pid, data, AccessKind::kRandom, ctx);

  // Simulate a botched eviction: the record is freed and unlinked from the
  // heap, but the hash entry is left behind (and the record never returns
  // to the free list).
  const size_t part = AuditAccess::PartitionIndexOf(ssd, pid);
  SsdBufferTable& table = AuditAccess::Table(ssd, part);
  SsdSplitHeap& heap = AuditAccess::Heap(ssd, part);
  const int32_t rec = table.Lookup(pid);
  ASSERT_NE(rec, -1);
  heap.Remove(rec);
  table.record(rec).state = SsdFrameState::kFree;

  const AuditReport report = InvariantAuditor::AuditSsdCache(ssd);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "stale hash entry"))
      << report.ToString();
  EXPECT_TRUE(HasViolationContaining(report, "not on the free list"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsDriftedDirtyCounter) {
  LazyCleaningCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  IoContext ctx;
  const auto data = MakePage(3);
  ssd.OnEvictDirty(3, data, AccessKind::kRandom, kInvalidLsn, ctx);
  AuditAccess::DirtyFrames(ssd).fetch_add(1);
  const AuditReport report = InvariantAuditor::AuditSsdCache(ssd);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "dirty_frames counter"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsUnindexedResidentFrame) {
  BufferPool::Options opts;
  opts.num_frames = 8;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk_, &log_, nullptr);
  IoContext ctx;
  { PageGuard g = pool.FetchPage(5, AccessKind::kRandom, ctx); }
  ASSERT_TRUE(InvariantAuditor::AuditBufferPool(pool).ok());

  // Drop the page-table entry while the frame keeps its contents: the frame
  // is now resident but unreachable.
  AuditAccess::RebindPageTableEntry(pool, 5, -1);
  const AuditReport report = InvariantAuditor::AuditBufferPool(pool);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "not indexed"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsFreeListedResidentFrame) {
  BufferPool::Options opts;
  opts.num_frames = 8;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk_, &log_, nullptr);
  IoContext ctx;
  // The first fetch lands in frame 0 (the free list is popped from the back,
  // which the constructor seeds with frame 0 last).
  { PageGuard g = pool.FetchPage(9, AccessKind::kRandom, ctx); }
  AuditAccess::PushFreeList(pool, 0);
  const AuditReport report = InvariantAuditor::AuditBufferPool(pool);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "free list"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsStalePageTableEntry) {
  BufferPool::Options opts;
  opts.num_frames = 8;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk_, &log_, nullptr);
  IoContext ctx;
  { PageGuard g = pool.FetchPage(2, AccessKind::kRandom, ctx); }
  { PageGuard g = pool.FetchPage(3, AccessKind::kRandom, ctx); }
  // Rewire page 2's entry at page 3's frame (frame 1: second pop).
  AuditAccess::RebindPageTableEntry(pool, 2, 1);
  const AuditReport report = InvariantAuditor::AuditBufferPool(pool);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "stale entry"))
      << report.ToString();
}

TEST_F(InvariantAuditorTest, DetectsMissedSsdInvalidation) {
  LazyCleaningCache ssd(&ssd_dev_, &disk_, sopts_, nullptr);
  BufferPool::Options opts;
  opts.num_frames = 16;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk_, &log_, &ssd);
  IoContext ctx;
  const PageId pid = 4;
  {
    PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
    g.view().payload()[0] = 0xAB;
    g.LogUpdate(1, kPageHeaderSize, 1);  // dirty in memory; SSD invalidated
  }
  ASSERT_TRUE(InvariantAuditor::AuditSystem(pool, &ssd).ok());

  // Sneak a copy of the (stale) page back into the SSD behind the pool's
  // back: the memory copy is dirty, so the SSD must not serve this page.
  const auto stale = MakePage(pid);
  ssd.OnEvictClean(pid, stale, AccessKind::kRandom, ctx);
  const AuditReport report = InvariantAuditor::AuditSystem(pool, &ssd);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "missed invalidation"))
      << report.ToString();
}

TEST(CopyStateMachineTest, LegalAndIllegalTransitions) {
  using S = SsdFrameState;
  // Admission, invalidation, cleaning and TAC re-validation are legal.
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kFree, S::kClean));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kFree, S::kDirty));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kClean, S::kDirty));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kClean, S::kFree));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kClean, S::kInvalid));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kDirty, S::kClean));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kDirty, S::kFree));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kInvalid, S::kClean));
  EXPECT_TRUE(InvariantAuditor::IsLegalTransition(S::kInvalid, S::kFree));
  // A dirty frame holds the only current copy: logical invalidation or
  // resurrection of a freed frame would lose updates.
  EXPECT_FALSE(InvariantAuditor::IsLegalTransition(S::kDirty, S::kInvalid));
  EXPECT_FALSE(InvariantAuditor::IsLegalTransition(S::kFree, S::kInvalid));
  EXPECT_FALSE(InvariantAuditor::IsLegalTransition(S::kInvalid, S::kDirty));
}

}  // namespace
}  // namespace turbobp
