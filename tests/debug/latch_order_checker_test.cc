// Tests for the runtime latch-order checker: manufactured inversions must be
// flagged, and the engine's real latch discipline must produce no findings.

#include "debug/latch_order_checker.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "core/lazy_cleaning.h"
#include "core/tac.h"
#include "storage/mem_device.h"
#include "storage/page.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"

// TSan's own deadlock detector (rightly) reports the AB/BA cycles that two
// of these tests manufacture on purpose; skip just those under TSan — the
// checker's cycle detection is still covered by the Release and ASan jobs.
#if defined(__SANITIZE_THREAD__)
#define TURBOBP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TURBOBP_TSAN 1
#endif
#endif

namespace turbobp {
namespace {

constexpr uint32_t kPage = 512;
constexpr PageId kPages = 256;

// Enables checking for the duration of a test and restores the previous
// state (the default depends on the build type), leaving a clean graph.
class ScopedChecking {
 public:
  ScopedChecking() : was_enabled_(LatchOrderChecker::Instance().enabled()) {
    LatchOrderChecker::Instance().Reset();
    LatchOrderChecker::Instance().set_enabled(true);
  }
  ~ScopedChecking() {
    LatchOrderChecker::Instance().set_enabled(was_enabled_);
    LatchOrderChecker::Instance().Reset();
  }

 private:
  bool was_enabled_;
};

TEST(LatchOrderCheckerTest, ConsistentOrderIsClean) {
  ScopedChecking scope;
  TrackedMutex<LatchClass::kBufferPool> outer;
  TrackedMutex<LatchClass::kWal> inner;
  for (int i = 0; i < 3; ++i) {
    std::lock_guard a(outer);
    std::lock_guard b(inner);
  }
  EXPECT_EQ(LatchOrderChecker::Instance().violation_count(), 0);
}

TEST(LatchOrderCheckerTest, InversionIsFlaggedAsCycle) {
#if defined(TURBOBP_TSAN)
  GTEST_SKIP() << "deliberate lock-order cycle trips TSan's deadlock detector";
#endif
  ScopedChecking scope;
  TrackedMutex<LatchClass::kBufferPool> pool_latch;
  TrackedMutex<LatchClass::kSsdPartition> part_latch;
  {
    std::lock_guard a(pool_latch);
    std::lock_guard b(part_latch);
  }
  EXPECT_EQ(LatchOrderChecker::Instance().violation_count(), 0);
  {
    std::lock_guard b(part_latch);
    std::lock_guard a(pool_latch);  // opposite order: cycle
  }
  const auto violations = LatchOrderChecker::Instance().violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("latch order cycle"), std::string::npos)
      << violations[0];
}

TEST(LatchOrderCheckerTest, TransitiveInversionIsFlagged) {
#if defined(TURBOBP_TSAN)
  GTEST_SKIP() << "deliberate lock-order cycle trips TSan's deadlock detector";
#endif
  ScopedChecking scope;
  TrackedMutex<LatchClass::kBufferPool> a;
  TrackedMutex<LatchClass::kWal> b;
  TrackedMutex<LatchClass::kSsdPartition> c;
  {
    std::lock_guard la(a);
    std::lock_guard lb(b);
  }
  {
    std::lock_guard lb(b);
    std::lock_guard lc(c);
  }
  {
    // c -> a closes the 3-node cycle a -> b -> c -> a.
    std::lock_guard lc(c);
    std::lock_guard la(a);
  }
  EXPECT_EQ(LatchOrderChecker::Instance().violation_count(), 1);
}

TEST(LatchOrderCheckerTest, SameClassNestingIsFlagged) {
  ScopedChecking scope;
  TrackedMutex<LatchClass::kSsdPartition> p0;
  TrackedMutex<LatchClass::kSsdPartition> p1;
  {
    std::lock_guard a(p0);
    std::lock_guard b(p1);  // two partitions at once: deadlock-prone
  }
  const auto violations = LatchOrderChecker::Instance().violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("same-class"), std::string::npos)
      << violations[0];
}

TEST(LatchOrderCheckerTest, DisabledCheckerRecordsNothing) {
#if defined(TURBOBP_TSAN)
  GTEST_SKIP() << "deliberate lock-order cycle trips TSan's deadlock detector";
#endif
  ScopedChecking scope;
  LatchOrderChecker::Instance().set_enabled(false);
  TrackedMutex<LatchClass::kBufferPool> a;
  TrackedMutex<LatchClass::kWal> b;
  {
    std::lock_guard lb(b);
    std::lock_guard la(a);
  }
  EXPECT_EQ(LatchOrderChecker::Instance().violation_count(), 0);
}

// The engine's own latch discipline, exercised end-to-end across the buffer
// pool, WAL, SSD partitions, stats, the TAC latch table and the devices —
// from multiple threads — must produce zero findings.
TEST(LatchOrderCheckerTest, EngineDisciplineIsClean) {
  ScopedChecking scope;
  MemDevice disk_dev(kPages, kPage);
  disk_dev.SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
    PageView v(out.data(), kPage);
    v.Format(page, PageType::kRaw);
    v.SealChecksum();
  });
  MemDevice ssd_dev(64, kPage);
  MemDevice log_dev(1 << 10, kPage);
  DiskManager disk(&disk_dev);
  LogManager log(&log_dev);
  SsdCacheOptions sopts;
  sopts.num_frames = 64;
  sopts.num_partitions = 4;
  sopts.lc_dirty_fraction = 0.3;  // make the synchronous cleaner run
  LazyCleaningCache ssd(&ssd_dev, &disk, sopts, nullptr);
  BufferPool::Options opts;
  opts.num_frames = 32;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk, &log, &ssd);
  CheckpointManager ckpt(&pool, &ssd, &log, nullptr);

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      IoContext ctx;
      for (int i = 0; i < 3000; ++i) {
        const PageId pid = rng.Uniform(kPages);
        PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
        if (rng.Bernoulli(0.4)) {
          g.view().payload()[t] = static_cast<uint8_t>(i);
          g.LogUpdate(static_cast<uint64_t>(t) << 32 | i,
                      kPageHeaderSize + t, 1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  IoContext ctx;
  ckpt.RunCheckpoint(ctx);

  // TAC's latch-table path (pool latch -> tac latch, partition -> tac latch).
  TacCache tac(&ssd_dev, &disk, sopts, nullptr, kPages);
  pool.Reset();
  pool.set_ssd_manager(&tac);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    PageGuard g = pool.FetchPage(rng.Uniform(kPages), AccessKind::kRandom, ctx);
  }

  const auto violations = LatchOrderChecker::Instance().violations();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations.front();
}

}  // namespace
}  // namespace turbobp
