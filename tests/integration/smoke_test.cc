// End-to-end smoke: populate a tiny TPC-C database and run each SSD design
// for a short virtual window, checking the basic performance ordering the
// paper establishes (every SSD design beats noSSD; LC leads on TPC-C) and
// that the system's correctness machinery (checksums on every read) stays
// quiet throughout.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace turbobp {
namespace {

SystemConfig SmokeConfig(SsdDesign design, uint64_t db_pages) {
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = db_pages + 64;
  config.bp_frames = db_pages / 5;     // BP = 20% of DB, as in the paper's 1K case
  config.ssd_frames = static_cast<int64_t>(db_pages * 7 / 10);
  config.design = design;
  config.ssd_options.num_partitions = 4;
  config.ssd_options.lc_dirty_fraction = 0.5;
  return config;
}

double RunDesign(SsdDesign design) {
  TpccConfig tpcc;
  tpcc.warehouses = 2;
  tpcc.row_scale = 0.01;
  const uint64_t db_pages = TpccWorkload::EstimateDbPages(tpcc, 1024);
  DbSystem system(SmokeConfig(design, db_pages));
  Database db(&system);
  TpccWorkload::Populate(&db, tpcc);

  TpccWorkload workload(&db, tpcc);
  DriverOptions opts;
  opts.num_clients = 8;
  opts.duration = Seconds(30);
  opts.steady_window = Seconds(10);
  Driver driver(&system, &workload, opts);
  const DriverResult result = driver.Run();
  EXPECT_GT(result.metric_txns, 0) << ToString(design);
  if (design != SsdDesign::kNoSsd) {
    EXPECT_GT(result.ssd.admissions, 0) << ToString(design);
  }
  return result.steady_rate;
}

TEST(SmokeTest, TpccAllDesignsRunAndSsdHelps) {
  const double no_ssd = RunDesign(SsdDesign::kNoSsd);
  const double cw = RunDesign(SsdDesign::kCleanWrite);
  const double dw = RunDesign(SsdDesign::kDualWrite);
  const double lc = RunDesign(SsdDesign::kLazyCleaning);
  const double tac = RunDesign(SsdDesign::kTac);
  ASSERT_GT(no_ssd, 0.0);
  // Every SSD design should beat the disks-only baseline on this
  // cache-friendly configuration.
  EXPECT_GT(cw, no_ssd);
  EXPECT_GT(dw, no_ssd);
  EXPECT_GT(lc, no_ssd);
  EXPECT_GT(tac, no_ssd);
  // The paper's headline TPC-C ordering: LC leads the write-through designs.
  EXPECT_GT(lc, dw * 0.99);
}

}  // namespace
}  // namespace turbobp
