// Cross-design behavioral invariants at system level, driven by the real
// workloads — the properties the paper's conclusions rest on:
//   * TPC-E (read-intensive): the three designs converge.
//   * determinism: identical configs produce identical runs.
//   * cold SSD at start; aggressive fill populates it quickly.
//   * LC obeys lambda; DW/CW/TAC never hold dirty SSD pages.

#include <gtest/gtest.h>

#include <memory>

#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

namespace turbobp {
namespace {

struct RunResult {
  DriverResult driver;
};

RunResult RunTpce(SsdDesign design, double lambda = 0.01) {
  TpceConfig tpce;
  tpce.customers = 400;
  tpce.trades_per_customer = 30;
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = TpceWorkload::EstimateDbPages(tpce, 1024);
  config.bp_frames = config.db_pages / 6;
  config.ssd_frames = static_cast<int64_t>(config.db_pages * 2 / 3);
  config.design = design;
  config.ssd_options.num_partitions = 4;
  config.ssd_options.lc_dirty_fraction = lambda;
  DbSystem system(config);
  Database db(&system);
  TpceWorkload::Populate(&db, tpce);
  TpceWorkload workload(&db, tpce);
  DriverOptions opts;
  opts.num_clients = 8;
  opts.duration = Seconds(40);
  opts.steady_window = Seconds(10);
  Driver driver(&system, &workload, opts);
  return RunResult{driver.Run()};
}

TEST(DesignBehaviorTest, ReadIntensiveWorkloadCollapsesTheDesignGap) {
  const double dw = RunTpce(SsdDesign::kDualWrite).driver.steady_rate;
  const double lc = RunTpce(SsdDesign::kLazyCleaning).driver.steady_rate;
  const double cw = RunTpce(SsdDesign::kCleanWrite).driver.steady_rate;
  ASSERT_GT(dw, 0);
  // DW and LC within 25% of each other (paper: "similar performance").
  EXPECT_LT(std::abs(dw - lc) / dw, 0.25);
  // CW trails but not catastrophically on a read-heavy mix.
  EXPECT_GT(cw, dw * 0.5);
  EXPECT_LE(cw, std::max(dw, lc) * 1.1);
}

TEST(DesignBehaviorTest, RunsAreDeterministic) {
  const DriverResult a = RunTpce(SsdDesign::kLazyCleaning).driver;
  const DriverResult b = RunTpce(SsdDesign::kLazyCleaning).driver;
  EXPECT_EQ(a.metric_txns, b.metric_txns);
  EXPECT_EQ(a.total_txns, b.total_txns);
  EXPECT_EQ(a.ssd.admissions, b.ssd.admissions);
  EXPECT_EQ(a.bp.misses, b.bp.misses);
}

TEST(DesignBehaviorTest, OnlyLcHoldsDirtySsdPages) {
  TpccConfig tpcc;
  tpcc.warehouses = 2;
  tpcc.row_scale = 0.01;
  for (SsdDesign d : {SsdDesign::kCleanWrite, SsdDesign::kDualWrite,
                      SsdDesign::kLazyCleaning, SsdDesign::kTac}) {
    SystemConfig config;
    config.page_bytes = 1024;
    config.db_pages = TpccWorkload::EstimateDbPages(tpcc, 1024);
    config.bp_frames = config.db_pages / 5;
    config.ssd_frames = static_cast<int64_t>(config.db_pages / 2);
    config.design = d;
    config.ssd_options.num_partitions = 2;
    config.ssd_options.lc_dirty_fraction = 0.5;
    DbSystem system(config);
    Database db(&system);
    TpccWorkload::Populate(&db, tpcc);
    TpccWorkload workload(&db, tpcc);
    DriverOptions opts;
    opts.num_clients = 8;
    opts.duration = Seconds(20);
    Driver driver(&system, &workload, opts);
    const DriverResult r = driver.Run();
    if (d == SsdDesign::kLazyCleaning) {
      EXPECT_GT(r.ssd.dirty_frames, 0) << ToString(d);
      // lambda bound respected (cleaner may briefly overshoot one group).
      EXPECT_LE(r.ssd.dirty_frames,
                static_cast<int64_t>(0.5 * config.ssd_frames) + 64)
          << ToString(d);
    } else {
      EXPECT_EQ(r.ssd.dirty_frames, 0) << ToString(d);
    }
    if (d == SsdDesign::kTac) {
      EXPECT_GT(r.ssd.invalid_frames, 0) << "TAC must waste frames on TPC-C";
    } else {
      EXPECT_EQ(r.ssd.invalid_frames, 0) << ToString(d);
    }
  }
}

TEST(DesignBehaviorTest, LcServesMostlyDirtySsdPagesOnTpcc) {
  // Section 4.2: "about 83% of the total SSD references are to dirty SSD
  // pages" under LC on TPC-C — the mechanism behind the write-back win.
  TpccConfig tpcc;
  tpcc.warehouses = 2;
  tpcc.row_scale = 0.01;
  SystemConfig config;
  config.page_bytes = 1024;
  config.db_pages = TpccWorkload::EstimateDbPages(tpcc, 1024);
  config.bp_frames = config.db_pages / 5;
  config.ssd_frames = static_cast<int64_t>(config.db_pages * 7 / 10);
  config.design = SsdDesign::kLazyCleaning;
  config.ssd_options.num_partitions = 2;
  config.ssd_options.lc_dirty_fraction = 0.9;
  DbSystem system(config);
  Database db(&system);
  TpccWorkload::Populate(&db, tpcc);
  TpccWorkload workload(&db, tpcc);
  DriverOptions opts;
  opts.num_clients = 8;
  opts.duration = Seconds(40);
  Driver driver(&system, &workload, opts);
  const DriverResult r = driver.Run();
  ASSERT_GT(r.ssd.hits, 100);
  const double dirty_share = static_cast<double>(r.ssd.hits_dirty) /
                             static_cast<double>(r.ssd.hits);
  EXPECT_GT(dirty_share, 0.5);  // majority of SSD references hit dirty pages
}

TEST(DesignBehaviorTest, AggressiveFillPopulatesSsdFromColdStart) {
  const RunResult r = RunTpce(SsdDesign::kDualWrite);
  // The SSD started cold (population bypasses it) and filled during the run.
  EXPECT_GT(r.driver.ssd.used_frames, r.driver.ssd.capacity_frames / 4);
  EXPECT_GT(r.driver.ssd.admissions, r.driver.ssd.used_frames / 2);
}

}  // namespace
}  // namespace turbobp
