// The library as an ordinary buffer manager over real files: BufferPool +
// DW SSD cache where both tiers are actual files on disk. Confirms that
// nothing in the stack depends on the simulation substrate.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "core/dual_write.h"
#include "storage/file_device.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 1024;

TEST(RealFileTest, BufferPoolWithSsdCacheOverRealFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string disk_path = dir + "/turbobp_disk.db";
  const std::string ssd_path = dir + "/turbobp_ssd.cache";
  const std::string log_path = dir + "/turbobp_wal.log";

  std::unique_ptr<FileDevice> disk_dev, ssd_dev, log_dev;
  ASSERT_TRUE(FileDevice::Create(disk_path, 512, kPage, &disk_dev).ok());
  ASSERT_TRUE(FileDevice::Create(ssd_path, 128, kPage, &ssd_dev).ok());
  ASSERT_TRUE(FileDevice::Create(log_path, 1024, kPage, &log_dev).ok());

  // Format the database file (real files have no synthesizer).
  {
    std::vector<uint8_t> buf(kPage);
    for (PageId p = 0; p < 512; ++p) {
      PageView v(buf.data(), kPage);
      v.Format(p, PageType::kRaw);
      v.SealChecksum();
      disk_dev->Write(p, 1, buf, 0);
    }
  }

  DiskManager disk(disk_dev.get());
  LogManager log(log_dev.get());
  SsdCacheOptions sopts;
  sopts.num_frames = 128;
  sopts.num_partitions = 4;
  DualWriteCache ssd(ssd_dev.get(), &disk, sopts, /*executor=*/nullptr);
  BufferPool::Options opts;
  opts.num_frames = 32;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk, &log, &ssd);

  // Random read/write churn; everything lands in real files.
  Rng rng(77);
  IoContext ctx;
  for (int i = 0; i < 5000; ++i) {
    const PageId pid = rng.Uniform(512);
    PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
    if (rng.Bernoulli(0.4)) {
      g.view().payload()[0] = static_cast<uint8_t>(i);
      g.LogUpdate(static_cast<uint64_t>(i), kPageHeaderSize, 1);
    }
  }
  pool.FlushAllDirty(ctx, false);
  EXPECT_GT(pool.stats().ssd_hits, 0);  // the file-backed cache served reads
  EXPECT_GT(ssd.stats().admissions, 0);

  // Re-open the database file cold and verify every page checksums.
  ASSERT_TRUE(disk_dev->Sync().ok());
  std::unique_ptr<FileDevice> reopened;
  ASSERT_TRUE(FileDevice::Open(disk_path, kPage, &reopened).ok());
  std::vector<uint8_t> buf(kPage);
  for (PageId p = 0; p < 512; ++p) {
    reopened->Read(p, 1, buf, 0);
    PageView v(buf.data(), kPage);
    ASSERT_EQ(v.header().page_id, p);
    ASSERT_TRUE(v.VerifyChecksum()) << "page " << p;
  }
  ::unlink(disk_path.c_str());
  ::unlink(ssd_path.c_str());
  ::unlink(log_path.c_str());
}

}  // namespace
}  // namespace turbobp
