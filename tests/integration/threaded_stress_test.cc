// Real-thread stress: the library's structures are mutex-guarded so the
// buffer pool + SSD manager can also be driven by OS threads (the virtual
// clock is a benchmark convenience, not a requirement). N threads hammer a
// shared pool with reads and logged writes over zero-latency devices; the
// test passes if no panic (checksum mismatch, invariant violation) fires
// and all committed writes are readable afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/rng.h"
#include "core/dual_write.h"
#include "storage/mem_device.h"
#include "storage/page.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 512;
constexpr PageId kPages = 512;

TEST(ThreadedStressTest, ConcurrentReadersAndWritersStayConsistent) {
  MemDevice disk_dev(kPages, kPage);
  disk_dev.SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
    PageView v(out.data(), kPage);
    v.Format(page, PageType::kRaw);
    v.SealChecksum();
  });
  MemDevice ssd_dev(256, kPage);
  MemDevice log_dev(1 << 12, kPage);
  DiskManager disk(&disk_dev);
  LogManager log(&log_dev);
  SsdCacheOptions sopts;
  sopts.num_frames = 128;
  sopts.num_partitions = 4;
  // No executor: the cache runs synchronously (real-thread mode).
  DualWriteCache ssd(&ssd_dev, &disk, sopts, nullptr);
  BufferPool::Options opts;
  opts.num_frames = 64;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk, &log, &ssd);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<int64_t> writes_done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      IoContext ctx;  // zero-latency devices: clock is irrelevant
      for (int i = 0; i < kOpsPerThread; ++i) {
        const PageId pid = rng.Uniform(kPages);
        PageGuard g = pool.FetchPage(pid, AccessKind::kRandom, ctx);
        if (rng.Bernoulli(0.3)) {
          // Each thread owns one byte of the payload: no write-write races
          // on content, only structural concurrency.
          g.view().payload()[t]++;
          g.LogUpdate(static_cast<uint64_t>(t) << 32 | i, kPageHeaderSize + t,
                      1);
          writes_done.fetch_add(1);
        } else {
          volatile uint8_t sink = g.view().payload()[t];
          (void)sink;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(writes_done.load(), kThreads * kOpsPerThread / 4);
  // Flush everything and verify every page on disk passes its checksum.
  IoContext ctx;
  pool.FlushAllDirty(ctx, false);
  std::vector<uint8_t> buf(kPage);
  for (PageId p = 0; p < kPages; ++p) {
    disk_dev.Read(p, 1, buf, 0);
    PageView v(buf.data(), kPage);
    ASSERT_TRUE(v.VerifyChecksum()) << "page " << p;
    ASSERT_EQ(v.header().page_id, p);
  }
  // Pool-level accounting survived the contention.
  const auto& stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

TEST(ThreadedStressTest, ConcurrentSsdCacheChurn) {
  MemDevice disk_dev(kPages, kPage);
  MemDevice ssd_dev(64, kPage);
  DiskManager disk(&disk_dev);
  SsdCacheOptions sopts;
  sopts.num_frames = 64;
  sopts.num_partitions = 4;
  sopts.aggressive_fill = 0.9;
  DualWriteCache ssd(&ssd_dev, &disk, sopts, nullptr);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(55 + static_cast<uint64_t>(t));
      IoContext ctx;
      std::vector<uint8_t> page(kPage);
      std::vector<uint8_t> out(kPage);
      for (int i = 0; i < 30000; ++i) {
        const PageId pid = rng.Uniform(256);
        const uint64_t op = rng.Uniform(3);
        if (op == 0) {
          PageView v(page.data(), kPage);
          v.Format(pid, PageType::kRaw);
          v.SealChecksum();
          ssd.OnEvictClean(pid, page, AccessKind::kRandom, ctx);
        } else if (op == 1) {
          if (ssd.TryReadPage(pid, out, ctx)) {
            PageView v(out.data(), kPage);
            ASSERT_EQ(v.header().page_id, pid);
          }
        } else {
          ssd.OnPageDirtied(pid);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const SsdManagerStats stats = ssd.stats();
  EXPECT_GT(stats.admissions, 0);
  EXPECT_LE(stats.used_frames, 64);
  EXPECT_GE(stats.used_frames, 0);
}

}  // namespace
}  // namespace turbobp
