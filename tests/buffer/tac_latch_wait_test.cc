// Regression for the TAC latch-wait accounting (Section 2.5 pathology):
// while a pending SSD admission write holds a page's latch, ONLY a client
// touching that page is charged the wait — charged once, outside every pool
// latch, and the pool's total equals the sum of the per-client charges.
// (The over-counting bug this pins down: charging the wait while holding
// the pool-wide latch made unrelated clients queue behind it and the total
// drift above the per-client sum.)

#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "core/tac.h"
#include "sim/sim_executor.h"
#include "storage/page.h"
#include "storage/sim_device.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 512;

TEST(TacLatchWaitTest, OnlyClientsTouchingTheBusyPagePay) {
  SimExecutor executor;
  SimDevice ssd_dev(64, kPage, std::make_unique<SsdModel>());
  SimDevice disk_dev(1 << 12, kPage, std::make_unique<HddModel>());
  disk_dev.store().SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
    PageView v(out.data(), kPage);
    v.Format(page, PageType::kRaw);
    v.SealChecksum();
  });
  MemDevice log_dev(1 << 10, kPage);
  DiskManager disk(&disk_dev);
  LogManager log(&log_dev);
  SsdCacheOptions sopts;
  sopts.num_frames = 32;
  sopts.num_partitions = 2;
  sopts.throttle_queue_limit = 1000;
  TacCache cache(&ssd_dev, &disk, sopts, &executor, /*db_pages=*/4096,
                 /*extent_pages=*/32);
  BufferPool::Options opts;
  opts.num_frames = 16;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = false;
  BufferPool pool(opts, &disk, &log, &cache);

  constexpr PageId kBusy = 5;
  constexpr PageId kOther = 300;

  // Client A misses: the disk read schedules TAC's delayed admission write.
  {
    IoContext ctx;
    ctx.executor = &executor;
    ctx.now = executor.now();
    pool.FetchPage(kBusy, AccessKind::kRandom, ctx);
  }
  // Let the admission commit fire: the SSD write is now in flight and the
  // page latch is registered busy until its completion.
  executor.RunUntilIdle();
  const Time t0 = executor.now();
  const Time busy_until = cache.LatchBusyUntil(kBusy, t0);
  ASSERT_GT(busy_until, t0) << "admission write should still be in flight";

  // Clients B and C hit the busy page at different instants; each pays
  // exactly the remaining window, measured after the hit's CPU charge.
  IoContext ctx_b;
  ctx_b.executor = &executor;
  ctx_b.now = t0;
  pool.FetchPage(kBusy, AccessKind::kRandom, ctx_b);
  const Time expected_b = busy_until - (t0 + opts.hit_cpu);
  EXPECT_EQ(ctx_b.latch_wait, expected_b);
  EXPECT_EQ(ctx_b.now, busy_until);

  IoContext ctx_c;
  ctx_c.executor = &executor;
  ctx_c.now = t0 + Micros(3);
  pool.FetchPage(kBusy, AccessKind::kRandom, ctx_c);
  const Time expected_c = busy_until - (t0 + Micros(3) + opts.hit_cpu);
  EXPECT_EQ(ctx_c.latch_wait, expected_c);

  // Client D touches a different page inside the window: no charge.
  IoContext ctx_d;
  ctx_d.executor = &executor;
  ctx_d.now = t0;
  pool.FetchPage(kOther, AccessKind::kRandom, ctx_d);
  EXPECT_EQ(ctx_d.latch_wait, 0);

  // The pool-wide total is exactly the two per-client charges.
  EXPECT_EQ(pool.stats().latch_wait_time, expected_b + expected_c);

  // Once the window has passed, the same page costs nothing.
  IoContext ctx_e;
  ctx_e.executor = &executor;
  ctx_e.now = busy_until + Micros(1);
  pool.FetchPage(kBusy, AccessKind::kRandom, ctx_e);
  EXPECT_EQ(ctx_e.latch_wait, 0);
  EXPECT_EQ(pool.stats().latch_wait_time, expected_b + expected_c);
}

}  // namespace
}  // namespace turbobp
