// The multi-page read-ahead path with an SSD cache attached (Section
// 3.3.3): leading/trailing SSD-resident pages are trimmed and served from
// the SSD, the middle is one disk request, and LC's newer-than-disk pages
// are re-read from the SSD even when they sit mid-request.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "buffer/buffer_pool.h"
#include "core/dual_write.h"
#include "core/lazy_cleaning.h"
#include "sim/sim_executor.h"
#include "storage/page.h"
#include "storage/sim_device.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 512;

class PrefetchTrimTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(false); }

  void Build(bool lazy_cleaning) {
    executor_ = std::make_unique<SimExecutor>();
    disk_dev_ = std::make_unique<SimDevice>(1 << 12, kPage,
                                            std::make_unique<HddModel>());
    disk_dev_->store().SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
      PageView v(out.data(), kPage);
      v.Format(page, PageType::kRaw);
      v.SealChecksum();
    });
    ssd_dev_ = std::make_unique<SimDevice>(256, kPage,
                                           std::make_unique<SsdModel>());
    log_dev_ = std::make_unique<SimDevice>(1 << 12, kPage,
                                           std::make_unique<HddModel>());
    disk_ = std::make_unique<DiskManager>(disk_dev_.get());
    log_ = std::make_unique<LogManager>(log_dev_.get());
    SsdCacheOptions sopts;
    sopts.num_frames = 64;
    sopts.num_partitions = 2;
    sopts.aggressive_fill = 1.0;
    if (lazy_cleaning) {
      ssd_ = std::make_unique<LazyCleaningCache>(ssd_dev_.get(), disk_.get(),
                                                 sopts, executor_.get());
    } else {
      ssd_ = std::make_unique<DualWriteCache>(ssd_dev_.get(), disk_.get(),
                                              sopts, executor_.get());
    }
    BufferPool::Options opts;
    opts.num_frames = 32;
    opts.page_bytes = kPage;
    opts.expand_reads_until_warm = false;
    pool_ = std::make_unique<BufferPool>(opts, disk_.get(), log_.get(),
                                         ssd_.get());
  }

  // Places a clean copy of `pid` into the SSD cache (via a clean eviction).
  void SeedSsdClean(PageId pid) {
    std::vector<uint8_t> buf(kPage);
    PageView v(buf.data(), kPage);
    v.Format(pid, PageType::kRaw);
    v.SealChecksum();
    IoContext ctx;
    ctx.executor = executor_.get();
    ssd_->OnEvictClean(pid, buf, AccessKind::kRandom, ctx);
  }

  std::unique_ptr<SimExecutor> executor_;
  std::unique_ptr<SimDevice> disk_dev_;
  std::unique_ptr<SimDevice> ssd_dev_;
  std::unique_ptr<SimDevice> log_dev_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<SsdManager> ssd_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(PrefetchTrimTest, LeadingAndTrailingSsdPagesAreTrimmed) {
  SeedSsdClean(100);
  SeedSsdClean(101);
  SeedSsdClean(107);
  IoContext ctx;
  ctx.now = Seconds(1);  // admission writes done
  ctx.executor = executor_.get();
  pool_->PrefetchRange(100, 8, ctx);
  // Pages 100,101 (leading) and 107 (trailing) came from the SSD; the
  // middle 102..106 was one disk request of 5 pages.
  EXPECT_EQ(pool_->stats().ssd_hits, 3);
  EXPECT_EQ(disk_->reads_issued(), 1);
  EXPECT_EQ(disk_->pages_read(), 5);
  for (PageId p = 100; p < 108; ++p) EXPECT_TRUE(pool_->Contains(p));
}

TEST_F(PrefetchTrimTest, MiddleSsdCleanPagesComeFromTheDiskRead) {
  SeedSsdClean(104);  // strictly in the middle
  IoContext ctx;
  ctx.now = Seconds(1);
  ctx.executor = executor_.get();
  pool_->PrefetchRange(100, 8, ctx);
  // No splitting: one 8-page disk read; the SSD copy was ignored (clean,
  // identical content).
  EXPECT_EQ(disk_->reads_issued(), 1);
  EXPECT_EQ(disk_->pages_read(), 8);
  EXPECT_EQ(pool_->stats().ssd_hits, 0);
}

TEST_F(PrefetchTrimTest, MiddleNewerCopiesAreReReadFromSsd) {
  Build(/*lazy_cleaning=*/true);
  // A dirty (newer-than-disk) SSD page in the middle of the range.
  std::vector<uint8_t> newer(kPage);
  PageView v(newer.data(), kPage);
  v.Format(104, PageType::kRaw);
  v.header().version = 7;
  newer[kPageHeaderSize] = 0xAB;
  v.SealChecksum();
  IoContext ectx;
  ectx.executor = executor_.get();
  ssd_->OnEvictDirty(104, newer, AccessKind::kRandom, 1, ectx);
  ASSERT_EQ(ssd_->Probe(104), SsdProbe::kNewerCopy);

  IoContext ctx;
  ctx.now = Seconds(1);
  ctx.executor = executor_.get();
  pool_->PrefetchRange(100, 8, ctx);
  // The stale disk copy of 104 was discarded and replaced via an SSD read.
  EXPECT_GE(pool_->stats().ssd_hits, 1);
  PageGuard g = pool_->FetchPage(104, AccessKind::kRandom, ctx);
  EXPECT_EQ(g.view().header().version, 7u);
  EXPECT_EQ(g.view().payload()[0], 0xAB);
}

TEST_F(PrefetchTrimTest, FullySsdResidentRangeNeedsNoDiskIo) {
  for (PageId p = 100; p < 108; ++p) SeedSsdClean(p);
  IoContext ctx;
  ctx.now = Seconds(1);
  ctx.executor = executor_.get();
  pool_->PrefetchRange(100, 8, ctx);
  EXPECT_EQ(disk_->reads_issued(), 0);
  EXPECT_EQ(pool_->stats().ssd_hits, 8);
}

TEST_F(PrefetchTrimTest, PrefetchChargesClientUntilDataAvailable) {
  IoContext ctx;
  ctx.executor = executor_.get();
  const Time before = ctx.now;
  pool_->PrefetchRange(200, 8, ctx);
  EXPECT_GT(ctx.now, before);  // blocked on the disk read
}

TEST_F(PrefetchTrimTest, WarmupExpansionIsCountedSeparatelyFromPrefetch) {
  BufferPool::Options opts;
  opts.num_frames = 32;
  opts.page_bytes = kPage;
  opts.expand_reads_until_warm = true;
  opts.expand_read_pages = 8;
  pool_ = std::make_unique<BufferPool>(opts, disk_.get(), log_.get(),
                                       ssd_.get());

  IoContext ctx;
  ctx.executor = executor_.get();
  pool_->FetchPage(100, AccessKind::kRandom, ctx);
  // One cold miss expanded into one aligned 8-page disk read: the requested
  // page is an ordinary miss; the 7 speculative neighbours are counted as
  // expanded — not as prefetched, and not silently (the seed bug).
  BufferPoolStats s = pool_->stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.disk_page_reads, 8);
  EXPECT_EQ(s.expanded_pages, 7);
  EXPECT_EQ(s.prefetch_pages, 0);
  // Every resident frame is accounted for by exactly one counter.
  EXPECT_EQ(pool_->UsedFrameCount(), s.misses + s.expanded_pages);
  for (PageId p = 96; p < 104; ++p) EXPECT_TRUE(pool_->Contains(p));

  // Read-ahead keeps its own counter: no cross-talk with expansion.
  pool_->PrefetchRange(200, 8, ctx);
  s = pool_->stats();
  EXPECT_EQ(s.prefetch_pages, 8);
  EXPECT_EQ(s.expanded_pages, 7);
}

TEST_F(PrefetchTrimTest, SequentialPrefetchedPagesRejectedBySsdOnEviction) {
  // After the fill phase, evicted sequential pages must not enter the SSD.
  Build(false);
  // Force past aggressive fill by shrinking it: re-create with fill 0.
  SsdCacheOptions sopts;
  sopts.num_frames = 64;
  sopts.num_partitions = 2;
  sopts.aggressive_fill = 0.0;
  ssd_ = std::make_unique<DualWriteCache>(ssd_dev_.get(), disk_.get(), sopts,
                                          executor_.get());
  pool_->set_ssd_manager(ssd_.get());
  IoContext ctx;
  ctx.executor = executor_.get();
  pool_->PrefetchRange(0, 8, ctx);   // sequential pages into the pool
  for (PageId p = 500; p < 540; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);  // force evictions
  }
  EXPECT_GT(ssd_->stats().rejected_sequential, 0);
  for (PageId p = 0; p < 8; ++p) {
    EXPECT_EQ(ssd_->Probe(p), SsdProbe::kAbsent) << p;
  }
}

}  // namespace
}  // namespace turbobp
