#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/sim_device.h"
#include "wal/log_manager.h"

namespace turbobp {
namespace {

constexpr uint32_t kPage = 1024;

// Test fixture: an HDD-modeled device whose unwritten pages synthesize as
// formatted raw pages (valid checksums), a log device, and a buffer pool.
class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(8, /*expand=*/false); }

  void Build(uint64_t frames, bool expand) {
    disk_dev_ = std::make_unique<SimDevice>(1 << 12, kPage,
                                            std::make_unique<HddModel>());
    disk_dev_->store().SetSynthesizer([](uint64_t page, std::span<uint8_t> out) {
      PageView v(out.data(), kPage);
      v.Format(page, PageType::kRaw);
      v.SealChecksum();
    });
    log_dev_ = std::make_unique<SimDevice>(1 << 12, kPage,
                                           std::make_unique<HddModel>());
    disk_ = std::make_unique<DiskManager>(disk_dev_.get());
    log_ = std::make_unique<LogManager>(log_dev_.get());
    BufferPool::Options opts;
    opts.num_frames = frames;
    opts.page_bytes = kPage;
    opts.expand_reads_until_warm = expand;
    pool_ = std::make_unique<BufferPool>(opts, disk_.get(), log_.get(),
                                         nullptr);
  }

  std::unique_ptr<SimDevice> disk_dev_;
  std::unique_ptr<SimDevice> log_dev_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  IoContext ctx;
  {
    PageGuard g = pool_->FetchPage(10, AccessKind::kRandom, ctx);
    EXPECT_EQ(g.page_id(), 10u);
  }
  const Time after_miss = ctx.now;
  EXPECT_GT(after_miss, Millis(5));  // disk read
  {
    PageGuard g = pool_->FetchPage(10, AccessKind::kRandom, ctx);
  }
  EXPECT_LT(ctx.now - after_miss, Micros(50));  // hit: CPU cost only
  EXPECT_EQ(pool_->stats().hits, 1);
  EXPECT_EQ(pool_->stats().misses, 1);
}

TEST_F(BufferPoolTest, EvictionKicksInWhenFull) {
  IoContext ctx;
  for (PageId p = 0; p < 20; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  EXPECT_EQ(pool_->UsedFrameCount(), 8);
  EXPECT_EQ(pool_->stats().evictions_clean, 12);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  IoContext ctx;
  PageGuard pinned = pool_->FetchPage(99, AccessKind::kRandom, ctx);
  for (PageId p = 0; p < 30; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  EXPECT_TRUE(pool_->Contains(99));
}

TEST_F(BufferPoolTest, Lru2PrefersEvictingColdPages) {
  IoContext ctx;
  // Touch pages 0 and 1 twice (hot); fill the rest once.
  for (int round = 0; round < 2; ++round) {
    pool_->FetchPage(0, AccessKind::kRandom, ctx);
    pool_->FetchPage(1, AccessKind::kRandom, ctx);
  }
  for (PageId p = 2; p < 8; ++p) pool_->FetchPage(p, AccessKind::kRandom, ctx);
  // Cause a handful of evictions; the twice-touched pages should survive
  // (LRU-2 evicts pages with empty penultimate history first).
  for (PageId p = 100; p < 104; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  EXPECT_TRUE(pool_->Contains(0));
  EXPECT_TRUE(pool_->Contains(1));
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  IoContext ctx;
  {
    PageGuard g = pool_->FetchPage(7, AccessKind::kRandom, ctx);
    g.view().payload()[0] = 0xAA;
    g.LogUpdate(1, kPageHeaderSize, 1);
  }
  EXPECT_EQ(pool_->DirtyFrameCount(), 1);
  for (PageId p = 100; p < 120; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  EXPECT_FALSE(pool_->Contains(7));
  EXPECT_EQ(pool_->stats().evictions_dirty, 1);
  // The write is durable on the device: refetch and verify content.
  PageGuard g = pool_->FetchPage(7, AccessKind::kRandom, ctx);
  EXPECT_EQ(g.view().payload()[0], 0xAA);
}

TEST_F(BufferPoolTest, WalRuleLogIsFlushedBeforeDirtyWrite) {
  IoContext ctx;
  {
    PageGuard g = pool_->FetchPage(7, AccessKind::kRandom, ctx);
    g.view().payload()[0] = 1;
    g.LogUpdate(1, kPageHeaderSize, 1);
  }
  const Lsn lsn_before = log_->durable_lsn();
  for (PageId p = 100; p < 120; ++p) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  // Evicting the dirty page forced the log through its LSN.
  EXPECT_GT(log_->durable_lsn(), lsn_before);
  EXPECT_GE(log_->durable_lsn(), log_->records_snapshot().back().lsn);
}

TEST_F(BufferPoolTest, NewPageIsBornDirtyAndNeverReadsDisk) {
  IoContext ctx;
  const int64_t reads_before = disk_->reads_issued();
  {
    PageGuard g = pool_->NewPage(500, PageType::kBTreeLeaf, ctx);
    EXPECT_EQ(g.view().header().type, PageType::kBTreeLeaf);
  }
  EXPECT_EQ(disk_->reads_issued(), reads_before);
  EXPECT_EQ(pool_->DirtyFrameCount(), 1);
}

TEST_F(BufferPoolTest, FlushAllDirtyCleansPool) {
  IoContext ctx;
  for (PageId p = 0; p < 4; ++p) {
    PageGuard g = pool_->FetchPage(p, AccessKind::kRandom, ctx);
    g.view().payload()[3] = static_cast<uint8_t>(p);
    g.LogUpdate(1, kPageHeaderSize + 3, 1);
  }
  EXPECT_EQ(pool_->DirtyFrameCount(), 4);
  const Time done = pool_->FlushAllDirty(ctx, /*for_checkpoint=*/false);
  EXPECT_GT(done, ctx.now);
  EXPECT_EQ(pool_->DirtyFrameCount(), 0);
}

TEST_F(BufferPoolTest, ResetDropsEverything) {
  IoContext ctx;
  {
    PageGuard g = pool_->FetchPage(3, AccessKind::kRandom, ctx);
    g.view().payload()[0] = 9;
    g.LogUpdate(1, kPageHeaderSize, 1);
  }
  pool_->Reset();
  EXPECT_EQ(pool_->UsedFrameCount(), 0);
  EXPECT_EQ(pool_->DirtyFrameCount(), 0);
  // The dirty page was lost (crash semantics): disk still has old content.
  PageGuard g = pool_->FetchPage(3, AccessKind::kRandom, ctx);
  EXPECT_EQ(g.view().payload()[0], 0);
}

TEST_F(BufferPoolTest, PrefetchRangeLoadsSequentialPages) {
  IoContext ctx;
  pool_->PrefetchRange(40, 6, ctx);
  for (PageId p = 40; p < 46; ++p) EXPECT_TRUE(pool_->Contains(p));
  EXPECT_EQ(pool_->stats().prefetch_pages, 6);
  // One multi-page disk request, not six.
  EXPECT_EQ(disk_->reads_issued(), 1);
  EXPECT_EQ(disk_->pages_read(), 6);
}

TEST_F(BufferPoolTest, PrefetchSkipsResidentPages) {
  IoContext ctx;
  pool_->FetchPage(41, AccessKind::kRandom, ctx);
  pool_->PrefetchRange(40, 4, ctx);
  EXPECT_TRUE(pool_->Contains(40));
  EXPECT_TRUE(pool_->Contains(43));
}

TEST_F(BufferPoolTest, ExpandedReadsWhilePoolCold) {
  Build(64, /*expand=*/true);
  IoContext ctx;
  pool_->FetchPage(10, AccessKind::kRandom, ctx);
  // The single-page request was expanded to an aligned 8-page block.
  EXPECT_EQ(disk_->pages_read(), 8);
  EXPECT_TRUE(pool_->Contains(8));
  EXPECT_TRUE(pool_->Contains(15));
  EXPECT_EQ(pool_->UsedFrameCount(), 8);
}

TEST_F(BufferPoolTest, ExpansionStopsOnceWarm) {
  Build(8, /*expand=*/true);
  IoContext ctx;
  for (PageId p = 0; p < 64; p += 8) {
    pool_->FetchPage(p, AccessKind::kRandom, ctx);
  }
  const int64_t pages_before = disk_->pages_read();
  pool_->FetchPage(200, AccessKind::kRandom, ctx);  // pool now recycles
  EXPECT_EQ(disk_->pages_read(), pages_before + 1);
}

TEST_F(BufferPoolTest, ChecksumVerificationCatchesCorruptDeviceContent) {
  // Corrupt a page directly on the device; the fetch must panic.
  std::vector<uint8_t> raw(kPage);
  PageView v(raw.data(), kPage);
  v.Format(77, PageType::kRaw);
  v.SealChecksum();
  raw[kPageHeaderSize + 5] ^= 0xFF;  // corrupt after sealing
  disk_dev_->store().Write(77, 1, raw, 0);
  IoContext ctx;
  EXPECT_DEATH(pool_->FetchPage(77, AccessKind::kRandom, ctx),
               "checksum mismatch");
}

TEST_F(BufferPoolTest, GuardMoveSemantics) {
  IoContext ctx;
  PageGuard a = pool_->FetchPage(1, AccessKind::kRandom, ctx);
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.page_id(), 1u);
  b.Release();
  EXPECT_FALSE(b.valid());
}

TEST_F(BufferPoolTest, SequentialKindRecordedOnFrames) {
  IoContext ctx;
  pool_->FetchPage(5, AccessKind::kSequential, ctx);
  // Re-fetch random: the kind follows the latest access.
  pool_->FetchPage(5, AccessKind::kRandom, ctx);
  EXPECT_EQ(pool_->stats().hits, 1);
}

TEST_F(BufferPoolTest, AllFramesPinnedPanics) {
  IoContext ctx;
  std::vector<PageGuard> guards;
  for (PageId p = 0; p < 8; ++p) {
    guards.push_back(pool_->FetchPage(p, AccessKind::kRandom, ctx));
  }
  EXPECT_DEATH(pool_->FetchPage(100, AccessKind::kRandom, ctx),
               "all frames pinned");
}

}  // namespace
}  // namespace turbobp
